// Package tagsim reproduces "I Tag, You Tag, Everybody Tags!" (IMC 2023)
// as a deterministic simulation study: the AirTag and SmartTag crowd-
// finding ecosystems — BLE advertising, reporting-device fleets, vendor
// clouds, companion-app crawlers, and vantage-point ground truth — plus
// the paper's full measurement methodology and every table/figure of its
// evaluation.
//
// This package is the public facade. The typical entry points are:
//
//	c := tagsim.NewCampaign(tagsim.CampaignOptions{Seed: 1, Scale: 0.25})
//	fmt.Print(tagsim.Table1(c).Render())
//	fmt.Print(tagsim.Figure5Sweep(c, 100).Render())
//
// or, for the controlled experiments:
//
//	fmt.Print(tagsim.Figure2(1).Render())          // beacon RSSI
//	fmt.Print(tagsim.Figure3(1, 5).Render())       // cafeteria update rates
//
// Lower-level building blocks (the BLE layer codec, the discrete-event
// engine, mobility models, the analysis primitives) are re-exported here
// so downstream code can compose its own experiments.
package tagsim

import (
	"fmt"
	"io"

	"tagsim/internal/analysis"
	"tagsim/internal/antistalk"
	"tagsim/internal/ble"
	"tagsim/internal/cloud"
	"tagsim/internal/experiments"
	"tagsim/internal/geo"
	"tagsim/internal/load"
	"tagsim/internal/mobility"
	"tagsim/internal/obs"
	otrace "tagsim/internal/obs/trace"
	"tagsim/internal/pipeline"
	"tagsim/internal/runner"
	"tagsim/internal/scenario"
	"tagsim/internal/serve"
	"tagsim/internal/stats"
	"tagsim/internal/store"
	"tagsim/internal/tag"
	"tagsim/internal/trace"
)

// Core geographic and record types.
type (
	// LatLon is a WGS-84 position in decimal degrees.
	LatLon = geo.LatLon
	// Vendor identifies a tag ecosystem (Apple, Samsung, Combined).
	Vendor = trace.Vendor
	// GroundTruth is one vantage-point GPS fix.
	GroundTruth = trace.GroundTruth
	// CrawlRecord is one companion-app crawler observation.
	CrawlRecord = trace.CrawlRecord
	// Report is one crowd report accepted by a vendor cloud.
	Report = trace.Report
)

// Vendor identifiers.
const (
	VendorApple    = trace.VendorApple
	VendorSamsung  = trace.VendorSamsung
	VendorCombined = trace.VendorCombined
	VendorOther    = trace.VendorOther
)

// Campaign types and experiment entry points.
type (
	// CampaignOptions sizes the in-the-wild campaign. Workers bounds how
	// many independent worlds simulate concurrently (0 = one per CPU);
	// output is identical for any value.
	CampaignOptions = experiments.Options
	// Campaign is one executed in-the-wild campaign with its analysis
	// state (shared by Table 1 and Figures 5-8).
	Campaign = experiments.Campaign
	// ReplicateSet bundles N same-config campaigns run from distinct
	// derived seeds, with across-replicate mean ± spread aggregates.
	ReplicateSet = experiments.ReplicateSet
	// ReplicateStat is one across-replicate aggregate (mean, std, N).
	ReplicateStat = experiments.ReplicateStat
)

// NewCampaign runs the six-country in-the-wild campaign.
func NewCampaign(opts CampaignOptions) *Campaign { return experiments.NewCampaign(opts) }

// CampaignReplicates fans the campaign across n derived seeds on one
// shared worker pool and bundles the runs for aggregate analysis.
func CampaignReplicates(opts CampaignOptions, n int) *ReplicateSet {
	return experiments.CampaignReplicates(opts, n)
}

// DefaultCampaignOptions is sized to regenerate every figure in tens of
// seconds; set Scale to 1 for the paper's full 120 days.
func DefaultCampaignOptions() CampaignOptions { return experiments.DefaultOptions() }

// Experiment constructors, one per paper artifact.
var (
	// Figure2 runs the secluded-area beacon RSSI experiment.
	Figure2 = experiments.Figure2
	// Figure3 runs the cafeteria deployment, aggregated by hour of day.
	Figure3 = experiments.Figure3
	// Figure4 buckets cafeteria update rates by reporting-device count.
	Figure4 = experiments.Figure4
	// Table1 summarizes the campaign dataset like the paper's Table 1.
	Table1 = experiments.Table1
	// Figure5Sweep computes accuracy vs responsiveness at one radius.
	Figure5Sweep = experiments.Figure5Sweep
	// Figure5d/e/f compute the classified accuracy panels.
	Figure5d = experiments.Figure5d
	Figure5e = experiments.Figure5e
	Figure5f = experiments.Figure5f
	// Figure6 computes visited hexagons for one country.
	Figure6 = experiments.Figure6
	// Figure7 computes accuracy CDFs by population density.
	Figure7 = experiments.Figure7
	// Figure8 sweeps accuracy over radius x time window.
	Figure8 = experiments.Figure8
	// Headline computes the paper's abstract-level numbers.
	Headline = experiments.Headline
	// Battery compares the tags' battery models.
	Battery = experiments.Battery
	// AblationStrategies compares reporting policies in a fixed crowd.
	AblationStrategies = experiments.AblationStrategies
)

// Scenario building blocks for custom experiments.
type (
	// WildConfig parameterizes a custom in-the-wild campaign.
	WildConfig = scenario.WildConfig
	// WildResult is a full campaign's output, one entry per country.
	WildResult = scenario.WildResult
	// CountryResult is one country's campaign output.
	CountryResult = scenario.CountryResult
	// CountryJob is one schedulable country world (see PlanWild).
	CountryJob = scenario.CountryJob
	// CountrySpec is one Table 1 row worth of campaign.
	CountrySpec = scenario.CountrySpec
	// CafeteriaConfig parameterizes the instrumented cafeteria.
	CafeteriaConfig = scenario.CafeteriaConfig
	// SecludedConfig parameterizes the RSSI measurement.
	SecludedConfig = scenario.SecludedConfig
)

// Scenario runners.
var (
	// RunWild simulates an in-the-wild campaign, countries in parallel
	// on WildConfig.Workers workers.
	RunWild = scenario.RunWild
	// RunWildReplicates fans one campaign config across n seeds.
	RunWildReplicates = scenario.RunWildReplicates
	// PlanWild lays out a campaign's CountryJobs without running them.
	PlanWild = scenario.PlanWild
	// ReplicateSeed derives the base seed of replicate r.
	ReplicateSeed = scenario.ReplicateSeed
	// RunCafeteria simulates the cafeteria deployment.
	RunCafeteria = scenario.RunCafeteria
	// SecludedRSSI runs the controlled RSSI measurement.
	SecludedRSSI = scenario.SecludedRSSI
	// Table1Countries returns the paper's six-country campaign spec.
	Table1Countries = scenario.Table1Countries
)

// Analysis primitives for working with datasets directly.
type (
	// Dataset bundles ground truth with crawler records.
	Dataset = analysis.Dataset
	// TruthIndex answers position-at-time queries over ground truth.
	TruthIndex = analysis.TruthIndex
	// AccuracyResult is a hit/miss tally.
	AccuracyResult = analysis.AccuracyResult
	// AnalysisIndex is the one-time columnar index over (truth, distinct
	// crawl records) that every accuracy metric merges against.
	AnalysisIndex = analysis.Index
	// BucketClassifier assigns accuracy buckets to classes (Figures 5d-f).
	BucketClassifier = analysis.BucketClassifier
)

// Analysis entry points.
var (
	// NewDataset builds a time-sorted dataset.
	NewDataset = analysis.NewDataset
	// NewTruthIndex indexes ground-truth fixes.
	NewTruthIndex = analysis.NewTruthIndex
	// NewAnalysisIndex dedups and indexes a crawl log against ground
	// truth; build it once when evaluating many (bucket, radius, window)
	// combinations over the same data.
	NewAnalysisIndex = analysis.NewIndex
	// Accuracy computes the paper's bucketed hit/miss accuracy.
	Accuracy = analysis.Accuracy
	// DailyAccuracy computes one accuracy sample per UTC day.
	DailyAccuracy = analysis.DailyAccuracy
	// AccuracyByClass tallies accuracy per classifier class.
	AccuracyByClass = analysis.AccuracyByClass
	// DailyAccuracyByClass produces per-day samples per class (the
	// t-test inputs behind Figures 5d-f).
	DailyAccuracyByClass = analysis.DailyAccuracyByClass
	// SpeedClassifier/PeriodClassifier/WeekPartClassifier are the
	// paper's bucket stratifications (mobility, day period, week part).
	SpeedClassifier    = analysis.SpeedClassifier
	PeriodClassifier   = analysis.PeriodClassifier
	WeekPartClassifier = analysis.WeekPartClassifier
	// SetIndexedAnalysis toggles the index-backed analysis plane
	// (testing/benchmark escape hatch mirroring device.SetGridIndexing);
	// disabled, the exported metrics run the historical per-call scans.
	SetIndexedAnalysis = analysis.SetIndexedAnalysis
	// SetResidentTruth toggles whether campaign ground truth stays
	// resident (default) or spills to disk-backed columnar logs read
	// through a bounded cursor — the continental-scale memory knob
	// (raw-fix consumers like the hexagon figures then see empty truth).
	SetResidentTruth = analysis.SetResidentTruth
	// DistinctReports collapses repeated crawl observations of one
	// underlying report (shared by the analysis plane and the crawler).
	DistinctReports = trace.DistinctReports
	// SortCrawlByReportTime sorts crawl records by reconstructed report
	// time under a deterministic total order.
	SortCrawlByReportTime = trace.SortByReportTime
	// DetectHomes finds overnight locations for the home filter.
	DetectHomes = analysis.DetectHomes
	// FilterNearHomes applies the 300 m home filter.
	FilterNearHomes = analysis.FilterNearHomes
	// Episodes segments ground truth into place visits.
	Episodes = analysis.Episodes
	// FirstHitDelays measures backtracking delay per episode.
	FirstHitDelays = analysis.FirstHitDelays
	// BacktrackFraction summarizes backtrackable movement share.
	BacktrackFraction = analysis.BacktrackFraction
)

// SweepMinutes are the responsiveness values swept in Figures 5a-c.
var SweepMinutes = experiments.SweepMinutes

// Statistics helpers used across the analyses.
var (
	// WelchTTest is the two-sided unequal-variance t-test.
	WelchTTest = stats.WelchTTest
	// Stars renders p-values in the paper's ns/*/**/***/**** notation.
	Stars = stats.Stars
	// LatencyQuantiles computes the p50/p95/p99 summary the load
	// harness reports.
	LatencyQuantiles = stats.Quantiles
)

// Serving subsystem: the sharded concurrent report store behind the
// vendor clouds, the HTTP query API the paper's crawlers
// reverse-engineered, and the closed-loop load harness.
type (
	// CloudService is one vendor's location backend (a vendor label
	// over a ReportStore).
	CloudService = cloud.Service
	// CombinedClouds is the paper's emulated unified ecosystem view.
	CombinedClouds = cloud.Combined
	// ReportStore is the sharded, concurrency-safe report store.
	ReportStore = store.Store
	// StoreSnapshot is a consistent point-in-time view of a store.
	StoreSnapshot = store.Snapshot
	// QueryServer is the http.Handler exposing /v1/lastknown, /v1/history,
	// /v1/track, /v1/stats and POST /v1/report.
	QueryServer = serve.Server
	// LoadConfig parameterizes the deterministic load generator
	// (closed loop by default, open-loop Poisson via OpenLoop).
	LoadConfig = load.Config
	// LoadResult is one load run's throughput/latency report.
	LoadResult = load.Result
	// LoadTarget is a serving backend the load generator can drive.
	LoadTarget = load.Target
	// LoadMix weighs the generated operations, including the write share.
	LoadMix = load.Mix
	// HotTagCache is the bounded, epoch-validated cache the query API
	// serves hot /v1/lastknown and /v1/track answers from.
	HotTagCache = cloud.HotCache
	// LatencyHistogram is the lock-free log-bucketed histogram the obs
	// plane records durations in (LoadConfig.Latency plugs one into the
	// load generator's per-request timing).
	LatencyHistogram = obs.Histogram
	// Registry is a named collection of obs series rendered by /metrics
	// and /debug/vars.
	Registry = obs.Registry
	// StoreTiering configures a persistent report store: directory,
	// memtable flush threshold, WAL fsync batching, retention,
	// compaction fan-in.
	StoreTiering = store.Tiering
	// StoreRetention is the per-tag history policy (keep-last N,
	// keep-window D, or both).
	StoreRetention = store.Retention
	// StoreTierStats is the storage tier's counter snapshot (WAL and
	// segment sizes, flushes, compactions, quarantines).
	StoreTierStats = store.TierStats
)

var (
	// NewCloudService creates a vendor cloud on the default shard count.
	NewCloudService = cloud.NewService
	// NewCloudServiceSharded sizes the backing store's shard count.
	NewCloudServiceSharded = cloud.NewServiceSharded
	// NewReportStore creates a bare sharded report store.
	NewReportStore = store.New
	// OpenReportStore creates or recovers a tiered persistent store
	// (WAL + memtable + immutable columnar segments); with an empty
	// directory it degenerates to an in-memory store.
	OpenReportStore = store.Open
	// NewCloudServicePersistent is NewCloudServiceSharded on a tiered
	// persistent store — restarts warm-load from the store directory.
	NewCloudServicePersistent = cloud.NewServicePersistent
	// ParseStoreRetention parses "keep=N", "window=DUR", or both
	// (comma-separated) into a StoreRetention.
	ParseStoreRetention = store.ParseRetention
	// NewQueryServer builds the vendor query API over per-vendor clouds.
	NewQueryServer = serve.NewServer
	// RunLoad drives a target with the load generator.
	RunLoad = load.Run
	// NewHTTPTarget points the load generator at a query API base URL.
	NewHTTPTarget = load.NewHTTPTarget
	// NewServiceTarget points the load generator directly at the stores.
	NewServiceTarget = load.NewServiceTarget
	// NewCachedServiceTarget is NewServiceTarget behind the hot-tag cache.
	NewCachedServiceTarget = load.NewCachedServiceTarget
	// LoadReadMix builds the 60/75/90%-read operation mixes of the
	// serving benchmarks.
	LoadReadMix = load.ReadMix
	// DefaultLoadMix is the crawler-shaped all-read operation mix.
	DefaultLoadMix = load.DefaultMix
	// NewHotTagCache builds a hot-tag cache over per-vendor clouds.
	NewHotTagCache = cloud.NewHotCache
	// SetLockedReads reverts the store read path to the historical
	// mutex-guarded implementation (escape hatch; default lock-free).
	// It returns the previous setting.
	SetLockedReads = store.SetLockedReads
	// SetHotCache toggles the query plane's hot-tag caching (default
	// on). It returns the previous setting.
	SetHotCache = cloud.SetHotCache
	// SetTieredStores toggles the persistent storage engine behind
	// OpenReportStore (default on; off makes Open return in-memory
	// stores — the escape hatch mirroring SetLockedReads). It returns
	// the previous setting.
	SetTieredStores = store.SetTiered
	// SetMetrics toggles every obs counter, gauge, and histogram update
	// process-wide (default on; the always-on metrics escape hatch). It
	// returns the previous setting.
	SetMetrics = obs.SetEnabled
	// MetricsEnabled reports whether obs updates are currently on.
	MetricsEnabled = obs.Enabled
	// SetTracing toggles request-scoped span tracing process-wide
	// (default on; the always-on tracing escape hatch mirroring
	// SetMetrics). It returns the previous setting.
	SetTracing = otrace.SetTracing
	// TracingEnabled reports whether span tracing is currently on.
	TracingEnabled = otrace.Enabled
	// MetricsRegistry is the process-wide obs registry (plane totals:
	// scan ticks, pipeline throughput); serve.Server keeps its own.
	MetricsRegistry = obs.Default
)

// Streaming campaign pipeline: the live data path from the radio plane
// to the serving store, the analysis plane, and disk. NewCampaign
// streams by default; SetStreaming(false) is the batch-path escape
// hatch (equivalence-tested byte-identical, figure for figure).
type (
	// Pipeline coordinates world emitters, the ordered merge, and the
	// consumer fan-out of one streaming campaign.
	Pipeline = pipeline.Pipeline
	// PipelineConfig sizes the pipeline's batches and buffers.
	PipelineConfig = pipeline.Config
	// PipelineBatch is one ordered emission unit from one world.
	PipelineBatch = pipeline.Batch
	// PipelineConsumer receives the merged, ordered batch stream.
	PipelineConsumer = pipeline.Consumer
	// StoreIngester streams accepted reports into serving stores while
	// the simulation runs (tagserve -live).
	StoreIngester = pipeline.StoreIngester
	// CampaignAccumulator builds the campaign analysis state — truth
	// index, homes, per-vendor analysis indexes — incrementally from
	// the stream, holding only distinct crawl records.
	CampaignAccumulator = pipeline.CampaignAccumulator
	// ReportSink streams the merged report log to disk in the columnar
	// format.
	ReportSink = pipeline.ReportSink
	// ReportColumnarReader streams frames back from a columnar report
	// log.
	ReportColumnarReader = pipeline.ReportReader
)

var (
	// NewPipeline builds a streaming pipeline for n worlds and starts
	// its merge and consumer goroutines.
	NewPipeline = pipeline.New
	// NewStoreIngester builds the serving-store consumer.
	NewStoreIngester = pipeline.NewStoreIngester
	// NewCampaignAccumulator builds the analysis-state consumer.
	NewCampaignAccumulator = pipeline.NewCampaignAccumulator
	// NewReportSink builds the columnar disk-sink consumer.
	NewReportSink = pipeline.NewReportSink
	// WriteReportsColumnar one-shots a report slice into the columnar
	// format (byte-identical to a streamed sink of the same sequence).
	WriteReportsColumnar = pipeline.WriteReports
	// ReadReportsColumnar reads a whole columnar report log.
	ReadReportsColumnar = pipeline.ReadReports
	// NewReportColumnarReader opens a streaming columnar log reader.
	NewReportColumnarReader = pipeline.NewReportReader
	// SetStreaming toggles the streaming campaign path (default on);
	// disabling reverts NewCampaign to the historical batch path.
	SetStreaming = pipeline.SetStreaming
	// StreamingEnabled reports whether campaigns stream.
	StreamingEnabled = pipeline.Streaming
)

// Tag hardware models.
var (
	// AirTagProfile is the calibrated AirTag model.
	AirTagProfile = tag.AirTagProfile
	// SmartTagProfile is the calibrated SmartTag model.
	SmartTagProfile = tag.SmartTagProfile
)

// BLE plane: the over-the-air formats (gopacket-style codec).
type (
	// Packet is a decoded BLE advertising frame.
	Packet = ble.Packet
	// AdvAddress is a BLE advertiser address.
	AdvAddress = ble.AdvAddress
)

var (
	// NewPacket decodes raw advertising bytes.
	NewPacket = ble.NewPacket
	// IsAirTagPrefix checks for the paper's 1EFF004C12 signature.
	IsAirTagPrefix = ble.IsAirTagPrefix
)

// Anti-stalking detection (the paper's Section 2 countermeasures).
type (
	// StalkScenario generates a victim's beacon observation stream.
	StalkScenario = antistalk.StalkScenario
	// StalkOutcome summarizes one detection evaluation.
	StalkOutcome = antistalk.Outcome
)

var (
	// NewVendorDetector is the built-in same-vendor protection.
	NewVendorDetector = antistalk.NewVendorDetector
	// NewAirGuardDetector is the third-party scanner design.
	NewAirGuardDetector = antistalk.NewAirGuardDetector
	// EvaluateDetector runs a detector over an observation stream.
	EvaluateDetector = antistalk.Evaluate
	// RotationSweep evaluates detectors against rotation periods.
	RotationSweep = antistalk.RotationSweep
)

// Mobility models for composing custom scenarios.
type (
	// MobilityModel yields a position at any virtual time.
	MobilityModel = mobility.Model
	// Itinerary is a timed sequence of stays and moves.
	Itinerary = mobility.Itinerary
)

// ReproduceAll runs every experiment and writes the paper-shaped tables to
// w — the backbone of cmd/tagrepro and EXPERIMENTS.md. Independent
// computations fan out on opts.Workers workers (0 = one per CPU) while
// the output keeps its fixed order; the rendered text is identical for
// any worker count.
func ReproduceAll(w io.Writer, opts CampaignOptions) error {
	cafDays := 5
	if opts.Scale > 0 && opts.Scale < 0.5 {
		cafDays = 2
	}
	write := func(renderings []string) error {
		for _, s := range renderings {
			if _, err := io.WriteString(w, s+"\n"); err != nil {
				return err
			}
		}
		return nil
	}
	// renderAll evaluates a batch of independent renderings on the
	// worker pool and writes them in order. At one effective worker it
	// streams each rendering as computed — the historical sequential
	// behavior, where a dead writer also stops further computation.
	renderAll := func(jobs []func() string) error {
		if runner.Workers(opts.Workers, len(jobs)) == 1 {
			for _, job := range jobs {
				if err := write([]string{job()}); err != nil {
					return err
				}
			}
			return nil
		}
		return write(runner.Map(opts.Workers, len(jobs), func(i int) string { return jobs[i]() }))
	}
	// The stages run back to back rather than nested, so the Workers
	// cap on concurrent worlds holds exactly throughout: first the
	// controlled experiments (written before the expensive campaign
	// starts, which also surfaces writer errors early), then the
	// campaign simulation (internally parallel over countries), then
	// the figures over the shared campaign — each an independent
	// read-only analysis pass.
	controlled := []func() string{
		func() string { return Figure2(opts.Seed).Render() },
		func() string { return Figure3(opts.Seed, cafDays).Render() },
		func() string { return Figure4(opts.Seed, cafDays).Render() },
		func() string { return Battery().Render() },
	}
	if err := renderAll(controlled); err != nil {
		return err
	}
	c := NewCampaign(opts)
	// The 2 only asks "does this knob yield more than one worker?" — the
	// actual job count is len(figures) below, which cannot change the
	// answer (Workers clamps to n, and n >= 2 either way).
	if runner.Workers(opts.Workers, 2) > 1 {
		// The figure batch below is itself a parallel fan-out, and each
		// figure now also fans its panels/sweep points out internally; run
		// the per-figure analysis sequentially inside the already-parallel
		// jobs so the Workers cap on concurrent computations holds (the
		// same pattern CampaignReplicates uses for its campaigns).
		seq := *c
		seq.Options.Workers = 1
		c = &seq
	}
	figures := []func() string{
		func() string { return Table1(c).Render() },
		func() string { return Figure5Sweep(c, 10).Render() },
		func() string { return Figure5Sweep(c, 25).Render() },
		func() string { return Figure5Sweep(c, 100).Render() },
		func() string { return Figure5d(c).Render() },
		func() string { return Figure5e(c).Render() },
		func() string { return Figure5f(c).Render() },
		func() string { return Figure6(c, "AE").Render() },
		func() string { return Figure7(c).Render() },
		func() string { return Figure8(c).Render() },
		func() string { return Headline(c).Render() },
	}
	return renderAll(figures)
}

// Version identifies this reproduction release.
const Version = "1.0.0"

// String returns a short banner.
func String() string {
	return fmt.Sprintf("tagsim %s — IMC'23 'I Tag, You Tag, Everybody Tags!' reproduction", Version)
}
