package analysis_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"tagsim/internal/analysis"
	"tagsim/internal/geo"
	"tagsim/internal/pipeline"
	"tagsim/internal/trace"
)

// diskFixture builds a sorted fix sequence with the shapes the cursor
// must get right: dense runs (interpolation), stationary sparse runs
// (nearer-fix fallback), and coverage holes wider than MaxGap.
func diskFixture(n int, seed int64) []trace.GroundTruth {
	rng := rand.New(rand.NewSource(seed))
	t0 := time.Date(2026, 4, 2, 7, 30, 0, 0, time.UTC)
	fixes := make([]trace.GroundTruth, n)
	cur := t0
	pos := geo.LatLon{Lat: 40.4, Lon: -3.7}
	for i := range fixes {
		switch rng.Intn(10) {
		case 0:
			cur = cur.Add(time.Duration(4+rng.Intn(40)) * time.Minute) // hole
		case 1, 2:
			cur = cur.Add(time.Duration(100+rng.Intn(80)) * time.Second) // sparse
		default:
			cur = cur.Add(time.Duration(5+rng.Intn(40)) * time.Second) // dense
		}
		pos.Lat += (rng.Float64() - 0.5) * 1e-3
		pos.Lon += (rng.Float64() - 0.5) * 1e-3
		fixes[i] = trace.GroundTruth{
			T: cur, Pos: pos, VantageID: "vp-0",
			SpeedKmh: rng.Float64() * 20, UploadedAt: cur,
		}
	}
	return fixes
}

// diskIndex spills fixes through the columnar codec and opens them as a
// disk-backed TruthIndex. Small frames force queries across many frame
// boundaries.
func diskIndex(t *testing.T, fixes []trace.GroundTruth, flushEvery int) *analysis.TruthIndex {
	t.Helper()
	var buf bytes.Buffer
	if err := pipeline.WriteTruth(&buf, fixes, flushEvery); err != nil {
		t.Fatal(err)
	}
	tf, err := pipeline.OpenTruthFile(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatal(err)
	}
	return analysis.NewDiskTruthIndex(tf)
}

// TestTruthCursorEquivalence checks a disk-backed TruthIndex answers
// every query class exactly as the resident index over the same fixes:
// At on a dense sweep (plus jittered probes), HasCoverage windows,
// AvgSpeedKmh, Len, and Span.
func TestTruthCursorEquivalence(t *testing.T) {
	for _, tc := range []struct {
		n, flushEvery int
	}{
		{0, 8}, {1, 8}, {5, 2}, {400, 7}, {400, 64}, {400, 1000},
	} {
		t.Run(fmt.Sprintf("n=%d/frame=%d", tc.n, tc.flushEvery), func(t *testing.T) {
			fixes := diskFixture(tc.n, int64(tc.n*1000+tc.flushEvery))
			res := analysis.NewTruthIndex(fixes)
			disk := diskIndex(t, fixes, tc.flushEvery)
			defer disk.Close()

			if res.Len() != disk.Len() {
				t.Fatalf("Len: resident %d, disk %d", res.Len(), disk.Len())
			}
			rf, rt, rok := res.Span()
			df, dt, dok := disk.Span()
			if rok != dok || !rf.Equal(df) || !rt.Equal(dt) {
				t.Fatalf("Span: resident (%v,%v,%v), disk (%v,%v,%v)", rf, rt, rok, df, dt, dok)
			}
			if tc.n == 0 {
				return
			}

			from, to := fixes[0].T.Add(-5*time.Minute), fixes[len(fixes)-1].T.Add(5*time.Minute)
			rng := rand.New(rand.NewSource(42))
			for probe := from; probe.Before(to); probe = probe.Add(9 * time.Second) {
				q := probe.Add(time.Duration(rng.Intn(2000)) * time.Millisecond)
				rp, rok := res.At(q)
				dp, dok := disk.At(q)
				if rok != dok || rp != dp {
					t.Fatalf("At(%v): resident (%v,%v), disk (%v,%v)", q, rp, rok, dp, dok)
				}
			}
			for w := 0; w < 200; w++ {
				ws := from.Add(time.Duration(rng.Int63n(int64(to.Sub(from)))))
				we := ws.Add(time.Duration(1+rng.Intn(1800)) * time.Second)
				if rc, dc := res.HasCoverage(ws, we), disk.HasCoverage(ws, we); rc != dc {
					t.Fatalf("HasCoverage(%v,%v): resident %v, disk %v", ws, we, rc, dc)
				}
				rv, rok := res.AvgSpeedKmh(ws, we)
				dv, dok := disk.AvgSpeedKmh(ws, we)
				if rok != dok || rv != dv {
					t.Fatalf("AvgSpeedKmh(%v,%v): resident (%v,%v), disk (%v,%v)", ws, we, rv, rok, dv, dok)
				}
			}
		})
	}
}

// TestDiskTruthIndexEquivalence checks the accuracy Index built over a
// disk-backed TruthIndex reproduces the resident-built Index: same
// resolution of every distinct report and the same bucket accuracy
// across radii and bucket lengths.
func TestDiskTruthIndexEquivalence(t *testing.T) {
	fixes := diskFixture(300, 77)
	rng := rand.New(rand.NewSource(7))
	from, to := fixes[0].T, fixes[len(fixes)-1].T
	var crawls []trace.CrawlRecord
	for i := 0; i < 400; i++ {
		at := from.Add(time.Duration(rng.Int63n(int64(to.Sub(from)))))
		f := fixes[rng.Intn(len(fixes))]
		pos := f.Pos
		pos.Lat += (rng.Float64() - 0.5) * 5e-4
		crawls = append(crawls, trace.CrawlRecord{
			CrawlT: at.Add(time.Minute), TagID: "tag-1", Vendor: trace.VendorApple,
			Pos: pos, ReportedAt: at,
		})
	}

	res := analysis.NewIndex(analysis.NewTruthIndex(fixes), crawls)
	diskTI := diskIndex(t, fixes, 13)
	defer diskTI.Close()
	disk := analysis.NewIndex(diskTI, crawls)

	if res.Reports() != disk.Reports() {
		t.Fatalf("Reports: resident %d, disk %d", res.Reports(), disk.Reports())
	}
	for _, bucket := range []time.Duration{10 * time.Minute, time.Hour} {
		for _, radius := range []float64{10, 25, 100} {
			ra := res.Accuracy(bucket, radius, from, to)
			da := disk.Accuracy(bucket, radius, from, to)
			if ra != da {
				t.Errorf("Accuracy(%v, %gm): resident %+v, disk %+v", bucket, radius, ra, da)
			}
		}
	}
}
