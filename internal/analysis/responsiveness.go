package analysis

import (
	"time"

	"tagsim/internal/geo"
	"tagsim/internal/trace"
)

// Episode is one contiguous stay of the vantage point near a place: the
// unit of the paper's backtracking analysis ("half of a victim's exact
// movements can be backtracked with a one-hour delay").
type Episode struct {
	Anchor geo.LatLon
	Start  time.Time
	End    time.Time
}

// Duration returns how long the episode lasted.
func (e Episode) Duration() time.Duration { return e.End.Sub(e.Start) }

// Episodes segments ground truth into place episodes: a new episode starts
// whenever the position drifts more than anchorRadiusM from the current
// episode's anchor. Episodes shorter than minDwell are dropped (driving
// past a place is not a stay).
func Episodes(fixes []trace.GroundTruth, anchorRadiusM float64, minDwell time.Duration) []Episode {
	if anchorRadiusM <= 0 {
		anchorRadiusM = 25
	}
	var out []Episode
	var cur *Episode
	for _, f := range fixes {
		if cur != nil && geo.Distance(cur.Anchor, f.Pos) <= anchorRadiusM {
			cur.End = f.T
			continue
		}
		if cur != nil && cur.Duration() >= minDwell {
			out = append(out, *cur)
		}
		cur = &Episode{Anchor: f.Pos, Start: f.T, End: f.T}
	}
	if cur != nil && cur.Duration() >= minDwell {
		out = append(out, *cur)
	}
	return out
}

// HitDelay is the responsiveness sample for one episode: how long after
// the vantage point arrived somewhere did the first accurate report of
// that place exist.
type HitDelay struct {
	Episode Episode
	// Delay is first accurate report time minus episode start; negative
	// is impossible (reports before arrival are of the previous place).
	Delay time.Duration
	// Found reports whether any accurate report ever appeared.
	Found bool
}

// FirstHitDelays computes, per episode, the delay until the first crawled
// report within radiusM of the episode anchor, looking at reports made
// between the episode start and the episode end plus maxLag (a stalker
// backtracking with delay D tolerates reports up to D after departure).
func FirstHitDelays(episodes []Episode, reports []trace.CrawlRecord, radiusM float64, maxLag time.Duration) []HitDelay {
	distinct := distinctByReportTime(reports)
	out := make([]HitDelay, 0, len(episodes))
	for _, ep := range episodes {
		hd := HitDelay{Episode: ep}
		deadline := ep.End.Add(maxLag)
		for _, r := range distinct {
			if r.ReportedAt.Before(ep.Start) {
				continue
			}
			if r.ReportedAt.After(deadline) {
				break
			}
			if geo.Distance(r.Pos, ep.Anchor) <= radiusM {
				hd.Delay = r.ReportedAt.Sub(ep.Start)
				hd.Found = true
				break
			}
		}
		out = append(out, hd)
	}
	return out
}

// BacktrackFraction returns the fraction of episodes whose first accurate
// report appeared within delay — the paper's headline: with radius 10 m
// and delay one hour, about half of a victim's movements are exposed.
func BacktrackFraction(delays []HitDelay, delay time.Duration) float64 {
	if len(delays) == 0 {
		return 0
	}
	hit := 0
	for _, d := range delays {
		if d.Found && d.Delay <= delay {
			hit++
		}
	}
	return float64(hit) / float64(len(delays))
}
