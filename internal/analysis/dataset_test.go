package analysis

import (
	"math"
	"testing"
	"time"

	"tagsim/internal/geo"
	"tagsim/internal/trace"
)

var (
	t0     = time.Date(2022, 3, 7, 9, 0, 0, 0, time.UTC) // Monday 09:00
	origin = geo.LatLon{Lat: 24.4539, Lon: 54.3773}
)

// walkFixes generates a ground-truth walk: fixes every 5 s moving east at
// speedKmh for the duration.
func walkFixes(start time.Time, from geo.LatLon, speedKmh float64, dur time.Duration) []trace.GroundTruth {
	var out []trace.GroundTruth
	step := 5 * time.Second
	mps := geo.KmhToMs(speedKmh)
	for el := time.Duration(0); el <= dur; el += step {
		out = append(out, trace.GroundTruth{
			T:         start.Add(el),
			Pos:       geo.Destination(from, 90, mps*el.Seconds()),
			VantageID: "vp1",
			SpeedKmh:  speedKmh,
		})
	}
	return out
}

func TestTruthIndexInterpolation(t *testing.T) {
	fixes := walkFixes(t0, origin, 3.6, 10*time.Minute) // 1 m/s east
	ti := NewTruthIndex(fixes)
	// Halfway between two fixes: 2.5 s after a fix = 2.5 m beyond it.
	at := t0.Add(62*time.Second + 500*time.Millisecond)
	pos, ok := ti.At(at)
	if !ok {
		t.Fatal("no coverage mid-walk")
	}
	want := geo.Destination(origin, 90, 62.5)
	if d := geo.Distance(pos, want); d > 0.5 {
		t.Errorf("interpolated position off by %.2f m", d)
	}
}

func TestTruthIndexEdges(t *testing.T) {
	fixes := walkFixes(t0, origin, 3.6, 10*time.Minute)
	ti := NewTruthIndex(fixes)
	// Slightly before the first fix: clamps to it.
	if _, ok := ti.At(t0.Add(-time.Minute)); !ok {
		t.Error("1 min before start should clamp within MaxGap")
	}
	if _, ok := ti.At(t0.Add(-time.Hour)); ok {
		t.Error("1 h before start should have no coverage")
	}
	if _, ok := ti.At(t0.Add(10*time.Minute + 2*time.Minute)); !ok {
		t.Error("2 min after end should clamp within MaxGap")
	}
	if _, ok := ti.At(t0.Add(3 * time.Hour)); ok {
		t.Error("3 h after end should have no coverage")
	}
	empty := NewTruthIndex(nil)
	if _, ok := empty.At(t0); ok {
		t.Error("empty index should have no coverage")
	}
	if _, _, ok := empty.Span(); ok {
		t.Error("empty index has no span")
	}
}

func TestTruthIndexGapHandling(t *testing.T) {
	// Two walk sessions separated by a 2-hour gap.
	a := walkFixes(t0, origin, 3.6, 10*time.Minute)
	b := walkFixes(t0.Add(2*time.Hour), geo.Destination(origin, 0, 5000), 3.6, 10*time.Minute)
	ti := NewTruthIndex(append(a, b...))
	if _, ok := ti.At(t0.Add(time.Hour)); ok {
		t.Error("middle of a 2-hour gap must have no coverage")
	}
	// Within MaxGap of the gap edges: covered.
	if _, ok := ti.At(t0.Add(10*time.Minute + 90*time.Second)); !ok {
		t.Error("90 s past the last fix should clamp")
	}
	if ti.HasCoverage(t0.Add(30*time.Minute), t0.Add(40*time.Minute)) {
		t.Error("gap window should have no coverage")
	}
	if !ti.HasCoverage(t0, t0.Add(time.Minute)) {
		t.Error("walk window should have coverage")
	}
}

func TestAvgSpeed(t *testing.T) {
	fixes := walkFixes(t0, origin, 7.2, 10*time.Minute) // 2 m/s
	ti := NewTruthIndex(fixes)
	got, ok := ti.AvgSpeedKmh(t0, t0.Add(10*time.Minute))
	if !ok {
		t.Fatal("no speed estimate")
	}
	if math.Abs(got-7.2) > 0.3 {
		t.Errorf("avg speed = %.2f, want 7.2", got)
	}
	// Window with no fixes but bracketing coverage (stationary): speed 0.
	stat := []trace.GroundTruth{
		{T: t0, Pos: origin}, {T: t0.Add(time.Hour), Pos: origin},
	}
	ti2 := NewTruthIndex(stat)
	ti2.MaxGap = 2 * time.Hour
	v, ok := ti2.AvgSpeedKmh(t0.Add(20*time.Minute), t0.Add(30*time.Minute))
	if !ok || v != 0 {
		t.Errorf("stationary speed = %v, %v", v, ok)
	}
	// Degenerate window.
	if _, ok := ti.AvgSpeedKmh(t0, t0); ok {
		t.Error("empty window should fail")
	}
}

func TestDetectHomesAndFilter(t *testing.T) {
	home := origin
	away := geo.Destination(origin, 90, 5000)
	var fixes []trace.GroundTruth
	// Three nights at home (01:00-02:00, fixes every 2 min), days away.
	for d := 0; d < 3; d++ {
		night := time.Date(2022, 3, 7+d, 1, 0, 0, 0, time.UTC)
		for i := 0; i < 30; i++ {
			fixes = append(fixes, trace.GroundTruth{T: night.Add(time.Duration(i*2) * time.Minute), Pos: geo.Destination(home, float64(i*12), 10)})
		}
		day := time.Date(2022, 3, 7+d, 12, 0, 0, 0, time.UTC)
		for i := 0; i < 30; i++ {
			fixes = append(fixes, trace.GroundTruth{T: day.Add(time.Duration(i*2) * time.Minute), Pos: geo.Destination(away, float64(i*12), 10)})
		}
	}
	homes := DetectHomes(fixes, 300)
	if len(homes) != 1 {
		t.Fatalf("detected %d homes, want 1", len(homes))
	}
	if geo.Distance(homes[0], home) > 50 {
		t.Errorf("home detected %.0f m from truth", geo.Distance(homes[0], home))
	}
	kept, frac := FilterNearHomes(fixes, homes, 300)
	if len(kept) != 90 {
		t.Errorf("kept %d fixes, want 90 (the away half)", len(kept))
	}
	if math.Abs(frac-0.5) > 0.01 {
		t.Errorf("removed fraction = %.2f, want 0.5", frac)
	}
	for _, f := range kept {
		if geo.Distance(f.Pos, home) <= 300 {
			t.Fatal("kept a fix near home")
		}
	}
	// No homes: nothing removed.
	kept2, frac2 := FilterNearHomes(fixes, nil, 300)
	if len(kept2) != len(fixes) || frac2 != 0 {
		t.Error("filter with no homes must be a no-op")
	}
}

func TestFilterCrawlsNearHomes(t *testing.T) {
	homes := []geo.LatLon{origin}
	recs := []trace.CrawlRecord{
		{TagID: "a", Pos: geo.Destination(origin, 0, 100)},  // near home
		{TagID: "a", Pos: geo.Destination(origin, 0, 1000)}, // far
	}
	out := FilterCrawlsNearHomes(recs, homes, 300)
	if len(out) != 1 || geo.Distance(out[0].Pos, origin) < 900 {
		t.Errorf("filtered crawls = %v", out)
	}
	if got := FilterCrawlsNearHomes(recs, nil, 300); len(got) != 2 {
		t.Error("no homes: no filtering")
	}
}

func TestDatasetCombined(t *testing.T) {
	apple := []trace.CrawlRecord{{CrawlT: t0, TagID: "air", Vendor: trace.VendorApple}}
	samsung := []trace.CrawlRecord{{CrawlT: t0.Add(time.Minute), TagID: "smart", Vendor: trace.VendorSamsung}}
	ds := NewDataset(nil, map[trace.Vendor][]trace.CrawlRecord{
		trace.VendorApple:   apple,
		trace.VendorSamsung: samsung,
	})
	combined := ds.CrawlsFor(trace.VendorCombined)
	if len(combined) != 2 {
		t.Fatalf("combined has %d records", len(combined))
	}
	if !combined[0].CrawlT.Before(combined[1].CrawlT) {
		t.Error("combined records must be time-sorted")
	}
	if got := ds.CrawlsFor(trace.VendorApple); len(got) != 1 {
		t.Error("vendor passthrough broken")
	}
}
