package analysis

import (
	"sort"
	"sync/atomic"
	"time"

	"tagsim/internal/geo"
	"tagsim/internal/hexgrid"
	"tagsim/internal/trace"
)

// indexingDisabled routes the exported accuracy entry points through the
// historical per-call scan implementations instead of the columnar index.
// It exists so equivalence tests and recorded benchmarks can exercise the
// pre-index analysis plane through unmodified figure code (the analysis
// analogue of device.SetGridIndexing).
var indexingDisabled atomic.Bool

// SetIndexedAnalysis toggles the index-backed accuracy pipeline
// (testing/benchmark escape hatch; the default is enabled). It returns
// the previous setting so callers can restore it.
func SetIndexedAnalysis(enabled bool) (was bool) {
	return !indexingDisabled.Swap(!enabled)
}

// IndexedAnalysis reports whether the index-backed pipeline is enabled.
func IndexedAnalysis() bool { return !indexingDisabled.Load() }

// span is one maximal closed interval [lo, hi] (unix nanos) of ground-
// truth coverage: every instant t with lo <= t <= hi has TruthIndex.At
// ok. The covered set is exactly the union of [T_i-MaxGap, T_i+MaxGap]
// over all fixes — between two fixes less than 2*MaxGap apart every
// instant is within MaxGap of the nearer fix, and for closer pairs the
// interpolation path covers the whole gap — so merging those per-fix
// intervals once reproduces At's ok bit for any query.
type span struct {
	lo, hi int64
}

// Index is a one-time columnar index over (ground truth, distinct crawl
// records) that every accuracy metric then merges against. It exploits
// two invariants of the paper's hit/miss methodology:
//
//   - a distinct report's truth position — and therefore its
//     truth-to-report distance — depends on neither the bucket length
//     nor the radius, so both are resolved exactly once;
//   - buckets advance monotonically in every metric, so coverage and
//     hit tests are cursor merges over time-sorted columns rather than
//     per-bucket binary searches.
//
// One Index serves every (bucket, radius, window, classifier)
// combination of Figures 5-8 and Table 1's derived metrics; building it
// costs one dedup plus one truth resolution per distinct report.
// An Index is immutable after construction and safe for concurrent use.
// It snapshots the TruthIndex — fixes and the MaxGap in effect at
// NewIndex time — so mutate MaxGap before building, not after (a later
// change would silently desync the index from the live TruthIndex).
type Index struct {
	truth *TruthIndex
	// Columnar distinct-report store, sorted by report time:
	times    []int64   // ReportedAt, unix nanos
	resolved []bool    // ground truth known at the report time
	distM    []float64 // truth-to-report distance (valid when resolved)
	// Coverage columns:
	fixTimes []int64 // time-sorted ground-truth fix instants
	cover    []span  // merged intervals where TruthIndex.At is ok
}

// NewIndex dedups and indexes a crawl log against ground truth. The
// input slices are not modified.
func NewIndex(truth *TruthIndex, reports []trace.CrawlRecord) *Index {
	distinct := trace.DistinctReports(reports)
	trace.SortByReportTime(distinct)
	ix := &Index{
		truth:    truth,
		times:    make([]int64, len(distinct)),
		resolved: make([]bool, len(distinct)),
		distM:    make([]float64, len(distinct)),
	}
	for i, r := range distinct {
		ix.times[i] = r.ReportedAt.UnixNano()
		if pos, ok := truth.At(r.ReportedAt); ok {
			ix.resolved[i] = true
			ix.distM[i] = geo.Distance(pos, r.Pos)
		}
	}
	// The coverage columns need only fix instants, never positions. A
	// disk-backed truth index streams its time column once into the
	// resident fixTimes (8 B per fix versus ~128 B for the struct it
	// replaces), so the built Index stays lock-free for concurrent
	// figure sweeps even over spilled truth; a resident index converts
	// its fixes in place.
	if truth.disk != nil {
		ix.fixTimes = truth.disk.fixTimes()
	} else {
		ix.fixTimes = make([]int64, len(truth.fixes))
		for i, f := range truth.fixes {
			ix.fixTimes[i] = f.T.UnixNano()
		}
	}
	maxGap := int64(truth.MaxGap)
	for _, t := range ix.fixTimes {
		lo, hi := t-maxGap, t+maxGap
		if n := len(ix.cover); n > 0 && lo <= ix.cover[n-1].hi {
			if hi > ix.cover[n-1].hi {
				ix.cover[n-1].hi = hi
			}
			continue
		}
		ix.cover = append(ix.cover, span{lo, hi})
	}
	return ix
}

// Reports returns the number of distinct indexed reports.
func (ix *Index) Reports() int { return len(ix.times) }

// Truth returns the ground-truth index the reports were resolved against.
func (ix *Index) Truth() *TruthIndex { return ix.truth }

// lowerBound returns the first i with a[i] >= v.
func lowerBound(a []int64, v int64) int {
	return sort.Search(len(a), func(i int) bool { return a[i] >= v })
}

// cursors is the per-merge iteration state: one monotone position per
// column. Each metric seeds the cursors once per call (one binary search
// each) and then only ever advances them, so a whole bucket sweep costs
// O(buckets + reports + fixes) regardless of bucket length.
type cursors struct {
	ri int // next distinct report with time >= current bucket start
	fi int // next ground-truth fix with time >= current bucket start
	ci int // first coverage span that could contain the current midpoint
}

func (ix *Index) seek(from int64) cursors {
	return cursors{
		ri: lowerBound(ix.times, from),
		fi: lowerBound(ix.fixTimes, from),
		ci: sort.Search(len(ix.cover), func(i int) bool { return ix.cover[i].hi >= from }),
	}
}

// covered reports whether the bucket [bs, be) has ground-truth coverage,
// replicating TruthIndex.HasCoverage: a fix inside the bucket, or a
// covered midpoint. Bucket starts must not decrease between calls.
func (ix *Index) covered(cur *cursors, bs, be int64) bool {
	for cur.fi < len(ix.fixTimes) && ix.fixTimes[cur.fi] < bs {
		cur.fi++
	}
	if cur.fi < len(ix.fixTimes) && ix.fixTimes[cur.fi] < be {
		return true
	}
	mid := bs + (be-bs)/2
	for cur.ci < len(ix.cover) && ix.cover[cur.ci].hi < mid {
		cur.ci++
	}
	return cur.ci < len(ix.cover) && ix.cover[cur.ci].lo <= mid
}

// hit reports whether any distinct report inside [bs, be) lies within
// radiusM of the vantage point's position at its report time. Bucket
// starts must not decrease between calls.
func (ix *Index) hit(cur *cursors, bs, be int64, radiusM float64) bool {
	for cur.ri < len(ix.times) && ix.times[cur.ri] < bs {
		cur.ri++
	}
	for k := cur.ri; k < len(ix.times) && ix.times[k] < be; k++ {
		if ix.resolved[k] && ix.distM[k] <= radiusM {
			return true
		}
	}
	return false
}

// Accuracy computes the paper's core hit/miss metric over [from, to) —
// the index-backed equivalent of the package-level Accuracy — in one
// allocation-free merge.
func (ix *Index) Accuracy(bucket time.Duration, radiusM float64, from, to time.Time) AccuracyResult {
	var res AccuracyResult
	if bucket <= 0 || !to.After(from) {
		return res
	}
	step := int64(bucket)
	fromN, toN := from.UnixNano(), to.UnixNano()
	cur := ix.seek(fromN)
	for bs := fromN; bs < toN; bs += step {
		be := bs + step
		if !ix.covered(&cur, bs, be) {
			continue
		}
		res.Buckets++
		if ix.hit(&cur, bs, be, radiusM) {
			res.Hits++
		}
	}
	return res
}

// DailyAccuracy computes one accuracy sample per UTC day, the
// index-backed equivalent of the package-level DailyAccuracy.
func (ix *Index) DailyAccuracy(bucket time.Duration, radiusM float64, from, to time.Time, minBuckets int) []float64 {
	if minBuckets <= 0 {
		minBuckets = 3
	}
	var out []float64
	for day := from.UTC().Truncate(24 * time.Hour); day.Before(to); day = day.Add(24 * time.Hour) {
		dayEnd := day.Add(24 * time.Hour)
		lo, hi := maxTime(day, from), minTime(dayEnd, to)
		if !hi.After(lo) {
			continue
		}
		res := ix.Accuracy(bucket, radiusM, lo, hi)
		if res.Buckets >= minBuckets {
			out = append(out, res.Pct())
		}
	}
	return out
}

// AccuracyByClass splits buckets by a classifier, the index-backed
// equivalent of the package-level AccuracyByClass. The classifier only
// runs on covered buckets, and sees the same bucket boundaries (same
// time.Time location) the scan implementation produced.
func (ix *Index) AccuracyByClass(bucket time.Duration, radiusM float64, from, to time.Time, classify BucketClassifier) map[string]AccuracyResult {
	out := make(map[string]AccuracyResult)
	if bucket <= 0 || !to.After(from) {
		return out
	}
	step := int64(bucket)
	fromN, toN := from.UnixNano(), to.UnixNano()
	cur := ix.seek(fromN)
	for bs := fromN; bs < toN; bs += step {
		be := bs + step
		if !ix.covered(&cur, bs, be) {
			continue
		}
		bsT := from.Add(time.Duration(bs - fromN))
		class, ok := classify(bsT, bsT.Add(bucket))
		if !ok {
			continue
		}
		res := out[class]
		res.Buckets++
		if ix.hit(&cur, bs, be, radiusM) {
			res.Hits++
		}
		out[class] = res
	}
	return out
}

// DailyAccuracyByClass produces per-day accuracy samples per class, the
// index-backed equivalent of the package-level DailyAccuracyByClass.
func (ix *Index) DailyAccuracyByClass(bucket time.Duration, radiusM float64, from, to time.Time, classify BucketClassifier, minBuckets int) map[string][]float64 {
	if minBuckets <= 0 {
		minBuckets = 3
	}
	out := make(map[string][]float64)
	for day := from.UTC().Truncate(24 * time.Hour); day.Before(to); day = day.Add(24 * time.Hour) {
		dayEnd := day.Add(24 * time.Hour)
		lo, hi := maxTime(day, from), minTime(dayEnd, to)
		if !hi.After(lo) {
			continue
		}
		for class, res := range ix.AccuracyByClass(bucket, radiusM, lo, hi, classify) {
			if res.Buckets >= minBuckets {
				out[class] = append(out[class], res.Pct())
			}
		}
	}
	return out
}

// CellAccuracy computes per-visited-cell accuracy (Figure 7's sample
// population), the index-backed equivalent of the package-level
// CellAccuracy. The one-time dedup and truth resolution amortize over
// every visit instead of being redone per visit.
func (ix *Index) CellAccuracy(visits []HexVisit, bucket time.Duration, radiusM float64) map[hexgrid.Cell]float64 {
	if bucket <= 0 {
		bucket = time.Hour
	}
	perCell := make(map[hexgrid.Cell]*AccuracyResult)
	for _, v := range visits {
		res := ix.Accuracy(bucket, radiusM, v.Enter, v.Leave.Add(bucket))
		acc, ok := perCell[v.Cell]
		if !ok {
			acc = &AccuracyResult{}
			perCell[v.Cell] = acc
		}
		acc.Add(res)
	}
	out := make(map[hexgrid.Cell]float64, len(perCell))
	for cell, acc := range perCell {
		if acc.Buckets > 0 {
			out[cell] = acc.Pct()
		}
	}
	return out
}
