package analysis

import (
	"time"

	"tagsim/internal/mobility"
)

// DayPeriod is the paper's time-of-day stratification (Figure 5e).
type DayPeriod string

// Day periods exactly as defined in the paper: morning 6-10, lunch 10-14,
// afternoon 14-18, evening 18-22, night 22-02. Hours 02-06 are outside
// every period and excluded from the analysis.
const (
	PeriodMorning   DayPeriod = "Morning"
	PeriodLunch     DayPeriod = "Lunch"
	PeriodAfternoon DayPeriod = "Afternoon"
	PeriodEvening   DayPeriod = "Evening"
	PeriodNight     DayPeriod = "Night"
)

// DayPeriods lists the periods in figure order.
var DayPeriods = []DayPeriod{PeriodMorning, PeriodLunch, PeriodAfternoon, PeriodEvening, PeriodNight}

// PeriodOf classifies an instant. ok is false for the 02:00-06:00 gap.
func PeriodOf(t time.Time) (DayPeriod, bool) {
	switch h := t.Hour(); {
	case h >= 6 && h < 10:
		return PeriodMorning, true
	case h >= 10 && h < 14:
		return PeriodLunch, true
	case h >= 14 && h < 18:
		return PeriodAfternoon, true
	case h >= 18 && h < 22:
		return PeriodEvening, true
	case h >= 22 || h < 2:
		return PeriodNight, true
	default:
		return "", false
	}
}

// WeekPart is the weekday/weekend stratification (Figure 5f).
type WeekPart string

// Week parts.
const (
	Weekday WeekPart = "Weekday"
	Weekend WeekPart = "Weekend"
)

// WeekPartOf classifies an instant.
func WeekPartOf(t time.Time) WeekPart {
	switch t.Weekday() {
	case time.Saturday, time.Sunday:
		return Weekend
	default:
		return Weekday
	}
}

// PeriodClassifier adapts PeriodOf to the bucket-classifier interface,
// classifying by the bucket's start.
func PeriodClassifier(bs, _ time.Time) (string, bool) {
	p, ok := PeriodOf(bs)
	return string(p), ok
}

// WeekPartClassifier adapts WeekPartOf to the bucket-classifier interface.
func WeekPartClassifier(bs, _ time.Time) (string, bool) {
	return string(WeekPartOf(bs)), true
}

// SpeedClassifier builds a bucket classifier that labels each bucket with
// the vantage point's average speed class over the bucket, as estimated
// from ground truth (Figure 5d).
func SpeedClassifier(truth *TruthIndex) BucketClassifier {
	return func(bs, be time.Time) (string, bool) {
		kmh, ok := truth.AvgSpeedKmh(bs, be)
		if !ok {
			return "", false
		}
		return mobility.ClassifySpeed(kmh).String(), true
	}
}
