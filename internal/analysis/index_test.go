package analysis

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"tagsim/internal/geo"
	"tagsim/internal/trace"
)

// randomTruth fabricates a ground-truth track with realistic pathologies:
// several walk segments separated by coverage gaps of random length (some
// longer than MaxGap), occasional duplicate-instant fixes, and stationary
// stretches that record no fixes.
func randomTruth(rng *rand.Rand, start time.Time) []trace.GroundTruth {
	var fixes []trace.GroundTruth
	at := start
	pos := origin
	for seg := 0; seg < 3+rng.Intn(3); seg++ {
		dur := time.Duration(10+rng.Intn(120)) * time.Minute
		fixes = append(fixes, walkFixes(at, pos, 2+rng.Float64()*6, dur)...)
		if len(fixes) > 0 {
			last := fixes[len(fixes)-1]
			pos = last.Pos
			at = last.T
		}
		if rng.Intn(3) == 0 && len(fixes) > 0 {
			// Duplicate instant (buffered uploads can repeat a fix).
			fixes = append(fixes, fixes[len(fixes)-1])
		}
		// Gap before the next segment: sometimes within MaxGap, sometimes
		// far beyond it (phone off).
		at = at.Add(time.Duration(1+rng.Intn(40)) * time.Minute)
	}
	return fixes
}

// randomCrawl fabricates a crawl log with duplicates of the same report,
// equal-timestamp records across tags, reports during coverage gaps, and
// reports far outside the truth span.
func randomCrawl(rng *rand.Rand, ti *TruthIndex, from time.Time, span time.Duration, n int) []trace.CrawlRecord {
	tags := []string{"tag-a", "tag-b"}
	var out []trace.CrawlRecord
	for i := 0; i < n; i++ {
		at := from.Add(time.Duration(rng.Int63n(int64(span))) - span/8)
		base, ok := ti.At(at)
		if !ok {
			base = geo.Destination(origin, rng.Float64()*360, rng.Float64()*2000)
		}
		rec := trace.CrawlRecord{
			CrawlT:     at.Add(time.Minute),
			TagID:      tags[rng.Intn(len(tags))],
			Pos:        geo.Destination(base, rng.Float64()*360, rng.Float64()*200),
			ReportedAt: at,
		}
		out = append(out, rec)
		// Re-observe the same report a minute later with reconstruction
		// jitter, like the real crawlers do.
		for d := 0; d < rng.Intn(3); d++ {
			dup := rec
			dup.CrawlT = rec.CrawlT.Add(time.Duration(d+1) * time.Minute)
			dup.ReportedAt = rec.ReportedAt.Add(time.Duration(rng.Intn(120)-60) * time.Second)
			out = append(out, dup)
		}
		if rng.Intn(4) == 0 {
			// Equal-timestamp record for the other tag.
			twin := rec
			twin.TagID = tags[(rng.Intn(len(tags))+1)%len(tags)]
			out = append(out, twin)
		}
	}
	return out
}

// TestIndexMatchesScanReference is the equivalence property the whole PR
// rests on: for randomized truth tracks, crawl logs, bucket lengths,
// radii, and (possibly misaligned) windows, the index-backed metrics
// must reproduce the legacy scan implementations exactly.
func TestIndexMatchesScanReference(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		fixes := randomTruth(rng, t0)
		ti := NewTruthIndex(fixes)
		from, to, ok := ti.Span()
		if !ok {
			t.Fatalf("seed %d: empty truth", seed)
		}
		span := to.Sub(from) + time.Hour
		reports := randomCrawl(rng, ti, from, span, 40+rng.Intn(120))
		ix := NewIndex(ti, reports)

		for _, bucket := range []time.Duration{time.Minute, 7 * time.Minute, 10 * time.Minute, time.Hour} {
			for _, radius := range []float64{5, 50, 100, 300} {
				// Misalign the window from the bucket grid and the fixes.
				lo := from.Add(-time.Duration(rng.Intn(600)) * time.Second)
				hi := to.Add(time.Duration(rng.Intn(600)) * time.Second)
				want := accuracyScan(ti, reports, bucket, radius, lo, hi)
				got := ix.Accuracy(bucket, radius, lo, hi)
				if got != want {
					t.Fatalf("seed %d bucket %v radius %.0f: Accuracy index %+v != scan %+v", seed, bucket, radius, got, want)
				}

				wantDaily := dailyAccuracyScan(ti, reports, bucket, radius, lo, hi, 2)
				gotDaily := ix.DailyAccuracy(bucket, radius, lo, hi, 2)
				if !reflect.DeepEqual(gotDaily, wantDaily) {
					t.Fatalf("seed %d bucket %v radius %.0f: DailyAccuracy index %v != scan %v", seed, bucket, radius, gotDaily, wantDaily)
				}

				wantClass := accuracyByClassScan(ti, reports, bucket, radius, lo, hi, PeriodClassifier)
				gotClass := ix.AccuracyByClass(bucket, radius, lo, hi, PeriodClassifier)
				if !reflect.DeepEqual(gotClass, wantClass) {
					t.Fatalf("seed %d bucket %v radius %.0f: AccuracyByClass index %v != scan %v", seed, bucket, radius, gotClass, wantClass)
				}
			}
		}

		wantDailyClass := dailyAccuracyByClassScan(ti, reports, 10*time.Minute, 100, from, to, SpeedClassifier(ti), 1)
		gotDailyClass := NewIndex(ti, reports).DailyAccuracyByClass(10*time.Minute, 100, from, to, SpeedClassifier(ti), 1)
		if !reflect.DeepEqual(gotDailyClass, wantDailyClass) {
			t.Fatalf("seed %d: DailyAccuracyByClass index %v != scan %v", seed, gotDailyClass, wantDailyClass)
		}

		visits := HexVisits(fixes, 8, 5*time.Minute, 5*time.Minute)
		for _, bucket := range []time.Duration{0, 20 * time.Minute, time.Hour} {
			wantCells := cellAccuracyScan(ti, reports, visits, bucket, 100)
			gotCells := ix.CellAccuracy(visits, bucket, 100)
			if !reflect.DeepEqual(gotCells, wantCells) {
				t.Fatalf("seed %d bucket %v: CellAccuracy index %v != scan %v", seed, bucket, gotCells, wantCells)
			}
		}
	}
}

// TestIndexCoverageMatchesTruthIndex pins the precomputed coverage spans
// against TruthIndex.HasCoverage on a dense grid of misaligned buckets.
func TestIndexCoverageMatchesTruthIndex(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		rng := rand.New(rand.NewSource(100 + seed))
		ti := NewTruthIndex(randomTruth(rng, t0))
		from, to, _ := ti.Span()
		ix := NewIndex(ti, nil)
		bucket := time.Duration(1+rng.Intn(13)) * time.Minute
		start := from.Add(-time.Duration(rng.Intn(300)) * time.Second)
		cur := ix.seek(start.UnixNano())
		for bs := start; bs.Before(to.Add(2 * ti.MaxGap)); bs = bs.Add(bucket) {
			be := bs.Add(bucket)
			want := ti.HasCoverage(bs, be)
			got := ix.covered(&cur, bs.UnixNano(), be.UnixNano())
			if got != want {
				t.Fatalf("seed %d: covered(%v, %v) = %v, HasCoverage = %v", seed, bs, be, got, want)
			}
		}
	}
}

// TestIndexEmptyInputs: degenerate shapes must not panic and must match
// the scan reference.
func TestIndexEmptyInputs(t *testing.T) {
	ti := NewTruthIndex(nil)
	ix := NewIndex(ti, nil)
	if got := ix.Accuracy(10*time.Minute, 100, t0, t0.Add(time.Hour)); got != (AccuracyResult{}) {
		t.Errorf("empty index accuracy = %+v", got)
	}
	if got := ix.Accuracy(0, 100, t0, t0.Add(time.Hour)); got != (AccuracyResult{}) {
		t.Errorf("zero bucket = %+v", got)
	}
	if got := ix.Accuracy(time.Minute, 100, t0.Add(time.Hour), t0); got != (AccuracyResult{}) {
		t.Errorf("inverted window = %+v", got)
	}
	if n := ix.Reports(); n != 0 {
		t.Errorf("Reports = %d", n)
	}
	if ix.Truth() != ti {
		t.Error("Truth accessor lost the truth index")
	}
}

// TestSetIndexedAnalysis: the escape hatch must route the exported entry
// points through the scan reference and report its previous state.
func TestSetIndexedAnalysis(t *testing.T) {
	was := SetIndexedAnalysis(false)
	defer SetIndexedAnalysis(was)
	if IndexedAnalysis() {
		t.Fatal("toggle did not disable indexing")
	}
	ti := NewTruthIndex(walkFixes(t0, origin, 3.6, time.Hour))
	var reports []trace.CrawlRecord
	for i := 0; i < 6; i++ {
		at := t0.Add(time.Duration(i)*10*time.Minute + 5*time.Minute)
		pos, _ := ti.At(at)
		reports = append(reports, crawlAt(at, pos))
	}
	res := Accuracy(ti, reports, 10*time.Minute, 10, t0, t0.Add(time.Hour))
	if res.Buckets != 6 || res.Hits != 6 {
		t.Errorf("scan-routed Accuracy = %+v, want 6/6", res)
	}
	if got := SetIndexedAnalysis(true); got != false {
		t.Errorf("SetIndexedAnalysis returned was=%v, want false", got)
	}
	if !IndexedAnalysis() {
		t.Error("toggle did not re-enable indexing")
	}
}

// TestIndexReusableAcrossSweeps: one index must answer many different
// (bucket, radius, window) queries — the cursor state is per call, not
// per index.
func TestIndexReusableAcrossSweeps(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	fixes := walkFixes(t0, origin, 3.6, 6*time.Hour)
	ti := NewTruthIndex(fixes)
	reports := randomCrawl(rng, ti, t0, 6*time.Hour, 80)
	ix := NewIndex(ti, reports)
	// Query in deliberately non-monotone order; every answer must match a
	// fresh scan.
	type q struct {
		bucket time.Duration
		radius float64
		from   time.Time
	}
	queries := []q{
		{time.Hour, 100, t0.Add(3 * time.Hour)},
		{10 * time.Minute, 10, t0},
		{30 * time.Minute, 300, t0.Add(time.Hour)},
		{10 * time.Minute, 10, t0}, // repeat of an earlier query
	}
	for i, qq := range queries {
		want := accuracyScan(ti, reports, qq.bucket, qq.radius, qq.from, t0.Add(6*time.Hour))
		if got := ix.Accuracy(qq.bucket, qq.radius, qq.from, t0.Add(6*time.Hour)); got != want {
			t.Fatalf("query %d: %+v != %+v", i, got, want)
		}
	}
}

func BenchmarkIndexAccuracySweep(b *testing.B) {
	fixes := walkFixes(t0, origin, 3.6, 24*time.Hour)
	ti := NewTruthIndex(fixes)
	var reports []trace.CrawlRecord
	for i := 0; i < 24*6; i++ {
		at := t0.Add(time.Duration(i) * 10 * time.Minute)
		pos, _ := ti.At(at)
		reports = append(reports, crawlAt(at, geo.Destination(pos, 45, 30)))
	}
	b.Run("scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, m := range []int{1, 10, 60, 120} {
				accuracyScan(ti, reports, time.Duration(m)*time.Minute, 100, t0, t0.Add(24*time.Hour))
			}
		}
	})
	b.Run("indexed", func(b *testing.B) {
		ix := NewIndex(ti, reports)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, m := range []int{1, 10, 60, 120} {
				ix.Accuracy(time.Duration(m)*time.Minute, 100, t0, t0.Add(24*time.Hour))
			}
		}
	})
}
