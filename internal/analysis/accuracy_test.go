package analysis

import (
	"math"
	"testing"
	"time"

	"tagsim/internal/geo"
	"tagsim/internal/trace"
)

// crawlAt fabricates a distinct crawled report at the given report time
// and position.
func crawlAt(reportedAt time.Time, pos geo.LatLon) trace.CrawlRecord {
	return trace.CrawlRecord{
		CrawlT:     reportedAt.Add(time.Minute),
		TagID:      "tag",
		Vendor:     trace.VendorApple,
		Pos:        pos,
		ReportedAt: reportedAt,
	}
}

func TestAccuracyPerfectReports(t *testing.T) {
	fixes := walkFixes(t0, origin, 3.6, time.Hour)
	ti := NewTruthIndex(fixes)
	// One exact report in every 10-minute bucket.
	var reports []trace.CrawlRecord
	for i := 0; i < 6; i++ {
		at := t0.Add(time.Duration(i)*10*time.Minute + 5*time.Minute)
		pos, _ := ti.At(at)
		reports = append(reports, crawlAt(at, pos))
	}
	res := Accuracy(ti, reports, 10*time.Minute, 10, t0, t0.Add(time.Hour))
	if res.Buckets != 6 || res.Hits != 6 {
		t.Fatalf("result = %+v, want 6/6", res)
	}
	if res.Pct() != 100 {
		t.Errorf("Pct = %v", res.Pct())
	}
}

func TestAccuracyNoReports(t *testing.T) {
	ti := NewTruthIndex(walkFixes(t0, origin, 3.6, time.Hour))
	res := Accuracy(ti, nil, 10*time.Minute, 100, t0, t0.Add(time.Hour))
	if res.Buckets != 6 || res.Hits != 0 {
		t.Fatalf("result = %+v, want 6 buckets 0 hits", res)
	}
}

func TestAccuracyRadiusMatters(t *testing.T) {
	ti := NewTruthIndex(walkFixes(t0, origin, 3.6, time.Hour))
	// Reports offset 50 m north of the truth.
	var reports []trace.CrawlRecord
	for i := 0; i < 6; i++ {
		at := t0.Add(time.Duration(i)*10*time.Minute + 5*time.Minute)
		pos, _ := ti.At(at)
		reports = append(reports, crawlAt(at, geo.Destination(pos, 0, 50)))
	}
	tight := Accuracy(ti, reports, 10*time.Minute, 10, t0, t0.Add(time.Hour))
	loose := Accuracy(ti, reports, 10*time.Minute, 100, t0, t0.Add(time.Hour))
	if tight.Hits != 0 {
		t.Errorf("50 m errors hit a 10 m radius: %+v", tight)
	}
	if loose.Hits != 6 {
		t.Errorf("50 m errors should hit a 100 m radius: %+v", loose)
	}
}

func TestAccuracyLongerBucketsImprove(t *testing.T) {
	// A single accurate report per hour: 60-minute buckets hit, 10-minute
	// buckets mostly miss — the Figure 5a-c responsiveness effect.
	ti := NewTruthIndex(walkFixes(t0, origin, 3.6, 2*time.Hour))
	var reports []trace.CrawlRecord
	for i := 0; i < 2; i++ {
		at := t0.Add(time.Duration(i)*time.Hour + 30*time.Minute)
		pos, _ := ti.At(at)
		reports = append(reports, crawlAt(at, pos))
	}
	short := Accuracy(ti, reports, 10*time.Minute, 100, t0, t0.Add(2*time.Hour))
	long := Accuracy(ti, reports, time.Hour, 100, t0, t0.Add(2*time.Hour))
	if long.Pct() <= short.Pct() {
		t.Errorf("longer buckets should help: short %.0f%% long %.0f%%", short.Pct(), long.Pct())
	}
	if long.Pct() != 100 {
		t.Errorf("hourly buckets should all hit: %+v", long)
	}
}

func TestAccuracySkipsUncoveredBuckets(t *testing.T) {
	// Coverage only in the first hour of a two-hour window.
	ti := NewTruthIndex(walkFixes(t0, origin, 3.6, time.Hour))
	res := Accuracy(ti, nil, 10*time.Minute, 100, t0, t0.Add(2*time.Hour))
	// Buckets 7-12 have no ground truth and must not count. The bucket
	// right after coverage ends still clamps within MaxGap.
	if res.Buckets < 6 || res.Buckets > 7 {
		t.Errorf("counted %d buckets, want ~6", res.Buckets)
	}
}

func TestAccuracyDegenerateInputs(t *testing.T) {
	ti := NewTruthIndex(walkFixes(t0, origin, 3.6, time.Hour))
	if res := Accuracy(ti, nil, 0, 100, t0, t0.Add(time.Hour)); res.Buckets != 0 {
		t.Error("zero bucket duration must yield nothing")
	}
	if res := Accuracy(ti, nil, time.Minute, 100, t0.Add(time.Hour), t0); res.Buckets != 0 {
		t.Error("inverted window must yield nothing")
	}
	if (AccuracyResult{}).Pct() != 0 {
		t.Error("empty result Pct must be 0")
	}
}

func TestDistinctByReportTimeCollapses(t *testing.T) {
	pos := origin
	r1 := crawlAt(t0, pos)
	// Same report observed by the next three crawls (same pos, ~same
	// reported time reconstructed with up to 1 min error).
	r2 := r1
	r2.CrawlT = t0.Add(time.Minute)
	r2.ReportedAt = t0.Add(30 * time.Second)
	r3 := r1
	r3.CrawlT = t0.Add(2 * time.Minute)
	// New report from the same place later.
	r4 := crawlAt(t0.Add(30*time.Minute), pos)
	out := distinctByReportTime([]trace.CrawlRecord{r1, r2, r3, r4})
	if len(out) != 2 {
		t.Fatalf("distinct kept %d, want 2", len(out))
	}
}

func TestDailyAccuracy(t *testing.T) {
	// Two days of walking with perfect hourly reports.
	var fixes []trace.GroundTruth
	var reports []trace.CrawlRecord
	for d := 0; d < 2; d++ {
		day := t0.Add(time.Duration(d) * 24 * time.Hour)
		// Stop shy of 12:00 so the walk does not lend a sliver of
		// coverage to a fourth, reportless bucket.
		fs := walkFixes(day, origin, 3.6, 3*time.Hour-5*time.Minute)
		fixes = append(fixes, fs...)
		ti := NewTruthIndex(fs)
		for h := 0; h < 3; h++ {
			at := day.Add(time.Duration(h)*time.Hour + 30*time.Minute)
			pos, _ := ti.At(at)
			reports = append(reports, crawlAt(at, pos))
		}
	}
	ti := NewTruthIndex(fixes)
	days := DailyAccuracy(ti, reports, time.Hour, 100, t0, t0.Add(48*time.Hour), 2)
	if len(days) != 2 {
		t.Fatalf("got %d daily samples, want 2", len(days))
	}
	for _, pct := range days {
		if math.Abs(pct-100) > 1 {
			t.Errorf("daily accuracy = %v, want 100", pct)
		}
	}
}

func TestAccuracyByClass(t *testing.T) {
	// Walk for an hour (morning), then again in the evening; reports only
	// during the morning.
	morning := walkFixes(t0, origin, 3.6, time.Hour) // 09:00
	evening := walkFixes(time.Date(2022, 3, 7, 19, 0, 0, 0, time.UTC), origin, 3.6, time.Hour)
	ti := NewTruthIndex(append(append([]trace.GroundTruth{}, morning...), evening...))
	var reports []trace.CrawlRecord
	for i := 0; i < 6; i++ {
		at := t0.Add(time.Duration(i)*10*time.Minute + 5*time.Minute)
		pos, _ := ti.At(at)
		reports = append(reports, crawlAt(at, pos))
	}
	byClass := AccuracyByClass(ti, reports, 10*time.Minute, 100, t0, t0.Add(12*time.Hour), PeriodClassifier)
	m := byClass[string(PeriodMorning)]
	e := byClass[string(PeriodEvening)]
	if m.Buckets == 0 || e.Buckets == 0 {
		t.Fatalf("missing classes: %+v", byClass)
	}
	if m.Pct() < 99 {
		t.Errorf("morning accuracy = %.0f, want 100", m.Pct())
	}
	if e.Pct() != 0 {
		t.Errorf("evening accuracy = %.0f, want 0", e.Pct())
	}
}

func TestDailyAccuracyByClassWeekday(t *testing.T) {
	// Monday and Saturday walks, perfect reports both days.
	var fixes []trace.GroundTruth
	var reports []trace.CrawlRecord
	for _, day := range []time.Time{t0, t0.Add(5 * 24 * time.Hour)} { // Mon, Sat
		fs := walkFixes(day, origin, 3.6, 2*time.Hour)
		fixes = append(fixes, fs...)
		ti := NewTruthIndex(fs)
		for h := 0; h < 2; h++ {
			at := day.Add(time.Duration(h)*time.Hour + 30*time.Minute)
			pos, _ := ti.At(at)
			reports = append(reports, crawlAt(at, pos))
		}
	}
	ti := NewTruthIndex(fixes)
	byClass := DailyAccuracyByClass(ti, reports, time.Hour, 100, t0, t0.Add(7*24*time.Hour), WeekPartClassifier, 1)
	if len(byClass[string(Weekday)]) != 1 || len(byClass[string(Weekend)]) != 1 {
		t.Fatalf("samples = %v", byClass)
	}
}

func BenchmarkAccuracy(b *testing.B) {
	fixes := walkFixes(t0, origin, 3.6, 24*time.Hour)
	ti := NewTruthIndex(fixes)
	var reports []trace.CrawlRecord
	for i := 0; i < 24*6; i++ {
		at := t0.Add(time.Duration(i) * 10 * time.Minute)
		pos, _ := ti.At(at)
		reports = append(reports, crawlAt(at, geo.Destination(pos, 45, 30)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Accuracy(ti, reports, 10*time.Minute, 100, t0, t0.Add(24*time.Hour))
	}
}
