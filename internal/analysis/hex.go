package analysis

import (
	"sort"
	"time"

	"tagsim/internal/hexgrid"
	"tagsim/internal/trace"
)

// HexVisit is one qualifying stay inside a hexagon: the vantage point
// spent at least the dwell threshold consecutively within the cell
// (the paper requires 5 consecutive minutes, discarding cells crossed on
// a highway).
type HexVisit struct {
	Cell  hexgrid.Cell
	Enter time.Time
	Leave time.Time
}

// Duration returns the visit's dwell time.
func (v HexVisit) Duration() time.Duration { return v.Leave.Sub(v.Enter) }

// HexVisits segments ground truth into hexagon visits at the given
// resolution, keeping only stays of at least minDwell. Gaps in ground
// truth longer than maxGap end the current visit.
func HexVisits(fixes []trace.GroundTruth, res int, minDwell, maxGap time.Duration) []HexVisit {
	if minDwell <= 0 {
		minDwell = 5 * time.Minute
	}
	if maxGap <= 0 {
		maxGap = 5 * time.Minute
	}
	var out []HexVisit
	var cur *HexVisit
	flush := func() {
		if cur != nil && cur.Duration() >= minDwell {
			out = append(out, *cur)
		}
		cur = nil
	}
	for _, f := range fixes {
		cell := hexgrid.LatLonToCell(f.Pos, res)
		if cur != nil {
			if cell == cur.Cell && f.T.Sub(cur.Leave) <= maxGap {
				cur.Leave = f.T
				continue
			}
			flush()
		}
		cur = &HexVisit{Cell: cell, Enter: f.T, Leave: f.T}
	}
	flush()
	return out
}

// DistinctCells returns the unique visited cells in deterministic order.
func DistinctCells(visits []HexVisit) []hexgrid.Cell {
	seen := make(map[hexgrid.Cell]bool)
	var out []hexgrid.Cell
	for _, v := range visits {
		if !seen[v.Cell] {
			seen[v.Cell] = true
			out = append(out, v.Cell)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// CellAccuracy computes a per-visited-cell accuracy: for each cell, buckets
// covering its visits are tallied with the usual hit/miss rule. This is
// the per-hexagon sample population behind Figure 7's CDFs.
//
// One-shot convenience over NewIndex(truth, reports).CellAccuracy: the
// crawl log is deduped and truth-resolved once and shared by every visit
// (the scan reference re-derived both per visit).
func CellAccuracy(truth *TruthIndex, reports []trace.CrawlRecord, visits []HexVisit, bucket time.Duration, radiusM float64) map[hexgrid.Cell]float64 {
	if !IndexedAnalysis() {
		return cellAccuracyScan(truth, reports, visits, bucket, radiusM)
	}
	return NewIndex(truth, reports).CellAccuracy(visits, bucket, radiusM)
}

// cellAccuracyScan is the pre-index reference implementation of
// CellAccuracy (one full accuracy scan per visit).
func cellAccuracyScan(truth *TruthIndex, reports []trace.CrawlRecord, visits []HexVisit, bucket time.Duration, radiusM float64) map[hexgrid.Cell]float64 {
	if bucket <= 0 {
		bucket = time.Hour
	}
	perCell := make(map[hexgrid.Cell]*AccuracyResult)
	for _, v := range visits {
		res := accuracyScan(truth, reports, bucket, radiusM, v.Enter, v.Leave.Add(bucket))
		acc, ok := perCell[v.Cell]
		if !ok {
			acc = &AccuracyResult{}
			perCell[v.Cell] = acc
		}
		acc.Add(res)
	}
	out := make(map[hexgrid.Cell]float64, len(perCell))
	for cell, acc := range perCell {
		if acc.Buckets > 0 {
			out[cell] = acc.Pct()
		}
	}
	return out
}

// TotalDwellByCell sums visit durations per cell.
func TotalDwellByCell(visits []HexVisit) map[hexgrid.Cell]time.Duration {
	out := make(map[hexgrid.Cell]time.Duration)
	for _, v := range visits {
		out[v.Cell] += v.Duration()
	}
	return out
}
