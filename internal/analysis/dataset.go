// Package analysis implements the paper's measurement methodology — the
// primary contribution being reproduced: accuracy as hit/miss bucketing of
// crawled tag locations against vantage-point ground truth, responsiveness
// as first-hit delay, update rates, home filtering, mobility and temporal
// classification, and hexagon/population-density joins.
package analysis

import (
	"sort"
	"time"

	"tagsim/internal/geo"
	"tagsim/internal/trace"
)

// Dataset bundles one campaign's collected data: the vantage points'
// ground truth and each companion-app crawler's records.
type Dataset struct {
	GroundTruth []trace.GroundTruth
	// Crawls maps each vendor's crawler output. VendorCombined is
	// synthesized by CrawlsFor.
	Crawls map[trace.Vendor][]trace.CrawlRecord
}

// NewDataset builds a dataset, sorting everything by time.
func NewDataset(gt []trace.GroundTruth, crawls map[trace.Vendor][]trace.CrawlRecord) *Dataset {
	ds := &Dataset{GroundTruth: append([]trace.GroundTruth(nil), gt...), Crawls: make(map[trace.Vendor][]trace.CrawlRecord)}
	trace.SortByTime(ds.GroundTruth)
	for v, recs := range crawls {
		cp := append([]trace.CrawlRecord(nil), recs...)
		trace.SortByTime(cp)
		ds.Crawls[v] = cp
	}
	return ds
}

// CrawlsFor returns the crawl records for a vendor. VendorCombined merges
// the Apple and Samsung records — the paper's emulated unified ecosystem,
// valid because both tags ride the same vantage point.
func (ds *Dataset) CrawlsFor(v trace.Vendor) []trace.CrawlRecord {
	if v != trace.VendorCombined {
		return ds.Crawls[v]
	}
	return trace.Merge(ds.Crawls[trace.VendorApple], ds.Crawls[trace.VendorSamsung])
}

// TruthIndex answers "where was the vantage point at time t" from the
// recorded ground truth, interpolating between fixes. It is backed
// either by a resident time-sorted fix slice (NewTruthIndex) or by a
// disk-backed columnar store read through a bounded cursor
// (NewDiskTruthIndex) — queries answer identically either way.
type TruthIndex struct {
	fixes []trace.GroundTruth
	disk  *diskTruth // non-nil for disk-backed indexes; fixes is then nil
	// MaxGap bounds interpolation: instants farther than MaxGap from any
	// fix have no ground truth (the phone was off or GPS-denied).
	MaxGap time.Duration
}

// NewTruthIndex builds an index over time-sorted fixes (sorts a copy).
func NewTruthIndex(fixes []trace.GroundTruth) *TruthIndex {
	cp := append([]trace.GroundTruth(nil), fixes...)
	trace.SortByTime(cp)
	return &TruthIndex{fixes: cp, MaxGap: 3 * time.Minute}
}

// Len returns the number of fixes.
func (ti *TruthIndex) Len() int {
	if ti.disk != nil {
		return ti.disk.store.Total()
	}
	return len(ti.fixes)
}

// Span returns the time range covered by the fixes.
func (ti *TruthIndex) Span() (from, to time.Time, ok bool) {
	if ti.disk != nil {
		return ti.disk.span()
	}
	if len(ti.fixes) == 0 {
		return time.Time{}, time.Time{}, false
	}
	return ti.fixes[0].T, ti.fixes[len(ti.fixes)-1].T, true
}

// truthAtEdge resolves a query before the first or after the last fix:
// clamp to the edge fix when within maxGap of it.
func truthAtEdge(edge trace.GroundTruth, t time.Time, maxGap time.Duration) (geo.LatLon, bool) {
	d := edge.T.Sub(t)
	if d < 0 {
		d = -d
	}
	if d > maxGap {
		return geo.LatLon{}, false
	}
	return edge.Pos, true
}

// truthAtBetween resolves a query bracketed by two fixes: interpolate
// across small gaps, fall back to the nearer fix across large ones
// (stationary periods record no fixes because only changes are kept).
// Shared by the resident and disk backends so they cannot drift.
func truthAtBetween(prev, next trace.GroundTruth, t time.Time, maxGap time.Duration) (geo.LatLon, bool) {
	dPrev, dNext := t.Sub(prev.T), next.T.Sub(t)
	gap := next.T.Sub(prev.T)
	if gap <= maxGap {
		// Interpolate along the movement between the fixes.
		frac := float64(dPrev) / float64(gap)
		return geo.Lerp(prev.Pos, next.Pos, frac), true
	}
	if dPrev <= dNext {
		if dPrev > maxGap {
			return geo.LatLon{}, false
		}
		return prev.Pos, true
	}
	if dNext > maxGap {
		return geo.LatLon{}, false
	}
	return next.Pos, true
}

// At returns the vantage point's position at time t, interpolating between
// the bracketing fixes. ok is false when t falls in a coverage gap.
func (ti *TruthIndex) At(t time.Time) (geo.LatLon, bool) {
	if ti.disk != nil {
		return ti.disk.at(t, ti.MaxGap)
	}
	n := len(ti.fixes)
	if n == 0 {
		return geo.LatLon{}, false
	}
	i := sort.Search(n, func(k int) bool { return !ti.fixes[k].T.Before(t) })
	switch {
	case i == 0:
		return truthAtEdge(ti.fixes[0], t, ti.MaxGap)
	case i == n:
		return truthAtEdge(ti.fixes[n-1], t, ti.MaxGap)
	}
	return truthAtBetween(ti.fixes[i-1], ti.fixes[i], t, ti.MaxGap)
}

// HasCoverage reports whether any fix falls within [from, to), or the
// window is bracketed by fixes at most MaxGap apart (a stationary period).
func (ti *TruthIndex) HasCoverage(from, to time.Time) bool {
	if ti.disk != nil {
		return ti.disk.hasCoverage(from, to, ti.MaxGap)
	}
	n := len(ti.fixes)
	i := sort.Search(n, func(k int) bool { return !ti.fixes[k].T.Before(from) })
	if i < n && ti.fixes[i].T.Before(to) {
		return true
	}
	mid := from.Add(to.Sub(from) / 2)
	_, ok := ti.At(mid)
	return ok
}

// AvgSpeedKmh returns the average ground speed over [from, to]: positions
// are sampled on a one-minute grid and consecutive displacements summed.
// The coarse grid matters: raw 5-second GPS fixes carry meters of white
// noise, and summing that jitter would make a stationary vantage point
// look like a pedestrian (~4 km/h of pure noise). At one-minute spacing
// the noise floor is ~0.25 km/h, safely under the stationary threshold,
// while real walking speeds are unaffected. ok is false when the window
// has no ground-truth coverage.
func (ti *TruthIndex) AvgSpeedKmh(from, to time.Time) (float64, bool) {
	if !to.After(from) {
		return 0, false
	}
	const step = time.Minute
	var dist float64
	var covered time.Duration
	var prevPos geo.LatLon
	prevOK := false
	for t := from; !t.After(to); t = t.Add(step) {
		pos, ok := ti.At(t)
		if ok && prevOK {
			dist += geo.Distance(prevPos, pos)
			covered += step
		}
		prevPos, prevOK = pos, ok
	}
	if covered == 0 {
		// Very short windows can fall between grid points; fall back to
		// direct endpoints.
		a, okA := ti.At(from)
		b, okB := ti.At(to)
		if okA && okB {
			return geo.MsToKmh(geo.Distance(a, b) / to.Sub(from).Seconds()), true
		}
		return 0, false
	}
	return geo.MsToKmh(dist / covered.Seconds()), true
}

// HomeDetector finds the participant's overnight locations (homes,
// hotels — "any place they slept overnight") incrementally: positions
// observed during the overnight window (00:00-06:00), clustered within
// clusterRadiusM, kept only when the cluster accumulates at least 30
// minutes of overnight presence. The dwell requirement separates
// sleeping places from clusters a midnight walk home would otherwise
// scatter along the route. Feeding fixes one batch at a time (the
// truth-spill path) produces exactly what DetectHomes computes over the
// concatenation — the clustering is a single forward pass and carries
// no lookahead.
type HomeDetector struct {
	clusterRadiusM float64
	clusters       []homeCluster
}

type homeCluster struct {
	anchor geo.LatLon
	dwell  time.Duration
	lastAt time.Time
}

// NewHomeDetector builds a detector (clusterRadiusM <= 0 means the
// paper's 300 m).
func NewHomeDetector(clusterRadiusM float64) *HomeDetector {
	if clusterRadiusM <= 0 {
		clusterRadiusM = 300
	}
	return &HomeDetector{clusterRadiusM: clusterRadiusM}
}

// Add feeds one fix, in fix-time order.
func (hd *HomeDetector) Add(f trace.GroundTruth) {
	if f.T.UTC().Hour() >= 6 {
		return
	}
	for i := range hd.clusters {
		c := &hd.clusters[i]
		if geo.Distance(c.anchor, f.Pos) <= hd.clusterRadiusM {
			gap := f.T.Sub(c.lastAt)
			if gap > 0 && gap <= 10*time.Minute {
				// Contiguous presence (stationary periods record
				// sparse fixes, so allow generous gaps).
				c.dwell += gap
			}
			c.lastAt = f.T
			return
		}
	}
	hd.clusters = append(hd.clusters, homeCluster{anchor: f.Pos, lastAt: f.T})
}

// Homes returns the clusters that accumulated enough overnight dwell.
func (hd *HomeDetector) Homes() []geo.LatLon {
	const minDwell = 30 * time.Minute
	var homes []geo.LatLon
	for _, c := range hd.clusters {
		if c.dwell >= minDwell {
			homes = append(homes, c.anchor)
		}
	}
	return homes
}

// DetectHomes is the batch form of HomeDetector over a fix slice.
func DetectHomes(fixes []trace.GroundTruth, clusterRadiusM float64) []geo.LatLon {
	hd := NewHomeDetector(clusterRadiusM)
	for _, f := range fixes {
		hd.Add(f)
	}
	return hd.Homes()
}

// NearAnyHome reports whether pos lies within radiusM of any home — the
// per-record predicate behind FilterNearHomes, exported so streaming
// paths can filter without materializing slices.
func NearAnyHome(pos geo.LatLon, homes []geo.LatLon, radiusM float64) bool {
	for _, h := range homes {
		if geo.Distance(pos, h) <= radiusM {
			return true
		}
	}
	return false
}

// FilterNearHomes drops fixes within radiusM of any home, returning the
// kept fixes and the fraction removed (the paper filtered 65% of its data
// this way, with a 300 m radius).
func FilterNearHomes(fixes []trace.GroundTruth, homes []geo.LatLon, radiusM float64) (kept []trace.GroundTruth, removedFrac float64) {
	if radiusM <= 0 {
		radiusM = 300
	}
	if len(homes) == 0 {
		return fixes, 0
	}
	kept = make([]trace.GroundTruth, 0, len(fixes))
	for _, f := range fixes {
		if !NearAnyHome(f.Pos, homes, radiusM) {
			kept = append(kept, f)
		}
	}
	if len(fixes) == 0 {
		return kept, 0
	}
	return kept, float64(len(fixes)-len(kept)) / float64(len(fixes))
}

// FilterCrawlsNearHomes applies the same home filter to crawl records (a
// neighbor's phone repeatedly reporting the tag at home would bias
// accuracy upward).
func FilterCrawlsNearHomes(records []trace.CrawlRecord, homes []geo.LatLon, radiusM float64) []trace.CrawlRecord {
	if radiusM <= 0 {
		radiusM = 300
	}
	if len(homes) == 0 {
		return records
	}
	return trace.Filter(records, func(r trace.CrawlRecord) bool {
		for _, h := range homes {
			if geo.Distance(r.Pos, h) <= radiusM {
				return false
			}
		}
		return true
	})
}
