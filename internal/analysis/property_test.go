package analysis

import (
	"math/rand"
	"testing"
	"time"

	"tagsim/internal/geo"
	"tagsim/internal/trace"
)

// randomReports fabricates crawled reports scattered around a walk.
func randomReports(rng *rand.Rand, ti *TruthIndex, n int, maxErrM float64, from time.Time, span time.Duration) []trace.CrawlRecord {
	var out []trace.CrawlRecord
	for i := 0; i < n; i++ {
		at := from.Add(time.Duration(rng.Int63n(int64(span))))
		pos, ok := ti.At(at)
		if !ok {
			continue
		}
		out = append(out, trace.CrawlRecord{
			CrawlT:     at.Add(time.Minute),
			TagID:      "tag",
			Pos:        geo.Destination(pos, rng.Float64()*360, rng.Float64()*maxErrM),
			ReportedAt: at,
		})
	}
	return out
}

// TestAccuracyMonotoneInRadius: widening the radius can never lose hits.
func TestAccuracyMonotoneInRadius(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	fixes := walkFixes(t0, origin, 4, 4*time.Hour)
	ti := NewTruthIndex(fixes)
	reports := randomReports(rng, ti, 60, 300, t0, 4*time.Hour)
	prev := -1
	for _, radius := range []float64{5, 10, 25, 50, 100, 200, 400} {
		res := Accuracy(ti, reports, 10*time.Minute, radius, t0, t0.Add(4*time.Hour))
		if res.Hits < prev {
			t.Fatalf("hits decreased at radius %.0f", radius)
		}
		prev = res.Hits
	}
}

// TestAccuracyMonotoneInBucket: longer buckets can never lower the hit
// fraction below what strictly shorter buckets achieve in aggregate...
// not exactly — but total hits per covered time must not decrease when
// buckets merge reports. We assert the weaker, always-true invariant:
// accuracy with an X-minute bucket is <= accuracy with a 2X bucket when
// every bucket boundary aligns (each merged bucket hits if either half
// hit).
func TestAccuracyMonotoneInBucket(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	fixes := walkFixes(t0, origin, 4, 8*time.Hour)
	ti := NewTruthIndex(fixes)
	reports := randomReports(rng, ti, 40, 150, t0, 8*time.Hour)
	for _, m := range []int{5, 10, 15, 30, 60} {
		short := Accuracy(ti, reports, time.Duration(m)*time.Minute, 100, t0, t0.Add(8*time.Hour))
		long := Accuracy(ti, reports, time.Duration(2*m)*time.Minute, 100, t0, t0.Add(8*time.Hour))
		if long.Pct() < short.Pct()-1e-9 {
			t.Fatalf("doubling the bucket from %d min lowered accuracy: %.2f -> %.2f", m, short.Pct(), long.Pct())
		}
	}
}

// TestAccuracyBoundedByReportQuality: with all reports farther than the
// radius, accuracy is zero; with all exact, accuracy equals coverage of
// buckets that contain a report.
func TestAccuracyBoundedByReportQuality(t *testing.T) {
	fixes := walkFixes(t0, origin, 4, 2*time.Hour)
	ti := NewTruthIndex(fixes)
	var farReports, exactReports []trace.CrawlRecord
	for i := 0; i < 12; i++ {
		at := t0.Add(time.Duration(i) * 10 * time.Minute)
		pos, _ := ti.At(at)
		farReports = append(farReports, trace.CrawlRecord{
			CrawlT: at, TagID: "tag", Pos: geo.Destination(pos, 0, 5000), ReportedAt: at,
		})
		exactReports = append(exactReports, trace.CrawlRecord{
			CrawlT: at, TagID: "tag", Pos: pos, ReportedAt: at,
		})
	}
	if res := Accuracy(ti, farReports, 10*time.Minute, 100, t0, t0.Add(2*time.Hour)); res.Hits != 0 {
		t.Errorf("5 km errors produced %d hits at 100 m", res.Hits)
	}
	res := Accuracy(ti, exactReports, 10*time.Minute, 100, t0, t0.Add(2*time.Hour))
	if res.Hits != res.Buckets {
		t.Errorf("exact reports: %d/%d", res.Hits, res.Buckets)
	}
}

// TestHomeFilterIdempotent: filtering twice equals filtering once.
func TestHomeFilterIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	var fixes []trace.GroundTruth
	for i := 0; i < 500; i++ {
		fixes = append(fixes, trace.GroundTruth{
			T:   t0.Add(time.Duration(i) * time.Minute),
			Pos: geo.Destination(origin, rng.Float64()*360, rng.Float64()*2000),
		})
	}
	homes := []geo.LatLon{origin, geo.Destination(origin, 90, 1500)}
	once, _ := FilterNearHomes(fixes, homes, 300)
	twice, frac := FilterNearHomes(once, homes, 300)
	if len(once) != len(twice) || frac != 0 {
		t.Errorf("second filter removed %d fixes (%.2f)", len(once)-len(twice), frac)
	}
}

// TestEpisodesCoverOrderedTime: episodes are disjoint and time-ordered.
func TestEpisodesCoverOrderedTime(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	var fixes []trace.GroundTruth
	cur := origin
	at := t0
	for hop := 0; hop < 8; hop++ {
		dwell := 6 + rng.Intn(20) // minutes
		for i := 0; i < dwell*12; i++ {
			fixes = append(fixes, trace.GroundTruth{T: at, Pos: cur})
			at = at.Add(5 * time.Second)
		}
		cur = geo.Destination(cur, rng.Float64()*360, 200+rng.Float64()*500)
	}
	eps := Episodes(fixes, 25, 5*time.Minute)
	if len(eps) < 6 {
		t.Fatalf("found %d episodes", len(eps))
	}
	for i := 1; i < len(eps); i++ {
		if eps[i].Start.Before(eps[i-1].End) {
			t.Fatal("episodes overlap or are out of order")
		}
	}
}

// TestHexVisitsTotalDwellBounded: total dwell can never exceed the trace
// duration.
func TestHexVisitsTotalDwellBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	var fixes []trace.GroundTruth
	at := t0
	pos := origin
	for i := 0; i < 2000; i++ {
		fixes = append(fixes, trace.GroundTruth{T: at, Pos: pos})
		at = at.Add(15 * time.Second)
		if rng.Float64() < 0.02 {
			pos = geo.Destination(pos, rng.Float64()*360, 300+rng.Float64()*800)
		}
	}
	span := fixes[len(fixes)-1].T.Sub(fixes[0].T)
	visits := HexVisits(fixes, 8, 5*time.Minute, 5*time.Minute)
	var total time.Duration
	for _, v := range visits {
		total += v.Duration()
	}
	if total > span {
		t.Fatalf("dwell %v exceeds trace span %v", total, span)
	}
}
