package analysis

import (
	"time"

	"tagsim/internal/geo"
	"tagsim/internal/trace"
)

// AccuracyResult is the hit/miss tally for one accuracy computation.
type AccuracyResult struct {
	Buckets int // buckets with ground-truth coverage
	Hits    int // buckets with a report within the radius
}

// Pct returns the accuracy percentage (0 when no buckets qualified).
func (r AccuracyResult) Pct() float64 {
	if r.Buckets == 0 {
		return 0
	}
	return float64(r.Hits) / float64(r.Buckets) * 100
}

// Add merges another result into r.
func (r *AccuracyResult) Add(o AccuracyResult) {
	r.Buckets += o.Buckets
	r.Hits += o.Hits
}

// Accuracy computes the paper's core metric. Time is cut into
// bucket-length intervals from `from` to `to`; a bucket counts when the
// vantage point has ground-truth coverage in it, and hits when at least
// one crawled report, with ReportedAt inside the bucket, lies within
// radiusM of the vantage point's position at the report time.
//
// The bucket length doubles as the responsiveness axis of Figures 5a-c:
// a 10-minute bucket asks "could the stalker locate the victim within 10
// minutes", a 120-minute bucket relaxes that to two hours.
//
// One-shot convenience over NewIndex(truth, reports).Accuracy; callers
// evaluating many (bucket, radius, window) combinations over the same
// data should build the Index once instead.
func Accuracy(truth *TruthIndex, reports []trace.CrawlRecord, bucket time.Duration, radiusM float64, from, to time.Time) AccuracyResult {
	if !IndexedAnalysis() {
		return accuracyScan(truth, reports, bucket, radiusM, from, to)
	}
	return NewIndex(truth, reports).Accuracy(bucket, radiusM, from, to)
}

// accuracyScan is the pre-index reference implementation — the seed's
// per-call scan, kept verbatim (mirroring device.NearBrute) as the
// ground truth the index-backed merge is property-tested against.
func accuracyScan(truth *TruthIndex, reports []trace.CrawlRecord, bucket time.Duration, radiusM float64, from, to time.Time) AccuracyResult {
	if bucket <= 0 || !to.After(from) {
		return AccuracyResult{}
	}
	// Index distinct reports by ReportedAt.
	distinct := distinctByReportTime(reports)
	var res AccuracyResult
	ri := 0
	for bs := from; bs.Before(to); bs = bs.Add(bucket) {
		be := bs.Add(bucket)
		if !truth.HasCoverage(bs, be) {
			continue
		}
		res.Buckets++
		// Advance to the first report in this bucket.
		for ri < len(distinct) && distinct[ri].ReportedAt.Before(bs) {
			ri++
		}
		for k := ri; k < len(distinct) && distinct[k].ReportedAt.Before(be); k++ {
			pos, ok := truth.At(distinct[k].ReportedAt)
			if !ok {
				continue
			}
			if geo.Distance(pos, distinct[k].Pos) <= radiusM {
				res.Hits++
				break
			}
		}
	}
	return res
}

// distinctByReportTime collapses repeated crawl observations of the same
// underlying report (trace.DistinctReports, the dedup shared with the
// crawler) and sorts by report time under a deterministic total order.
func distinctByReportTime(reports []trace.CrawlRecord) []trace.CrawlRecord {
	out := trace.DistinctReports(reports)
	trace.SortByReportTime(out)
	return out
}

// DailyAccuracy computes one accuracy sample per UTC day — the per-scenario
// sample population the paper runs its t-tests over. Days with fewer than
// minBuckets qualifying buckets are skipped.
func DailyAccuracy(truth *TruthIndex, reports []trace.CrawlRecord, bucket time.Duration, radiusM float64, from, to time.Time, minBuckets int) []float64 {
	if !IndexedAnalysis() {
		return dailyAccuracyScan(truth, reports, bucket, radiusM, from, to, minBuckets)
	}
	return NewIndex(truth, reports).DailyAccuracy(bucket, radiusM, from, to, minBuckets)
}

// dailyAccuracyScan is the pre-index reference implementation of
// DailyAccuracy (per-day rescan of the raw crawl log).
func dailyAccuracyScan(truth *TruthIndex, reports []trace.CrawlRecord, bucket time.Duration, radiusM float64, from, to time.Time, minBuckets int) []float64 {
	if minBuckets <= 0 {
		minBuckets = 3
	}
	var out []float64
	for day := from.UTC().Truncate(24 * time.Hour); day.Before(to); day = day.Add(24 * time.Hour) {
		dayEnd := day.Add(24 * time.Hour)
		lo, hi := maxTime(day, from), minTime(dayEnd, to)
		if !hi.After(lo) {
			continue
		}
		res := accuracyScan(truth, reports, bucket, radiusM, lo, hi)
		if res.Buckets >= minBuckets {
			out = append(out, res.Pct())
		}
	}
	return out
}

// BucketClassifier assigns an accuracy bucket to a class (speed class, day
// period, weekday/weekend...). ok=false excludes the bucket.
type BucketClassifier func(bucketStart, bucketEnd time.Time) (class string, ok bool)

// AccuracyByClass splits buckets by a classifier and tallies accuracy per
// class — the machinery behind Figures 5d, 5e, and 5f.
func AccuracyByClass(truth *TruthIndex, reports []trace.CrawlRecord, bucket time.Duration, radiusM float64, from, to time.Time, classify BucketClassifier) map[string]AccuracyResult {
	if !IndexedAnalysis() {
		return accuracyByClassScan(truth, reports, bucket, radiusM, from, to, classify)
	}
	return NewIndex(truth, reports).AccuracyByClass(bucket, radiusM, from, to, classify)
}

// accuracyByClassScan is the pre-index reference implementation of
// AccuracyByClass.
func accuracyByClassScan(truth *TruthIndex, reports []trace.CrawlRecord, bucket time.Duration, radiusM float64, from, to time.Time, classify BucketClassifier) map[string]AccuracyResult {
	out := make(map[string]AccuracyResult)
	if bucket <= 0 || !to.After(from) {
		return out
	}
	distinct := distinctByReportTime(reports)
	ri := 0
	for bs := from; bs.Before(to); bs = bs.Add(bucket) {
		be := bs.Add(bucket)
		if !truth.HasCoverage(bs, be) {
			continue
		}
		class, ok := classify(bs, be)
		if !ok {
			continue
		}
		res := out[class]
		res.Buckets++
		for ri < len(distinct) && distinct[ri].ReportedAt.Before(bs) {
			ri++
		}
		for k := ri; k < len(distinct) && distinct[k].ReportedAt.Before(be); k++ {
			pos, tok := truth.At(distinct[k].ReportedAt)
			if !tok {
				continue
			}
			if geo.Distance(pos, distinct[k].Pos) <= radiusM {
				res.Hits++
				break
			}
		}
		out[class] = res
	}
	return out
}

// DailyAccuracyByClass produces per-day accuracy samples per class, the
// inputs to the paper's t-tests (one mean accuracy per day per scenario).
func DailyAccuracyByClass(truth *TruthIndex, reports []trace.CrawlRecord, bucket time.Duration, radiusM float64, from, to time.Time, classify BucketClassifier, minBuckets int) map[string][]float64 {
	if !IndexedAnalysis() {
		return dailyAccuracyByClassScan(truth, reports, bucket, radiusM, from, to, classify, minBuckets)
	}
	return NewIndex(truth, reports).DailyAccuracyByClass(bucket, radiusM, from, to, classify, minBuckets)
}

// dailyAccuracyByClassScan is the pre-index reference implementation of
// DailyAccuracyByClass.
func dailyAccuracyByClassScan(truth *TruthIndex, reports []trace.CrawlRecord, bucket time.Duration, radiusM float64, from, to time.Time, classify BucketClassifier, minBuckets int) map[string][]float64 {
	if minBuckets <= 0 {
		minBuckets = 3
	}
	out := make(map[string][]float64)
	for day := from.UTC().Truncate(24 * time.Hour); day.Before(to); day = day.Add(24 * time.Hour) {
		dayEnd := day.Add(24 * time.Hour)
		lo, hi := maxTime(day, from), minTime(dayEnd, to)
		if !hi.After(lo) {
			continue
		}
		byClass := accuracyByClassScan(truth, reports, bucket, radiusM, lo, hi, classify)
		for class, res := range byClass {
			if res.Buckets >= minBuckets {
				out[class] = append(out[class], res.Pct())
			}
		}
	}
	return out
}

func maxTime(a, b time.Time) time.Time {
	if a.After(b) {
		return a
	}
	return b
}

func minTime(a, b time.Time) time.Time {
	if a.Before(b) {
		return a
	}
	return b
}
