package analysis

import (
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"tagsim/internal/geo"
	"tagsim/internal/trace"
)

// truthSpill routes campaign ground truth through disk-backed columnar
// logs instead of resident fix slices. Off by default: spill needs a
// writable temp directory and trades At-query locality for bounded
// memory, so continental-scale runs opt in explicitly.
var truthSpill atomic.Bool

// SetResidentTruth toggles whether campaign accumulation keeps ground
// truth resident (the default) or spills it to disk-backed columnar
// logs read through a cursor (bounded memory; raw-fix consumers like
// the headline episode picker and the hexagon figures see empty truth).
// It returns the previous setting so callers can restore it.
func SetResidentTruth(resident bool) (was bool) {
	return !truthSpill.Swap(!resident)
}

// ResidentTruth reports whether campaign ground truth stays resident.
func ResidentTruth() bool { return !truthSpill.Load() }

// TruthStore is a complete, time-sorted, frame-structured ground-truth
// log — the seekable face of pipeline.TruthFile, declared here so the
// analysis plane can read spilled truth without importing the pipeline
// (which imports analysis). Implementations must be safe for concurrent
// use and must order fixes by non-decreasing T across the whole store.
type TruthStore interface {
	// Total returns the number of fixes.
	Total() int
	// Frames returns the number of frames.
	Frames() int
	// FrameMeta returns frame i's first fix's global index, its fix
	// count, and its first/last fix instants in unix nanos.
	FrameMeta(i int) (start, count int, firstT, lastT int64)
	// ReadFrame decodes frame i into dst, reusing its capacity.
	ReadFrame(i int, dst []trace.GroundTruth) ([]trace.GroundTruth, error)
	// FrameTimes decodes only frame i's fix-instant column into dst.
	FrameTimes(i int, dst []int64) ([]int64, error)
}

// diskTruth serves TruthIndex queries from a TruthStore through a
// two-frame decoded window. Two frames, not one, because every At query
// needs the bracketing pair (fixes[i-1], fixes[i]), which straddles a
// frame boundary once per frame; with both resident the bracket is
// always a cache hit for the monotone access patterns the analysis
// plane produces (sorted distinct reports, bucket sweeps). The window
// is guarded by a mutex, so a disk-backed TruthIndex stays safe for the
// concurrent figure sweeps the resident index supports — concurrent At
// queries serialize rather than race.
type diskTruth struct {
	store TruthStore

	mu    sync.Mutex
	frame [2]int // frame index loaded in each slot, -1 = empty
	fixes [2][]trace.GroundTruth
	use   [2]int64 // last-use tick per slot, for LRU eviction
	tick  int64
}

func newDiskTruth(store TruthStore) *diskTruth {
	return &diskTruth{store: store, frame: [2]int{-1, -1}}
}

// frameOf returns the frame holding global fix index g, via the frame
// metas (no decoding).
func (dt *diskTruth) frameOf(g int) int {
	n := dt.store.Frames()
	return sort.Search(n, func(i int) bool {
		start, count, _, _ := dt.store.FrameMeta(i)
		return start+count > g
	})
}

// load returns frame fi's decoded fixes, serving from the window when
// possible. Callers hold dt.mu. A decode error panics: the store was
// validated at open time, so mid-query corruption is unrecoverable in
// the same way a truncated mmap would be.
func (dt *diskTruth) load(fi int) []trace.GroundTruth {
	dt.tick++
	for s := 0; s < 2; s++ {
		if dt.frame[s] == fi {
			dt.use[s] = dt.tick
			return dt.fixes[s]
		}
	}
	slot := 0
	if dt.use[1] < dt.use[0] {
		slot = 1
	}
	fixes, err := dt.store.ReadFrame(fi, dt.fixes[slot])
	if err != nil {
		panic("analysis: truth store frame " + itoa(fi) + " unreadable: " + err.Error())
	}
	dt.frame[slot], dt.fixes[slot], dt.use[slot] = fi, fixes, dt.tick
	return fixes
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

// fix returns the fix at global index g. Callers hold dt.mu.
func (dt *diskTruth) fix(g int) trace.GroundTruth {
	fi := dt.frameOf(g)
	start, _, _, _ := dt.store.FrameMeta(fi)
	return dt.load(fi)[g-start]
}

// lowerBound returns the first global index whose fix instant is >= tNs
// (Total() when none is). Callers hold dt.mu.
func (dt *diskTruth) lowerBound(tNs int64) int {
	n := dt.store.Frames()
	fi := sort.Search(n, func(i int) bool {
		_, _, _, lastT := dt.store.FrameMeta(i)
		return lastT >= tNs
	})
	if fi == n {
		return dt.store.Total()
	}
	start, _, _, _ := dt.store.FrameMeta(fi)
	fixes := dt.load(fi)
	k := sort.Search(len(fixes), func(i int) bool { return fixes[i].T.UnixNano() >= tNs })
	return start + k
}

// at replicates the resident TruthIndex.At decision tree over the
// store. The arithmetic is shared via truthAt, so the two backends
// cannot drift.
func (dt *diskTruth) at(t time.Time, maxGap time.Duration) (geo.LatLon, bool) {
	dt.mu.Lock()
	defer dt.mu.Unlock()
	n := dt.store.Total()
	if n == 0 {
		return geo.LatLon{}, false
	}
	i := dt.lowerBound(t.UnixNano())
	switch {
	case i == 0:
		return truthAtEdge(dt.fix(0), t, maxGap)
	case i == n:
		return truthAtEdge(dt.fix(n-1), t, maxGap)
	}
	return truthAtBetween(dt.fix(i-1), dt.fix(i), t, maxGap)
}

// hasCoverage replicates the resident TruthIndex.HasCoverage logic.
func (dt *diskTruth) hasCoverage(from, to time.Time, maxGap time.Duration) bool {
	dt.mu.Lock()
	i := dt.lowerBound(from.UnixNano())
	inWindow := i < dt.store.Total() && dt.fix(i).T.Before(to)
	dt.mu.Unlock()
	if inWindow {
		return true
	}
	mid := from.Add(to.Sub(from) / 2)
	_, ok := dt.at(mid, maxGap)
	return ok
}

// span returns the store's first and last fix instants.
func (dt *diskTruth) span() (from, to time.Time, ok bool) {
	n := dt.store.Frames()
	if n == 0 {
		return time.Time{}, time.Time{}, false
	}
	_, _, firstT, _ := dt.store.FrameMeta(0)
	_, _, _, lastT := dt.store.FrameMeta(n - 1)
	return time.Unix(0, firstT).UTC(), time.Unix(0, lastT).UTC(), true
}

// fixTimes streams every fix instant into one resident int64 column —
// what NewIndex keeps per vendor instead of the fixes themselves (8 B
// per fix versus ~128 B for the struct), preserving the index's
// lock-free concurrent sweeps over spilled truth.
func (dt *diskTruth) fixTimes() []int64 {
	out := make([]int64, 0, dt.store.Total())
	var buf []int64
	for fi := 0; fi < dt.store.Frames(); fi++ {
		var err error
		buf, err = dt.store.FrameTimes(fi, buf)
		if err != nil {
			panic("analysis: truth store frame " + itoa(fi) + " unreadable: " + err.Error())
		}
		out = append(out, buf...)
	}
	return out
}

// NewDiskTruthIndex builds a TruthIndex over a spilled columnar truth
// store. At, HasCoverage, AvgSpeedKmh, Len, and Span answer exactly as
// the resident index over the same fix sequence would (see the cursor
// equivalence tests); DetectHomes-style raw-fix access is not available.
func NewDiskTruthIndex(store TruthStore) *TruthIndex {
	return &TruthIndex{disk: newDiskTruth(store), MaxGap: 3 * time.Minute}
}

// Close releases the underlying truth store when the index is
// disk-backed and the store holds an io.Closer (resident indexes are a
// no-op). The index must not be queried after Close.
func (ti *TruthIndex) Close() error {
	if ti.disk == nil {
		return nil
	}
	if c, ok := ti.disk.store.(io.Closer); ok {
		return c.Close()
	}
	return nil
}
