package analysis

import (
	"math"
	"testing"
	"time"

	"tagsim/internal/geo"
	"tagsim/internal/hexgrid"
	"tagsim/internal/trace"
)

func TestPeriodOf(t *testing.T) {
	mk := func(h int) time.Time { return time.Date(2022, 3, 7, h, 30, 0, 0, time.UTC) }
	cases := []struct {
		hour int
		want DayPeriod
		ok   bool
	}{
		{6, PeriodMorning, true}, {9, PeriodMorning, true},
		{10, PeriodLunch, true}, {13, PeriodLunch, true},
		{14, PeriodAfternoon, true}, {17, PeriodAfternoon, true},
		{18, PeriodEvening, true}, {21, PeriodEvening, true},
		{22, PeriodNight, true}, {23, PeriodNight, true},
		{0, PeriodNight, true}, {1, PeriodNight, true},
		{2, "", false}, {5, "", false},
	}
	for _, c := range cases {
		got, ok := PeriodOf(mk(c.hour))
		if got != c.want || ok != c.ok {
			t.Errorf("PeriodOf(%02d:30) = %q,%v want %q,%v", c.hour, got, ok, c.want, c.ok)
		}
	}
}

func TestWeekPartOf(t *testing.T) {
	if WeekPartOf(t0) != Weekday { // Monday
		t.Error("Monday should be a weekday")
	}
	if WeekPartOf(t0.Add(5*24*time.Hour)) != Weekend { // Saturday
		t.Error("Saturday should be weekend")
	}
}

func TestSpeedClassifier(t *testing.T) {
	fixes := walkFixes(t0, origin, 8, 30*time.Minute) // jogging speed
	ti := NewTruthIndex(fixes)
	classify := SpeedClassifier(ti)
	class, ok := classify(t0, t0.Add(10*time.Minute))
	if !ok || class != "Jogging" {
		t.Errorf("classify = %q, %v", class, ok)
	}
	// No coverage: excluded.
	if _, ok := classify(t0.Add(5*time.Hour), t0.Add(5*time.Hour+10*time.Minute)); ok {
		t.Error("uncovered bucket must be excluded")
	}
}

func TestHourlyUpdateCounts(t *testing.T) {
	history := []trace.Report{
		{T: t0}, {T: t0.Add(10 * time.Minute)}, {T: t0.Add(70 * time.Minute)},
	}
	counts := HourlyUpdateCounts(history)
	if counts[t0.Truncate(time.Hour)] != 2 {
		t.Errorf("hour 0 = %d", counts[t0.Truncate(time.Hour)])
	}
	if counts[t0.Add(time.Hour).Truncate(time.Hour)] != 1 {
		t.Error("hour 1 wrong")
	}
}

func TestUpdateRateByHourOfDay(t *testing.T) {
	// Two days: 3 updates at 12:00 each day, 320 devices at noon.
	var history []trace.Report
	var counts []trace.DeviceCount
	for d := 0; d < 2; d++ {
		noon := time.Date(2022, 3, 7+d, 12, 0, 0, 0, time.UTC)
		for i := 0; i < 3; i++ {
			history = append(history, trace.Report{T: noon.Add(time.Duration(i*7) * time.Minute)})
		}
		counts = append(counts, trace.DeviceCount{T: noon, Apple: 320})
	}
	from := time.Date(2022, 3, 7, 0, 0, 0, 0, time.UTC)
	rows := UpdateRateByHourOfDay(history, counts, func(c trace.DeviceCount) int { return c.Apple }, from, from.Add(48*time.Hour))
	if len(rows) != 24 {
		t.Fatalf("%d rows, want 24", len(rows))
	}
	for _, r := range rows {
		switch r.Hour {
		case 12:
			if math.Abs(r.MeanRate-3) > 0.01 || math.Abs(r.MeanDevices-320) > 0.01 {
				t.Errorf("noon row = %+v", r)
			}
			if r.StdRate != 0 {
				t.Errorf("identical days should have zero std, got %v", r.StdRate)
			}
		case 3:
			if r.MeanRate != 0 {
				t.Errorf("3am rate = %v", r.MeanRate)
			}
		}
	}
}

func TestUpdateRateVsDevices(t *testing.T) {
	var history []trace.Report
	var counts []trace.DeviceCount
	base := time.Date(2022, 3, 7, 0, 0, 0, 0, time.UTC)
	// 10 hours with 5 devices and rate 5; 10 hours with 95 devices, rate 18.
	for i := 0; i < 10; i++ {
		h := base.Add(time.Duration(i) * time.Hour)
		counts = append(counts, trace.DeviceCount{T: h, Apple: 5})
		for k := 0; k < 5; k++ {
			history = append(history, trace.Report{T: h.Add(time.Duration(k) * time.Minute)})
		}
		h2 := base.Add(time.Duration(100+i) * time.Hour)
		counts = append(counts, trace.DeviceCount{T: h2, Apple: 95})
		for k := 0; k < 18; k++ {
			history = append(history, trace.Report{T: h2.Add(time.Duration(k) * time.Minute)})
		}
	}
	// An hour with zero devices is excluded.
	counts = append(counts, trace.DeviceCount{T: base.Add(50 * time.Hour), Apple: 0})

	buckets := UpdateRateVsDevices(history, counts, func(c trace.DeviceCount) int { return c.Apple }, 10)
	if len(buckets) != 2 {
		t.Fatalf("buckets = %+v", buckets)
	}
	lo, hi := buckets[0], buckets[1]
	if lo.MinDevices != 1 || lo.MaxDevices != 10 || math.Abs(lo.MeanRate-5) > 0.01 {
		t.Errorf("low bucket = %+v", lo)
	}
	if hi.MinDevices != 91 || hi.MaxDevices != 100 || math.Abs(hi.MeanRate-18) > 0.01 {
		t.Errorf("high bucket = %+v", hi)
	}
	if math.Abs(lo.Likelihood-0.5) > 0.01 || math.Abs(hi.Likelihood-0.5) > 0.01 {
		t.Errorf("likelihoods = %v / %v", lo.Likelihood, hi.Likelihood)
	}
	if UpdateRateVsDevices(nil, nil, func(trace.DeviceCount) int { return 0 }, 10) != nil {
		t.Error("empty inputs should yield nil")
	}
}

func TestEpisodes(t *testing.T) {
	var fixes []trace.GroundTruth
	placeA := origin
	placeB := geo.Destination(origin, 90, 500)
	// 10 min at A, walk to B (~6 min), 10 min at B.
	for i := 0; i <= 120; i++ {
		fixes = append(fixes, trace.GroundTruth{T: t0.Add(time.Duration(i*5) * time.Second), Pos: placeA})
	}
	walkStart := t0.Add(10*time.Minute + 5*time.Second)
	for i := 0; i < 70; i++ {
		at := walkStart.Add(time.Duration(i*5) * time.Second)
		fixes = append(fixes, trace.GroundTruth{T: at, Pos: geo.Lerp(placeA, placeB, float64(i)/70)})
	}
	bStart := walkStart.Add(350 * time.Second)
	for i := 0; i <= 120; i++ {
		fixes = append(fixes, trace.GroundTruth{T: bStart.Add(time.Duration(i*5) * time.Second), Pos: placeB})
	}
	eps := Episodes(fixes, 25, 5*time.Minute)
	if len(eps) != 2 {
		t.Fatalf("episodes = %d, want 2 (A and B)", len(eps))
	}
	if geo.Distance(eps[0].Anchor, placeA) > 30 || geo.Distance(eps[1].Anchor, placeB) > 30 {
		t.Error("episode anchors off")
	}
	if eps[0].Duration() < 9*time.Minute {
		t.Errorf("episode A lasted %v", eps[0].Duration())
	}
}

func TestFirstHitDelaysAndBacktrack(t *testing.T) {
	ep := Episode{Anchor: origin, Start: t0, End: t0.Add(30 * time.Minute)}
	ep2 := Episode{Anchor: geo.Destination(origin, 90, 2000), Start: t0.Add(time.Hour), End: t0.Add(90 * time.Minute)}
	reports := []trace.CrawlRecord{
		crawlAt(t0.Add(20*time.Minute), geo.Destination(origin, 0, 5)), // hits ep after 20 min
		// nothing near ep2
	}
	delays := FirstHitDelays([]Episode{ep, ep2}, reports, 10, time.Hour)
	if len(delays) != 2 {
		t.Fatal("want 2 delay samples")
	}
	if !delays[0].Found || delays[0].Delay != 20*time.Minute {
		t.Errorf("ep delay = %+v", delays[0])
	}
	if delays[1].Found {
		t.Error("ep2 should have no hit")
	}
	if f := BacktrackFraction(delays, time.Hour); f != 0.5 {
		t.Errorf("backtrack fraction = %v, want 0.5", f)
	}
	if f := BacktrackFraction(delays, 10*time.Minute); f != 0 {
		t.Errorf("10-min fraction = %v, want 0", f)
	}
	if BacktrackFraction(nil, time.Hour) != 0 {
		t.Error("empty delays fraction must be 0")
	}
}

func TestHexVisits(t *testing.T) {
	cellA := hexgrid.LatLonToCell(origin, 8)
	centerA := hexgrid.CellToLatLon(cellA)
	farB := geo.Destination(centerA, 90, 3000)
	var fixes []trace.GroundTruth
	// 10 minutes in A.
	for i := 0; i <= 120; i++ {
		fixes = append(fixes, trace.GroundTruth{T: t0.Add(time.Duration(i*5) * time.Second), Pos: centerA})
	}
	// Brief pass through B (30 seconds).
	passStart := t0.Add(11 * time.Minute)
	for i := 0; i < 6; i++ {
		fixes = append(fixes, trace.GroundTruth{T: passStart.Add(time.Duration(i*5) * time.Second), Pos: farB})
	}
	visits := HexVisits(fixes, 8, 5*time.Minute, 5*time.Minute)
	if len(visits) != 1 {
		t.Fatalf("visits = %d, want 1 (pass-through dropped)", len(visits))
	}
	if visits[0].Cell != cellA {
		t.Error("wrong visited cell")
	}
	if visits[0].Duration() < 9*time.Minute {
		t.Errorf("dwell = %v", visits[0].Duration())
	}
	cells := DistinctCells(visits)
	if len(cells) != 1 || cells[0] != cellA {
		t.Errorf("distinct cells = %v", cells)
	}
	dwell := TotalDwellByCell(visits)
	if dwell[cellA] < 9*time.Minute {
		t.Error("dwell map wrong")
	}
}

func TestHexVisitsGapSplits(t *testing.T) {
	cellA := hexgrid.LatLonToCell(origin, 8)
	centerA := hexgrid.CellToLatLon(cellA)
	var fixes []trace.GroundTruth
	for i := 0; i <= 120; i++ {
		fixes = append(fixes, trace.GroundTruth{T: t0.Add(time.Duration(i*5) * time.Second), Pos: centerA})
	}
	// One-hour gap, then 10 more minutes in the same cell.
	resume := t0.Add(70 * time.Minute)
	for i := 0; i <= 120; i++ {
		fixes = append(fixes, trace.GroundTruth{T: resume.Add(time.Duration(i*5) * time.Second), Pos: centerA})
	}
	visits := HexVisits(fixes, 8, 5*time.Minute, 5*time.Minute)
	if len(visits) != 2 {
		t.Fatalf("gap should split visits: got %d", len(visits))
	}
}

func TestCellAccuracy(t *testing.T) {
	cellA := hexgrid.LatLonToCell(origin, 8)
	centerA := hexgrid.CellToLatLon(cellA)
	var fixes []trace.GroundTruth
	for i := 0; i <= 720; i++ { // one hour in the cell
		fixes = append(fixes, trace.GroundTruth{T: t0.Add(time.Duration(i*5) * time.Second), Pos: centerA})
	}
	ti := NewTruthIndex(fixes)
	visits := HexVisits(fixes, 8, 5*time.Minute, 5*time.Minute)
	reports := []trace.CrawlRecord{crawlAt(t0.Add(30*time.Minute), geo.Destination(centerA, 0, 20))}
	acc := CellAccuracy(ti, reports, visits, time.Hour, 100)
	pct, ok := acc[cellA]
	if !ok {
		t.Fatal("no accuracy for the visited cell")
	}
	if pct < 40 || pct > 100 {
		t.Errorf("cell accuracy = %v", pct)
	}
	// No reports: zero accuracy but present.
	acc2 := CellAccuracy(ti, nil, visits, time.Hour, 100)
	if pct2, ok := acc2[cellA]; !ok || pct2 != 0 {
		t.Errorf("no-report accuracy = %v, %v", pct2, ok)
	}
}
