package analysis

import (
	"sort"
	"time"

	"tagsim/internal/stats"
	"tagsim/internal/trace"
)

// HourlyUpdateCounts counts accepted cloud reports per wall-clock hour.
func HourlyUpdateCounts(history []trace.Report) map[time.Time]int {
	out := make(map[time.Time]int)
	for _, r := range history {
		out[r.T.UTC().Truncate(time.Hour)]++
	}
	return out
}

// HourOfDayRate is one row of Figure 3: a tag's update rate and the
// companion device count at one hour of the day, averaged across days.
type HourOfDayRate struct {
	Hour        int
	MeanRate    float64 // updates per hour
	StdRate     float64
	MeanDevices float64 // reporting-capable devices present
	StdDevices  float64
}

// UpdateRateByHourOfDay averages per-hour update counts and device counts
// across days, producing Figure 3's series. Hours with no device-count
// sample contribute a zero device count.
func UpdateRateByHourOfDay(history []trace.Report, counts []trace.DeviceCount, deviceCountOf func(trace.DeviceCount) int, from, to time.Time) []HourOfDayRate {
	updates := HourlyUpdateCounts(history)
	countAt := make(map[time.Time]int, len(counts))
	for _, c := range counts {
		countAt[c.T.UTC().Truncate(time.Hour)] = deviceCountOf(c)
	}
	rates := make(map[int][]float64)
	devs := make(map[int][]float64)
	for h := from.UTC().Truncate(time.Hour); h.Before(to); h = h.Add(time.Hour) {
		hod := h.Hour()
		rates[hod] = append(rates[hod], float64(updates[h]))
		devs[hod] = append(devs[hod], float64(countAt[h]))
	}
	out := make([]HourOfDayRate, 0, 24)
	for hod := 0; hod < 24; hod++ {
		if len(rates[hod]) == 0 {
			continue
		}
		row := HourOfDayRate{
			Hour:        hod,
			MeanRate:    stats.Mean(rates[hod]),
			MeanDevices: stats.Mean(devs[hod]),
		}
		if len(rates[hod]) > 1 {
			row.StdRate = stats.StdDev(rates[hod])
			row.StdDevices = stats.StdDev(devs[hod])
		}
		out = append(out, row)
	}
	return out
}

// RateBucket is one bar of Figure 4: for hours in which N reporting
// devices were present (N in [MinDevices, MaxDevices]), the likelihood of
// such an hour and the mean update rate achieved.
type RateBucket struct {
	MinDevices, MaxDevices int
	Likelihood             float64 // fraction of observed hours in this bucket
	MeanRate               float64 // mean updates/hour
	StdRate                float64
	Hours                  int
}

// UpdateRateVsDevices joins hourly update counts with hourly device counts
// and buckets by device count in steps of width (Figure 4; the paper uses
// width 10: "up to 10", "11-20", ...). Hours with zero devices are
// excluded, matching the paper's x-axis which starts at 1.
func UpdateRateVsDevices(history []trace.Report, counts []trace.DeviceCount, deviceCountOf func(trace.DeviceCount) int, width int) []RateBucket {
	if width <= 0 {
		width = 10
	}
	updates := HourlyUpdateCounts(history)
	type sample struct {
		devices int
		rate    float64
	}
	var samples []sample
	for _, c := range counts {
		n := deviceCountOf(c)
		if n <= 0 {
			continue
		}
		hour := c.T.UTC().Truncate(time.Hour)
		samples = append(samples, sample{devices: n, rate: float64(updates[hour])})
	}
	if len(samples) == 0 {
		return nil
	}
	byBucket := make(map[int][]float64)
	for _, s := range samples {
		b := (s.devices - 1) / width
		byBucket[b] = append(byBucket[b], s.rate)
	}
	buckets := make([]int, 0, len(byBucket))
	for b := range byBucket {
		buckets = append(buckets, b)
	}
	sort.Ints(buckets)
	out := make([]RateBucket, 0, len(buckets))
	for _, b := range buckets {
		rs := byBucket[b]
		rb := RateBucket{
			MinDevices: b*width + 1,
			MaxDevices: (b + 1) * width,
			Likelihood: float64(len(rs)) / float64(len(samples)),
			MeanRate:   stats.Mean(rs),
			Hours:      len(rs),
		}
		if len(rs) > 1 {
			rb.StdRate = stats.StdDev(rs)
		}
		out = append(out, rb)
	}
	return out
}
