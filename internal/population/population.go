// Package population provides the synthetic stand-in for the Kontur
// population dataset the paper joins against: a per-hexagon population
// count at H3 resolution 8, plus weighted sampling of resident home
// locations so reporting-device density follows population density.
//
// The synthetic surface is a multi-cluster exponential city model with
// log-normal texture — enough structure to produce the low/medium/high
// density strata of the paper's Figure 7 without any external data.
package population

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"tagsim/internal/geo"
	"tagsim/internal/hexgrid"
)

// DensityClass is the paper's population-density stratum.
type DensityClass uint8

// Density classes with the paper's thresholds: below 600 people per
// res-8 hexagon is low, 600-1,750 is medium, above is high.
const (
	DensityLow DensityClass = iota
	DensityMedium
	DensityHigh
)

// Paper-quoted class thresholds (people per res-8 cell).
const (
	LowDensityMax    = 600.0
	MediumDensityMax = 1750.0
)

var classNames = [...]string{"Low", "Medium", "High"}

// String names the class.
func (c DensityClass) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("DensityClass(%d)", uint8(c))
}

// Classify buckets a population count using the paper's fixed thresholds.
func Classify(pop float64) DensityClass {
	switch {
	case pop < LowDensityMax:
		return DensityLow
	case pop < MediumDensityMax:
		return DensityMedium
	default:
		return DensityHigh
	}
}

// Map is a population raster over hexagonal cells at a fixed resolution.
type Map struct {
	res   int
	cells map[hexgrid.Cell]float64
	// order and cum support deterministic weighted sampling.
	order []hexgrid.Cell
	cum   []float64
	total float64
}

// Resolution returns the hexagon resolution of the raster.
func (m *Map) Resolution() int { return m.res }

// Total returns the total population.
func (m *Map) Total() float64 { return m.total }

// NumCells returns the number of populated cells.
func (m *Map) NumCells() int { return len(m.order) }

// Density returns the population of the cell containing p (zero outside
// the raster).
func (m *Map) Density(p geo.LatLon) float64 {
	return m.cells[hexgrid.LatLonToCell(p, m.res)]
}

// DensityOfCell returns the population of a specific cell.
func (m *Map) DensityOfCell(c hexgrid.Cell) float64 { return m.cells[c] }

// ClassOf returns the density class of the cell containing p.
func (m *Map) ClassOf(p geo.LatLon) DensityClass { return Classify(m.Density(p)) }

// Cells returns the populated cells in deterministic order.
func (m *Map) Cells() []hexgrid.Cell { return m.order }

// SampleHome draws a home location weighted by population: a
// population-proportional cell, then a uniform point within it.
func (m *Map) SampleHome(rng *rand.Rand) geo.LatLon {
	if m.total <= 0 || len(m.order) == 0 {
		return geo.LatLon{}
	}
	target := rng.Float64() * m.total
	i := sort.SearchFloat64s(m.cum, target)
	if i >= len(m.order) {
		i = len(m.order) - 1
	}
	cell := m.order[i]
	center := hexgrid.CellToLatLon(cell)
	// Uniform point in the hexagon's inscribed disk (radius =
	// edge*sqrt(3)/2), a close-enough stand-in for uniform-in-hexagon.
	r := hexgrid.EdgeLengthM(m.res) * math.Sqrt(3) / 2 * math.Sqrt(rng.Float64())
	return geo.Destination(center, rng.Float64()*360, r)
}

// FromCells builds a map directly from per-cell populations (all cells
// must share the resolution res).
func FromCells(res int, cells map[hexgrid.Cell]float64) *Map {
	m := &Map{res: res, cells: make(map[hexgrid.Cell]float64, len(cells))}
	for c, p := range cells {
		if p <= 0 {
			continue
		}
		if c.Resolution() != res {
			panic(fmt.Sprintf("population: cell %v has resolution %d, map is %d", c, c.Resolution(), res))
		}
		m.cells[c] = p
		m.order = append(m.order, c)
	}
	sort.Slice(m.order, func(i, j int) bool { return m.order[i] < m.order[j] })
	m.cum = make([]float64, len(m.order))
	for i, c := range m.order {
		m.total += m.cells[c]
		m.cum[i] = m.total
	}
	return m
}

// CityConfig parameterizes a synthetic city.
type CityConfig struct {
	Center geo.LatLon
	// RadiusKm is the built-up radius; cells beyond ~1.2x are dropped.
	RadiusKm float64
	// Population is the total resident count to distribute.
	Population float64
	// Clusters is the number of secondary density peaks (default 3).
	Clusters int
	// Resolution is the hexagon resolution (default 8, matching Kontur).
	Resolution int
}

func (c *CityConfig) defaults() {
	if c.Clusters == 0 {
		c.Clusters = 3
	}
	if c.Resolution == 0 {
		c.Resolution = 8
	}
	if c.RadiusKm == 0 {
		c.RadiusKm = 5
	}
}

// SyntheticCity generates a population raster: an exponential core around
// the center, secondary cluster peaks, and log-normal texture, scaled to
// the requested total population.
func SyntheticCity(cfg CityConfig, rng *rand.Rand) *Map {
	cfg.defaults()
	radiusM := cfg.RadiusKm * 1000
	box := geo.NewBBox(cfg.Center).Buffer(radiusM * 1.2)
	cells := hexgrid.CoverBBox(box, cfg.Resolution)
	// Deterministic iteration order regardless of CoverBBox internals.
	sort.Slice(cells, func(i, j int) bool { return cells[i] < cells[j] })

	// Secondary peaks at 30-80% of the radius.
	type cluster struct {
		at     geo.LatLon
		weight float64
		scale  float64
	}
	clusters := make([]cluster, cfg.Clusters)
	for i := range clusters {
		clusters[i] = cluster{
			at:     geo.Destination(cfg.Center, rng.Float64()*360, radiusM*(0.3+0.5*rng.Float64())),
			weight: 0.25 + 0.5*rng.Float64(),
			scale:  radiusM * (0.15 + 0.15*rng.Float64()),
		}
	}
	coreScale := radiusM * 0.35

	weights := make(map[hexgrid.Cell]float64, len(cells))
	var sum float64
	for _, c := range cells {
		center := hexgrid.CellToLatLon(c)
		d := geo.Distance(center, cfg.Center)
		if d > radiusM*1.2 {
			continue
		}
		w := math.Exp(-d / coreScale)
		for _, cl := range clusters {
			dc := geo.Distance(center, cl.at)
			w += cl.weight * math.Exp(-dc*dc/(2*cl.scale*cl.scale))
		}
		// Log-normal texture: median 1, sigma 0.6.
		w *= math.Exp(rng.NormFloat64() * 0.6)
		if w < 1e-6 {
			continue
		}
		weights[c] = w
		sum += w
	}
	if sum == 0 {
		return FromCells(cfg.Resolution, nil)
	}
	scaled := make(map[hexgrid.Cell]float64, len(weights))
	for c, w := range weights {
		scaled[c] = w / sum * cfg.Population
	}
	return FromCells(cfg.Resolution, scaled)
}

// PercentileThresholds computes density-class cut points as the paper's
// appendix does for visited hexagons: the 33rd and 66th percentiles of the
// provided per-cell populations.
func PercentileThresholds(pops []float64) (lowMax, mediumMax float64) {
	if len(pops) == 0 {
		return LowDensityMax, MediumDensityMax
	}
	sorted := append([]float64(nil), pops...)
	sort.Float64s(sorted)
	idx := func(p float64) float64 {
		i := int(p / 100 * float64(len(sorted)-1))
		return sorted[i]
	}
	return idx(33), idx(66)
}
