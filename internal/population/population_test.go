package population

import (
	"math"
	"math/rand"
	"testing"

	"tagsim/internal/geo"
	"tagsim/internal/hexgrid"
)

var abuDhabi = geo.LatLon{Lat: 24.4539, Lon: 54.3773}

func testCity(seed int64) *Map {
	rng := rand.New(rand.NewSource(seed))
	return SyntheticCity(CityConfig{Center: abuDhabi, RadiusKm: 4, Population: 200000}, rng)
}

func TestClassify(t *testing.T) {
	cases := []struct {
		pop  float64
		want DensityClass
	}{
		{0, DensityLow}, {599, DensityLow},
		{600, DensityMedium}, {1749, DensityMedium},
		{1750, DensityHigh}, {10000, DensityHigh},
	}
	for _, c := range cases {
		if got := Classify(c.pop); got != c.want {
			t.Errorf("Classify(%v) = %v, want %v", c.pop, got, c.want)
		}
	}
}

func TestClassString(t *testing.T) {
	if DensityLow.String() != "Low" || DensityHigh.String() != "High" {
		t.Error("class names wrong")
	}
	if DensityClass(7).String() != "DensityClass(7)" {
		t.Error("unknown class name wrong")
	}
}

func TestSyntheticCityTotalPopulation(t *testing.T) {
	m := testCity(1)
	if math.Abs(m.Total()-200000) > 1 {
		t.Errorf("Total = %.1f, want 200000", m.Total())
	}
	if m.NumCells() < 30 {
		t.Errorf("city has only %d cells", m.NumCells())
	}
	if m.Resolution() != 8 {
		t.Errorf("resolution = %d", m.Resolution())
	}
}

func TestSyntheticCityDeterministic(t *testing.T) {
	a, b := testCity(42), testCity(42)
	if a.NumCells() != b.NumCells() || a.Total() != b.Total() {
		t.Fatal("city generation not deterministic")
	}
	for _, c := range a.Cells() {
		if a.DensityOfCell(c) != b.DensityOfCell(c) {
			t.Fatal("cell densities differ between identical seeds")
		}
	}
}

func TestDensityDecaysFromCenter(t *testing.T) {
	m := testCity(7)
	// Average density near the center should exceed the average near the
	// periphery (noise makes individual cells unreliable).
	var nearSum, farSum float64
	var nearN, farN int
	for _, c := range m.Cells() {
		d := geo.Distance(hexgrid.CellToLatLon(c), abuDhabi)
		switch {
		case d < 1500:
			nearSum += m.DensityOfCell(c)
			nearN++
		case d > 3500:
			farSum += m.DensityOfCell(c)
			farN++
		}
	}
	if nearN == 0 || farN == 0 {
		t.Fatal("missing near/far cells")
	}
	if nearSum/float64(nearN) <= farSum/float64(farN) {
		t.Errorf("density does not decay: near %.0f vs far %.0f", nearSum/float64(nearN), farSum/float64(farN))
	}
}

func TestDensityLookupConsistency(t *testing.T) {
	m := testCity(3)
	for _, c := range m.Cells()[:10] {
		center := hexgrid.CellToLatLon(c)
		if m.Density(center) != m.DensityOfCell(c) {
			t.Fatal("Density(center) disagrees with DensityOfCell")
		}
	}
	// Far outside the city: zero.
	if m.Density(geo.LatLon{Lat: -60, Lon: 0}) != 0 {
		t.Error("antarctic density should be zero")
	}
	if m.ClassOf(geo.LatLon{Lat: -60, Lon: 0}) != DensityLow {
		t.Error("unpopulated area should class Low")
	}
}

func TestSampleHomeFollowsDensity(t *testing.T) {
	m := testCity(5)
	rng := rand.New(rand.NewSource(99))
	counts := make(map[hexgrid.Cell]int)
	const n = 20000
	for i := 0; i < n; i++ {
		h := m.SampleHome(rng)
		counts[hexgrid.LatLonToCell(h, 8)]++
	}
	// Empirical share should track density share for the heaviest cells.
	cells := m.Cells()
	var heaviest hexgrid.Cell
	var maxPop float64
	for _, c := range cells {
		if p := m.DensityOfCell(c); p > maxPop {
			maxPop, heaviest = p, c
		}
	}
	wantShare := maxPop / m.Total()
	gotShare := float64(counts[heaviest]) / n
	if gotShare < wantShare*0.6 || gotShare > wantShare*1.5 {
		t.Errorf("heaviest cell share %.4f, want ~%.4f", gotShare, wantShare)
	}
}

func TestSampleHomeEmptyMap(t *testing.T) {
	m := FromCells(8, nil)
	if !m.SampleHome(rand.New(rand.NewSource(1))).IsZero() {
		t.Error("empty map should sample the zero position")
	}
}

func TestFromCellsValidation(t *testing.T) {
	good := hexgrid.LatLonToCell(abuDhabi, 8)
	m := FromCells(8, map[hexgrid.Cell]float64{good: 100, hexgrid.LatLonToCell(abuDhabi, 8): 100})
	if m.Total() != 100 {
		t.Errorf("Total = %v", m.Total())
	}
	// Non-positive populations are dropped.
	m2 := FromCells(8, map[hexgrid.Cell]float64{good: -5})
	if m2.NumCells() != 0 {
		t.Error("negative population kept")
	}
	// Wrong resolution panics.
	defer func() {
		if recover() == nil {
			t.Error("expected panic for resolution mismatch")
		}
	}()
	FromCells(8, map[hexgrid.Cell]float64{hexgrid.LatLonToCell(abuDhabi, 7): 10})
}

func TestPercentileThresholds(t *testing.T) {
	pops := make([]float64, 100)
	for i := range pops {
		pops[i] = float64(i + 1) // 1..100
	}
	low, med := PercentileThresholds(pops)
	if low < 30 || low > 38 {
		t.Errorf("33rd percentile = %v", low)
	}
	if med < 63 || med > 70 {
		t.Errorf("66th percentile = %v", med)
	}
	// Empty input falls back to paper thresholds.
	l, m := PercentileThresholds(nil)
	if l != LowDensityMax || m != MediumDensityMax {
		t.Error("empty thresholds should be the paper defaults")
	}
}

func TestCityHasAllThreeClasses(t *testing.T) {
	// A 200k city over ~4 km should produce all three density strata
	// under the paper's absolute thresholds.
	m := testCity(11)
	var counts [3]int
	for _, c := range m.Cells() {
		counts[Classify(m.DensityOfCell(c))]++
	}
	for cls, n := range counts {
		if n == 0 {
			t.Errorf("no cells in class %v", DensityClass(cls))
		}
	}
}

func BenchmarkSyntheticCity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(int64(i)))
		SyntheticCity(CityConfig{Center: abuDhabi, RadiusKm: 4, Population: 100000}, rng)
	}
}

func BenchmarkSampleHome(b *testing.B) {
	m := testCity(1)
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.SampleHome(rng)
	}
}
