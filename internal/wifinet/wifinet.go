// Package wifinet reproduces the paper's cafeteria instrumentation: the
// university IT team counted Apple and Samsung devices on the cafeteria
// access point by inspecting the *destinations* of each device's traffic,
// because MAC randomization hides vendor OUIs — Apple and Samsung devices
// talk to disjoint, proprietary datacenter ranges.
//
// The monitor here does the same: devices associated with the AP emit
// flows toward their vendor's service prefixes, and the monitor classifies
// each device by where its traffic goes, aggregating anonymized per-hour
// vendor counts.
package wifinet

import (
	"math/rand"
	"net/netip"
	"sort"
	"time"

	"tagsim/internal/trace"
)

// Vendor service prefixes. Apple famously owns 17.0.0.0/8 outright;
// Samsung's SmartThings and account services live in Samsung-registered
// ranges. (Values are representative registry allocations; the classifier
// only needs them to be disjoint.)
var (
	applePrefixes = []netip.Prefix{
		netip.MustParsePrefix("17.0.0.0/8"),
	}
	samsungPrefixes = []netip.Prefix{
		netip.MustParsePrefix("210.118.0.0/16"),
		netip.MustParsePrefix("203.254.0.0/16"),
	}
	otherPrefixes = []netip.Prefix{
		netip.MustParsePrefix("142.250.0.0/15"), // generic CDN traffic
		netip.MustParsePrefix("104.16.0.0/13"),
	}
)

// ClassifyDst maps a flow destination to the vendor it identifies.
func ClassifyDst(a netip.Addr) trace.Vendor {
	for _, p := range applePrefixes {
		if p.Contains(a) {
			return trace.VendorApple
		}
	}
	for _, p := range samsungPrefixes {
		if p.Contains(a) {
			return trace.VendorSamsung
		}
	}
	return trace.VendorOther
}

// VendorFlowDst draws a plausible service destination for a device of the
// given vendor. Non-Apple/Samsung devices produce generic CDN traffic.
func VendorFlowDst(v trace.Vendor, rng *rand.Rand) netip.Addr {
	var prefixes []netip.Prefix
	switch v {
	case trace.VendorApple:
		prefixes = applePrefixes
	case trace.VendorSamsung:
		prefixes = samsungPrefixes
	default:
		prefixes = otherPrefixes
	}
	p := prefixes[rng.Intn(len(prefixes))]
	return randAddrIn(p, rng)
}

// randAddrIn picks a uniform random address inside an IPv4 prefix.
func randAddrIn(p netip.Prefix, rng *rand.Rand) netip.Addr {
	base := p.Addr().As4()
	hostBits := 32 - p.Bits()
	val := uint32(base[0])<<24 | uint32(base[1])<<16 | uint32(base[2])<<8 | uint32(base[3])
	if hostBits > 0 {
		val |= uint32(rng.Int63()) & (1<<uint(hostBits) - 1)
	}
	return netip.AddrFrom4([4]byte{byte(val >> 24), byte(val >> 16), byte(val >> 8), byte(val)})
}

// Monitor aggregates per-hour distinct-device counts by classified vendor.
// Device identifiers are only used for deduplication within the hour and
// never exported — matching the paper's anonymization.
type Monitor struct {
	hours map[time.Time]*hourBucket
}

type hourBucket struct {
	byVendor map[trace.Vendor]map[string]struct{}
}

// NewMonitor creates an empty monitor.
func NewMonitor() *Monitor {
	return &Monitor{hours: make(map[time.Time]*hourBucket)}
}

// Observe records one flow from an associated device at time t.
func (m *Monitor) Observe(t time.Time, deviceID string, dst netip.Addr) {
	hour := t.UTC().Truncate(time.Hour)
	b, ok := m.hours[hour]
	if !ok {
		b = &hourBucket{byVendor: make(map[trace.Vendor]map[string]struct{})}
		m.hours[hour] = b
	}
	v := ClassifyDst(dst)
	set, ok := b.byVendor[v]
	if !ok {
		set = make(map[string]struct{})
		b.byVendor[v] = set
	}
	set[deviceID] = struct{}{}
}

// HourlyCounts exports the anonymized per-hour counts, sorted by hour.
func (m *Monitor) HourlyCounts() []trace.DeviceCount {
	hours := make([]time.Time, 0, len(m.hours))
	for h := range m.hours {
		hours = append(hours, h)
	}
	sort.Slice(hours, func(i, j int) bool { return hours[i].Before(hours[j]) })
	out := make([]trace.DeviceCount, 0, len(hours))
	for _, h := range hours {
		b := m.hours[h]
		out = append(out, trace.DeviceCount{
			T:       h,
			Apple:   len(b.byVendor[trace.VendorApple]),
			Samsung: len(b.byVendor[trace.VendorSamsung]),
			Other:   len(b.byVendor[trace.VendorOther]),
		})
	}
	return out
}

// CountAt returns the vendor counts for the hour containing t.
func (m *Monitor) CountAt(t time.Time) trace.DeviceCount {
	hour := t.UTC().Truncate(time.Hour)
	b, ok := m.hours[hour]
	if !ok {
		return trace.DeviceCount{T: hour}
	}
	return trace.DeviceCount{
		T:       hour,
		Apple:   len(b.byVendor[trace.VendorApple]),
		Samsung: len(b.byVendor[trace.VendorSamsung]),
		Other:   len(b.byVendor[trace.VendorOther]),
	}
}
