package wifinet

import (
	"fmt"
	"math/rand"
	"net/netip"
	"testing"
	"time"

	"tagsim/internal/trace"
)

var t0 = time.Date(2022, 3, 7, 12, 0, 0, 0, time.UTC)

func TestClassifyDst(t *testing.T) {
	cases := []struct {
		addr string
		want trace.Vendor
	}{
		{"17.253.144.10", trace.VendorApple},
		{"17.0.0.1", trace.VendorApple},
		{"210.118.50.2", trace.VendorSamsung},
		{"203.254.1.1", trace.VendorSamsung},
		{"142.250.80.1", trace.VendorOther},
		{"8.8.8.8", trace.VendorOther},
	}
	for _, c := range cases {
		if got := ClassifyDst(netip.MustParseAddr(c.addr)); got != c.want {
			t.Errorf("ClassifyDst(%s) = %v, want %v", c.addr, got, c.want)
		}
	}
}

func TestVendorFlowDstRoundTrips(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, v := range []trace.Vendor{trace.VendorApple, trace.VendorSamsung} {
		for i := 0; i < 200; i++ {
			dst := VendorFlowDst(v, rng)
			if got := ClassifyDst(dst); got != v {
				t.Fatalf("%v flow to %v classified as %v", v, dst, got)
			}
		}
	}
	// Other-vendor traffic never classifies as Apple/Samsung.
	for i := 0; i < 200; i++ {
		dst := VendorFlowDst(trace.VendorOther, rng)
		if got := ClassifyDst(dst); got != trace.VendorOther {
			t.Fatalf("other flow to %v classified as %v", dst, got)
		}
	}
}

func TestMonitorDistinctDevices(t *testing.T) {
	m := NewMonitor()
	rng := rand.New(rand.NewSource(2))
	// 3 Apple devices, each emitting many flows; 1 Samsung.
	for i := 0; i < 3; i++ {
		for f := 0; f < 20; f++ {
			m.Observe(t0.Add(time.Duration(f)*time.Minute), fmt.Sprintf("iphone-%d", i), VendorFlowDst(trace.VendorApple, rng))
		}
	}
	m.Observe(t0.Add(5*time.Minute), "galaxy-1", VendorFlowDst(trace.VendorSamsung, rng))

	c := m.CountAt(t0.Add(30 * time.Minute))
	if c.Apple != 3 {
		t.Errorf("Apple count = %d, want 3 (distinct devices, not flows)", c.Apple)
	}
	if c.Samsung != 1 {
		t.Errorf("Samsung count = %d, want 1", c.Samsung)
	}
}

func TestMonitorHourBuckets(t *testing.T) {
	m := NewMonitor()
	rng := rand.New(rand.NewSource(3))
	m.Observe(t0, "a", VendorFlowDst(trace.VendorApple, rng))
	m.Observe(t0.Add(time.Hour), "a", VendorFlowDst(trace.VendorApple, rng))
	m.Observe(t0.Add(time.Hour), "b", VendorFlowDst(trace.VendorSamsung, rng))

	counts := m.HourlyCounts()
	if len(counts) != 2 {
		t.Fatalf("got %d hourly buckets", len(counts))
	}
	if !counts[0].T.Before(counts[1].T) {
		t.Error("buckets not sorted")
	}
	if counts[0].Apple != 1 || counts[0].Samsung != 0 {
		t.Errorf("hour 0 = %+v", counts[0])
	}
	if counts[1].Apple != 1 || counts[1].Samsung != 1 {
		t.Errorf("hour 1 = %+v", counts[1])
	}
}

func TestMonitorEmptyHour(t *testing.T) {
	m := NewMonitor()
	c := m.CountAt(t0)
	if c.Apple != 0 || c.Samsung != 0 || c.Other != 0 {
		t.Error("empty hour should count zero")
	}
	if len(m.HourlyCounts()) != 0 {
		t.Error("empty monitor should export no buckets")
	}
}

func TestRandAddrInStaysInPrefix(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, ps := range [][]netip.Prefix{applePrefixes, samsungPrefixes, otherPrefixes} {
		for _, p := range ps {
			for i := 0; i < 100; i++ {
				if a := randAddrIn(p, rng); !p.Contains(a) {
					t.Fatalf("address %v escaped prefix %v", a, p)
				}
			}
		}
	}
}

func BenchmarkObserve(b *testing.B) {
	m := NewMonitor()
	rng := rand.New(rand.NewSource(1))
	dst := VendorFlowDst(trace.VendorApple, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Observe(t0.Add(time.Duration(i)*time.Second), "dev", dst)
	}
}
