// Package experiments regenerates every table and figure in the paper's
// evaluation: Table 1 (dataset summary), Figure 2 (beacon RSSI), Figures
// 3-4 (cafeteria update rates), Figures 5a-f (in-the-wild accuracy),
// Figure 6 (visited hexagons), Figure 7 (accuracy by population density),
// and Figure 8 (accuracy vs radius). Each experiment returns structured
// results plus a text rendering of the same rows/series the paper plots.
package experiments

import (
	"time"

	"tagsim/internal/analysis"
	"tagsim/internal/geo"
	"tagsim/internal/pipeline"
	"tagsim/internal/runner"
	"tagsim/internal/scenario"
	"tagsim/internal/trace"
)

// Options control the in-the-wild campaign used by Table 1 and Figures
// 5-8. Scale trades fidelity for runtime: 1.0 is the paper's 120 days.
type Options struct {
	Seed           int64
	Scale          float64
	DevicesPerCity int
	// FleetScale multiplies every reporting-crowd size (residents,
	// ambient pedestrians, staff, neighbors, co-travelers); 0 or 1 keeps
	// the paper-calibrated fleet. The grid-indexed encounter plane keeps
	// scan cost flat as this grows (see BenchmarkScanOnce).
	FleetScale float64
	// Workers bounds how many independent simulation worlds (countries,
	// replicates, figure computations) run concurrently: 0 means one per
	// CPU, 1 is fully sequential. Results are identical for any value.
	Workers int
	// ScanWorkers region-shards each world's scan tick (0 = serial).
	// Results are identical for any value — see scenario.WildConfig.
	ScanWorkers int
}

// DefaultOptions is sized to regenerate every figure in tens of seconds.
func DefaultOptions() Options {
	return Options{Seed: 1, Scale: 0.25, DevicesPerCity: 500}
}

// wildConfig translates campaign options into the scenario config.
func (o Options) wildConfig() scenario.WildConfig {
	return scenario.WildConfig{
		Seed:           o.Seed,
		Scale:          o.Scale,
		DevicesPerCity: o.DevicesPerCity,
		FleetScale:     o.FleetScale,
		Workers:        o.Workers,
		ScanWorkers:    o.ScanWorkers,
	}
}

// Campaign is one executed in-the-wild campaign with its analysis
// artifacts precomputed, shared by every wild-data experiment.
type Campaign struct {
	Options Options
	Result  *scenario.WildResult
	// Merged is the raw merged dataset across countries.
	Merged *analysis.Dataset
	// Homes are the detected overnight locations across the campaign.
	Homes []geo.LatLon
	// Truth indexes the home-filtered ground truth.
	Truth *analysis.TruthIndex
	// RemovedFrac is the share of fixes dropped by the home filter (the
	// paper reports 65%).
	RemovedFrac float64
	// Filtered crawl records per vendor (incl. VendorCombined). In a
	// streamed campaign these hold only distinct reports (the raw crawl
	// log never materialized); every accuracy consumer dedups its input
	// anyway, so the two forms analyze identically.
	filteredCrawls map[trace.Vendor][]trace.CrawlRecord
	// One columnar analysis index per vendor over (Truth, filtered
	// crawls): the crawl log is deduped and truth-resolved exactly once,
	// then every figure's (bucket, radius, window, classifier) sweep
	// point merges against it.
	indexes  map[trace.Vendor]*analysis.Index
	From, To time.Time
}

// NewCampaign runs the campaign and prepares the shared analysis state.
//
// By default the campaign streams: scan ticks publish report batches
// through the pipeline while the simulation runs, and the analysis
// state grows incrementally from distinct crawl records — the raw crawl
// log never materializes. pipeline.SetStreaming(false) reverts to the
// historical batch path (simulate everything, then analyze), which the
// equivalence tests pin byte-identical figure for figure.
func NewCampaign(opts Options) *Campaign {
	if opts.Scale <= 0 {
		opts.Scale = 1
	}
	if pipeline.Streaming() {
		return newCampaignStreamed(opts)
	}
	return newCampaignFromResult(opts, scenario.RunWild(opts.wildConfig()))
}

// newCampaignStreamed runs the campaign through the streaming pipeline:
// one CampaignAccumulator consumes the merged world streams while the
// country engines are still running, and the Campaign assembles from
// its state. Country datasets are reattached from the accumulator's
// per-world data (ground truth in full, crawls as distinct reports), so
// the per-country figures (6, 7) read exactly what they would have
// computed from the raw logs — every analysis consumer dedups anyway.
func newCampaignStreamed(opts Options) *Campaign {
	cfg := opts.wildConfig()
	jobs := scenario.PlanWild(cfg)
	acc := pipeline.NewCampaignAccumulator(len(jobs), opts.Workers)
	pl := pipeline.New(len(jobs), pipeline.Config{}, acc)
	cfg.Stream = pl
	res := scenario.RunWild(cfg)
	if err := pl.Wait(); err != nil {
		// The accumulator does no I/O; an error here is a broken
		// pipeline contract, not a runtime condition.
		panic(err)
	}
	st := acc.State()
	for i := range res.Countries {
		w := st.Worlds[i]
		res.Countries[i].Dataset = analysis.NewDataset(w.Fixes, w.Crawls)
		res.Countries[i].Homes = w.Homes
	}
	c := &Campaign{
		Options:        opts,
		Result:         res,
		Merged:         st.Merged,
		Homes:          st.Homes,
		Truth:          st.Truth,
		RemovedFrac:    st.RemovedFrac,
		filteredCrawls: st.Filtered,
		indexes:        st.Indexes,
	}
	c.From, c.To = res.Span()
	return c
}

// newCampaignFromResult prepares the shared analysis state over an
// already-simulated campaign (NewCampaign's second half, reused by the
// replicate fan-out so simulation and analysis parallelize separately).
func newCampaignFromResult(opts Options, res *scenario.WildResult) *Campaign {
	merged := res.MergedDataset()

	var homes []geo.LatLon
	for _, c := range res.Countries {
		homes = append(homes, c.Homes...)
	}
	kept, removed := analysis.FilterNearHomes(merged.GroundTruth, homes, 300)

	c := &Campaign{
		Options:        opts,
		Result:         res,
		Merged:         merged,
		Homes:          homes,
		Truth:          analysis.NewTruthIndex(kept),
		RemovedFrac:    removed,
		filteredCrawls: make(map[trace.Vendor][]trace.CrawlRecord),
	}
	// The per-vendor home filter + index builds are independent passes
	// over disjoint outputs; fan them out on the same worker knob.
	type vendorPlane struct {
		crawls []trace.CrawlRecord
		index  *analysis.Index
	}
	planes := runner.Map(opts.Workers, len(Vendors), func(i int) vendorPlane {
		crawls := analysis.FilterCrawlsNearHomes(merged.CrawlsFor(Vendors[i]), homes, 300)
		return vendorPlane{crawls: crawls, index: analysis.NewIndex(c.Truth, crawls)}
	})
	c.indexes = make(map[trace.Vendor]*analysis.Index, len(Vendors))
	for i, v := range Vendors {
		c.filteredCrawls[v] = planes[i].crawls
		c.indexes[v] = planes[i].index
	}
	c.From, c.To = res.Span()
	return c
}

// Crawls returns the home-filtered crawl records for a vendor (including
// the synthesized combined ecosystem).
func (c *Campaign) Crawls(v trace.Vendor) []trace.CrawlRecord { return c.filteredCrawls[v] }

// Index returns the cached analysis index over a vendor's home-filtered
// crawl log. Indexes are immutable and safe to share across the figure
// computations fanning out on the worker pool.
func (c *Campaign) Index(v trace.Vendor) *analysis.Index { return c.indexes[v] }

// accuracy evaluates one accuracy point for a vendor over the cached
// index — or over the raw crawl log when the index-backed pipeline is
// disabled (analysis.SetIndexedAnalysis), which reproduces the historical
// per-figure rescan byte for byte.
func (c *Campaign) accuracy(v trace.Vendor, bucket time.Duration, radiusM float64, from, to time.Time) analysis.AccuracyResult {
	if !analysis.IndexedAnalysis() {
		return analysis.Accuracy(c.Truth, c.Crawls(v), bucket, radiusM, from, to)
	}
	return c.Index(v).Accuracy(bucket, radiusM, from, to)
}

// dailyAccuracyByClass is the classified-daily counterpart of accuracy,
// honoring the same escape hatch.
func (c *Campaign) dailyAccuracyByClass(v trace.Vendor, bucket time.Duration, radiusM float64, classify analysis.BucketClassifier, minBuckets int) map[string][]float64 {
	if !analysis.IndexedAnalysis() {
		return analysis.DailyAccuracyByClass(c.Truth, c.Crawls(v), bucket, radiusM, c.From, c.To, classify, minBuckets)
	}
	return c.Index(v).DailyAccuracyByClass(bucket, radiusM, c.From, c.To, classify, minBuckets)
}

// Vendors lists the three analysis ecosystems in figure order — the
// canonical trace.AnalysisVendors, shared with the streaming campaign
// accumulator so the two paths can never drift on the vendor set.
var Vendors = trace.AnalysisVendors
