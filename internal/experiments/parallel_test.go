package experiments

import (
	"strings"
	"testing"

	"tagsim/internal/analysis"
	"tagsim/internal/trace"
)

// tinyOpts shrinks the campaign to one simulated day per country so the
// parallel-equivalence tests stay fast.
func tinyOpts(seed int64, workers int) Options {
	return Options{Seed: seed, Scale: 0.02, DevicesPerCity: 60, Workers: workers}
}

// TestCampaignParallelDeterminism is the acceptance check for the
// parallel runner: the rendered tables of a Workers=8 campaign must be
// byte-identical to Workers=1.
func TestCampaignParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign experiments are slow")
	}
	seq := NewCampaign(tinyOpts(41, 1))
	par := NewCampaign(tinyOpts(41, 8))

	if got, want := Table1(par).Render(), Table1(seq).Render(); got != want {
		t.Errorf("Table 1 rendering diverged across worker counts:\nworkers=8:\n%s\nworkers=1:\n%s", got, want)
	}
	for _, radius := range []float64{25, 100} {
		if got, want := Figure5Sweep(par, radius).Render(), Figure5Sweep(seq, radius).Render(); got != want {
			t.Errorf("Figure 5 (%.0f m) rendering diverged across worker counts:\nworkers=8:\n%s\nworkers=1:\n%s", radius, got, want)
		}
	}
	if got, want := Figure5d(par).Render(), Figure5d(seq).Render(); got != want {
		t.Errorf("Figure 5d rendering diverged across worker counts:\nworkers=8:\n%s\nworkers=1:\n%s", got, want)
	}
	if got, want := Figure7(par).Render(), Figure7(seq).Render(); got != want {
		t.Errorf("Figure 7 rendering diverged across worker counts:\nworkers=8:\n%s\nworkers=1:\n%s", got, want)
	}
	if got, want := Figure8(par).Render(), Figure8(seq).Render(); got != want {
		t.Errorf("Figure 8 rendering diverged across worker counts:\nworkers=8:\n%s\nworkers=1:\n%s", got, want)
	}
	if got, want := Headline(par).Render(), Headline(seq).Render(); got != want {
		t.Errorf("Headline rendering diverged across worker counts:\nworkers=8:\n%s\nworkers=1:\n%s", got, want)
	}
}

// renderWildFigures renders every wild-campaign artifact the paper's
// evaluation reproduces (Table 1, Figures 5a-f, 6, 7, 8, headline) into
// one string.
func renderWildFigures(c *Campaign) string {
	var b strings.Builder
	b.WriteString(Table1(c).Render())
	for _, radius := range []float64{10, 25, 100} {
		b.WriteString(Figure5Sweep(c, radius).Render())
	}
	b.WriteString(Figure5d(c).Render())
	b.WriteString(Figure5e(c).Render())
	b.WriteString(Figure5f(c).Render())
	b.WriteString(Figure6(c, "AE").Render())
	b.WriteString(Figure7(c).Render())
	b.WriteString(Figure8(c).Render())
	b.WriteString(Headline(c).Render())
	return b.String()
}

// TestFigurePipelineIndexEquivalence is the PR's acceptance gate: every
// reproduced table and figure must render byte-identically whether the
// analysis plane runs the one-time columnar index or the historical
// per-figure rescans (analysis.SetIndexedAnalysis escape hatch).
func TestFigurePipelineIndexEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign experiments are slow")
	}
	c := NewCampaign(tinyOpts(47, 0))
	indexed := renderWildFigures(c)
	was := analysis.SetIndexedAnalysis(false)
	defer analysis.SetIndexedAnalysis(was)
	legacy := renderWildFigures(c)
	if indexed != legacy {
		t.Errorf("figure pipeline diverged between indexed and scan analysis:\nindexed:\n%s\nscan:\n%s", indexed, legacy)
	}
}

func TestCampaignReplicates(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign experiments are slow")
	}
	set := CampaignReplicates(tinyOpts(43, 0), 2)
	if set.N() != 2 {
		t.Fatalf("N = %d, want 2", set.N())
	}

	t1 := set.Table1Stats()
	if len(t1.Rows) != 6 {
		t.Fatalf("%d Table 1 rows, want 6", len(t1.Rows))
	}
	if t1.Total.AppleNow.N != 2 {
		t.Errorf("total aggregate over %d samples, want 2", t1.Total.AppleNow.N)
	}
	if t1.Total.AppleNow.Mean <= t1.Total.SamsungNow.Mean {
		t.Errorf("mean Apple Now (%.0f) should exceed Samsung (%.0f)",
			t1.Total.AppleNow.Mean, t1.Total.SamsungNow.Mean)
	}

	f5 := set.Figure5Stats(100)
	if got := f5.Acc(trace.VendorCombined, 120); got.N != 2 {
		t.Errorf("figure 5 aggregate over %d samples, want 2", got.N)
	}
	// Accuracy still improves with responsiveness in the aggregate.
	if f5.Acc(trace.VendorCombined, 120).Mean < f5.Acc(trace.VendorCombined, 1).Mean-5 {
		t.Errorf("mean accuracy at 120 min (%.1f) below 1 min (%.1f)",
			f5.Acc(trace.VendorCombined, 120).Mean, f5.Acc(trace.VendorCombined, 1).Mean)
	}

	head := set.HeadlineStats()
	if head.Acc10Min100M.Mean <= 0 || head.Acc10Min100M.Mean > 100 {
		t.Errorf("aggregate headline accuracy = %.1f", head.Acc10Min100M.Mean)
	}

	out := set.Render()
	for _, want := range []string{"2 replicates", "Table 1", "Figure 5", "Headline", "±"} {
		if !strings.Contains(out, want) {
			t.Errorf("replicate rendering missing %q:\n%s", want, out)
		}
	}
}

func TestReplicateStatDegenerate(t *testing.T) {
	one := newReplicateStat([]float64{4})
	if one.Std != 0 || one.N != 1 || one.Mean != 4 {
		t.Errorf("single-sample stat = %+v", one)
	}
	if s := newReplicateStat([]float64{2, 4}); s.Mean != 3 || s.N != 2 || s.Std <= 0 {
		t.Errorf("two-sample stat = %+v", s)
	}
}
