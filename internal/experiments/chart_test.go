package experiments

import (
	"strings"
	"testing"
)

func TestAsciiChartBasics(t *testing.T) {
	c := asciiChart{XLabel: "x", YLabel: "y", XMin: 0, XMax: 10, YMin: 0, YMax: 100}
	out := c.render([]chartSeries{{
		Name: "up", Marker: '*',
		XS: []float64{0, 5, 10}, YS: []float64{0, 50, 100},
	}})
	if !strings.Contains(out, "legend: *=up") {
		t.Error("legend missing")
	}
	lines := strings.Split(out, "\n")
	// The diagonal should put a marker near the top-right and
	// bottom-left plot rows.
	var topRow, bottomRow string
	for _, l := range lines {
		if strings.Contains(l, "|") {
			if topRow == "" {
				topRow = l
			}
			bottomRow = l
		}
	}
	if !strings.Contains(topRow, "*") {
		t.Error("no marker on the top row for a rising series")
	}
	if !strings.Contains(bottomRow, "*") {
		t.Error("no marker on the bottom row for a rising series")
	}
}

func TestAsciiChartDegenerate(t *testing.T) {
	c := asciiChart{XMin: 5, XMax: 5, YMin: 0, YMax: 1}
	if out := c.render(nil); !strings.Contains(out, "empty chart") {
		t.Error("degenerate span should render the empty marker")
	}
}

func TestFigure3RenderChart(t *testing.T) {
	r := &Figure3Result{Rows: []Figure3Row{
		{Hour: 8, AirTagRate: 9, SmartRate: 7},
		{Hour: 13, AirTagRate: 16, SmartRate: 15},
		{Hour: 20, AirTagRate: 16, SmartRate: 15},
	}}
	out := r.RenderChart()
	if !strings.Contains(out, "updates/hour") || !strings.Contains(out, "a=AirTag") {
		t.Errorf("chart incomplete:\n%s", out)
	}
}

func TestFigure5SweepRenderChart(t *testing.T) {
	c := getCampaign(t)
	out := Figure5Sweep(c, 100).RenderChart()
	if !strings.Contains(out, "radius 100 m") || !strings.Contains(out, "*=Combined") {
		t.Errorf("sweep chart incomplete:\n%s", out)
	}
}

func TestFigure8RenderChart(t *testing.T) {
	c := getCampaign(t)
	out := Figure8(c).RenderChart()
	if !strings.Contains(out, "combined accuracy") || !strings.Contains(out, "1=1min") {
		t.Errorf("figure 8 chart incomplete:\n%s", out)
	}
}
