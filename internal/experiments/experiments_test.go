package experiments

import (
	"math"
	"strings"
	"sync"
	"testing"

	"tagsim/internal/population"
	"tagsim/internal/trace"
)

// The wild campaign is expensive; run it once and share across tests.
var (
	campaignOnce sync.Once
	testCampaign *Campaign
)

func getCampaign(t *testing.T) *Campaign {
	t.Helper()
	if testing.Short() {
		t.Skip("campaign experiments are slow")
	}
	campaignOnce.Do(func() {
		testCampaign = NewCampaign(Options{Seed: 7, Scale: 0.15, DevicesPerCity: 400})
	})
	return testCampaign
}

func TestFigure2Shape(t *testing.T) {
	r := Figure2(3)
	// SmartTag hotter at 0 and 10 m, parity at 20 m (Figure 2).
	gap0 := r.Median(trace.VendorSamsung, 0) - r.Median(trace.VendorApple, 0)
	gap10 := r.Median(trace.VendorSamsung, 10) - r.Median(trace.VendorApple, 10)
	gap20 := math.Abs(r.Median(trace.VendorSamsung, 20) - r.Median(trace.VendorApple, 20))
	if gap0 < 5 || gap0 > 15 {
		t.Errorf("0 m gap = %.1f", gap0)
	}
	if gap10 < 5 || gap10 > 16 {
		t.Errorf("10 m gap = %.1f", gap10)
	}
	if gap20 > 6 {
		t.Errorf("20 m gap = %.1f", gap20)
	}
	if !strings.Contains(r.Render(), "Figure 2") {
		t.Error("render missing title")
	}
}

func TestFigure3Shape(t *testing.T) {
	r := Figure3(5, 2)
	if len(r.Rows) == 0 {
		t.Fatal("no rows")
	}
	// Both tags peak in the 15-20/h plateau; rates dip to zero overnight.
	if p := r.Peak(trace.VendorApple); p < 10 || p > 22 {
		t.Errorf("AirTag peak rate = %.1f", p)
	}
	if p := r.Peak(trace.VendorSamsung); p < 10 || p > 22 {
		t.Errorf("SmartTag peak rate = %.1f", p)
	}
	var lunchApple, lunchSamsung float64
	for _, row := range r.Rows {
		if row.Hour == 13 {
			lunchApple, lunchSamsung = row.AppleCount, row.SamsungCnt
		}
		if row.Hour == 4 && (row.AirTagRate > 0 || row.SmartRate > 0) {
			t.Error("updates while the cafeteria is closed")
		}
	}
	// ~6x more Apple devices at peak.
	if ratio := lunchApple / math.Max(lunchSamsung, 1); ratio < 4 || ratio > 9 {
		t.Errorf("peak Apple/Samsung device ratio = %.1f, want ~6", ratio)
	}
	if !strings.Contains(r.Render(), "Figure 3") {
		t.Error("render missing title")
	}
}

func TestFigure4Shape(t *testing.T) {
	r := Figure4(9, 3)
	if len(r.Apple) == 0 || len(r.Samsung) == 0 {
		t.Fatal("missing buckets")
	}
	// Samsung device counts never reach the Apple range (the paper never
	// saw more than ~80 Samsung phones in an hour).
	if mx := r.MaxSamsungBucket(); mx > 100 {
		t.Errorf("Samsung bucket reaches %d devices", mx)
	}
	// Aggressive vs conservative: in the low-device regime Samsung's
	// rate clearly exceeds Apple's.
	sLow, okS := r.SamsungRateAt(8)
	aLow, okA := r.AppleRateAt(8)
	if okS && okA && sLow < aLow {
		t.Errorf("low-density rates: samsung %.1f < apple %.1f", sLow, aLow)
	}
	// Samsung plateaus by ~21-40 devices.
	if rate, ok := r.SamsungRateAt(35); ok && (rate < 11 || rate > 21) {
		t.Errorf("Samsung rate at ~35 devices = %.1f, want plateau 12-20", rate)
	}
	// Apple converges only with hundreds of devices.
	if rate, ok := r.AppleRateAt(250); ok && (rate < 12 || rate > 21) {
		t.Errorf("Apple rate at ~250 devices = %.1f, want plateau", rate)
	}
	if rate, ok := r.AppleRateAt(15); ok && rate > 12 {
		t.Errorf("Apple rate at ~15 devices = %.1f, should be well below the plateau", rate)
	}
}

func TestBattery(t *testing.T) {
	r := Battery()
	if r.Ratio < 1.1 || r.Ratio > 1.3 {
		t.Errorf("battery ratio = %.2f, want ~1.2", r.Ratio)
	}
	for _, row := range r.Rows {
		if row.LifeDays < 240 || row.LifeDays > 500 {
			t.Errorf("%s life = %.0f days, want ~1 year", row.Tag, row.LifeDays)
		}
	}
	if !strings.Contains(r.Render(), "Battery") {
		t.Error("render missing title")
	}
}

func TestTable1Campaign(t *testing.T) {
	c := getCampaign(t)
	r := Table1(c)
	if len(r.Rows) != 6 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	if r.Total.Cities != 20 {
		t.Errorf("cities = %d", r.Total.Cities)
	}
	// Every country produced Now reports, Apple far more than Samsung
	// overall (Table 1: 21,081 vs 3,595).
	for _, row := range r.Rows {
		if row.AppleNow == 0 {
			t.Errorf("%s: zero Apple reports", row.Country)
		}
	}
	if r.Total.AppleNow <= r.Total.SamsungNow {
		t.Errorf("Apple Now (%d) should exceed Samsung (%d)", r.Total.AppleNow, r.Total.SamsungNow)
	}
	if !strings.Contains(r.Render(), "Tot.") {
		t.Error("render missing totals row")
	}
}

func TestFigure5SweepShapes(t *testing.T) {
	c := getCampaign(t)
	for _, radius := range []float64{10, 25, 100} {
		r := Figure5Sweep(c, radius)
		// Monotone non-decreasing in responsiveness for each vendor
		// (tolerate small sampling dips).
		for _, v := range Vendors {
			prev := -1.0
			for _, m := range SweepMinutes {
				acc := r.Acc(v, m)
				if acc < prev-8 {
					t.Errorf("radius %.0f %v: accuracy dropped %.1f -> %.1f at %d min", radius, v, prev, acc, m)
				}
				if acc > prev {
					prev = acc
				}
			}
		}
		// Combined >= each individual at the 25-minute point.
		comb := r.Acc(trace.VendorCombined, 25)
		if comb+3 < r.Acc(trace.VendorApple, 25) || comb+3 < r.Acc(trace.VendorSamsung, 25) {
			t.Errorf("radius %.0f: combined (%.1f) below an individual ecosystem", radius, comb)
		}
	}
	// 1 minute is too fast for 10 m: accuracy tiny; 100 m notably higher.
	r10 := Figure5Sweep(c, 10)
	r100 := Figure5Sweep(c, 100)
	if a := r10.Acc(trace.VendorCombined, 1); a > 15 {
		t.Errorf("10 m @ 1 min = %.1f%%, should be tiny", a)
	}
	if r100.Acc(trace.VendorCombined, 120) < 40 {
		t.Errorf("100 m @ 120 min = %.1f%%, want substantial", r100.Acc(trace.VendorCombined, 120))
	}
	if r100.Acc(trace.VendorCombined, 120) <= r10.Acc(trace.VendorCombined, 1) {
		t.Error("responsiveness/radius relaxation must improve accuracy")
	}
}

func TestFigure5dMobility(t *testing.T) {
	c := getCampaign(t)
	r := Figure5d(c)
	ped := r.Mean("Pedestrian", 100)
	transit := r.Mean("Transit", 100)
	if math.IsNaN(ped) || math.IsNaN(transit) {
		t.Fatalf("missing classes: %+v", r.Bars)
	}
	// Pedestrian beats transit (Figure 5d).
	if ped <= transit {
		t.Errorf("pedestrian %.1f <= transit %.1f", ped, transit)
	}
	if !strings.Contains(r.Render(), "Pedestrian") {
		t.Error("render missing classes")
	}
}

func TestFigure5eDayPeriods(t *testing.T) {
	c := getCampaign(t)
	r := Figure5e(c)
	// Night accuracy below the daytime periods (Figure 5e).
	night := r.Mean("Night", 100)
	lunch := r.Mean("Lunch", 100)
	if !math.IsNaN(night) && !math.IsNaN(lunch) && night > lunch {
		t.Errorf("night %.1f > lunch %.1f", night, lunch)
	}
}

func TestFigure5fWeekend(t *testing.T) {
	c := getCampaign(t)
	r := Figure5f(c)
	wd := r.Mean(string("Weekday"), 100)
	we := r.Mean(string("Weekend"), 100)
	if math.IsNaN(wd) || math.IsNaN(we) {
		t.Fatal("missing classes")
	}
	// Weekend >= weekday (Figure 5f).
	if we+5 < wd {
		t.Errorf("weekend %.1f clearly below weekday %.1f", we, wd)
	}
}

func TestFigure6Hexagons(t *testing.T) {
	c := getCampaign(t)
	r := Figure6(c, "AE")
	if len(r.Visits) == 0 {
		t.Fatal("no hexagon visits in AE")
	}
	total := 0
	for _, cells := range r.CellsByClass {
		total += len(cells)
	}
	if total == 0 {
		t.Fatal("no classified cells")
	}
	if r.Map == "" || !strings.Contains(r.Render(), "hexagons") {
		t.Error("render incomplete")
	}
	// Unknown country yields an empty result, not a panic.
	if e := Figure6(c, "ZZ"); len(e.Visits) != 0 {
		t.Error("unknown country should be empty")
	}
}

func TestFigure7DensityCDF(t *testing.T) {
	c := getCampaign(t)
	r := Figure7(c)
	if len(r.Classes) != 9 { // 3 vendors x 3 classes
		t.Fatalf("%d classes", len(r.Classes))
	}
	// Combined strata exist and zero-accuracy probability is bounded.
	for _, cls := range []population.DensityClass{population.DensityLow, population.DensityHigh} {
		fc, ok := r.Class(trace.VendorCombined, cls)
		if !ok {
			t.Fatalf("missing combined %v stratum", cls)
		}
		if fc.Cells == 0 {
			t.Errorf("no cells in combined %v stratum", cls)
		}
	}
	if !strings.Contains(r.Render(), "Figure 7") {
		t.Error("render missing title")
	}
}

func TestFigure8Shape(t *testing.T) {
	c := getCampaign(t)
	r := Figure8(c)
	// Accuracy grows with radius within each window.
	for _, w := range r.Windows {
		if r.Acc[w][10] > r.Acc[w][100]+5 {
			t.Errorf("window %v: 10 m (%.1f) above 100 m (%.1f)", w, r.Acc[w][10], r.Acc[w][100])
		}
	}
	// And grows with the window at a fixed radius.
	if r.Acc[r.Windows[0]][100] > r.Acc[r.Windows[len(r.Windows)-1]][100] {
		t.Error("longer windows should not hurt accuracy")
	}
	if !strings.Contains(r.Render(), "Figure 8") {
		t.Error("render missing title")
	}
}

func TestHeadline(t *testing.T) {
	c := getCampaign(t)
	r := Headline(c)
	if r.Acc10Min100M <= 0 || r.Acc10Min100M > 100 {
		t.Errorf("10min/100m accuracy = %.1f", r.Acc10Min100M)
	}
	if r.Episodes == 0 {
		t.Error("no episodes found")
	}
	if r.BacktrackFrac1h10m < 0 || r.BacktrackFrac1h10m > 1 {
		t.Errorf("backtrack fraction = %v", r.BacktrackFrac1h10m)
	}
	if r.HomeFilteredFrac <= 0.2 || r.HomeFilteredFrac >= 0.95 {
		t.Errorf("home filter removed %.0f%%, paper says ~65%%", r.HomeFilteredFrac*100)
	}
	if !strings.Contains(r.Render(), "Headline") {
		t.Error("render missing title")
	}
}

// TestCampaignRenderAll exercises every renderer on the shared campaign
// (catching formatting panics).
func TestCampaignRenderAll(t *testing.T) {
	c := getCampaign(t)
	outputs := []string{
		Table1(c).Render(),
		Figure5Sweep(c, 10).Render(),
		Figure5d(c).Render(),
		Figure5e(c).Render(),
		Figure5f(c).Render(),
		Figure6(c, "AE").Render(),
		Figure7(c).Render(),
		Figure8(c).Render(),
		Headline(c).Render(),
	}
	for i, out := range outputs {
		if len(out) < 20 {
			t.Errorf("output %d suspiciously short: %q", i, out)
		}
	}
}
