package experiments

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"tagsim/internal/analysis"
	"tagsim/internal/scenario"
	"tagsim/internal/stats"
	"tagsim/internal/tag"
	"tagsim/internal/trace"
)

// Figure2Row is one box of Figure 2: beacon RSSI quartiles for a tag at a
// distance.
type Figure2Row struct {
	Vendor    trace.Vendor
	DistanceM float64
	N         int
	P25       float64
	Median    float64
	P75       float64
}

// Figure2Result reproduces Figure 2 (beacon RSSI per tag and distance).
type Figure2Result struct {
	Rows []Figure2Row
}

// Figure2 runs the secluded-area RSSI experiment.
func Figure2(seed int64) *Figure2Result {
	rx := scenario.SecludedRSSI(scenario.SecludedConfig{Seed: seed})
	grouped := scenario.RSSIByTagAndDistance(rx)
	res := &Figure2Result{}
	for _, v := range []trace.Vendor{trace.VendorApple, trace.VendorSamsung} {
		for _, d := range []float64{0, 10, 20, 50} {
			samples := grouped[v][d]
			row := Figure2Row{Vendor: v, DistanceM: d, N: len(samples)}
			if len(samples) > 0 {
				row.P25 = stats.Percentile(samples, 25)
				row.Median = stats.Percentile(samples, 50)
				row.P75 = stats.Percentile(samples, 75)
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res
}

// Median returns the median RSSI for a tag/distance pair, or NaN.
func (r *Figure2Result) Median(v trace.Vendor, distM float64) float64 {
	for _, row := range r.Rows {
		if row.Vendor == v && row.DistanceM == distM {
			return row.Median
		}
	}
	return nan()
}

// Render prints the figure's series as a table.
func (r *Figure2Result) Render() string {
	var b strings.Builder
	fmt.Fprintln(&b, "Figure 2: Beacon RSSI for each tag at different distances (dBm)")
	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "tag\tdistance\tbeacons\tP25\tmedian\tP75")
	for _, row := range r.Rows {
		tag := "AirTag"
		if row.Vendor == trace.VendorSamsung {
			tag = "SmartTag"
		}
		fmt.Fprintf(tw, "%s\t%.0f m\t%d\t%.1f\t%.1f\t%.1f\n",
			tag, row.DistanceM, row.N, row.P25, row.Median, row.P75)
	}
	tw.Flush()
	return b.String()
}

// Figure3Row is one hour of Figure 3.
type Figure3Row struct {
	Hour       int
	AppleCount float64
	AppleStd   float64
	SamsungCnt float64
	SamsungStd float64
	AirTagRate float64
	AirStd     float64
	SmartRate  float64
	SmartStd   float64
}

// Figure3Result reproduces Figure 3 (cafeteria update rates vs hour).
type Figure3Result struct {
	Rows   []Figure3Row
	Visits map[trace.Vendor]int
}

// Figure3 runs the cafeteria deployment and aggregates per hour of day.
func Figure3(seed int64, days int) *Figure3Result {
	caf := scenario.RunCafeteria(scenario.CafeteriaConfig{Seed: seed, Days: days})
	return figure3From(caf)
}

func figure3From(caf *scenario.CafeteriaResult) *Figure3Result {
	appleRows := analysis.UpdateRateByHourOfDay(caf.AppleHistory, caf.Counts,
		func(c trace.DeviceCount) int { return c.Apple }, caf.Start, caf.End)
	samsungRows := analysis.UpdateRateByHourOfDay(caf.SamsungHistory, caf.Counts,
		func(c trace.DeviceCount) int { return c.Samsung }, caf.Start, caf.End)
	res := &Figure3Result{Visits: caf.Visits}
	byHour := make(map[int]*Figure3Row)
	for _, r := range appleRows {
		byHour[r.Hour] = &Figure3Row{
			Hour: r.Hour, AppleCount: r.MeanDevices, AppleStd: r.StdDevices,
			AirTagRate: r.MeanRate, AirStd: r.StdRate,
		}
	}
	for _, r := range samsungRows {
		row, ok := byHour[r.Hour]
		if !ok {
			row = &Figure3Row{Hour: r.Hour}
			byHour[r.Hour] = row
		}
		row.SamsungCnt = r.MeanDevices
		row.SamsungStd = r.StdDevices
		row.SmartRate = r.MeanRate
		row.SmartStd = r.StdRate
	}
	for h := 0; h < 24; h++ {
		if row, ok := byHour[h]; ok {
			res.Rows = append(res.Rows, *row)
		}
	}
	return res
}

// Peak returns the maximum mean update rate across hours for a tag.
func (r *Figure3Result) Peak(v trace.Vendor) float64 {
	var peak float64
	for _, row := range r.Rows {
		rate := row.AirTagRate
		if v == trace.VendorSamsung {
			rate = row.SmartRate
		}
		if rate > peak {
			peak = rate
		}
	}
	return peak
}

// Render prints Figure 3's two series (device counts, update rates).
func (r *Figure3Result) Render() string {
	var b strings.Builder
	fmt.Fprintln(&b, "Figure 3: Update rates of AirTag and SmartTag by hour of day (cafeteria)")
	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "hour\tapple devs\tsamsung devs\tAirTag upd/h\tSmartTag upd/h")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%02d\t%.0f ± %.0f\t%.0f ± %.0f\t%.1f ± %.1f\t%.1f ± %.1f\n",
			row.Hour, row.AppleCount, row.AppleStd, row.SamsungCnt, row.SamsungStd,
			row.AirTagRate, row.AirStd, row.SmartRate, row.SmartStd)
	}
	tw.Flush()
	return b.String()
}

// Figure4Result reproduces Figure 4 (update rate vs likelihood of N
// reporting devices within one hour).
type Figure4Result struct {
	Apple   []analysis.RateBucket
	Samsung []analysis.RateBucket
}

// Figure4 runs the cafeteria deployment and buckets hours by device count.
func Figure4(seed int64, days int) *Figure4Result {
	caf := scenario.RunCafeteria(scenario.CafeteriaConfig{Seed: seed, Days: days})
	return figure4From(caf)
}

func figure4From(caf *scenario.CafeteriaResult) *Figure4Result {
	return &Figure4Result{
		Apple: analysis.UpdateRateVsDevices(caf.AppleHistory, caf.Counts,
			func(c trace.DeviceCount) int { return c.Apple }, 10),
		Samsung: analysis.UpdateRateVsDevices(caf.SamsungHistory, caf.Counts,
			func(c trace.DeviceCount) int { return c.Samsung }, 10),
	}
}

// RateAt returns the mean update rate for the bucket containing n devices.
func rateAt(buckets []analysis.RateBucket, n int) (float64, bool) {
	for _, b := range buckets {
		if n >= b.MinDevices && n <= b.MaxDevices {
			return b.MeanRate, true
		}
	}
	return 0, false
}

// AppleRateAt / SamsungRateAt expose bucket lookups for calibration tests.
func (r *Figure4Result) AppleRateAt(n int) (float64, bool)   { return rateAt(r.Apple, n) }
func (r *Figure4Result) SamsungRateAt(n int) (float64, bool) { return rateAt(r.Samsung, n) }

// MaxSamsungBucket returns the largest Samsung device-count bucket
// observed (the paper never saw more than 80 Samsung phones in an hour).
func (r *Figure4Result) MaxSamsungBucket() int {
	max := 0
	for _, b := range r.Samsung {
		if b.MaxDevices > max {
			max = b.MaxDevices
		}
	}
	return max
}

// Render prints both vendors' bucket series.
func (r *Figure4Result) Render() string {
	var b strings.Builder
	fmt.Fprintln(&b, "Figure 4: Update rate vs likelihood of N reporting devices within one hour")
	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "vendor\tdevices\tlikelihood\tupd/h\tstd\thours")
	for _, pair := range []struct {
		name    string
		buckets []analysis.RateBucket
	}{{"Apple", r.Apple}, {"Samsung", r.Samsung}} {
		for _, bk := range pair.buckets {
			fmt.Fprintf(tw, "%s\t%d-%d\t%.2f\t%.1f\t%.1f\t%d\n",
				pair.name, bk.MinDevices, bk.MaxDevices, bk.Likelihood, bk.MeanRate, bk.StdRate, bk.Hours)
		}
	}
	tw.Flush()
	return b.String()
}

// BatteryRow is one line of the battery comparison (the paper's Section
// 5.1 claim: SmartTag trades ~20% more battery for its aggressive radio).
type BatteryRow struct {
	Tag           string
	MeanCurrentUA float64
	LifeDays      float64
}

// BatteryResult compares tag battery models.
type BatteryResult struct {
	Rows  []BatteryRow
	Ratio float64 // SmartTag current / AirTag current
}

// Battery computes the battery comparison from the tag profiles.
func Battery() *BatteryResult {
	air := tag.AirTagProfile()
	smart := tag.SmartTagProfile()
	res := &BatteryResult{
		Rows: []BatteryRow{
			{Tag: "AirTag", MeanCurrentUA: air.MeanCurrentUA(), LifeDays: air.BatteryLife().Hours() / 24},
			{Tag: "SmartTag", MeanCurrentUA: smart.MeanCurrentUA(), LifeDays: smart.BatteryLife().Hours() / 24},
		},
	}
	res.Ratio = smart.MeanCurrentUA() / air.MeanCurrentUA()
	return res
}

// Render prints the battery table.
func (r *BatteryResult) Render() string {
	var b strings.Builder
	fmt.Fprintln(&b, "Battery model: separated-mode advertising (Section 5.1 claim)")
	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "tag\tmean current (uA)\testimated life (days)")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%s\t%.1f\t%.0f\n", row.Tag, row.MeanCurrentUA, row.LifeDays)
	}
	tw.Flush()
	fmt.Fprintf(&b, "SmartTag/AirTag current ratio: %.2f (paper: ~1.2)\n", r.Ratio)
	return b.String()
}
