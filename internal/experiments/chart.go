package experiments

import (
	"fmt"
	"math"
	"strings"

	"tagsim/internal/trace"
)

// asciiChart renders named series as a fixed-size ASCII line chart, the
// text analogue of the paper's figure panels. Each series gets a marker
// rune; points are plotted at their nearest cell, series later in the
// list win collisions.
type asciiChart struct {
	Width, Height int
	XLabel        string
	YLabel        string
	XMin, XMax    float64
	YMin, YMax    float64
}

type chartSeries struct {
	Name   string
	Marker byte
	XS, YS []float64
}

func (c asciiChart) render(series []chartSeries) string {
	if c.Width <= 0 {
		c.Width = 56
	}
	if c.Height <= 0 {
		c.Height = 14
	}
	grid := make([][]byte, c.Height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", c.Width))
	}
	spanX := c.XMax - c.XMin
	spanY := c.YMax - c.YMin
	if spanX <= 0 || spanY <= 0 {
		return "(empty chart)\n"
	}
	plot := func(x, y float64, m byte) {
		if math.IsNaN(x) || math.IsNaN(y) {
			return
		}
		col := int((x - c.XMin) / spanX * float64(c.Width-1))
		row := c.Height - 1 - int((y-c.YMin)/spanY*float64(c.Height-1))
		if col < 0 || col >= c.Width || row < 0 || row >= c.Height {
			return
		}
		grid[row][col] = m
	}
	for _, s := range series {
		// Linear interpolation between points fills the line.
		for i := 1; i < len(s.XS); i++ {
			x0, y0, x1, y1 := s.XS[i-1], s.YS[i-1], s.XS[i], s.YS[i]
			steps := c.Width / 2
			for k := 0; k <= steps; k++ {
				f := float64(k) / float64(steps)
				plot(x0+(x1-x0)*f, y0+(y1-y0)*f, s.Marker)
			}
		}
		for i := range s.XS {
			plot(s.XS[i], s.YS[i], s.Marker)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", c.YLabel)
	for i, row := range grid {
		yVal := c.YMax - float64(i)/float64(c.Height-1)*spanY
		fmt.Fprintf(&b, "%6.1f |%s|\n", yVal, string(row))
	}
	fmt.Fprintf(&b, "       %s\n", strings.Repeat("-", c.Width+2))
	fmt.Fprintf(&b, "       %-8.0f%*s\n", c.XMin, c.Width-6, fmt.Sprintf("%.0f %s", c.XMax, c.XLabel))
	legend := make([]string, 0, len(series))
	for _, s := range series {
		legend = append(legend, fmt.Sprintf("%c=%s", s.Marker, s.Name))
	}
	fmt.Fprintf(&b, "       legend: %s\n", strings.Join(legend, "  "))
	return b.String()
}

// RenderChart draws the accuracy-vs-responsiveness sweep as an ASCII
// figure panel (the visual form of Figures 5a-c).
func (r *Figure5SweepResult) RenderChart() string {
	markers := map[trace.Vendor]byte{
		trace.VendorApple:    'a',
		trace.VendorSamsung:  's',
		trace.VendorCombined: '*',
	}
	var series []chartSeries
	for _, v := range Vendors {
		s := chartSeries{Name: v.String(), Marker: markers[v]}
		for _, m := range SweepMinutes {
			s.XS = append(s.XS, float64(m))
			s.YS = append(s.YS, r.Acc(v, m))
		}
		series = append(series, s)
	}
	chart := asciiChart{
		XLabel: "min", YLabel: fmt.Sprintf("accuracy %% (radius %.0f m)", r.RadiusM),
		XMin: 0, XMax: float64(SweepMinutes[len(SweepMinutes)-1]),
		YMin: 0, YMax: 100,
	}
	return chart.render(series)
}

// RenderChart draws the radius sweep as an ASCII panel (Figure 8's
// visual form), one marker per time window.
func (r *Figure8Result) RenderChart() string {
	markers := []byte{'1', '2', '3', '4', '5', '6'}
	var series []chartSeries
	for i, w := range r.Windows {
		s := chartSeries{Name: fmt.Sprintf("%dmin", int(w.Minutes())), Marker: markers[i%len(markers)]}
		for _, radius := range r.Radii {
			s.XS = append(s.XS, radius)
			s.YS = append(s.YS, r.Acc[w][radius])
		}
		series = append(series, s)
	}
	chart := asciiChart{
		XLabel: "radius m", YLabel: "combined accuracy %",
		XMin: 0, XMax: 100, YMin: 0, YMax: 100,
	}
	return chart.render(series)
}

// RenderChart draws the cafeteria day as an ASCII panel (Figure 3's
// visual form): update rates for both tags over the hours of the day.
func (r *Figure3Result) RenderChart() string {
	var air, smart chartSeries
	air = chartSeries{Name: "AirTag", Marker: 'a'}
	smart = chartSeries{Name: "SmartTag", Marker: 's'}
	for _, row := range r.Rows {
		air.XS = append(air.XS, float64(row.Hour))
		air.YS = append(air.YS, row.AirTagRate)
		smart.XS = append(smart.XS, float64(row.Hour))
		smart.YS = append(smart.YS, row.SmartRate)
	}
	chart := asciiChart{
		XLabel: "hour", YLabel: "updates/hour",
		XMin: 0, XMax: 23, YMin: 0, YMax: 22,
	}
	return chart.render([]chartSeries{air, smart})
}
