package experiments

import (
	"fmt"
	"strings"
	"text/tabwriter"
	"time"

	"tagsim/internal/cloud"
	"tagsim/internal/device"
	"tagsim/internal/encounter"
	"tagsim/internal/geo"
	"tagsim/internal/mobility"
	"tagsim/internal/sim"
	"tagsim/internal/tag"
	"tagsim/internal/trace"
)

// AblationRow is one configuration of the strategy/cap ablation.
type AblationRow struct {
	Name        string
	RatePerHour float64 // accepted updates per hour
	HeardPerH   float64 // beacon hearings per hour (pre-policy)
}

// AblationResult compares reporting-policy designs in a fixed crowd,
// isolating which mechanism produces the paper's 15-20 updates/hour
// plateau (DESIGN.md ablations 1-2).
type AblationResult struct {
	Crowd int
	Rows  []AblationRow
}

// AblationStrategies runs a fixed crowd of devices near a tag under four
// policies: Apple's conservative strategy, Samsung's aggressive strategy,
// an unthrottled policy (report every hearing), and the aggressive policy
// with the cloud-side rate cap disabled.
func AblationStrategies(seed int64, crowd int, hours int) *AblationResult {
	if crowd <= 0 {
		crowd = 60
	}
	if hours <= 0 {
		hours = 6
	}
	res := &AblationResult{Crowd: crowd}

	type config struct {
		name     string
		strategy device.Strategy
		capOff   bool
	}
	unthrottled := device.Strategy{
		ScanInterval: 10 * time.Second,
		ScanWindow:   time.Second,
		ReportProb:   1,
		Cooldown:     time.Minute,
	}
	configs := []config{
		{"apple conservative", device.AppleStrategy(), false},
		{"samsung aggressive", device.SamsungStrategy(), false},
		{"unthrottled devices", unthrottled, false},
		{"aggressive, no cloud cap", device.SamsungStrategy(), true},
	}
	start := time.Date(2022, 3, 7, 10, 0, 0, 0, time.UTC)
	spot := geo.LatLon{Lat: 24.4539, Lon: 54.3773}

	for _, cfg := range configs {
		e := sim.NewEngine(start, seed)
		rng := e.RNG("ablation/" + cfg.name)
		devices := make([]*device.Device, crowd)
		for i := range devices {
			p := geo.Destination(spot, rng.Float64()*360, 5+rng.Float64()*30)
			d := device.New(fmt.Sprintf("dev-%03d", i), trace.VendorApple, p, mobility.Stationary(p))
			d.Strategy = cfg.strategy
			devices[i] = d
		}
		tg := tag.New("tag-1", tag.AirTagProfile(), mobility.Stationary(spot), uint64(seed), start)
		svc := cloud.NewService(trace.VendorApple)
		if cfg.capOff {
			svc.MinUpdateInterval = 0
		}
		svc.Register(tg.ID)
		plane := encounter.New(encounter.Config{}, e, device.NewFleet(spot, devices),
			[]*tag.Tag{tg}, map[trace.Vendor]*cloud.Service{trace.VendorApple: svc})
		plane.Attach(start)
		e.RunFor(time.Duration(hours) * time.Hour)

		accepted, _ := svc.Stats()
		heard, _, _ := plane.Stats()
		res.Rows = append(res.Rows, AblationRow{
			Name:        cfg.name,
			RatePerHour: float64(accepted) / float64(hours),
			HeardPerH:   float64(heard) / float64(hours),
		})
	}
	return res
}

// Rate returns the accepted update rate for a named configuration.
func (r *AblationResult) Rate(name string) (float64, bool) {
	for _, row := range r.Rows {
		if row.Name == name {
			return row.RatePerHour, true
		}
	}
	return 0, false
}

// Render prints the ablation table.
func (r *AblationResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: reporting policy vs update rate (%d devices in range)\n", r.Crowd)
	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "policy\theard/h\taccepted upd/h")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%s\t%.0f\t%.1f\n", row.Name, row.HeardPerH, row.RatePerHour)
	}
	tw.Flush()
	fmt.Fprintln(&b, "The 15-20 upd/h plateau is cloud-enforced: removing the cap lets the")
	fmt.Fprintln(&b, "aggressive policy through, while the conservative policy self-limits.")
	return b.String()
}
