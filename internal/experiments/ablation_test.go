package experiments

import (
	"strings"
	"testing"
)

func TestAblationStrategies(t *testing.T) {
	r := AblationStrategies(5, 60, 4)
	if len(r.Rows) != 4 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	apple, _ := r.Rate("apple conservative")
	samsung, _ := r.Rate("samsung aggressive")
	uncapped, _ := r.Rate("aggressive, no cloud cap")

	// With 60 devices, both capped policies sit at/below the plateau and
	// the aggressive one saturates it.
	if samsung < 12 || samsung > 20 {
		t.Errorf("aggressive capped rate = %.1f, want the 15-20 plateau", samsung)
	}
	if apple >= samsung {
		t.Errorf("conservative (%.1f) should trail aggressive (%.1f) at this density", apple, samsung)
	}
	// Removing the cap blows well past the plateau — the plateau is a
	// cloud property, not a radio or density limit.
	if uncapped < samsung*2 {
		t.Errorf("uncapped rate = %.1f, want >> capped %.1f", uncapped, samsung)
	}
	if !strings.Contains(r.Render(), "Ablation") {
		t.Error("render missing title")
	}
	if _, ok := r.Rate("nope"); ok {
		t.Error("unknown config should not resolve")
	}
}

func TestAblationDefaults(t *testing.T) {
	r := AblationStrategies(1, 0, 0)
	if r.Crowd != 60 {
		t.Errorf("default crowd = %d", r.Crowd)
	}
}
