package experiments

import (
	"fmt"
	"strings"
	"text/tabwriter"
	"time"

	"tagsim/internal/analysis"
	"tagsim/internal/geo"
	"tagsim/internal/hexgrid"
	"tagsim/internal/population"
	"tagsim/internal/runner"
	"tagsim/internal/scenario"
	"tagsim/internal/stats"
	"tagsim/internal/trace"
)

// Figure6Result reproduces Figure 6: the hexagons visited by a
// participant, colored by population density class.
type Figure6Result struct {
	Country      string
	Resolution   int
	Visits       []analysis.HexVisit
	CellsByClass map[population.DensityClass][]hexgrid.Cell
	// Map is an ASCII rendering of the visited area.
	Map string
}

// Figure6 computes visited hexagons (>=5 consecutive minutes, resolution
// 8) for one country's participant and classifies them by density.
func Figure6(c *Campaign, country string) *Figure6Result {
	var cr *scenario.CountryResult
	for i := range c.Result.Countries {
		if c.Result.Countries[i].Spec.Code == country {
			cr = &c.Result.Countries[i]
			break
		}
	}
	if cr == nil {
		return &Figure6Result{Country: country}
	}
	const res = 8
	visits := analysis.HexVisits(cr.Dataset.GroundTruth, res, 5*time.Minute, 5*time.Minute)
	out := &Figure6Result{
		Country:      country,
		Resolution:   res,
		Visits:       visits,
		CellsByClass: make(map[population.DensityClass][]hexgrid.Cell),
	}
	for _, cell := range analysis.DistinctCells(visits) {
		cls := population.Classify(cr.Population.DensityOfCell(cell))
		out.CellsByClass[cls] = append(out.CellsByClass[cls], cell)
	}
	out.Map = renderHexMap(analysis.DistinctCells(visits), cr.Population)
	return out
}

// renderHexMap draws visited cells on a small ASCII grid: L/M/H for the
// density class of each visited hexagon.
func renderHexMap(cells []hexgrid.Cell, pop *population.Map) string {
	if len(cells) == 0 {
		return "(no visited hexagons)\n"
	}
	var pts []geo.LatLon
	for _, c := range cells {
		pts = append(pts, hexgrid.CellToLatLon(c))
	}
	box := geo.NewBBox(pts...)
	const w, h = 48, 16
	grid := make([][]byte, h)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(".", w))
	}
	mark := map[population.DensityClass]byte{
		population.DensityLow:    'L',
		population.DensityMedium: 'M',
		population.DensityHigh:   'H',
	}
	for _, c := range cells {
		p := hexgrid.CellToLatLon(c)
		var x, y int
		if box.MaxLon > box.MinLon {
			x = int((p.Lon - box.MinLon) / (box.MaxLon - box.MinLon) * (w - 1))
		}
		if box.MaxLat > box.MinLat {
			y = int((box.MaxLat - p.Lat) / (box.MaxLat - box.MinLat) * (h - 1))
		}
		grid[clampI(y, 0, h-1)][clampI(x, 0, w-1)] = mark[population.Classify(pop.DensityOfCell(c))]
	}
	var b strings.Builder
	for _, row := range grid {
		b.Write(row)
		b.WriteByte('\n')
	}
	return b.String()
}

func clampI(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Render prints the visited-hexagon summary and ASCII map.
func (r *Figure6Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6: hexagons visited in %s (H3-like res %d, >=5 consecutive minutes)\n", r.Country, r.Resolution)
	total := 0
	for _, cls := range []population.DensityClass{population.DensityLow, population.DensityMedium, population.DensityHigh} {
		n := len(r.CellsByClass[cls])
		total += n
		fmt.Fprintf(&b, "  %s density: %d hexagons\n", cls, n)
	}
	fmt.Fprintf(&b, "  total visited: %d hexagons, %d visits\n", total, len(r.Visits))
	b.WriteString(r.Map)
	return b.String()
}

// Figure7Class is one density stratum's accuracy distribution.
type Figure7Class struct {
	Class    population.DensityClass
	Vendor   trace.Vendor
	Cells    int
	ZeroFrac float64 // P(accuracy == 0)
	Median   float64
	CDF      *stats.ECDF
}

// Figure7Result reproduces Figure 7: CDFs of per-hexagon accuracy by
// population density (1-hour responsiveness, 100 m radius).
type Figure7Result struct {
	Classes []Figure7Class
}

// Figure7 joins per-hexagon accuracy with the density rasters across all
// countries. The countries are independent worlds and fan out across the
// worker pool; within one country the ground-truth filtering, truth
// index, and hexagon visits are computed once and shared by all three
// ecosystems (the per-vendor crawl logs still differ), and each
// (country, vendor) pair merges against its own one-shot analysis index.
// Results are pooled in deterministic vendor-major, country-minor,
// cell-sorted order.
func Figure7(c *Campaign) *Figure7Result {
	const radius = 100.0
	window := time.Hour
	res := &Figure7Result{}
	// classified is one density-classified accuracy sample.
	type classified struct {
		cls population.DensityClass
		pct float64
	}
	perCountry := runner.Map(c.Options.Workers, len(c.Result.Countries), func(i int) [][]classified {
		cr := &c.Result.Countries[i]
		kept, _ := analysis.FilterNearHomes(cr.Dataset.GroundTruth, cr.Homes, 300)
		truth := analysis.NewTruthIndex(kept)
		visits := analysis.HexVisits(kept, 8, 5*time.Minute, 5*time.Minute)
		cells := analysis.DistinctCells(visits)
		out := make([][]classified, len(Vendors))
		for vi, vendor := range Vendors {
			reports := analysis.FilterCrawlsNearHomes(cr.Dataset.CrawlsFor(vendor), cr.Homes, 300)
			acc := analysis.CellAccuracy(truth, reports, visits, window, radius)
			for _, cell := range cells {
				pct, ok := acc[cell]
				if !ok {
					continue
				}
				cls := population.Classify(cr.Population.DensityOfCell(cell))
				out[vi] = append(out[vi], classified{cls: cls, pct: pct})
			}
		}
		return out
	})
	for vi := range Vendors {
		vendor := Vendors[vi]
		// Per-class accuracy samples pooled across countries.
		samples := map[population.DensityClass][]float64{}
		for ci := range perCountry {
			for _, s := range perCountry[ci][vi] {
				samples[s.cls] = append(samples[s.cls], s.pct)
			}
		}
		for _, cls := range []population.DensityClass{population.DensityLow, population.DensityMedium, population.DensityHigh} {
			xs := samples[cls]
			fc := Figure7Class{Class: cls, Vendor: vendor, Cells: len(xs), CDF: stats.NewECDF(xs)}
			if len(xs) > 0 {
				zero := 0
				for _, x := range xs {
					if x == 0 {
						zero++
					}
				}
				fc.ZeroFrac = float64(zero) / float64(len(xs))
				fc.Median = stats.Percentile(xs, 50)
			}
			res.Classes = append(res.Classes, fc)
		}
	}
	return res
}

// Class returns the stratum for a vendor/class pair.
func (r *Figure7Result) Class(v trace.Vendor, cls population.DensityClass) (Figure7Class, bool) {
	for _, c := range r.Classes {
		if c.Vendor == v && c.Class == cls {
			return c, true
		}
	}
	return Figure7Class{}, false
}

// Render prints per-class distribution statistics and CDF deciles.
func (r *Figure7Result) Render() string {
	var b strings.Builder
	fmt.Fprintln(&b, "Figure 7: CDF of per-hexagon accuracy by population density (1 h, 100 m)")
	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "vendor\tdensity\thexes\tP(acc=0)\tmedian\tCDF@25\tCDF@50\tCDF@75")
	for _, c := range r.Classes {
		if c.Cells == 0 {
			fmt.Fprintf(tw, "%s\t%s\t0\t-\t-\t-\t-\t-\n", c.Vendor, c.Class)
			continue
		}
		fmt.Fprintf(tw, "%s\t%s\t%d\t%.2f\t%.1f\t%.2f\t%.2f\t%.2f\n",
			c.Vendor, c.Class, c.Cells, c.ZeroFrac, c.Median,
			c.CDF.Eval(25), c.CDF.Eval(50), c.CDF.Eval(75))
	}
	tw.Flush()
	return b.String()
}
