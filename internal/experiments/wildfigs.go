package experiments

import (
	"fmt"
	"math"

	"strings"
	"text/tabwriter"
	"time"

	"tagsim/internal/analysis"
	"tagsim/internal/mobility"
	"tagsim/internal/runner"
	"tagsim/internal/stats"
	"tagsim/internal/trace"
)

func nan() float64 { return math.NaN() }

// Table1Row is one country row of Table 1.
type Table1Row struct {
	Country    string
	Cities     int
	SamsungNow int
	AppleNow   int
	WalkKm     float64
	JogKm      float64
	TransitKm  float64
	Days       int
}

// Table1Result reproduces the in-the-wild dataset summary.
type Table1Result struct {
	Rows  []Table1Row
	Total Table1Row
}

// Table1 summarizes the campaign like the paper's Table 1.
func Table1(c *Campaign) *Table1Result {
	res := &Table1Result{}
	for _, cr := range c.Result.Countries {
		row := Table1Row{
			Country:    cr.Spec.Code,
			Cities:     cr.Spec.Cities,
			SamsungNow: cr.SamsungNow,
			AppleNow:   cr.AppleNow,
			WalkKm:     cr.KmByClass[mobility.ClassPedestrian],
			JogKm:      cr.KmByClass[mobility.ClassJogging],
			TransitKm:  cr.KmByClass[mobility.ClassTransit],
			Days:       cr.Days,
		}
		res.Rows = append(res.Rows, row)
		res.Total.Cities += row.Cities
		res.Total.SamsungNow += row.SamsungNow
		res.Total.AppleNow += row.AppleNow
		res.Total.WalkKm += row.WalkKm
		res.Total.JogKm += row.JogKm
		res.Total.TransitKm += row.TransitKm
		res.Total.Days += row.Days
	}
	res.Total.Country = "Tot."
	return res
}

// Render prints the table in the paper's layout.
func (r *Table1Result) Render() string {
	var b strings.Builder
	fmt.Fprintln(&b, "Table 1: Summary of data-set collected in the wild")
	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Ctry\t# cities\t# Report Samsung\t# Report Apple\tWalk/Jog/Transit (km)\tDays")
	for _, row := range append(r.Rows, r.Total) {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%.0f/%.0f/%.0f\t%d\n",
			row.Country, row.Cities, row.SamsungNow, row.AppleNow,
			row.WalkKm, row.JogKm, row.TransitKm, row.Days)
	}
	tw.Flush()
	return b.String()
}

// Figure5SweepPoint is one point of Figures 5a-c.
type Figure5SweepPoint struct {
	Vendor  trace.Vendor
	Minutes int
	Acc     float64
}

// Figure5SweepResult holds one radius's accuracy-vs-responsiveness sweep.
type Figure5SweepResult struct {
	RadiusM float64
	Points  []Figure5SweepPoint
	// acc backs Acc with O(1) lookups; Render calls Acc once per table
	// cell, so a linear scan over Points there would make rendering
	// quadratic in the sweep size.
	acc map[sweepKey]float64
}

type sweepKey struct {
	vendor  trace.Vendor
	minutes int
}

// SweepMinutes are the responsiveness values swept in Figures 5a-c.
var SweepMinutes = []int{1, 5, 10, 15, 20, 25, 30, 45, 60, 90, 120}

// Figure5Sweep computes accuracy vs responsiveness at a radius for all
// three ecosystems (Figures 5a: 10 m, 5b: 25 m, 5c: 100 m). The sweep
// points are independent reads of the campaign's cached per-vendor
// indexes and fan out across the worker pool; the result is identical
// for any worker count.
func Figure5Sweep(c *Campaign, radiusM float64) *Figure5SweepResult {
	res := &Figure5SweepResult{RadiusM: radiusM}
	n := len(Vendors) * len(SweepMinutes)
	pts := runner.Map(c.Options.Workers, n, func(i int) Figure5SweepPoint {
		v, m := Vendors[i/len(SweepMinutes)], SweepMinutes[i%len(SweepMinutes)]
		acc := c.accuracy(v, time.Duration(m)*time.Minute, radiusM, c.From, c.To)
		return Figure5SweepPoint{Vendor: v, Minutes: m, Acc: acc.Pct()}
	})
	res.Points = pts
	res.acc = make(map[sweepKey]float64, n)
	for _, p := range pts {
		res.acc[sweepKey{p.Vendor, p.Minutes}] = p.Acc
	}
	return res
}

// Acc returns the accuracy for a vendor/minutes pair, or NaN.
func (r *Figure5SweepResult) Acc(v trace.Vendor, minutes int) float64 {
	if r.acc != nil {
		if a, ok := r.acc[sweepKey{v, minutes}]; ok {
			return a
		}
		return nan()
	}
	// Hand-assembled results have no map; fall back to scanning Points.
	for _, p := range r.Points {
		if p.Vendor == v && p.Minutes == minutes {
			return p.Acc
		}
	}
	return nan()
}

// Render prints the sweep as one row per responsiveness value.
func (r *Figure5SweepResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5 (radius %.0f m): accuracy (%%) vs responsiveness (minutes)\n", r.RadiusM)
	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "minutes\tApple\tSamsung\tCombined")
	for _, m := range SweepMinutes {
		fmt.Fprintf(tw, "%d\t%.1f\t%.1f\t%.1f\n",
			m, r.Acc(trace.VendorApple, m), r.Acc(trace.VendorSamsung, m), r.Acc(trace.VendorCombined, m))
	}
	tw.Flush()
	return b.String()
}

// ClassAccuracy is one bar of Figures 5d-f: a class's accuracy at one
// radius with a 95% confidence interval over daily samples.
type ClassAccuracy struct {
	Class   string
	RadiusM float64
	Mean    float64
	CI95    float64
	Days    int
}

// PairTest is one significance bracket between two classes.
type PairTest struct {
	A, B  string
	P     float64
	Stars string
}

// Figure5ClassResult holds one classified-accuracy panel (5d, 5e, or 5f).
type Figure5ClassResult struct {
	Title   string
	Classes []string
	Bars    []ClassAccuracy
	Tests   []PairTest
}

// classPanelRadii are the paper's three accuracy radii, evaluated by
// every Figure 5d-f panel.
var classPanelRadii = []float64{10, 25, 100}

// classPanel computes per-class accuracy bars (10-minute buckets, radii
// 10/25/100 m) and Welch t-tests between adjacent classes on the daily
// 25 m samples, mirroring the paper's Figure 5d-f methodology. The three
// radii are independent merges over the combined ecosystem's cached
// index and fan out across the worker pool; classifiers must therefore
// be safe for concurrent read-only use (the built-in ones are pure
// functions over the immutable TruthIndex).
func classPanel(c *Campaign, title string, classes []string, classify analysis.BucketClassifier) *Figure5ClassResult {
	res := &Figure5ClassResult{Title: title, Classes: classes}
	const bucket = 10 * time.Minute
	perRadius := runner.Map(c.Options.Workers, len(classPanelRadii), func(i int) map[string][]float64 {
		return c.dailyAccuracyByClass(trace.VendorCombined, bucket, classPanelRadii[i], classify, 2)
	})
	daily := map[float64]map[string][]float64{}
	for i, radius := range classPanelRadii {
		daily[radius] = perRadius[i]
		for _, class := range classes {
			samples := daily[radius][class]
			bar := ClassAccuracy{Class: class, RadiusM: radius, Days: len(samples)}
			if len(samples) > 0 {
				s := stats.Summarize(samples)
				bar.Mean = s.Mean
				bar.CI95 = s.CI95
			}
			res.Bars = append(res.Bars, bar)
		}
	}
	for i := 0; i+1 < len(classes); i++ {
		a, b := classes[i], classes[i+1]
		test := PairTest{A: a, B: b, P: nan(), Stars: "ns"}
		if t, err := stats.WelchTTest(daily[25][a], daily[25][b]); err == nil {
			test.P = t.P
			test.Stars = stats.Stars(t.P)
		}
		res.Tests = append(res.Tests, test)
	}
	return res
}

// Figure5d computes accuracy by mobility speed class.
func Figure5d(c *Campaign) *Figure5ClassResult {
	classes := []string{"Stationary", "Pedestrian", "Jogging", "Transit"}
	return classPanel(c, "Figure 5d: accuracy by mobility class (10-min buckets)", classes, analysis.SpeedClassifier(c.Truth))
}

// Figure5e computes accuracy by day period.
func Figure5e(c *Campaign) *Figure5ClassResult {
	classes := make([]string, len(analysis.DayPeriods))
	for i, p := range analysis.DayPeriods {
		classes[i] = string(p)
	}
	return classPanel(c, "Figure 5e: accuracy by time of day (10-min buckets)", classes, analysis.PeriodClassifier)
}

// Figure5f computes accuracy by weekday/weekend.
func Figure5f(c *Campaign) *Figure5ClassResult {
	classes := []string{string(analysis.Weekday), string(analysis.Weekend)}
	return classPanel(c, "Figure 5f: accuracy weekday vs weekend (10-min buckets)", classes, analysis.WeekPartClassifier)
}

// Mean returns a class's mean accuracy at a radius, or NaN.
func (r *Figure5ClassResult) Mean(class string, radiusM float64) float64 {
	for _, bar := range r.Bars {
		if bar.Class == class && bar.RadiusM == radiusM {
			return bar.Mean
		}
	}
	return nan()
}

// Test returns the significance stars between two adjacent classes.
func (r *Figure5ClassResult) Test(a, b string) (PairTest, bool) {
	for _, t := range r.Tests {
		if t.A == a && t.B == b {
			return t, true
		}
	}
	return PairTest{}, false
}

// Render prints the panel with significance annotations.
func (r *Figure5ClassResult) Render() string {
	var b strings.Builder
	fmt.Fprintln(&b, r.Title)
	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "class\tradius\tmean acc (%)\t95% CI\tdays")
	for _, bar := range r.Bars {
		fmt.Fprintf(tw, "%s\t%.0f m\t%.1f\t± %.1f\t%d\n", bar.Class, bar.RadiusM, bar.Mean, bar.CI95, bar.Days)
	}
	tw.Flush()
	for _, t := range r.Tests {
		fmt.Fprintf(&b, "  %s vs %s: %s (p=%.4g)\n", t.A, t.B, t.Stars, t.P)
	}
	return b.String()
}

// Figure8Result reproduces Figure 8 (combined accuracy vs radius across
// time windows).
type Figure8Result struct {
	Radii   []float64
	Windows []time.Duration
	// Acc[window][radius] in percent.
	Acc map[time.Duration]map[float64]float64
}

// Figure8 sweeps radius x window over the combined ecosystem. Every
// (window, radius) cell is an independent merge over the combined
// index; the grid fans out across the worker pool and is reassembled in
// figure order.
func Figure8(c *Campaign) *Figure8Result {
	res := &Figure8Result{
		Acc: make(map[time.Duration]map[float64]float64),
	}
	for r := 10.0; r <= 100; r += 10 {
		res.Radii = append(res.Radii, r)
	}
	for _, m := range []int{1, 10, 30, 60, 120, 180} {
		res.Windows = append(res.Windows, time.Duration(m)*time.Minute)
	}
	cells := runner.Map(c.Options.Workers, len(res.Windows)*len(res.Radii), func(i int) float64 {
		w, radius := res.Windows[i/len(res.Radii)], res.Radii[i%len(res.Radii)]
		return c.accuracy(trace.VendorCombined, w, radius, c.From, c.To).Pct()
	})
	for wi, w := range res.Windows {
		res.Acc[w] = make(map[float64]float64, len(res.Radii))
		for ri, radius := range res.Radii {
			res.Acc[w][radius] = cells[wi*len(res.Radii)+ri]
		}
	}
	return res
}

// Render prints the radius sweep, one row per radius.
func (r *Figure8Result) Render() string {
	var b strings.Builder
	fmt.Fprintln(&b, "Figure 8: Combined accuracy (%) vs radius across time windows")
	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	header := "radius"
	for _, w := range r.Windows {
		header += fmt.Sprintf("\t%d min", int(w.Minutes()))
	}
	fmt.Fprintln(tw, header)
	for _, radius := range r.Radii {
		row := fmt.Sprintf("%.0f m", radius)
		for _, w := range r.Windows {
			row += fmt.Sprintf("\t%.1f", r.Acc[w][radius])
		}
		fmt.Fprintln(tw, row)
	}
	tw.Flush()
	return b.String()
}

// HeadlineResult carries the paper's abstract-level numbers.
type HeadlineResult struct {
	// Acc10Min100M is the combined accuracy at 10 minutes / 100 m (the
	// paper: ~55%).
	Acc10Min100M float64
	// BacktrackFrac1h10m is the fraction of place episodes backtrackable
	// at 10 m within one hour (the paper: ~half).
	BacktrackFrac1h10m float64
	// HomeFilteredFrac is the share of data removed by the home filter
	// (the paper: 65%).
	HomeFilteredFrac float64
	Episodes         int
}

// Headline computes the abstract's claims from the campaign.
func Headline(c *Campaign) *HeadlineResult {
	res := &HeadlineResult{HomeFilteredFrac: c.RemovedFrac}
	combined := c.Crawls(trace.VendorCombined)
	res.Acc10Min100M = c.accuracy(trace.VendorCombined, 10*time.Minute, 100, c.From, c.To).Pct()

	// Backtracking: place episodes (>=5 min within 25 m), first accurate
	// (10 m) report within one hour.
	kept, _ := analysis.FilterNearHomes(c.Merged.GroundTruth, c.Homes, 300)
	eps := analysis.Episodes(kept, 25, 5*time.Minute)
	delays := analysis.FirstHitDelays(eps, combined, 10, time.Hour)
	res.Episodes = len(eps)
	res.BacktrackFrac1h10m = analysis.BacktrackFraction(delays, time.Hour)
	return res
}

// Render prints the headline claims.
func (r *HeadlineResult) Render() string {
	var b strings.Builder
	fmt.Fprintln(&b, "Headline claims (paper abstract)")
	fmt.Fprintf(&b, "  combined accuracy, 10 min / 100 m: %.1f%% (paper: ~55%%)\n", r.Acc10Min100M)
	fmt.Fprintf(&b, "  movements backtrackable at 10 m within 1 h: %.0f%% of %d episodes (paper: ~50%%)\n",
		r.BacktrackFrac1h10m*100, r.Episodes)
	fmt.Fprintf(&b, "  data removed by 300 m home filter: %.0f%% (paper: 65%%)\n", r.HomeFilteredFrac*100)
	return b.String()
}
