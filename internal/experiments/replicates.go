package experiments

import (
	"fmt"
	"strings"
	"text/tabwriter"
	"time"

	"tagsim/internal/runner"
	"tagsim/internal/scenario"
	"tagsim/internal/stats"
	"tagsim/internal/trace"
)

// ReplicateSet bundles N same-config campaigns run from distinct derived
// seeds (scenario.ReplicateSeed). Replicate 0 renders every figure
// byte-identically to a plain NewCampaign with the same options, so
// aggregates extend — never replace — the single-run figures. (The
// replicate fan-out materializes its campaigns on the batch path —
// RunWildReplicates interleaves many worlds on one pool — while
// NewCampaign streams by default; the streaming equivalence tests pin
// the two paths figure-identical.)
type ReplicateSet struct {
	Options   Options
	Campaigns []*Campaign
}

// CampaignReplicates fans the campaign across n seeds. The simulation
// worlds of every (replicate, country) pair share one worker pool, and
// the per-replicate analysis passes share another, so the sweep
// saturates the machine without nesting pools.
func CampaignReplicates(opts Options, n int) *ReplicateSet {
	if opts.Scale <= 0 {
		opts.Scale = 1
	}
	results := scenario.RunWildReplicates(opts.wildConfig(), n)
	campaigns := runner.Map(opts.Workers, len(results), func(r int) *Campaign {
		ropts := opts
		ropts.Seed = scenario.ReplicateSeed(opts.Seed, r)
		ropts.Workers = 1 // the replicate fan-out is already parallel
		return newCampaignFromResult(ropts, results[r])
	})
	return &ReplicateSet{Options: opts, Campaigns: campaigns}
}

// N returns the replicate count.
func (s *ReplicateSet) N() int { return len(s.Campaigns) }

// ReplicateStat is an across-replicate aggregate of one scalar: the
// mean over replicates with the sample standard deviation as spread.
type ReplicateStat struct {
	Mean, Std float64
	N         int
}

func newReplicateStat(samples []float64) ReplicateStat {
	sum := stats.Summarize(samples)
	st := ReplicateStat{Mean: sum.Mean, Std: sum.Std, N: len(samples)}
	if st.N < 2 {
		st.Std = 0 // a single replicate has no spread
	}
	return st
}

// String renders "mean ± std".
func (r ReplicateStat) String() string { return fmt.Sprintf("%.1f ± %.1f", r.Mean, r.Std) }

// Table1ReplicateRow is one country's report counts across replicates.
type Table1ReplicateRow struct {
	Country              string
	SamsungNow, AppleNow ReplicateStat
}

// Table1Replicates aggregates Table 1's report columns over replicates.
type Table1Replicates struct {
	Rows  []Table1ReplicateRow
	Total Table1ReplicateRow
}

// Table1Stats computes the across-replicate Table 1 aggregate.
func (s *ReplicateSet) Table1Stats() *Table1Replicates {
	tables := runner.Map(s.Options.Workers, len(s.Campaigns), func(i int) *Table1Result {
		return Table1(s.Campaigns[i])
	})
	res := &Table1Replicates{}
	if len(tables) == 0 {
		return res
	}
	for ri, row := range tables[0].Rows {
		apple := make([]float64, len(tables))
		samsung := make([]float64, len(tables))
		for ti, t := range tables {
			apple[ti] = float64(t.Rows[ri].AppleNow)
			samsung[ti] = float64(t.Rows[ri].SamsungNow)
		}
		res.Rows = append(res.Rows, Table1ReplicateRow{
			Country:    row.Country,
			AppleNow:   newReplicateStat(apple),
			SamsungNow: newReplicateStat(samsung),
		})
	}
	apple := make([]float64, len(tables))
	samsung := make([]float64, len(tables))
	for ti, t := range tables {
		apple[ti] = float64(t.Total.AppleNow)
		samsung[ti] = float64(t.Total.SamsungNow)
	}
	res.Total = Table1ReplicateRow{Country: "Tot.", AppleNow: newReplicateStat(apple), SamsungNow: newReplicateStat(samsung)}
	return res
}

// Render prints the aggregated report columns.
func (r *Table1Replicates) Render() string {
	var b strings.Builder
	n := 0
	if len(r.Rows) > 0 {
		n = r.Rows[0].AppleNow.N
	}
	fmt.Fprintf(&b, "Table 1 across %d replicates: # Report (mean ± std)\n", n)
	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Ctry\t# Report Samsung\t# Report Apple")
	for _, row := range append(r.Rows, r.Total) {
		fmt.Fprintf(tw, "%s\t%s\t%s\n", row.Country, row.SamsungNow, row.AppleNow)
	}
	tw.Flush()
	return b.String()
}

// Figure5ReplicatePoint is one (vendor, responsiveness) cell of the
// replicated Figure 5 sweep.
type Figure5ReplicatePoint struct {
	Vendor  trace.Vendor
	Minutes int
	Acc     ReplicateStat
}

// Figure5Replicates is the across-replicate Figure 5 sweep at one radius.
type Figure5Replicates struct {
	RadiusM float64
	Points  []Figure5ReplicatePoint
	// acc backs Acc with O(1) lookups (Render queries every table cell).
	acc map[sweepKey]ReplicateStat
}

// Figure5Stats aggregates the accuracy-vs-responsiveness sweep at one
// radius over all replicates. Each replicate's sweep reads its
// campaign's cached per-vendor analysis indexes, so the whole aggregate
// never rescans a crawl log.
func (s *ReplicateSet) Figure5Stats(radiusM float64) *Figure5Replicates {
	sweeps := runner.Map(s.Options.Workers, len(s.Campaigns), func(i int) *Figure5SweepResult {
		return Figure5Sweep(s.Campaigns[i], radiusM)
	})
	res := &Figure5Replicates{RadiusM: radiusM, acc: make(map[sweepKey]ReplicateStat, len(Vendors)*len(SweepMinutes))}
	for _, v := range Vendors {
		for _, m := range SweepMinutes {
			samples := make([]float64, len(sweeps))
			for i, sw := range sweeps {
				samples[i] = sw.Acc(v, m)
			}
			pt := Figure5ReplicatePoint{Vendor: v, Minutes: m, Acc: newReplicateStat(samples)}
			res.Points = append(res.Points, pt)
			res.acc[sweepKey{v, m}] = pt.Acc
		}
	}
	return res
}

// Acc returns the aggregate for a vendor/minutes pair.
func (r *Figure5Replicates) Acc(v trace.Vendor, minutes int) ReplicateStat {
	if r.acc != nil {
		if a, ok := r.acc[sweepKey{v, minutes}]; ok {
			return a
		}
		return ReplicateStat{Mean: nan(), Std: nan()}
	}
	// Hand-assembled results have no map; fall back to scanning Points.
	for _, p := range r.Points {
		if p.Vendor == v && p.Minutes == minutes {
			return p.Acc
		}
	}
	return ReplicateStat{Mean: nan(), Std: nan()}
}

// Render prints the aggregated sweep, one row per responsiveness value.
func (r *Figure5Replicates) Render() string {
	var b strings.Builder
	n := 0
	if len(r.Points) > 0 {
		n = r.Points[0].Acc.N
	}
	fmt.Fprintf(&b, "Figure 5 (radius %.0f m) across %d replicates: accuracy %% (mean ± std)\n", r.RadiusM, n)
	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "minutes\tApple\tSamsung\tCombined")
	for _, m := range SweepMinutes {
		fmt.Fprintf(tw, "%d\t%s\t%s\t%s\n",
			m, r.Acc(trace.VendorApple, m), r.Acc(trace.VendorSamsung, m), r.Acc(trace.VendorCombined, m))
	}
	tw.Flush()
	return b.String()
}

// HeadlineReplicates aggregates the paper's abstract-level numbers.
type HeadlineReplicates struct {
	Acc10Min100M       ReplicateStat
	BacktrackFrac1h10m ReplicateStat
	HomeFilteredFrac   ReplicateStat
}

// HeadlineStats computes the across-replicate headline aggregate.
func (s *ReplicateSet) HeadlineStats() *HeadlineReplicates {
	heads := runner.Map(s.Options.Workers, len(s.Campaigns), func(i int) *HeadlineResult {
		return Headline(s.Campaigns[i])
	})
	pick := func(f func(h *HeadlineResult) float64) ReplicateStat {
		samples := make([]float64, len(heads))
		for i, h := range heads {
			samples[i] = f(h)
		}
		return newReplicateStat(samples)
	}
	return &HeadlineReplicates{
		Acc10Min100M:       pick(func(h *HeadlineResult) float64 { return h.Acc10Min100M }),
		BacktrackFrac1h10m: pick(func(h *HeadlineResult) float64 { return h.BacktrackFrac1h10m * 100 }),
		HomeFilteredFrac:   pick(func(h *HeadlineResult) float64 { return h.HomeFilteredFrac * 100 }),
	}
}

// Render prints the aggregated headline claims.
func (r *HeadlineReplicates) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Headline claims across %d replicates (mean ± std)\n", r.Acc10Min100M.N)
	fmt.Fprintf(&b, "  combined accuracy, 10 min / 100 m: %s %% (paper: ~55%%)\n", r.Acc10Min100M)
	fmt.Fprintf(&b, "  movements backtrackable at 10 m within 1 h: %s %% (paper: ~50%%)\n", r.BacktrackFrac1h10m)
	fmt.Fprintf(&b, "  data removed by 300 m home filter: %s %% (paper: 65%%)\n", r.HomeFilteredFrac)
	return b.String()
}

// Render prints every aggregated artifact of the replicate sweep.
func (s *ReplicateSet) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Replicate sweep: %d campaigns, seeds %d", s.N(), s.Options.Seed)
	for r := 1; r < s.N(); r++ {
		fmt.Fprintf(&b, "/%d", scenario.ReplicateSeed(s.Options.Seed, r))
	}
	span := time.Duration(0)
	if s.N() > 0 {
		from, to := s.Campaigns[0].From, s.Campaigns[0].To
		span = to.Sub(from)
	}
	fmt.Fprintf(&b, " (%.0f simulated days each)\n\n", span.Hours()/24)
	b.WriteString(s.Table1Stats().Render())
	b.WriteString("\n")
	b.WriteString(s.Figure5Stats(100).Render())
	b.WriteString("\n")
	b.WriteString(s.HeadlineStats().Render())
	return b.String()
}
