package experiments

import (
	"bytes"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"tagsim/internal/analysis"
	"tagsim/internal/cloud"
	"tagsim/internal/pipeline"
	"tagsim/internal/scenario"
	"tagsim/internal/trace"
)

// withStreaming runs fn with the streaming toggle forced to on/off.
func withStreaming(t *testing.T, enabled bool, fn func()) {
	t.Helper()
	was := pipeline.SetStreaming(enabled)
	defer pipeline.SetStreaming(was)
	fn()
}

// TestStreamingCampaignEquivalence is the PR's acceptance gate: a
// campaign streamed through the pipeline must render every table and
// figure byte-identically to the batch path, at any worker count.
func TestStreamingCampaignEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign experiments are slow")
	}
	var batch, streamed1, streamed8 string
	withStreaming(t, false, func() { batch = renderWildFigures(NewCampaign(tinyOpts(53, 0))) })
	withStreaming(t, true, func() { streamed1 = renderWildFigures(NewCampaign(tinyOpts(53, 1))) })
	withStreaming(t, true, func() { streamed8 = renderWildFigures(NewCampaign(tinyOpts(53, 8))) })
	if streamed1 != batch {
		t.Errorf("streamed figures diverged from batch path:\nstreamed:\n%s\nbatch:\n%s", streamed1, batch)
	}
	if streamed8 != streamed1 {
		t.Errorf("streamed figures diverged across worker counts:\nworkers=8:\n%s\nworkers=1:\n%s", streamed8, streamed1)
	}
}

// TestStreamingCampaignStateEquivalence checks the campaign's shared
// analysis state — not just the rendered figures — between the two
// paths: truth index size, home filter, homes, span.
func TestStreamingCampaignStateEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign experiments are slow")
	}
	var batch, streamed *Campaign
	withStreaming(t, false, func() { batch = NewCampaign(tinyOpts(59, 0)) })
	withStreaming(t, true, func() { streamed = NewCampaign(tinyOpts(59, 0)) })
	if got, want := streamed.Truth.Len(), batch.Truth.Len(); got != want {
		t.Errorf("truth fixes: streamed %d, batch %d", got, want)
	}
	if streamed.RemovedFrac != batch.RemovedFrac {
		t.Errorf("removed fraction: streamed %v, batch %v", streamed.RemovedFrac, batch.RemovedFrac)
	}
	if !reflect.DeepEqual(streamed.Homes, batch.Homes) {
		t.Errorf("homes differ: streamed %d, batch %d", len(streamed.Homes), len(batch.Homes))
	}
	if !streamed.From.Equal(batch.From) || !streamed.To.Equal(batch.To) {
		t.Error("campaign spans differ")
	}
	for i := range batch.Result.Countries {
		b, s := &batch.Result.Countries[i], &streamed.Result.Countries[i]
		if !reflect.DeepEqual(s.Dataset.GroundTruth, b.Dataset.GroundTruth) {
			t.Errorf("%s: streamed ground truth differs from batch", b.Spec.Code)
		}
		if s.AppleNow != b.AppleNow || s.SamsungNow != b.SamsungNow {
			t.Errorf("%s: Now counts differ: streamed %d/%d, batch %d/%d",
				b.Spec.Code, s.AppleNow, s.SamsungNow, b.AppleNow, b.SamsungNow)
		}
		// Streamed country datasets hold distinct reports; the batch
		// raw log must collapse to exactly them.
		for _, v := range []trace.Vendor{trace.VendorApple, trace.VendorSamsung} {
			want := trace.DistinctReports(b.Dataset.CrawlsFor(v))
			got := s.Dataset.CrawlsFor(v)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s/%s: streamed distinct crawls (%d) != dedup of batch raw log (%d)",
					b.Spec.Code, v, len(got), len(want))
			}
		}
	}
	// The per-vendor filtered logs must dedup to the same records.
	for _, v := range Vendors {
		want := trace.DistinctReports(batch.Crawls(v))
		got := streamed.Crawls(v)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: streamed filtered crawls (%d) != dedup of batch filtered crawls (%d)", v, len(got), len(want))
		}
	}
}

// TestStreamingMemoryFootprint measures the campaign-resident heap of
// the two paths: the batch path materializes every raw crawl log (and
// copies it again into the merged dataset), while the streamed path
// retains only distinct reports. Informational — the numbers recorded
// in BENCH_pipeline.json come from a larger run of this measurement —
// but the direction is asserted: streaming must not hold more than the
// batch path it replaces.
func TestStreamingMemoryFootprint(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign experiments are slow")
	}
	resident := func(enabled bool) (c *Campaign, heap uint64) {
		withStreaming(t, enabled, func() { c = NewCampaign(Options{Seed: 71, Scale: 0.1, DevicesPerCity: 200}) })
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return c, ms.HeapAlloc
	}
	batchC, batchHeap := resident(false)
	rawCrawls := 0
	for _, cr := range batchC.Result.Countries {
		rawCrawls += len(cr.Dataset.Crawls[trace.VendorApple]) + len(cr.Dataset.Crawls[trace.VendorSamsung])
	}
	batchC = nil
	runtime.GC()
	streamC, streamHeap := resident(true)
	distinctCrawls := 0
	for _, cr := range streamC.Result.Countries {
		distinctCrawls += len(cr.Dataset.Crawls[trace.VendorApple]) + len(cr.Dataset.Crawls[trace.VendorSamsung])
	}
	t.Logf("resident heap: batch %.1f MB (%d raw crawl records), streamed %.1f MB (%d distinct records)",
		float64(batchHeap)/(1<<20), rawCrawls, float64(streamHeap)/(1<<20), distinctCrawls)
	if distinctCrawls >= rawCrawls {
		t.Errorf("streaming retained %d crawl records, batch raw log has %d — no dedup happened", distinctCrawls, rawCrawls)
	}
	// Allow a little GC noise, but streaming must not regress memory.
	if float64(streamHeap) > float64(batchHeap)*1.05 {
		t.Errorf("streamed campaign resident heap %.1f MB exceeds batch %.1f MB", float64(streamHeap)/(1<<20), float64(batchHeap)/(1<<20))
	}
	runtime.KeepAlive(streamC)
}

// withResidentTruth runs fn with the truth-spill toggle forced.
func withResidentTruth(t *testing.T, resident bool, fn func()) {
	t.Helper()
	was := analysis.SetResidentTruth(resident)
	defer analysis.SetResidentTruth(was)
	fn()
}

// renderSpillSafeFigures renders the wild-campaign artifacts that read
// ground truth only through the TruthIndex/Index query surface (At,
// coverage, speed) — everything except the raw-fix consumers (Figures
// 6-7 and the headline episode picker, which need resident truth).
func renderSpillSafeFigures(c *Campaign) string {
	var b strings.Builder
	b.WriteString(Table1(c).Render())
	for _, radius := range []float64{10, 25, 100} {
		b.WriteString(Figure5Sweep(c, radius).Render())
	}
	b.WriteString(Figure5d(c).Render())
	b.WriteString(Figure5e(c).Render())
	b.WriteString(Figure5f(c).Render())
	b.WriteString(Figure8(c).Render())
	return b.String()
}

// TestTruthSpillCampaignEquivalence is the disk-backed-truth acceptance
// gate: a campaign whose ground truth spills to columnar temp files must
// reproduce the resident campaign's analysis state (truth size and span,
// home filter, homes) and render every spill-safe figure byte-identically.
func TestTruthSpillCampaignEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign experiments are slow")
	}
	var resident, spilled *Campaign
	withStreaming(t, true, func() {
		withResidentTruth(t, true, func() { resident = NewCampaign(tinyOpts(67, 0)) })
		withResidentTruth(t, false, func() { spilled = NewCampaign(tinyOpts(67, 0)) })
	})
	defer spilled.Truth.Close()

	if got, want := spilled.Truth.Len(), resident.Truth.Len(); got != want {
		t.Errorf("truth fixes: spilled %d, resident %d", got, want)
	}
	sf, st, sok := spilled.Truth.Span()
	rf, rt, rok := resident.Truth.Span()
	if sok != rok || !sf.Equal(rf) || !st.Equal(rt) {
		t.Errorf("truth span: spilled (%v,%v,%v), resident (%v,%v,%v)", sf, st, sok, rf, rt, rok)
	}
	if spilled.RemovedFrac != resident.RemovedFrac {
		t.Errorf("removed fraction: spilled %v, resident %v", spilled.RemovedFrac, resident.RemovedFrac)
	}
	if !reflect.DeepEqual(spilled.Homes, resident.Homes) {
		t.Errorf("homes differ: spilled %d, resident %d", len(spilled.Homes), len(resident.Homes))
	}
	if got, want := renderSpillSafeFigures(spilled), renderSpillSafeFigures(resident); got != want {
		t.Errorf("spill-safe figures diverged:\nspilled:\n%s\nresident:\n%s", got, want)
	}
	// The documented trade: raw fixes are on disk, not in the datasets.
	if len(spilled.Merged.GroundTruth) != 0 {
		t.Errorf("spilled campaign retained %d raw fixes in the merged dataset", len(spilled.Merged.GroundTruth))
	}
}

// TestTruthSpillMemoryFootprint measures the campaign-resident heap with
// truth resident versus spilled. Informational like its streaming
// sibling — BENCH_world.json records the numbers from a larger run — but
// the structural claim is asserted: the spilled campaign holds no raw
// fix slices.
func TestTruthSpillMemoryFootprint(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign experiments are slow")
	}
	build := func(residentTruth bool) (c *Campaign, heap uint64) {
		withStreaming(t, true, func() {
			withResidentTruth(t, residentTruth, func() {
				c = NewCampaign(Options{Seed: 73, Scale: 0.1, DevicesPerCity: 200})
			})
		})
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return c, ms.HeapAlloc
	}
	residentC, residentHeap := build(true)
	fixes := residentC.Truth.Len()
	residentC = nil
	runtime.GC()
	spilledC, spilledHeap := build(false)
	defer spilledC.Truth.Close()
	if got := spilledC.Truth.Len(); got != fixes {
		t.Errorf("spilled campaign indexed %d fixes, resident %d", got, fixes)
	}
	for _, cr := range spilledC.Result.Countries {
		if len(cr.Dataset.GroundTruth) != 0 {
			t.Errorf("%s: spilled campaign retained %d raw fixes", cr.Spec.Code, len(cr.Dataset.GroundTruth))
		}
	}
	t.Logf("resident heap: truth-resident %.1f MB, truth-spilled %.1f MB (%d fixes on disk)",
		float64(residentHeap)/(1<<20), float64(spilledHeap)/(1<<20), fixes)
	runtime.KeepAlive(spilledC)
}

// liveServices builds fresh serving stores like cmd/tagserve does.
func liveServices(shards int) map[trace.Vendor]*cloud.Service {
	out := map[trace.Vendor]*cloud.Service{}
	for _, v := range []trace.Vendor{trace.VendorApple, trace.VendorSamsung} {
		out[v] = cloud.NewServiceSharded(v, shards)
	}
	return out
}

// TestStreamingStoreAndDumpEquivalence runs the same campaign twice —
// once streaming into serving stores and a columnar sink at workers=4,
// once at workers=1 with a collector standing in for the batch path —
// and requires byte-identical store snapshots and dump files, plus
// equality with cmd/tagserve's batch restore from the country clouds.
func TestStreamingStoreAndDumpEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign simulation is slow")
	}
	runStreamed := func(workers int) (map[trace.Vendor]*cloud.Service, []byte, *scenario.WildResult) {
		cfg := scenario.WildConfig{Seed: 61, Scale: 0.02, DevicesPerCity: 60, Workers: workers}
		services := liveServices(16)
		var dump bytes.Buffer
		jobs := scenario.PlanWild(cfg)
		pl := pipeline.New(len(jobs), pipeline.Config{},
			pipeline.NewStoreIngester(services), pipeline.NewReportSink(&dump, 256))
		cfg.Stream = pl
		res := scenario.RunWild(cfg)
		if err := pl.Wait(); err != nil {
			t.Fatal(err)
		}
		return services, dump.Bytes(), res
	}
	seq, dumpSeq, _ := runStreamed(1)
	par, dumpPar, res := runStreamed(4)

	if !bytes.Equal(dumpSeq, dumpPar) {
		t.Error("columnar dump bytes differ across worker counts")
	}
	for _, v := range []trace.Vendor{trace.VendorApple, trace.VendorSamsung} {
		if !reflect.DeepEqual(seq[v].Snapshot(), par[v].Snapshot()) {
			t.Errorf("%s: streamed store snapshot differs across worker counts", v)
		}
	}

	// The batch path: restore each country's accepted cloud state into
	// fresh stores after the fact, exactly like cmd/tagserve's
	// campaign mode. The live-streamed stores must match it.
	batch := liveServices(16)
	for _, cr := range res.Countries {
		for v, svc := range cr.Clouds {
			dst, ok := batch[v]
			if !ok {
				continue
			}
			for _, tagID := range svc.TagIDs() {
				dst.Register(tagID)
				dst.Restore(svc.History(tagID))
			}
		}
	}
	for _, v := range []trace.Vendor{trace.VendorApple, trace.VendorSamsung} {
		if !reflect.DeepEqual(par[v].Snapshot(), batch[v].Snapshot()) {
			t.Errorf("%s: live-streamed store differs from batch restore", v)
		}
	}

	// The dump decodes, is non-trivial, and holds exactly the reports
	// the clouds accepted.
	reports, err := pipeline.ReadReports(bytes.NewReader(dumpPar))
	if err != nil {
		t.Fatal(err)
	}
	var accepted uint64
	for _, cr := range res.Countries {
		for _, svc := range cr.Clouds {
			a, _ := svc.Stats()
			accepted += a
		}
	}
	if uint64(len(reports)) != accepted {
		t.Errorf("dump holds %d reports, clouds accepted %d", len(reports), accepted)
	}
	if len(reports) == 0 {
		t.Error("empty dump: the campaign accepted no reports?")
	}
}
