package experiments

import (
	"testing"
	"time"

	"tagsim/internal/analysis"
	"tagsim/internal/geo"
	"tagsim/internal/trace"
)

// TestDiagnostics prints a breakdown of the campaign for calibration work.
// Run with: go test ./internal/experiments/ -run TestDiagnostics -v
func TestDiagnostics(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic only")
	}
	c := getCampaign(t)
	t.Logf("countries: %d, homes: %d, removedFrac: %.2f\n", len(c.Result.Countries), len(c.Homes), c.RemovedFrac)
	t.Logf("truth fixes (filtered): %d\n", c.Truth.Len())
	for _, v := range Vendors {
		t.Logf("crawls[%v]: %d records\n", v, len(c.Crawls(v)))
	}
	// Per-country cloud acceptance from raw (unfiltered) crawls.
	for _, cr := range c.Result.Countries {
		a := cr.Dataset.CrawlsFor(trace.VendorApple)
		s := cr.Dataset.CrawlsFor(trace.VendorSamsung)
		t.Logf("%s: days=%d apple crawls=%d (now %d) samsung crawls=%d (now %d) homes=%d\n",
			cr.Spec.Code, cr.Days, len(a), cr.AppleNow, len(s), cr.SamsungNow, len(cr.Homes))
	}
	// Accuracy by speed class at 100 m / 120 min and 10 min.
	for _, bucket := range []time.Duration{10 * time.Minute, 120 * time.Minute} {
		byClass := analysis.AccuracyByClass(c.Truth, c.Crawls(trace.VendorCombined), bucket, 100, c.From, c.To, analysis.SpeedClassifier(c.Truth))
		t.Logf("bucket %v @100m:\n", bucket)
		for cls, res := range byClass {
			t.Logf("  %-12s buckets=%4d hits=%4d acc=%.1f%%\n", cls, res.Buckets, res.Hits, res.Pct())
		}
	}
	// How close do reports get to the truth? Distance distribution of
	// distinct reports vs truth-at-report-time.
	reports := c.Crawls(trace.VendorCombined)
	var within10, within25, within100, within500, total, noTruth int
	seen := map[string]time.Time{}
	for _, r := range reports {
		if prev, ok := seen[r.TagID]; ok && absd(prev.Sub(r.ReportedAt)) <= 90*time.Second {
			continue
		}
		seen[r.TagID] = r.ReportedAt
		pos, ok := c.Truth.At(r.ReportedAt)
		if !ok {
			noTruth++
			continue
		}
		total++
		d := geo.Distance(pos, r.Pos)
		switch {
		case d <= 10:
			within10++
		case d <= 25:
			within25++
		case d <= 100:
			within100++
		case d <= 500:
			within500++
		}
	}
	t.Logf("distinct reports: %d with truth, %d without (home-filtered truth)\n", total, noTruth)
	t.Logf("  <=10m %d, 10-25m %d, 25-100m %d, 100-500m %d, >500m %d\n",
		within10, within25, within100, within500, total-within10-within25-within100-within500)
}

func absd(d time.Duration) time.Duration {
	if d < 0 {
		return -d
	}
	return d
}
