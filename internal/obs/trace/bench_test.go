package trace

import (
	"testing"
	"time"
)

// BenchmarkRequestPathOps times exactly what an always-on traced
// cached read adds over an untraced one: Root (reset + root span
// write), one cache-hit Event, and FinishRoot's threshold check. The
// serving-path macro gate (BenchmarkTraceOverhead at the repo root)
// rides a fixture whose run-to-run noise on a shared box exceeds the
// tracer's cost; this microbenchmark is the stable bound —
// ~19 ns against the ~650 ns cached read it piggybacks on.
func BenchmarkRequestPathOps(b *testing.B) {
	was := SetTracing(true)
	defer SetTracing(was)
	th := NewThreshold(PlaneServe, nil, -1)
	tr := Get()
	defer Put(tr)
	t0 := time.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Root(PlaneServe, "lastknown", t0)
		tr.Event(PlaneCache, "cache.hit", int64(i&1023), 0)
		tr.FinishRoot(700, th)
	}
}

// BenchmarkGetPut times the per-worker pool round-trip — paid once per
// load-harness worker or pooled recorder, not per request.
func BenchmarkGetPut(b *testing.B) {
	was := SetTracing(true)
	defer SetTracing(was)
	for i := 0; i < b.N; i++ {
		Put(Get())
	}
}
