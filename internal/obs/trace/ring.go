package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// Captured is an immutable copy of a trace that cleared its capture
// threshold. Pointers to it are published once into ring slots and
// never mutated, so readers can hold one across any number of
// subsequent captures.
type Captured struct {
	ID      uint64
	Wall    time.Time // root start (wall clock)
	Dropped int       // spans lost to MaxSpans
	Spans   []Span    // Spans[0] is the root
}

// Root returns the root span, nil for an empty capture.
func (c *Captured) Root() *Span {
	if len(c.Spans) == 0 {
		return nil
	}
	return &c.Spans[0]
}

// Duration returns the root span's duration.
func (c *Captured) Duration() time.Duration { return time.Duration(c.Spans[0].End) }

// Ring is the lock-free slow-op capture ring: a power-of-two array of
// atomically published pointers to immutable Captured traces, in the
// single-writer-per-slot style of cloud.HotCache. A writer reserves a
// slot with one cursor fetch-add and publishes with one pointer store;
// readers load slots without coordination. Memory is bounded at the
// slot count — a new capture simply unlinks the trace it laps.
type Ring struct {
	mask   uint64
	cursor atomic.Uint64
	slots  []atomic.Pointer[Captured]
}

// DefaultRingSize is DefaultRing's capacity.
const DefaultRingSize = 256

// DefaultRing receives every capture; /debug/traces and tagsim's
// -trace-every logger read it.
var DefaultRing = NewRing(DefaultRingSize)

// NewRing builds a ring holding the next power of two >= size traces.
func NewRing(size int) *Ring {
	n := 1
	for n < size {
		n <<= 1
	}
	return &Ring{mask: uint64(n - 1), slots: make([]atomic.Pointer[Captured], n)}
}

// Captures returns the number of traces captured over the ring's
// lifetime (not the number currently held).
func (r *Ring) Captures() uint64 { return r.cursor.Load() }

// Cap returns the ring's slot count.
func (r *Ring) Cap() int { return len(r.slots) }

func (r *Ring) put(c *Captured) {
	i := r.cursor.Add(1) - 1
	r.slots[i&r.mask].Store(c)
}

// Snapshot returns up to limit captured traces, newest first (by
// capture ID — slot order alone could be momentarily inverted by two
// in-flight writers). limit <= 0 means the whole ring.
func (r *Ring) Snapshot(limit int) []*Captured {
	n := len(r.slots)
	if limit <= 0 || limit > n {
		limit = n
	}
	cur := r.cursor.Load()
	out := make([]*Captured, 0, limit)
	for k := 0; k < n && len(out) < limit; k++ {
		if c := r.slots[(cur-1-uint64(k))&r.mask].Load(); c != nil {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID > out[j].ID })
	return out
}

// CapturedJSON is the /debug/traces wire shape of one captured trace.
type CapturedJSON struct {
	ID         string     `json:"id"`
	Start      time.Time  `json:"start"`
	Plane      string     `json:"plane"`
	Op         string     `json:"op"`
	DurationNs int64      `json:"duration_ns"`
	Dropped    int        `json:"dropped_spans,omitempty"`
	Spans      []SpanJSON `json:"spans"`
}

// SpanJSON is one span on the wire. Offsets are nanoseconds from the
// trace start; -1 marks an untimed event span.
type SpanJSON struct {
	Op      string `json:"op"`
	Plane   string `json:"plane"`
	Parent  int    `json:"parent"`
	StartNs int64  `json:"start_ns"`
	EndNs   int64  `json:"end_ns"`
	A1      int64  `json:"a1,omitempty"`
	A2      int64  `json:"a2,omitempty"`
}

// JSON converts a captured trace to its wire shape.
func (c *Captured) JSON() CapturedJSON {
	root := c.Root()
	out := CapturedJSON{
		ID:         FormatID(c.ID),
		Start:      c.Wall,
		Plane:      root.Plane.String(),
		Op:         root.Op,
		DurationNs: root.End,
		Dropped:    c.Dropped,
		Spans:      make([]SpanJSON, len(c.Spans)),
	}
	for i := range c.Spans {
		s := &c.Spans[i]
		out.Spans[i] = SpanJSON{
			Op: s.Op, Plane: s.Plane.String(), Parent: int(s.Parent),
			StartNs: s.Start, EndNs: s.End, A1: s.A1, A2: s.A2,
		}
	}
	return out
}

// Flame renders a captured trace as compact flame-line text — one line
// per span, indented by nesting depth, with the span's offset into the
// trace, its duration (· for untimed events), and any attributes:
//
//	trace 000000000000002a 1.82ms serve.history
//	  +8µs     ·       cache.miss [a1=2887864]
//	  +11µs    1.79ms  cache.fill.history [a1=2887864 a2=192]
//	    +14µs    41µs    store.memtable [a1=64 a2=128]
//	    +60µs    1.71ms  store.pread [a1=1 a2=128]
func (c *Captured) Flame() string {
	var b strings.Builder
	root := c.Root()
	fmt.Fprintf(&b, "trace %s %s %s", FormatID(c.ID), fmtNs(root.End), flameName(root))
	if root.A1 != 0 || root.A2 != 0 {
		fmt.Fprintf(&b, " [a1=%d a2=%d]", root.A1, root.A2)
	}
	for i := 1; i < len(c.Spans); i++ {
		s := &c.Spans[i]
		b.WriteByte('\n')
		for d := c.depth(i); d > 0; d-- {
			b.WriteString("  ")
		}
		if s.Start >= 0 {
			dur := "…"
			if s.End >= 0 {
				dur = fmtNs(s.End - s.Start)
			}
			fmt.Fprintf(&b, "+%-8s %-7s %s", fmtNs(s.Start), dur, flameName(s))
		} else {
			fmt.Fprintf(&b, "+?        ·       %s", flameName(s))
		}
		if s.A1 != 0 || s.A2 != 0 {
			fmt.Fprintf(&b, " [a1=%d a2=%d]", s.A1, s.A2)
		}
	}
	if c.Dropped > 0 {
		fmt.Fprintf(&b, "\n  (%d spans dropped)", c.Dropped)
	}
	return b.String()
}

// flameName qualifies an op with its plane, except where the op's own
// prefix already names it (store.pread stays store.pread, not
// store.store.pread).
func flameName(s *Span) string {
	plane := s.Plane.String()
	if strings.HasPrefix(s.Op, plane+".") {
		return s.Op
	}
	return plane + "." + s.Op
}

// depth counts parent hops from span i to the root.
func (c *Captured) depth(i int) int {
	d := 0
	for p := c.Spans[i].Parent; p > 0 && d < len(c.Spans); p = c.Spans[p].Parent {
		d++
	}
	return d + 1 // children of the root render at depth 1
}

// fmtNs renders a nanosecond quantity at µs-and-up granularity — flame
// lines compare layers, they don't time instructions.
func fmtNs(ns int64) string {
	d := time.Duration(ns)
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	case d >= time.Microsecond:
		return fmt.Sprintf("%dµs", d/time.Microsecond)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}
