package trace

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tagsim/internal/obs"
)

// TestSpanNesting pins the span-tree contract: Start pushes the open
// cursor, Finish pops it, Events hang off the innermost open span, and
// offsets are measured from the root's base instant.
func TestSpanNesting(t *testing.T) {
	tr := Get()
	defer Put(tr)
	t0 := time.Now()
	tr.Root(PlaneServe, "history", t0)

	tr.Event(PlaneCache, "cache.miss", 7, 1)
	fill := tr.Start(PlaneCache, "cache.fill.history", 25, 0)
	mem := tr.Start(PlaneStore, "store.memtable", 3, 9)
	tr.Finish(mem)
	pread := tr.Start(PlaneStore, "store.pread", 0, 0)
	tr.SetAttrs(pread, 4096, 2)
	tr.Finish(pread)
	tr.Finish(fill)
	tr.Event(PlaneCache, "cache.hit", 7, 0)

	want := []struct {
		op     string
		parent int16
		timed  bool
	}{
		{"history", -1, true},
		{"cache.miss", 0, false},
		{"cache.fill.history", 0, true},
		{"store.memtable", 2, true},
		{"store.pread", 2, true},
		{"cache.hit", 0, false},
	}
	if int(tr.n) != len(want) {
		t.Fatalf("got %d spans, want %d", tr.n, len(want))
	}
	for i, w := range want {
		s := tr.spans[i]
		if s.Op != w.op || s.Parent != w.parent {
			t.Errorf("span %d = %q parent %d, want %q parent %d", i, s.Op, s.Parent, w.op, w.parent)
		}
		if w.timed != (s.Start >= 0) && i > 0 {
			t.Errorf("span %d (%s): timed=%v, want %v", i, s.Op, s.Start >= 0, w.timed)
		}
	}
	if tr.spans[4].A1 != 4096 || tr.spans[4].A2 != 2 {
		t.Errorf("SetAttrs: got a1=%d a2=%d, want 4096, 2", tr.spans[4].A1, tr.spans[4].A2)
	}
	if s := tr.spans[3]; s.End < s.Start {
		t.Errorf("store.memtable finished before it started: [%d, %d]", s.Start, s.End)
	}
	// After the fill finished, the cursor must be back at the root —
	// that's what parents the trailing cache.hit event at 0.
	if tr.cur != 0 {
		t.Errorf("open-span cursor = %d after all children finished, want 0 (root)", tr.cur)
	}
}

// TestDisabledZeroAlloc mirrors obs's TestSetEnabledGatesUpdates for
// the tracer: with tracing off, the full instrumentation pattern —
// Begin, events, timed spans, FinishRoot, End — must not allocate.
func TestDisabledZeroAlloc(t *testing.T) {
	was := SetTracing(false)
	defer SetTracing(was)
	th := NewThreshold(PlaneServe, nil, 0)
	allocs := testing.AllocsPerRun(1000, func() {
		tr := Begin(PlaneTier, "tier.flush")
		tr.Event(PlaneCache, "cache.hit", 1, 0)
		sp := tr.Start(PlaneStore, "store.pread", 0, 0)
		tr.SetAttrs(sp, 2, 3)
		tr.Finish(sp)
		tr.FinishRoot(time.Millisecond, th)
		tr.End(th)
	})
	if allocs != 0 {
		t.Fatalf("disabled tracing allocated %.1f times per op, want 0", allocs)
	}
}

// TestCaptureThreshold exercises the three-layer capture decision:
// plane override, floor, then the bound histogram's live p99.
func TestCaptureThreshold(t *testing.T) {
	hist := &obs.Histogram{}
	th := NewThreshold(PlanePipeline, hist, -1)

	// Dynamic mode with a cold histogram: the floor is the bar.
	if th.Exceeded(DefaultCaptureFloor - 1) {
		t.Error("sub-floor duration captured with a cold histogram")
	}
	if !th.Exceeded(DefaultCaptureFloor) {
		t.Error("at-floor duration not captured with a cold histogram")
	}

	// Feed the histogram a slow population: the p99 takes over.
	for i := 0; i < 1000; i++ {
		hist.Observe(10 * time.Millisecond)
	}
	th2 := NewThreshold(PlanePipeline, hist, -1)
	if th2.Exceeded(time.Millisecond) {
		t.Error("1ms captured against a 10ms p99")
	}
	if !th2.Exceeded(50 * time.Millisecond) {
		t.Error("50ms not captured against a 10ms p99")
	}

	// A plane override beats everything, including the floor.
	prev := SetPlaneOverride(PlanePipeline, 0)
	defer SetPlaneOverride(PlanePipeline, prev)
	if !th2.Exceeded(0) {
		t.Error("override 0 did not capture everything")
	}
}

// TestCaptureToRing drives the full capture path: a root finished over
// an override-zero threshold lands on DefaultRing with its spans
// copied, its ID assigned, and an exemplar linked from the histogram
// bucket its duration landed in.
func TestCaptureToRing(t *testing.T) {
	prev := SetPlaneOverride(PlaneServe, 0)
	defer SetPlaneOverride(PlaneServe, prev)
	hist := &obs.Histogram{}
	th := NewThreshold(PlaneServe, hist, -1)

	tr := Get()
	defer Put(tr)
	tr.Root(PlaneServe, "lastknown", time.Now())
	tr.Event(PlaneCache, "cache.miss", 42, 0)
	id, captured := tr.FinishRoot(3*time.Millisecond, th)
	if !captured || id == 0 {
		t.Fatalf("FinishRoot = (%d, %v), want captured with nonzero ID", id, captured)
	}
	var got *Captured
	for _, c := range DefaultRing.Snapshot(0) {
		if c.ID == id {
			got = c
			break
		}
	}
	if got == nil {
		t.Fatalf("capture %d not found on DefaultRing", id)
	}
	if len(got.Spans) != 2 || got.Spans[1].Op != "cache.miss" || got.Spans[1].A1 != 42 {
		t.Fatalf("captured spans = %+v, want root + cache.miss[a1=42]", got.Spans)
	}
	if got.Duration() != 3*time.Millisecond {
		t.Errorf("captured duration = %v, want 3ms", got.Duration())
	}
	snap := hist.Snapshot()
	if snap.Exemplars == nil {
		t.Fatal("no exemplars recorded on the threshold histogram")
	}
	found := false
	for _, ex := range snap.Exemplars {
		if ex.ID == id {
			found = true
		}
	}
	if !found {
		t.Errorf("exemplar for capture %d not present in histogram snapshot", id)
	}
}

// TestRingConcurrent hammers a private ring from concurrent writers
// while readers snapshot it, under -race: no torn captures (every
// entry's attribute is a pure function of its ID), snapshots ordered
// newest-first, and memory bounded at the ring's capacity.
func TestRingConcurrent(t *testing.T) {
	r := NewRing(64)
	const writers, perWriter = 8, 500
	var next atomic.Uint64
	var wg sync.WaitGroup
	stop := make(chan struct{})

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				id := next.Add(1)
				r.put(&Captured{
					ID:    id,
					Spans: []Span{{Op: "w", Plane: PlaneServe, Start: 0, End: int64(id), A1: int64(3 * id)}},
				})
			}
		}()
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := r.Snapshot(0)
				if len(snap) > r.Cap() {
					t.Errorf("snapshot holds %d traces, ring capacity %d", len(snap), r.Cap())
					return
				}
				for i, c := range snap {
					if c.Spans[0].A1 != int64(3*c.ID) || c.Spans[0].End != int64(c.ID) {
						t.Errorf("torn capture: ID %d carries A1=%d End=%d", c.ID, c.Spans[0].A1, c.Spans[0].End)
						return
					}
					if i > 0 && snap[i-1].ID <= c.ID {
						t.Errorf("snapshot not newest-first: %d then %d", snap[i-1].ID, c.ID)
						return
					}
				}
			}
		}()
	}
	// Writers finish, then readers are released; one final snapshot
	// must hold exactly the newest Cap captures.
	done := make(chan struct{})
	go func() { defer close(done); wg.Wait() }()
	time.Sleep(10 * time.Millisecond)
	close(stop)
	<-done

	snap := r.Snapshot(0)
	if len(snap) != r.Cap() {
		t.Fatalf("final snapshot holds %d traces, want full ring of %d", len(snap), r.Cap())
	}
	total := uint64(writers * perWriter)
	for _, c := range snap {
		if c.ID <= total-uint64(r.Cap()) {
			t.Errorf("final ring retains stale capture %d (total %d, cap %d)", c.ID, total, r.Cap())
		}
	}
	if r.Captures() != total {
		t.Errorf("Captures() = %d, want %d", r.Captures(), total)
	}
}

// TestOverflowDrops pins the bounded-memory contract: spans past
// MaxSpans are counted, not recorded, and the capture reports them.
func TestOverflowDrops(t *testing.T) {
	prev := SetPlaneOverride(PlaneStore, 0)
	defer SetPlaneOverride(PlaneStore, prev)
	tr := Get()
	defer Put(tr)
	tr.Root(PlaneStore, "store.memtable", time.Now())
	for i := 0; i < MaxSpans+10; i++ {
		tr.Event(PlaneStore, "store.decode", int64(i), 0)
	}
	if sp := tr.Start(PlaneStore, "store.pread", 0, 0); sp != -1 {
		t.Errorf("Start on a full trace returned %d, want -1", sp)
	}
	id, captured := tr.FinishRoot(time.Second, NewThreshold(PlaneStore, nil, 0))
	if !captured {
		t.Fatal("overflowed trace not captured")
	}
	var got *Captured
	for _, c := range DefaultRing.Snapshot(0) {
		if c.ID == id {
			got = c
		}
	}
	if got == nil {
		t.Fatal("capture not found on ring")
	}
	if len(got.Spans) != MaxSpans {
		t.Errorf("captured %d spans, want the MaxSpans=%d cap", len(got.Spans), MaxSpans)
	}
	// 10 events past capacity plus the rejected Start.
	if got.Dropped != 12 {
		t.Errorf("Dropped = %d, want 12", got.Dropped)
	}
	if !strings.Contains(got.Flame(), "spans dropped") {
		t.Error("flame rendering does not report dropped spans")
	}
}

// TestRenderings sanity-checks the two presentation formats against
// one hand-built capture.
func TestRenderings(t *testing.T) {
	c := &Captured{
		ID:   0x2a,
		Wall: time.Now(),
		Spans: []Span{
			{Op: "history", Plane: PlaneServe, Start: 0, End: int64(2 * time.Millisecond), Parent: -1},
			{Op: "cache.miss", Plane: PlaneCache, Start: -1, End: -1, Parent: 0, A1: 9},
			{Op: "cache.fill.history", Plane: PlaneCache, Start: 1000, End: int64(time.Millisecond), Parent: 0},
			{Op: "store.pread", Plane: PlaneStore, Start: 2000, End: 500000, Parent: 2, A1: 4096},
		},
	}
	j := c.JSON()
	if j.ID != "000000000000002a" || j.Plane != "serve" || j.Op != "history" {
		t.Errorf("JSON header = %q %s.%s", j.ID, j.Plane, j.Op)
	}
	if j.DurationNs != int64(2*time.Millisecond) || len(j.Spans) != 4 {
		t.Errorf("JSON duration=%d spans=%d", j.DurationNs, len(j.Spans))
	}
	if j.Spans[3].Parent != 2 || j.Spans[1].StartNs != -1 {
		t.Errorf("JSON span shape wrong: %+v", j.Spans)
	}
	f := c.Flame()
	for _, want := range []string{
		"trace 000000000000002a 2.00ms serve.history",
		"cache.miss",
		"store.pread",
		"[a1=4096 a2=0]",
	} {
		if !strings.Contains(f, want) {
			t.Errorf("flame rendering missing %q:\n%s", want, f)
		}
	}
	// store.pread (child of the fill) renders one level deeper than
	// its parent.
	lines := strings.Split(f, "\n")
	fillIndent := len(lines[2]) - len(strings.TrimLeft(lines[2], " "))
	preadIndent := len(lines[3]) - len(strings.TrimLeft(lines[3], " "))
	if preadIndent <= fillIndent {
		t.Errorf("store.pread not nested under cache.fill.history:\n%s", f)
	}
}

// TestContext pins the context plumbing the serve handlers rely on.
func TestContext(t *testing.T) {
	tr := Get()
	defer Put(tr)
	ctx := NewContext(t.Context(), tr)
	if got := FromContext(ctx); got != tr {
		t.Errorf("FromContext = %p, want %p", got, tr)
	}
	if got := FromContext(t.Context()); got != nil {
		t.Errorf("FromContext on a bare context = %p, want nil", got)
	}
}
