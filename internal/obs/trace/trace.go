// Package trace is the request-scoped tracing layer of the
// observability plane: spans across serve → cache → store → tier with
// a slow-op capture ring, answering the question /metrics cannot —
// *which* request stalled, and in which layer.
//
// Design constraints, in the house style of internal/obs:
//
//   - Always-on-capable. Disabled (SetTracing(false)), every call site
//     compiles down to one atomic flag load and a branch: Begin returns
//     nil and every Trace method is nil-receiver safe, so the
//     instrumented planes never re-check the flag.
//   - Allocation-disciplined. A Trace is a fixed-capacity span array
//     drawn from a sync.Pool (the serve wrapper) or held per worker
//     (the load harness); recording a span is a handful of stores into
//     that array, and nothing escapes to the heap until a trace is
//     actually captured.
//   - Clock-frugal. time.Now costs ~80 ns on the CI runner against a
//     ~30 ns budget on the ~600 ns cached read, so the root span reuses
//     the timestamps the request path already pays for its latency
//     histogram (Root takes t0; FinishRoot takes the measured elapsed),
//     and fast operations record untimed Events (Start/End = -1).
//     Only intrinsically slow work — cache fills, disk merges, segment
//     preads, fsync batches, flushes, compactions — opens timed spans,
//     each costing one monotonic time.Since per edge.
//
// Completed traces whose root duration exceeds a per-plane threshold
// (by default the live p99 of the histogram the threshold is bound to,
// floored so a cold histogram doesn't capture everything) are copied
// into the lock-free power-of-two DefaultRing and, when the threshold
// carries a histogram, linked from that histogram's bucket as an
// exemplar — so a /metrics tail bucket points at a concrete captured
// trace on /debug/traces.
package trace

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"tagsim/internal/obs"
)

// disabled gates every tracing call. Default off: tracing is always
// on, and SetTracing(false) is the escape hatch mirroring
// obs.SetEnabled and cloud.SetHotCache (BENCH_trace.json records both
// sides on the cached read path).
var disabled atomic.Bool

// SetTracing toggles span collection (default on). Disabled, Begin
// returns nil and every span call is one atomic load and a branch;
// already-captured traces stay readable on the ring. It returns the
// previous setting.
func SetTracing(on bool) (was bool) { return !disabled.Swap(!on) }

// Enabled reports whether tracing is active.
func Enabled() bool { return !disabled.Load() }

// Plane tags a span with the layer that recorded it.
type Plane uint8

const (
	PlaneServe Plane = iota
	PlaneCache
	PlaneStore
	PlaneTier
	PlanePipeline
	numPlanes
)

var planeNames = [numPlanes]string{"serve", "cache", "store", "tier", "pipeline"}

func (p Plane) String() string {
	if int(p) < len(planeNames) {
		return planeNames[p]
	}
	return "unknown"
}

// MaxSpans is a Trace's fixed span capacity. Spans past it are counted
// (Captured.Dropped) rather than recorded, so a pathological request —
// a history read decoding dozens of frames — truncates instead of
// allocating.
const MaxSpans = 48

// Span is one operation within a trace: a plane tag, an op name, two
// int64 attributes (tag hash, rows decoded, queue lag — whatever the
// recording plane finds useful), and start/end offsets in nanoseconds
// from the trace's base instant. Untimed event spans — operations too
// cheap to bill two clock reads to — carry -1 for both offsets.
type Span struct {
	Op     string
	Start  int64 // ns since the trace base; -1 for untimed events
	End    int64 // ns since the trace base; -1 until finished / untimed
	A1, A2 int64
	Parent int16 // index of the enclosing span; -1 at the root
	Plane  Plane
}

// Trace is a reusable fixed-capacity span buffer for one request (or
// one self-rooted background operation). It is single-goroutine: the
// request path threads it by pointer, and only a capture copies it
// out. The zero value is ready for Root.
type Trace struct {
	base    time.Time // root start; carries the wall clock for display
	id      uint64    // assigned lazily (EnsureID); 0 = unassigned
	n       int16
	cur     int16 // innermost open span, parent of the next one
	dropped int32
	spans   [MaxSpans]Span
}

var pool = sync.Pool{New: func() any { return new(Trace) }}

// Get draws a Trace from the pool. Callers pair it with Put; Root
// resets all state, so a pooled trace needs no clearing in between.
func Get() *Trace { return pool.Get().(*Trace) }

// Put returns a trace to the pool. Nil-safe.
func Put(t *Trace) {
	if t != nil {
		pool.Put(t)
	}
}

// Begin opens a self-rooted trace (pool draw + one time.Now), or nil
// when tracing is disabled. The background tier ops — flushes,
// compactions, fsync batches — use it; request planes that already
// hold a timestamp use Get + Root instead.
func Begin(p Plane, op string) *Trace {
	if disabled.Load() {
		return nil
	}
	t := Get()
	t.Root(p, op, time.Now())
	return t
}

// Root resets the trace and opens its root span. t0 is the root's
// start instant — the timestamp the caller already read for its
// latency histogram — so opening a root costs no clock access here.
func (t *Trace) Root(p Plane, op string, t0 time.Time) {
	if t == nil {
		return
	}
	t.base = t0
	t.id = 0
	t.n = 1
	t.cur = 0
	t.dropped = 0
	s := &t.spans[0]
	if s.Op != op { // skip the write barrier when the slot already names it
		s.Op = op
	}
	s.Plane = p
	s.Start, s.End = 0, -1
	s.A1, s.A2 = 0, 0
	s.Parent = -1
}

// Event records an untimed span under the currently open span: a
// handful of stores, no clock access. Nil-safe.
func (t *Trace) Event(p Plane, op string, a1, a2 int64) {
	if t == nil {
		return
	}
	if t.n >= MaxSpans {
		t.dropped++
		return
	}
	s := &t.spans[t.n]
	if s.Op != op { // a slot usually replays the same op request after request
		s.Op = op
	}
	s.Plane = p
	s.Start, s.End = -1, -1
	s.Parent = t.cur
	s.A1, s.A2 = a1, a2
	t.n++
}

// Start opens a timed child span (one monotonic clock read) and makes
// it the parent of subsequent spans. It returns the span's index for
// Finish/SetAttrs; -1 when the trace is nil or full.
func (t *Trace) Start(p Plane, op string, a1, a2 int64) int16 {
	if t == nil {
		return -1
	}
	if t.n >= MaxSpans {
		t.dropped++
		return -1
	}
	i := t.n
	t.spans[i] = Span{Op: op, Plane: p, Start: int64(time.Since(t.base)), End: -1, Parent: t.cur, A1: a1, A2: a2}
	t.n++
	t.cur = i
	return i
}

// Finish closes the span Start returned (one clock read) and pops the
// open-span cursor back to its parent. Finish(-1) is a no-op, so the
// Start/Finish pair needs no full-trace check at the call site.
func (t *Trace) Finish(i int16) {
	if t == nil || i <= 0 || int(i) >= int(t.n) {
		return
	}
	t.spans[i].End = int64(time.Since(t.base))
	if p := t.spans[i].Parent; p >= 0 {
		t.cur = p
	}
}

// SetAttrs overwrites span i's attributes — for values only known at
// the end of the operation (rows decoded, frames read).
func (t *Trace) SetAttrs(i int16, a1, a2 int64) {
	if t == nil || i < 0 || int(i) >= int(t.n) {
		return
	}
	t.spans[i].A1, t.spans[i].A2 = a1, a2
}

// lastID hands out capture IDs; 0 stays "unassigned".
var lastID atomic.Uint64

// EnsureID assigns (once) and returns the trace's ID. The serve plane
// calls it at response-header time so X-Tag-Trace and the later ring
// capture agree; everyone else gets an ID implicitly at capture.
func (t *Trace) EnsureID() uint64 {
	if t == nil {
		return 0
	}
	if t.id == 0 {
		t.id = lastID.Add(1)
	}
	return t.id
}

// FormatID renders a trace ID the way every surface shows it — the
// X-Tag-Trace header, /debug/traces, flame lines, and histogram
// exemplars.
func FormatID(id uint64) string { return fmt.Sprintf("%016x", id) }

// FinishRoot closes the root span with the externally measured elapsed
// time (again: no clock read here — the caller's latency measurement
// is reused) and, when elapsed exceeds the threshold, copies the trace
// into DefaultRing and links it as an exemplar from the threshold's
// histogram. The trace itself stays owned by the caller for reuse.
func (t *Trace) FinishRoot(elapsed time.Duration, th *Threshold) (id uint64, captured bool) {
	if t == nil || t.n == 0 {
		return 0, false
	}
	ns := int64(elapsed)
	if ns < 0 {
		ns = 0
	}
	t.spans[0].End = ns
	if th == nil || !th.exceeded(ns) {
		return t.id, false
	}
	id = t.EnsureID()
	DefaultRing.put(t.capture())
	if th.hist != nil {
		th.hist.SetExemplar(elapsed, id)
	}
	return id, true
}

// End closes a self-rooted trace (one clock read for the elapsed time)
// and returns it to the pool — the one-liner the background tier ops
// defer. Nil-safe.
func (t *Trace) End(th *Threshold) (id uint64, captured bool) {
	if t == nil {
		return 0, false
	}
	id, captured = t.FinishRoot(time.Since(t.base), th)
	Put(t)
	return id, captured
}

// capture copies the trace's current spans to an immutable Captured
// for the ring. This is the only tracer path that allocates.
func (t *Trace) capture() *Captured {
	return &Captured{
		ID:      t.id,
		Wall:    t.base,
		Dropped: int(t.dropped),
		Spans:   append([]Span(nil), t.spans[:t.n]...),
	}
}

// DefaultCaptureFloor is the minimum root duration a dynamic (p99)
// threshold will capture. Without it a cold histogram's p99 is ~0 and
// every sub-microsecond cached read would be copied to the ring; with
// it, steady-state capture is "slower than p99 AND slower than the
// floor" — tail anatomy, not bulk traffic.
const DefaultCaptureFloor = 100 * time.Microsecond

// planeOverride pins a plane's threshold to a fixed duration (>= 0),
// overriding the dynamic p99. -1 (default) means dynamic. Tests and
// the debug surfaces use it: SetPlaneOverride(PlaneServe, 0) captures
// every request deterministically.
var planeOverride [numPlanes]atomic.Int64

func init() {
	for i := range planeOverride {
		planeOverride[i].Store(-1)
	}
}

// SetPlaneOverride fixes plane p's capture threshold at d (d = 0
// captures everything); a negative d restores the dynamic p99
// behavior. It returns the previous override, -1 if none.
func SetPlaneOverride(p Plane, d time.Duration) (prev time.Duration) {
	if int(p) >= int(numPlanes) {
		return -1
	}
	v := int64(d)
	if v < 0 {
		v = -1
	}
	return time.Duration(planeOverride[p].Swap(v))
}

// Threshold decides which finished traces are worth capturing. Bound
// to a histogram, the bar is that histogram's live p99 (floored);
// unbound, it is just the floor. The p99 is cached in one atomic and
// only recomputed when a candidate actually clears the cache — so the
// fast path of a sub-threshold request is one load and a compare, and
// recomputation is self-throttling (at most once per capture-worthy
// request).
type Threshold struct {
	plane  Plane
	hist   *obs.Histogram
	floor  int64
	cached atomic.Int64
}

// NewThreshold builds a per-plane threshold. hist may be nil (fixed
// floor only). floor < 0 means DefaultCaptureFloor; the background
// tier ops pass 0 to capture against their own p99 from the start.
func NewThreshold(p Plane, hist *obs.Histogram, floor time.Duration) *Threshold {
	f := int64(floor)
	if floor < 0 {
		f = int64(DefaultCaptureFloor)
	}
	return &Threshold{plane: p, hist: hist, floor: f}
}

// Exceeded reports whether a root of duration d would be captured —
// the serve plane's header-time check: X-Tag-Trace is decided when the
// response headers flush, with the elapsed time measured so far.
func (th *Threshold) Exceeded(d time.Duration) bool {
	if th == nil {
		return false
	}
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	return th.exceeded(ns)
}

func (th *Threshold) exceeded(ns int64) bool {
	if o := planeOverride[th.plane].Load(); o >= 0 {
		return ns >= o
	}
	if ns < th.floor {
		return false
	}
	if c := th.cached.Load(); ns < c {
		return false
	}
	bar := th.floor
	if th.hist != nil {
		if p99 := int64(th.hist.Quantile(99)); p99 > bar {
			bar = p99
		}
	}
	th.cached.Store(bar)
	return ns >= bar
}

// ctxKey carries the request's trace through handler contexts.
type ctxKey struct{}

// NewContext returns ctx with the trace attached.
func NewContext(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, ctxKey{}, t)
}

// FromContext returns the trace attached to ctx, or nil.
func FromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(ctxKey{}).(*Trace)
	return t
}
