package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Label is one name="value" dimension of a metric series.
type Label struct {
	Key, Value string
}

// L builds a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
	kindCounterFunc
	kindGaugeFunc
)

// series is one registered metric instance: a family name plus its
// label set, bound to the live metric (or a collect-on-scrape func).
type series struct {
	name   string
	labels string // pre-rendered `{k="v",...}` or ""
	kind   metricKind

	counter   *Counter
	gauge     *Gauge
	hist      *Histogram
	counterFn func() uint64
	gaugeFn   func() float64
}

// Registry holds named metrics and renders them. Registration takes a
// lock; the metrics themselves never touch the registry again, so the
// hot path is unaffected by how many series are registered. Rendering
// walks a sorted copy of the series list and loads every value
// atomically (func-backed series are collected at render time).
type Registry struct {
	mu     sync.Mutex
	series []*series
	index  map[string]*series
	help   map[string]string
	sorted bool
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: map[string]*series{}, help: map[string]string{}}
}

// Default is the process-wide registry: the planes' global counters
// (scan ticks, pipeline batches, store ingest totals) register here at
// package init, cmd/tagsim's -metrics-every logger snapshots it, and
// the query API appends it to every /metrics and /debug/vars response.
var Default = NewRegistry()

// renderLabels pre-formats a label set in sorted-key order.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(strconv.Quote(l.Value))
	}
	b.WriteByte('}')
	return b.String()
}

// register adds (or, for value-backed kinds, returns the existing)
// series under name+labels. Re-registering a name+labels pair as a
// different kind is a programming error.
func (r *Registry) register(name string, labels []Label, kind metricKind) *series {
	key := name + renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.index[key]; ok {
		if s.kind != kind {
			panic(fmt.Sprintf("obs: %s re-registered as a different metric kind", key))
		}
		return s
	}
	s := &series{name: name, labels: renderLabels(labels), kind: kind}
	switch kind {
	case kindCounter:
		s.counter = &Counter{}
	case kindGauge:
		s.gauge = &Gauge{}
	case kindHistogram:
		s.hist = &Histogram{}
	}
	r.index[key] = s
	r.series = append(r.series, s)
	r.sorted = false
	return s
}

// Counter returns the counter registered under name+labels, creating
// it on first use.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	return r.register(name, labels, kindCounter).counter
}

// Gauge returns the gauge registered under name+labels, creating it on
// first use.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	return r.register(name, labels, kindGauge).gauge
}

// Histogram returns the histogram registered under name+labels,
// creating it on first use.
func (r *Registry) Histogram(name string, labels ...Label) *Histogram {
	return r.register(name, labels, kindHistogram).hist
}

// CounterFunc registers a collect-on-scrape monotonic counter — the
// bridge for planes that already keep their own atomics (store
// accept/reject counters, cache hit counters, shard epochs).
func (r *Registry) CounterFunc(name string, fn func() uint64, labels ...Label) {
	r.register(name, labels, kindCounterFunc).counterFn = fn
}

// GaugeFunc registers a collect-on-scrape gauge (tag counts, queue
// depths — anything that can move both ways).
func (r *Registry) GaugeFunc(name string, fn func() float64, labels ...Label) {
	r.register(name, labels, kindGaugeFunc).gaugeFn = fn
}

// Help attaches a # HELP line to a metric family.
func (r *Registry) Help(name, help string) {
	r.mu.Lock()
	r.help[name] = help
	r.mu.Unlock()
}

// snapshot returns the series sorted by (name, labels) — the stable
// render order — plus the help map. Sorting is cached between
// registrations, so steady-state scrapes don't re-sort.
func (r *Registry) snapshot() ([]*series, map[string]string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.sorted {
		sort.SliceStable(r.series, func(i, j int) bool {
			if r.series[i].name != r.series[j].name {
				return r.series[i].name < r.series[j].name
			}
			return r.series[i].labels < r.series[j].labels
		})
		r.sorted = true
	}
	help := make(map[string]string, len(r.help))
	for k, v := range r.help {
		help[k] = v
	}
	return append([]*series(nil), r.series...), help
}

func promType(k metricKind) string {
	switch k {
	case kindCounter, kindCounterFunc:
		return "counter"
	case kindHistogram:
		return "histogram"
	default:
		return "gauge"
	}
}

// seconds formats a nanosecond quantity as seconds for the Prometheus
// text format.
func seconds(ns float64) string {
	return strconv.FormatFloat(ns/1e9, 'g', -1, 64)
}

// histLabels splices an le="..." pair into a rendered label set.
func histLabels(labels, le string) string {
	if labels == "" {
		return `{le="` + le + `"}`
	}
	return labels[:len(labels)-1] + `,le="` + le + `"}`
}

// WritePrometheus renders every registry, in order, in the Prometheus
// text exposition format. Histograms render as real cumulative
// histograms (_bucket le-series in seconds plus _sum and _count), so a
// scraper can aggregate and re-quantile them.
func WritePrometheus(w io.Writer, regs ...*Registry) {
	for _, r := range regs {
		series, help := r.snapshot()
		lastFamily := ""
		for _, s := range series {
			if s.name != lastFamily {
				lastFamily = s.name
				if h, ok := help[s.name]; ok {
					fmt.Fprintf(w, "# HELP %s %s\n", s.name, h)
				}
				fmt.Fprintf(w, "# TYPE %s %s\n", s.name, promType(s.kind))
			}
			switch s.kind {
			case kindCounter:
				fmt.Fprintf(w, "%s%s %d\n", s.name, s.labels, s.counter.Value())
			case kindGauge:
				fmt.Fprintf(w, "%s%s %d\n", s.name, s.labels, s.gauge.Value())
			case kindCounterFunc:
				fmt.Fprintf(w, "%s%s %d\n", s.name, s.labels, s.counterFn())
			case kindGaugeFunc:
				fmt.Fprintf(w, "%s%s %s\n", s.name, s.labels,
					strconv.FormatFloat(s.gaugeFn(), 'g', -1, 64))
			case kindHistogram:
				snap := s.hist.Snapshot()
				// Emit every boundary up to the last non-empty bucket —
				// including interior empty ones, so the le-series set a
				// scraper stores is cumulative and stable across scrapes
				// (a bucket once emitted never disappears) — then elide
				// the all-empty tail down to +Inf.
				last := -1
				for i, c := range snap.Buckets {
					if c > 0 {
						last = i
					}
				}
				var cum uint64
				for i := 0; i <= last; i++ {
					cum += snap.Buckets[i]
					fmt.Fprintf(w, "%s_bucket%s %d", s.name, histLabels(s.labels, seconds(BucketUpper(i))), cum)
					// OpenMetrics-style exemplar: the last captured trace
					// that landed in this bucket, linking the tail bucket
					// to /debug/traces.
					if ex := snap.Exemplars; ex != nil && ex[i].ID != 0 {
						fmt.Fprintf(w, " # {trace_id=\"%016x\"} %s", ex[i].ID, seconds(float64(ex[i].Ns)))
					}
					io.WriteString(w, "\n")
				}
				fmt.Fprintf(w, "%s_bucket%s %d\n", s.name, histLabels(s.labels, "+Inf"), snap.Count)
				fmt.Fprintf(w, "%s_sum%s %s\n", s.name, s.labels, seconds(float64(snap.SumNs)))
				fmt.Fprintf(w, "%s_count%s %d\n", s.name, s.labels, snap.Count)
			}
		}
	}
}

// WriteJSON renders every registry as one flat JSON object — the
// /debug/vars-style snapshot. Keys are "name{labels}"; counters and
// gauges map to numbers, histograms to {count, sum_s, p50_ms, p95_ms,
// p99_ms}. Later registries win on (impossible within one process,
// but defined) key collisions by simply rendering after.
func WriteJSON(w io.Writer, regs ...*Registry) {
	io.WriteString(w, "{")
	first := true
	for _, r := range regs {
		series, _ := r.snapshot()
		for _, s := range series {
			if !first {
				io.WriteString(w, ",")
			}
			first = false
			fmt.Fprintf(w, "%s:", strconv.Quote(s.name+s.labels))
			switch s.kind {
			case kindCounter:
				fmt.Fprintf(w, "%d", s.counter.Value())
			case kindGauge:
				fmt.Fprintf(w, "%d", s.gauge.Value())
			case kindCounterFunc:
				fmt.Fprintf(w, "%d", s.counterFn())
			case kindGaugeFunc:
				fmt.Fprintf(w, "%s", strconv.FormatFloat(s.gaugeFn(), 'g', -1, 64))
			case kindHistogram:
				snap := s.hist.Snapshot()
				p50, p95, p99 := snap.QuantilesMs()
				fmt.Fprintf(w, `{"count":%d,"sum_s":%s,"p50_ms":%s,"p95_ms":%s,"p99_ms":%s}`,
					snap.Count, seconds(float64(snap.SumNs)),
					strconv.FormatFloat(p50, 'g', -1, 64),
					strconv.FormatFloat(p95, 'g', -1, 64),
					strconv.FormatFloat(p99, 'g', -1, 64))
			}
		}
	}
	io.WriteString(w, "}\n")
}

// Compact renders the registry as one space-separated line of
// name{labels}=value pairs (histograms as count/p50/p99 in ms) — the
// shape cmd/tagsim's -metrics-every stderr logger emits for headless
// campaigns.
func (r *Registry) Compact() string {
	series, _ := r.snapshot()
	var b strings.Builder
	for i, s := range series {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(s.name)
		b.WriteString(s.labels)
		b.WriteByte('=')
		switch s.kind {
		case kindCounter:
			fmt.Fprintf(&b, "%d", s.counter.Value())
		case kindGauge:
			fmt.Fprintf(&b, "%d", s.gauge.Value())
		case kindCounterFunc:
			fmt.Fprintf(&b, "%d", s.counterFn())
		case kindGaugeFunc:
			fmt.Fprintf(&b, "%s", strconv.FormatFloat(s.gaugeFn(), 'g', -1, 64))
		case kindHistogram:
			snap := s.hist.Snapshot()
			p50, _, p99 := snap.QuantilesMs()
			fmt.Fprintf(&b, "n%d/p50=%.3fms/p99=%.3fms", snap.Count, p50, p99)
		}
	}
	return b.String()
}

// GetCounter, GetGauge, GetHistogram and the Func variants address the
// Default registry — the one-line way a plane registers its global
// series at package init.
func GetCounter(name string, labels ...Label) *Counter { return Default.Counter(name, labels...) }

// GetGauge returns a gauge in the Default registry.
func GetGauge(name string, labels ...Label) *Gauge { return Default.Gauge(name, labels...) }

// GetHistogram returns a histogram in the Default registry.
func GetHistogram(name string, labels ...Label) *Histogram { return Default.Histogram(name, labels...) }

// Since is shorthand for observing an elapsed duration when metrics
// are enabled; callers guard the time.Now() itself behind Enabled so
// the disabled path never reads the clock:
//
//	var t0 time.Time
//	if obs.Enabled() { t0 = time.Now() }
//	...
//	obs.Since(h, t0)
//
// A zero t0 (metrics were disabled at entry) records nothing even if
// metrics were re-enabled mid-request.
func Since(h *Histogram, t0 time.Time) {
	if t0.IsZero() {
		return
	}
	h.Observe(time.Since(t0))
}
