package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"tagsim/internal/stats"
)

func TestCounterAndGauge(t *testing.T) {
	var c Counter
	var g Gauge
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	g.Set(7)
	g.Add(-3)
	if g.Value() != 4 {
		t.Fatalf("gauge = %d, want 4", g.Value())
	}
}

func TestSetEnabledGatesUpdates(t *testing.T) {
	defer SetEnabled(SetEnabled(false))
	if Enabled() {
		t.Fatal("Enabled() after SetEnabled(false)")
	}
	var c Counter
	var g Gauge
	var h Histogram
	c.Inc()
	g.Set(9)
	h.Observe(time.Second)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatalf("disabled metrics moved: counter=%d gauge=%d hist=%d",
			c.Value(), g.Value(), h.Count())
	}
	SetEnabled(true)
	c.Inc()
	if c.Value() != 1 {
		t.Fatal("re-enabled counter did not move")
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("zero histogram not empty")
	}
	for _, p := range []float64{0, 50, 95, 99, 100} {
		if q := h.Quantile(p); q != 0 {
			t.Fatalf("empty histogram Quantile(%v) = %v, want 0 (NaN-free like stats.Quantiles)", p, q)
		}
	}
}

func TestHistogramSingleSample(t *testing.T) {
	var h Histogram
	h.Observe(300 * time.Nanosecond) // bucket [256, 512)
	if h.Count() != 1 || h.Sum() != 300*time.Nanosecond {
		t.Fatalf("count=%d sum=%v", h.Count(), h.Sum())
	}
	for _, p := range []float64{0, 50, 99, 100} {
		q := h.Quantile(p)
		if q < 256 || q >= 512 {
			t.Fatalf("Quantile(%v) = %v, want within the sample's bucket [256, 512)", p, q)
		}
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	// Exact powers of two land in the bucket they open: bucket i covers
	// [2^(i-1), 2^i), so 2^k maps to bucket k+1 and 2^k - 1 to bucket k.
	cases := []struct {
		ns     uint64
		bucket int
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3},
		{255, 8}, {256, 9}, {257, 9},
		{1 << 20, 21}, {1<<20 - 1, 20},
		{math.MaxInt64, HistBuckets - 1},
	}
	var h Histogram
	for _, c := range cases {
		h.Observe(time.Duration(c.ns))
	}
	snap := h.Snapshot()
	for _, c := range cases {
		if got := bucketOf(c.ns); got != c.bucket {
			t.Errorf("bucketOf(%d) = %d, want %d", c.ns, got, c.bucket)
		}
	}
	if snap.Count != uint64(len(cases)) {
		t.Fatalf("count = %d, want %d", snap.Count, len(cases))
	}
	// Negative durations clamp into the zero bucket.
	h.Observe(-time.Second)
	if got := h.Snapshot().Buckets[0]; got != 2 {
		t.Fatalf("zero bucket = %d after negative observe, want 2", got)
	}
}

// TestHistogramQuantilesAgreeWithStats is the histogram-vs-
// stats.Quantiles equivalence property: for random samples, both the
// exact percentile and the histogram's estimate must lie between the
// power-of-two bucket bounds of the order statistics the percentile
// interpolates between — bucket-resolution agreement, the precision the
// log-bucketed design promises.
func TestHistogramQuantilesAgreeWithStats(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	shapes := []struct {
		name string
		gen  func(n int) []float64
	}{
		{"uniform", func(n int) []float64 {
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = float64(rng.Intn(1_000_000))
			}
			return xs
		}},
		{"lognormal", func(n int) []float64 {
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = math.Exp(rng.NormFloat64()*3 + 8)
			}
			return xs
		}},
		{"constant", func(n int) []float64 {
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = 12345
			}
			return xs
		}},
		{"bimodal", func(n int) []float64 {
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = 100
				if rng.Intn(10) == 0 {
					xs[i] = 5_000_000
				}
			}
			return xs
		}},
	}
	for _, shape := range shapes {
		for _, n := range []int{1, 2, 3, 10, 500} {
			xs := shape.gen(n)
			var h Histogram
			for _, x := range xs {
				h.Observe(time.Duration(x))
			}
			sorted := append([]float64(nil), xs...)
			stats.Quantiles(sorted) // exercises the same sorting path
			exact := func(p float64) float64 { return stats.Percentile(xs, p) }
			for _, p := range []float64{0, 10, 50, 90, 95, 99, 100} {
				rank := p / 100 * float64(n-1)
				lo := append([]float64(nil), xs...)
				sortFloats(lo)
				bLo := bucketOf(uint64(lo[int(math.Floor(rank))]))
				bHi := bucketOf(uint64(lo[int(math.Ceil(rank))]))
				lower, upper := bucketLower(bLo), BucketUpper(bHi)
				if e := exact(p); e < lower || e >= upper {
					t.Fatalf("%s n=%d p=%v: exact %v outside its own bucket span [%v, %v)",
						shape.name, n, p, e, lower, upper)
				}
				q := h.Quantile(p)
				if q < lower || q > upper {
					t.Errorf("%s n=%d p=%v: hist quantile %v outside bucket span [%v, %v] of exact %v",
						shape.name, n, p, q, lower, upper, exact(p))
				}
			}
		}
	}
}

func sortFloats(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// TestHistogramP99MatchesLoadQuantiles drives both quantile engines
// over the same latency-shaped sample and checks the millisecond
// summaries agree to within a factor of two (one bucket) on every
// reported quantile.
func TestHistogramP99MatchesLoadQuantiles(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var h Histogram
	var ms []float64
	for i := 0; i < 4000; i++ {
		d := time.Duration(50_000 + rng.Intn(500_000)) // 50-550 µs
		if rng.Intn(100) == 0 {
			d = time.Duration(5_000_000 + rng.Intn(20_000_000)) // tail
		}
		h.Observe(d)
		ms = append(ms, float64(d)/float64(time.Millisecond))
	}
	exact := stats.Quantiles(ms)
	snap := h.Snapshot()
	p50, p95, p99 := snap.QuantilesMs()
	for _, q := range []struct {
		name        string
		hist, exact float64
	}{{"p50", p50, exact.P50}, {"p95", p95, exact.P95}, {"p99", p99, exact.P99}} {
		if q.hist < q.exact/2 || q.hist > q.exact*2 {
			t.Errorf("%s: hist %.4f ms vs exact %.4f ms — outside one-bucket agreement", q.name, q.hist, q.exact)
		}
	}
}

func TestRegistryDedupeAndKindMismatch(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", L("k", "v"))
	b := r.Counter("x_total", L("k", "v"))
	if a != b {
		t.Fatal("same name+labels returned distinct counters")
	}
	if r.Counter("x_total", L("k", "w")) == a {
		t.Fatal("distinct labels shared a counter")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	r.Gauge("x_total", L("k", "v"))
}

func TestPrometheusRender(t *testing.T) {
	r := NewRegistry()
	r.Counter("requests_total", L("endpoint", "lastknown"), L("code", "2xx")).Add(7)
	r.Gauge("queue_depth").Set(3)
	r.GaugeFunc("tags", func() float64 { return 42 })
	r.CounterFunc("epoch_total", func() uint64 { return 9 })
	h := r.Histogram("latency_seconds", L("endpoint", "track"))
	h.Observe(300 * time.Nanosecond)
	h.Observe(100 * time.Microsecond)
	r.Help("requests_total", "requests by endpoint and status class")

	var buf bytes.Buffer
	WritePrometheus(&buf, r)
	out := buf.String()
	for _, want := range []string{
		"# HELP requests_total requests by endpoint and status class",
		"# TYPE requests_total counter",
		`requests_total{code="2xx",endpoint="lastknown"} 7`,
		"# TYPE queue_depth gauge",
		"queue_depth 3",
		"tags 42",
		"# TYPE epoch_total counter",
		"epoch_total 9",
		"# TYPE latency_seconds histogram",
		`latency_seconds_bucket{endpoint="track",le="5.12e-07"} 1`,
		// Interior empty buckets between the two samples must still be
		// emitted (cumulatively), so the le-series set a scraper stores
		// never loses a boundary once a later sample makes it interior.
		`latency_seconds_bucket{endpoint="track",le="1.024e-06"} 1`,
		`latency_seconds_bucket{endpoint="track",le="6.5536e-05"} 1`,
		`latency_seconds_bucket{endpoint="track",le="0.000131072"} 2`,
		`latency_seconds_bucket{endpoint="track",le="+Inf"} 2`,
		`latency_seconds_count{endpoint="track"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus render missing %q in:\n%s", want, out)
		}
	}
	// The all-empty tail past the last sample is still elided.
	if strings.Contains(out, `le="0.000262144"`) {
		t.Errorf("prometheus render emits empty tail buckets:\n%s", out)
	}
}

// TestPrometheusExemplars pins the OpenMetrics-style exemplar suffix:
// a histogram bucket that a captured trace landed in carries the trace
// ID, and buckets without exemplars stay plain.
func TestPrometheusExemplars(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency_seconds")
	h.Observe(300 * time.Nanosecond)
	h.Observe(100 * time.Microsecond)
	h.SetExemplar(100*time.Microsecond, 0xbeef)

	var buf bytes.Buffer
	WritePrometheus(&buf, r)
	out := buf.String()
	want := `latency_seconds_bucket{le="0.000131072"} 2 # {trace_id="000000000000beef"} 0.0001`
	if !strings.Contains(out, want) {
		t.Errorf("prometheus render missing exemplar line %q in:\n%s", want, out)
	}
	if strings.Contains(out, `le="5.12e-07"} 1 #`) {
		t.Errorf("exemplar leaked onto a bucket without one:\n%s", out)
	}
}

func TestJSONRenderParsesAndMerges(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Counter("alpha_total").Add(2)
	b.Gauge("beta").Set(-4)
	b.Histogram("lat_seconds").Observe(time.Millisecond)
	var buf bytes.Buffer
	WriteJSON(&buf, a, b)
	var m map[string]any
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatalf("JSON render does not parse: %v\n%s", err, buf.String())
	}
	if m["alpha_total"].(float64) != 2 {
		t.Errorf("alpha_total = %v", m["alpha_total"])
	}
	if m["beta"].(float64) != -4 {
		t.Errorf("beta = %v", m["beta"])
	}
	hist, ok := m["lat_seconds"].(map[string]any)
	if !ok || hist["count"].(float64) != 1 {
		t.Errorf("lat_seconds = %v", m["lat_seconds"])
	}
}

func TestCompactRender(t *testing.T) {
	r := NewRegistry()
	r.Counter("ticks_total").Add(11)
	r.Histogram("lat_seconds").Observe(2 * time.Millisecond)
	out := r.Compact()
	if !strings.Contains(out, "ticks_total=11") || !strings.Contains(out, "lat_seconds=n1/") {
		t.Fatalf("compact render = %q", out)
	}
	if strings.Contains(out, "\n") {
		t.Fatal("compact render spans lines")
	}
}

// TestConcurrentObserveAndRender is the package's race gate: every
// metric type updated from many goroutines while renders and quantile
// reads run concurrently. Run under -race in CI.
func TestConcurrentObserveAndRender(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total")
	g := r.Gauge("g")
	h := r.Histogram("h_seconds")
	r.GaugeFunc("f", func() float64 { return float64(c.Value()) })
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				c.Inc()
				g.Add(int64(w - 1))
				h.Observe(time.Duration(i%1000) * time.Microsecond)
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		var buf bytes.Buffer
		WritePrometheus(&buf, r)
		WriteJSON(&buf, r)
		_ = r.Compact()
		_ = h.Quantile(99)
		// Concurrent registration of new series must also be safe.
		r.Counter("late_total", L("i", string(rune('a'+i%26)))).Inc()
		runtime.Gosched()
	}
	wg.Wait()
	if c.Value() == 0 || h.Count() == 0 {
		t.Fatal("no updates landed")
	}
}
