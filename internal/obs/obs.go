// Package obs is the observability core every plane reports through:
// allocation-free, always-on counters, gauges, and lock-free
// log-bucketed latency histograms, plus a registry (registry.go) that
// renders one snapshot of everything as Prometheus text and JSON.
//
// Design constraints, in order:
//
//   - The instrumented hot path must stay within noise of the
//     uninstrumented one. Every metric is a plain struct of atomics —
//     no maps, no locks, no interface dispatch, no allocation on
//     update. A counter bump is one atomic add; a histogram
//     observation is three (count, sum, bucket).
//   - Reads never coordinate with writers. Quantiles derive from a
//     point-in-time copy of the bucket array — atomic loads only — so
//     a scrape can run while every core is observing.
//   - SetEnabled is the escape hatch the overhead benchmarks toggle:
//     disabled, every update compiles down to one atomic flag load and
//     a branch (BENCH_obs.json records both sides on the cached read
//     path).
//
// Histogram buckets are powers of two of nanoseconds (bucket i holds
// values in [2^(i-1), 2^i)), so the full range from 1 ns to ~146 years
// fits in 64 fixed buckets and bucketing is one bits.Len64 — no search,
// no configuration. Quantiles are exact to bucket resolution: the
// reported p99 lands in the same power-of-two bucket as the true p99
// (TestHistogramQuantilesAgreeWithStats pins this against
// stats.Quantiles).
package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// disabled gates every metric update. Default off: metrics are always
// on, and SetEnabled(false) is the benchmark escape hatch mirroring
// store.SetLockedReads and cloud.SetHotCache.
var disabled atomic.Bool

// SetEnabled toggles metric collection (default on). Disabled, every
// update is one atomic load and a branch; already-collected values stay
// readable. It returns the previous setting.
func SetEnabled(on bool) (was bool) { return !disabled.Swap(!on) }

// Enabled reports whether metric updates are being applied.
func Enabled() bool { return !disabled.Load() }

// Counter is a monotonically increasing atomic counter. The zero value
// is ready to use, so counters embed directly into hot-path structs.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if disabled.Load() {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an atomic instantaneous value. The zero value is ready to
// use.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) {
	if disabled.Load() {
		return
	}
	g.v.Store(v)
}

// Add adds n (which may be negative).
func (g *Gauge) Add(n int64) {
	if disabled.Load() {
		return
	}
	g.v.Add(n)
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// HistBuckets is the fixed bucket count of every Histogram: bucket 0
// holds zero-duration observations and bucket i (i >= 1) holds
// durations in [2^(i-1), 2^i) nanoseconds, the last bucket catching
// everything above 2^62 ns.
const HistBuckets = 64

// Histogram is a lock-free log-bucketed latency histogram: a fixed
// array of atomic bucket counters plus running count and sum. All
// methods are safe for unsynchronized concurrent use; an observation
// is three atomic adds and quantiles need no locks. The zero value is
// ready to use.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64 // nanoseconds
	buckets [HistBuckets]atomic.Uint64
	// exemplars, allocated on first SetExemplar, holds per bucket the
	// last captured trace that landed in it. Observe never touches it —
	// only the tracer's capture path (which already decided the request
	// was tail-worthy) pays the stores.
	exemplars atomic.Pointer[[HistBuckets]exemplar]
}

// exemplar is one bucket's last captured trace: the ID every trace
// surface formats, plus the observed duration the Prometheus exemplar
// syntax wants as its value. The two fields are independently atomic;
// a concurrent overwrite can pair an ID with the other capture's
// duration, but both are then valid exemplars of the same bucket.
type exemplar struct {
	id atomic.Uint64
	ns atomic.Int64
}

// bucketOf maps a nanosecond value onto its bucket index.
func bucketOf(ns uint64) int {
	b := bits.Len64(ns)
	if b >= HistBuckets {
		return HistBuckets - 1
	}
	return b
}

// BucketUpper returns bucket i's exclusive upper bound in nanoseconds
// (2^i; bucket 0, which holds only exact zeros, reports 1).
func BucketUpper(i int) float64 {
	if i <= 0 {
		return 1
	}
	return math.Ldexp(1, i)
}

// bucketLower returns bucket i's inclusive lower bound in nanoseconds.
func bucketLower(i int) float64 {
	if i <= 0 {
		return 0
	}
	return math.Ldexp(1, i-1)
}

// Observe records one duration (negative durations clamp to zero).
func (h *Histogram) Observe(d time.Duration) {
	if disabled.Load() {
		return
	}
	ns := uint64(0)
	if d > 0 {
		ns = uint64(d)
	}
	h.count.Add(1)
	h.sum.Add(ns)
	h.buckets[bucketOf(ns)].Add(1)
}

// SetExemplar links trace id as the exemplar of the bucket duration d
// lands in. The tracer calls it at capture time, so /metrics tail
// buckets point at concrete traces on /debug/traces.
func (h *Histogram) SetExemplar(d time.Duration, id uint64) {
	ex := h.exemplars.Load()
	if ex == nil {
		ex = new([HistBuckets]exemplar)
		if !h.exemplars.CompareAndSwap(nil, ex) {
			ex = h.exemplars.Load()
		}
	}
	ns := int64(0)
	if d > 0 {
		ns = int64(d)
	}
	e := &ex[bucketOf(uint64(ns))]
	e.id.Store(id)
	e.ns.Store(ns)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the total observed duration.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// HistogramSnapshot is a point-in-time copy of a histogram, the unit
// the renderers and quantile math work from. Counts across buckets are
// mutually consistent to within the observations that landed while the
// copy was taken (each bucket load is individually atomic).
type HistogramSnapshot struct {
	Count   uint64
	SumNs   uint64
	Buckets [HistBuckets]uint64
	// Exemplars is nil until the histogram's first SetExemplar; then
	// Exemplars[i] names the last captured trace in bucket i (ID 0 =
	// none yet).
	Exemplars *[HistBuckets]Exemplar
}

// Exemplar is a snapshot of one bucket's exemplar.
type Exemplar struct {
	ID uint64
	Ns int64
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	s.SumNs = h.sum.Load()
	for i := range h.buckets {
		c := h.buckets[i].Load()
		s.Buckets[i] = c
		s.Count += c
	}
	if ex := h.exemplars.Load(); ex != nil {
		out := new([HistBuckets]Exemplar)
		for i := range ex {
			out[i] = Exemplar{ID: ex[i].id.Load(), Ns: ex[i].ns.Load()}
		}
		s.Exemplars = out
	}
	return s
}

// Quantile returns the p-th percentile (0..100) of the observed
// durations in nanoseconds, to bucket resolution: the returned value
// lies in the same power-of-two bucket as the exact order statistic,
// linearly interpolated by rank within the bucket. An empty histogram
// returns 0, mirroring stats.Quantiles' NaN-free zero summary.
func (h *Histogram) Quantile(p float64) float64 {
	s := h.Snapshot()
	return s.Quantile(p)
}

// Quantile is Histogram.Quantile over a snapshot, using the same rank
// convention as stats.Percentile (rank = p/100 * (n-1), rounded up to
// the next whole sample).
func (s *HistogramSnapshot) Quantile(p float64) float64 {
	n := s.Count
	if n == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	k := uint64(math.Ceil(p / 100 * float64(n-1))) // 0-based sample index
	var cum uint64
	for i := range s.Buckets {
		c := s.Buckets[i]
		if c > 0 && cum+c > k {
			// Sample k is the (k-cum+1)-th of this bucket's c samples;
			// interpolate its position across the bucket's span.
			frac := (float64(k-cum) + 0.5) / float64(c)
			lo, hi := bucketLower(i), BucketUpper(i)
			if i == 0 {
				return 0 // bucket 0 holds only exact zeros
			}
			return lo + (hi-lo)*frac
		}
		cum += c
	}
	return BucketUpper(HistBuckets - 1)
}

// QuantilesMs returns the p50/p95/p99 summary in milliseconds — the
// unit the load harness and the serving benches report.
func (s *HistogramSnapshot) QuantilesMs() (p50, p95, p99 float64) {
	const ms = float64(time.Millisecond)
	return s.Quantile(50) / ms, s.Quantile(95) / ms, s.Quantile(99) / ms
}
