package encounter

import (
	"testing"
	"time"

	"tagsim/internal/cloud"
	"tagsim/internal/device"
	"tagsim/internal/geo"
	"tagsim/internal/mobility"
	"tagsim/internal/sim"
	"tagsim/internal/tag"
	"tagsim/internal/trace"
)

var (
	t0     = time.Date(2022, 3, 7, 9, 0, 0, 0, time.UTC)
	origin = geo.LatLon{Lat: 24.4539, Lon: 54.3773}
)

type world struct {
	engine   *sim.Engine
	plane    *Plane
	apple    *cloud.Service
	samsung  *cloud.Service
	airTag   *tag.Tag
	smartTag *tag.Tag
}

// buildWorld places both tags at the origin with nApple iPhones and
// nSamsung (opted-in) Galaxies at the given distance.
func buildWorld(nApple, nSamsung int, distM float64, cfg Config) *world {
	e := sim.NewEngine(t0, 42)
	var devices []*device.Device
	for i := 0; i < nApple; i++ {
		p := geo.Destination(origin, float64(i*360/max(nApple, 1)), distM)
		devices = append(devices, device.New(deviceID("iphone", i), trace.VendorApple, p, mobility.Stationary(p)))
	}
	for i := 0; i < nSamsung; i++ {
		p := geo.Destination(origin, float64(i*360/max(nSamsung, 1))+7, distM)
		d := device.New(deviceID("galaxy", i), trace.VendorSamsung, p, mobility.Stationary(p))
		d.OptedIn = true
		devices = append(devices, d)
	}
	fleet := device.NewFleet(origin, devices)
	air := tag.New("airtag-1", tag.AirTagProfile(), mobility.Stationary(origin), 1, t0)
	smart := tag.New("smarttag-1", tag.SmartTagProfile(), mobility.Stationary(origin), 2, t0)
	apple := cloud.NewService(trace.VendorApple)
	samsung := cloud.NewService(trace.VendorSamsung)
	apple.Register(air.ID)
	samsung.Register(smart.ID)
	services := map[trace.Vendor]*cloud.Service{
		trace.VendorApple:   apple,
		trace.VendorSamsung: samsung,
	}
	plane := New(cfg, e, fleet, []*tag.Tag{air, smart}, services)
	plane.RetainLog = true
	plane.Attach(t0)
	return &world{engine: e, plane: plane, apple: apple, samsung: samsung, airTag: air, smartTag: smart}
}

func deviceID(prefix string, i int) string {
	return prefix + "-" + string(rune('a'+i%26)) + string(rune('0'+i/26%10)) + string(rune('0'+i/260))
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestNearbyDevicesProduceReports(t *testing.T) {
	w := buildWorld(10, 10, 10, Config{})
	w.engine.RunFor(time.Hour)
	if _, _, ok := w.apple.LastSeen("airtag-1"); !ok {
		t.Error("AirTag never reported despite 10 iPhones at 10 m")
	}
	if _, _, ok := w.samsung.LastSeen("smarttag-1"); !ok {
		t.Error("SmartTag never reported despite 10 Galaxies at 10 m")
	}
	heard, reported, delivered := w.plane.Stats()
	if heard == 0 || reported == 0 || delivered == 0 {
		t.Errorf("stats = %d/%d/%d", heard, reported, delivered)
	}
	if reported > heard || delivered > reported {
		t.Error("funnel must be monotone: heard >= reported >= delivered")
	}
}

func TestReportedLocationNearTag(t *testing.T) {
	w := buildWorld(10, 0, 25, Config{})
	w.engine.RunFor(time.Hour)
	pos, _, ok := w.apple.LastSeen("airtag-1")
	if !ok {
		t.Fatal("no report")
	}
	// Reported position = reporter GPS fix: within distance + GPS error.
	if d := geo.Distance(pos, origin); d > 25+40 {
		t.Errorf("reported location %.1f m from tag", d)
	}
}

func TestNoReportersNoReports(t *testing.T) {
	w := buildWorld(0, 0, 10, Config{})
	w.engine.RunFor(time.Hour)
	if _, _, ok := w.apple.LastSeen("airtag-1"); ok {
		t.Error("report appeared with no devices")
	}
}

func TestVendorIsolation(t *testing.T) {
	// Only Samsung phones around: the AirTag must remain unreported.
	w := buildWorld(0, 10, 10, Config{})
	w.engine.RunFor(time.Hour)
	if _, _, ok := w.apple.LastSeen("airtag-1"); ok {
		t.Error("Galaxies reported an AirTag without cross-ecosystem mode")
	}
	if _, _, ok := w.samsung.LastSeen("smarttag-1"); !ok {
		t.Error("SmartTag should be reported")
	}
}

func TestCrossEcosystem(t *testing.T) {
	w := buildWorld(0, 10, 10, Config{CrossEcosystem: true})
	w.engine.RunFor(time.Hour)
	if _, _, ok := w.apple.LastSeen("airtag-1"); !ok {
		t.Error("cross-ecosystem mode should let Galaxies report AirTags")
	}
}

func TestOptOutSuppressesReporting(t *testing.T) {
	w := buildWorld(0, 5, 10, Config{})
	for _, d := range w.plane.fleet.Devices() {
		d.OptedIn = false
	}
	w.engine.RunFor(time.Hour)
	if _, _, ok := w.samsung.LastSeen("smarttag-1"); ok {
		t.Error("opted-out Galaxies must not report")
	}
}

func TestOutOfRangeNoReports(t *testing.T) {
	w := buildWorld(10, 10, 500, Config{})
	w.engine.RunFor(time.Hour)
	if _, _, ok := w.apple.LastSeen("airtag-1"); ok {
		t.Error("AirTag reported from 500 m")
	}
	if _, _, ok := w.samsung.LastSeen("smarttag-1"); ok {
		t.Error("SmartTag reported from 500 m")
	}
}

func TestUpdateRateRespectsCloudCap(t *testing.T) {
	// A dense crowd saturates the per-tag rate cap: accepted reports stay
	// in the 15-20/hour plateau of Figure 4.
	w := buildWorld(200, 0, 15, Config{})
	w.engine.RunFor(2 * time.Hour)
	accepted, _ := w.apple.Stats()
	perHour := float64(accepted) / 2
	if perHour < 12 || perHour > 20 {
		t.Errorf("accepted rate = %.1f/h, want the 15-20 plateau", perHour)
	}
}

func TestSamsungAggressiveVsAppleConservative(t *testing.T) {
	// With few devices, Samsung's strategy yields clearly more reports
	// than Apple's — Figure 4's key contrast.
	w := buildWorld(8, 8, 12, Config{})
	w.engine.RunFor(3 * time.Hour)
	appleAccepted, _ := w.apple.Stats()
	samsungAccepted, _ := w.samsung.Stats()
	if samsungAccepted <= appleAccepted {
		t.Errorf("samsung=%d apple=%d: aggressive strategy should dominate at low density", samsungAccepted, appleAccepted)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() (uint64, uint64, uint64, int) {
		w := buildWorld(20, 20, 20, Config{})
		w.engine.RunFor(2 * time.Hour)
		h, r, d := w.plane.Stats()
		return h, r, d, len(w.plane.Log())
	}
	h1, r1, d1, l1 := run()
	h2, r2, d2, l2 := run()
	if h1 != h2 || r1 != r2 || d1 != d2 || l1 != l2 {
		t.Errorf("replay diverged: %d/%d/%d/%d vs %d/%d/%d/%d", h1, r1, d1, l1, h2, r2, d2, l2)
	}
}

func TestReportDelayApplied(t *testing.T) {
	w := buildWorld(5, 0, 10, Config{})
	w.engine.RunFor(time.Hour)
	for _, r := range w.plane.Log() {
		if r.T.Before(r.HeardAt) {
			t.Fatal("report delivered before it was heard")
		}
		if r.T.Sub(r.HeardAt) > 5*time.Minute {
			t.Fatalf("upload delay %v too long", r.T.Sub(r.HeardAt))
		}
	}
}

func TestExpectedHearProbMonotone(t *testing.T) {
	w := buildWorld(1, 0, 10, Config{})
	prev := 1.1
	for d := 1.0; d <= 150; d += 5 {
		p := w.plane.ExpectedHearProb(w.airTag, d)
		if p > prev+1e-9 {
			t.Fatalf("hear prob increased at %.0f m", d)
		}
		prev = p
	}
	if w.plane.ExpectedHearProb(w.airTag, 1) < 0.5 {
		t.Error("hear prob at 1 m should be high")
	}
	if w.plane.ExpectedHearProb(w.airTag, 1000) != 0 {
		t.Error("hear prob beyond MaxRangeM must be zero")
	}
}

func TestMaxUsefulRange(t *testing.T) {
	w := buildWorld(1, 0, 10, Config{})
	air := w.plane.MaxUsefulRange(w.airTag, 0.05)
	smart := w.plane.MaxUsefulRange(w.smartTag, 0.05)
	if air < 50 || air > 120 {
		t.Errorf("AirTag useful range = %.0f m", air)
	}
	if smart < 20 || smart > 120 {
		t.Errorf("SmartTag useful range = %.0f m", smart)
	}
}

func TestMovingTagPicksUpRoadsideDevices(t *testing.T) {
	// Tag walks past a line of stationary iPhones.
	e := sim.NewEngine(t0, 7)
	var devices []*device.Device
	for i := 0; i < 10; i++ {
		p := geo.Destination(origin, 90, float64(i)*200)
		devices = append(devices, device.New(deviceID("road", i), trace.VendorApple, p, mobility.Stationary(p)))
	}
	fleet := device.NewFleet(origin, devices)
	dest := geo.Destination(origin, 90, 2000)
	walker := mobility.NewItinerary(t0, mobility.Move{Along: geo.Path{origin, dest}, SpeedKmh: 5})
	air := tag.New("airtag-1", tag.AirTagProfile(), walker, 3, t0)
	apple := cloud.NewService(trace.VendorApple)
	plane := New(Config{}, e, fleet, []*tag.Tag{air}, map[trace.Vendor]*cloud.Service{trace.VendorApple: apple})
	plane.Attach(t0)
	e.RunFor(30 * time.Minute)
	accepted, _ := apple.Stats()
	if accepted < 2 {
		t.Errorf("walk past 10 iPhones produced %d reports", accepted)
	}
}

// TestScanStream pins the hot path's seed derivation to the frozen
// stream-name contract: the cached per-tag prefix extended with the tick
// key must yield the exact stream RNG(scanStreamName(...)) yields — the
// byte-identity guarantee of the allocation-free rewrite.
func TestScanStream(t *testing.T) {
	w := buildWorld(3, 3, 10, Config{})
	p := w.plane
	for _, instant := range []time.Time{
		t0,
		t0.Add(30 * time.Second),
		t0.Add(12*time.Hour + 123456789*time.Nanosecond),
	} {
		for i, tg := range p.tags {
			key := []byte(instant.UTC().Format(time.RFC3339Nano))
			fast := p.scratch[0].stream.Reseed(p.tagSeed[i].Bytes(key).Seed())
			legacy := p.engine.RNG(scanStreamName(tg.ID, instant))
			for d := 0; d < 16; d++ {
				if f, l := fast.Float64(), legacy.Float64(); f != l {
					t.Fatalf("tag %s at %v draw %d: fast %v, legacy %v", tg.ID, instant, d, f, l)
				}
			}
		}
	}
}

// TestBeaconCarryUnbiased: when the scan interval is not a multiple of
// the advertising interval, the fractional expected-beacon mass carries
// across ticks instead of being truncated away every scan.
func TestBeaconCarryUnbiased(t *testing.T) {
	e := sim.NewEngine(t0, 11)
	fleet := device.NewFleet(origin, nil)
	air := tag.New("airtag-1", tag.AirTagProfile(), mobility.Stationary(origin), 1, t0)
	// 45 s scans at a 2 s advertising interval: 22.5 expected beacons per
	// tick. Truncation would count 22 per tick (a 2.2% long-run bias).
	plane := New(Config{ScanInterval: 45 * time.Second}, e, fleet, []*tag.Tag{air}, nil)
	plane.Attach(t0)
	e.RunFor(time.Hour)
	// 80 whole ticks plus the tick at t0 = 81 scans x 22.5 = 1822.5.
	got := air.BeaconsEmitted()
	if got != 1822 {
		t.Errorf("beacons after 1 h of 45 s scans = %d, want 1822 (22.5/tick carried)", got)
	}
}

// TestScanOnceAllocationFree: after warm-up, a scan tick with no
// reportable encounters allocates nothing (report delivery still
// schedules closures, so only the encounter-free path can be exactly
// zero; it is the path taken almost every tick at campaign scale).
func TestScanOnceAllocationFree(t *testing.T) {
	// Devices present but out of radio range: Near prunes them, so the
	// tick exercises formatting + candidate search without scheduling.
	w := buildWorld(50, 50, 3000, Config{})
	w.plane.ScanOnce(t0) // warm tick-key and scratch buffers
	i := 0
	allocs := testing.AllocsPerRun(50, func() {
		i++
		w.plane.ScanOnce(t0.Add(time.Duration(i) * 30 * time.Second))
	})
	if allocs != 0 {
		t.Errorf("encounter-free ScanOnce allocates %.1f times, want 0", allocs)
	}
}

func BenchmarkScanOnceDenseCrowd(b *testing.B) {
	w := buildWorld(300, 100, 25, Config{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.plane.ScanOnce(t0.Add(time.Duration(i) * 30 * time.Second))
	}
}
