package encounter

import (
	"testing"
	"time"

	"tagsim/internal/cloud"
	"tagsim/internal/device"
	"tagsim/internal/mobility"
	"tagsim/internal/sim"
	"tagsim/internal/tag"
	"tagsim/internal/trace"
)

// TestMissingServiceDoesNotPanic: a tag whose vendor has no cloud service
// still participates in encounters; its reports just vanish.
func TestMissingServiceDoesNotPanic(t *testing.T) {
	e := sim.NewEngine(t0, 1)
	d := device.New("iphone-1", trace.VendorApple, origin, mobility.Stationary(origin))
	fleet := device.NewFleet(origin, []*device.Device{d})
	air := tag.New("airtag-1", tag.AirTagProfile(), mobility.Stationary(origin), 1, t0)
	plane := New(Config{}, e, fleet, []*tag.Tag{air}, nil) // no services at all
	plane.Attach(t0)
	e.RunFor(time.Hour)
	heard, reported, delivered := plane.Stats()
	if heard == 0 || reported == 0 {
		t.Error("encounters should still happen without a cloud")
	}
	if delivered != 0 {
		t.Error("reports cannot be delivered without a service")
	}
}

// TestInactiveDevicesInvisible: devices outside their active window never
// hear anything.
func TestInactiveDevicesInvisible(t *testing.T) {
	e := sim.NewEngine(t0, 2)
	d := device.New("iphone-1", trace.VendorApple, origin, mobility.Stationary(origin))
	d.ActiveFrom = t0.Add(2 * time.Hour)
	d.ActiveTo = t0.Add(3 * time.Hour)
	fleet := device.NewFleet(origin, []*device.Device{d})
	air := tag.New("airtag-1", tag.AirTagProfile(), mobility.Stationary(origin), 1, t0)
	svc := cloud.NewService(trace.VendorApple)
	svc.Register(air.ID)
	plane := New(Config{}, e, fleet, []*tag.Tag{air}, map[trace.Vendor]*cloud.Service{trace.VendorApple: svc})
	plane.Attach(t0)

	e.RunFor(time.Hour) // before the window
	if heard, _, _ := plane.Stats(); heard != 0 {
		t.Fatalf("inactive device heard %d beacons", heard)
	}
	e.RunFor(90 * time.Minute) // now inside the window
	if heard, _, _ := plane.Stats(); heard == 0 {
		t.Fatal("device never woke up inside its window")
	}
	e.RunFor(30 * time.Minute) // run exactly to the window's close
	heardAtClose, _, _ := plane.Stats()
	e.RunFor(3 * time.Hour) // long after the window
	heardEnd, _, _ := plane.Stats()
	if heardEnd != heardAtClose {
		t.Error("device kept hearing after its window closed")
	}
}

// TestAllDevicesOfflineNoDeliveries: reports from offline devices are
// dropped before the cloud.
func TestAllDevicesOfflineNoDeliveries(t *testing.T) {
	e := sim.NewEngine(t0, 3)
	var devices []*device.Device
	for i := 0; i < 10; i++ {
		d := device.New(deviceID("iphone", i), trace.VendorApple, origin, mobility.Stationary(origin))
		d.OnlineProb = 0
		devices = append(devices, d)
	}
	fleet := device.NewFleet(origin, devices)
	air := tag.New("airtag-1", tag.AirTagProfile(), mobility.Stationary(origin), 1, t0)
	svc := cloud.NewService(trace.VendorApple)
	svc.Register(air.ID)
	plane := New(Config{}, e, fleet, []*tag.Tag{air}, map[trace.Vendor]*cloud.Service{trace.VendorApple: svc})
	plane.Attach(t0)
	e.RunFor(2 * time.Hour)
	if accepted, _ := svc.Stats(); accepted != 0 {
		t.Errorf("offline fleet delivered %d reports", accepted)
	}
}

// TestBeaconAccountingGrows: the statistical emission model still counts
// beacons for battery accounting.
func TestBeaconAccountingGrows(t *testing.T) {
	e := sim.NewEngine(t0, 4)
	fleet := device.NewFleet(origin, nil)
	air := tag.New("airtag-1", tag.AirTagProfile(), mobility.Stationary(origin), 1, t0)
	plane := New(Config{}, e, fleet, []*tag.Tag{air}, nil)
	plane.Attach(t0)
	e.RunFor(time.Hour)
	// 2 s advertising interval: ~1800 beacons/hour.
	if got := air.BeaconsEmitted(); got < 1500 || got > 2100 {
		t.Errorf("beacons emitted in 1 h = %d, want ~1800", got)
	}
}

// TestStopDetachesPlane: after stop, no further encounters occur.
func TestStopDetachesPlane(t *testing.T) {
	e := sim.NewEngine(t0, 5)
	d := device.New("iphone-1", trace.VendorApple, origin, mobility.Stationary(origin))
	fleet := device.NewFleet(origin, []*device.Device{d})
	air := tag.New("airtag-1", tag.AirTagProfile(), mobility.Stationary(origin), 1, t0)
	svc := cloud.NewService(trace.VendorApple)
	svc.Register(air.ID)
	plane := New(Config{}, e, fleet, []*tag.Tag{air}, map[trace.Vendor]*cloud.Service{trace.VendorApple: svc})
	stopPlane := plane.Attach(t0)
	e.RunFor(30 * time.Minute)
	heardBefore, _, _ := plane.Stats()
	stopPlane()
	e.RunFor(2 * time.Hour)
	heardAfter, _, _ := plane.Stats()
	if heardAfter != heardBefore {
		t.Errorf("plane kept scanning after stop: %d -> %d", heardBefore, heardAfter)
	}
}
