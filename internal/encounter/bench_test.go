package encounter

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"

	"tagsim/internal/cloud"
	"tagsim/internal/device"
	"tagsim/internal/geo"
	"tagsim/internal/mobility"
	"tagsim/internal/sim"
	"tagsim/internal/tag"
	"tagsim/internal/trace"
)

// benchFleet builds a city-shaped fleet of n devices at constant density
// (the disk grows with n, as fleets grow by covering more ground): 84%
// stationary homes, 15% short local wanderers, and 1% metro commuters
// whose outsized roam lands them on the index's overflow list — active
// only during a staggered one-hour ride window, like the campaign's
// co-travelers.
func benchFleet(n int) []*device.Device {
	rng := rand.New(rand.NewSource(int64(n)))
	radius := 2000 * math.Sqrt(float64(n)/600)
	devices := make([]*device.Device, n)
	for i := range devices {
		home := geo.Destination(origin, rng.Float64()*360, radius*math.Sqrt(rng.Float64()))
		var m mobility.Model
		var commuter bool
		switch {
		case i%100 == 0: // 1%: metro commuter, overflow material
			commuter = true
			far := geo.Destination(home, rng.Float64()*360, 5000+rng.Float64()*10000)
			m = mobility.NewItinerary(t0,
				mobility.Move{Along: geo.Path{home, far}, SpeedKmh: 45},
				mobility.Stay{At: far, For: 6 * time.Hour})
		case i%100 < 16: // 15%: local wanderer
			spot := geo.Destination(home, rng.Float64()*360, 100+rng.Float64()*300)
			m = mobility.NewItinerary(t0,
				mobility.Move{Along: geo.Path{home, spot}, SpeedKmh: 4},
				mobility.Stay{At: spot, For: 8 * time.Hour})
		default: // 84%: at home
			m = mobility.Stationary(home)
		}
		vendor := trace.VendorApple
		if i%3 == 0 {
			vendor = trace.VendorSamsung
		}
		d := device.New(fmt.Sprintf("bench-%06d", i), vendor, home, m)
		d.OptedIn = true
		if commuter {
			d.ActiveFrom = t0.Add(time.Duration(rng.Intn(23)) * time.Hour)
			d.ActiveTo = d.ActiveFrom.Add(time.Hour)
		}
		devices[i] = d
	}
	return devices
}

// benchTags scatters nTags stationary tags across the fleet's disk, each
// with a vendor cloud so the full report pipeline runs.
func benchTags(nTags int, diskM float64) ([]*tag.Tag, map[trace.Vendor]*cloud.Service) {
	rng := rand.New(rand.NewSource(int64(nTags) + 1))
	apple := cloud.NewService(trace.VendorApple)
	samsung := cloud.NewService(trace.VendorSamsung)
	tags := make([]*tag.Tag, nTags)
	for i := range tags {
		pos := geo.Destination(origin, rng.Float64()*360, diskM*math.Sqrt(rng.Float64()))
		if i%2 == 0 {
			tags[i] = tag.New(fmt.Sprintf("air-%03d", i), tag.AirTagProfile(), mobility.Stationary(pos), uint64(i), t0)
			apple.Register(tags[i].ID)
		} else {
			tags[i] = tag.New(fmt.Sprintf("smart-%03d", i), tag.SmartTagProfile(), mobility.Stationary(pos), uint64(i), t0)
			samsung.Register(tags[i].ID)
		}
	}
	return tags, map[trace.Vendor]*cloud.Service{trace.VendorApple: apple, trace.VendorSamsung: samsung}
}

// legacyScanOnce reproduces the seed implementation's hot path verbatim:
// the brute-force linear candidate scan, a freshly formatted stream name,
// and a freshly allocated rand.Rand per (tag, tick) — the pre-refactor
// baseline that BENCH_scan.json's "before" numbers record. The
// per-candidate radio/strategy/report pipeline is byte-for-byte the
// shipping one, so the delta isolates the refactor.
func legacyScanOnce(p *Plane, buf []*device.Device, now time.Time) []*device.Device {
	for _, tg := range p.tags {
		tagPos := tg.Pos(now)
		beacons := tg.ExpectedBeacons(p.cfg.ScanInterval)
		tg.CountBeacons(uint64(beacons))
		buf = p.fleet.NearBrute(tagPos, now, p.cfg.MaxRangeM, buf[:0])
		if len(buf) == 0 {
			continue
		}
		rng := p.engine.RNG(scanStreamName(tg.ID, now))
		for _, dev := range buf {
			if !dev.Reports(tg.Profile.Vendor, p.cfg.CrossEcosystem) {
				continue
			}
			devPos := dev.Pos(now)
			d := geo.Distance(devPos, tagPos)
			if d > p.cfg.MaxRangeM {
				continue
			}
			decodeProb := tg.Profile.Channel.DecodeProb(d, p.cfg.Receiver)
			hearProb := dev.Strategy.HearProb(beacons, decodeProb)
			if rng.Float64() >= hearProb {
				continue
			}
			p.heard.Add(1)
			delay, ok := dev.ShouldReport(tg.ID, now, rng)
			if !ok {
				continue
			}
			p.reported.Add(1)
			fix := dev.GPSFix(now, rng)
			rssi := tg.Profile.Channel.SampleRSSI(d, 0, rng)
			rep := trace.Report{
				T:          now.Add(delay),
				HeardAt:    now,
				TagID:      tg.ID,
				Vendor:     tg.Profile.Vendor,
				ReporterID: dev.ID,
				Pos:        fix,
				RSSI:       rssi,
			}
			svc := p.services[tg.Profile.Vendor]
			if svc == nil {
				continue
			}
			p.engine.Schedule(rep.T, func() {
				if svc.Ingest(rep) {
					p.delivered.Add(1)
				}
			})
		}
	}
	return buf
}

// BenchmarkScanOnce sweeps the encounter hot path over fleet sizes and
// tag counts, three ways: index=grid is the shipping spatially-indexed
// allocation-lean path; index=brute is the same lean path with the
// linear candidate scan (isolates the index's contribution); and
// index=legacy is the seed implementation — linear scan plus per-tick
// formatting and RNG allocation — the "before" column of
// BENCH_scan.json. One op is a full scan tick: every tag's candidate
// search plus radio, strategy, and report evaluation.
func BenchmarkScanOnce(b *testing.B) {
	for _, nDev := range []int{600, 6000, 60000} {
		devices := benchFleet(nDev)
		radius := 2000 * math.Sqrt(float64(nDev)/600)
		for _, nTags := range []int{2, 16} {
			for _, mode := range []string{"grid", "brute", "legacy"} {
				name := fmt.Sprintf("fleet=%d/tags=%d/index=%s", nDev, nTags, mode)
				b.Run(name, func(b *testing.B) {
					was := device.SetGridIndexing(mode == "grid")
					fleet := device.NewFleet(origin, devices)
					device.SetGridIndexing(was)
					// The device slice is shared across sub-benchmarks and
					// ShouldReport mutates per-tag cooldown state; reset it so
					// every mode (and every b.N retry) measures the same
					// workload from the same state.
					fleet.ResetCooldowns()
					tags, services := benchTags(nTags, radius)
					e := sim.NewEngine(t0, 1)
					p := New(Config{}, e, fleet, tags, services)
					p.ScanOnce(t0) // warm buffers
					legacyBuf := make([]*device.Device, 0, 256)
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						at := t0.Add(time.Duration(i+1) * 30 * time.Second)
						if mode == "legacy" {
							legacyBuf = legacyScanOnce(p, legacyBuf, at)
						} else {
							p.ScanOnce(at)
						}
					}
				})
			}
		}
	}
}

// BenchmarkScanRegions measures the region-sharded tick at continental
// shapes: a city-shaped fleet at constant density with 64 tags scattered
// across it, swept over worker counts. One op is a full scan tick. The
// fleet is built once per size (inside the fleet-level sub-benchmark, so
// -bench filters skip construction of the sizes they exclude) and shared
// across worker counts — the plane owns all mutable scan state, so each
// sub-benchmark starts from identical conditions. BENCH_world.json
// records this sweep; on a single-vCPU host the worker sweep documents
// the scheduling overhead floor rather than a speedup.
func BenchmarkScanRegions(b *testing.B) {
	for _, nDev := range []int{60000, 600000, 1000000} {
		nDev := nDev
		b.Run(fmt.Sprintf("fleet=%d", nDev), func(b *testing.B) {
			devices := benchFleet(nDev)
			radius := 2000 * math.Sqrt(float64(nDev)/600)
			fleet := device.NewFleet(origin, devices)
			for _, workers := range []int{1, 2, 4, 8} {
				b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
					tags, services := benchTags(64, radius)
					e := sim.NewEngine(t0, 7)
					p := New(Config{ScanWorkers: workers}, e, fleet, tags, services)
					defer p.Close()
					p.ScanOnce(t0) // warm buffers
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						p.ScanOnce(t0.Add(time.Duration(i+1) * 30 * time.Second))
					}
				})
			}
		})
	}
}

func BenchmarkScanOnceDenseCrowdIndexed(b *testing.B) {
	// The historical dense-crowd shape (everyone within radio range), kept
	// for comparability with BenchmarkScanOnceDenseCrowd in encounter_test.
	w := buildWorld(300, 100, 25, Config{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.plane.ScanOnce(t0.Add(time.Duration(i) * 30 * time.Second))
	}
}
