package encounter

import (
	"sync"
	"testing"
	"time"
)

// TestStatsConcurrentWithScanLoop is the raced regression for the
// satellite fix: Plane.Stats (and Ticks) must be safe to read while the
// engine drives the scan loop — the exact access pattern of a -live
// tagserve run polling plane counters, or a -metrics-every logger,
// against a running world. Before the counters became atomics this was
// a data race the detector flagged. Run under -race in CI.
func TestStatsConcurrentWithScanLoop(t *testing.T) {
	w := buildWorld(10, 10, 10, Config{})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		var lastTicks, lastHeard uint64
		for {
			select {
			case <-stop:
				return
			default:
			}
			// The counters are not mutually consistent mid-tick, but each
			// one individually is monotone under concurrent reads.
			heard, _, _ := w.plane.Stats()
			ticks := w.plane.Ticks()
			if heard < lastHeard || ticks < lastTicks {
				t.Errorf("counter moved backward: heard %d->%d ticks %d->%d",
					lastHeard, heard, lastTicks, ticks)
				return
			}
			lastHeard, lastTicks = heard, ticks
		}
	}()
	w.engine.RunFor(time.Hour)
	close(stop)
	wg.Wait()

	heard, reported, delivered := w.plane.Stats()
	if heard == 0 || reported == 0 || delivered == 0 {
		t.Fatalf("no activity recorded: %d/%d/%d", heard, reported, delivered)
	}
	if w.plane.Ticks() == 0 {
		t.Fatal("no ticks recorded")
	}
}
