package encounter

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"tagsim/internal/sim"

	"tagsim/internal/device"
	"tagsim/internal/trace"
)

// regionRun simulates a fresh many-tag world for an hour under the given
// plane config and returns everything the simulation emits: the ordered
// delivered-report log, the plane counters, per-tag beacon totals, and
// each cloud's accepted/dropped stats. Two runs are "the same simulation"
// iff all of it matches — the log captures event order, not just totals.
type regionRunResult struct {
	log       []trace.Report
	heard     uint64
	reported  uint64
	delivered uint64
	beacons   []uint64
	accepted  map[trace.Vendor]uint64
	dropped   map[trace.Vendor]uint64
}

func regionRun(cfg Config) regionRunResult {
	devices := benchFleet(600)
	fleet := device.NewFleet(origin, devices)
	tags, services := benchTags(16, 2000)
	e := sim.NewEngine(t0, 99)
	p := New(cfg, e, fleet, tags, services)
	defer p.Close()
	p.RetainLog = true
	p.Attach(t0)
	e.RunFor(time.Hour)
	res := regionRunResult{
		log:      p.Log(),
		beacons:  make([]uint64, len(tags)),
		accepted: map[trace.Vendor]uint64{},
		dropped:  map[trace.Vendor]uint64{},
	}
	res.heard, res.reported, res.delivered = p.Stats()
	for i, tg := range tags {
		res.beacons[i] = tg.BeaconsEmitted()
	}
	for v, svc := range services {
		res.accepted[v], res.dropped[v] = svc.Stats()
	}
	return res
}

func (r regionRunResult) equal(t *testing.T, label string, want regionRunResult) {
	t.Helper()
	if r.heard != want.heard || r.reported != want.reported || r.delivered != want.delivered {
		t.Errorf("%s: stats (%d,%d,%d), serial (%d,%d,%d)",
			label, r.heard, r.reported, r.delivered, want.heard, want.reported, want.delivered)
	}
	if !reflect.DeepEqual(r.beacons, want.beacons) {
		t.Errorf("%s: beacon totals diverge: %v vs %v", label, r.beacons, want.beacons)
	}
	if !reflect.DeepEqual(r.accepted, want.accepted) || !reflect.DeepEqual(r.dropped, want.dropped) {
		t.Errorf("%s: cloud stats diverge: %v/%v vs %v/%v",
			label, r.accepted, r.dropped, want.accepted, want.dropped)
	}
	if len(r.log) != len(want.log) {
		t.Fatalf("%s: %d delivered reports, serial %d", label, len(r.log), len(want.log))
	}
	for i := range r.log {
		if r.log[i] != want.log[i] {
			t.Fatalf("%s: delivered report %d diverges:\n got %+v\nwant %+v", label, i, r.log[i], want.log[i])
		}
	}
}

// TestRegionShardedMatchesSerial is the tentpole's correctness property:
// the region-sharded scan tick produces a byte-identical simulation at
// every worker count, including region counts that do not divide the
// grid's rows evenly. "Byte-identical" is checked as the full ordered
// delivered-report log (value equality on every field, order included)
// plus every counter the plane and clouds expose. Run under -race in CI,
// this doubles as the data-race proof for the sharded tick.
func TestRegionShardedMatchesSerial(t *testing.T) {
	serial := regionRun(Config{})
	if serial.delivered == 0 {
		t.Fatal("serial run delivered no reports; property test is vacuous")
	}
	for _, tc := range []struct{ workers, regions int }{
		{1, 0},  // workers=1: must take the serial path
		{2, 0},  // default region count (4x workers)
		{2, 3},  // odd region count
		{8, 0},  // more workers than busy regions
		{8, 7},  // odd regions, fewer than workers
		{8, 31}, // many uneven bands
	} {
		label := fmt.Sprintf("workers=%d regions=%d", tc.workers, tc.regions)
		got := regionRun(Config{ScanWorkers: tc.workers, ScanRegions: tc.regions})
		got.equal(t, label, serial)
	}
}

// TestSetRegionSharding checks the escape hatch: with sharding disabled a
// multi-worker plane routes every tick through the serial path (trivially
// identical output), and the previous setting round-trips.
func TestSetRegionSharding(t *testing.T) {
	if !RegionSharding() {
		t.Fatal("region sharding should default to enabled")
	}
	was := SetRegionSharding(false)
	if !was {
		t.Error("SetRegionSharding(false) should report it was enabled")
	}
	defer SetRegionSharding(was)
	if RegionSharding() {
		t.Fatal("RegionSharding() still true after disabling")
	}
	got := regionRun(Config{ScanWorkers: 8})
	serial := regionRun(Config{})
	got.equal(t, "sharding disabled", serial)
}
