// Package encounter is the radio plane of the simulation: on a fixed scan
// cadence it determines which reporting devices are within range of each
// tag, whether they decode a beacon (radio model x scan duty cycle),
// whether their vendor strategy reports it, and schedules the report's
// delivery to the vendor cloud after the upload delay.
//
// Beacon emission is modeled statistically (expected beacons per scan
// window) rather than as one event per beacon — at 0.5-2 s advertising
// intervals over 120 simulated days, per-beacon events would dominate the
// event queue without changing any measured quantity.
//
// With Config.ScanWorkers > 1 a single world's tick is sharded across
// grid regions: tags are grouped by the row band of the fleet grid under
// their current position, each band scans on a pooled worker, and report
// deliveries are deferred and replayed in global tag order. Tags are the
// unit of parallelism because each (tag, tick) owns an independent named
// RNG stream; within one tag the draw sequence is data-dependent and
// inherently serial. The engine breaks same-time event ties by insertion
// order, so the in-order replay makes the sharded schedule — and
// therefore the whole simulation output — byte-identical to the serial
// path at any worker count (see SetRegionSharding and the region
// equivalence tests).
package encounter

import (
	"math"
	"sync/atomic"
	"time"

	"tagsim/internal/ble"
	"tagsim/internal/cloud"
	"tagsim/internal/device"
	"tagsim/internal/geo"
	"tagsim/internal/obs"
	"tagsim/internal/runner"
	"tagsim/internal/sim"
	"tagsim/internal/tag"
	"tagsim/internal/trace"
)

// Config parameterizes the radio plane.
type Config struct {
	// ScanInterval is the encounter evaluation cadence (default 30 s).
	ScanInterval time.Duration
	// MaxRangeM bounds the candidate search radius (default 120 m,
	// slightly beyond the best tag's decodable range).
	MaxRangeM float64
	// CrossEcosystem makes every reporting device report both vendors'
	// tags — the paper's hypothetical unified ecosystem, used by the
	// ablation benches. The paper's own "combined" analysis instead
	// merges the two co-located tags' histories after the fact.
	CrossEcosystem bool
	// Receiver is the scanning radio model (defaults to a typical phone).
	Receiver ble.Receiver
	// ScanWorkers shards the scan tick across grid regions on a reusable
	// worker pool (<= 1 keeps the historical serial tick). Output is
	// byte-identical at any value; see the package comment.
	ScanWorkers int
	// ScanRegions overrides how many grid-row bands the fleet is cut
	// into (0 = 4x ScanWorkers, clamped to the grid's rows). More
	// regions than workers lets the in-order job claim balance uneven
	// tag clustering.
	ScanRegions int
}

func (c *Config) defaults() {
	if c.ScanInterval <= 0 {
		c.ScanInterval = 30 * time.Second
	}
	if c.MaxRangeM <= 0 {
		c.MaxRangeM = 120
	}
	if c.Receiver == (ble.Receiver{}) {
		c.Receiver = ble.DefaultReceiver
	}
}

// shardingDisabled routes every tick through the serial path regardless
// of ScanWorkers. It exists so equivalence tests and recorded benchmarks
// can pin the historical execution order through unmodified simulation
// code (the scan-tick analogue of device.SetGridIndexing).
var shardingDisabled atomic.Bool

// SetRegionSharding toggles the region-sharded scan tick for planes with
// ScanWorkers > 1 (testing/benchmark escape hatch; the default is
// enabled). It returns the previous setting so tests can restore it.
func SetRegionSharding(enabled bool) (was bool) {
	return !shardingDisabled.Swap(!enabled)
}

// RegionSharding reports whether the region-sharded tick is enabled.
func RegionSharding() bool { return !shardingDisabled.Load() }

// scanScratch is one worker's private hot-path state: the candidate
// index buffer, the reusable reseedable RNG stream, and a fleet query
// stream with its own gather scratch. scratch[0] serves the serial path.
type scanScratch struct {
	buf    []int32
	stream *sim.Stream
	search *device.Searcher
}

// pendingReport is one report whose delivery scheduling was deferred by
// a scan worker, to be replayed in tag order on the engine goroutine.
type pendingReport struct {
	rep trace.Report
	svc *cloud.Service
}

// Plane wires tags, a device fleet, and vendor clouds together.
type Plane struct {
	cfg      Config
	engine   *sim.Engine
	fleet    *device.Fleet
	tags     []*tag.Tag
	services map[trace.Vendor]*cloud.Service
	devs     []*device.Device // fleet.Devices(), cached for index lookups

	// Counters are atomics so a live serve loop (or a -metrics-every
	// logger) can read Stats concurrently with a running scan loop, and
	// so sharded scan workers can bump them without coordination (adds
	// commute, so totals match the serial path exactly).
	ticks      atomic.Uint64
	heard      atomic.Uint64
	reported   atomic.Uint64
	delivered  atomic.Uint64
	reportsLog []trace.Report
	// RetainLog opts in to retaining every delivered report in
	// reportsLog (diagnostics; the clouds keep their own accepted
	// history). Off by default: a continental-scale world delivers
	// millions of reports, and streamed runs already sink them to the
	// pipeline — re-accumulating them here would defeat the bounded-
	// memory point of streaming.
	RetainLog bool

	// Scan hot-path state, all plane-owned so a tick allocates nothing:
	// tickKey is the RFC3339Nano scan instant formatted once per tick;
	// tagSeed caches each tag's "encounter/<id>/" stream-seed prefix, so
	// the per-(tag, tick) seed is tickKey hashed onto the cached prefix —
	// the exact seed the historical RNG(name) derivation produced;
	// beaconRem carries the fractional expected-beacon mass between
	// ticks per tag; elig holds each tag's per-device next-eligible
	// reporting instants (plane-owned, keyed by device index, so
	// concurrently scanned tags never share mutable device state).
	tickKey   []byte
	tagSeed   []sim.StreamSeed
	beaconRem []float64
	elig      []map[int32]int64
	scratch   []scanScratch

	// emitNow schedules a report immediately (serial path); emitLater
	// defers it into pending for the in-order replay (sharded path).
	// Both are bound once at construction so ticks allocate nothing.
	emitNow   func(ti int, pr pendingReport)
	emitLater func(ti int, pr pendingReport)

	// Region sharding state (pool == nil means the plane always scans
	// serially): tags are bucketed into regionTags by the band under
	// their precomputed tagPos, jobs lists the non-empty bands, and
	// pending holds each tag's deferred deliveries until the replay.
	pool       *runner.Pool
	regions    device.Regions
	tagPos     []geo.LatLon
	regionTags [][]int
	jobs       []int
	pending    [][]pendingReport
}

// New builds a radio plane. Services are keyed by tag vendor; a tag whose
// vendor has no service still generates encounters but its reports go
// nowhere (used by ablations).
func New(cfg Config, e *sim.Engine, fleet *device.Fleet, tags []*tag.Tag, services map[trace.Vendor]*cloud.Service) *Plane {
	cfg.defaults()
	tagSeed := make([]sim.StreamSeed, len(tags))
	for i, tg := range tags {
		tagSeed[i] = e.StreamSeed().String("encounter/").String(tg.ID).String("/")
	}
	// Overflow accumulates across worlds: each plane contributes the tags
	// its fleet's grid index could not cell-bound.
	obsOverflow.Add(uint64(fleet.GridStats().Overflow))
	p := &Plane{
		cfg:       cfg,
		engine:    e,
		fleet:     fleet,
		tags:      tags,
		services:  services,
		devs:      fleet.Devices(),
		tickKey:   make([]byte, 0, len(time.RFC3339Nano)),
		tagSeed:   tagSeed,
		beaconRem: make([]float64, len(tags)),
		elig:      make([]map[int32]int64, len(tags)),
	}
	for i := range p.elig {
		p.elig[i] = make(map[int32]int64)
	}
	p.emitNow = p.deliverNow
	p.emitLater = p.deferDelivery

	workers := cfg.ScanWorkers
	if workers > len(tags) {
		workers = len(tags) // a worker per tag saturates the parallelism
	}
	if workers > 1 {
		nRegions := cfg.ScanRegions
		if nRegions <= 0 {
			nRegions = 4 * workers
		}
		if regions := fleet.Regions(nRegions); regions.Count() > 1 {
			p.regions = regions
			p.pool = runner.NewPool(workers)
			p.tagPos = make([]geo.LatLon, len(tags))
			p.regionTags = make([][]int, regions.Count())
			p.pending = make([][]pendingReport, len(tags))
		}
	}
	nScratch := 1
	if p.pool != nil {
		nScratch = p.pool.Workers()
	}
	p.scratch = make([]scanScratch, nScratch)
	for i := range p.scratch {
		p.scratch[i] = scanScratch{
			buf:    make([]int32, 0, 256),
			stream: sim.NewStream(),
			search: fleet.Searcher(),
		}
	}
	return p
}

// Attach starts the scan loop at start; the returned function stops it.
func (p *Plane) Attach(start time.Time) (stop func()) {
	return p.engine.EveryFixed(start, p.cfg.ScanInterval, p.ScanOnce)
}

// Close releases the scan pool's worker goroutines (no-op for serial
// planes). The plane must not scan after Close.
func (p *Plane) Close() {
	if p.pool != nil {
		p.pool.Close()
	}
}

// Process-wide radio-plane series in the obs.Default registry,
// aggregated across every live Plane (a campaign builds one per world).
var (
	obsTicks      = obs.GetCounter("encounter_ticks_total")
	obsHeard      = obs.GetCounter("encounter_heard_total")
	obsReported   = obs.GetCounter("encounter_reported_total")
	obsDelivered  = obs.GetCounter("encounter_delivered_total")
	obsOverflow   = obs.GetCounter("encounter_grid_overflow_total")
	obsRegionScan = obs.GetHistogram("encounter_region_scan_seconds")
)

// ScanOnce evaluates one encounter window at the given virtual time.
func (p *Plane) ScanOnce(now time.Time) {
	p.ticks.Add(1)
	obsTicks.Inc()
	// One formatting of the scan instant serves every tag this tick; it
	// is the per-tick suffix of each tag's RNG stream name.
	p.tickKey = now.UTC().AppendFormat(p.tickKey[:0], time.RFC3339Nano)
	if p.pool != nil && !shardingDisabled.Load() {
		p.scanSharded(now)
		return
	}
	ws := &p.scratch[0]
	for i, tg := range p.tags {
		p.scanTag(ws, i, tg, now, tg.Pos(now), p.emitNow)
	}
}

// scanSharded runs one tick across the region pool. Tag positions are
// resolved up front (mobility models are pure functions of time, but
// resolving them once keeps the region assignment in one place), tags
// are bucketed by region band, and the non-empty bands are claimed
// in order by the pooled workers. Every per-tag effect (RNG draws,
// beacon accounting, eligibility slots) is owned by exactly one worker
// this tick; the only cross-tag effect — report delivery scheduling —
// is deferred and replayed in tag order below.
func (p *Plane) scanSharded(now time.Time) {
	for i, tg := range p.tags {
		p.tagPos[i] = tg.Pos(now)
	}
	for r := range p.regionTags {
		p.regionTags[r] = p.regionTags[r][:0]
	}
	for i := range p.tags {
		r := p.regions.Of(p.tagPos[i])
		p.regionTags[r] = append(p.regionTags[r], i)
	}
	p.jobs = p.jobs[:0]
	for r, ts := range p.regionTags {
		if len(ts) > 0 {
			p.jobs = append(p.jobs, r)
		}
	}
	p.pool.Run(len(p.jobs), func(worker, job int) {
		start := time.Now()
		ws := &p.scratch[worker]
		for _, ti := range p.regionTags[p.jobs[job]] {
			p.scanTag(ws, ti, p.tags[ti], now, p.tagPos[ti], p.emitLater)
		}
		obsRegionScan.Observe(time.Since(start))
	})
	// Replay deferred deliveries in global tag order. The engine breaks
	// same-time ties by insertion sequence, and ScanOnce runs atomically
	// within one engine event, so scheduling here in (tag, candidate)
	// order reproduces the serial path's event order exactly.
	for ti := range p.pending {
		for _, pr := range p.pending[ti] {
			p.schedule(pr)
		}
		p.pending[ti] = p.pending[ti][:0]
	}
}

// scanTag evaluates one tag's scan window on the given worker scratch.
// Reports pass through emit: immediate scheduling on the serial path,
// deferred on the sharded path. The draw sequence is identical either
// way — emit performs no RNG draws.
func (p *Plane) scanTag(ws *scanScratch, ti int, tg *tag.Tag, now time.Time, tagPos geo.LatLon, emit func(int, pendingReport)) {
	beacons := tg.ExpectedBeacons(p.cfg.ScanInterval)
	// Count whole beacons and carry the fractional mass to the next tick,
	// so e.g. 22.5 expected beacons per window accounts 45 over two ticks
	// instead of truncating to 44.
	whole, frac := math.Modf(beacons + p.beaconRem[ti])
	p.beaconRem[ti] = frac
	tg.CountBeacons(uint64(whole))

	ws.buf = ws.search.NearIndices(tagPos, now, p.cfg.MaxRangeM, ws.buf[:0])
	if len(ws.buf) == 0 {
		return
	}
	rng := ws.stream.Reseed(p.tagSeed[ti].Bytes(p.tickKey).Seed())
	elig := p.elig[ti]
	for _, di := range ws.buf {
		dev := p.devs[di]
		if !dev.Reports(tg.Profile.Vendor, p.cfg.CrossEcosystem) {
			continue
		}
		devPos := dev.Pos(now)
		d := geo.Distance(devPos, tagPos)
		if d > p.cfg.MaxRangeM {
			continue
		}
		decodeProb := tg.Profile.Channel.DecodeProb(d, p.cfg.Receiver)
		hearProb := dev.Strategy.HearProb(beacons, decodeProb)
		if rng.Float64() >= hearProb {
			continue
		}
		p.heard.Add(1)
		obsHeard.Inc()
		cur := elig[di]
		next, delay, ok := dev.ReportDecision(now, cur, rng)
		if next != cur {
			elig[di] = next
		}
		if !ok {
			continue
		}
		p.reported.Add(1)
		obsReported.Inc()
		// The reported location is the device's GPS fix at hear time —
		// the approximation the paper identifies as the dominant error
		// source (up to the full Bluetooth range).
		fix := dev.GPSFix(now, rng)
		rssi := tg.Profile.Channel.SampleRSSI(d, 0, rng)
		rep := trace.Report{
			T:          now.Add(delay),
			HeardAt:    now,
			TagID:      tg.ID,
			Vendor:     tg.Profile.Vendor,
			ReporterID: dev.ID,
			Pos:        fix,
			RSSI:       rssi,
		}
		svc := p.services[tg.Profile.Vendor]
		if svc == nil {
			continue
		}
		emit(ti, pendingReport{rep: rep, svc: svc})
	}
}

// deliverNow schedules the report's delivery immediately (serial path).
func (p *Plane) deliverNow(ti int, pr pendingReport) { p.schedule(pr) }

// deferDelivery queues the report for the tag-order replay. Workers
// write disjoint pending slots (each tag belongs to exactly one region
// per tick), so no locking is needed.
func (p *Plane) deferDelivery(ti int, pr pendingReport) {
	p.pending[ti] = append(p.pending[ti], pr)
}

// schedule registers the report's cloud delivery with the engine.
func (p *Plane) schedule(pr pendingReport) {
	rep, svc := pr.rep, pr.svc
	p.engine.Schedule(rep.T, func() {
		if svc.Ingest(rep) {
			p.delivered.Add(1)
			obsDelivered.Inc()
			if p.RetainLog {
				p.reportsLog = append(p.reportsLog, rep)
			}
		}
	})
}

// scanStreamName is the per-(tag, scan instant) RNG stream name, so scan
// outcomes do not depend on how many other entities drew from a shared
// stream earlier. The hot path never builds this string — it extends the
// cached per-tag seed prefix with the tick key instead — but the name is
// the frozen contract both derivations must match (see TestScanStream).
func scanStreamName(tagID string, now time.Time) string {
	return "encounter/" + tagID + "/" + now.UTC().Format(time.RFC3339Nano)
}

// Stats returns plane counters: beacons heard, reports attempted (passed
// the vendor strategy), and reports accepted by the clouds. Safe to call
// concurrently with a running scan loop — each load is atomic (the three
// are not mutually consistent mid-tick).
func (p *Plane) Stats() (heard, reported, delivered uint64) {
	return p.heard.Load(), p.reported.Load(), p.delivered.Load()
}

// Ticks returns the number of scan windows evaluated so far. Safe for
// concurrent use.
func (p *Plane) Ticks() uint64 { return p.ticks.Load() }

// Log returns the delivered-report log when RetainLog is set.
func (p *Plane) Log() []trace.Report { return p.reportsLog }

// ExpectedHearProb exposes the plane's hear-probability computation for
// calibration tests: the probability a single device at distance d hears
// the tag within one scan interval. Distances beyond the plane's search
// radius return zero, exactly as the simulation behaves.
func (p *Plane) ExpectedHearProb(tg *tag.Tag, d float64) float64 {
	if d > p.cfg.MaxRangeM {
		return 0
	}
	return p.hearProbUngated(tg, d)
}

func (p *Plane) hearProbUngated(tg *tag.Tag, d float64) float64 {
	decodeProb := tg.Profile.Channel.DecodeProb(d, p.cfg.Receiver)
	beacons := tg.ExpectedBeacons(p.cfg.ScanInterval)
	// Use a representative strategy duty cycle (both vendors scan 1 s in
	// 10 s).
	s := device.AppleStrategy()
	return s.HearProb(beacons, decodeProb)
}

// MaxUsefulRange returns the distance beyond which the hear probability
// per scan drops below eps for the tag, clamped to the plane's search
// radius (encounters past MaxRangeM never happen regardless of the
// radio). Useful for sizing MaxRangeM.
func (p *Plane) MaxUsefulRange(tg *tag.Tag, eps float64) float64 {
	lo, hi := 1.0, 1000.0
	if p.hearProbUngated(tg, hi) > eps {
		return math.Min(hi, p.cfg.MaxRangeM)
	}
	for i := 0; i < 50; i++ {
		mid := (lo + hi) / 2
		if p.hearProbUngated(tg, mid) > eps {
			lo = mid
		} else {
			hi = mid
		}
	}
	return math.Min((lo+hi)/2, p.cfg.MaxRangeM)
}
