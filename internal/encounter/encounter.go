// Package encounter is the radio plane of the simulation: on a fixed scan
// cadence it determines which reporting devices are within range of each
// tag, whether they decode a beacon (radio model x scan duty cycle),
// whether their vendor strategy reports it, and schedules the report's
// delivery to the vendor cloud after the upload delay.
//
// Beacon emission is modeled statistically (expected beacons per scan
// window) rather than as one event per beacon — at 0.5-2 s advertising
// intervals over 120 simulated days, per-beacon events would dominate the
// event queue without changing any measured quantity.
package encounter

import (
	"math"
	"sync/atomic"
	"time"

	"tagsim/internal/ble"
	"tagsim/internal/cloud"
	"tagsim/internal/device"
	"tagsim/internal/geo"
	"tagsim/internal/obs"
	"tagsim/internal/sim"
	"tagsim/internal/tag"
	"tagsim/internal/trace"
)

// Config parameterizes the radio plane.
type Config struct {
	// ScanInterval is the encounter evaluation cadence (default 30 s).
	ScanInterval time.Duration
	// MaxRangeM bounds the candidate search radius (default 120 m,
	// slightly beyond the best tag's decodable range).
	MaxRangeM float64
	// CrossEcosystem makes every reporting device report both vendors'
	// tags — the paper's hypothetical unified ecosystem, used by the
	// ablation benches. The paper's own "combined" analysis instead
	// merges the two co-located tags' histories after the fact.
	CrossEcosystem bool
	// Receiver is the scanning radio model (defaults to a typical phone).
	Receiver ble.Receiver
}

func (c *Config) defaults() {
	if c.ScanInterval <= 0 {
		c.ScanInterval = 30 * time.Second
	}
	if c.MaxRangeM <= 0 {
		c.MaxRangeM = 120
	}
	if c.Receiver == (ble.Receiver{}) {
		c.Receiver = ble.DefaultReceiver
	}
}

// Plane wires tags, a device fleet, and vendor clouds together.
type Plane struct {
	cfg      Config
	engine   *sim.Engine
	fleet    *device.Fleet
	tags     []*tag.Tag
	services map[trace.Vendor]*cloud.Service

	buf []*device.Device
	// Counters are atomics so a live serve loop (or a -metrics-every
	// logger) can read Stats concurrently with a running scan loop; the
	// scan loop is the only writer.
	ticks      atomic.Uint64
	heard      atomic.Uint64
	reported   atomic.Uint64
	delivered  atomic.Uint64
	reportsLog []trace.Report
	// KeepLog retains every delivered report in reportsLog (diagnostics;
	// the clouds keep their own accepted history).
	KeepLog bool

	// Scan hot-path state, all plane-owned so a tick allocates nothing:
	// tickKey is the RFC3339Nano scan instant formatted once per tick;
	// tagSeed caches each tag's "encounter/<id>/" stream-seed prefix, so
	// the per-(tag, tick) seed is tickKey hashed onto the cached prefix —
	// the exact seed the historical RNG(name) derivation produced; stream
	// is the reusable rand.Rand those seeds re-key; beaconRem carries the
	// fractional expected-beacon mass between ticks per tag, keeping
	// long-run emitted-beacon accounting unbiased when the scan interval
	// is not a multiple of the advertising interval.
	tickKey   []byte
	tagSeed   []sim.StreamSeed
	stream    *sim.Stream
	beaconRem []float64
}

// New builds a radio plane. Services are keyed by tag vendor; a tag whose
// vendor has no service still generates encounters but its reports go
// nowhere (used by ablations).
func New(cfg Config, e *sim.Engine, fleet *device.Fleet, tags []*tag.Tag, services map[trace.Vendor]*cloud.Service) *Plane {
	cfg.defaults()
	tagSeed := make([]sim.StreamSeed, len(tags))
	for i, tg := range tags {
		tagSeed[i] = e.StreamSeed().String("encounter/").String(tg.ID).String("/")
	}
	// Overflow accumulates across worlds: each plane contributes the tags
	// its fleet's grid index could not cell-bound.
	obsOverflow.Add(uint64(fleet.GridStats().Overflow))
	return &Plane{
		cfg:       cfg,
		engine:    e,
		fleet:     fleet,
		tags:      tags,
		services:  services,
		buf:       make([]*device.Device, 0, 256),
		tickKey:   make([]byte, 0, len(time.RFC3339Nano)),
		tagSeed:   tagSeed,
		stream:    sim.NewStream(),
		beaconRem: make([]float64, len(tags)),
	}
}

// Attach starts the scan loop at start; the returned function stops it.
func (p *Plane) Attach(start time.Time) (stop func()) {
	return p.engine.EveryFixed(start, p.cfg.ScanInterval, p.ScanOnce)
}

// Process-wide radio-plane series in the obs.Default registry,
// aggregated across every live Plane (a campaign builds one per world).
var (
	obsTicks     = obs.GetCounter("encounter_ticks_total")
	obsHeard     = obs.GetCounter("encounter_heard_total")
	obsReported  = obs.GetCounter("encounter_reported_total")
	obsDelivered = obs.GetCounter("encounter_delivered_total")
	obsOverflow  = obs.GetCounter("encounter_grid_overflow_total")
)

// ScanOnce evaluates one encounter window at the given virtual time.
func (p *Plane) ScanOnce(now time.Time) {
	p.ticks.Add(1)
	obsTicks.Inc()
	// One formatting of the scan instant serves every tag this tick; it
	// is the per-tick suffix of each tag's RNG stream name.
	p.tickKey = now.UTC().AppendFormat(p.tickKey[:0], time.RFC3339Nano)
	for i, tg := range p.tags {
		p.scanTag(i, tg, now)
	}
}

func (p *Plane) scanTag(ti int, tg *tag.Tag, now time.Time) {
	tagPos := tg.Pos(now)
	beacons := tg.ExpectedBeacons(p.cfg.ScanInterval)
	// Count whole beacons and carry the fractional mass to the next tick,
	// so e.g. 22.5 expected beacons per window accounts 45 over two ticks
	// instead of truncating to 44.
	whole, frac := math.Modf(beacons + p.beaconRem[ti])
	p.beaconRem[ti] = frac
	tg.CountBeacons(uint64(whole))

	p.buf = p.fleet.Near(tagPos, now, p.cfg.MaxRangeM, p.buf[:0])
	if len(p.buf) == 0 {
		return
	}
	rng := p.stream.Reseed(p.tagSeed[ti].Bytes(p.tickKey).Seed())
	for _, dev := range p.buf {
		if !dev.Reports(tg.Profile.Vendor, p.cfg.CrossEcosystem) {
			continue
		}
		devPos := dev.Pos(now)
		d := geo.Distance(devPos, tagPos)
		if d > p.cfg.MaxRangeM {
			continue
		}
		decodeProb := tg.Profile.Channel.DecodeProb(d, p.cfg.Receiver)
		hearProb := dev.Strategy.HearProb(beacons, decodeProb)
		if rng.Float64() >= hearProb {
			continue
		}
		p.heard.Add(1)
		obsHeard.Inc()
		delay, ok := dev.ShouldReport(tg.ID, now, rng)
		if !ok {
			continue
		}
		p.reported.Add(1)
		obsReported.Inc()
		// The reported location is the device's GPS fix at hear time —
		// the approximation the paper identifies as the dominant error
		// source (up to the full Bluetooth range).
		fix := dev.GPSFix(now, rng)
		rssi := tg.Profile.Channel.SampleRSSI(d, 0, rng)
		rep := trace.Report{
			T:          now.Add(delay),
			HeardAt:    now,
			TagID:      tg.ID,
			Vendor:     tg.Profile.Vendor,
			ReporterID: dev.ID,
			Pos:        fix,
			RSSI:       rssi,
		}
		svc := p.services[tg.Profile.Vendor]
		if svc == nil {
			continue
		}
		p.engine.Schedule(rep.T, func() {
			if svc.Ingest(rep) {
				p.delivered.Add(1)
				obsDelivered.Inc()
				if p.KeepLog {
					p.reportsLog = append(p.reportsLog, rep)
				}
			}
		})
	}
}

// scanStreamName is the per-(tag, scan instant) RNG stream name, so scan
// outcomes do not depend on how many other entities drew from a shared
// stream earlier. The hot path never builds this string — it extends the
// cached per-tag seed prefix with the tick key instead — but the name is
// the frozen contract both derivations must match (see TestScanStream).
func scanStreamName(tagID string, now time.Time) string {
	return "encounter/" + tagID + "/" + now.UTC().Format(time.RFC3339Nano)
}

// Stats returns plane counters: beacons heard, reports attempted (passed
// the vendor strategy), and reports accepted by the clouds. Safe to call
// concurrently with a running scan loop — each load is atomic (the three
// are not mutually consistent mid-tick).
func (p *Plane) Stats() (heard, reported, delivered uint64) {
	return p.heard.Load(), p.reported.Load(), p.delivered.Load()
}

// Ticks returns the number of scan windows evaluated so far. Safe for
// concurrent use.
func (p *Plane) Ticks() uint64 { return p.ticks.Load() }

// Log returns the delivered-report log when KeepLog is set.
func (p *Plane) Log() []trace.Report { return p.reportsLog }

// ExpectedHearProb exposes the plane's hear-probability computation for
// calibration tests: the probability a single device at distance d hears
// the tag within one scan interval. Distances beyond the plane's search
// radius return zero, exactly as the simulation behaves.
func (p *Plane) ExpectedHearProb(tg *tag.Tag, d float64) float64 {
	if d > p.cfg.MaxRangeM {
		return 0
	}
	return p.hearProbUngated(tg, d)
}

func (p *Plane) hearProbUngated(tg *tag.Tag, d float64) float64 {
	decodeProb := tg.Profile.Channel.DecodeProb(d, p.cfg.Receiver)
	beacons := tg.ExpectedBeacons(p.cfg.ScanInterval)
	// Use a representative strategy duty cycle (both vendors scan 1 s in
	// 10 s).
	s := device.AppleStrategy()
	return s.HearProb(beacons, decodeProb)
}

// MaxUsefulRange returns the distance beyond which the hear probability
// per scan drops below eps for the tag, clamped to the plane's search
// radius (encounters past MaxRangeM never happen regardless of the
// radio). Useful for sizing MaxRangeM.
func (p *Plane) MaxUsefulRange(tg *tag.Tag, eps float64) float64 {
	lo, hi := 1.0, 1000.0
	if p.hearProbUngated(tg, hi) > eps {
		return math.Min(hi, p.cfg.MaxRangeM)
	}
	for i := 0; i < 50; i++ {
		mid := (lo + hi) / 2
		if p.hearProbUngated(tg, mid) > eps {
			lo = mid
		} else {
			hi = mid
		}
	}
	return math.Min((lo+hi)/2, p.cfg.MaxRangeM)
}
