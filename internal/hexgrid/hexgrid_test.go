package hexgrid

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"tagsim/internal/geo"
)

var (
	abuDhabi = geo.LatLon{Lat: 24.4539, Lon: 54.3773}
	milan    = geo.LatLon{Lat: 45.4642, Lon: 9.1900}
)

func TestCellPackRoundTrip(t *testing.T) {
	f := func(res8 uint8, face8 uint8, iRaw, jRaw int32) bool {
		res := int(res8) % (MaxResolution + 1)
		face := int(face8) % 20
		i := int(iRaw) % (axialOffset - 1)
		j := int(jRaw) % (axialOffset - 1)
		c := packCell(res, face, i, j)
		gi, gj := c.axial()
		return c.Resolution() == res && c.Face() == face && gi == i && gj == j && c.Valid()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestInvalidCell(t *testing.T) {
	if Invalid.Valid() {
		t.Error("zero cell must be invalid")
	}
	if Cell(math.MaxUint64).Valid() {
		t.Error("all-ones cell has face 31 and must be invalid")
	}
}

func TestStringParseRoundTrip(t *testing.T) {
	c := LatLonToCell(abuDhabi, 8)
	parsed, err := ParseCell(c.String())
	if err != nil {
		t.Fatalf("ParseCell: %v", err)
	}
	if parsed != c {
		t.Errorf("round trip %v != %v", parsed, c)
	}
	if _, err := ParseCell("zzzz"); err == nil {
		t.Error("ParseCell should reject garbage")
	}
	if _, err := ParseCell("0000000000000000"); err == nil {
		t.Error("ParseCell should reject the invalid zero cell")
	}
}

func TestLatLonToCellDeterministic(t *testing.T) {
	for res := 0; res <= 12; res++ {
		a := LatLonToCell(abuDhabi, res)
		b := LatLonToCell(abuDhabi, res)
		if a != b {
			t.Fatalf("res %d: nondeterministic hashing", res)
		}
		if a.Resolution() != res {
			t.Fatalf("res %d: got resolution %d", res, a.Resolution())
		}
	}
}

func TestCenterRoundTrip(t *testing.T) {
	// The center of a cell must hash back to the same cell.
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		p := geo.LatLon{Lat: rng.Float64()*160 - 80, Lon: rng.Float64()*360 - 180}
		for _, res := range []int{2, 5, 8, 10} {
			c := LatLonToCell(p, res)
			back := LatLonToCell(CellToLatLon(c), res)
			if back != c {
				t.Fatalf("center of %v (res %d) hashed to %v", c, res, back)
			}
		}
	}
}

func TestCellContainsPoint(t *testing.T) {
	// A hashed point must be within one circumradius of its cell center.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		p := geo.LatLon{Lat: rng.Float64()*160 - 80, Lon: rng.Float64()*360 - 180}
		res := 8
		c := LatLonToCell(p, res)
		d := geo.Distance(p, CellToLatLon(c))
		// Allow slack for projection distortion and seam canonicalization
		// near face edges.
		if d > EdgeLengthM(res)*2.0 {
			t.Fatalf("point %v is %.1f m from center of its cell (edge %.1f m)", p, d, EdgeLengthM(res))
		}
	}
}

func TestResolution8Area(t *testing.T) {
	// The paper quotes 0.737 km^2 per res-8 hexagon.
	if a := MeanHexAreaKm2(8); math.Abs(a-0.737327598) > 1e-9 {
		t.Errorf("res-8 area = %v, want 0.737327598", a)
	}
	if !math.IsNaN(MeanHexAreaKm2(-1)) || !math.IsNaN(MeanHexAreaKm2(16)) {
		t.Error("out-of-range resolutions must return NaN")
	}
}

func TestNumCellsFormula(t *testing.T) {
	// c = 2 + 120*7^r, as quoted in the paper's appendix.
	if got := NumCells(0); got != 122 {
		t.Errorf("NumCells(0) = %d, want 122", got)
	}
	if got := NumCells(8); got != 691776122 {
		t.Errorf("NumCells(8) = %d, want 691776122", got)
	}
}

func TestEdgeLengthMonotone(t *testing.T) {
	for res := 1; res <= MaxResolution; res++ {
		if EdgeLengthM(res) >= EdgeLengthM(res-1) {
			t.Fatalf("edge length must shrink with resolution (res %d)", res)
		}
	}
	// Aperture 7: linear pitch shrinks by ~sqrt(7) per resolution.
	ratio := EdgeLengthM(7) / EdgeLengthM(8)
	if math.Abs(ratio-math.Sqrt(7)) > 0.03 {
		t.Errorf("aperture ratio = %.4f, want ~%.4f", ratio, math.Sqrt(7))
	}
}

func TestBoundaryHexagon(t *testing.T) {
	c := LatLonToCell(abuDhabi, 8)
	b := Boundary(c)
	if len(b) != 6 {
		t.Fatalf("boundary has %d vertices", len(b))
	}
	center := CellToLatLon(c)
	edge := EdgeLengthM(8)
	for i, v := range b {
		d := geo.Distance(center, v)
		if math.Abs(d-edge) > edge*0.1 {
			t.Errorf("vertex %d at distance %.1f, want ~%.1f", i, d, edge)
		}
	}
	// Vertices must hash to the cell or one of its neighbors, i.e. the
	// boundary is a genuine cell boundary.
	neighbors := map[Cell]bool{c: true}
	for _, n := range Neighbors(c) {
		neighbors[n] = true
	}
	for i, v := range b {
		if !neighbors[LatLonToCell(v, 8)] {
			t.Errorf("vertex %d hashes to a non-adjacent cell", i)
		}
	}
}

func TestNeighborsSymmetricAndDistinct(t *testing.T) {
	c := LatLonToCell(milan, 8)
	ns := Neighbors(c)
	if len(ns) != 6 {
		t.Fatalf("expected 6 neighbors, got %d", len(ns))
	}
	seen := map[Cell]bool{}
	for _, n := range ns {
		if n == c {
			t.Fatal("cell is its own neighbor")
		}
		if seen[n] {
			t.Fatal("duplicate neighbor")
		}
		seen[n] = true
		// Symmetry: c should be among n's neighbors.
		back := Neighbors(n)
		found := false
		for _, b := range back {
			if b == c {
				found = true
			}
		}
		if !found {
			t.Errorf("neighbor %v does not list %v back", n, c)
		}
	}
}

func TestGridDiskSizes(t *testing.T) {
	c := LatLonToCell(abuDhabi, 8)
	// Hexagonal disks have 1, 7, 19, 37 cells for k = 0..3.
	want := []int{1, 7, 19, 37}
	for k, w := range want {
		got := len(GridDisk(c, k))
		if got != w {
			t.Errorf("GridDisk(k=%d) = %d cells, want %d", k, got, w)
		}
	}
}

func TestParentChild(t *testing.T) {
	c := LatLonToCell(abuDhabi, 8)
	p := Parent(c)
	if p.Resolution() != 7 {
		t.Fatalf("parent resolution = %d", p.Resolution())
	}
	// The child's center must be inside the parent (hash to it).
	if LatLonToCell(CellToLatLon(c), 7) != p {
		t.Error("child center not contained in parent")
	}
	cc := CenterChild(p)
	if cc.Resolution() != 8 {
		t.Fatalf("center child resolution = %d", cc.Resolution())
	}
	if Parent(cc) != p {
		t.Error("CenterChild/Parent are not inverse")
	}
	// Resolution-0 cells have no parent; max-res cells have no child.
	if Parent(LatLonToCell(abuDhabi, 0)) != Invalid {
		t.Error("res-0 parent should be Invalid")
	}
	if CenterChild(LatLonToCell(abuDhabi, MaxResolution)) != Invalid {
		t.Error("max-res center child should be Invalid")
	}
}

func TestDistinctCitiesDistinctCells(t *testing.T) {
	if LatLonToCell(abuDhabi, 8) == LatLonToCell(milan, 8) {
		t.Error("Abu Dhabi and Milan must not share a res-8 cell")
	}
}

func TestNearbyPointsShareCell(t *testing.T) {
	// Points 10 m apart share a res-8 cell almost always; verify at the
	// cell center where it is guaranteed.
	c := LatLonToCell(abuDhabi, 8)
	center := CellToLatLon(c)
	for brg := 0.0; brg < 360; brg += 60 {
		p := geo.Destination(center, brg, 10)
		if LatLonToCell(p, 8) != c {
			t.Errorf("point 10 m %f deg off center left the cell", brg)
		}
	}
}

func TestCoverBBox(t *testing.T) {
	// A ~2 km box at res 8 (edge ~461 m) should produce a handful of cells.
	b := geo.NewBBox(abuDhabi).Buffer(1000)
	cells := CoverBBox(b, 8)
	if len(cells) < 4 || len(cells) > 40 {
		t.Fatalf("CoverBBox produced %d cells", len(cells))
	}
	seen := map[Cell]bool{}
	for _, c := range cells {
		if seen[c] {
			t.Fatal("CoverBBox returned duplicates")
		}
		seen[c] = true
	}
	// The box corners and center must all be covered.
	for _, p := range []geo.LatLon{abuDhabi, {Lat: b.MinLat, Lon: b.MinLon}, {Lat: b.MaxLat, Lon: b.MaxLon}} {
		if !seen[LatLonToCell(p, 8)] {
			t.Errorf("cell of %v missing from cover", p)
		}
	}
}

func TestResolutionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for out-of-range resolution")
		}
	}()
	LatLonToCell(abuDhabi, 16)
}

func TestFaceAssignmentStable(t *testing.T) {
	// Every point maps to a face in [0, 20).
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 1000; i++ {
		p := geo.LatLon{Lat: rng.Float64()*180 - 90, Lon: rng.Float64()*360 - 180}
		c := LatLonToCell(p, 3)
		if f := c.Face(); f < 0 || f >= 20 {
			t.Fatalf("face %d out of range for %v", f, p)
		}
	}
}

func BenchmarkLatLonToCell(b *testing.B) {
	for i := 0; i < b.N; i++ {
		LatLonToCell(abuDhabi, 8)
	}
}

func BenchmarkNeighbors(b *testing.B) {
	c := LatLonToCell(abuDhabi, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Neighbors(c)
	}
}

func BenchmarkGridDisk3(b *testing.B) {
	c := LatLonToCell(abuDhabi, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GridDisk(c, 3)
	}
}
