// Package hexgrid implements a hierarchical hexagonal spatial index modeled
// after Uber's H3 (the index the paper uses via the Kontur population
// dataset, resolution 8).
//
// Like H3 the index is built on a spherical icosahedron: a position is
// assigned to the nearest of the 20 icosahedron faces, projected onto a
// per-face azimuthal-equidistant plane, and snapped to a pointy-top
// hexagonal lattice whose pitch shrinks by sqrt(7) per resolution
// (aperture 7, with the classic ~19.1 degree rotation between successive
// resolutions). Cells are packed into a uint64 like H3 indexes.
//
// Differences from real H3, documented for the substitution record in
// DESIGN.md: pentagon cells are not modeled (positions that H3 would place
// in one of the 12 pentagons land in a regular hexagon here), and cells do
// not straddle face seams (a city on a seam maps to two disjoint lattices).
// Neither artifact matters for the paper's use of the index - hashing GPS
// points into ~1 km cells to join against a population raster - because the
// analysis only needs a deterministic point->cell map, cell centers, and
// cell areas. Published H3 mean cell areas are reproduced exactly via the
// resolution table (0.737 km^2 at resolution 8).
package hexgrid

import (
	"errors"
	"fmt"
	"math"

	"tagsim/internal/geo"
)

// MaxResolution is the finest supported resolution (matches H3).
const MaxResolution = 15

// Cell is a packed hexagonal cell index.
//
// Layout (most to least significant):
//
//	4 bits  resolution (0..15)
//	5 bits  icosahedron face (0..19)
//	27 bits i axial coordinate, offset by 2^26
//	27 bits j axial coordinate, offset by 2^26
//
// The zero value is an invalid cell (face 0 exists, but offset coordinates
// of zero encode an out-of-range axial pair), so Cell(0) never collides with
// a real cell produced by LatLonToCell.
type Cell uint64

const (
	axialBits   = 27
	axialOffset = 1 << 26
	axialMax    = 1<<axialBits - 1
)

// Invalid is the zero, never-produced cell value.
const Invalid Cell = 0

func packCell(res, face, i, j int) Cell {
	oi := i + axialOffset
	oj := j + axialOffset
	return Cell(uint64(res)<<59 | uint64(face)<<54 |
		uint64(oi)<<axialBits | uint64(oj))
}

// Resolution returns the cell's resolution in [0, MaxResolution].
func (c Cell) Resolution() int { return int(c >> 59) }

// Face returns the icosahedron face the cell lives on.
func (c Cell) Face() int { return int(c>>54) & 0x1f }

func (c Cell) axial() (i, j int) {
	i = int(c>>axialBits&axialMax) - axialOffset
	j = int(c&axialMax) - axialOffset
	return i, j
}

// Valid reports whether c encodes a well-formed cell.
func (c Cell) Valid() bool {
	if c == Invalid {
		return false
	}
	if c.Face() >= 20 {
		return false
	}
	i, j := c.axial()
	return i > -axialOffset && i < axialOffset && j > -axialOffset && j < axialOffset
}

// String renders the cell like an H3 index: a 16-digit hex literal.
func (c Cell) String() string { return fmt.Sprintf("%016x", uint64(c)) }

// ParseCell parses the String form.
func ParseCell(s string) (Cell, error) {
	var v uint64
	if _, err := fmt.Sscanf(s, "%x", &v); err != nil {
		return Invalid, fmt.Errorf("hexgrid: parse cell %q: %w", s, err)
	}
	c := Cell(v)
	if !c.Valid() {
		return Invalid, errors.New("hexgrid: parsed cell is invalid")
	}
	return c, nil
}

// meanHexAreaKm2 is the published H3 average hexagon area per resolution
// (km^2), from the H3 cell statistics table. Our lattice pitch is derived
// from these values so that cell areas match H3's at every resolution.
var meanHexAreaKm2 = [MaxResolution + 1]float64{
	4357449.416078381, 609788.441794133, 86801.780398997,
	12393.434655088, 1770.347654491, 252.903858182,
	36.129062164, 5.161293360, 0.737327598,
	0.105332513, 0.015047502, 0.002149643,
	0.000307092, 0.000043870, 0.000006267, 0.000000895,
}

// MeanHexAreaKm2 returns the average cell area at a resolution in km^2.
func MeanHexAreaKm2(res int) float64 {
	if res < 0 || res > MaxResolution {
		return math.NaN()
	}
	return meanHexAreaKm2[res]
}

// NumCells returns the total number of H3 cells at a resolution,
// c = 2 + 120*7^r (the formula quoted in the paper's appendix).
func NumCells(res int) uint64 {
	n := uint64(120)
	for i := 0; i < res; i++ {
		n *= 7
	}
	return n + 2
}

// EdgeLengthM returns the edge length (meters) of a regular hexagon with
// the published mean area for the resolution.
func EdgeLengthM(res int) float64 {
	areaM2 := MeanHexAreaKm2(res) * 1e6
	// area = 3*sqrt(3)/2 * edge^2
	return math.Sqrt(2 * areaM2 / (3 * math.Sqrt(3)))
}

// hexSize returns the circumradius (= edge length) of the lattice hexagons
// at a resolution, in plane meters.
func hexSize(res int) float64 { return EdgeLengthM(res) }

// icosahedron geometry, built once at init.
type face struct {
	center vec3 // unit vector to face center
	e1, e2 vec3 // orthonormal tangent basis
}

var faces [20]face

// rotation between successive aperture-7 resolutions: asin(sqrt(3)/(2*sqrt(7)))
var res7RotRad = math.Asin(math.Sqrt(3) / (2 * math.Sqrt(7)))

func init() {
	phi := (1 + math.Sqrt(5)) / 2
	verts := []vec3{
		{-1, phi, 0}, {1, phi, 0}, {-1, -phi, 0}, {1, -phi, 0},
		{0, -1, phi}, {0, 1, phi}, {0, -1, -phi}, {0, 1, -phi},
		{phi, 0, -1}, {phi, 0, 1}, {-phi, 0, -1}, {-phi, 0, 1},
	}
	for i := range verts {
		verts[i] = verts[i].normalize()
	}
	tris := [20][3]int{
		{0, 11, 5}, {0, 5, 1}, {0, 1, 7}, {0, 7, 10}, {0, 10, 11},
		{1, 5, 9}, {5, 11, 4}, {11, 10, 2}, {10, 7, 6}, {7, 1, 8},
		{3, 9, 4}, {3, 4, 2}, {3, 2, 6}, {3, 6, 8}, {3, 8, 9},
		{4, 9, 5}, {2, 4, 11}, {6, 2, 10}, {8, 6, 7}, {9, 8, 1},
	}
	for f, tri := range tris {
		c := verts[tri[0]].add(verts[tri[1]]).add(verts[tri[2]]).normalize()
		// Tangent basis: project the first vertex direction into the
		// tangent plane for e1, complete with the cross product.
		v0 := verts[tri[0]]
		e1 := v0.sub(c.scale(v0.dot(c))).normalize()
		e2 := c.cross(e1)
		faces[f] = face{center: c, e1: e1, e2: e2}
	}
}

type vec3 struct{ x, y, z float64 }

func (a vec3) add(b vec3) vec3      { return vec3{a.x + b.x, a.y + b.y, a.z + b.z} }
func (a vec3) sub(b vec3) vec3      { return vec3{a.x - b.x, a.y - b.y, a.z - b.z} }
func (a vec3) scale(s float64) vec3 { return vec3{a.x * s, a.y * s, a.z * s} }
func (a vec3) dot(b vec3) float64   { return a.x*b.x + a.y*b.y + a.z*b.z }
func (a vec3) cross(b vec3) vec3 {
	return vec3{a.y*b.z - a.z*b.y, a.z*b.x - a.x*b.z, a.x*b.y - a.y*b.x}
}
func (a vec3) norm() float64 { return math.Sqrt(a.dot(a)) }
func (a vec3) normalize() vec3 {
	n := a.norm()
	if n == 0 {
		return a
	}
	return a.scale(1 / n)
}

func latLonToVec(p geo.LatLon) vec3 {
	lat, lon := p.Radians()
	cl := math.Cos(lat)
	return vec3{cl * math.Cos(lon), cl * math.Sin(lon), math.Sin(lat)}
}

func vecToLatLon(v vec3) geo.LatLon {
	lat := math.Asin(clamp(v.z, -1, 1))
	lon := math.Atan2(v.y, v.x)
	return geo.FromRadians(lat, lon)
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// nearestFace returns the face whose center is closest to the unit vector.
func nearestFace(v vec3) int {
	best, bestDot := 0, math.Inf(-1)
	for i := range faces {
		if d := faces[i].center.dot(v); d > bestDot {
			best, bestDot = i, d
		}
	}
	return best
}

// facePlane projects a unit vector onto the face's azimuthal-equidistant
// plane, returning meters east/north of the face center in the face basis.
func facePlane(f int, v vec3) (x, y float64) {
	fc := faces[f]
	d := clamp(fc.center.dot(v), -1, 1)
	theta := math.Acos(d) // angular distance from face center
	if theta < 1e-12 {
		return 0, 0
	}
	// Direction of v in the tangent plane.
	t := v.sub(fc.center.scale(d)).normalize()
	r := theta * geo.EarthRadiusMeters
	return r * t.dot(fc.e1), r * t.dot(fc.e2)
}

// planeToVec inverts facePlane.
func planeToVec(f int, x, y float64) vec3 {
	fc := faces[f]
	r := math.Hypot(x, y)
	if r < 1e-9 {
		return fc.center
	}
	theta := r / geo.EarthRadiusMeters
	t := fc.e1.scale(x / r).add(fc.e2.scale(y / r))
	return fc.center.scale(math.Cos(theta)).add(t.scale(math.Sin(theta))).normalize()
}

// resRotation returns the lattice rotation angle at a resolution. Successive
// resolutions rotate by the aperture-7 angle, mimicking H3's class II/III
// alternation.
func resRotation(res int) float64 { return float64(res) * res7RotRad }

// planeToAxial converts plane meters to fractional axial coordinates of a
// pointy-top lattice with circumradius size rotated by rot radians.
func planeToAxial(x, y, size, rot float64) (qf, rf float64) {
	// Undo the lattice rotation.
	cos, sin := math.Cos(-rot), math.Sin(-rot)
	xr := x*cos - y*sin
	yr := x*sin + y*cos
	qf = (math.Sqrt(3)/3*xr - 1.0/3*yr) / size
	rf = (2.0 / 3 * yr) / size
	return qf, rf
}

// axialToPlane converts axial coordinates back to plane meters.
func axialToPlane(q, r float64, size, rot float64) (x, y float64) {
	x = size * math.Sqrt(3) * (q + r/2)
	y = size * 1.5 * r
	cos, sin := math.Cos(rot), math.Sin(rot)
	return x*cos - y*sin, x*sin + y*cos
}

// axialRound rounds fractional axial coordinates to the containing hexagon
// using cube-coordinate rounding.
func axialRound(qf, rf float64) (q, r int) {
	sf := -qf - rf
	qr := math.Round(qf)
	rr := math.Round(rf)
	sr := math.Round(sf)
	dq := math.Abs(qr - qf)
	dr := math.Abs(rr - rf)
	ds := math.Abs(sr - sf)
	switch {
	case dq > dr && dq > ds:
		qr = -rr - sr
	case dr > ds:
		rr = -qr - sr
	}
	return int(qr), int(rr)
}

// LatLonToCell returns the cell containing p at the given resolution.
// It panics if res is out of range; positions are always mappable.
//
// Cells are canonicalized across face seams: when a cell hashed on one
// face has its center on a neighboring face, the index re-hashes at the
// center's face until it reaches a fixed point (breaking the rare two-face
// cycle by choosing the smallest index). This guarantees the idempotence
// the analysis relies on: LatLonToCell(CellToLatLon(c), res) == c.
func LatLonToCell(p geo.LatLon, res int) Cell {
	if res < 0 || res > MaxResolution {
		panic(fmt.Sprintf("hexgrid: resolution %d out of range", res))
	}
	c := hashOnFace(nearestFace(latLonToVec(p)), p, res)
	visited := map[Cell]bool{c: true}
	for iter := 0; iter < 6; iter++ {
		center := CellToLatLon(c)
		f := nearestFace(latLonToVec(center))
		if f == c.Face() {
			return c
		}
		next := hashOnFace(f, center, res)
		if visited[next] {
			// Cycle across a face seam: pick the smallest member so every
			// entry point into the cycle resolves to the same cell.
			best := next
			for v := range visited {
				if v < best {
					best = v
				}
			}
			return best
		}
		visited[next] = true
		c = next
	}
	return c
}

// hashOnFace snaps p to the lattice of a specific face.
func hashOnFace(f int, p geo.LatLon, res int) Cell {
	x, y := facePlane(f, latLonToVec(p))
	qf, rf := planeToAxial(x, y, hexSize(res), resRotation(res))
	q, r := axialRound(qf, rf)
	return packCell(res, f, q, r)
}

// CellToLatLon returns the cell's center position.
func CellToLatLon(c Cell) geo.LatLon {
	res := c.Resolution()
	q, r := c.axial()
	x, y := axialToPlane(float64(q), float64(r), hexSize(res), resRotation(res))
	return vecToLatLon(planeToVec(c.Face(), x, y))
}

// Boundary returns the six vertices of the cell in order.
func Boundary(c Cell) []geo.LatLon {
	res := c.Resolution()
	q, r := c.axial()
	cx, cy := axialToPlane(float64(q), float64(r), hexSize(res), resRotation(res))
	size := hexSize(res)
	rot := resRotation(res)
	out := make([]geo.LatLon, 6)
	for k := 0; k < 6; k++ {
		// Pointy-top vertices at 30 + 60k degrees, then lattice rotation.
		a := math.Pi/6 + float64(k)*math.Pi/3 + rot
		vx := cx + size*math.Cos(a)
		vy := cy + size*math.Sin(a)
		out[k] = vecToLatLon(planeToVec(c.Face(), vx, vy))
	}
	return out
}

// Neighbors returns the (up to) six cells adjacent to c. Adjacency is
// computed geometrically - the six surrounding centers are re-hashed - so it
// remains consistent for cells near face seams, where the neighbor may live
// on a different face's lattice.
func Neighbors(c Cell) []Cell {
	res := c.Resolution()
	center := CellToLatLon(c)
	// Neighbor centers lie at distance sqrt(3)*edge in the plane.
	d := math.Sqrt(3) * hexSize(res)
	seen := make(map[Cell]bool, 7)
	seen[c] = true
	out := make([]Cell, 0, 6)
	for k := 0; k < 6; k++ {
		bearing := float64(k) * 60
		n := LatLonToCell(geo.Destination(center, bearing, d), res)
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	return out
}

// GridDisk returns all cells within k lattice steps of c (including c),
// discovered by breadth-first expansion over Neighbors.
func GridDisk(c Cell, k int) []Cell {
	seen := map[Cell]bool{c: true}
	frontier := []Cell{c}
	out := []Cell{c}
	for step := 0; step < k; step++ {
		var next []Cell
		for _, cell := range frontier {
			for _, n := range Neighbors(cell) {
				if !seen[n] {
					seen[n] = true
					next = append(next, n)
					out = append(out, n)
				}
			}
		}
		frontier = next
	}
	return out
}

// Parent returns the cell at the coarser resolution containing c's center.
// It returns Invalid when c is already at resolution 0.
func Parent(c Cell) Cell {
	res := c.Resolution()
	if res == 0 {
		return Invalid
	}
	return LatLonToCell(CellToLatLon(c), res-1)
}

// CenterChild returns the child cell at the finer resolution containing c's
// center, or Invalid at MaxResolution.
func CenterChild(c Cell) Cell {
	res := c.Resolution()
	if res >= MaxResolution {
		return Invalid
	}
	return LatLonToCell(CellToLatLon(c), res+1)
}

// CoverBBox returns the set of cells at a resolution that cover the bounding
// box, found by sampling the box on a grid finer than the cell pitch and
// hashing every sample. The result is deduplicated and includes every cell
// whose center falls in the box (cells only partially overlapping the box
// edges may be included too).
func CoverBBox(b geo.BBox, res int) []Cell {
	step := EdgeLengthM(res) * 0.8
	if step <= 0 {
		return nil
	}
	latStep := step / geo.EarthRadiusMeters * 180 / math.Pi
	midLat := (b.MinLat + b.MaxLat) / 2
	cosLat := math.Cos(midLat * math.Pi / 180)
	if cosLat < 0.01 {
		cosLat = 0.01
	}
	lonStep := latStep / cosLat
	seen := make(map[Cell]bool)
	var out []Cell
	for lat := b.MinLat; lat <= b.MaxLat+latStep; lat += latStep {
		for lon := b.MinLon; lon <= b.MaxLon+lonStep; lon += lonStep {
			c := LatLonToCell(geo.LatLon{Lat: clamp(lat, -90, 90), Lon: geo.NormalizeLon(lon)}, res)
			if !seen[c] {
				seen[c] = true
				out = append(out, c)
			}
		}
	}
	return out
}
