package pipeline

import (
	"bytes"
	"testing"

	"tagsim/internal/cloud"
	"tagsim/internal/trace"
)

// TestConsumerStats pins the pipeline's progress accounting: after Wait,
// every consumer reports its self-declared name, identical batch and
// record counts (they all saw the same merged stream), an empty queue,
// and zero lag.
func TestConsumerStats(t *testing.T) {
	const nWorlds, nPer = 3, 120
	services := map[trace.Vendor]*cloud.Service{
		trace.VendorApple:   cloud.NewService(trace.VendorApple),
		trace.VendorSamsung: cloud.NewService(trace.VendorSamsung),
	}
	var buf bytes.Buffer
	c := &collector{}
	p := New(nWorlds, Config{FlushEvery: 16},
		NewStoreIngester(services),
		NewCampaignAccumulator(nWorlds, 1),
		NewReportSink(&buf, 0),
		c)
	runWorlds(p, nWorlds, nPer, 7)
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}

	stats := p.ConsumerStats()
	wantNames := []string{"store", "accumulate", "disk", "consumer3"}
	if len(stats) != len(wantNames) {
		t.Fatalf("got %d consumers, want %d", len(stats), len(wantNames))
	}
	for i, st := range stats {
		if st.Name != wantNames[i] {
			t.Errorf("consumer %d named %q, want %q", i, st.Name, wantNames[i])
		}
		if st.Batches != stats[0].Batches || st.Records != stats[0].Records {
			t.Errorf("consumer %q progressed %d/%d, consumer %q %d/%d — same stream, same counts",
				st.Name, st.Batches, st.Records, stats[0].Name, stats[0].Batches, stats[0].Records)
		}
		if st.QueueDepth != 0 || st.Lag != 0 {
			t.Errorf("consumer %q not drained after Wait: depth=%d lag=%d", st.Name, st.QueueDepth, st.Lag)
		}
	}
	if stats[0].Batches == 0 || stats[0].Records == 0 {
		t.Fatalf("no progress recorded: %+v", stats[0])
	}
	if got := uint64(len(c.batches)); got != stats[0].Batches {
		t.Fatalf("collector saw %d batches, stats say %d", got, stats[0].Batches)
	}
}
