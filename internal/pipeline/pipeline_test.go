package pipeline

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"tagsim/internal/cloud"
	"tagsim/internal/geo"
	"tagsim/internal/trace"
)

var (
	t0   = time.Date(2022, 3, 7, 0, 0, 0, 0, time.UTC)
	base = geo.LatLon{Lat: 24.45, Lon: 54.37}
)

// synthReport fabricates world w's i-th report deterministically.
func synthReport(w, i int) trace.Report {
	at := t0.Add(time.Duration(w)*24*time.Hour + time.Duration(i)*200*time.Second)
	v := trace.VendorApple
	tag := "airtag-1"
	if i%3 == 1 {
		v, tag = trace.VendorSamsung, "smarttag-1"
	}
	return trace.Report{
		T: at.Add(2 * time.Second), HeardAt: at,
		TagID: tag, Vendor: v,
		ReporterID: fmt.Sprintf("w%d-dev%03d", w, i),
		Pos:        geo.Destination(base, float64(i%360), float64(w*100+i)),
		RSSI:       -40 - float64(i%50),
	}
}

func synthFix(w, i int) trace.GroundTruth {
	at := t0.Add(time.Duration(w)*24*time.Hour + time.Duration(i)*5*time.Second)
	return trace.GroundTruth{T: at, Pos: geo.Destination(base, float64(i%360), float64(i)), VantageID: fmt.Sprintf("vp-%d", w), UploadedAt: at.Add(time.Minute)}
}

func synthCrawl(w, i int) trace.CrawlRecord {
	at := t0.Add(time.Duration(w)*24*time.Hour + time.Duration(i)*time.Minute)
	return trace.CrawlRecord{
		CrawlT: at, TagID: "airtag-1", Vendor: trace.VendorApple,
		Pos: geo.Destination(base, float64(i%7)*10, float64(i%11)*50), ReportedAt: at.Add(-time.Minute), AgeMinutes: 1,
	}
}

// collector keeps every batch it sees (batches are immutable).
type collector struct {
	mu      sync.Mutex
	batches []Batch
	closed  bool
}

func (c *collector) Consume(b Batch) error {
	c.mu.Lock()
	c.batches = append(c.batches, b)
	c.mu.Unlock()
	return nil
}

func (c *collector) Close() error {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	return nil
}

// runWorlds drives nWorlds concurrent emitters with nPerWorld reports
// each (plus a few fixes and crawls), sleeping pseudo-randomly to
// shuffle the real-time interleaving between runs.
func runWorlds(p *Pipeline, nWorlds, nPerWorld int, seed int64) {
	var wg sync.WaitGroup
	for w := 0; w < nWorlds; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)))
			em := p.World(w)
			em.RegisterTag(trace.VendorApple, "airtag-1")
			em.RegisterTag(trace.VendorSamsung, "smarttag-1")
			for i := 0; i < nPerWorld; i++ {
				em.Report(synthReport(w, i))
				if i%5 == 0 {
					em.Fixes([]trace.GroundTruth{synthFix(w, i)})
				}
				if i%7 == 0 {
					em.Crawl(synthCrawl(w, i))
				}
				if rng.Intn(50) == 0 {
					time.Sleep(time.Duration(rng.Intn(200)) * time.Microsecond)
				}
			}
			em.Close()
		}(w)
	}
	wg.Wait()
}

// TestOrderedMergeDeterminism is the pipeline's core contract: however
// the world goroutines interleave in real time, every consumer sees the
// same batch stream — world-major, seq-contiguous, byte-identical
// across runs.
func TestOrderedMergeDeterminism(t *testing.T) {
	const nWorlds, nPer = 5, 300
	run := func(seed int64) []Batch {
		c := &collector{}
		p := New(nWorlds, Config{FlushEvery: 64}, c)
		runWorlds(p, nWorlds, nPer, seed)
		if err := p.Wait(); err != nil {
			t.Fatal(err)
		}
		if !c.closed {
			t.Fatal("consumer not closed")
		}
		return c.batches
	}
	a := run(1)
	b := run(99) // different sleep pattern, same logical stream

	// Ordering: world-major, seq contiguous from 0, exactly one Final.
	world, seq := 0, uint64(0)
	for _, batch := range a {
		if batch.World != world || batch.Seq != seq {
			t.Fatalf("batch out of order: world=%d seq=%d, want world=%d seq=%d", batch.World, batch.Seq, world, seq)
		}
		if batch.Final {
			world++
			seq = 0
		} else {
			seq++
		}
	}
	if world != nWorlds {
		t.Fatalf("saw final batches for %d worlds, want %d", world, nWorlds)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("merged batch stream differs between runs with different real-time interleavings")
	}
}

// TestEmitterFlushBoundaries pins the deterministic count-based
// batching: FlushEvery records per batch, remainder in the final batch.
func TestEmitterFlushBoundaries(t *testing.T) {
	c := &collector{}
	p := New(1, Config{FlushEvery: 10}, c)
	em := p.World(0)
	for i := 0; i < 25; i++ {
		em.Report(synthReport(0, i))
	}
	em.Close()
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	sizes := make([]int, len(c.batches))
	for i, b := range c.batches {
		sizes[i] = b.Len()
	}
	if want := []int{10, 10, 5}; !reflect.DeepEqual(sizes, want) {
		t.Errorf("batch sizes = %v, want %v", sizes, want)
	}
	if !c.batches[2].Final || c.batches[0].Final || c.batches[1].Final {
		t.Error("only the last batch must be Final")
	}
}

// TestEmptyWorldStillFinal: a world with nothing to say still emits its
// end-of-world marker so consumers can account for every world.
func TestEmptyWorldStillFinal(t *testing.T) {
	c := &collector{}
	p := New(2, Config{}, c)
	go func() { p.World(1).Close() }()
	p.World(0).Report(synthReport(0, 0))
	p.World(0).Close()
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	if len(c.batches) != 2 {
		t.Fatalf("got %d batches, want 2", len(c.batches))
	}
	if !c.batches[0].Final || !c.batches[1].Final {
		t.Error("both worlds must emit a Final batch")
	}
	if c.batches[1].Len() != 0 {
		t.Error("empty world's final batch must be empty")
	}
}

// failingConsumer errors on the first Consume; Close must still run and
// the pipeline must keep draining (no stuck emitters).
type failingConsumer struct {
	closed bool
}

func (f *failingConsumer) Consume(Batch) error { return errors.New("disk full") }
func (f *failingConsumer) Close() error {
	f.closed = true
	return nil
}

func TestConsumerErrorPropagates(t *testing.T) {
	f := &failingConsumer{}
	ok := &collector{}
	p := New(3, Config{FlushEvery: 8}, f, ok)
	runWorlds(p, 3, 100, 7)
	err := p.Wait()
	if err == nil || err.Error() != "disk full" {
		t.Fatalf("Wait error = %v, want disk full", err)
	}
	if !f.closed {
		t.Error("failing consumer must still be closed")
	}
	// The healthy consumer saw the complete stream regardless.
	finals := 0
	for _, b := range ok.batches {
		if b.Final {
			finals++
		}
	}
	if finals != 3 {
		t.Errorf("healthy consumer saw %d finals, want 3", finals)
	}
}

// TestStoreIngesterMatchesDirectRestore: streaming reports through the
// pipeline into serving stores must produce the exact snapshot a direct
// ordered restore produces.
func TestStoreIngesterMatchesDirectRestore(t *testing.T) {
	const nWorlds, nPer = 4, 250
	newServices := func() map[trace.Vendor]*cloud.Service {
		return map[trace.Vendor]*cloud.Service{
			trace.VendorApple:   cloud.NewService(trace.VendorApple),
			trace.VendorSamsung: cloud.NewService(trace.VendorSamsung),
		}
	}
	streamed := newServices()
	si := NewStoreIngester(streamed)
	p := New(nWorlds, Config{FlushEvery: 32}, si)
	runWorlds(p, nWorlds, nPer, 3)
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	if si.Ingested() == 0 {
		t.Fatal("no reports ingested")
	}

	direct := newServices()
	direct[trace.VendorApple].Register("airtag-1")
	direct[trace.VendorSamsung].Register("smarttag-1")
	for w := 0; w < nWorlds; w++ {
		var perVendor [2][]trace.Report
		for i := 0; i < nPer; i++ {
			r := synthReport(w, i)
			perVendor[r.Vendor] = append(perVendor[r.Vendor], r)
		}
		direct[trace.VendorApple].Restore(perVendor[trace.VendorApple])
		direct[trace.VendorSamsung].Restore(perVendor[trace.VendorSamsung])
	}
	for _, v := range []trace.Vendor{trace.VendorApple, trace.VendorSamsung} {
		got, want := streamed[v].Snapshot(), direct[v].Snapshot()
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: streamed snapshot differs from direct restore", v)
		}
	}
}

// TestCampaignAccumulatorDistinct: the accumulator must retain exactly
// the distinct crawl records — per world in isolation, and campaign-
// wide with dedup state carried across world boundaries.
func TestCampaignAccumulatorDistinct(t *testing.T) {
	const nWorlds = 3
	acc := NewCampaignAccumulator(nWorlds, 1)
	p := New(nWorlds, Config{FlushEvery: 16}, acc)
	perWorld := make([][]trace.CrawlRecord, nWorlds)
	var all []trace.CrawlRecord
	var wg sync.WaitGroup
	for w := 0; w < nWorlds; w++ {
		recs := make([]trace.CrawlRecord, 0, 120)
		for i := 0; i < 120; i++ {
			recs = append(recs, synthCrawl(w, i/3)) // repeats: crawler re-observing one report
		}
		perWorld[w] = recs
		all = append(all, recs...)
		wg.Add(1)
		go func(w int, recs []trace.CrawlRecord) {
			defer wg.Done()
			em := p.World(w)
			for i, rec := range recs {
				em.Crawl(rec)
				if i%10 == 0 {
					em.Fixes([]trace.GroundTruth{synthFix(w, i)})
				}
			}
			em.Close()
		}(w, recs)
	}
	wg.Wait()
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	st := acc.State()
	if st == nil {
		t.Fatal("no state after Wait")
	}
	for w := 0; w < nWorlds; w++ {
		want := trace.DistinctReports(perWorld[w])
		got := st.Worlds[w].Crawls[trace.VendorApple]
		if !reflect.DeepEqual(got, want) {
			t.Errorf("world %d distinct crawls: got %d, want %d", w, len(got), len(want))
		}
	}
	if got, want := st.Merged.Crawls[trace.VendorApple], trace.DistinctReports(all); !reflect.DeepEqual(got, want) {
		t.Errorf("campaign distinct crawls: got %d, want %d", len(got), len(want))
	}
	if st.Truth == nil || st.Indexes[trace.VendorCombined] == nil {
		t.Error("truth index and combined analysis index must be built")
	}
}

func TestSetStreamingToggle(t *testing.T) {
	was := SetStreaming(false)
	if !was {
		t.Error("streaming must default to enabled")
	}
	if Streaming() {
		t.Error("disable did not stick")
	}
	SetStreaming(was)
	if !Streaming() {
		t.Error("restore did not stick")
	}
}
