package pipeline

import (
	"sync/atomic"

	"tagsim/internal/cloud"
	"tagsim/internal/trace"
)

// StoreIngester streams the campaign's accepted reports into serving
// stores while the simulation runs — the live counterpart of
// cmd/tagserve's after-the-fact Restore from country cloud dumps. The
// reports arriving here already passed the per-world clouds' rate caps,
// so they load through Restore (no re-capping), exactly like the batch
// path; per-tag report order is preserved by the ordered merge, which
// makes the final store snapshot byte-identical to the batch restore.
//
// The destination services may be queried concurrently (the HTTP query
// API, the load harness) throughout: the sharded store's locks make
// every read safe against the ingest stream, which is what
// `tagserve -live` demonstrates.
type StoreIngester struct {
	services map[trace.Vendor]*cloud.Service
	ingested atomic.Uint64
	dropped  atomic.Uint64
}

// NewStoreIngester builds the consumer over per-vendor destination
// services. Reports for vendors without a service are counted as
// dropped, not errors (mirroring the radio plane's unserved vendors).
func NewStoreIngester(services map[trace.Vendor]*cloud.Service) *StoreIngester {
	return &StoreIngester{services: services}
}

// Consume implements Consumer: registrations first, then the batch's
// reports grouped per vendor in arrival order.
func (si *StoreIngester) Consume(b Batch) error {
	for _, reg := range b.Registrations {
		if svc, ok := si.services[reg.Vendor]; ok {
			svc.Register(reg.TagID)
		}
	}
	if len(b.Reports) == 0 {
		return nil
	}
	perVendor := make(map[trace.Vendor][]trace.Report)
	for _, r := range b.Reports {
		perVendor[r.Vendor] = append(perVendor[r.Vendor], r)
	}
	for v, rs := range perVendor {
		svc, ok := si.services[v]
		if !ok {
			si.dropped.Add(uint64(len(rs)))
			continue
		}
		svc.Restore(rs)
		si.ingested.Add(uint64(len(rs)))
	}
	return nil
}

// Close implements Consumer.
func (si *StoreIngester) Close() error { return nil }

// Name labels this consumer in pipeline stats.
func (si *StoreIngester) Name() string { return "store" }

// Ingested returns how many reports have been loaded so far. Safe to
// read concurrently with the stream (tagserve's live stats).
func (si *StoreIngester) Ingested() uint64 { return si.ingested.Load() }

// Dropped returns how many reports had no destination service.
func (si *StoreIngester) Dropped() uint64 { return si.dropped.Load() }
