package pipeline

import (
	"bytes"
	"io"
	"sync"
	"testing"

	"tagsim/internal/trace"
)

func synthReports(n int) []trace.Report {
	out := make([]trace.Report, n)
	for i := range out {
		out[i] = synthReport(i%3, i)
	}
	return out
}

// reportsEqual compares decoded reports against originals on every
// field, via UnixNano for times (the codec stores nanos, not Go's
// internal time representation).
func reportsEqual(a, b []trace.Report) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		x, y := a[i], b[i]
		if x.T.UnixNano() != y.T.UnixNano() || x.HeardAt.UnixNano() != y.HeardAt.UnixNano() ||
			x.TagID != y.TagID || x.Vendor != y.Vendor || x.ReporterID != y.ReporterID ||
			x.Pos != y.Pos || x.RSSI != y.RSSI {
			return false
		}
	}
	return true
}

func TestColumnarRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 5, 4096, 5000} {
		reports := synthReports(n)
		var buf bytes.Buffer
		if err := WriteReports(&buf, reports, 0); err != nil {
			t.Fatal(err)
		}
		got, err := ReadReports(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !reportsEqual(got, reports) {
			t.Errorf("n=%d: round trip diverged (%d -> %d reports)", n, len(reports), len(got))
		}
	}
}

// TestColumnarFramingByteIdentical: the file bytes depend only on the
// report sequence and the flush threshold — not on how the stream was
// chunked on the way in. This is what pins a streamed dump
// byte-identical to a batch-written one.
func TestColumnarFramingByteIdentical(t *testing.T) {
	reports := synthReports(3000)
	var oneShot bytes.Buffer
	if err := WriteReports(&oneShot, reports, 256); err != nil {
		t.Fatal(err)
	}
	var dribbled bytes.Buffer
	w := NewReportWriter(&dribbled, 256)
	for i := 0; i < len(reports); {
		step := 1 + (i*7)%13 // uneven chunks
		if i+step > len(reports) {
			step = len(reports) - i
		}
		if err := w.Append(reports[i : i+step]...); err != nil {
			t.Fatal(err)
		}
		i += step
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(oneShot.Bytes(), dribbled.Bytes()) {
		t.Error("file bytes depend on input chunking")
	}
}

// TestReportSinkThroughPipeline streams reports through the full
// pipeline into a sink and checks the file equals the batch dump of the
// same logical sequence.
func TestReportSinkThroughPipeline(t *testing.T) {
	const nWorlds, nPer = 3, 400
	var streamed bytes.Buffer
	p := New(nWorlds, Config{FlushEvery: 37}, NewReportSink(&streamed, 128))
	var wg sync.WaitGroup
	for w := 0; w < nWorlds; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			em := p.World(w)
			for i := 0; i < nPer; i++ {
				em.Report(synthReport(w, i))
			}
			em.Close()
		}(w)
	}
	wg.Wait()
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	var all []trace.Report
	for w := 0; w < nWorlds; w++ {
		for i := 0; i < nPer; i++ {
			all = append(all, synthReport(w, i))
		}
	}
	var batch bytes.Buffer
	if err := WriteReports(&batch, all, 128); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(streamed.Bytes(), batch.Bytes()) {
		t.Error("streamed sink bytes differ from batch dump of the same sequence")
	}
	// And the streamed file reads back to the logical sequence.
	got, err := ReadReports(bytes.NewReader(streamed.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reportsEqual(got, all) {
		t.Error("streamed file does not decode to the merged report sequence")
	}
}

func TestColumnarReaderErrors(t *testing.T) {
	reports := synthReports(10)
	var buf bytes.Buffer
	if err := WriteReports(&buf, reports, 4); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	if _, err := ReadReports(bytes.NewReader([]byte("NOTRPT0\n"))); err == nil {
		t.Error("bad magic must error")
	}
	if _, err := ReadReports(bytes.NewReader(full[:4])); err == nil {
		t.Error("truncated header must error")
	}
	if _, err := ReadReports(bytes.NewReader(full[:len(full)-3])); err == nil {
		t.Error("truncated frame must error")
	}
	// Corrupt length prefix: implausibly large.
	corrupt := append([]byte(nil), full...)
	corrupt[8], corrupt[9], corrupt[10], corrupt[11] = 0xff, 0xff, 0xff, 0x7f
	if _, err := ReadReports(bytes.NewReader(corrupt)); err == nil {
		t.Error("implausible frame length must error")
	}

	// Streaming reader terminates with io.EOF exactly at the end.
	rr, err := NewReportReader(bytes.NewReader(full))
	if err != nil {
		t.Fatal(err)
	}
	frames := 0
	for {
		_, err := rr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		frames++
	}
	if frames != 3 { // 10 reports at 4 per frame
		t.Errorf("frames = %d, want 3", frames)
	}
}
