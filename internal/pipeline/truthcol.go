package pipeline

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sort"
	"time"

	"tagsim/internal/colfmt"
	"tagsim/internal/obs"
	"tagsim/internal/trace"
)

// The columnar ground-truth log is the report log's sibling for GPS
// tracks: a continental-scale campaign records hundreds of millions of
// vantage fixes, and holding them resident (~128 B each as structs)
// defeats the bounded-memory pipeline. Fixes spill to disk as they
// stream and the analysis plane reads them back through a seekable
// cursor (analysis.NewDiskTruthIndex), never holding more than a frame
// window.
//
// Layout (little-endian throughout):
//
//	file  := magic dataFrame* indexBlock trailer
//	magic := "TAGGTC1\n" (8 bytes)
//	dataFrame := u32 payloadBytes | payload        -- length-prefixed
//	payload :=
//	    u32 count
//	    i64 t[count]          -- GroundTruth.T, unix nanos
//	    i64 uploadedAt[count] -- GroundTruth.UploadedAt, unix nanos
//	    u64 lat[count]        -- math.Float64bits
//	    u64 lon[count]
//	    u64 speedKmh[count]
//	    strcol vantageID
//	strcol := (u32 len | bytes)*count
//	indexBlock := u32 0xFFFFFFFF | u32 payloadBytes | payload
//	index payload := u32 frameCount | (u64 offset | u32 count | i64 firstT | i64 lastT)*frameCount
//	trailer := u64 indexOffset | "TAGGTCX\n" (8 bytes)
//
// The time column leads each frame so a cursor can decode just the
// times (TruthFile.FrameTimes) without touching positions or strings.
// Streaming readers stop at the index sentinel — 0xFFFFFFFF can never
// be a data frame's length (it exceeds maxFrameBytes) — while seekable
// readers jump to the index via the fixed-size trailer and then serve
// random frame access through io.ReaderAt.
const (
	truthLogMagic     = "TAGGTC1\n"
	truthTrailerMagic = "TAGGTCX\n"
	truthIndexMark    = 0xFFFFFFFF
)

// obsTruthSpill counts bytes written to columnar ground-truth logs
// across the process (magic, frames, index, and trailer included).
var obsTruthSpill = obs.GetCounter("truth_spill_bytes_total")

// TruthFrame is one data frame's index entry: where it starts (the
// offset of its length prefix), how many fixes it holds, and the frame's
// first and last fix instants (unix nanos).
type TruthFrame struct {
	Offset int64
	Count  int
	FirstT int64
	LastT  int64
}

// The framing (length prefixes, the index sentinel, the seekable
// trailer) is internal/colfmt's shared codec.
//
// TruthWriter encodes ground-truth fixes into the columnar log. Strict
// writers (NewTruthWriter) enforce non-decreasing fix times, which is
// what entitles readers to binary-search the frame index; the pipeline's
// TruthSink relaxes this for raw multi-world export logs, whose index
// OpenTruthFile then refuses. Not safe for concurrent use.
type TruthWriter struct {
	w          *bufio.Writer
	batch      []trace.GroundTruth
	payload    []byte // reused frame-encode buffer
	flushEvery int
	strict     bool
	off        int64 // logical bytes written (magic + frames)
	frames     []TruthFrame
	lastT      int64
	hasLast    bool
	wroteMagic bool
	closed     bool
}

// NewTruthWriter builds a strict (time-sorted) writer framing every
// flushEvery fixes (<= 0 means DefaultSinkFlush).
func NewTruthWriter(w io.Writer, flushEvery int) *TruthWriter {
	if flushEvery <= 0 {
		flushEvery = DefaultSinkFlush
	}
	return &TruthWriter{w: bufio.NewWriter(w), flushEvery: flushEvery, strict: true}
}

// Append adds fixes to the current frame, writing frames as the
// threshold fills. Strict writers reject a fix earlier than its
// predecessor.
func (w *TruthWriter) Append(fixes ...trace.GroundTruth) error {
	if w.closed {
		return fmt.Errorf("pipeline: append to closed TruthWriter")
	}
	for _, f := range fixes {
		t := f.T.UnixNano()
		if w.strict && w.hasLast && t < w.lastT {
			return fmt.Errorf("pipeline: truth log requires non-decreasing fix times (%v after %v)",
				f.T, time.Unix(0, w.lastT).UTC())
		}
		w.lastT, w.hasLast = t, true
		w.batch = append(w.batch, f)
		if len(w.batch) >= w.flushEvery {
			if err := w.writeFrame(); err != nil {
				return err
			}
		}
	}
	return nil
}

// Close writes the final partial frame, the frame index, and the
// trailer, then flushes. It does not close the underlying writer.
func (w *TruthWriter) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	if len(w.batch) > 0 {
		if err := w.writeFrame(); err != nil {
			return err
		}
	}
	if !w.wroteMagic {
		w.wroteMagic = true
		if _, err := w.w.WriteString(truthLogMagic); err != nil {
			return err
		}
		w.off += int64(len(truthLogMagic))
	}
	indexOffset := w.off
	p := w.payload[:0]
	p = colfmt.AppendU32(p, uint32(len(w.frames)))
	for _, fr := range w.frames {
		p = colfmt.AppendU64(p, uint64(fr.Offset))
		p = colfmt.AppendU32(p, uint32(fr.Count))
		p = colfmt.AppendI64(p, fr.FirstT)
		p = colfmt.AppendI64(p, fr.LastT)
	}
	var mark [4]byte
	binary.LittleEndian.PutUint32(mark[:], truthIndexMark)
	if _, err := w.w.Write(mark[:]); err != nil {
		return err
	}
	if err := colfmt.WriteFrame(w.w, p); err != nil {
		return err
	}
	if err := colfmt.WriteTrailer(w.w, indexOffset, truthTrailerMagic); err != nil {
		return err
	}
	obsTruthSpill.Add(uint64(4 + 4 + len(p) + colfmt.TrailerLen))
	return w.w.Flush()
}

func (w *TruthWriter) writeFrame() error {
	if !w.wroteMagic {
		w.wroteMagic = true
		if _, err := w.w.WriteString(truthLogMagic); err != nil {
			return err
		}
		w.off += int64(len(truthLogMagic))
		obsTruthSpill.Add(uint64(len(truthLogMagic)))
	}
	fs := w.batch
	size := 4 // count
	size += len(fs) * (8 + 8 + 8 + 8 + 8)
	for _, f := range fs {
		size += colfmt.StrSize(f.VantageID)
	}
	if size > maxFrameBytes {
		return fmt.Errorf("pipeline: truth frame of %d fixes is %d bytes, exceeding the %d-byte frame cap; use a smaller flushEvery", len(fs), size, maxFrameBytes)
	}
	p := w.payload[:0]
	p = colfmt.AppendU32(p, uint32(len(fs)))
	for _, f := range fs {
		p = colfmt.AppendI64(p, f.T.UnixNano())
	}
	for _, f := range fs {
		p = colfmt.AppendI64(p, f.UploadedAt.UnixNano())
	}
	for _, f := range fs {
		p = colfmt.AppendF64(p, f.Pos.Lat)
	}
	for _, f := range fs {
		p = colfmt.AppendF64(p, f.Pos.Lon)
	}
	for _, f := range fs {
		p = colfmt.AppendF64(p, f.SpeedKmh)
	}
	for _, f := range fs {
		p = colfmt.AppendStr(p, f.VantageID)
	}
	w.payload = p
	if err := colfmt.WriteFrame(w.w, p); err != nil {
		return err
	}
	w.frames = append(w.frames, TruthFrame{
		Offset: w.off,
		Count:  len(fs),
		FirstT: fs[0].T.UnixNano(),
		LastT:  fs[len(fs)-1].T.UnixNano(),
	})
	w.off += colfmt.FrameSize(len(p))
	obsTruthSpill.Add(uint64(colfmt.FrameSize(len(p))))
	w.batch = w.batch[:0]
	return nil
}

// WriteTruth one-shots a fix slice into the columnar format — the batch
// path's dump. Bytes are identical to a TruthWriter streaming the same
// fix sequence at the same flushEvery.
func WriteTruth(w io.Writer, fixes []trace.GroundTruth, flushEvery int) error {
	tw := NewTruthWriter(w, flushEvery)
	if err := tw.Append(fixes...); err != nil {
		return err
	}
	return tw.Close()
}

// decodeTruthFrame decodes one data frame payload.
func decodeTruthFrame(payload []byte, dst []trace.GroundTruth) ([]trace.GroundTruth, error) {
	d := colfmt.NewDec(payload)
	count := d.U32()
	fixed := int(count) * (8 + 8 + 8 + 8 + 8)
	if d.Err() != nil || fixed < 0 || d.Off()+fixed > len(payload) {
		return nil, fmt.Errorf("pipeline: truth frame count %d exceeds payload", count)
	}
	out := dst[:0]
	for i := 0; i < int(count); i++ {
		out = append(out, trace.GroundTruth{})
	}
	for i := range out {
		out[i].T = time.Unix(0, d.I64()).UTC()
	}
	for i := range out {
		out[i].UploadedAt = time.Unix(0, d.I64()).UTC()
	}
	for i := range out {
		out[i].Pos.Lat = d.F64()
	}
	for i := range out {
		out[i].Pos.Lon = d.F64()
	}
	for i := range out {
		out[i].SpeedKmh = d.F64()
	}
	for i := range out {
		out[i].VantageID = d.Str()
		if d.Err() != nil {
			return nil, fmt.Errorf("pipeline: truth frame: %w", d.Err())
		}
	}
	if err := d.Close(); err != nil {
		return nil, fmt.Errorf("pipeline: truth frame: %w", err)
	}
	return out, nil
}

// TruthReader streams data frames back from a columnar truth log,
// stopping at the index sentinel (or a bare EOF, for truncated logs
// still worth salvaging frame by frame).
type TruthReader struct {
	r   *bufio.Reader
	err error
}

// NewTruthReader validates the magic and positions at the first frame.
func NewTruthReader(r io.Reader) (*TruthReader, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(truthLogMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("pipeline: truth log header: %w", err)
	}
	if string(magic) != truthLogMagic {
		return nil, fmt.Errorf("pipeline: bad truth log magic %q", magic)
	}
	return &TruthReader{r: br}, nil
}

// Next returns the next frame's fixes, or io.EOF after the last data
// frame (the index block is not a data frame).
func (r *TruthReader) Next() ([]trace.GroundTruth, error) {
	if r.err != nil {
		return nil, r.err
	}
	payload, err := colfmt.ReadFrame(r.r)
	if err == io.EOF || err == colfmt.ErrIndexMark {
		r.err = io.EOF
		return nil, io.EOF
	}
	if err != nil {
		r.err = fmt.Errorf("pipeline: truth log: %w", err)
		return nil, r.err
	}
	fixes, err := decodeTruthFrame(payload, nil)
	if err != nil {
		r.err = err
		return nil, err
	}
	return fixes, nil
}

// ReadAllTruth drains a whole columnar truth log from r.
func ReadAllTruth(r io.Reader) ([]trace.GroundTruth, error) {
	tr, err := NewTruthReader(r)
	if err != nil {
		return nil, err
	}
	var out []trace.GroundTruth
	for {
		frame, err := tr.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, frame...)
	}
}

// TruthFile is random access over a complete, time-sorted columnar truth
// log: the frame index is loaded once and each data frame decodes on
// demand through an io.ReaderAt. It implements analysis.TruthStore, so
// analysis.NewDiskTruthIndex can serve At/HasCoverage queries from a
// bounded decoded window instead of a resident fix slice.
//
// TruthFile itself is safe for concurrent use (ReaderAt is positionless
// and the metadata is immutable); decoded frames are the caller's.
type TruthFile struct {
	r      io.ReaderAt
	frames []TruthFrame
	starts []int // cumulative fix index of each frame's first fix
	total  int
}

// OpenTruthFile loads the frame index of a columnar truth log of the
// given size. Logs whose frames are not time-sorted (raw multi-world
// export logs) are refused — stream those with TruthReader instead.
func OpenTruthFile(r io.ReaderAt, size int64) (*TruthFile, error) {
	magic := make([]byte, len(truthLogMagic))
	if _, err := r.ReadAt(magic, 0); err != nil {
		return nil, fmt.Errorf("pipeline: truth log header: %w", err)
	}
	if string(magic) != truthLogMagic {
		return nil, fmt.Errorf("pipeline: bad truth log magic %q", magic)
	}
	indexOffset, err := colfmt.ReadTrailer(r, size, truthTrailerMagic)
	if err != nil {
		return nil, fmt.Errorf("pipeline: truth log: %w", err)
	}
	head := make([]byte, 8)
	if _, err := r.ReadAt(head, indexOffset); err != nil {
		return nil, fmt.Errorf("pipeline: truth index header: %w", err)
	}
	if binary.LittleEndian.Uint32(head[:4]) != truthIndexMark {
		return nil, fmt.Errorf("pipeline: truth index sentinel missing at offset %d", indexOffset)
	}
	payloadLen := binary.LittleEndian.Uint32(head[4:])
	if payloadLen < 4 || int64(payloadLen) > size-indexOffset-8 {
		return nil, fmt.Errorf("pipeline: implausible truth index length %d", payloadLen)
	}
	payload := make([]byte, payloadLen)
	if _, err := r.ReadAt(payload, indexOffset+8); err != nil {
		return nil, fmt.Errorf("pipeline: truth index: %w", err)
	}
	frameCount := int(binary.LittleEndian.Uint32(payload[:4]))
	if frameCount < 0 || 4+frameCount*(8+4+8+8) != len(payload) {
		return nil, fmt.Errorf("pipeline: truth index frame count %d does not match payload", frameCount)
	}
	tf := &TruthFile{r: r, frames: make([]TruthFrame, frameCount), starts: make([]int, frameCount)}
	off := 4
	for i := range tf.frames {
		fr := &tf.frames[i]
		fr.Offset = int64(binary.LittleEndian.Uint64(payload[off:]))
		fr.Count = int(binary.LittleEndian.Uint32(payload[off+8:]))
		fr.FirstT = int64(binary.LittleEndian.Uint64(payload[off+12:]))
		fr.LastT = int64(binary.LittleEndian.Uint64(payload[off+20:]))
		off += 8 + 4 + 8 + 8
		if fr.Count <= 0 || fr.FirstT > fr.LastT {
			return nil, fmt.Errorf("pipeline: truth index frame %d is malformed", i)
		}
		if i > 0 && (fr.FirstT < tf.frames[i-1].LastT || fr.Offset <= tf.frames[i-1].Offset) {
			return nil, fmt.Errorf("pipeline: truth log is not time-sorted at frame %d; stream it with TruthReader instead", i)
		}
		tf.starts[i] = tf.total
		tf.total += fr.Count
	}
	return tf, nil
}

// Frames returns the number of data frames.
func (tf *TruthFile) Frames() int { return len(tf.frames) }

// Total returns the number of fixes across all frames.
func (tf *TruthFile) Total() int { return tf.total }

// FrameMeta returns frame i's global index of its first fix, its fix
// count, and its first and last fix instants (unix nanos).
func (tf *TruthFile) FrameMeta(i int) (start, count int, firstT, lastT int64) {
	fr := tf.frames[i]
	return tf.starts[i], fr.Count, fr.FirstT, fr.LastT
}

// readFramePayload fetches frame i's raw payload.
func (tf *TruthFile) readFramePayload(i int) ([]byte, error) {
	fr := tf.frames[i]
	var lenBuf [4]byte
	if _, err := tf.r.ReadAt(lenBuf[:], fr.Offset); err != nil {
		return nil, fmt.Errorf("pipeline: truth frame %d length: %w", i, err)
	}
	payloadLen := binary.LittleEndian.Uint32(lenBuf[:])
	if payloadLen < 4 || payloadLen > maxFrameBytes {
		return nil, fmt.Errorf("pipeline: implausible truth frame %d length %d", i, payloadLen)
	}
	payload := make([]byte, payloadLen)
	if _, err := tf.r.ReadAt(payload, fr.Offset+4); err != nil {
		return nil, fmt.Errorf("pipeline: truth frame %d: %w", i, err)
	}
	return payload, nil
}

// ReadFrame decodes frame i into dst (reusing its capacity).
func (tf *TruthFile) ReadFrame(i int, dst []trace.GroundTruth) ([]trace.GroundTruth, error) {
	payload, err := tf.readFramePayload(i)
	if err != nil {
		return nil, err
	}
	fixes, err := decodeTruthFrame(payload, dst)
	if err != nil {
		return nil, fmt.Errorf("pipeline: truth frame %d: %w", i, err)
	}
	if len(fixes) != tf.frames[i].Count {
		return nil, fmt.Errorf("pipeline: truth frame %d holds %d fixes, index says %d", i, len(fixes), tf.frames[i].Count)
	}
	return fixes, nil
}

// FrameTimes decodes only frame i's time column into dst — the leading
// column exists precisely so cursors and coverage builds can scan
// instants without decoding positions and strings.
func (tf *TruthFile) FrameTimes(i int, dst []int64) ([]int64, error) {
	payload, err := tf.readFramePayload(i)
	if err != nil {
		return nil, err
	}
	if len(payload) < 4 {
		return nil, fmt.Errorf("pipeline: truth frame %d underrun", i)
	}
	count := int(binary.LittleEndian.Uint32(payload[:4]))
	if count != tf.frames[i].Count || 4+count*8 > len(payload) {
		return nil, fmt.Errorf("pipeline: truth frame %d holds %d fixes, index says %d", i, count, tf.frames[i].Count)
	}
	out := dst[:0]
	for k := 0; k < count; k++ {
		out = append(out, int64(binary.LittleEndian.Uint64(payload[4+k*8:])))
	}
	return out, nil
}

// Close releases the underlying reader when it is an io.Closer.
func (tf *TruthFile) Close() error {
	if c, ok := tf.r.(io.Closer); ok {
		return c.Close()
	}
	return nil
}

// FrameFor returns the index of the first frame whose last fix instant
// is >= tNs (len(frames) when every frame ends earlier).
func (tf *TruthFile) FrameFor(tNs int64) int {
	return sort.Search(len(tf.frames), func(i int) bool { return tf.frames[i].LastT >= tNs })
}

// TruthSink is the pipeline consumer streaming every world's ground
// truth to a columnar log as it is produced. Worlds stream sequentially
// through the merge, so a multi-world campaign's log is sorted within
// each world but not across worlds — the sink therefore writes a
// non-strict log, readable by TruthReader; OpenTruthFile refuses it
// unless the campaign had one world.
type TruthSink struct {
	w *TruthWriter
}

// NewTruthSink builds the consumer (flushEvery <= 0 means
// DefaultSinkFlush).
func NewTruthSink(w io.Writer, flushEvery int) *TruthSink {
	tw := NewTruthWriter(w, flushEvery)
	tw.strict = false
	return &TruthSink{w: tw}
}

// Consume implements Consumer.
func (s *TruthSink) Consume(b Batch) error { return s.w.Append(b.Fixes...) }

// Close implements Consumer.
func (s *TruthSink) Close() error { return s.w.Close() }

// Name labels this consumer in pipeline stats.
func (s *TruthSink) Name() string { return "truth" }
