package pipeline

import (
	"bufio"
	"fmt"
	"io"
	"time"

	"tagsim/internal/colfmt"
	"tagsim/internal/trace"
)

// The columnar report log replaces full in-memory trace retention for
// large worlds: the pipeline streams accepted reports to disk as they
// happen, and readers stream them back one frame at a time, never
// holding the whole log.
//
// Layout (little-endian throughout):
//
//	file  := magic frames*
//	magic := "TAGRPT1\n" (8 bytes)
//	frame := u32 payloadBytes | payload       -- length-prefixed
//	payload :=
//	    u32 count
//	    i64 t[count]        -- Report.T, unix nanos
//	    i64 heardAt[count]  -- Report.HeardAt, unix nanos
//	    u64 lat[count]      -- math.Float64bits
//	    u64 lon[count]
//	    u64 rssi[count]
//	    u8  vendor[count]
//	    strcol tagID
//	    strcol reporterID
//	strcol := (u32 len | bytes)*count
//
// The column-per-field layout mirrors the analysis index's int64-nano
// time columns, so a future reader can scan one column without decoding
// the rest; the frame length prefix lets readers skip frames wholesale.
// The framing mechanics are internal/colfmt's — the same codec behind
// the truth log and the storage engine's WAL and segments.
const reportLogMagic = "TAGRPT1\n"

// DefaultSinkFlush is the default reports-per-frame of the columnar
// sink. Framing depends only on the report sequence and this constant,
// which is what makes a streamed file byte-identical to one written
// from a batch-collected log.
const DefaultSinkFlush = 4096

// maxFrameBytes bounds a frame a reader will accept, so a corrupt
// length prefix cannot drive an allocation by gigabytes.
const maxFrameBytes = colfmt.MaxFrameBytes

// ReportWriter encodes reports into the columnar log. It is not safe
// for concurrent use; the pipeline drives it from one consumer
// goroutine.
type ReportWriter struct {
	w          *bufio.Writer
	batch      []trace.Report
	payload    []byte // reused frame-encode buffer
	flushEvery int
	wroteMagic bool
	closed     bool
}

// NewReportWriter builds a writer that frames every flushEvery reports
// (<= 0 means DefaultSinkFlush).
func NewReportWriter(w io.Writer, flushEvery int) *ReportWriter {
	if flushEvery <= 0 {
		flushEvery = DefaultSinkFlush
	}
	return &ReportWriter{w: bufio.NewWriter(w), flushEvery: flushEvery}
}

// Append adds reports to the current frame, writing frames as the
// threshold fills.
func (w *ReportWriter) Append(reports ...trace.Report) error {
	if w.closed {
		return fmt.Errorf("pipeline: append to closed ReportWriter")
	}
	for _, r := range reports {
		w.batch = append(w.batch, r)
		if len(w.batch) >= w.flushEvery {
			if err := w.writeFrame(); err != nil {
				return err
			}
		}
	}
	return nil
}

// Close writes the final partial frame and flushes buffered bytes. It
// does not close the underlying writer.
func (w *ReportWriter) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	if len(w.batch) > 0 || !w.wroteMagic {
		if err := w.writeFrame(); err != nil {
			return err
		}
	}
	return w.w.Flush()
}

func (w *ReportWriter) writeFrame() error {
	if !w.wroteMagic {
		w.wroteMagic = true
		if _, err := w.w.WriteString(reportLogMagic); err != nil {
			return err
		}
	}
	rs := w.batch
	size := 4 // count
	size += len(rs) * (8 + 8 + 8 + 8 + 8 + 1)
	for _, r := range rs {
		size += colfmt.StrSize(r.TagID) + colfmt.StrSize(r.ReporterID)
	}
	if size > maxFrameBytes {
		// Refuse to write what the package's own reader would reject
		// (and what a u32 length prefix could silently truncate past
		// 4 GiB). Callers hit this only with an absurd flushEvery.
		return fmt.Errorf("pipeline: frame of %d reports is %d bytes, exceeding the %d-byte frame cap; use a smaller flushEvery", len(rs), size, maxFrameBytes)
	}
	p := w.payload[:0]
	p = colfmt.AppendU32(p, uint32(len(rs)))
	for _, r := range rs {
		p = colfmt.AppendI64(p, r.T.UnixNano())
	}
	for _, r := range rs {
		p = colfmt.AppendI64(p, r.HeardAt.UnixNano())
	}
	for _, r := range rs {
		p = colfmt.AppendF64(p, r.Pos.Lat)
	}
	for _, r := range rs {
		p = colfmt.AppendF64(p, r.Pos.Lon)
	}
	for _, r := range rs {
		p = colfmt.AppendF64(p, r.RSSI)
	}
	for _, r := range rs {
		p = append(p, byte(r.Vendor))
	}
	for _, r := range rs {
		p = colfmt.AppendStr(p, r.TagID)
	}
	for _, r := range rs {
		p = colfmt.AppendStr(p, r.ReporterID)
	}
	w.payload = p
	if err := colfmt.WriteFrame(w.w, p); err != nil {
		return err
	}
	w.batch = w.batch[:0]
	return nil
}

// WriteReports one-shots a report slice into the columnar format — the
// batch path's dump. Bytes are identical to a ReportSink streaming the
// same report sequence at the same flushEvery.
func WriteReports(w io.Writer, reports []trace.Report, flushEvery int) error {
	rw := NewReportWriter(w, flushEvery)
	if err := rw.Append(reports...); err != nil {
		return err
	}
	return rw.Close()
}

// ReportReader streams frames back from a columnar report log.
type ReportReader struct {
	r   *bufio.Reader
	err error
}

// NewReportReader validates the magic and positions at the first frame.
func NewReportReader(r io.Reader) (*ReportReader, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(reportLogMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("pipeline: report log header: %w", err)
	}
	if string(magic) != reportLogMagic {
		return nil, fmt.Errorf("pipeline: bad report log magic %q", magic)
	}
	return &ReportReader{r: br}, nil
}

// Next returns the next frame's reports, or io.EOF after the last
// frame. A short or corrupt frame returns a descriptive error.
func (r *ReportReader) Next() ([]trace.Report, error) {
	if r.err != nil {
		return nil, r.err
	}
	payload, err := colfmt.ReadFrame(r.r)
	if err != nil {
		if err == io.EOF {
			r.err = io.EOF
		} else {
			r.err = fmt.Errorf("pipeline: report log: %w", err)
		}
		return nil, r.err
	}
	reports, err := decodeFrame(payload)
	if err != nil {
		r.err = err
		return nil, err
	}
	return reports, nil
}

// ReadAll drains the remaining frames into one slice.
func (r *ReportReader) ReadAll() ([]trace.Report, error) {
	var out []trace.Report
	for {
		frame, err := r.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, frame...)
	}
}

// ReadReports reads a whole columnar log from r.
func ReadReports(r io.Reader) ([]trace.Report, error) {
	rr, err := NewReportReader(r)
	if err != nil {
		return nil, err
	}
	return rr.ReadAll()
}

func decodeFrame(payload []byte) ([]trace.Report, error) {
	d := colfmt.NewDec(payload)
	count := d.U32()
	fixed := int(count) * (8 + 8 + 8 + 8 + 8 + 1)
	if d.Err() != nil || fixed < 0 || d.Off()+fixed > len(payload) {
		return nil, fmt.Errorf("pipeline: frame count %d exceeds payload", count)
	}
	out := make([]trace.Report, count)
	for i := range out {
		out[i].T = time.Unix(0, d.I64()).UTC()
	}
	for i := range out {
		out[i].HeardAt = time.Unix(0, d.I64()).UTC()
	}
	for i := range out {
		out[i].Pos.Lat = d.F64()
	}
	for i := range out {
		out[i].Pos.Lon = d.F64()
	}
	for i := range out {
		out[i].RSSI = d.F64()
	}
	for i := range out {
		out[i].Vendor = trace.Vendor(d.U8())
	}
	for i := range out {
		out[i].TagID = d.Str()
		if d.Err() != nil {
			return nil, fmt.Errorf("pipeline: report frame: %w", d.Err())
		}
	}
	for i := range out {
		out[i].ReporterID = d.Str()
		if d.Err() != nil {
			return nil, fmt.Errorf("pipeline: report frame: %w", d.Err())
		}
	}
	if err := d.Close(); err != nil {
		return nil, fmt.Errorf("pipeline: report frame: %w", err)
	}
	return out, nil
}

// ReportSink is the pipeline consumer wrapping a ReportWriter: it
// re-frames the merged report stream at its own threshold, so the file
// bytes depend only on the (deterministic) report sequence — never on
// how the worlds happened to batch their emissions.
type ReportSink struct {
	w *ReportWriter
}

// NewReportSink builds the consumer (flushEvery <= 0 means
// DefaultSinkFlush).
func NewReportSink(w io.Writer, flushEvery int) *ReportSink {
	return &ReportSink{w: NewReportWriter(w, flushEvery)}
}

// Consume implements Consumer.
func (s *ReportSink) Consume(b Batch) error { return s.w.Append(b.Reports...) }

// Close implements Consumer.
func (s *ReportSink) Close() error { return s.w.Close() }

// Name labels this consumer in pipeline stats.
func (s *ReportSink) Name() string { return "disk" }
