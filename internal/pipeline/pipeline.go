// Package pipeline is the streaming campaign pipeline: the live data
// path connecting the radio plane to the serving store, the analysis
// plane, and disk while the simulation is still running.
//
// Each simulation world (a country's stay) owns a WorldEmitter. The
// world's single-goroutine engine publishes records into it as they
// happen — cloud-accepted reports, uploaded ground-truth fixes, crawl
// records — and the emitter flushes them as seq-stamped batches into a
// bounded channel. A merge stage drains the worlds' channels strictly
// in world-index order and fans every batch out to the registered
// consumers, each running on its own goroutine behind its own bounded
// channel: the store ingester feeds the sharded serving store, the
// campaign accumulator grows the analysis state, and the columnar sink
// streams the report log to disk.
//
// Determinism: a world's batch sequence is a pure function of its seed
// (the engine is single-goroutine and the flush threshold is a record
// count, never a wall clock), and the merge releases worlds in index
// order, so the merged stream every consumer sees is byte-identical at
// any worker count — the pipeline extends the runner package's
// worker-invariance contract to streaming consumers.
//
// Backpressure and deadlock-freedom: a world that outruns its
// consumers blocks on its bounded channel, pausing that world's
// simulation — memory stays bounded by channel capacities. The merge
// waits on worlds in index order, and runner.Map claims jobs in index
// order, so the world being drained is always among the started ones:
// every blocked world is strictly ahead of the drain cursor, and the
// drained world never waits on another world. No cycle, no deadlock.
package pipeline

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"tagsim/internal/obs"
	otrace "tagsim/internal/obs/trace"
	"tagsim/internal/trace"
)

// Process-wide pipeline series in the obs.Default registry: merged
// batches and records by kind, aggregated across every pipeline in the
// process. A -metrics-every snapshot differencing pipeline_reports_total
// is the live reports/s gauge for a headless campaign.
var (
	obsBatches = obs.GetCounter("pipeline_batches_total")
	obsReports = obs.GetCounter("pipeline_reports_total")
	obsFixes   = obs.GetCounter("pipeline_fixes_total")
	obsCrawls  = obs.GetCounter("pipeline_crawls_total")
)

// streamingDisabled routes experiments.NewCampaign through the
// historical batch path (materialize every dataset, then analyze)
// instead of the streaming pipeline. It is the batch-path escape hatch
// mirroring device.NearBrute and analysis.SetIndexedAnalysis: the
// default is streaming, and equivalence tests pin the two paths
// byte-identical.
var streamingDisabled atomic.Bool

// SetStreaming toggles the streaming campaign pipeline (the default is
// enabled). It returns the previous setting so callers can restore it.
func SetStreaming(enabled bool) (was bool) {
	return !streamingDisabled.Swap(!enabled)
}

// Streaming reports whether the streaming campaign path is enabled.
func Streaming() bool { return !streamingDisabled.Load() }

// Registration announces a tag paired to a vendor cloud, so consumers
// (the store ingester in particular) know the tag universe even before
// its first report — a tag with zero accepted reports still exists in
// the serving store.
type Registration struct {
	Vendor trace.Vendor
	TagID  string
}

// Batch is one ordered emission unit from one world: everything the
// world published since the previous flush, in emission order. Batches
// are immutable once emitted and may be shared by every consumer.
type Batch struct {
	// World is the emitting world's index (campaign country order).
	World int
	// Seq is the world's batch sequence number, contiguous from 0.
	Seq uint64
	// Final marks the world's last batch; exactly one per world.
	Final bool

	Registrations []Registration
	// Reports are cloud-accepted reports in acceptance order.
	Reports []trace.Report
	// Fixes are uploaded ground-truth fixes in fix-time order.
	Fixes []trace.GroundTruth
	// Crawls are crawl records in poll order (vendors interleaved; each
	// record carries its vendor).
	Crawls []trace.CrawlRecord
}

// Len returns the number of records in the batch (registrations aside).
func (b *Batch) Len() int { return len(b.Reports) + len(b.Fixes) + len(b.Crawls) }

// Consumer receives the merged, ordered batch stream. Consume runs on
// the consumer's own goroutine (batches arrive strictly in (world, seq)
// order); Close runs after the last batch, even when an earlier Consume
// failed, so it can release resources either way.
type Consumer interface {
	Consume(b Batch) error
	Close() error
}

// Config sizes the pipeline's buffers. The zero value uses defaults.
type Config struct {
	// FlushEvery is the per-world record count that triggers a batch
	// flush (default 512). It tunes batch granularity and backpressure
	// only — consumers that persist bytes (ReportSink) re-frame the
	// stream at their own threshold, so dump bytes never depend on it.
	FlushEvery int
	// WorldBuffer is each world channel's batch capacity (default 4).
	WorldBuffer int
	// ConsumerBuffer is each consumer channel's batch capacity
	// (default 8).
	ConsumerBuffer int
}

func (c *Config) defaults() {
	if c.FlushEvery <= 0 {
		c.FlushEvery = 512
	}
	if c.WorldBuffer <= 0 {
		c.WorldBuffer = 4
	}
	if c.ConsumerBuffer <= 0 {
		c.ConsumerBuffer = 8
	}
}

// Pipeline coordinates the world emitters, the ordered merge, and the
// consumer fan-out. Create one with New, hand World(i) to each world,
// and Wait after every world has closed its emitter.
type Pipeline struct {
	cfg      Config
	emitters []*WorldEmitter
	runners  []*consumerRunner
	done     chan struct{}
	waitOnce sync.Once
	waitErr  error
}

// consumerRunner drives one consumer on its own goroutine. sent /
// consumed / records are the observability plane's lag accounting:
// sent is bumped by the merge as it dispatches, consumed and records by
// the runner as it finishes each batch, so sent-consumed is the
// consumer's batch lag (queued plus in-flight) at any instant.
type consumerRunner struct {
	c        Consumer
	name     string
	op       string // "pipeline.consume.<name>", precomputed off the hot loop
	ch       chan Batch
	done     chan struct{}
	err      error
	sent     atomic.Uint64
	consumed atomic.Uint64
	records  atomic.Uint64
	hist     *obs.Histogram
	th       *otrace.Threshold
}

// run is the consumer's batch loop. Each batch is one self-rooted
// trace on the pipeline plane (the runner goroutine has no request to
// attach to) carrying the batch's record count and the consumer's
// batch lag behind the merge as attributes — so a captured slow batch
// shows whether the consumer was already drowning when it started.
func (r *consumerRunner) run() {
	defer close(r.done)
	for b := range r.ch {
		if r.err != nil {
			r.consumed.Add(1)
			continue // drain so the merge never blocks on a failed consumer
		}
		var t0 time.Time
		if obs.Enabled() {
			t0 = time.Now()
		}
		tr := otrace.Begin(otrace.PlanePipeline, r.op)
		tr.SetAttrs(0, int64(b.Len()), int64(r.sent.Load()-r.consumed.Load()))
		r.err = r.c.Consume(b)
		r.consumed.Add(1)
		r.records.Add(uint64(b.Len()))
		// Capture before this batch's own sample feeds the histogram —
		// a new-max batch must clear the p99 of the batches before it.
		tr.End(r.th)
		obs.Since(r.hist, t0)
	}
	if cerr := r.c.Close(); r.err == nil {
		r.err = cerr
	}
}

// New builds a pipeline for the given number of worlds and starts the
// merge and consumer goroutines. Every world emitter must eventually be
// closed (worlds with nothing to say still Close), or Wait blocks.
func New(worlds int, cfg Config, consumers ...Consumer) *Pipeline {
	cfg.defaults()
	p := &Pipeline{cfg: cfg, done: make(chan struct{})}
	for i := 0; i < worlds; i++ {
		p.emitters = append(p.emitters, &WorldEmitter{
			world:      i,
			flushEvery: cfg.FlushEvery,
			ch:         make(chan Batch, cfg.WorldBuffer),
		})
	}
	for i, c := range consumers {
		name := fmt.Sprintf("consumer%d", i)
		if n, ok := c.(interface{ Name() string }); ok {
			name = n.Name()
		}
		r := &consumerRunner{c: c, name: name, op: "pipeline.consume." + name,
			ch: make(chan Batch, cfg.ConsumerBuffer), done: make(chan struct{})}
		r.hist = obs.Default.Histogram("pipeline_consume_seconds", obs.L("consumer", name))
		r.th = otrace.NewThreshold(otrace.PlanePipeline, r.hist, 0)
		p.runners = append(p.runners, r)
		go r.run()
	}
	go p.merge()
	return p
}

// merge drains the world channels strictly in index order, validates
// the (world, seq, final) framing, and fans each batch out to every
// consumer channel.
func (p *Pipeline) merge() {
	defer close(p.done)
	defer func() {
		for _, r := range p.runners {
			close(r.ch)
		}
	}()
	for w, em := range p.emitters {
		var nextSeq uint64
		sawFinal := false
		for b := range em.ch {
			if b.World != w || b.Seq != nextSeq || sawFinal {
				// A broken emitter contract is a programming error, not
				// a runtime condition to limp through.
				panic(fmt.Sprintf("pipeline: world %d emitted batch (world=%d seq=%d final=%v), want seq %d",
					w, b.World, b.Seq, b.Final, nextSeq))
			}
			nextSeq++
			sawFinal = b.Final
			obsBatches.Inc()
			obsReports.Add(uint64(len(b.Reports)))
			obsFixes.Add(uint64(len(b.Fixes)))
			obsCrawls.Add(uint64(len(b.Crawls)))
			for _, r := range p.runners {
				r.sent.Add(1)
				r.ch <- b
			}
		}
		if !sawFinal {
			panic(fmt.Sprintf("pipeline: world %d closed without a final batch", w))
		}
	}
}

// World returns world i's emitter. Each emitter belongs to exactly one
// world goroutine and is not safe for concurrent use.
func (p *Pipeline) World(i int) *WorldEmitter { return p.emitters[i] }

// Worlds returns the number of worlds the pipeline was sized for.
func (p *Pipeline) Worlds() int { return len(p.emitters) }

// ConsumerStats is one consumer's point-in-time progress through the
// merged stream: how many batches and records it has finished, how many
// sit in its channel right now, and its total batch lag behind the
// merge (queued plus in-flight).
type ConsumerStats struct {
	Name       string
	Batches    uint64
	Records    uint64
	QueueDepth int
	Lag        uint64
}

// ConsumerStats snapshots every consumer's progress, in registration
// order. Safe to call while the pipeline runs — each field loads
// atomically (fields are not mutually consistent mid-batch). Consumers
// that implement Name() string report it; others get "consumerN".
func (p *Pipeline) ConsumerStats() []ConsumerStats {
	out := make([]ConsumerStats, len(p.runners))
	for i, r := range p.runners {
		sent, consumed := r.sent.Load(), r.consumed.Load()
		lag := uint64(0)
		if sent > consumed { // racing loads: dispatch may land between them
			lag = sent - consumed
		}
		out[i] = ConsumerStats{
			Name:       r.name,
			Batches:    consumed,
			Records:    r.records.Load(),
			QueueDepth: len(r.ch),
			Lag:        lag,
		}
	}
	return out
}

// Wait blocks until every world's stream has been merged and every
// consumer has consumed it and closed, then returns the first consumer
// error (consumers are checked in registration order). It is safe to
// call more than once.
func (p *Pipeline) Wait() error {
	p.waitOnce.Do(func() {
		<-p.done
		var errs []error
		for _, r := range p.runners {
			<-r.done
			if r.err != nil {
				errs = append(errs, r.err)
			}
		}
		p.waitErr = errors.Join(errs...)
	})
	return p.waitErr
}

// WorldEmitter is one world's publishing end of the pipeline. All
// methods must be called from the world's own (single) goroutine; the
// bounded channel provides the cross-goroutine handoff.
type WorldEmitter struct {
	world      int
	flushEvery int
	ch         chan Batch
	seq        uint64
	cur        Batch
	closed     bool
}

// RegisterTag announces a (vendor, tag) pairing to the consumers.
func (e *WorldEmitter) RegisterTag(v trace.Vendor, tagID string) {
	e.cur.Registrations = append(e.cur.Registrations, Registration{Vendor: v, TagID: tagID})
}

// Report publishes one cloud-accepted report.
func (e *WorldEmitter) Report(r trace.Report) {
	e.cur.Reports = append(e.cur.Reports, r)
	e.maybeFlush()
}

// Fixes publishes a batch of uploaded ground-truth fixes. The slice is
// copied; callers may reuse it.
func (e *WorldEmitter) Fixes(fs []trace.GroundTruth) {
	e.cur.Fixes = append(e.cur.Fixes, fs...)
	e.maybeFlush()
}

// Crawl publishes one crawl record.
func (e *WorldEmitter) Crawl(rec trace.CrawlRecord) {
	e.cur.Crawls = append(e.cur.Crawls, rec)
	e.maybeFlush()
}

func (e *WorldEmitter) maybeFlush() {
	if e.cur.Len() >= e.flushEvery {
		e.flush(false)
	}
}

// flush seals the current batch and sends it (blocking on a full
// channel — the pipeline's backpressure).
func (e *WorldEmitter) flush(final bool) {
	b := e.cur
	b.World, b.Seq, b.Final = e.world, e.seq, final
	e.seq++
	e.cur = Batch{}
	e.ch <- b
}

// Close flushes whatever remains as the world's final batch (possibly
// empty — consumers still need the end-of-world marker) and closes the
// channel. Must be called exactly once, after the world finished.
func (e *WorldEmitter) Close() {
	if e.closed {
		panic("pipeline: WorldEmitter closed twice")
	}
	e.closed = true
	e.flush(true)
	close(e.ch)
}
