package pipeline

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"time"

	"tagsim/internal/geo"
	"tagsim/internal/obs"
	"tagsim/internal/trace"
)

// truthFixture builds n time-sorted fixes with irregular spacing
// (including gaps larger than the analysis MaxGap) and varied payloads.
func truthFixture(n int, seed int64) []trace.GroundTruth {
	rng := rand.New(rand.NewSource(seed))
	t0 := time.Date(2026, 3, 1, 8, 0, 0, 0, time.UTC)
	fixes := make([]trace.GroundTruth, n)
	cur := t0
	for i := range fixes {
		cur = cur.Add(time.Duration(1+rng.Intn(240)) * time.Second)
		if rng.Intn(20) == 0 {
			cur = cur.Add(time.Duration(5+rng.Intn(30)) * time.Minute) // coverage gap
		}
		fixes[i] = trace.GroundTruth{
			T:          cur,
			Pos:        geo.LatLon{Lat: 48 + rng.Float64(), Lon: 11 + rng.Float64()},
			VantageID:  fmt.Sprintf("vp-%d", rng.Intn(4)),
			SpeedKmh:   rng.Float64() * 30,
			UploadedAt: cur.Add(time.Duration(rng.Intn(90)) * time.Second),
		}
	}
	return fixes
}

// TestTruthRoundTrip checks write -> stream-read and write -> seekable
// random frame access both reproduce the input exactly.
func TestTruthRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 7, 300} {
		fixes := truthFixture(n, int64(n)+1)
		var buf bytes.Buffer
		if err := WriteTruth(&buf, fixes, 64); err != nil {
			t.Fatalf("n=%d: write: %v", n, err)
		}
		got, err := ReadAllTruth(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("n=%d: stream read: %v", n, err)
		}
		if len(got) != len(fixes) || (n > 0 && !reflect.DeepEqual(got, fixes)) {
			t.Fatalf("n=%d: stream round-trip diverged (%d fixes back)", n, len(got))
		}
		tf, err := OpenTruthFile(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
		if err != nil {
			t.Fatalf("n=%d: open: %v", n, err)
		}
		if tf.Total() != n {
			t.Fatalf("n=%d: Total() = %d", n, tf.Total())
		}
		var all []trace.GroundTruth
		for i := tf.Frames() - 1; i >= 0; i-- { // random-ish access order
			frame, err := tf.ReadFrame(i, nil)
			if err != nil {
				t.Fatalf("n=%d: frame %d: %v", n, i, err)
			}
			all = append(frame, all...)
			times, err := tf.FrameTimes(i, nil)
			if err != nil {
				t.Fatalf("n=%d: frame %d times: %v", n, i, err)
			}
			for k, ts := range times {
				if ts != frame[k].T.UnixNano() {
					t.Fatalf("n=%d: frame %d: FrameTimes[%d] != decoded fix time", n, i, k)
				}
			}
		}
		if n > 0 && !reflect.DeepEqual(all, fixes) {
			t.Fatalf("n=%d: seekable round-trip diverged", n)
		}
	}
}

// TestTruthFramingByteIdentical checks a batched dump and a fix-by-fix
// streamed write produce identical bytes — framing depends only on the
// fix sequence and the flush threshold.
func TestTruthFramingByteIdentical(t *testing.T) {
	fixes := truthFixture(500, 9)
	var batch bytes.Buffer
	if err := WriteTruth(&batch, fixes, 128); err != nil {
		t.Fatal(err)
	}
	var streamed bytes.Buffer
	w := NewTruthWriter(&streamed, 128)
	for _, f := range fixes {
		if err := w.Append(f); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(batch.Bytes(), streamed.Bytes()) {
		t.Fatalf("streamed truth log (%d bytes) differs from batch dump (%d bytes)", streamed.Len(), batch.Len())
	}
}

// TestTruthWriterStrictOrder checks the strict writer rejects a fix
// earlier than its predecessor (the invariant seekable readers rely on),
// while equal timestamps pass.
func TestTruthWriterStrictOrder(t *testing.T) {
	t0 := time.Date(2026, 3, 1, 8, 0, 0, 0, time.UTC)
	w := NewTruthWriter(&bytes.Buffer{}, 0)
	if err := w.Append(trace.GroundTruth{T: t0}, trace.GroundTruth{T: t0}, trace.GroundTruth{T: t0.Add(time.Second)}); err != nil {
		t.Fatalf("sorted appends rejected: %v", err)
	}
	if err := w.Append(trace.GroundTruth{T: t0}); err == nil {
		t.Fatal("out-of-order fix accepted by strict writer")
	}
}

// TestTruthFileRejectsUnsorted checks OpenTruthFile refuses a raw
// multi-world export log (frames not time-sorted) while TruthReader
// still streams it.
func TestTruthFileRejectsUnsorted(t *testing.T) {
	later := truthFixture(5, 1)
	earlier := truthFixture(5, 2) // same epoch: overlaps `later`
	var buf bytes.Buffer
	// flushEvery matches the world size, so each world lands in its own
	// frame and the overlap shows up as cross-frame disorder.
	sink := NewTruthSink(&buf, 5)
	if err := sink.Consume(Batch{Fixes: later}); err != nil {
		t.Fatal(err)
	}
	if err := sink.Consume(Batch{Fixes: earlier}); err != nil {
		t.Fatalf("non-strict sink rejected a world boundary: %v", err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAllTruth(bytes.NewReader(buf.Bytes()))
	if err != nil || len(got) != 10 {
		t.Fatalf("streaming an unsorted log: %d fixes, err %v", len(got), err)
	}
	if _, err := OpenTruthFile(bytes.NewReader(buf.Bytes()), int64(buf.Len())); err == nil {
		t.Fatal("OpenTruthFile accepted an unsorted log")
	} else if !strings.Contains(err.Error(), "not time-sorted") {
		t.Fatalf("unexpected refusal: %v", err)
	}
}

// TestTruthFileCorruption checks truncated and mangled logs are refused
// with errors, not panics or garbage.
func TestTruthFileCorruption(t *testing.T) {
	fixes := truthFixture(100, 5)
	var buf bytes.Buffer
	if err := WriteTruth(&buf, fixes, 32); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, tc := range []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"magic only", full[:8]},
		{"truncated mid-frame", full[:len(full)/2]},
		{"trailer cut", full[:len(full)-5]},
		{"bad magic", append([]byte("NOTTRUTH"), full[8:]...)},
	} {
		if _, err := OpenTruthFile(bytes.NewReader(tc.data), int64(len(tc.data))); err == nil {
			t.Errorf("%s: OpenTruthFile accepted a corrupt log", tc.name)
		}
	}
}

// TestTruthSpillCounter checks the obs byte counter advances by exactly
// the file size written.
func TestTruthSpillCounter(t *testing.T) {
	c := obs.GetCounter("truth_spill_bytes_total")
	before := c.Value()
	var buf bytes.Buffer
	if err := WriteTruth(&buf, truthFixture(200, 3), 64); err != nil {
		t.Fatal(err)
	}
	if got, want := c.Value()-before, uint64(buf.Len()); got != want {
		t.Errorf("truth_spill_bytes_total advanced %d, file is %d bytes", got, want)
	}
}
