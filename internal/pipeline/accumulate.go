package pipeline

import (
	"fmt"
	"io"
	"os"

	"tagsim/internal/analysis"
	"tagsim/internal/geo"
	"tagsim/internal/runner"
	"tagsim/internal/trace"
)

// WorldData is one world's accumulated campaign output: the compact
// replacement for scenario's in-world dataset retention. Crawls holds
// only distinct reports — each underlying report once — never the raw
// crawl log; every analysis consumer dedups its input anyway (the dedup
// is idempotent), so figures built from WorldData render byte-identical
// to the batch path.
type WorldData struct {
	// Fixes is the world's uploaded ground truth, in fix-time order.
	Fixes []trace.GroundTruth
	// Crawls maps each vendor to its distinct crawl records, deduped
	// within this world in isolation (matching the per-country dedup
	// Figure 7 performs on country datasets).
	Crawls map[trace.Vendor][]trace.CrawlRecord
	// Homes are the participant's detected overnight locations.
	Homes []geo.LatLon
}

// CampaignState is the assembled analysis plane of one streamed
// campaign: everything experiments.Campaign derives from materialized
// datasets, built instead from the live stream.
type CampaignState struct {
	// Worlds holds the per-country data in campaign order.
	Worlds []WorldData
	// Homes concatenates the per-country homes in campaign order.
	Homes []geo.LatLon
	// Truth indexes the home-filtered ground truth of the campaign.
	Truth *analysis.TruthIndex
	// RemovedFrac is the share of fixes dropped by the home filter.
	RemovedFrac float64
	// Merged bundles the campaign's ground truth with the per-vendor
	// distinct crawl records (the raw log's duplicates are already
	// collapsed).
	Merged *analysis.Dataset
	// Filtered maps each ecosystem (including VendorCombined) to its
	// home-filtered distinct crawl records.
	Filtered map[trace.Vendor][]trace.CrawlRecord
	// Indexes maps each ecosystem to its columnar analysis index over
	// (Truth, Filtered).
	Indexes map[trace.Vendor]*analysis.Index
}

// CampaignAccumulator consumes the merged batch stream and builds the
// campaign's analysis state incrementally: crawl records are deduped
// batch by batch (only distinct reports are retained), ground truth
// accumulates per world, and each world's homes are detected the moment
// its stream ends. Close resolves the cross-world parts that need the
// whole campaign — the home filter uses every country's homes, and
// truth resolution needs the final TruthIndex — and fans the per-vendor
// filter+index builds out across the worker pool.
//
// Two dedup scopes run side by side, so both consumers of crawl data
// get exactly what the batch path computes: a campaign-scope Deduper
// per vendor (carried across world boundaries, matching the one-pass
// dedup analysis.NewIndex performs over the merged campaign log) and a
// fresh world-scope Deduper per (world, vendor) (matching the isolated
// per-country dedup of Figure 7's country datasets).
type CampaignAccumulator struct {
	workers  int
	worlds   []*worldAcc
	cur      int // world currently streaming (merge delivers in order)
	camp     map[trace.Vendor]*vendorAcc
	spilling bool // ground truth spills to disk (analysis.SetResidentTruth(false))
	state    *CampaignState
}

// vendorAcc is one dedup scope for one vendor.
type vendorAcc struct {
	dedup    *trace.Deduper
	distinct []trace.CrawlRecord
}

func newVendorAcc() *vendorAcc { return &vendorAcc{dedup: trace.NewDeduper()} }

func (va *vendorAcc) add(rec trace.CrawlRecord) {
	if va.dedup.Keep(rec) {
		va.distinct = append(va.distinct, rec)
	}
}

// worldAcc is one world's in-flight accumulation. In spill mode (see
// analysis.SetResidentTruth) fixes stays nil: ground truth streams to
// an anonymous temp file through the columnar truth writer, and homes
// are detected by the incremental detector as the fixes pass by.
type worldAcc struct {
	fixes  []trace.GroundTruth
	spill  *truthSpillFile
	homes  []geo.LatLon
	crawls map[trace.Vendor]*vendorAcc
	done   bool
}

// truthSpillFile is one world's ground-truth spill: an already-unlinked
// temp file (no disk entry survives a crash) written through the
// columnar writer, plus the streaming home detector fed in lockstep.
type truthSpillFile struct {
	f       *os.File
	w       *TruthWriter
	homeDet *analysis.HomeDetector
	size    int64
}

func newTruthSpillFile() (*truthSpillFile, error) {
	f, err := os.CreateTemp("", "tagsim-truth-*.col")
	if err != nil {
		return nil, fmt.Errorf("pipeline: truth spill: %w", err)
	}
	// Unlink immediately: the fd keeps the data alive and the entry
	// cannot leak, even on a crash.
	os.Remove(f.Name())
	return &truthSpillFile{f: f, w: NewTruthWriter(f, 0), homeDet: analysis.NewHomeDetector(300)}, nil
}

func (ts *truthSpillFile) append(fixes []trace.GroundTruth) error {
	if err := ts.w.Append(fixes...); err != nil {
		return err
	}
	for _, f := range fixes {
		ts.homeDet.Add(f)
	}
	return nil
}

// finish closes the writer and returns a streaming reader over the
// world's spilled fixes.
func (ts *truthSpillFile) finish() error {
	if err := ts.w.Close(); err != nil {
		return err
	}
	size, err := ts.f.Seek(0, io.SeekCurrent)
	if err != nil {
		return err
	}
	ts.size = size
	return nil
}

func (ts *truthSpillFile) reader() (*TruthReader, error) {
	return NewTruthReader(io.NewSectionReader(ts.f, 0, ts.size))
}

// NewCampaignAccumulator builds the consumer for a campaign of the
// given world count. workers bounds the Close-time index-build fan-out
// (0 = one per CPU). The resident-vs-spill mode for ground truth is
// sampled once here from analysis.ResidentTruth, so a mid-campaign
// toggle cannot mix backends.
func NewCampaignAccumulator(worlds, workers int) *CampaignAccumulator {
	a := &CampaignAccumulator{
		workers:  workers,
		camp:     make(map[trace.Vendor]*vendorAcc),
		spilling: !analysis.ResidentTruth(),
	}
	for i := 0; i < worlds; i++ {
		a.worlds = append(a.worlds, &worldAcc{crawls: make(map[trace.Vendor]*vendorAcc)})
	}
	return a
}

// Consume implements Consumer.
func (a *CampaignAccumulator) Consume(b Batch) error {
	if b.World < 0 || b.World >= len(a.worlds) {
		return fmt.Errorf("pipeline: batch for world %d, accumulator sized for %d", b.World, len(a.worlds))
	}
	if b.World != a.cur {
		return fmt.Errorf("pipeline: world %d batch while world %d still streaming", b.World, a.cur)
	}
	wa := a.worlds[b.World]
	if a.spilling {
		if wa.spill == nil {
			ts, err := newTruthSpillFile()
			if err != nil {
				return err
			}
			wa.spill = ts
		}
		if err := wa.spill.append(b.Fixes); err != nil {
			return err
		}
	} else {
		wa.fixes = append(wa.fixes, b.Fixes...)
	}
	for _, rec := range b.Crawls {
		ca, ok := a.camp[rec.Vendor]
		if !ok {
			ca = newVendorAcc()
			a.camp[rec.Vendor] = ca
		}
		ca.add(rec)
		wv, ok := wa.crawls[rec.Vendor]
		if !ok {
			wv = newVendorAcc()
			wa.crawls[rec.Vendor] = wv
		}
		wv.add(rec)
	}
	if b.Final {
		if a.spilling {
			if wa.spill != nil {
				if err := wa.spill.finish(); err != nil {
					return err
				}
				wa.homes = wa.spill.homeDet.Homes()
			}
		} else {
			wa.homes = analysis.DetectHomes(wa.fixes, 300)
		}
		wa.done = true
		a.cur++
	}
	return nil
}

// Name labels this consumer in pipeline stats.
func (a *CampaignAccumulator) Name() string { return "accumulate" }

// Close implements Consumer: it assembles the CampaignState.
func (a *CampaignAccumulator) Close() error {
	for i, wa := range a.worlds {
		if !wa.done {
			return fmt.Errorf("pipeline: world %d stream never finished", i)
		}
	}
	st := &CampaignState{
		Filtered: make(map[trace.Vendor][]trace.CrawlRecord, len(trace.AnalysisVendors)),
		Indexes:  make(map[trace.Vendor]*analysis.Index, len(trace.AnalysisVendors)),
	}
	var allFixes []trace.GroundTruth
	mergedCrawls := make(map[trace.Vendor][]trace.CrawlRecord)
	for _, wa := range a.worlds {
		wd := WorldData{Fixes: wa.fixes, Homes: wa.homes, Crawls: make(map[trace.Vendor][]trace.CrawlRecord, len(wa.crawls))}
		for v, wv := range wa.crawls {
			wd.Crawls[v] = wv.distinct
		}
		st.Worlds = append(st.Worlds, wd)
		st.Homes = append(st.Homes, wa.homes...)
		allFixes = append(allFixes, wa.fixes...)
	}
	for v, ca := range a.camp {
		mergedCrawls[v] = ca.distinct
	}
	if a.spilling {
		truth, removed, err := a.mergeSpilledTruth(st.Homes)
		if err != nil {
			return err
		}
		st.Truth = truth
		st.RemovedFrac = removed
		// Raw-fix consumers (headline episodes, hexagon figures,
		// per-country dataset reattachment) see empty ground truth in
		// spill mode; the accuracy plane runs entirely through the
		// TruthIndex and Index columns built below.
		st.Merged = analysis.NewDataset(nil, mergedCrawls)
	} else {
		kept, removed := analysis.FilterNearHomes(allFixes, st.Homes, 300)
		st.Truth = analysis.NewTruthIndex(kept)
		st.RemovedFrac = removed
		st.Merged = analysis.NewDataset(allFixes, mergedCrawls)
	}
	// Per-vendor home filter + index builds are independent read-only
	// passes; fan them out like the batch campaign does.
	type vendorPlane struct {
		crawls []trace.CrawlRecord
		index  *analysis.Index
	}
	planes := runner.Map(a.workers, len(trace.AnalysisVendors), func(i int) vendorPlane {
		crawls := analysis.FilterCrawlsNearHomes(st.Merged.CrawlsFor(trace.AnalysisVendors[i]), st.Homes, 300)
		return vendorPlane{crawls: crawls, index: analysis.NewIndex(st.Truth, crawls)}
	})
	for i, v := range trace.AnalysisVendors {
		st.Filtered[v] = planes[i].crawls
		st.Indexes[v] = planes[i].index
	}
	a.state = st
	return nil
}

// truthCursor walks one world's spilled truth frame by frame.
type truthCursor struct {
	r     *TruthReader
	frame []trace.GroundTruth
	pos   int
}

// head returns the cursor's current fix; ok is false when drained.
func (c *truthCursor) head() (trace.GroundTruth, bool) {
	if c.pos < len(c.frame) {
		return c.frame[c.pos], true
	}
	return trace.GroundTruth{}, false
}

// fill loads frames until the cursor has a head or drains.
func (c *truthCursor) fill() error {
	for c.pos >= len(c.frame) {
		frame, err := c.r.Next()
		if err == io.EOF {
			c.frame, c.pos = nil, 0
			return nil
		}
		if err != nil {
			return err
		}
		c.frame, c.pos = frame, 0
	}
	return nil
}

// ownedSection is a closeable ReaderAt over a spill file: closing the
// truth store (via TruthIndex.Close) releases the fd of the unlinked
// temp file, which is the file's last reference.
type ownedSection struct {
	*io.SectionReader
	f *os.File
}

func (o ownedSection) Close() error { return o.f.Close() }

// mergeSpilledTruth streams every world's spilled ground truth through
// one k-way time-ordered merge, dropping fixes near any campaign home
// (the same 300 m filter the resident path applies), into a final
// sorted columnar log — the file the campaign's disk-backed TruthIndex
// then serves At/HasCoverage queries from. Peak memory is one frame per
// world plus the output frame, regardless of campaign size. Ties on the
// fix instant break by world order, matching the concatenation order
// the resident path sorts.
func (a *CampaignAccumulator) mergeSpilledTruth(homes []geo.LatLon) (*analysis.TruthIndex, float64, error) {
	var cursors []*truthCursor
	for _, wa := range a.worlds {
		if wa.spill == nil {
			continue
		}
		r, err := wa.spill.reader()
		if err != nil {
			return nil, 0, err
		}
		c := &truthCursor{r: r}
		if err := c.fill(); err != nil {
			return nil, 0, err
		}
		cursors = append(cursors, c)
	}
	out, err := os.CreateTemp("", "tagsim-truth-merged-*.col")
	if err != nil {
		return nil, 0, fmt.Errorf("pipeline: truth merge: %w", err)
	}
	os.Remove(out.Name())
	w := NewTruthWriter(out, 0)
	var total, kept int
	for {
		best := -1
		var bestT int64
		for i, c := range cursors {
			f, ok := c.head()
			if !ok {
				continue
			}
			if t := f.T.UnixNano(); best == -1 || t < bestT {
				best, bestT = i, t
			}
		}
		if best == -1 {
			break
		}
		c := cursors[best]
		f, _ := c.head()
		c.pos++
		if err := c.fill(); err != nil {
			out.Close()
			return nil, 0, err
		}
		total++
		if analysis.NearAnyHome(f.Pos, homes, 300) {
			continue
		}
		kept++
		if err := w.Append(f); err != nil {
			out.Close()
			return nil, 0, err
		}
	}
	if err := w.Close(); err != nil {
		out.Close()
		return nil, 0, err
	}
	// The per-world spill files are fully drained; release their fds.
	for _, wa := range a.worlds {
		if wa.spill != nil {
			wa.spill.f.Close()
		}
	}
	size, err := out.Seek(0, io.SeekCurrent)
	if err != nil {
		out.Close()
		return nil, 0, err
	}
	tf, err := OpenTruthFile(ownedSection{io.NewSectionReader(out, 0, size), out}, size)
	if err != nil {
		out.Close()
		return nil, 0, err
	}
	var removed float64
	if total > 0 {
		removed = float64(total-kept) / float64(total)
	}
	return analysis.NewDiskTruthIndex(tf), removed, nil
}

// State returns the assembled campaign state. Valid only after the
// pipeline's Wait returned nil.
func (a *CampaignAccumulator) State() *CampaignState { return a.state }
