package pipeline

import (
	"fmt"

	"tagsim/internal/analysis"
	"tagsim/internal/geo"
	"tagsim/internal/runner"
	"tagsim/internal/trace"
)

// WorldData is one world's accumulated campaign output: the compact
// replacement for scenario's in-world dataset retention. Crawls holds
// only distinct reports — each underlying report once — never the raw
// crawl log; every analysis consumer dedups its input anyway (the dedup
// is idempotent), so figures built from WorldData render byte-identical
// to the batch path.
type WorldData struct {
	// Fixes is the world's uploaded ground truth, in fix-time order.
	Fixes []trace.GroundTruth
	// Crawls maps each vendor to its distinct crawl records, deduped
	// within this world in isolation (matching the per-country dedup
	// Figure 7 performs on country datasets).
	Crawls map[trace.Vendor][]trace.CrawlRecord
	// Homes are the participant's detected overnight locations.
	Homes []geo.LatLon
}

// CampaignState is the assembled analysis plane of one streamed
// campaign: everything experiments.Campaign derives from materialized
// datasets, built instead from the live stream.
type CampaignState struct {
	// Worlds holds the per-country data in campaign order.
	Worlds []WorldData
	// Homes concatenates the per-country homes in campaign order.
	Homes []geo.LatLon
	// Truth indexes the home-filtered ground truth of the campaign.
	Truth *analysis.TruthIndex
	// RemovedFrac is the share of fixes dropped by the home filter.
	RemovedFrac float64
	// Merged bundles the campaign's ground truth with the per-vendor
	// distinct crawl records (the raw log's duplicates are already
	// collapsed).
	Merged *analysis.Dataset
	// Filtered maps each ecosystem (including VendorCombined) to its
	// home-filtered distinct crawl records.
	Filtered map[trace.Vendor][]trace.CrawlRecord
	// Indexes maps each ecosystem to its columnar analysis index over
	// (Truth, Filtered).
	Indexes map[trace.Vendor]*analysis.Index
}

// CampaignAccumulator consumes the merged batch stream and builds the
// campaign's analysis state incrementally: crawl records are deduped
// batch by batch (only distinct reports are retained), ground truth
// accumulates per world, and each world's homes are detected the moment
// its stream ends. Close resolves the cross-world parts that need the
// whole campaign — the home filter uses every country's homes, and
// truth resolution needs the final TruthIndex — and fans the per-vendor
// filter+index builds out across the worker pool.
//
// Two dedup scopes run side by side, so both consumers of crawl data
// get exactly what the batch path computes: a campaign-scope Deduper
// per vendor (carried across world boundaries, matching the one-pass
// dedup analysis.NewIndex performs over the merged campaign log) and a
// fresh world-scope Deduper per (world, vendor) (matching the isolated
// per-country dedup of Figure 7's country datasets).
type CampaignAccumulator struct {
	workers int
	worlds  []*worldAcc
	cur     int // world currently streaming (merge delivers in order)
	camp    map[trace.Vendor]*vendorAcc
	state   *CampaignState
}

// vendorAcc is one dedup scope for one vendor.
type vendorAcc struct {
	dedup    *trace.Deduper
	distinct []trace.CrawlRecord
}

func newVendorAcc() *vendorAcc { return &vendorAcc{dedup: trace.NewDeduper()} }

func (va *vendorAcc) add(rec trace.CrawlRecord) {
	if va.dedup.Keep(rec) {
		va.distinct = append(va.distinct, rec)
	}
}

// worldAcc is one world's in-flight accumulation.
type worldAcc struct {
	fixes  []trace.GroundTruth
	crawls map[trace.Vendor]*vendorAcc
	homes  []geo.LatLon
	done   bool
}

// NewCampaignAccumulator builds the consumer for a campaign of the
// given world count. workers bounds the Close-time index-build fan-out
// (0 = one per CPU).
func NewCampaignAccumulator(worlds, workers int) *CampaignAccumulator {
	a := &CampaignAccumulator{workers: workers, camp: make(map[trace.Vendor]*vendorAcc)}
	for i := 0; i < worlds; i++ {
		a.worlds = append(a.worlds, &worldAcc{crawls: make(map[trace.Vendor]*vendorAcc)})
	}
	return a
}

// Consume implements Consumer.
func (a *CampaignAccumulator) Consume(b Batch) error {
	if b.World < 0 || b.World >= len(a.worlds) {
		return fmt.Errorf("pipeline: batch for world %d, accumulator sized for %d", b.World, len(a.worlds))
	}
	if b.World != a.cur {
		return fmt.Errorf("pipeline: world %d batch while world %d still streaming", b.World, a.cur)
	}
	wa := a.worlds[b.World]
	wa.fixes = append(wa.fixes, b.Fixes...)
	for _, rec := range b.Crawls {
		ca, ok := a.camp[rec.Vendor]
		if !ok {
			ca = newVendorAcc()
			a.camp[rec.Vendor] = ca
		}
		ca.add(rec)
		wv, ok := wa.crawls[rec.Vendor]
		if !ok {
			wv = newVendorAcc()
			wa.crawls[rec.Vendor] = wv
		}
		wv.add(rec)
	}
	if b.Final {
		wa.homes = analysis.DetectHomes(wa.fixes, 300)
		wa.done = true
		a.cur++
	}
	return nil
}

// Name labels this consumer in pipeline stats.
func (a *CampaignAccumulator) Name() string { return "accumulate" }

// Close implements Consumer: it assembles the CampaignState.
func (a *CampaignAccumulator) Close() error {
	for i, wa := range a.worlds {
		if !wa.done {
			return fmt.Errorf("pipeline: world %d stream never finished", i)
		}
	}
	st := &CampaignState{
		Filtered: make(map[trace.Vendor][]trace.CrawlRecord, len(trace.AnalysisVendors)),
		Indexes:  make(map[trace.Vendor]*analysis.Index, len(trace.AnalysisVendors)),
	}
	var allFixes []trace.GroundTruth
	mergedCrawls := make(map[trace.Vendor][]trace.CrawlRecord)
	for _, wa := range a.worlds {
		wd := WorldData{Fixes: wa.fixes, Homes: wa.homes, Crawls: make(map[trace.Vendor][]trace.CrawlRecord, len(wa.crawls))}
		for v, wv := range wa.crawls {
			wd.Crawls[v] = wv.distinct
		}
		st.Worlds = append(st.Worlds, wd)
		st.Homes = append(st.Homes, wa.homes...)
		allFixes = append(allFixes, wa.fixes...)
	}
	for v, ca := range a.camp {
		mergedCrawls[v] = ca.distinct
	}
	kept, removed := analysis.FilterNearHomes(allFixes, st.Homes, 300)
	st.Truth = analysis.NewTruthIndex(kept)
	st.RemovedFrac = removed
	st.Merged = analysis.NewDataset(allFixes, mergedCrawls)
	// Per-vendor home filter + index builds are independent read-only
	// passes; fan them out like the batch campaign does.
	type vendorPlane struct {
		crawls []trace.CrawlRecord
		index  *analysis.Index
	}
	planes := runner.Map(a.workers, len(trace.AnalysisVendors), func(i int) vendorPlane {
		crawls := analysis.FilterCrawlsNearHomes(st.Merged.CrawlsFor(trace.AnalysisVendors[i]), st.Homes, 300)
		return vendorPlane{crawls: crawls, index: analysis.NewIndex(st.Truth, crawls)}
	})
	for i, v := range trace.AnalysisVendors {
		st.Filtered[v] = planes[i].crawls
		st.Indexes[v] = planes[i].index
	}
	a.state = st
	return nil
}

// State returns the assembled campaign state. Valid only after the
// pipeline's Wait returned nil.
func (a *CampaignAccumulator) State() *CampaignState { return a.state }
