package pipeline

import (
	"fmt"
	"io"
	"sync"
	"testing"

	"tagsim/internal/cloud"
	"tagsim/internal/trace"
)

// BenchmarkPipelineThroughput pushes a synthetic report stream from
// concurrent world emitters through the ordered merge into the full
// consumer set — store ingester, campaign accumulator, columnar sink —
// and reports sustained reports/s: the pipeline-side ceiling for the
// "heavy traffic" north star. The b.N reports split across 4 worlds.
func BenchmarkPipelineThroughput(b *testing.B) {
	for _, consumers := range []string{"store", "store+sink+acc"} {
		b.Run(consumers, func(b *testing.B) {
			const nWorlds = 4
			services := map[trace.Vendor]*cloud.Service{
				trace.VendorApple:   cloud.NewService(trace.VendorApple),
				trace.VendorSamsung: cloud.NewService(trace.VendorSamsung),
			}
			cs := []Consumer{NewStoreIngester(services)}
			if consumers == "store+sink+acc" {
				cs = append(cs, NewReportSink(io.Discard, 0), NewCampaignAccumulator(nWorlds, 1))
			}
			// Pre-fabricate the per-world report sequences so the
			// benchmark clocks the pipeline, not the fixture.
			perWorld := b.N/nWorlds + 1
			reports := make([][]trace.Report, nWorlds)
			for w := range reports {
				reports[w] = make([]trace.Report, perWorld)
				for i := range reports[w] {
					reports[w][i] = synthReport(w, i)
					// Spread the tag space like a fleet would.
					reports[w][i].TagID = fmt.Sprintf("tag-%d", i%64)
				}
			}
			b.ResetTimer()
			p := New(nWorlds, Config{}, cs...)
			var wg sync.WaitGroup
			for w := 0; w < nWorlds; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					em := p.World(w)
					for _, r := range reports[w] {
						em.Report(r)
					}
					em.Close()
				}(w)
			}
			wg.Wait()
			if err := p.Wait(); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			total := float64(nWorlds * perWorld)
			b.ReportMetric(total/b.Elapsed().Seconds(), "reports/s")
		})
	}
}
