package tag

import (
	"testing"
	"time"

	"tagsim/internal/ble"
	"tagsim/internal/geo"
	"tagsim/internal/mobility"
	"tagsim/internal/trace"
)

var (
	epoch  = time.Date(2022, 3, 1, 0, 0, 0, 0, time.UTC)
	origin = geo.LatLon{Lat: 24.4539, Lon: 54.3773}
)

func newAirTag() *Tag {
	return New("airtag-1", AirTagProfile(), mobility.Stationary(origin), 1, epoch)
}

func newSmartTag() *Tag {
	return New("smarttag-1", SmartTagProfile(), mobility.Stationary(origin), 2, epoch)
}

func TestProfilesVendors(t *testing.T) {
	if AirTagProfile().Vendor != trace.VendorApple {
		t.Error("AirTag vendor wrong")
	}
	if SmartTagProfile().Vendor != trace.VendorSamsung {
		t.Error("SmartTag vendor wrong")
	}
}

// TestBatteryClaims pins the two battery facts the paper reports: both
// tags last about a year, and the SmartTag draws ~20% more than the
// AirTag.
func TestBatteryClaims(t *testing.T) {
	air := AirTagProfile()
	smart := SmartTagProfile()
	airLife := air.BatteryLife()
	smartLife := smart.BatteryLife()
	yr := 365 * 24 * time.Hour
	if airLife < 10*yr/12 || airLife > 20*yr/12 {
		t.Errorf("AirTag battery life = %.0f days, want ~1 year", airLife.Hours()/24)
	}
	if smartLife < 8*yr/12 || smartLife > 16*yr/12 {
		t.Errorf("SmartTag battery life = %.0f days, want ~1 year", smartLife.Hours()/24)
	}
	ratio := smart.MeanCurrentUA() / air.MeanCurrentUA()
	if ratio < 1.12 || ratio > 1.30 {
		t.Errorf("SmartTag/AirTag current ratio = %.2f, want ~1.2", ratio)
	}
}

func TestBatteryLifeDegenerate(t *testing.T) {
	p := Profile{AdvInterval: time.Second}
	if p.BatteryLife() != 0 {
		t.Error("zero-capacity battery should have zero life")
	}
}

func TestAdvDataAirTagDecodes(t *testing.T) {
	tg := newAirTag()
	raw, err := tg.AdvData(epoch.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	p := ble.NewPacket(raw, ble.LayerTypeAdvPDU, ble.Default)
	if e := p.ErrorLayer(); e != nil {
		t.Fatalf("decode: %v", e)
	}
	fm, ok := p.Layer(ble.LayerTypeFindMy).(*ble.FindMy)
	if !ok {
		t.Fatal("no FindMy layer")
	}
	if fm.Maintained() {
		t.Error("separated tag must not advertise maintained")
	}
	adv := p.Layer(ble.LayerTypeAdvPDU).(*ble.AdvPDU)
	if adv.Address != tg.Identity(epoch.Add(time.Hour)).Address {
		t.Error("advertised address does not match identity")
	}
	if !ble.IsAirTagPrefix(raw[8:]) {
		t.Error("AirTag adv missing the paper's 1EFF004C12 signature")
	}
}

func TestAdvDataSmartTagDecodes(t *testing.T) {
	tg := newSmartTag()
	raw, err := tg.AdvData(epoch.Add(2 * time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	p := ble.NewPacket(raw, ble.LayerTypeAdvPDU, ble.Default)
	st, ok := p.Layer(ble.LayerTypeSmartTag).(*ble.SmartTag)
	if !ok {
		t.Fatal("no SmartTag layer")
	}
	id := tg.Identity(epoch.Add(2 * time.Hour))
	if st.PrivacyID != id.PrivacyID() {
		t.Error("privacy ID mismatch")
	}
	name, ok := p.Layer(ble.LayerTypeADStructures).(*ble.ADStructures).LocalName()
	if !ok || name != "smarttag-1" {
		t.Errorf("local name = %q", name)
	}
}

func TestAdvDataUnknownVendor(t *testing.T) {
	p := AirTagProfile()
	p.Vendor = trace.VendorOther
	tg := New("x", p, mobility.Stationary(origin), 3, epoch)
	if _, err := tg.AdvData(epoch); err == nil {
		t.Error("unknown vendor must error")
	}
}

func TestIdentityRotation(t *testing.T) {
	tg := newAirTag() // separated: 24 h rotation
	id0 := tg.Identity(epoch)
	if tg.Identity(epoch.Add(23*time.Hour)) != id0 {
		t.Error("identity changed within the 24 h period")
	}
	if tg.Identity(epoch.Add(25*time.Hour)) == id0 {
		t.Error("identity failed to rotate after 24 h")
	}

	st := newSmartTag() // 15 min rotation
	if st.Identity(epoch.Add(20*time.Minute)) == st.Identity(epoch) {
		t.Error("SmartTag identity failed to rotate after 15 min")
	}
}

func TestAdvAddressRotatesOverDays(t *testing.T) {
	tg := newAirTag()
	seen := map[ble.AdvAddress]bool{}
	for d := 0; d < 10; d++ {
		seen[tg.Identity(epoch.Add(time.Duration(d)*24*time.Hour+time.Hour)).Address] = true
	}
	if len(seen) != 10 {
		t.Errorf("10 days produced %d distinct addresses, want 10", len(seen))
	}
}

func TestExpectedBeacons(t *testing.T) {
	air := newAirTag()
	if got := air.ExpectedBeacons(time.Minute); got != 30 {
		t.Errorf("AirTag beacons/min = %v, want 30 (2 s interval)", got)
	}
	smart := newSmartTag()
	if got := smart.ExpectedBeacons(time.Minute); got != 40 {
		t.Errorf("SmartTag beacons/min = %v, want 40 (1.5 s interval)", got)
	}
	var zero Profile
	zt := Tag{Profile: zero}
	if zt.ExpectedBeacons(time.Minute) != 0 {
		t.Error("zero interval should emit nothing")
	}
}

func TestSmartTagBeaconsMoreFrequent(t *testing.T) {
	// The SmartTag's aggressive strategy includes more frequent beacons.
	if SmartTagProfile().AdvInterval >= AirTagProfile().AdvInterval {
		t.Error("SmartTag must advertise more often than AirTag")
	}
}

func TestCountBeacons(t *testing.T) {
	tg := newAirTag()
	tg.CountBeacons(100)
	tg.CountBeacons(50)
	if tg.BeaconsEmitted() != 150 {
		t.Errorf("BeaconsEmitted = %d", tg.BeaconsEmitted())
	}
}

func TestPosFollowsMobility(t *testing.T) {
	dest := geo.Destination(origin, 90, 1000)
	it := mobility.NewItinerary(epoch, mobility.Move{Along: geo.Path{origin, dest}, SpeedKmh: 6})
	tg := New("t", AirTagProfile(), it, 4, epoch)
	if tg.Pos(epoch) != origin {
		t.Error("tag should start at origin")
	}
	if geo.Distance(tg.Pos(epoch.Add(time.Hour)), dest) > 1 {
		t.Error("tag should end at destination")
	}
}

func BenchmarkAdvDataAirTag(b *testing.B) {
	tg := newAirTag()
	at := epoch.Add(time.Hour)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tg.AdvData(at); err != nil {
			b.Fatal(err)
		}
	}
}
