// Package tag models the location tags themselves: vendor profiles
// (advertising cadence, radio, identity rotation), beacon generation, and
// the battery model behind the paper's observation that the SmartTag's
// more aggressive radio costs ~20% more battery while both tags still last
// about a year.
package tag

import (
	"fmt"
	"time"

	"tagsim/internal/ble"
	"tagsim/internal/geo"
	"tagsim/internal/mobility"
	"tagsim/internal/tagkeys"
	"tagsim/internal/trace"
)

// Profile captures everything vendor-specific about a tag model.
type Profile struct {
	Vendor trace.Vendor
	// AdvInterval is the advertising period while separated from the
	// owner (the regime all experiments run in).
	AdvInterval time.Duration
	// TxPowerDBm is the nominal transmit power (battery accounting).
	TxPowerDBm float64
	// Channel is the calibrated propagation model for this tag's radio.
	Channel ble.Channel
	// RotationNearOwner / RotationSeparated are the pseudonym rotation
	// periods in the two regimes.
	RotationNearOwner time.Duration
	RotationSeparated time.Duration
	// Battery parameters: cell capacity and current draws.
	BatteryCapacityMAh float64
	// IdleCurrentUA is the quiescent draw in microamps.
	IdleCurrentUA float64
	// BeaconChargeUC is the charge per transmitted beacon in
	// microcoulombs, a function of TX power and beacon air time.
	BeaconChargeUC float64
	// UWB marks Ultra Wideband support (AirTag, SmartTag+).
	UWB bool
}

// AirTagProfile returns the AirTag model: 2-second advertising, moderate
// TX power, 15-minute rotation near the owner and 24-hour when separated,
// on a CR2032 cell.
func AirTagProfile() Profile {
	return Profile{
		Vendor:             trace.VendorApple,
		AdvInterval:        2 * time.Second,
		TxPowerDBm:         4,
		Channel:            ble.DefaultChannel(ble.AirTagPathLoss),
		RotationNearOwner:  tagkeys.AirTagNearOwnerRotation,
		RotationSeparated:  tagkeys.AirTagSeparatedRotation,
		BatteryCapacityMAh: 220, // CR2032
		IdleCurrentUA:      12,
		BeaconChargeUC:     26,
		UWB:                true,
	}
}

// SmartTagProfile returns the SmartTag model: a faster advertising cadence
// and hotter radio (the "aggressive strategy" the paper measures), paying
// for it with roughly 20% higher battery drain.
func SmartTagProfile() Profile {
	return Profile{
		Vendor:             trace.VendorSamsung,
		AdvInterval:        1500 * time.Millisecond,
		TxPowerDBm:         8,
		Channel:            ble.DefaultChannel(ble.SmartTagPathLoss),
		RotationNearOwner:  tagkeys.SmartTagRotation,
		RotationSeparated:  tagkeys.SmartTagRotation,
		BatteryCapacityMAh: 220, // CR2032
		IdleCurrentUA:      12,
		BeaconChargeUC:     27,
		UWB:                false,
	}
}

// BatteryLife estimates how long the cell lasts under continuous
// separated-mode advertising.
func (p Profile) BatteryLife() time.Duration {
	// Average current = idle + beaconCharge/advInterval.
	beaconUA := p.BeaconChargeUC / p.AdvInterval.Seconds() // uC/s = uA
	totalUA := p.IdleCurrentUA + beaconUA
	if totalUA <= 0 {
		return 0
	}
	hours := p.BatteryCapacityMAh * 1000 / totalUA
	return time.Duration(hours * float64(time.Hour))
}

// MeanCurrentUA returns the average current draw in microamps.
func (p Profile) MeanCurrentUA() float64 {
	return p.IdleCurrentUA + p.BeaconChargeUC/p.AdvInterval.Seconds()
}

// Tag is one deployed location tag.
type Tag struct {
	ID      string
	Profile Profile
	// Mobility is the tag's true movement (it rides the vantage point).
	Mobility mobility.Model
	// Separated reports whether the tag is away from its owner; the
	// experiments always run separated (the paired devices stay home).
	Separated bool
	// Name is the user-visible tag name (advertised by SmartTags).
	Name string

	chain          *tagkeys.Chain
	beaconsEmitted uint64
}

// New creates a tag with a deterministic identity chain derived from seed.
func New(id string, profile Profile, m mobility.Model, seed uint64, epoch time.Time) *Tag {
	period := profile.RotationSeparated
	t := &Tag{ID: id, Profile: profile, Mobility: m, Separated: true, Name: id}
	t.chain = tagkeys.New(tagkeys.SecretFromSeed(seed), epoch, period)
	return t
}

// Chain exposes the identity chain (the vendor cloud needs it to resolve
// pseudonyms).
func (t *Tag) Chain() *tagkeys.Chain { return t.chain }

// Pos returns the tag's true position at time now.
func (t *Tag) Pos(now time.Time) geo.LatLon { return t.Mobility.Pos(now) }

// Identity returns the pseudonymous identity in force at now.
func (t *Tag) Identity(now time.Time) tagkeys.Identity { return t.chain.IdentityAt(now) }

// BeaconsEmitted returns how many beacons the tag has generated (for
// battery accounting in long runs).
func (t *Tag) BeaconsEmitted() uint64 { return t.beaconsEmitted }

// CountBeacons adds n emitted beacons to the tag's accounting. The
// simulator calls this from the encounter plane, which models beacon
// emission statistically rather than as one event per beacon.
func (t *Tag) CountBeacons(n uint64) { t.beaconsEmitted += n }

// AdvData builds the tag's current advertising PDU bytes — the exact
// frames a scanner would capture over the air.
func (t *Tag) AdvData(now time.Time) ([]byte, error) {
	id := t.Identity(now)
	switch t.Profile.Vendor {
	case trace.VendorApple:
		status := byte(ble.FindMyBatteryFull)
		if !t.Separated {
			status |= ble.FindMyStatusMaintained
		}
		frame := ble.FindMy{Status: status, PublicKey: id.Key, KeyBits: byte(id.Period & 0x3)}
		return ble.BuildAirTagAdv(id.Address, frame)
	case trace.VendorSamsung:
		frame := ble.SmartTag{
			Version:   1,
			PrivacyID: id.PrivacyID(),
			Aging:     uint32(id.Period) & 0xFFFFFF,
		}
		if t.Profile.UWB {
			frame.Flags |= ble.SmartTagFlagUWB
		}
		return ble.BuildSmartTagAdv(id.Address, frame, t.Name)
	default:
		return nil, fmt.Errorf("tag: vendor %v has no advertising format", t.Profile.Vendor)
	}
}

// ExpectedBeacons returns how many beacons the tag emits in a window — the
// statistical emission model used by the encounter plane.
func (t *Tag) ExpectedBeacons(window time.Duration) float64 {
	if t.Profile.AdvInterval <= 0 {
		return 0
	}
	return window.Seconds() / t.Profile.AdvInterval.Seconds()
}
