// Package tagkeys implements the rolling pseudonym schedule location tags
// use to stay private: each tag derives a fresh identity (advertising
// address and payload key material) every rotation period, and only a
// party holding the master secret — the vendor cloud acting for the owner —
// can map an observed pseudonym back to the tag.
//
// Apple derives AirTag pseudonyms from a P-224 key ratchet (SKN/SKS); this
// package substitutes an HMAC-SHA256 ratchet, which preserves the two
// properties the study depends on: pseudonyms rotate on schedule (defeating
// third-party scanners, as the paper notes for Tracker Detect / AirGuard)
// and the owner's service can still resolve them.
package tagkeys

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"time"

	"tagsim/internal/ble"
)

// Rotation periods used by the two ecosystems. Public measurements put the
// AirTag's separated-mode address rotation at roughly 24 h (15 min while
// with the owner) and the SmartTag's privacy ID rotation at 15 min.
const (
	AirTagNearOwnerRotation = 15 * time.Minute
	AirTagSeparatedRotation = 24 * time.Hour
	SmartTagRotation        = 15 * time.Minute
)

// Chain is a deterministic pseudonym ratchet for one tag.
type Chain struct {
	secret [32]byte
	epoch  time.Time
	period time.Duration
}

// New creates a chain from a master secret. The period must be positive.
func New(secret [32]byte, epoch time.Time, period time.Duration) *Chain {
	if period <= 0 {
		panic("tagkeys: non-positive rotation period")
	}
	return &Chain{secret: secret, epoch: epoch, period: period}
}

// SecretFromSeed expands a short seed (e.g. a simulation RNG draw) into a
// master secret.
func SecretFromSeed(seed uint64) [32]byte {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], seed)
	return sha256.Sum256(buf[:])
}

// Period returns the rotation period.
func (c *Chain) Period() time.Duration { return c.period }

// PeriodIndex returns the rotation counter at time t. Times before the
// epoch map to period 0.
func (c *Chain) PeriodIndex(t time.Time) uint64 {
	if t.Before(c.epoch) {
		return 0
	}
	return uint64(t.Sub(c.epoch) / c.period)
}

// material derives the 32 bytes of identity material for a period.
func (c *Chain) material(period uint64) [32]byte {
	mac := hmac.New(sha256.New, c.secret[:])
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], period)
	mac.Write(buf[:])
	var out [32]byte
	copy(out[:], mac.Sum(nil))
	return out
}

// Identity is one period's derived tag identity.
type Identity struct {
	Period  uint64
	Address ble.AdvAddress
	// Key is the payload key material: the FindMy public-key bytes for
	// AirTags, of which the first SmartTagIDLen bytes serve as the
	// SmartTag privacy ID.
	Key [ble.FindMyKeyLen]byte
}

// IdentityAt returns the identity in force at time t.
func (c *Chain) IdentityAt(t time.Time) Identity {
	return c.IdentityFor(c.PeriodIndex(t))
}

// IdentityFor returns the identity for an explicit period counter.
func (c *Chain) IdentityFor(period uint64) Identity {
	m := c.material(period)
	var id Identity
	id.Period = period
	copy(id.Address[:], m[:6])
	id.Address[0] |= 0xC0 // random static address prefix
	// Second derivation step for the payload key so address bytes do not
	// leak key bytes.
	mac := hmac.New(sha256.New, c.secret[:])
	mac.Write([]byte("payload"))
	mac.Write(m[:])
	sum := mac.Sum(nil)
	copy(id.Key[:], sum[:ble.FindMyKeyLen])
	return id
}

// PrivacyID returns the SmartTag rolling identifier for the identity.
func (id Identity) PrivacyID() [ble.SmartTagIDLen]byte {
	var p [ble.SmartTagIDLen]byte
	copy(p[:], id.Key[:ble.SmartTagIDLen])
	return p
}

// NextRotation returns the instant the identity in force at t expires.
func (c *Chain) NextRotation(t time.Time) time.Time {
	idx := c.PeriodIndex(t)
	return c.epoch.Add(time.Duration(idx+1) * c.period)
}

// Resolver maps observed pseudonyms back to tag IDs, the owner-side
// operation the vendor clouds perform when ingesting crowd reports.
type Resolver struct {
	byAddress map[ble.AdvAddress]string
}

// NewResolver precomputes the pseudonyms of each tag's chain over a time
// window, mimicking the server-side rolling-key lookup tables.
func NewResolver(chains map[string]*Chain, from, to time.Time) *Resolver {
	r := &Resolver{byAddress: make(map[ble.AdvAddress]string)}
	for tagID, chain := range chains {
		first := chain.PeriodIndex(from)
		last := chain.PeriodIndex(to)
		for p := first; p <= last; p++ {
			r.byAddress[chain.IdentityFor(p).Address] = tagID
		}
	}
	return r
}

// Resolve returns the tag that owns a pseudonymous address, if known.
func (r *Resolver) Resolve(addr ble.AdvAddress) (string, bool) {
	id, ok := r.byAddress[addr]
	return id, ok
}

// Size returns the number of precomputed pseudonyms (for table-size
// accounting).
func (r *Resolver) Size() int { return len(r.byAddress) }
