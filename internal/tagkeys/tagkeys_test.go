package tagkeys

import (
	"testing"
	"time"
)

var epoch = time.Date(2022, 3, 1, 0, 0, 0, 0, time.UTC)

func testChain(period time.Duration) *Chain {
	return New(SecretFromSeed(42), epoch, period)
}

func TestDeterminism(t *testing.T) {
	a := testChain(SmartTagRotation)
	b := testChain(SmartTagRotation)
	at := epoch.Add(3 * time.Hour)
	if a.IdentityAt(at) != b.IdentityAt(at) {
		t.Error("same secret and time must yield the same identity")
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(SecretFromSeed(1), epoch, SmartTagRotation)
	b := New(SecretFromSeed(2), epoch, SmartTagRotation)
	if a.IdentityAt(epoch) == b.IdentityAt(epoch) {
		t.Error("different secrets must yield different identities")
	}
}

func TestRotationSchedule(t *testing.T) {
	c := testChain(15 * time.Minute)
	id0 := c.IdentityAt(epoch)
	id0b := c.IdentityAt(epoch.Add(14 * time.Minute))
	id1 := c.IdentityAt(epoch.Add(15 * time.Minute))
	if id0 != id0b {
		t.Error("identity must be stable within a period")
	}
	if id0 == id1 {
		t.Error("identity must rotate at the period boundary")
	}
	if id0.Address == id1.Address {
		t.Error("address must rotate")
	}
	if id0.Key == id1.Key {
		t.Error("key must rotate")
	}
}

func TestPeriodIndex(t *testing.T) {
	c := testChain(time.Hour)
	cases := []struct {
		at   time.Time
		want uint64
	}{
		{epoch, 0},
		{epoch.Add(59 * time.Minute), 0},
		{epoch.Add(time.Hour), 1},
		{epoch.Add(25 * time.Hour), 25},
		{epoch.Add(-time.Hour), 0}, // pre-epoch clamps
	}
	for _, tc := range cases {
		if got := c.PeriodIndex(tc.at); got != tc.want {
			t.Errorf("PeriodIndex(%v) = %d, want %d", tc.at, got, tc.want)
		}
	}
}

func TestNextRotation(t *testing.T) {
	c := testChain(15 * time.Minute)
	at := epoch.Add(7 * time.Minute)
	next := c.NextRotation(at)
	if !next.Equal(epoch.Add(15 * time.Minute)) {
		t.Errorf("NextRotation = %v", next)
	}
	if c.IdentityAt(next) == c.IdentityAt(at) {
		t.Error("identity must differ after NextRotation")
	}
}

func TestAddressesAreRandomStatic(t *testing.T) {
	c := testChain(SmartTagRotation)
	for p := uint64(0); p < 100; p++ {
		if !c.IdentityFor(p).Address.IsRandomStatic() {
			t.Fatalf("period %d address is not random static", p)
		}
	}
}

func TestPseudonymUniqueness(t *testing.T) {
	// Across many tags and periods, pseudonyms must be distinct (no
	// ratchet collisions at simulation scale).
	seen := make(map[string]bool)
	for seed := uint64(0); seed < 50; seed++ {
		c := New(SecretFromSeed(seed), epoch, SmartTagRotation)
		for p := uint64(0); p < 96; p++ { // one day of 15-min periods
			id := c.IdentityFor(p)
			k := string(id.Address[:]) + string(id.Key[:])
			if seen[k] {
				t.Fatalf("pseudonym collision at seed %d period %d", seed, p)
			}
			seen[k] = true
		}
	}
}

func TestAddressDoesNotLeakKey(t *testing.T) {
	c := testChain(SmartTagRotation)
	id := c.IdentityFor(5)
	for i := 0; i < 6; i++ {
		if id.Address[i] != id.Key[i] {
			return
		}
	}
	t.Error("address bytes equal leading key bytes; payload derivation missing")
}

func TestPrivacyID(t *testing.T) {
	c := testChain(SmartTagRotation)
	id := c.IdentityFor(3)
	p := id.PrivacyID()
	for i := range p {
		if p[i] != id.Key[i] {
			t.Fatal("privacy ID must be the key prefix")
		}
	}
}

func TestResolver(t *testing.T) {
	chains := map[string]*Chain{
		"airtag-1":   New(SecretFromSeed(10), epoch, AirTagSeparatedRotation),
		"smarttag-1": New(SecretFromSeed(11), epoch, SmartTagRotation),
	}
	from, to := epoch, epoch.Add(24*time.Hour)
	r := NewResolver(chains, from, to)

	// One day: AirTag separated mode has 2 pseudonyms (period 0 and 1),
	// SmartTag has 97.
	if r.Size() < 90 {
		t.Errorf("resolver has %d pseudonyms", r.Size())
	}
	at := epoch.Add(13 * time.Hour)
	for tagID, chain := range chains {
		got, ok := r.Resolve(chain.IdentityAt(at).Address)
		if !ok || got != tagID {
			t.Errorf("Resolve(%s@%v) = %q, %v", tagID, at, got, ok)
		}
	}
	// Unknown address.
	other := New(SecretFromSeed(99), epoch, SmartTagRotation)
	if _, ok := r.Resolve(other.IdentityAt(at).Address); ok {
		t.Error("foreign pseudonym must not resolve")
	}
}

func TestNewPanicsOnBadPeriod(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(SecretFromSeed(1), epoch, 0)
}

func BenchmarkIdentityAt(b *testing.B) {
	c := testChain(SmartTagRotation)
	at := epoch.Add(300 * time.Hour)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.IdentityAt(at)
	}
}

func BenchmarkResolve(b *testing.B) {
	chains := make(map[string]*Chain, 100)
	for i := 0; i < 100; i++ {
		chains[string(rune('a'+i%26))+string(rune('0'+i/26))] = New(SecretFromSeed(uint64(i)), epoch, SmartTagRotation)
	}
	r := NewResolver(chains, epoch, epoch.Add(24*time.Hour))
	addr := chains["a0"].IdentityAt(epoch.Add(time.Hour)).Address
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := r.Resolve(addr); !ok {
			b.Fatal("lost pseudonym")
		}
	}
}
