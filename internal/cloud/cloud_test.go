package cloud

import (
	"testing"
	"time"

	"tagsim/internal/geo"
	"tagsim/internal/trace"
)

var (
	t0  = time.Date(2022, 3, 7, 9, 0, 0, 0, time.UTC)
	pos = geo.LatLon{Lat: 24.45, Lon: 54.37}
)

func report(at time.Time, tagID string, p geo.LatLon) trace.Report {
	return trace.Report{T: at, HeardAt: at, TagID: tagID, Pos: p, ReporterID: "dev-1"}
}

func TestIngestAndLastSeen(t *testing.T) {
	s := NewService(trace.VendorApple)
	if _, _, ok := s.LastSeen("tag"); ok {
		t.Error("unknown tag must have no location")
	}
	if !s.Ingest(report(t0, "tag", pos)) {
		t.Fatal("first report must be accepted")
	}
	got, at, ok := s.LastSeen("tag")
	if !ok || got != pos || !at.Equal(t0) {
		t.Fatalf("LastSeen = %v %v %v", got, at, ok)
	}
}

func TestRateCap(t *testing.T) {
	s := NewService(trace.VendorSamsung)
	if !s.Ingest(report(t0, "tag", pos)) {
		t.Fatal("first accept failed")
	}
	// Within the cap: rejected, state unchanged.
	p2 := geo.Destination(pos, 90, 100)
	if s.Ingest(report(t0.Add(time.Minute), "tag", p2)) {
		t.Error("report inside the rate cap must be rejected")
	}
	got, at, _ := s.LastSeen("tag")
	if got != pos || !at.Equal(t0) {
		t.Error("rejected report must not change state")
	}
	// After the cap: accepted.
	if !s.Ingest(report(t0.Add(s.MinUpdateInterval+time.Second), "tag", p2)) {
		t.Error("report after the cap must be accepted")
	}
	accepted, rejected := s.Stats()
	if accepted != 2 || rejected != 1 {
		t.Errorf("stats = %d/%d", accepted, rejected)
	}
}

func TestRateCapBoundsHourlyRate(t *testing.T) {
	// Saturating the service for an hour must not exceed ~18.75 accepts.
	s := NewService(trace.VendorApple)
	accepted := 0
	for sec := 0; sec < 3600; sec += 10 {
		if s.Ingest(report(t0.Add(time.Duration(sec)*time.Second), "tag", pos)) {
			accepted++
		}
	}
	if accepted < 15 || accepted > 20 {
		t.Errorf("hourly accepted = %d, want 15-20 (the Figure 4 plateau)", accepted)
	}
}

func TestOutOfOrderRejected(t *testing.T) {
	s := NewService(trace.VendorApple)
	s.Ingest(report(t0.Add(time.Hour), "tag", pos))
	if s.Ingest(report(t0, "tag", geo.Destination(pos, 0, 500))) {
		t.Error("stale report must not regress last-seen")
	}
}

func TestPerTagIndependence(t *testing.T) {
	s := NewService(trace.VendorApple)
	if !s.Ingest(report(t0, "tag-a", pos)) || !s.Ingest(report(t0, "tag-b", pos)) {
		t.Error("rate cap must be per tag")
	}
}

func TestHistory(t *testing.T) {
	s := NewService(trace.VendorApple)
	s.Ingest(report(t0, "tag", pos))
	s.Ingest(report(t0.Add(10*time.Minute), "tag", geo.Destination(pos, 0, 300)))
	h := s.History("tag")
	if len(h) != 2 {
		t.Fatalf("history has %d entries", len(h))
	}
	if !h[0].T.Before(h[1].T) {
		t.Error("history out of order")
	}
	if s.History("nope") != nil {
		t.Error("unknown tag history should be nil")
	}
	// History disabled.
	s2 := NewService(trace.VendorApple)
	s2.KeepHistory = false
	s2.Ingest(report(t0, "tag", pos))
	if len(s2.History("tag")) != 0 {
		t.Error("history kept while disabled")
	}
}

func TestRegisterAndTagIDs(t *testing.T) {
	s := NewService(trace.VendorApple)
	s.Register("b")
	s.Register("a")
	s.Register("a") // idempotent
	ids := s.TagIDs()
	if len(ids) != 2 || ids[0] != "a" || ids[1] != "b" {
		t.Errorf("TagIDs = %v", ids)
	}
	if _, _, ok := s.LastSeen("a"); ok {
		t.Error("registered but unreported tag must have no location")
	}
}

func TestCombinedView(t *testing.T) {
	apple := NewService(trace.VendorApple)
	samsung := NewService(trace.VendorSamsung)
	pA := pos
	pS := geo.Destination(pos, 90, 400)
	apple.Ingest(report(t0, "tag", pA))
	samsung.Ingest(report(t0.Add(5*time.Minute), "tag", pS))

	c := Combined{apple, samsung}
	got, at, ok := c.LastSeen("tag")
	if !ok || got != pS || !at.Equal(t0.Add(5*time.Minute)) {
		t.Errorf("combined LastSeen = %v %v %v, want freshest (samsung)", got, at, ok)
	}
	// Merged history is time-sorted across services.
	h := c.MergedHistory("tag")
	if len(h) != 2 || !h[0].T.Before(h[1].T) {
		t.Errorf("merged history = %v", h)
	}
	// Empty combined.
	if _, _, ok := (Combined{}).LastSeen("tag"); ok {
		t.Error("empty combined must report nothing")
	}
}

func TestCombinedBeatsIndividualFreshness(t *testing.T) {
	// The combined ecosystem's defining property: its last-seen is never
	// staler than either component's.
	apple := NewService(trace.VendorApple)
	samsung := NewService(trace.VendorSamsung)
	c := Combined{apple, samsung}
	for i := 0; i < 50; i++ {
		at := t0.Add(time.Duration(i*7) * time.Minute)
		r := report(at, "tag", geo.Destination(pos, float64(i), float64(i*10)))
		if i%2 == 0 {
			apple.Ingest(r)
		} else {
			samsung.Ingest(r)
		}
		_, ct, _ := c.LastSeen("tag")
		if _, at2, ok := apple.LastSeen("tag"); ok && ct.Before(at2) {
			t.Fatal("combined staler than apple")
		}
		if _, at2, ok := samsung.LastSeen("tag"); ok && ct.Before(at2) {
			t.Fatal("combined staler than samsung")
		}
	}
}

func TestServiceString(t *testing.T) {
	s := NewService(trace.VendorApple)
	s.Ingest(report(t0, "tag", pos))
	if got := s.String(); got == "" {
		t.Error("String should describe the service")
	}
}

// TestHistoryRetentionCap: the serving-subsystem satellite — a bounded
// history keeps only the newest HistoryLimit accepted reports, while the
// default (0) retains everything for full ground-truth joins.
func TestHistoryRetentionCap(t *testing.T) {
	s := NewService(trace.VendorApple)
	s.HistoryLimit = 4
	var accepted []trace.Report
	for i := 0; i < 12; i++ {
		r := report(t0.Add(time.Duration(i)*4*time.Minute), "tag", geo.Destination(pos, float64(i*30), float64(i*50)))
		if !s.Ingest(r) {
			t.Fatalf("report %d rejected", i)
		}
		accepted = append(accepted, r)
	}
	h := s.History("tag")
	if len(h) != 4 {
		t.Fatalf("capped history holds %d reports, want 4", len(h))
	}
	for i, r := range h {
		if r != accepted[8+i] {
			t.Fatalf("capped history[%d] is not the %d-th newest accepted report", i, 4-i)
		}
	}
	// The cap never touches the last-known surface the crawlers poll.
	if _, at, ok := s.LastSeen("tag"); !ok || !at.Equal(accepted[11].HeardAt) {
		t.Error("LastSeen diverged under a history cap")
	}
	// Default remains unbounded.
	if d := NewService(trace.VendorApple); d.HistoryLimit != 0 {
		t.Error("history must default to unbounded retention")
	}
}

// refService is the pre-refactor cloud.Service ingestion logic, kept
// verbatim as the behavioral reference for the store-backed Service.
type refService struct {
	minInterval time.Duration
	last        map[string]trace.Report
	hasLast     map[string]bool
	history     map[string][]trace.Report
	acc, rej    uint64
}

func newRefService() *refService {
	return &refService{
		minInterval: DefaultMinUpdateInterval,
		last:        map[string]trace.Report{},
		hasLast:     map[string]bool{},
		history:     map[string][]trace.Report{},
	}
}

func (s *refService) ingest(r trace.Report) bool {
	seenAt := r.HeardAt
	if seenAt.IsZero() {
		seenAt = r.T
	}
	if s.hasLast[r.TagID] {
		prev := s.last[r.TagID]
		prevAt := prev.HeardAt
		if prevAt.IsZero() {
			prevAt = prev.T
		}
		if !seenAt.After(prevAt) || seenAt.Sub(prevAt) < s.minInterval {
			s.rej++
			return false
		}
	}
	s.last[r.TagID] = r
	s.hasLast[r.TagID] = true
	s.history[r.TagID] = append(s.history[r.TagID], r)
	s.acc++
	return true
}

// TestStoreBackedServiceMatchesReference drives the refactored Service
// and the historical map-based logic with an adversarial deterministic
// stream (in-cap, boundary, out-of-order, multi-tag) and demands
// identical accept decisions, last-seen state, histories, and counters —
// the guarantee that every table/figure stays byte-identical.
func TestStoreBackedServiceMatchesReference(t *testing.T) {
	svc := NewService(trace.VendorApple)
	ref := newRefService()
	tags := []string{"airtag-1", "smarttag-1", "tag-x", "tag-y", "tag-z"}
	// Deterministic pseudo-random jitter without an RNG dependency.
	for i := 0; i < 3000; i++ {
		tag := tags[(i*7)%len(tags)]
		jitter := time.Duration((i*i*131)%700-220) * time.Second
		at := t0.Add(time.Duration(i)*45*time.Second + jitter)
		r := report(at, tag, geo.Destination(pos, float64(i%360), float64(i%500)))
		if i%13 == 0 {
			r.HeardAt = time.Time{} // exercise the T fallback
		}
		if got, want := svc.Ingest(r), ref.ingest(r); got != want {
			t.Fatalf("report %d: accept=%v, reference says %v", i, got, want)
		}
	}
	for _, tag := range tags {
		gotPos, gotAt, ok := svc.LastSeen(tag)
		wantLast := ref.last[tag]
		wantAt := wantLast.HeardAt
		if wantAt.IsZero() {
			wantAt = wantLast.T
		}
		if !ok || gotPos != wantLast.Pos || !gotAt.Equal(wantAt) {
			t.Errorf("%s: LastSeen diverged from reference", tag)
		}
		got, want := svc.History(tag), ref.history[tag]
		if len(got) != len(want) {
			t.Fatalf("%s: history length %d, reference %d", tag, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s: history[%d] diverged", tag, i)
			}
		}
	}
	if acc, rej := svc.Stats(); acc != ref.acc || rej != ref.rej {
		t.Errorf("stats = %d/%d, reference %d/%d", acc, rej, ref.acc, ref.rej)
	}
}

func BenchmarkIngest(b *testing.B) {
	s := NewService(trace.VendorApple)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Ingest(report(t0.Add(time.Duration(i)*4*time.Minute), "tag", pos))
	}
}
