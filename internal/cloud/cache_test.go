package cloud

import (
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tagsim/internal/geo"
	"tagsim/internal/trace"
)

var cacheBase = time.Date(2022, 3, 7, 9, 0, 0, 0, time.UTC)

func cacheServices() (map[trace.Vendor]*Service, *Service, *Service) {
	apple := NewService(trace.VendorApple)
	samsung := NewService(trace.VendorSamsung)
	return map[trace.Vendor]*Service{
		trace.VendorApple: apple, trace.VendorSamsung: samsung,
	}, apple, samsung
}

// TestHotCacheNeverStale is the invalidation property: after ANY state
// change to a tag's shard — accepted ingest, restore, registration —
// the very next cached read reflects it, because the entry's epoch no
// longer matches. A single-slot cache maximizes collisions, so the
// property also holds through constant eviction.
func TestHotCacheNeverStale(t *testing.T) {
	services, apple, samsung := cacheServices()
	direct := NewHotCache(services, 1)
	was := SetHotCache(false)
	defer SetHotCache(was)
	SetHotCache(true)

	cache := NewHotCache(services, 1)
	tags := []string{"hot-a", "hot-b", "hot-c"}
	for step := 0; step < 60; step++ {
		id := tags[step%len(tags)]
		at := cacheBase.Add(time.Duration(step) * 4 * time.Minute)
		svc := apple
		if step%2 == 1 {
			svc = samsung
		}
		switch step % 5 {
		case 3: // restore path
			svc.Restore([]trace.Report{{T: at, TagID: id, Vendor: svc.Vendor(),
				Pos: geo.LatLon{Lat: float64(step)}}})
		case 4: // rejected ingest: no state change, cache may keep serving
			svc.Ingest(trace.Report{T: cacheBase, TagID: id, Vendor: svc.Vendor()})
		default:
			svc.Ingest(trace.Report{T: at, HeardAt: at, TagID: id, Vendor: svc.Vendor(),
				Pos: geo.LatLon{Lon: float64(step)}})
		}
		// Every read after every write: cached answers must equal the
		// direct (disabled-path) computation exactly.
		for _, q := range tags {
			SetHotCache(false)
			wPos, wAt, wFound, wKnown := direct.LastSeen(q)
			wTrack, _ := direct.Track(q)
			SetHotCache(true)
			gPos, gAt, gFound, gKnown := cache.LastSeen(q)
			if gPos != wPos || !gAt.Equal(wAt) || gFound != wFound || gKnown != wKnown {
				t.Fatalf("step %d: cached lastknown(%s) = (%v,%v,%v,%v), want (%v,%v,%v,%v)",
					step, q, gPos, gAt, gFound, gKnown, wPos, wAt, wFound, wKnown)
			}
			gTrack, _ := cache.Track(q)
			if !reflect.DeepEqual(gTrack, wTrack) {
				t.Fatalf("step %d: cached track(%s) has %d reports, want %d", step, q, len(gTrack), len(wTrack))
			}
			if cache.Known(q) != wKnown {
				t.Fatalf("step %d: cached known(%s) != %v", step, q, wKnown)
			}
			for _, limit := range []int{0, 2, -1} {
				SetHotCache(false)
				wHist, _ := direct.HistoryTail(q, limit)
				SetHotCache(true)
				gHist, gHistKnown := cache.HistoryTail(q, limit)
				if gHistKnown != wKnown || !reflect.DeepEqual(gHist, wHist) {
					t.Fatalf("step %d: cached history(%s, %d) has %d reports (known=%v), want %d (known=%v)",
						step, q, limit, len(gHist), gHistKnown, len(wHist), wKnown)
				}
			}
		}
	}
	// Unknown tags stay unknown through the cache.
	if _, _, _, known := cache.LastSeen("ghost"); known {
		t.Error("cache invented a tag")
	}
	if _, known := cache.Track("ghost"); known {
		t.Error("cache invented a track")
	}
	if hist, known := cache.HistoryTail("ghost", 5); known || hist != nil {
		t.Error("cache invented a history")
	}
	// Registration alone flips known without a fix — and invalidates.
	apple.Register("paired-quiet")
	if _, _, found, known := cache.LastSeen("paired-quiet"); !known || found {
		t.Error("registered-but-quiet tag must be known with no fix")
	}
}

// TestHotCacheHitServesWithoutStores: a repeated query on an unchanged
// tag is served from the slot — observable through the lazy track fill
// sharing the last-known entry.
func TestHotCacheHitServesWithoutStores(t *testing.T) {
	services, apple, _ := cacheServices()
	was := SetHotCache(true)
	defer SetHotCache(was)
	at := cacheBase
	apple.Ingest(trace.Report{T: at, TagID: "solo", Vendor: trace.VendorApple,
		Pos: geo.LatLon{Lat: 1, Lon: 2}})

	cache := NewHotCache(services, 8)
	_, seenAt, found, known := cache.LastSeen("solo")
	if !known || !found || !seenAt.Equal(at) {
		t.Fatalf("lastknown fill = (%v, %v, %v)", seenAt, found, known)
	}
	track, known := cache.Track("solo") // lazy fill onto the same entry
	if !known || len(track) != 1 {
		t.Fatalf("track fill = %d reports, known=%v", len(track), known)
	}
	// Same answers again, now from the filled slot.
	if _, _, f2, k2 := cache.LastSeen("solo"); !f2 || !k2 {
		t.Error("cached last-known hit lost the fix")
	}
	if tr2, _ := cache.Track("solo"); len(tr2) != 1 {
		t.Error("cached track hit lost the report")
	}
}

// TestHotCacheRaced races cached readers against live ingest on a
// single-slot cache (maximum eviction pressure): a reader must never
// observe a tag's last-seen time move backward — the cached answer is
// never staler than the epoch it was published under. Run under -race.
func TestHotCacheRaced(t *testing.T) {
	services, apple, samsung := cacheServices()
	was := SetHotCache(true)
	defer SetHotCache(was)
	cache := NewHotCache(services, 1)
	tags := []string{"raced-a", "raced-b"}

	var stop atomic.Bool
	var wg sync.WaitGroup
	for w, svc := range []*Service{apple, samsung} {
		wg.Add(1)
		go func(w int, svc *Service) {
			defer wg.Done()
			for step := 0; step < 300; step++ {
				at := cacheBase.Add(time.Duration(step*240+w) * time.Second)
				svc.Ingest(trace.Report{T: at, TagID: tags[step%len(tags)],
					Vendor: svc.Vendor(), Pos: geo.LatLon{Lat: float64(step)}})
			}
		}(w, svc)
	}
	errs := make(chan string, 4)
	var rg sync.WaitGroup
	for r := 0; r < 3; r++ {
		rg.Add(1)
		go func(r int) {
			defer rg.Done()
			lastAt := map[string]time.Time{}
			for !stop.Load() {
				id := tags[r%len(tags)]
				if _, at, found, _ := cache.LastSeen(id); found {
					if at.Before(lastAt[id]) {
						errs <- fmt.Sprintf("cached last-seen of %s went backward: %v -> %v", id, lastAt[id], at)
						return
					}
					lastAt[id] = at
				}
				cache.Track(id)
				cache.HistoryTail(id, 3)
				cache.Known(id)
			}
		}(r)
	}
	wg.Wait()
	stop.Store(true)
	rg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	// Quiesced: cached equals direct for every tag.
	for _, id := range tags {
		SetHotCache(false)
		_, wantAt, _, _ := cache.LastSeen(id)
		wantTrack, _ := cache.Track(id)
		wantHist, _ := cache.HistoryTail(id, 3)
		SetHotCache(true)
		_, gotAt, _, _ := cache.LastSeen(id)
		gotTrack, _ := cache.Track(id)
		gotHist, _ := cache.HistoryTail(id, 3)
		if !gotAt.Equal(wantAt) || !reflect.DeepEqual(gotTrack, wantTrack) || !reflect.DeepEqual(gotHist, wantHist) {
			t.Errorf("%s: cached read diverged from direct after the race", id)
		}
	}
}

// TestMergedHistoryTail pins the pushdown merge against the full
// merge-then-slice computation.
func TestMergedHistoryTail(t *testing.T) {
	_, apple, samsung := cacheServices()
	combined := Combined{apple, samsung}
	id := "tail-tag"
	for k := 0; k < 7; k++ {
		at := cacheBase.Add(time.Duration(k) * 4 * time.Minute)
		svc := apple
		if k%3 == 1 {
			svc = samsung
		}
		svc.Ingest(trace.Report{T: at, HeardAt: at, TagID: id, Vendor: svc.Vendor(),
			Pos: geo.LatLon{Lat: float64(k)}})
	}
	full := combined.MergedHistory(id)
	if len(full) != 7 {
		t.Fatalf("merged history = %d reports, want 7", len(full))
	}
	for _, limit := range []int{-1, 0, 1, 3, 7, 100} {
		got := combined.MergedHistoryTail(id, limit)
		want := full
		if limit >= 0 && limit < len(full) {
			want = full[len(full)-limit:]
		}
		if len(got) != len(want) {
			t.Fatalf("limit=%d: %d reports, want %d", limit, len(got), len(want))
		}
		for i := range got {
			if !got[i].T.Equal(want[i].T) {
				t.Fatalf("limit=%d: report %d at %v, want %v", limit, i, got[i].T, want[i].T)
			}
		}
	}
	if got := combined.MergedHistoryTail(id, 0); got == nil {
		t.Error("limit 0 with history must be empty non-nil")
	}
	if got := combined.MergedHistoryTail("ghost", 0); got != nil {
		t.Error("limit 0 without history must be nil")
	}
	if got := combined.MergedHistoryTail("ghost", 3); got != nil {
		t.Error("unknown tag tail must be nil")
	}
}
