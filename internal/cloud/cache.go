// The hot-tag cache of the query plane. The serving workload the load
// harness models — and the tag-popularity regime the tagging literature
// measures — is Zipf: a handful of hot tags absorb most of the query
// mass. At the same time the vendor rate cap (Figure 4's plateau) keeps
// any one tag's state changing at most every ~3 minutes. Both skews
// point the same way: a small, bounded, direct-mapped cache in front of
// the cross-vendor merge answers the overwhelming majority of
// /v1/lastknown, /v1/track, and capped /v1/history queries without
// touching the stores at
// all, and stays exactly fresh because every entry is keyed to the
// store shard epochs it was computed under — any write to a tag's shard
// bumps the epoch and the entry stops matching.
//
// Direct-mapped replacement is deliberately Zipf-aware: a cold tag that
// collides with a hot one steals the slot for a single fill, and the
// next hot-tag query immediately takes it back, so hot tags dominate
// slot residency in proportion to their query share without any
// LRU bookkeeping on the read path.
package cloud

import (
	"sync/atomic"
	"time"

	"tagsim/internal/geo"
	"tagsim/internal/obs"
	otrace "tagsim/internal/obs/trace"
	"tagsim/internal/store"
	"tagsim/internal/trace"
)

// DefaultHotCacheSlots sizes NewHotCache's slot array when given
// n <= 0. With Zipf-skewed popularity a few hundred tags carry most of
// the query mass, but a direct-mapped cache needs slack well beyond the
// hot set: two hot tags sharing a slot evict each other on every
// alternation, so the array is sized 4096 — several times any realistic
// hot set — to keep such collisions rare while staying bounded (the
// slot array is 64KiB of pointers).
const DefaultHotCacheSlots = 4096

// hotCacheDisabled bypasses the cache (every query recomputes against
// the stores) — the escape hatch the cached-vs-direct equivalence
// tests and benchmarks toggle, mirroring store.SetLockedReads.
var hotCacheDisabled atomic.Bool

// SetHotCache toggles hot-tag caching (default on). It returns the
// previous setting.
func SetHotCache(enabled bool) (was bool) { return !hotCacheDisabled.Swap(!enabled) }

// HotCacheEnabled reports whether hot-tag caching is enabled.
func HotCacheEnabled() bool { return !hotCacheDisabled.Load() }

// hotEntry is one immutable cache fill: everything the combined-view
// last-known, track, and capped-history queries need for one tag, valid
// exactly while the summed shard epochs of the backing stores still
// equal epoch. The track and history window are filled lazily (a
// last-known query pays for neither merge), hasTrack/hasHist keeping
// "not computed" apart from "known tag, empty result". The history
// window is cached at one limit per entry — the companion app's history
// pane asks for the same newest-N window every time, so a second limit
// on the same hot tag simply refills.
type hotEntry struct {
	tag       string
	epoch     uint64
	known     bool
	found     bool
	pos       geo.LatLon
	at        time.Time
	hasTrack  bool
	track     []trace.Report
	hasHist   bool
	histLimit int
	hist      []trace.Report
}

// HotCache is a bounded, epoch-validated cache over the combined
// (freshest-wins) view of a set of vendor services. All methods are
// safe for unsynchronized concurrent use: slots are atomic pointers to
// immutable entries, so the read path is two atomic loads plus one
// epoch recheck per backing store, and concurrent fills simply
// last-write-win.
type HotCache struct {
	svcs     []*Service // sorted by vendor, for deterministic probes
	combined Combined
	mask     uint64
	slots    []atomic.Pointer[hotEntry]

	// Effectiveness counters (obs-gated atomics, one add per probe on
	// the hot path). A probe is a hit when it returns a valid entry and
	// a miss otherwise; misses where the slot held this very tag under a
	// stale epoch additionally count as invalidations — the share of
	// misses caused by writes rather than by collisions or cold slots.
	// Fills count entry publications, including lazy track/history
	// upgrades of a hit.
	hits          obs.Counter
	misses        obs.Counter
	fills         obs.Counter
	invalidations obs.Counter
}

// CacheStats is a point-in-time copy of a HotCache's effectiveness
// counters — the decomposition of the cached read path's speedup that
// /v1/stats and /metrics surface.
type CacheStats struct {
	Hits          uint64 `json:"hits"`
	Misses        uint64 `json:"misses"`
	Fills         uint64 `json:"fills"`
	Invalidations uint64 `json:"invalidations"`
}

// Stats returns the cache's counters. Loads are individually atomic,
// not mutually consistent under concurrent probes.
func (c *HotCache) Stats() CacheStats {
	return CacheStats{
		Hits:          c.hits.Value(),
		Misses:        c.misses.Value(),
		Fills:         c.fills.Value(),
		Invalidations: c.invalidations.Value(),
	}
}

// NewHotCache builds a cache with the given slot count (rounded up to a
// power of two; n <= 0 means DefaultHotCacheSlots) over the services.
func NewHotCache(services map[trace.Vendor]*Service, slots int) *HotCache {
	if slots <= 0 {
		slots = DefaultHotCacheSlots
	}
	n := 1
	for n < slots {
		n <<= 1
	}
	c := &HotCache{mask: uint64(n - 1), slots: make([]atomic.Pointer[hotEntry], n)}
	for _, svc := range services {
		c.svcs = append(c.svcs, svc)
	}
	sortServices(c.svcs)
	c.combined = Combined(c.svcs)
	return c
}

// epochAt sums the tag's shard epoch across every backing store, for a
// hash precomputed with store.TagHash. Each term is monotonic, so the
// sum is too: equal sums mean no term — no shard — changed, which is
// what makes it a sound validity key.
func (c *HotCache) epochAt(h uint64) uint64 {
	var e uint64
	for _, svc := range c.svcs {
		e += svc.TagEpochAt(h)
	}
	return e
}

// knownDirect probes the services in sorted vendor order, stopping at
// the first hit — the deterministic unknown-tag probe.
func (c *HotCache) knownDirect(tagID string) bool {
	for _, svc := range c.svcs {
		if svc.Known(tagID) {
			return true
		}
	}
	return false
}

// probe hashes the tag once (store.TagHash addresses both the slot and
// every store's shard epoch) and returns the slot, the tag's entry if
// it is present and still valid under the current epoch, and that epoch
// (read before any state, so a fill stored under it can never be
// fresher than it claims).
// The probe outcome lands on the request trace as an untimed event —
// cache hits are the ~600ns fast path and cannot afford clock reads —
// with the slot index as A1 and, on a miss, whether it was an epoch
// invalidation (A2=1) rather than a collision or cold slot.
func (c *HotCache) probe(tagID string, tr *otrace.Trace) (slot *atomic.Pointer[hotEntry], e *hotEntry, epoch uint64) {
	h := store.TagHash(tagID)
	slot = &c.slots[h&c.mask]
	epoch = c.epochAt(h)
	if e = slot.Load(); e != nil && e.tag == tagID && e.epoch == epoch {
		c.hits.Inc()
		tr.Event(otrace.PlaneCache, "cache.hit", int64(h&c.mask), 0)
		return slot, e, epoch
	}
	var inval int64
	if e != nil && e.tag == tagID {
		c.invalidations.Inc()
		inval = 1
	}
	c.misses.Inc()
	tr.Event(otrace.PlaneCache, "cache.miss", int64(h&c.mask), inval)
	return slot, nil, epoch
}

// LastSeen answers the combined-view last-known query through the
// cache: the freshest fix across vendors plus whether any vendor knows
// the tag at all (the query API's 404 distinction). A miss fills the
// slot; the entry is served only while the backing shards' epochs still
// match, so a cached answer is never staler than the epoch it was
// published under.
func (c *HotCache) LastSeen(tagID string) (pos geo.LatLon, at time.Time, found, known bool) {
	return c.LastSeenTraced(tagID, nil)
}

// LastSeenTraced is LastSeen recording onto a request trace (nil tr
// traces nothing): the probe outcome as an event, and a miss's fill as
// a timed cache.fill.lastseen span.
func (c *HotCache) LastSeenTraced(tagID string, tr *otrace.Trace) (pos geo.LatLon, at time.Time, found, known bool) {
	if hotCacheDisabled.Load() {
		if !c.knownDirect(tagID) {
			return pos, at, false, false
		}
		pos, at, found = c.combined.LastSeen(tagID)
		return pos, at, found, true
	}
	slot, e, epoch := c.probe(tagID, tr)
	if e == nil {
		sp := tr.Start(otrace.PlaneCache, "cache.fill.lastseen", 0, 0)
		e = &hotEntry{tag: tagID, epoch: epoch, known: c.knownDirect(tagID)}
		if e.known {
			e.pos, e.at, e.found = c.combined.LastSeen(tagID)
		}
		slot.Store(e)
		c.fills.Inc()
		tr.Finish(sp)
	}
	return e.pos, e.at, e.found, e.known
}

// Track answers the cross-vendor track query through the cache: the
// merged, time-sorted report history across vendors (nil when the tag
// has none), plus the known flag. A track fill also carries the
// last-known fix, so a hot tag's /v1/lastknown and /v1/track share one
// entry.
func (c *HotCache) Track(tagID string) (track []trace.Report, known bool) {
	return c.TrackTraced(tagID, nil)
}

// TrackTraced is Track recording onto a request trace (nil tr traces
// nothing). The fill span's A1 is the merged track length; the merge
// itself threads tr down into each store's read path.
func (c *HotCache) TrackTraced(tagID string, tr *otrace.Trace) (track []trace.Report, known bool) {
	if hotCacheDisabled.Load() {
		if !c.knownDirect(tagID) {
			return nil, false
		}
		return c.combined.MergedHistoryTraced(tagID, tr), true
	}
	slot, e, epoch := c.probe(tagID, tr)
	if e == nil || !e.hasTrack {
		sp := tr.Start(otrace.PlaneCache, "cache.fill.track", 0, 0)
		ne := &hotEntry{tag: tagID, epoch: epoch, hasTrack: true}
		if e != nil { // valid fill: keep what it has, add the track
			ne.known, ne.found, ne.pos, ne.at = e.known, e.found, e.pos, e.at
			ne.hasHist, ne.histLimit, ne.hist = e.hasHist, e.histLimit, e.hist
		} else if ne.known = c.knownDirect(tagID); ne.known {
			ne.pos, ne.at, ne.found = c.combined.LastSeen(tagID)
		}
		if ne.known {
			ne.track = c.combined.MergedHistoryTraced(tagID, tr)
		}
		slot.Store(ne)
		c.fills.Inc()
		tr.SetAttrs(sp, int64(len(ne.track)), 0)
		tr.Finish(sp)
		e = ne
	}
	return e.track, e.known
}

// HistoryTail answers the capped merged-history query through the
// cache: Combined.MergedHistoryTail plus the known flag. One history
// window is cached per entry, keyed by its limit; the returned slice is
// shared with later hits and must not be mutated.
func (c *HotCache) HistoryTail(tagID string, limit int) (hist []trace.Report, known bool) {
	return c.HistoryTailTraced(tagID, limit, nil)
}

// HistoryTailTraced is HistoryTail recording onto a request trace (nil
// tr traces nothing). The fill span carries the requested limit (A1)
// and the rows returned (A2); the tail merge threads tr down into each
// store's memtable view and segment reads — the path a cold-history
// capture shows as cache.miss → cache.fill.history → store.memtable →
// store.pread/store.decode.
func (c *HotCache) HistoryTailTraced(tagID string, limit int, tr *otrace.Trace) (hist []trace.Report, known bool) {
	if hotCacheDisabled.Load() {
		if !c.knownDirect(tagID) {
			return nil, false
		}
		return c.combined.MergedHistoryTailTraced(tagID, limit, tr), true
	}
	slot, e, epoch := c.probe(tagID, tr)
	if e == nil || !e.hasHist || e.histLimit != limit {
		sp := tr.Start(otrace.PlaneCache, "cache.fill.history", int64(limit), 0)
		ne := &hotEntry{tag: tagID, epoch: epoch, hasHist: true, histLimit: limit}
		if e != nil { // valid fill: keep what it has, add the window
			ne.known, ne.found, ne.pos, ne.at = e.known, e.found, e.pos, e.at
			ne.hasTrack, ne.track = e.hasTrack, e.track
		} else if ne.known = c.knownDirect(tagID); ne.known {
			ne.pos, ne.at, ne.found = c.combined.LastSeen(tagID)
		}
		if ne.known {
			ne.hist = c.combined.MergedHistoryTailTraced(tagID, limit, tr)
		}
		slot.Store(ne)
		c.fills.Inc()
		tr.SetAttrs(sp, int64(limit), int64(len(ne.hist)))
		tr.Finish(sp)
		e = ne
	}
	return e.hist, e.known
}

// Known answers the cached unknown-tag probe: a valid entry's verdict
// when one exists, otherwise the direct sorted-order probe (without
// filling — pure existence checks shouldn't evict a hot fill).
func (c *HotCache) Known(tagID string) bool {
	if !hotCacheDisabled.Load() {
		if _, e, _ := c.probe(tagID, nil); e != nil {
			return e.known
		}
	}
	return c.knownDirect(tagID)
}
