package cloud

import (
	"testing"
	"time"

	"tagsim/internal/geo"
	"tagsim/internal/obs"
	"tagsim/internal/trace"
)

// TestCacheStatsClassification pins the hit/miss/fill/invalidation
// accounting: a cold probe is a miss+fill, a repeat is a hit, a write
// to the tag's shard turns the next probe into an invalidation-miss,
// and the disabled path counts nothing.
func TestCacheStatsClassification(t *testing.T) {
	services, apple, _ := cacheServices()
	was := SetHotCache(true)
	defer SetHotCache(was)
	cache := NewHotCache(services, 4)

	at := cacheBase
	apple.Ingest(trace.Report{T: at, HeardAt: at, TagID: "tag-x", Vendor: trace.VendorApple,
		Pos: geo.LatLon{Lat: 1}})

	// Cold probe: miss + fill.
	cache.LastSeen("tag-x")
	if s := cache.Stats(); s != (CacheStats{Hits: 0, Misses: 1, Fills: 1}) {
		t.Fatalf("after cold probe: %+v", s)
	}
	// Warm probe: hit, nothing else.
	cache.LastSeen("tag-x")
	if s := cache.Stats(); s != (CacheStats{Hits: 1, Misses: 1, Fills: 1}) {
		t.Fatalf("after warm probe: %+v", s)
	}
	// Lazy track upgrade of a valid entry: a hit AND a fill.
	cache.Track("tag-x")
	if s := cache.Stats(); s != (CacheStats{Hits: 2, Misses: 1, Fills: 2}) {
		t.Fatalf("after track upgrade: %+v", s)
	}
	// A write to the tag's shard bumps the epoch: the next probe finds
	// the same tag under a stale epoch — an invalidation-classified miss.
	at = at.Add(5 * time.Minute)
	apple.Ingest(trace.Report{T: at, HeardAt: at, TagID: "tag-x", Vendor: trace.VendorApple,
		Pos: geo.LatLon{Lat: 2}})
	cache.LastSeen("tag-x")
	if s := cache.Stats(); s != (CacheStats{Hits: 2, Misses: 2, Fills: 3, Invalidations: 1}) {
		t.Fatalf("after epoch invalidation: %+v", s)
	}
	// Known on a valid entry is a hit; on a cold tag it probes (miss)
	// but never fills.
	cache.Known("tag-x")
	cache.Known("tag-cold")
	if s := cache.Stats(); s != (CacheStats{Hits: 3, Misses: 3, Fills: 3, Invalidations: 1}) {
		t.Fatalf("after Known probes: %+v", s)
	}

	// The disabled path bypasses the cache entirely: no counter moves.
	SetHotCache(false)
	cache.LastSeen("tag-x")
	cache.Track("tag-x")
	SetHotCache(true)
	if s := cache.Stats(); s != (CacheStats{Hits: 3, Misses: 3, Fills: 3, Invalidations: 1}) {
		t.Fatalf("disabled path moved counters: %+v", s)
	}

	// obs.SetEnabled(false) freezes the counters while the cache itself
	// keeps serving correct answers.
	defer obs.SetEnabled(obs.SetEnabled(false))
	if _, _, found, known := cache.LastSeen("tag-x"); !found || !known {
		t.Fatal("cache stopped answering with metrics disabled")
	}
	if s := cache.Stats(); s != (CacheStats{Hits: 3, Misses: 3, Fills: 3, Invalidations: 1}) {
		t.Fatalf("metrics-disabled probe moved counters: %+v", s)
	}
}
