// Package cloud models the vendor location services (Apple FindMy, Samsung
// SmartThings Find): crowd-sourced report ingestion with per-tag rate
// capping, last-known-location state, and location history.
//
// The services are modeled exactly at the interface the paper's crawlers
// observed: a per-tag last location and "last seen" age. The per-tag
// update-rate cap reproduces the 15-20 updates/hour plateau both vendors
// converge to in Figures 3-4.
//
// Since the serving-subsystem refactor a Service is a thin vendor label
// over internal/store's sharded concurrent report store: the
// single-goroutine simulation drives it exactly as before (acceptance
// depends only on per-tag state, so output is byte-identical), while
// cmd/tagserve and the load harness may ingest and query the same
// service from GOMAXPROCS goroutines.
package cloud

import (
	"fmt"
	"sort"
	"time"

	"tagsim/internal/geo"
	otrace "tagsim/internal/obs/trace"
	"tagsim/internal/store"
	"tagsim/internal/trace"
)

// DefaultMinUpdateInterval is the per-tag ingestion cap: one accepted
// report per ~3.2 minutes, i.e. at most ~18.75 updates/hour — the plateau
// of the paper's Figure 4.
const DefaultMinUpdateInterval = 192 * time.Second

// Service is one vendor's location backend. The embedded Store carries
// the state and the policy knobs (MinUpdateInterval, KeepHistory,
// HistoryLimit), which callers may adjust before the service is shared
// across goroutines.
type Service struct {
	*store.Store
	vendor trace.Vendor

	// Tap, when set, observes every accepted report right after Ingest
	// admits it — the hook the streaming campaign pipeline uses to
	// publish the cloud's accepted stream while the simulation runs.
	// Set it before the service is shared across goroutines; the tap
	// runs outside the store's shard locks, on the ingesting goroutine.
	Tap func(trace.Report)
}

// Ingest applies the store's rate cap and, when the report is accepted,
// forwards it to the service's Tap. See store.Store.Ingest for the
// acceptance semantics.
func (s *Service) Ingest(r trace.Report) bool {
	ok := s.Store.Ingest(r)
	if ok && s.Tap != nil {
		s.Tap(r)
	}
	return ok
}

// NewService creates a vendor service with the default rate cap, history
// retention enabled and unbounded (HistoryLimit 0), on the store's
// default shard count.
func NewService(vendor trace.Vendor) *Service {
	return NewServiceSharded(vendor, store.DefaultShards)
}

// NewServiceSharded is NewService with an explicit store shard count
// (rounded up to a power of two) — cmd/tagserve and the serving
// benchmarks size the store to their client counts.
func NewServiceSharded(vendor trace.Vendor, shards int) *Service {
	st := store.New(shards)
	st.MinUpdateInterval = DefaultMinUpdateInterval
	st.KeepHistory = true
	return &Service{Store: st, vendor: vendor}
}

// NewServicePersistent is NewServiceSharded on the tiered persistent
// store: the service's state lives in cfg.Dir (WAL + columnar segments)
// and a restart warm-loads it, replaying only the WAL tail. The cloud
// policy fills in like the other constructors — the default rate cap
// unless cfg overrides it, history always on. With an empty cfg.Dir (or
// store.SetTiered(false)) this degenerates to NewServiceSharded.
func NewServicePersistent(vendor trace.Vendor, shards int, cfg store.Tiering) (*Service, error) {
	if cfg.MinUpdateInterval == 0 {
		cfg.MinUpdateInterval = DefaultMinUpdateInterval
	}
	cfg.KeepHistory = true
	st, err := store.Open(shards, cfg)
	if err != nil {
		return nil, fmt.Errorf("cloud: opening %s store in %s: %w", vendor, cfg.Dir, err)
	}
	return &Service{Store: st, vendor: vendor}, nil
}

// Vendor returns the ecosystem this service backs.
func (s *Service) Vendor() trace.Vendor { return s.vendor }

// String describes the service.
func (s *Service) String() string {
	accepted, rejected := s.Stats()
	return fmt.Sprintf("%s location service (%d tags, %d accepted, %d rate-limited)",
		s.vendor, s.NumTags(), accepted, rejected)
}

// View is the read interface the crawlers poll: what the companion app
// shows for one tag.
type View interface {
	LastSeen(tagID string) (pos geo.LatLon, at time.Time, ok bool)
}

// sortServices orders services by vendor — the deterministic iteration
// order the query plane probes and merges in.
func sortServices(svcs []*Service) {
	sort.Slice(svcs, func(i, j int) bool { return svcs[i].Vendor() < svcs[j].Vendor() })
}

// Combined merges several services into the paper's emulated unified
// ecosystem: the freshest last-seen across services wins.
type Combined []*Service

// LastSeen implements View over the union of services.
func (c Combined) LastSeen(tagID string) (pos geo.LatLon, at time.Time, ok bool) {
	for _, s := range c {
		p, t, found := s.LastSeen(tagID)
		if found && (!ok || t.After(at)) {
			pos, at, ok = p, t, true
		}
	}
	return pos, at, ok
}

// MergedHistory returns all accepted reports for a tag across services,
// sorted by acceptance time.
func (c Combined) MergedHistory(tagID string) []trace.Report {
	return c.MergedHistoryTraced(tagID, nil)
}

// MergedHistoryTraced is MergedHistory threading a request trace down
// into each store's history read (nil tr traces nothing).
func (c Combined) MergedHistoryTraced(tagID string, tr *otrace.Trace) []trace.Report {
	var out []trace.Report
	for _, s := range c {
		out = append(out, s.RecentHistoryTraced(tagID, -1, tr)...)
	}
	trace.SortByTime(out)
	return out
}

// MergedHistoryTail returns the newest limit reports of the merged
// cross-vendor history (limit < 0: everything, i.e. MergedHistory). It
// pushes the cap down into each store — per-service RecentHistory
// copies only its newest limit entries — so a capped query over long
// histories never materializes the full rings. Identical to slicing
// MergedHistory whenever each service's per-tag history is time-sorted,
// which ingest guarantees (acceptance only ever advances a tag's clock)
// and Restore callers are documented to feed. Like the endpoint it
// serves, limit 0 distinguishes "some history exists" (empty non-nil)
// from none at all (nil).
func (c Combined) MergedHistoryTail(tagID string, limit int) []trace.Report {
	return c.MergedHistoryTailTraced(tagID, limit, nil)
}

// MergedHistoryTailTraced is MergedHistoryTail threading a request
// trace down into each store's merge and segment reads (nil tr traces
// nothing).
func (c Combined) MergedHistoryTailTraced(tagID string, limit int, tr *otrace.Trace) []trace.Report {
	if limit < 0 {
		return c.MergedHistoryTraced(tagID, tr)
	}
	if limit == 0 {
		for _, s := range c {
			if s.RecentHistory(tagID, 0) != nil {
				return []trace.Report{}
			}
		}
		return nil
	}
	// Most tags live in exactly one vendor's store. RecentHistory
	// already returns a private, time-sorted copy, so a single
	// contributor's slice is the answer as-is — no second copy, no
	// re-sort. Only a tag reported into several ecosystems pays the
	// merge.
	var out []trace.Report
	merged := false
	for _, s := range c {
		r := s.RecentHistoryTraced(tagID, limit, tr)
		if len(r) == 0 {
			continue
		}
		if out == nil {
			out = r
			continue
		}
		out = append(out, r...)
		merged = true
	}
	if out == nil {
		return nil
	}
	if merged {
		trace.SortByTime(out)
		if limit < len(out) {
			out = out[len(out)-limit:]
		}
	}
	return out
}
