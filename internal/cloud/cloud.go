// Package cloud models the vendor location services (Apple FindMy, Samsung
// SmartThings Find): crowd-sourced report ingestion with per-tag rate
// capping, last-known-location state, and location history.
//
// The services are modeled exactly at the interface the paper's crawlers
// observed: a per-tag last location and "last seen" age. The per-tag
// update-rate cap reproduces the 15-20 updates/hour plateau both vendors
// converge to in Figures 3-4.
package cloud

import (
	"fmt"
	"sort"
	"time"

	"tagsim/internal/geo"
	"tagsim/internal/trace"
)

// DefaultMinUpdateInterval is the per-tag ingestion cap: one accepted
// report per ~3.2 minutes, i.e. at most ~18.75 updates/hour — the plateau
// of the paper's Figure 4.
const DefaultMinUpdateInterval = 192 * time.Second

// Service is one vendor's location backend.
type Service struct {
	vendor trace.Vendor
	// MinUpdateInterval is the per-tag accepted-report spacing.
	MinUpdateInterval time.Duration
	// KeepHistory retains every accepted report (the crawlers rebuild
	// history themselves, but experiments read it for ground-truth joins).
	KeepHistory bool

	tags     map[string]*tagState
	accepted uint64
	rejected uint64
}

type tagState struct {
	lastPos geo.LatLon
	lastAt  time.Time
	hasLast bool
	history []trace.Report
}

// NewService creates a vendor service with the default rate cap and
// history retention enabled.
func NewService(vendor trace.Vendor) *Service {
	return &Service{
		vendor:            vendor,
		MinUpdateInterval: DefaultMinUpdateInterval,
		KeepHistory:       true,
		tags:              make(map[string]*tagState),
	}
}

// Vendor returns the ecosystem this service backs.
func (s *Service) Vendor() trace.Vendor { return s.vendor }

// Register creates state for a tag (idempotent). Tags must be registered
// before they can be crawled; ingest auto-registers.
func (s *Service) Register(tagID string) {
	if _, ok := s.tags[tagID]; !ok {
		s.tags[tagID] = &tagState{}
	}
}

// TagIDs returns the registered tags in sorted order.
func (s *Service) TagIDs() []string {
	out := make([]string, 0, len(s.tags))
	for id := range s.tags {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Ingest applies the per-tag rate cap and, if the report is accepted,
// updates the tag's last location. It returns whether the report was
// accepted. Reports observed earlier than the tag's current state are
// rejected (out-of-order uploads never regress the last-seen time).
//
// Rate capping and display both use the report's observation time
// (HeardAt): location reports carry the timestamp of the GPS fix, and the
// companion apps display "last seen" relative to it, not relative to when
// the upload happened to arrive. A zero HeardAt falls back to T.
func (s *Service) Ingest(r trace.Report) bool {
	st, ok := s.tags[r.TagID]
	if !ok {
		st = &tagState{}
		s.tags[r.TagID] = st
	}
	seenAt := r.HeardAt
	if seenAt.IsZero() {
		seenAt = r.T
	}
	if st.hasLast {
		if !seenAt.After(st.lastAt) || seenAt.Sub(st.lastAt) < s.MinUpdateInterval {
			s.rejected++
			return false
		}
	}
	st.lastPos = r.Pos
	st.lastAt = seenAt
	st.hasLast = true
	if s.KeepHistory {
		st.history = append(st.history, r)
	}
	s.accepted++
	return true
}

// LastSeen returns the tag's last reported location and when it was
// observed. ok is false when the tag is unknown or has no reports yet.
func (s *Service) LastSeen(tagID string) (pos geo.LatLon, at time.Time, ok bool) {
	st, found := s.tags[tagID]
	if !found || !st.hasLast {
		return geo.LatLon{}, time.Time{}, false
	}
	return st.lastPos, st.lastAt, true
}

// History returns the accepted reports for a tag in ingestion order.
func (s *Service) History(tagID string) []trace.Report {
	st, ok := s.tags[tagID]
	if !ok {
		return nil
	}
	return st.history
}

// Stats returns accepted/rejected report counters.
func (s *Service) Stats() (accepted, rejected uint64) { return s.accepted, s.rejected }

// String describes the service.
func (s *Service) String() string {
	return fmt.Sprintf("%s location service (%d tags, %d accepted, %d rate-limited)",
		s.vendor, len(s.tags), s.accepted, s.rejected)
}

// View is the read interface the crawlers poll: what the companion app
// shows for one tag.
type View interface {
	LastSeen(tagID string) (pos geo.LatLon, at time.Time, ok bool)
}

// Combined merges several services into the paper's emulated unified
// ecosystem: the freshest last-seen across services wins.
type Combined []*Service

// LastSeen implements View over the union of services.
func (c Combined) LastSeen(tagID string) (pos geo.LatLon, at time.Time, ok bool) {
	for _, s := range c {
		p, t, found := s.LastSeen(tagID)
		if found && (!ok || t.After(at)) {
			pos, at, ok = p, t, true
		}
	}
	return pos, at, ok
}

// MergedHistory returns all accepted reports for a tag across services,
// sorted by acceptance time.
func (c Combined) MergedHistory(tagID string) []trace.Report {
	var out []trace.Report
	for _, s := range c {
		out = append(out, s.History(tagID)...)
	}
	trace.SortByTime(out)
	return out
}
