// Package load is the deterministic closed-loop load generator for the
// serving subsystem: N workers issue back-to-back queries against a
// Target — the store surface directly, or the HTTP query API — with a
// Zipf-skewed tag popularity and a weighted operation mix modeled on
// the paper's crawlers (last-known polls dominate, history/track
// reconstructions ride along).
//
// Determinism follows the simulator's named-stream discipline: worker w
// draws from an RNG seeded by hashing (seed, "load/worker/w"), so the
// exact sequence of (operation, tag) pairs each worker issues is a pure
// function of the config at any worker count. Only the measured
// latencies and throughput vary run to run — they are wall-clock.
package load

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"tagsim/internal/cloud"
	"tagsim/internal/stats"
	"tagsim/internal/trace"
)

// Op is one query type of the vendor API.
type Op uint8

const (
	// OpLastKnown polls a tag's last-known location (the crawlers' loop).
	OpLastKnown Op = iota
	// OpHistory fetches a tag's accepted-report history.
	OpHistory
	// OpTrack reconstructs the cross-vendor track for a tag.
	OpTrack
	// OpStats reads the service counters.
	OpStats
	numOps
)

var opNames = [...]string{"lastknown", "history", "track", "stats"}

// String returns the endpoint-style op name.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// Mix weighs the operation types in the generated stream. Zero values
// fall back to DefaultMix.
type Mix struct {
	LastKnown, History, Track, Stats int
}

// DefaultMix mirrors the paper's crawler behavior: per-minute last-known
// polls dominate, with occasional history/track reconstructions and a
// trickle of stats reads.
func DefaultMix() Mix { return Mix{LastKnown: 90, History: 5, Track: 4, Stats: 1} }

func (m Mix) total() int { return m.LastKnown + m.History + m.Track + m.Stats }

// pick maps a draw in [0, total) to an op.
func (m Mix) pick(r int) Op {
	switch {
	case r < m.LastKnown:
		return OpLastKnown
	case r < m.LastKnown+m.History:
		return OpHistory
	case r < m.LastKnown+m.History+m.Track:
		return OpTrack
	default:
		return OpStats
	}
}

// Config parameterizes a load run.
type Config struct {
	// Workers is the closed-loop client count (default 8).
	Workers int
	// Requests is the total request budget, split evenly across workers
	// (default 2000).
	Requests int
	// Seed roots the per-worker streams.
	Seed int64
	// Tags is the tag universe queried; popularity is Zipf over its
	// order (Tags[0] hottest). Required.
	Tags []string
	// ZipfS is the Zipf exponent (must be > 1; default 1.2 — a hot-tag
	// skew in line with self-organized tagging popularity distributions).
	ZipfS float64
	// Mix weighs the operations (zero value: DefaultMix).
	Mix Mix
}

func (c *Config) defaults() error {
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.Requests <= 0 {
		c.Requests = 2000
	}
	if c.ZipfS == 0 {
		c.ZipfS = 1.2
	}
	if c.ZipfS <= 1 {
		return fmt.Errorf("load: ZipfS must be > 1, got %v", c.ZipfS)
	}
	if c.Mix.total() == 0 {
		c.Mix = DefaultMix()
	}
	if c.Mix.LastKnown < 0 || c.Mix.History < 0 || c.Mix.Track < 0 || c.Mix.Stats < 0 || c.Mix.total() <= 0 {
		return fmt.Errorf("load: mix weights must be non-negative with a positive sum, got %+v", c.Mix)
	}
	if len(c.Tags) == 0 {
		return fmt.Errorf("load: no tags to query")
	}
	return nil
}

// Target executes one operation against a serving backend and returns
// how many report records the operation touched (history/track lengths,
// one for a found last-known fix) — the numerator of the harness's
// sustained reports/s throughput.
type Target interface {
	Do(op Op, tagID string) (reports int, err error)
}

// Result is one load run's report.
type Result struct {
	Requests int
	Workers  int
	Errors   int
	Elapsed  time.Duration
	// Reports counts the report records served across all requests.
	Reports int
	// PerOp counts issued requests by operation — deterministic for a
	// given config.
	PerOp [numOps]int
	// Latency summarizes per-request wall-clock latency in milliseconds.
	Latency stats.QuantileSummary
}

// Throughput returns requests per wall-clock second.
func (r *Result) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Requests) / r.Elapsed.Seconds()
}

// ReportThroughput returns report records served per wall-clock second
// — the sustained data-plane rate behind the request rate.
func (r *Result) ReportThroughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Reports) / r.Elapsed.Seconds()
}

// Render formats the report like the repo's figure renderings.
func (r *Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Load report: %d requests, %d workers, %d errors over %v\n",
		r.Requests, r.Workers, r.Errors, r.Elapsed.Round(time.Millisecond))
	fmt.Fprintf(&b, "  throughput  %.0f req/s, %.0f reports/s (%d reports served)\n",
		r.Throughput(), r.ReportThroughput(), r.Reports)
	fmt.Fprintf(&b, "  latency ms  p50=%.3f  p95=%.3f  p99=%.3f\n",
		r.Latency.P50, r.Latency.P95, r.Latency.P99)
	fmt.Fprintf(&b, "  ops        ")
	for op := Op(0); op < numOps; op++ {
		fmt.Fprintf(&b, " %s=%d", op, r.PerOp[op])
	}
	b.WriteString("\n")
	return b.String()
}

// workerRNG derives worker w's stream the way sim.Engine.RNG derives
// entity streams: FNV-1a over (seed, name).
func workerRNG(seed int64, w int) *rand.Rand {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d/load/worker/%d", seed, w)
	return rand.New(rand.NewSource(int64(h.Sum64())))
}

// Run drives the target with cfg.Requests closed-loop requests across
// cfg.Workers workers and reports throughput plus latency quantiles.
// The (op, tag) sequence is deterministic per config; an error from the
// target counts and the worker moves on.
func Run(cfg Config, target Target) (*Result, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	type workerOut struct {
		latencies []float64
		perOp     [numOps]int
		errors    int
		reports   int
	}
	outs := make([]workerOut, cfg.Workers)
	var wg sync.WaitGroup
	begin := time.Now()
	for w := 0; w < cfg.Workers; w++ {
		n := cfg.Requests / cfg.Workers
		if w < cfg.Requests%cfg.Workers {
			n++
		}
		wg.Add(1)
		go func(w, n int) {
			defer wg.Done()
			rng := workerRNG(cfg.Seed, w)
			zipf := rand.NewZipf(rng, cfg.ZipfS, 1, uint64(len(cfg.Tags)-1))
			out := &outs[w]
			out.latencies = make([]float64, 0, n)
			for i := 0; i < n; i++ {
				op := cfg.Mix.pick(rng.Intn(cfg.Mix.total()))
				tag := cfg.Tags[zipf.Uint64()]
				t := time.Now()
				reports, err := target.Do(op, tag)
				out.latencies = append(out.latencies, float64(time.Since(t))/float64(time.Millisecond))
				out.perOp[op]++
				out.reports += reports
				if err != nil {
					out.errors++
				}
			}
		}(w, n)
	}
	wg.Wait()
	res := &Result{Requests: cfg.Requests, Workers: cfg.Workers, Elapsed: time.Since(begin)}
	var all []float64
	for _, out := range outs {
		all = append(all, out.latencies...)
		res.Errors += out.errors
		res.Reports += out.reports
		for op, n := range out.perOp {
			res.PerOp[op] += n
		}
	}
	res.Latency = stats.Quantiles(all)
	return res, nil
}

// ServiceTarget drives the store surface directly (no HTTP): the
// shared-memory baseline the HTTP layer is compared against.
type ServiceTarget struct {
	services map[trace.Vendor]*cloud.Service
	combined cloud.Combined
}

// NewServiceTarget builds a direct target over per-vendor services.
func NewServiceTarget(services map[trace.Vendor]*cloud.Service) *ServiceTarget {
	t := &ServiceTarget{services: services}
	for _, svc := range services {
		t.combined = append(t.combined, svc)
	}
	return t
}

// known answers whether any backing service has the tag — mirroring
// the HTTP layer's 404 for unknown tags, so error rates stay
// comparable between the direct and HTTP targets.
func (t *ServiceTarget) known(tagID string) bool {
	for _, svc := range t.services {
		if svc.Known(tagID) {
			return true
		}
	}
	return false
}

// Do implements Target against the in-process stores.
func (t *ServiceTarget) Do(op Op, tagID string) (int, error) {
	if op != OpStats && !t.known(tagID) {
		return 0, fmt.Errorf("load: unknown tag %q", tagID)
	}
	switch op {
	case OpLastKnown:
		if _, _, ok := t.combined.LastSeen(tagID); ok {
			return 1, nil
		}
		return 0, nil
	case OpHistory:
		n := 0
		for _, svc := range t.services {
			n += len(svc.History(tagID))
		}
		return n, nil
	case OpTrack:
		return len(t.combined.MergedHistory(tagID)), nil
	case OpStats:
		for _, svc := range t.services {
			svc.Stats()
		}
		return 0, nil
	default:
		return 0, fmt.Errorf("load: unknown op %v", op)
	}
}

// HTTPTarget drives the serve package's query API over real HTTP.
type HTTPTarget struct {
	// Base is the server root, e.g. an httptest.Server URL.
	Base string
	// Client defaults to a connection-pooling client sized for the
	// worker count.
	Client *http.Client
}

// NewHTTPTarget builds an HTTP target for the query API at base.
func NewHTTPTarget(base string) *HTTPTarget {
	// Clone the default transport when it is the stock one (keeping its
	// proxy/dialer defaults); an embedding program may have replaced it
	// with an arbitrary RoundTripper, in which case start fresh.
	tr, ok := http.DefaultTransport.(*http.Transport)
	if ok {
		tr = tr.Clone()
	} else {
		tr = &http.Transport{}
	}
	tr.MaxIdleConnsPerHost = 64
	return &HTTPTarget{Base: strings.TrimRight(base, "/"), Client: &http.Client{Transport: tr}}
}

// Do implements Target over the HTTP query API. Queries use the
// Combined view, like the paper's unified-ecosystem analysis. Report-
// bearing responses are decoded just enough to count the records, so
// reports/s reflects payloads a real client would have parsed.
func (t *HTTPTarget) Do(op Op, tagID string) (int, error) {
	var path string
	switch op {
	case OpLastKnown:
		path = "/v1/lastknown?tag=" + url.QueryEscape(tagID)
	case OpHistory:
		path = "/v1/history?tag=" + url.QueryEscape(tagID)
	case OpTrack:
		path = "/v1/track?tag=" + url.QueryEscape(tagID)
	case OpStats:
		path = "/v1/stats"
	default:
		return 0, fmt.Errorf("load: unknown op %v", op)
	}
	resp, err := t.Client.Get(t.Base + path)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, resp.Body)
		return 0, fmt.Errorf("load: %s: status %d", path, resp.StatusCode)
	}
	reports, err := countReports(op, resp.Body)
	if err != nil {
		return reports, fmt.Errorf("load: %s: %w", path, err)
	}
	return reports, nil
}

// countReports counts the report records in a 200 response body.
// Objects decode into empty structs, so counting never materializes the
// payload fields. The body is always drained so the connection can be
// reused.
func countReports(op Op, body io.Reader) (int, error) {
	drain := func() { _, _ = io.Copy(io.Discard, body) }
	dec := json.NewDecoder(body)
	var n int
	var err error
	switch op {
	case OpLastKnown:
		var v struct {
			Found bool `json:"found"`
		}
		if err = dec.Decode(&v); err == nil && v.Found {
			n = 1
		}
	case OpHistory:
		var v struct {
			Reports []struct{} `json:"reports"`
		}
		if err = dec.Decode(&v); err == nil {
			n = len(v.Reports)
		}
	case OpTrack:
		var v struct {
			Track []struct{} `json:"track"`
		}
		if err = dec.Decode(&v); err == nil {
			n = len(v.Track)
		}
	}
	drain()
	return n, err
}
