// Package load is the deterministic load generator for the serving
// subsystem: N workers issue queries against a Target — the store
// surface directly, or the HTTP query API — with a Zipf-skewed tag
// popularity and a weighted operation mix modeled on the paper's
// crawlers (last-known polls dominate, history/track reconstructions
// ride along, and an optional write share drives the report ingest
// path for mixed read/write benchmarks).
//
// The harness runs in two loop disciplines. The default closed loop
// issues back-to-back requests per worker — the right shape for
// measuring peak capacity, but under overload it coordinates with the
// server (a slow response delays the next request), hiding queueing
// delay from the tail quantiles. The open-loop mode (Config.OpenLoop)
// instead fixes a Poisson arrival schedule at Config.OfferedRate and
// never lets a slow response push later arrivals back, so overload p99
// is honest: the result reports achieved-vs-offered rate, and
// queue-wait (schedule slip) separately from service latency.
//
// Determinism follows the simulator's named-stream discipline: worker w
// draws from an RNG seeded by hashing (seed, "load/worker/w"), so the
// exact sequence of (operation, tag) pairs each worker issues is a pure
// function of the config at any worker count. Only the measured
// latencies and throughput vary run to run — they are wall-clock.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tagsim/internal/cloud"
	"tagsim/internal/geo"
	"tagsim/internal/obs"
	otrace "tagsim/internal/obs/trace"
	"tagsim/internal/stats"
	"tagsim/internal/trace"
)

// Op is one query type of the vendor API.
type Op uint8

const (
	// OpLastKnown polls a tag's last-known location (the crawlers' loop).
	OpLastKnown Op = iota
	// OpHistory fetches a tag's accepted-report history.
	OpHistory
	// OpTrack reconstructs the cross-vendor track for a tag.
	OpTrack
	// OpStats reads the service counters.
	OpStats
	// OpReport ingests a synthesized crowd report (the write path).
	OpReport
	numOps
)

var opNames = [...]string{"lastknown", "history", "track", "stats", "report"}

// String returns the endpoint-style op name.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// Mix weighs the operation types in the generated stream. Zero values
// fall back to DefaultMix. Report is the write share: the serving
// benches use it to dial read mixes (a 90% read mix is Report at 10%
// of the total weight).
type Mix struct {
	LastKnown, History, Track, Stats, Report int
}

// DefaultMix mirrors the paper's crawler behavior: per-minute last-known
// polls dominate, with occasional history/track reconstructions and a
// trickle of stats reads. Crawlers never write, so Report is 0.
func DefaultMix() Mix { return Mix{LastKnown: 90, History: 5, Track: 4, Stats: 1} }

// ReadMix scales DefaultMix's read weights to readPct percent of the
// total and gives the remaining weight to writes — the 60/75/90% read
// mixes of the serving benchmarks.
func ReadMix(readPct int) Mix {
	m := DefaultMix()
	m.History = m.History * readPct / 100
	m.Track = m.Track * readPct / 100
	m.Stats = m.Stats * readPct / 100
	// Rounding remainder lands on the dominant op, keeping the total at
	// exactly 100 so readPct is the precise read share.
	m.LastKnown = readPct - m.History - m.Track - m.Stats
	m.Report = 100 - readPct
	return m
}

func (m Mix) total() int { return m.LastKnown + m.History + m.Track + m.Stats + m.Report }

// pick maps a draw in [0, total) to an op.
func (m Mix) pick(r int) Op {
	switch {
	case r < m.LastKnown:
		return OpLastKnown
	case r < m.LastKnown+m.History:
		return OpHistory
	case r < m.LastKnown+m.History+m.Track:
		return OpTrack
	case r < m.LastKnown+m.History+m.Track+m.Stats:
		return OpStats
	default:
		return OpReport
	}
}

// Config parameterizes a load run.
type Config struct {
	// Workers is the closed-loop client count (default 8).
	Workers int
	// Requests is the total request budget, split evenly across workers
	// (default 2000).
	Requests int
	// Seed roots the per-worker streams.
	Seed int64
	// Tags is the tag universe queried; popularity is Zipf over its
	// order (Tags[0] hottest). Required.
	Tags []string
	// ZipfS is the Zipf exponent (must be > 1; default 1.2 — a hot-tag
	// skew in line with self-organized tagging popularity distributions).
	ZipfS float64
	// Mix weighs the operations (zero value: DefaultMix).
	Mix Mix
	// OpenLoop switches from the closed loop to open-loop Poisson
	// arrivals: each worker follows a fixed exponential-interarrival
	// schedule at OfferedRate/Workers, and a slow response never delays
	// later arrivals — the loop discipline that keeps overload tail
	// latency honest (no coordinated omission).
	OpenLoop bool
	// OfferedRate is the aggregate arrival rate in requests/second
	// across all workers. Required (> 0) when OpenLoop is set.
	OfferedRate float64
	// Latency, when set, additionally records every request latency into
	// this histogram — the hook that puts harness traffic on the same
	// /metrics pane as live serve traffic (and the fixture the
	// histogram-vs-stats.Quantiles agreement test drives end to end).
	Latency *obs.Histogram
}

func (c *Config) defaults() error {
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.Requests <= 0 {
		c.Requests = 2000
	}
	if c.ZipfS == 0 {
		c.ZipfS = 1.2
	}
	if c.ZipfS <= 1 {
		return fmt.Errorf("load: ZipfS must be > 1, got %v", c.ZipfS)
	}
	if c.Mix.total() == 0 {
		c.Mix = DefaultMix()
	}
	if c.Mix.LastKnown < 0 || c.Mix.History < 0 || c.Mix.Track < 0 || c.Mix.Stats < 0 || c.Mix.Report < 0 || c.Mix.total() <= 0 {
		return fmt.Errorf("load: mix weights must be non-negative with a positive sum, got %+v", c.Mix)
	}
	if c.OpenLoop && c.OfferedRate <= 0 {
		return fmt.Errorf("load: open loop requires OfferedRate > 0, got %v", c.OfferedRate)
	}
	if len(c.Tags) == 0 {
		return fmt.Errorf("load: no tags to query")
	}
	return nil
}

// HistoryCap is the newest-N window the harness's history queries ask
// for — the depth of the companion app's history pane. It rides the
// query API's limit pushdown: a capped query copies only the newest N
// reports out of the store rings. Track queries stay uncapped (the
// cross-vendor track reconstruction is the full merge by definition).
const HistoryCap = 25

// Target executes one operation against a serving backend and returns
// how many report records the operation touched (history/track lengths,
// one for a found last-known fix) — the numerator of the harness's
// sustained reports/s throughput.
type Target interface {
	Do(op Op, tagID string) (reports int, err error)
}

// tracedTarget is the optional request-tracing extension of Target:
// the harness roots one span per request (reusing the timestamps it
// already takes for the latency histogram) and hands the trace down so
// the target's cache/store layers can attach their spans. Detected by
// type assertion once per run, so plain Targets pay nothing.
type tracedTarget interface {
	DoTraced(op Op, tagID string, tr *otrace.Trace) (reports int, err error)
}

// Result is one load run's report.
type Result struct {
	Requests int
	Workers  int
	Errors   int
	Elapsed  time.Duration
	// Reports counts the report records served across all requests.
	Reports int
	// PerOp counts issued requests by operation — deterministic for a
	// given config.
	PerOp [numOps]int
	// Latency summarizes per-request service latency in milliseconds —
	// the time the target spent on the request, excluding (in open-loop
	// mode) any wait behind the arrival schedule.
	Latency stats.QuantileSummary
	// OpenLoop and OfferedRate echo the run's loop discipline.
	OpenLoop    bool
	OfferedRate float64
	// QueueWait summarizes, in open-loop mode, how far behind its
	// scheduled arrival each request started (milliseconds): the
	// queueing delay a closed loop silently absorbs into the arrival
	// process. Zero-valued for closed-loop runs.
	QueueWait stats.QuantileSummary
}

// Throughput returns requests per wall-clock second.
func (r *Result) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Requests) / r.Elapsed.Seconds()
}

// ReportThroughput returns report records served per wall-clock second
// — the sustained data-plane rate behind the request rate.
func (r *Result) ReportThroughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Reports) / r.Elapsed.Seconds()
}

// Render formats the report like the repo's figure renderings.
func (r *Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Load report: %d requests, %d workers, %d errors over %v\n",
		r.Requests, r.Workers, r.Errors, r.Elapsed.Round(time.Millisecond))
	fmt.Fprintf(&b, "  throughput  %.0f req/s, %.0f reports/s (%d reports served)\n",
		r.Throughput(), r.ReportThroughput(), r.Reports)
	fmt.Fprintf(&b, "  latency ms  p50=%.3f  p95=%.3f  p99=%.3f\n",
		r.Latency.P50, r.Latency.P95, r.Latency.P99)
	if r.OpenLoop {
		fmt.Fprintf(&b, "  open loop   offered=%.0f req/s achieved=%.0f req/s (%.1f%%)\n",
			r.OfferedRate, r.Throughput(), 100*r.Throughput()/r.OfferedRate)
		fmt.Fprintf(&b, "  queue ms    p50=%.3f  p95=%.3f  p99=%.3f\n",
			r.QueueWait.P50, r.QueueWait.P95, r.QueueWait.P99)
	}
	fmt.Fprintf(&b, "  ops        ")
	for op := Op(0); op < numOps; op++ {
		fmt.Fprintf(&b, " %s=%d", op, r.PerOp[op])
	}
	b.WriteString("\n")
	return b.String()
}

// workerRNG derives worker w's stream the way sim.Engine.RNG derives
// entity streams: FNV-1a over (seed, name).
func workerRNG(seed int64, w int) *rand.Rand {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d/load/worker/%d", seed, w)
	return rand.New(rand.NewSource(int64(h.Sum64())))
}

// arrivalRNG is worker w's open-loop interarrival stream — separate
// from the op/tag stream so the issued (op, tag) sequence is the same
// function of the config in both loop disciplines.
func arrivalRNG(seed int64, w int) *rand.Rand {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d/load/arrival/%d", seed, w)
	return rand.New(rand.NewSource(int64(h.Sum64())))
}

// Run drives the target with cfg.Requests requests across cfg.Workers
// workers — back-to-back in the default closed loop, on a Poisson
// arrival schedule in open-loop mode — and reports throughput plus
// latency quantiles. The (op, tag) sequence is deterministic per
// config, and identical between the two loop disciplines; an error from
// the target counts and the worker moves on.
func Run(cfg Config, target Target) (*Result, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	type workerOut struct {
		latencies []float64
		waits     []float64
		perOp     [numOps]int
		errors    int
		reports   int
	}
	outs := make([]workerOut, cfg.Workers)
	// Pregenerate each worker's plan — the (op, tag) sequence and, in
	// open-loop mode, the Poisson arrival schedule — before the clock
	// starts. The draws happen in exactly the order the issuing loop
	// would make them, so the sequences are the same pure function of
	// the config; materializing them up front just keeps generator cost
	// (zipf and mix draws) out of the measured request path. The plan
	// holds tag indices, not strings, so it adds no pointer-scan load
	// while the run's garbage collector is under benchmark.
	type workerPlan struct {
		ops   []Op
		tags  []uint32
		sched []time.Duration // cumulative arrival offsets (open loop)
	}
	plans := make([]workerPlan, cfg.Workers)
	// Per-worker arrival rate: worker streams are independent Poisson
	// processes, and the superposition offers cfg.OfferedRate.
	perWorker := cfg.OfferedRate / float64(cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		n := cfg.Requests / cfg.Workers
		if w < cfg.Requests%cfg.Workers {
			n++
		}
		rng := workerRNG(cfg.Seed, w)
		zipf := rand.NewZipf(rng, cfg.ZipfS, 1, uint64(len(cfg.Tags)-1))
		p := &plans[w]
		p.ops = make([]Op, n)
		p.tags = make([]uint32, n)
		for i := 0; i < n; i++ {
			p.ops[i] = cfg.Mix.pick(rng.Intn(cfg.Mix.total()))
			p.tags[i] = uint32(zipf.Uint64())
		}
		if cfg.OpenLoop {
			// Exponential interarrivals from the dedicated arrival
			// stream: the schedule is fixed up front by the RNG, never
			// pushed back by slow responses.
			arr := arrivalRNG(cfg.Seed, w)
			p.sched = make([]time.Duration, n)
			var sched time.Duration
			for i := 0; i < n; i++ {
				sched += time.Duration(arr.ExpFloat64() / perWorker * float64(time.Second))
				p.sched[i] = sched
			}
		}
	}
	// Request tracing rides the same decision the serve plane makes:
	// when the target supports it and tracing is on, every request gets
	// a root span whose timestamps are the latency measurement's own
	// (no extra clock reads), captured against the run histogram's live
	// p99. Each worker reuses one pooled trace across its whole plan.
	traced, _ := target.(tracedTarget)
	var th *otrace.Threshold
	if traced != nil && otrace.Enabled() {
		th = otrace.NewThreshold(otrace.PlaneServe, cfg.Latency, -1)
	}
	var wg sync.WaitGroup
	begin := time.Now()
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p := &plans[w]
			out := &outs[w]
			out.latencies = make([]float64, 0, len(p.ops))
			if cfg.OpenLoop {
				out.waits = make([]float64, 0, len(p.ops))
			}
			var wtr *otrace.Trace
			if th != nil {
				wtr = otrace.Get()
				defer otrace.Put(wtr)
			}
			for i, op := range p.ops {
				tag := cfg.Tags[p.tags[i]]
				if cfg.OpenLoop {
					due := begin.Add(p.sched[i])
					if d := time.Until(due); d > 0 {
						time.Sleep(d)
					}
					wait := time.Since(due) // schedule slip = queueing delay
					if wait < 0 {
						wait = 0
					}
					out.waits = append(out.waits, float64(wait)/float64(time.Millisecond))
				}
				t := time.Now()
				var reports int
				var err error
				if wtr != nil {
					wtr.Root(otrace.PlaneServe, op.String(), t)
					reports, err = traced.DoTraced(op, tag, wtr)
				} else {
					reports, err = target.Do(op, tag)
				}
				lat := time.Since(t)
				if cfg.Latency != nil {
					cfg.Latency.Observe(lat)
				}
				if wtr != nil {
					wtr.FinishRoot(lat, th)
				}
				out.latencies = append(out.latencies, float64(lat)/float64(time.Millisecond))
				out.perOp[op]++
				out.reports += reports
				if err != nil {
					out.errors++
				}
			}
		}(w)
	}
	wg.Wait()
	res := &Result{
		Requests: cfg.Requests, Workers: cfg.Workers, Elapsed: time.Since(begin),
		OpenLoop: cfg.OpenLoop, OfferedRate: cfg.OfferedRate,
	}
	var all, waits []float64
	for _, out := range outs {
		all = append(all, out.latencies...)
		waits = append(waits, out.waits...)
		res.Errors += out.errors
		res.Reports += out.reports
		for op, n := range out.perOp {
			res.PerOp[op] += n
		}
	}
	res.Latency = stats.Quantiles(all)
	if cfg.OpenLoop {
		res.QueueWait = stats.Quantiles(waits)
	}
	return res, nil
}

// reportSynth generates the write stream for OpReport: a shared,
// goroutine-safe sequence of synthetic crowd reports whose timestamps
// step forward from a base instant, cycling vendors round-robin. With
// the services' per-tag rate cap (cloud.DefaultMinUpdateInterval) most
// writes to a hot tag are rejected — exactly the plateau regime of the
// paper's Figure 4 — so a mixed read/write run exercises both the
// accept and reject ingest paths.
type reportSynth struct {
	base    time.Time
	step    time.Duration
	vendors []trace.Vendor
	n       atomic.Uint64
}

func newReportSynth(vendors []trace.Vendor) *reportSynth {
	if len(vendors) == 0 {
		vendors = []trace.Vendor{trace.VendorApple, trace.VendorSamsung}
	}
	return &reportSynth{base: time.Now(), step: 50 * time.Millisecond, vendors: vendors}
}

func (s *reportSynth) next(tagID string) trace.Report {
	n := s.n.Add(1) - 1
	t := s.base.Add(time.Duration(n) * s.step)
	return trace.Report{
		T: t, HeardAt: t, TagID: tagID,
		Vendor:     s.vendors[int(n%uint64(len(s.vendors)))],
		ReporterID: "load/writer",
		Pos:        geo.LatLon{Lat: 40 + float64(n%1000)/1e4, Lon: -74 - float64(n%1000)/1e4},
		RSSI:       -60,
	}
}

// ServiceTarget drives the store surface directly (no HTTP): the
// shared-memory baseline the HTTP layer is compared against. Services
// are probed and merged in sorted vendor order, like the query API.
type ServiceTarget struct {
	services map[trace.Vendor]*cloud.Service
	svcs     []*cloud.Service // sorted by vendor
	combined cloud.Combined
	cache    *cloud.HotCache // nil on the direct target
	writes   *reportSynth
}

// NewServiceTarget builds a direct target over per-vendor services.
func NewServiceTarget(services map[trace.Vendor]*cloud.Service) *ServiceTarget {
	t := &ServiceTarget{services: services}
	var vendors []trace.Vendor
	for v, svc := range services {
		t.svcs = append(t.svcs, svc)
		vendors = append(vendors, v)
	}
	sort.Slice(t.svcs, func(i, j int) bool { return t.svcs[i].Vendor() < t.svcs[j].Vendor() })
	sort.Slice(vendors, func(i, j int) bool { return vendors[i] < vendors[j] })
	t.combined = cloud.Combined(t.svcs)
	t.writes = newReportSynth(vendors)
	return t
}

// NewCachedServiceTarget is NewServiceTarget with the query plane's
// hot-tag cache in front of last-known/track/known — the in-process
// equivalent of what serve.NewServer deploys, for benchmarking the
// cache without the HTTP layer.
func NewCachedServiceTarget(services map[trace.Vendor]*cloud.Service) *ServiceTarget {
	t := NewServiceTarget(services)
	t.cache = cloud.NewHotCache(services, 0)
	return t
}

// known answers whether any backing service has the tag — mirroring
// the HTTP layer's 404 for unknown tags, so error rates stay
// comparable between the direct and HTTP targets. Probes short-circuit
// in sorted vendor order.
func (t *ServiceTarget) known(tagID string) bool {
	if t.cache != nil {
		return t.cache.Known(tagID)
	}
	for _, svc := range t.svcs {
		if svc.Known(tagID) {
			return true
		}
	}
	return false
}

// Do implements Target against the in-process stores.
func (t *ServiceTarget) Do(op Op, tagID string) (int, error) {
	return t.DoTraced(op, tagID, nil)
}

// DoTraced implements tracedTarget: the same dispatch as Do with the
// request trace threaded into the cache and store layers (nil tr
// traces nothing).
func (t *ServiceTarget) DoTraced(op Op, tagID string, tr *otrace.Trace) (int, error) {
	switch op {
	case OpStats:
		for _, svc := range t.svcs {
			svc.Stats()
		}
		return 0, nil
	case OpReport:
		rep := t.writes.next(tagID)
		sp := tr.Start(otrace.PlaneStore, "store.ingest", 0, 0)
		accepted := t.services[rep.Vendor].Ingest(rep)
		if accepted {
			tr.SetAttrs(sp, 1, 0)
		}
		tr.Finish(sp)
		if accepted {
			return 1, nil
		}
		return 0, nil // rate-capped, not an error
	}
	switch op {
	case OpLastKnown:
		if t.cache != nil {
			_, _, found, known := t.cache.LastSeenTraced(tagID, tr)
			if !known {
				return 0, fmt.Errorf("load: unknown tag %q", tagID)
			}
			if found {
				return 1, nil
			}
			return 0, nil
		}
		if !t.known(tagID) {
			return 0, fmt.Errorf("load: unknown tag %q", tagID)
		}
		if _, _, ok := t.combined.LastSeen(tagID); ok {
			return 1, nil
		}
		return 0, nil
	case OpHistory:
		if t.cache != nil {
			hist, known := t.cache.HistoryTailTraced(tagID, HistoryCap, tr)
			if !known {
				return 0, fmt.Errorf("load: unknown tag %q", tagID)
			}
			return len(hist), nil
		}
		if !t.known(tagID) {
			return 0, fmt.Errorf("load: unknown tag %q", tagID)
		}
		return len(t.combined.MergedHistoryTailTraced(tagID, HistoryCap, tr)), nil
	case OpTrack:
		if t.cache != nil {
			track, known := t.cache.TrackTraced(tagID, tr)
			if !known {
				return 0, fmt.Errorf("load: unknown tag %q", tagID)
			}
			return len(track), nil
		}
		if !t.known(tagID) {
			return 0, fmt.Errorf("load: unknown tag %q", tagID)
		}
		return len(t.combined.MergedHistoryTraced(tagID, tr)), nil
	default:
		return 0, fmt.Errorf("load: unknown op %v", op)
	}
}

// HTTPTarget drives the serve package's query API over real HTTP.
type HTTPTarget struct {
	// Base is the server root, e.g. an httptest.Server URL.
	Base string
	// Client defaults to a connection-pooling client sized for the
	// worker count.
	Client *http.Client

	writes *reportSynth
}

// NewHTTPTarget builds an HTTP target for the query API at base.
func NewHTTPTarget(base string) *HTTPTarget {
	// Clone the default transport when it is the stock one (keeping its
	// proxy/dialer defaults); an embedding program may have replaced it
	// with an arbitrary RoundTripper, in which case start fresh.
	tr, ok := http.DefaultTransport.(*http.Transport)
	if ok {
		tr = tr.Clone()
	} else {
		tr = &http.Transport{}
	}
	tr.MaxIdleConnsPerHost = 64
	return &HTTPTarget{
		Base:   strings.TrimRight(base, "/"),
		Client: &http.Client{Transport: tr},
		writes: newReportSynth(nil),
	}
}

// Do implements Target over the HTTP query API. Queries use the
// Combined view, like the paper's unified-ecosystem analysis. Report-
// bearing responses are decoded just enough to count the records, so
// reports/s reflects payloads a real client would have parsed.
func (t *HTTPTarget) Do(op Op, tagID string) (int, error) {
	var path string
	switch op {
	case OpLastKnown:
		path = "/v1/lastknown?tag=" + url.QueryEscape(tagID)
	case OpHistory:
		path = "/v1/history?limit=" + strconv.Itoa(HistoryCap) + "&tag=" + url.QueryEscape(tagID)
	case OpTrack:
		path = "/v1/track?tag=" + url.QueryEscape(tagID)
	case OpStats:
		path = "/v1/stats"
	case OpReport:
		return t.post(tagID)
	default:
		return 0, fmt.Errorf("load: unknown op %v", op)
	}
	resp, err := t.Client.Get(t.Base + path)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, resp.Body)
		return 0, fmt.Errorf("load: %s: status %d", path, resp.StatusCode)
	}
	reports, err := countReports(op, resp.Body)
	if err != nil {
		return reports, fmt.Errorf("load: %s: %w", path, err)
	}
	return reports, nil
}

// post sends one synthesized report to POST /v1/report; an accepted
// write counts one report record, a rate-capped rejection zero.
func (t *HTTPTarget) post(tagID string) (int, error) {
	body, err := json.Marshal(t.writes.next(tagID))
	if err != nil {
		return 0, fmt.Errorf("load: encode report: %w", err)
	}
	resp, err := t.Client.Post(t.Base+"/v1/report", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, resp.Body)
		return 0, fmt.Errorf("load: /v1/report: status %d", resp.StatusCode)
	}
	var v struct {
		Accepted bool `json:"accepted"`
	}
	err = json.NewDecoder(resp.Body).Decode(&v)
	_, _ = io.Copy(io.Discard, resp.Body)
	if err != nil {
		return 0, fmt.Errorf("load: /v1/report: %w", err)
	}
	if v.Accepted {
		return 1, nil
	}
	return 0, nil
}

// countReports counts the report records in a 200 response body.
// Objects decode into empty structs, so counting never materializes the
// payload fields. The body is always drained so the connection can be
// reused.
func countReports(op Op, body io.Reader) (int, error) {
	drain := func() { _, _ = io.Copy(io.Discard, body) }
	dec := json.NewDecoder(body)
	var n int
	var err error
	switch op {
	case OpLastKnown:
		var v struct {
			Found bool `json:"found"`
		}
		if err = dec.Decode(&v); err == nil && v.Found {
			n = 1
		}
	case OpHistory:
		var v struct {
			Reports []struct{} `json:"reports"`
		}
		if err = dec.Decode(&v); err == nil {
			n = len(v.Reports)
		}
	case OpTrack:
		var v struct {
			Track []struct{} `json:"track"`
		}
		if err = dec.Decode(&v); err == nil {
			n = len(v.Track)
		}
	}
	drain()
	return n, err
}
