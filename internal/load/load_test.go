package load

import (
	"errors"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"tagsim/internal/cloud"
	"tagsim/internal/geo"
	"tagsim/internal/obs"
	"tagsim/internal/serve"
	"tagsim/internal/trace"
)

var (
	t0  = time.Date(2022, 3, 7, 9, 0, 0, 0, time.UTC)
	pos = geo.LatLon{Lat: 24.45, Lon: 54.37}
)

// recordingTarget captures the issued (op, tag) stream per worker-free
// global order plus per-pair counts.
type recordingTarget struct {
	mu    sync.Mutex
	count map[string]int
	fail  bool
}

func newRecordingTarget(fail bool) *recordingTarget {
	return &recordingTarget{count: map[string]int{}, fail: fail}
}

func (t *recordingTarget) Do(op Op, tagID string) (int, error) {
	t.mu.Lock()
	t.count[op.String()+"/"+tagID]++
	t.mu.Unlock()
	if t.fail {
		return 0, errors.New("boom")
	}
	return 2, nil // pretend every op served two report records
}

func tags(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = string(rune('a'+i%26)) + "-tag"
	}
	for i := range out {
		out[i] = out[i] + string(rune('0'+i/26))
	}
	return out
}

// TestDeterministicSequence: two runs with the same config must issue
// the identical multiset of (op, tag) pairs at any worker count —
// the load harness analog of the simulator's worker-invariance.
func TestDeterministicSequence(t *testing.T) {
	cfg := Config{Workers: 8, Requests: 1200, Seed: 42, Tags: tags(20)}
	a := newRecordingTarget(false)
	if _, err := Run(cfg, a); err != nil {
		t.Fatal(err)
	}
	b := newRecordingTarget(false)
	if _, err := Run(cfg, b); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.count, b.count) {
		t.Error("same config produced different request streams")
	}
	// A different seed must produce a different stream.
	c := newRecordingTarget(false)
	cfg.Seed = 43
	if _, err := Run(cfg, c); err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.count, c.count) {
		t.Error("different seeds produced identical request streams")
	}
}

func TestZipfSkewAndMix(t *testing.T) {
	cfg := Config{Workers: 4, Requests: 4000, Seed: 7, Tags: tags(50)}
	rec := newRecordingTarget(false)
	res, err := Run(cfg, rec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 4000 || res.Errors != 0 {
		t.Fatalf("result = %+v", res)
	}
	// The default mix is dominated by last-known polls.
	if res.PerOp[OpLastKnown] < res.PerOp[OpHistory]+res.PerOp[OpTrack]+res.PerOp[OpStats] {
		t.Errorf("mix not lastknown-dominated: %v", res.PerOp)
	}
	total := 0
	for _, n := range res.PerOp {
		total += n
	}
	if total != 4000 {
		t.Errorf("per-op counts sum to %d", total)
	}
	// Zipf popularity: the hottest tag draws more lastknown polls than
	// a deep-tail tag.
	hot := rec.count["lastknown/"+cfg.Tags[0]]
	cold := rec.count["lastknown/"+cfg.Tags[49]]
	if hot <= cold*2 {
		t.Errorf("no Zipf skew: hot=%d cold=%d", hot, cold)
	}
	if res.Latency.N != 4000 {
		t.Errorf("latency sample count = %d", res.Latency.N)
	}
	if res.Throughput() <= 0 {
		t.Error("throughput must be positive")
	}
	// The recording target reports two records per op, so the sustained
	// data rate is exactly twice the request rate.
	if res.Reports != 2*res.Requests {
		t.Errorf("reports = %d, want %d", res.Reports, 2*res.Requests)
	}
	if got, want := res.ReportThroughput(), 2*res.Throughput(); got < want*0.99 || got > want*1.01 {
		t.Errorf("report throughput = %.0f, want ~%.0f", got, want)
	}
	out := res.Render()
	if out == "" {
		t.Error("Render must describe the run")
	}
	for _, want := range []string{"req/s", "reports/s"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestErrorsCounted(t *testing.T) {
	cfg := Config{Workers: 2, Requests: 10, Seed: 1, Tags: tags(3)}
	res, err := Run(cfg, newRecordingTarget(true))
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 10 {
		t.Errorf("errors = %d, want 10", res.Errors)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(Config{}, newRecordingTarget(false)); err == nil {
		t.Error("empty tag universe must error")
	}
	if _, err := Run(Config{Tags: tags(2), ZipfS: 0.5}, newRecordingTarget(false)); err == nil {
		t.Error("ZipfS <= 1 must error")
	}
	if _, err := Run(Config{Tags: tags(2), Mix: Mix{LastKnown: 10, History: -20}}, newRecordingTarget(false)); err == nil {
		t.Error("negative mix weights must error, not panic in Intn")
	}
}

func fixtureServices() map[trace.Vendor]*cloud.Service {
	apple := cloud.NewService(trace.VendorApple)
	samsung := cloud.NewService(trace.VendorSamsung)
	for i, tag := range []string{"airtag-1", "smarttag-1", "tag-x"} {
		svc := apple
		if i%2 == 1 {
			svc = samsung
		}
		for k := 0; k < 5; k++ {
			at := t0.Add(time.Duration(k) * 4 * time.Minute)
			svc.Ingest(trace.Report{T: at, HeardAt: at, TagID: tag, Vendor: svc.Vendor(),
				Pos: geo.Destination(pos, float64(k*20), float64(k*30))})
		}
	}
	return map[trace.Vendor]*cloud.Service{trace.VendorApple: apple, trace.VendorSamsung: samsung}
}

// TestServiceTarget drives the stores directly.
func TestServiceTarget(t *testing.T) {
	target := NewServiceTarget(fixtureServices())
	// The fixture accepts all 5 reports per tag (4-minute spacing clears
	// the rate cap), so history of a known tag serves 5 records and
	// lastknown 1. Checked before the all-ops sweep below, which includes
	// the OpReport write and so grows the history.
	if n, _ := target.Do(OpHistory, "airtag-1"); n != 5 {
		t.Errorf("history reports = %d, want 5", n)
	}
	if n, _ := target.Do(OpLastKnown, "airtag-1"); n != 1 {
		t.Errorf("lastknown reports = %d, want 1", n)
	}
	for op := Op(0); op < numOps; op++ {
		if _, err := target.Do(op, "airtag-1"); err != nil {
			t.Errorf("%v: %v", op, err)
		}
	}
	res, err := Run(Config{Workers: 4, Requests: 400, Seed: 3, Tags: []string{"airtag-1", "smarttag-1", "tag-x"}}, target)
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Errorf("direct target errors = %d", res.Errors)
	}
	if res.Reports == 0 {
		t.Error("direct target served no reports")
	}
}

// TestHTTPTargetEndToEnd runs the closed loop against a real HTTP server
// wired to the query API — the full serving stack in-process.
func TestHTTPTargetEndToEnd(t *testing.T) {
	ts := httptest.NewServer(serve.NewServer(fixtureServices()))
	defer ts.Close()
	res, err := Run(Config{Workers: 4, Requests: 400, Seed: 3, Tags: []string{"airtag-1", "smarttag-1", "tag-x"}},
		NewHTTPTarget(ts.URL))
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Errorf("HTTP target errors = %d", res.Errors)
	}
	if res.Latency.P50 <= 0 {
		t.Error("latencies must be measured")
	}
	if res.Reports == 0 {
		t.Error("HTTP target counted no served reports")
	}
	// HTTP and direct targets must count the same per-request payloads.
	direct := NewServiceTarget(fixtureServices())
	httpT := NewHTTPTarget(ts.URL)
	for op := Op(0); op < numOps; op++ {
		want, _ := direct.Do(op, "smarttag-1")
		got, err := httpT.Do(op, "smarttag-1")
		if err != nil {
			t.Fatalf("%v: %v", op, err)
		}
		if got != want {
			t.Errorf("%v: HTTP counted %d reports, direct %d", op, got, want)
		}
	}
	// ...and agree that an unknown tag is an error (the HTTP layer
	// 404s it; the direct target mirrors that), keeping error rates
	// comparable between the two modes.
	for _, op := range []Op{OpLastKnown, OpHistory, OpTrack} {
		if _, err := direct.Do(op, "ghost"); err == nil {
			t.Errorf("%v: direct target accepted unknown tag", op)
		}
		if _, err := httpT.Do(op, "ghost"); err == nil {
			t.Errorf("%v: HTTP target accepted unknown tag", op)
		}
	}
}

// TestOpenLoopSchedule: the open loop issues the same deterministic
// (op, tag) stream as the closed loop, measures queue wait for every
// request, and at a generous offered rate achieves roughly what it
// offers. Timing assertions keep wide margins — CI boxes are noisy.
func TestOpenLoopSchedule(t *testing.T) {
	cfg := Config{Workers: 2, Requests: 200, Seed: 9, Tags: tags(10),
		OpenLoop: true, OfferedRate: 20000}
	closed := newRecordingTarget(false)
	if _, err := Run(Config{Workers: 2, Requests: 200, Seed: 9, Tags: tags(10)}, closed); err != nil {
		t.Fatal(err)
	}
	open := newRecordingTarget(false)
	res, err := Run(cfg, open)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(open.count, closed.count) {
		t.Error("open and closed loops issued different request streams for the same config")
	}
	if !res.OpenLoop || res.OfferedRate != 20000 {
		t.Errorf("result loop echo = (%v, %v)", res.OpenLoop, res.OfferedRate)
	}
	if res.QueueWait.N != res.Requests {
		t.Errorf("queue wait samples = %d, want %d", res.QueueWait.N, res.Requests)
	}
	if res.Latency.N != res.Requests {
		t.Errorf("latency samples = %d, want %d", res.Latency.N, res.Requests)
	}
	// 200 requests at 20k/s are offered inside ~10ms; even a slow box
	// finishes well under a second, so the achieved rate stays within
	// an order of magnitude of offered.
	if res.Throughput() < res.OfferedRate/100 {
		t.Errorf("achieved %.0f req/s against %.0f offered", res.Throughput(), res.OfferedRate)
	}
	out := res.Render()
	for _, want := range []string{"open loop", "offered=", "queue ms"} {
		if !strings.Contains(out, want) {
			t.Errorf("open-loop render missing %q:\n%s", want, out)
		}
	}
}

// slowTarget serves every request with a fixed delay — an overloaded
// backend for the coordinated-omission test.
type slowTarget struct{ d time.Duration }

func (s slowTarget) Do(op Op, tagID string) (int, error) {
	time.Sleep(s.d)
	return 0, nil
}

// TestOpenLoopExposesQueueing is the coordinated-omission property: a
// closed loop against a slow target reports only service latency, while
// the open loop at an offered rate beyond the target's capacity
// accumulates visible queue wait that dwarfs the service time.
func TestOpenLoopExposesQueueing(t *testing.T) {
	target := slowTarget{d: 2 * time.Millisecond}
	// One worker serving 2ms requests caps at 500 req/s; offer 4x.
	res, err := Run(Config{Workers: 1, Requests: 100, Seed: 5, Tags: tags(3),
		OpenLoop: true, OfferedRate: 2000}, target)
	if err != nil {
		t.Fatal(err)
	}
	if res.QueueWait.P99 < res.Latency.P50 {
		t.Errorf("overload queue wait p99 (%.3fms) should exceed the 2ms service time (p50 %.3fms)",
			res.QueueWait.P99, res.Latency.P50)
	}
	// The achieved rate saturates near capacity, well under offered.
	if res.Throughput() >= res.OfferedRate {
		t.Errorf("achieved %.0f req/s cannot exceed offered %.0f under overload", res.Throughput(), res.OfferedRate)
	}
}

func TestOpenLoopValidation(t *testing.T) {
	_, err := Run(Config{Tags: tags(2), OpenLoop: true}, newRecordingTarget(false))
	if err == nil {
		t.Error("open loop without an offered rate must error")
	}
}

// TestReadMixWrites: ReadMix dials the write share, OpReport drives
// real ingest on the direct target, and the write stream exercises
// both accept and reject paths under the vendor rate cap.
func TestReadMixWrites(t *testing.T) {
	m := ReadMix(60)
	if m.Report != 40 || m.total() != 100 {
		t.Fatalf("ReadMix(60) = %+v", m)
	}
	if ReadMix(90).Report != 10 {
		t.Fatalf("ReadMix(90) = %+v", ReadMix(90))
	}
	services := fixtureServices()
	target := NewServiceTarget(services)
	accBefore, _ := services[trace.VendorApple].Stats()
	res, err := Run(Config{Workers: 2, Requests: 500, Seed: 11,
		Tags: []string{"airtag-1", "smarttag-1", "tag-x"}, Mix: ReadMix(60)}, target)
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Errorf("mixed run errors = %d", res.Errors)
	}
	if res.PerOp[OpReport] == 0 {
		t.Error("a 40%% write mix issued no writes")
	}
	accAfter, rejAfter := services[trace.VendorApple].Stats()
	if accAfter <= accBefore {
		t.Error("writes did not reach the apple store")
	}
	if rejAfter == 0 {
		t.Error("the rate cap rejected nothing — write stream too sparse to exercise rejects")
	}
}

// TestCachedServiceTarget: the cached target answers identically to the
// direct one, including after a write invalidates the hot entry.
func TestCachedServiceTarget(t *testing.T) {
	direct := NewServiceTarget(fixtureServices())
	cached := NewCachedServiceTarget(fixtureServices())
	for _, op := range []Op{OpLastKnown, OpHistory, OpTrack} {
		want, _ := direct.Do(op, "airtag-1")
		got, err := cached.Do(op, "airtag-1")
		if err != nil || got != want {
			t.Errorf("%v: cached = (%d, %v), direct = %d", op, got, err, want)
		}
		if _, err := cached.Do(op, "ghost"); err == nil {
			t.Errorf("%v: cached target accepted unknown tag", op)
		}
	}
	// A write through the same target must invalidate the cached track.
	before, _ := cached.Do(OpTrack, "airtag-1")
	if n, _ := cached.Do(OpReport, "airtag-1"); n != 1 {
		t.Fatal("fresh write against the stale fixture should be accepted")
	}
	after, _ := cached.Do(OpTrack, "airtag-1")
	if after != before+1 {
		t.Errorf("track after invalidating write = %d reports, want %d", after, before+1)
	}
	res, err := Run(Config{Workers: 4, Requests: 400, Seed: 3,
		Tags: []string{"airtag-1", "smarttag-1", "tag-x"}, Mix: ReadMix(90)}, cached)
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Errorf("cached target errors = %d", res.Errors)
	}
}

// TestLatencyHistogram: a Config.Latency histogram observes exactly one
// sample per issued request, and its quantiles are well-formed.
func TestLatencyHistogram(t *testing.T) {
	h := &obs.Histogram{}
	cfg := Config{Workers: 4, Requests: 500, Seed: 11, Tags: tags(10), Latency: h}
	res, err := Run(cfg, newRecordingTarget(false))
	if err != nil {
		t.Fatal(err)
	}
	snap := h.Snapshot()
	if snap.Count != uint64(res.Requests) {
		t.Fatalf("histogram saw %d samples, load issued %d requests", snap.Count, res.Requests)
	}
	p50, p99 := snap.Quantile(50), snap.Quantile(99)
	if p50 < 0 || p99 < p50 {
		t.Fatalf("malformed quantiles: p50=%v p99=%v", p50, p99)
	}
}
