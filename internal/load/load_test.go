package load

import (
	"errors"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"tagsim/internal/cloud"
	"tagsim/internal/geo"
	"tagsim/internal/serve"
	"tagsim/internal/trace"
)

var (
	t0  = time.Date(2022, 3, 7, 9, 0, 0, 0, time.UTC)
	pos = geo.LatLon{Lat: 24.45, Lon: 54.37}
)

// recordingTarget captures the issued (op, tag) stream per worker-free
// global order plus per-pair counts.
type recordingTarget struct {
	mu    sync.Mutex
	count map[string]int
	fail  bool
}

func newRecordingTarget(fail bool) *recordingTarget {
	return &recordingTarget{count: map[string]int{}, fail: fail}
}

func (t *recordingTarget) Do(op Op, tagID string) (int, error) {
	t.mu.Lock()
	t.count[op.String()+"/"+tagID]++
	t.mu.Unlock()
	if t.fail {
		return 0, errors.New("boom")
	}
	return 2, nil // pretend every op served two report records
}

func tags(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = string(rune('a'+i%26)) + "-tag"
	}
	for i := range out {
		out[i] = out[i] + string(rune('0'+i/26))
	}
	return out
}

// TestDeterministicSequence: two runs with the same config must issue
// the identical multiset of (op, tag) pairs at any worker count —
// the load harness analog of the simulator's worker-invariance.
func TestDeterministicSequence(t *testing.T) {
	cfg := Config{Workers: 8, Requests: 1200, Seed: 42, Tags: tags(20)}
	a := newRecordingTarget(false)
	if _, err := Run(cfg, a); err != nil {
		t.Fatal(err)
	}
	b := newRecordingTarget(false)
	if _, err := Run(cfg, b); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.count, b.count) {
		t.Error("same config produced different request streams")
	}
	// A different seed must produce a different stream.
	c := newRecordingTarget(false)
	cfg.Seed = 43
	if _, err := Run(cfg, c); err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.count, c.count) {
		t.Error("different seeds produced identical request streams")
	}
}

func TestZipfSkewAndMix(t *testing.T) {
	cfg := Config{Workers: 4, Requests: 4000, Seed: 7, Tags: tags(50)}
	rec := newRecordingTarget(false)
	res, err := Run(cfg, rec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 4000 || res.Errors != 0 {
		t.Fatalf("result = %+v", res)
	}
	// The default mix is dominated by last-known polls.
	if res.PerOp[OpLastKnown] < res.PerOp[OpHistory]+res.PerOp[OpTrack]+res.PerOp[OpStats] {
		t.Errorf("mix not lastknown-dominated: %v", res.PerOp)
	}
	total := 0
	for _, n := range res.PerOp {
		total += n
	}
	if total != 4000 {
		t.Errorf("per-op counts sum to %d", total)
	}
	// Zipf popularity: the hottest tag draws more lastknown polls than
	// a deep-tail tag.
	hot := rec.count["lastknown/"+cfg.Tags[0]]
	cold := rec.count["lastknown/"+cfg.Tags[49]]
	if hot <= cold*2 {
		t.Errorf("no Zipf skew: hot=%d cold=%d", hot, cold)
	}
	if res.Latency.N != 4000 {
		t.Errorf("latency sample count = %d", res.Latency.N)
	}
	if res.Throughput() <= 0 {
		t.Error("throughput must be positive")
	}
	// The recording target reports two records per op, so the sustained
	// data rate is exactly twice the request rate.
	if res.Reports != 2*res.Requests {
		t.Errorf("reports = %d, want %d", res.Reports, 2*res.Requests)
	}
	if got, want := res.ReportThroughput(), 2*res.Throughput(); got < want*0.99 || got > want*1.01 {
		t.Errorf("report throughput = %.0f, want ~%.0f", got, want)
	}
	out := res.Render()
	if out == "" {
		t.Error("Render must describe the run")
	}
	for _, want := range []string{"req/s", "reports/s"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestErrorsCounted(t *testing.T) {
	cfg := Config{Workers: 2, Requests: 10, Seed: 1, Tags: tags(3)}
	res, err := Run(cfg, newRecordingTarget(true))
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 10 {
		t.Errorf("errors = %d, want 10", res.Errors)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(Config{}, newRecordingTarget(false)); err == nil {
		t.Error("empty tag universe must error")
	}
	if _, err := Run(Config{Tags: tags(2), ZipfS: 0.5}, newRecordingTarget(false)); err == nil {
		t.Error("ZipfS <= 1 must error")
	}
	if _, err := Run(Config{Tags: tags(2), Mix: Mix{LastKnown: 10, History: -20}}, newRecordingTarget(false)); err == nil {
		t.Error("negative mix weights must error, not panic in Intn")
	}
}

func fixtureServices() map[trace.Vendor]*cloud.Service {
	apple := cloud.NewService(trace.VendorApple)
	samsung := cloud.NewService(trace.VendorSamsung)
	for i, tag := range []string{"airtag-1", "smarttag-1", "tag-x"} {
		svc := apple
		if i%2 == 1 {
			svc = samsung
		}
		for k := 0; k < 5; k++ {
			at := t0.Add(time.Duration(k) * 4 * time.Minute)
			svc.Ingest(trace.Report{T: at, HeardAt: at, TagID: tag, Vendor: svc.Vendor(),
				Pos: geo.Destination(pos, float64(k*20), float64(k*30))})
		}
	}
	return map[trace.Vendor]*cloud.Service{trace.VendorApple: apple, trace.VendorSamsung: samsung}
}

// TestServiceTarget drives the stores directly.
func TestServiceTarget(t *testing.T) {
	target := NewServiceTarget(fixtureServices())
	for op := Op(0); op < numOps; op++ {
		if _, err := target.Do(op, "airtag-1"); err != nil {
			t.Errorf("%v: %v", op, err)
		}
	}
	// The fixture accepts all 5 reports per tag (4-minute spacing clears
	// the rate cap), so history of a known tag serves 5 records and
	// lastknown 1.
	if n, _ := target.Do(OpHistory, "airtag-1"); n != 5 {
		t.Errorf("history reports = %d, want 5", n)
	}
	if n, _ := target.Do(OpLastKnown, "airtag-1"); n != 1 {
		t.Errorf("lastknown reports = %d, want 1", n)
	}
	res, err := Run(Config{Workers: 4, Requests: 400, Seed: 3, Tags: []string{"airtag-1", "smarttag-1", "tag-x"}}, target)
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Errorf("direct target errors = %d", res.Errors)
	}
	if res.Reports == 0 {
		t.Error("direct target served no reports")
	}
}

// TestHTTPTargetEndToEnd runs the closed loop against a real HTTP server
// wired to the query API — the full serving stack in-process.
func TestHTTPTargetEndToEnd(t *testing.T) {
	ts := httptest.NewServer(serve.NewServer(fixtureServices()))
	defer ts.Close()
	res, err := Run(Config{Workers: 4, Requests: 400, Seed: 3, Tags: []string{"airtag-1", "smarttag-1", "tag-x"}},
		NewHTTPTarget(ts.URL))
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Errorf("HTTP target errors = %d", res.Errors)
	}
	if res.Latency.P50 <= 0 {
		t.Error("latencies must be measured")
	}
	if res.Reports == 0 {
		t.Error("HTTP target counted no served reports")
	}
	// HTTP and direct targets must count the same per-request payloads.
	direct := NewServiceTarget(fixtureServices())
	httpT := NewHTTPTarget(ts.URL)
	for op := Op(0); op < numOps; op++ {
		want, _ := direct.Do(op, "smarttag-1")
		got, err := httpT.Do(op, "smarttag-1")
		if err != nil {
			t.Fatalf("%v: %v", op, err)
		}
		if got != want {
			t.Errorf("%v: HTTP counted %d reports, direct %d", op, got, want)
		}
	}
	// ...and agree that an unknown tag is an error (the HTTP layer
	// 404s it; the direct target mirrors that), keeping error rates
	// comparable between the two modes.
	for _, op := range []Op{OpLastKnown, OpHistory, OpTrack} {
		if _, err := direct.Do(op, "ghost"); err == nil {
			t.Errorf("%v: direct target accepted unknown tag", op)
		}
		if _, err := httpT.Do(op, "ghost"); err == nil {
			t.Errorf("%v: HTTP target accepted unknown tag", op)
		}
	}
}
