package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	return math.Abs(a-b) <= tol
}

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); !almostEqual(m, 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", m)
	}
	// Sample variance of the classic dataset: population var is 4,
	// sample var is 32/7.
	if v := Variance(xs); !almostEqual(v, 32.0/7, 1e-12) {
		t.Errorf("Variance = %v, want %v", v, 32.0/7)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) should be NaN")
	}
	if !math.IsNaN(Variance([]float64{1})) {
		t.Error("Variance of single sample should be NaN")
	}
}

func TestMeanShiftInvariance(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e6 {
				xs = append(xs, x)
			}
		}
		if len(xs) < 2 {
			return true
		}
		shifted := make([]float64, len(xs))
		for i, x := range xs {
			shifted[i] = x + 1000
		}
		return almostEqual(Mean(shifted), Mean(xs)+1000, 1e-6) &&
			almostEqual(Variance(shifted), Variance(xs), math.Max(1e-6, Variance(xs)*1e-9))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuantilesKnownDistributions(t *testing.T) {
	// 0..999 uniform grid: rank p/100*(n-1) with linear interpolation.
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = float64(i)
	}
	// Shuffle deterministically: Quantiles must sort internally.
	rng := rand.New(rand.NewSource(7))
	rng.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	q := Quantiles(xs)
	if q.N != 1000 {
		t.Errorf("N = %d", q.N)
	}
	if !almostEqual(q.P50, 499.5, 1e-9) || !almostEqual(q.P95, 949.05, 1e-9) || !almostEqual(q.P99, 989.01, 1e-9) {
		t.Errorf("uniform quantiles = %+v", q)
	}
	// Quantiles must agree with Percentile on any sample set.
	exp := make([]float64, 500)
	for i := range exp {
		exp[i] = rng.ExpFloat64()
	}
	qe := Quantiles(exp)
	for _, c := range []struct{ got, p float64 }{{qe.P50, 50}, {qe.P95, 95}, {qe.P99, 99}} {
		if want := Percentile(exp, c.p); !almostEqual(c.got, want, 1e-12) {
			t.Errorf("p%v = %v, Percentile says %v", c.p, c.got, want)
		}
	}
	// Input must not be reordered by the call.
	before := append([]float64(nil), exp...)
	Quantiles(exp)
	for i := range exp {
		if exp[i] != before[i] {
			t.Fatal("Quantiles mutated its input")
		}
	}
}

// TestQuantilesDegenerate pins the NaN-free contract for tiny inputs:
// the load harness and serving reports embed these summaries in JSON
// and rendered tables, where a NaN would poison both.
func TestQuantilesDegenerate(t *testing.T) {
	cases := []struct {
		name string
		xs   []float64
		want QuantileSummary
	}{
		{"nil", nil, QuantileSummary{}},
		{"empty", []float64{}, QuantileSummary{}},
		{"single", []float64{42}, QuantileSummary{N: 1, P50: 42, P95: 42, P99: 42}},
		{"single-zero", []float64{0}, QuantileSummary{N: 1}},
		{"single-negative", []float64{-3.5}, QuantileSummary{N: 1, P50: -3.5, P95: -3.5, P99: -3.5}},
		{"pair", []float64{1, 3}, QuantileSummary{N: 2, P50: 2, P95: 2.9, P99: 2.98}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := Quantiles(c.xs)
			if math.IsNaN(got.P50) || math.IsNaN(got.P95) || math.IsNaN(got.P99) {
				t.Fatalf("Quantiles(%v) contains NaN: %+v", c.xs, got)
			}
			if got.N != c.want.N ||
				!almostEqual(got.P50, c.want.P50, 1e-12) ||
				!almostEqual(got.P95, c.want.P95, 1e-12) ||
				!almostEqual(got.P99, c.want.P99, 1e-12) {
				t.Errorf("Quantiles(%v) = %+v, want %+v", c.xs, got, c.want)
			}
		})
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct{ p, want float64 }{
		{0, 1}, {100, 10}, {50, 5.5}, {25, 3.25}, {75, 7.75},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("Percentile(nil) should be NaN")
	}
	// Percentiles must not depend on input order.
	shuffled := []float64{7, 1, 9, 3, 10, 5, 2, 8, 6, 4}
	if got := Percentile(shuffled, 50); !almostEqual(got, 5.5, 1e-12) {
		t.Errorf("Percentile of shuffled = %v, want 5.5", got)
	}
}

func TestSummarize(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	s := Summarize(xs)
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Errorf("Summarize = %+v", s)
	}
	if s.CI95 <= 0 || math.IsNaN(s.CI95) {
		t.Errorf("CI95 = %v, want positive", s.CI95)
	}
	// Half-width = t_{0.975,4} * stderr = 2.776 * sqrt(2.5)/sqrt(5).
	want := 2.7764 * math.Sqrt(2.5) / math.Sqrt(5)
	if !almostEqual(s.CI95, want, 0.01) {
		t.Errorf("CI95 = %v, want %v", s.CI95, want)
	}
	empty := Summarize(nil)
	if empty.N != 0 || !math.IsNaN(empty.Mean) || !math.IsNaN(empty.Median) {
		t.Errorf("empty Summarize = %+v", empty)
	}
}

func TestECDF(t *testing.T) {
	e := NewECDF([]float64{1, 2, 2, 3})
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {1.5, 0.25}, {2, 0.75}, {3, 1}, {10, 1},
	}
	for _, c := range cases {
		if got := e.Eval(c.x); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Eval(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	if got := e.Quantile(0.5); !almostEqual(got, 2, 1e-12) {
		t.Errorf("Quantile(0.5) = %v, want 2", got)
	}
	xs, ps := e.Points()
	if len(xs) != 3 || len(ps) != 3 {
		t.Fatalf("Points returned %d/%d entries", len(xs), len(ps))
	}
	if ps[len(ps)-1] != 1 {
		t.Error("last ECDF point must be 1")
	}
	if !math.IsNaN(NewECDF(nil).Eval(1)) {
		t.Error("empty ECDF Eval should be NaN")
	}
}

func TestECDFMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = rng.NormFloat64() * 10
	}
	e := NewECDF(xs)
	prev := 0.0
	for x := -40.0; x <= 40; x += 0.5 {
		v := e.Eval(x)
		if v < prev-1e-12 {
			t.Fatalf("ECDF decreased at %v", x)
		}
		prev = v
	}
}

func TestRegIncBetaKnownValues(t *testing.T) {
	// I_x(1,1) = x (uniform distribution).
	for _, x := range []float64{0, 0.25, 0.5, 0.75, 1} {
		if got := RegIncBeta(1, 1, x); !almostEqual(got, x, 1e-10) {
			t.Errorf("I_%v(1,1) = %v, want %v", x, got, x)
		}
	}
	// Symmetry: I_x(a,b) = 1 - I_{1-x}(b,a).
	for _, x := range []float64{0.1, 0.3, 0.7} {
		lhs := RegIncBeta(2.5, 3.5, x)
		rhs := 1 - RegIncBeta(3.5, 2.5, 1-x)
		if !almostEqual(lhs, rhs, 1e-10) {
			t.Errorf("symmetry broken at x=%v: %v vs %v", x, lhs, rhs)
		}
	}
	// I_{0.5}(a,a) = 0.5 by symmetry.
	if got := RegIncBeta(4, 4, 0.5); !almostEqual(got, 0.5, 1e-10) {
		t.Errorf("I_0.5(4,4) = %v, want 0.5", got)
	}
}

func TestStudentTCDFAgainstTables(t *testing.T) {
	// Standard two-sided critical values: P(|T| > crit) = alpha.
	cases := []struct {
		df, crit, alpha float64
	}{
		{1, 12.706, 0.05},
		{5, 2.571, 0.05},
		{10, 2.228, 0.05},
		{30, 2.042, 0.05},
		{10, 3.169, 0.01},
		{100, 1.984, 0.05},
	}
	for _, c := range cases {
		p := 2 * studentTSF(c.crit, c.df)
		if !almostEqual(p, c.alpha, 0.001) {
			t.Errorf("df=%v t=%v: p = %v, want %v", c.df, c.crit, p, c.alpha)
		}
		crit := TCritical(c.df, c.alpha)
		if !almostEqual(crit, c.crit, 0.01) {
			t.Errorf("TCritical(%v, %v) = %v, want %v", c.df, c.alpha, crit, c.crit)
		}
	}
}

func TestWelchTTest(t *testing.T) {
	// Clearly different populations.
	a := []float64{10.1, 10.3, 9.8, 10.0, 10.2, 9.9, 10.1, 10.0}
	b := []float64{12.1, 12.3, 11.8, 12.0, 12.2, 11.9, 12.1, 12.0}
	res, err := WelchTTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.P > 1e-6 {
		t.Errorf("p = %v, want tiny", res.P)
	}
	if res.T >= 0 {
		t.Errorf("t = %v, want negative (a < b)", res.T)
	}

	// Same population: p should usually be large.
	res2, err := WelchTTest(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if res2.P < 0.99 {
		t.Errorf("identical samples: p = %v, want ~1", res2.P)
	}

	if _, err := WelchTTest([]float64{1}, a); err == nil {
		t.Error("want ErrInsufficientData for n=1")
	}
}

func TestWelchTTestConstantSamples(t *testing.T) {
	same, err := WelchTTest([]float64{5, 5, 5}, []float64{5, 5, 5})
	if err != nil || same.P != 1 {
		t.Errorf("constant equal samples: p = %v err = %v, want 1, nil", same.P, err)
	}
	diff, err := WelchTTest([]float64{5, 5, 5}, []float64{6, 6, 6})
	if err != nil || diff.P != 0 {
		t.Errorf("constant different samples: p = %v err = %v, want 0, nil", diff.P, err)
	}
}

func TestWelchTTestFalsePositiveRate(t *testing.T) {
	// Drawing both samples from N(0,1), p < 0.05 should occur ~5% of
	// the time.
	rng := rand.New(rand.NewSource(1234))
	trials, rejects := 2000, 0
	for i := 0; i < trials; i++ {
		a := make([]float64, 20)
		b := make([]float64, 20)
		for j := range a {
			a[j] = rng.NormFloat64()
			b[j] = rng.NormFloat64()
		}
		res, err := WelchTTest(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if res.P < 0.05 {
			rejects++
		}
	}
	rate := float64(rejects) / float64(trials)
	if rate < 0.02 || rate > 0.09 {
		t.Errorf("false positive rate = %v, want ~0.05", rate)
	}
}

func TestStars(t *testing.T) {
	cases := []struct {
		p    float64
		want string
	}{
		{0.5, "ns"}, {0.051, "ns"}, {0.05, "*"}, {0.02, "*"},
		{0.01, "**"}, {0.005, "**"}, {0.001, "***"}, {0.0005, "***"},
		{0.0001, "****"}, {1e-9, "****"}, {math.NaN(), "ns"},
	}
	for _, c := range cases {
		if got := Stars(c.p); got != c.want {
			t.Errorf("Stars(%v) = %q, want %q", c.p, got, c.want)
		}
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{0, 1, 2, 3, 4, 5, 9, 100, -5, math.NaN()}, 0, 10, 5)
	if h.Total != 9 {
		t.Errorf("Total = %d, want 9 (NaN dropped)", h.Total)
	}
	// -5 clamps into bin 0, 100 into bin 4.
	if h.Counts[0] != 3 { // 0, 1, -5
		t.Errorf("bin 0 = %d, want 3", h.Counts[0])
	}
	if h.Counts[4] != 2 { // 9, 100
		t.Errorf("bin 4 = %d, want 2", h.Counts[4])
	}
	if got := h.BinCenter(0); !almostEqual(got, 1, 1e-12) {
		t.Errorf("BinCenter(0) = %v, want 1", got)
	}
	total := 0.0
	for i := range h.Counts {
		total += h.Fraction(i)
	}
	if !almostEqual(total, 1, 1e-12) {
		t.Errorf("fractions sum to %v", total)
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if got := Pearson(xs, ys); !almostEqual(got, 1, 1e-12) {
		t.Errorf("perfect correlation = %v", got)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if got := Pearson(xs, neg); !almostEqual(got, -1, 1e-12) {
		t.Errorf("perfect anticorrelation = %v", got)
	}
	if !math.IsNaN(Pearson(xs, []float64{1, 1, 1, 1, 1})) {
		t.Error("constant side should give NaN")
	}
	if !math.IsNaN(Pearson(xs, xs[:3])) {
		t.Error("length mismatch should give NaN")
	}
}

func TestTCriticalEdgeCases(t *testing.T) {
	if !math.IsNaN(TCritical(0, 0.05)) || !math.IsNaN(TCritical(5, 0)) || !math.IsNaN(TCritical(5, 1)) {
		t.Error("invalid TCritical inputs should return NaN")
	}
}

func BenchmarkWelchTTest(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 500)
	ys := make([]float64, 500)
	for i := range xs {
		xs[i] = rng.NormFloat64()
		ys[i] = rng.NormFloat64() + 0.1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := WelchTTest(xs, ys); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkECDFEval(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	xs := make([]float64, 10000)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	e := NewECDF(xs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Eval(0.5)
	}
}
