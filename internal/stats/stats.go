// Package stats provides the statistical machinery the paper's analysis
// uses: summary statistics, percentiles, empirical CDFs, Welch's t-test
// with exact p-values, 95% confidence intervals, and the significance-star
// notation from Figure 5 (ns, *, **, ***, ****).
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrInsufficientData is returned by tests and intervals that need more
// samples than were provided.
var ErrInsufficientData = errors.New("stats: insufficient data")

// Mean returns the arithmetic mean, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased sample variance, or NaN for n < 2.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// StdDev returns the sample standard deviation, or NaN for n < 2.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// StdErr returns the standard error of the mean, or NaN for n < 2.
func StdErr(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	return StdDev(xs) / math.Sqrt(float64(len(xs)))
}

// Summary bundles the descriptive statistics reported throughout the
// experiment tables.
type Summary struct {
	N            int
	Mean, Std    float64
	Min, Max     float64
	Median       float64
	P25, P75     float64
	StdErr, CI95 float64 // CI95 is the half-width of the 95% interval
}

// Summarize computes a Summary. For N < 2 the spread fields are NaN.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs), Mean: Mean(xs), Std: StdDev(xs), StdErr: StdErr(xs)}
	if len(xs) == 0 {
		s.Min, s.Max, s.Median, s.P25, s.P75, s.CI95 = nan, nan, nan, nan, nan, nan
		return s
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Min, s.Max = sorted[0], sorted[len(sorted)-1]
	s.Median = percentileSorted(sorted, 50)
	s.P25 = percentileSorted(sorted, 25)
	s.P75 = percentileSorted(sorted, 75)
	if len(xs) >= 2 {
		s.CI95 = TCritical(float64(len(xs)-1), 0.05) * s.StdErr
	} else {
		s.CI95 = nan
	}
	return s
}

var nan = math.NaN()

// Percentile returns the p-th percentile (0..100) with linear interpolation
// between order statistics, or NaN for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return nan
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

func percentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return nan
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// QuantileSummary bundles the latency quantiles the serving benchmarks
// and the load harness report.
type QuantileSummary struct {
	N             int
	P50, P95, P99 float64
}

// Quantiles computes the p50/p95/p99 summary of the samples with the
// same linear interpolation as Percentile. Degenerate inputs stay
// NaN-free so reports render and serialize cleanly: an empty slice
// yields the zero summary, and a single sample is its own p50/p95/p99.
func Quantiles(xs []float64) QuantileSummary {
	// Only the empty input needs special casing: a single sample already
	// comes out NaN-free from the interpolation (rank 0 -> sorted[0]).
	if len(xs) == 0 {
		return QuantileSummary{}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return QuantileSummary{
		N:   len(xs),
		P50: percentileSorted(sorted, 50),
		P95: percentileSorted(sorted, 95),
		P99: percentileSorted(sorted, 99),
	}
}

// ECDF is an empirical cumulative distribution function.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF over the samples. The input is copied.
func NewECDF(xs []float64) *ECDF {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return &ECDF{sorted: sorted}
}

// Len returns the number of samples.
func (e *ECDF) Len() int { return len(e.sorted) }

// Eval returns P(X <= x), or NaN when the ECDF is empty.
func (e *ECDF) Eval(x float64) float64 {
	if len(e.sorted) == 0 {
		return nan
	}
	// Count of samples <= x via binary search.
	i := sort.SearchFloat64s(e.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(e.sorted))
}

// Quantile returns the q-quantile (q in [0,1]) of the samples.
func (e *ECDF) Quantile(q float64) float64 {
	return percentileSorted(e.sorted, q*100)
}

// Points returns (x, P(X<=x)) pairs suitable for plotting, one per distinct
// sample value.
func (e *ECDF) Points() (xs, ps []float64) {
	n := len(e.sorted)
	for i := 0; i < n; i++ {
		if i+1 < n && e.sorted[i+1] == e.sorted[i] {
			continue
		}
		xs = append(xs, e.sorted[i])
		ps = append(ps, float64(i+1)/float64(n))
	}
	return xs, ps
}

// TTestResult reports a two-sided Welch's t-test.
type TTestResult struct {
	T  float64 // test statistic
	DF float64 // Welch-Satterthwaite degrees of freedom
	P  float64 // two-sided p-value
}

// WelchTTest performs a two-sample, two-sided Welch's t-test (unequal
// variances), the test used for Figures 5d-f. Each sample needs n >= 2.
func WelchTTest(a, b []float64) (TTestResult, error) {
	if len(a) < 2 || len(b) < 2 {
		return TTestResult{}, ErrInsufficientData
	}
	ma, mb := Mean(a), Mean(b)
	va, vb := Variance(a), Variance(b)
	na, nb := float64(len(a)), float64(len(b))
	sa, sb := va/na, vb/nb
	se := math.Sqrt(sa + sb)
	if se == 0 {
		// Identical constant samples: no evidence of difference.
		if ma == mb {
			return TTestResult{T: 0, DF: na + nb - 2, P: 1}, nil
		}
		return TTestResult{T: math.Inf(sign(ma - mb)), DF: na + nb - 2, P: 0}, nil
	}
	t := (ma - mb) / se
	df := (sa + sb) * (sa + sb) / (sa*sa/(na-1) + sb*sb/(nb-1))
	p := 2 * studentTSF(math.Abs(t), df)
	if p > 1 {
		p = 1
	}
	return TTestResult{T: t, DF: df, P: p}, nil
}

func sign(x float64) int {
	if x < 0 {
		return -1
	}
	return 1
}

// Stars renders a p-value in the paper's notation: ns for p > 0.05,
// * for 0.01 < p <= 0.05, ** for 0.001 < p <= 0.01, *** for
// 0.0001 < p <= 0.001, and **** for p <= 0.0001.
func Stars(p float64) string {
	switch {
	case math.IsNaN(p) || p > 0.05:
		return "ns"
	case p > 0.01:
		return "*"
	case p > 0.001:
		return "**"
	case p > 0.0001:
		return "***"
	default:
		return "****"
	}
}

// studentTSF returns the survival function P(T > t) of Student's t with df
// degrees of freedom, for t >= 0.
func studentTSF(t, df float64) float64 {
	if math.IsInf(t, 1) {
		return 0
	}
	x := df / (df + t*t)
	return 0.5 * RegIncBeta(df/2, 0.5, x)
}

// TCritical returns the two-sided critical value t* with P(|T| > t*) =
// alpha for Student's t with df degrees of freedom, via bisection.
func TCritical(df, alpha float64) float64 {
	if df <= 0 || alpha <= 0 || alpha >= 1 {
		return nan
	}
	target := alpha / 2
	lo, hi := 0.0, 1e3
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if studentTSF(mid, df) > target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// RegIncBeta computes the regularized incomplete beta function I_x(a, b)
// using the continued-fraction expansion (Numerical Recipes style, with
// the modified Lentz algorithm).
func RegIncBeta(a, b, x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	lbeta, _ := math.Lgamma(a + b)
	la, _ := math.Lgamma(a)
	lb, _ := math.Lgamma(b)
	front := math.Exp(lbeta - la - lb + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

// betaCF evaluates the continued fraction for the incomplete beta function.
func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		tiny    = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < tiny {
		d = tiny
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// Histogram bins samples into nbins equal-width bins over [min, max].
type Histogram struct {
	Min, Max float64
	Counts   []int
	Total    int
}

// NewHistogram builds a histogram. Samples outside [min, max] are clamped
// into the first/last bin. nbins must be positive.
func NewHistogram(xs []float64, min, max float64, nbins int) *Histogram {
	h := &Histogram{Min: min, Max: max, Counts: make([]int, nbins)}
	width := (max - min) / float64(nbins)
	for _, x := range xs {
		if math.IsNaN(x) {
			continue
		}
		var bin int
		if width > 0 {
			bin = int((x - min) / width)
		}
		if bin < 0 {
			bin = 0
		}
		if bin >= nbins {
			bin = nbins - 1
		}
		h.Counts[bin]++
		h.Total++
	}
	return h
}

// Fraction returns the share of samples in bin i.
func (h *Histogram) Fraction(i int) float64 {
	if h.Total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.Total)
}

// BinCenter returns the center value of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	width := (h.Max - h.Min) / float64(len(h.Counts))
	return h.Min + (float64(i)+0.5)*width
}

// Pearson returns the Pearson correlation coefficient of two equal-length
// samples, or NaN if lengths differ, n < 2, or either side is constant.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return nan
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return nan
	}
	return sxy / math.Sqrt(sxx*syy)
}
