package sim

import (
	"testing"
	"time"
)

var start = time.Date(2022, 3, 1, 0, 0, 0, 0, time.UTC)

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine(start, 1)
	var order []int
	e.Schedule(start.Add(3*time.Second), func() { order = append(order, 3) })
	e.Schedule(start.Add(1*time.Second), func() { order = append(order, 1) })
	e.Schedule(start.Add(2*time.Second), func() { order = append(order, 2) })
	e.RunUntil(start.Add(time.Minute))
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if got := e.EventsExecuted(); got != 3 {
		t.Errorf("EventsExecuted = %d", got)
	}
}

func TestTieBreakBySchedulingOrder(t *testing.T) {
	e := NewEngine(start, 1)
	var order []string
	at := start.Add(time.Second)
	e.Schedule(at, func() { order = append(order, "a") })
	e.Schedule(at, func() { order = append(order, "b") })
	e.Schedule(at, func() { order = append(order, "c") })
	e.RunUntil(start.Add(time.Minute))
	if got := order[0] + order[1] + order[2]; got != "abc" {
		t.Fatalf("tie order = %q", got)
	}
}

func TestClockAdvances(t *testing.T) {
	e := NewEngine(start, 1)
	var seen time.Time
	e.After(42*time.Second, func() { seen = e.Now() })
	e.RunUntil(start.Add(time.Hour))
	if !seen.Equal(start.Add(42 * time.Second)) {
		t.Errorf("event saw clock %v", seen)
	}
	if !e.Now().Equal(start.Add(time.Hour)) {
		t.Errorf("clock ended at %v, want deadline", e.Now())
	}
}

func TestPastSchedulingClampsToNow(t *testing.T) {
	e := NewEngine(start, 1)
	e.RunUntil(start.Add(time.Minute))
	fired := false
	e.Schedule(start, func() { fired = true }) // in the past
	e.RunUntil(start.Add(2 * time.Minute))
	if !fired {
		t.Error("past-scheduled event never fired")
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine(start, 1)
	fired := false
	timer := e.After(time.Second, func() { fired = true })
	timer.Cancel()
	e.RunUntil(start.Add(time.Minute))
	if fired {
		t.Error("cancelled timer fired")
	}
	timer.Cancel() // double cancel is a no-op
}

func TestEventsScheduleEvents(t *testing.T) {
	e := NewEngine(start, 1)
	count := 0
	var chain func()
	chain = func() {
		count++
		if count < 5 {
			e.After(time.Second, chain)
		}
	}
	e.After(time.Second, chain)
	e.RunUntil(start.Add(time.Hour))
	if count != 5 {
		t.Errorf("chain ran %d times", count)
	}
}

func TestRunUntilStopsAtDeadline(t *testing.T) {
	e := NewEngine(start, 1)
	fired := false
	e.After(2*time.Hour, func() { fired = true })
	e.RunUntil(start.Add(time.Hour))
	if fired {
		t.Error("event beyond deadline fired")
	}
	if e.Pending() != 1 {
		t.Errorf("pending = %d", e.Pending())
	}
	// Resume past it.
	e.RunUntil(start.Add(3 * time.Hour))
	if !fired {
		t.Error("event did not fire after resume")
	}
}

func TestEveryFixed(t *testing.T) {
	e := NewEngine(start, 1)
	var times []time.Time
	stop := e.EveryFixed(start.Add(time.Minute), time.Minute, func(now time.Time) {
		times = append(times, now)
		if len(times) == 3 {
			// stop is captured below; cancel via closure variable.
		}
	})
	e.RunUntil(start.Add(5 * time.Minute))
	stop()
	e.RunUntil(start.Add(10 * time.Minute))
	if len(times) != 5 {
		t.Fatalf("ticked %d times, want 5", len(times))
	}
	for i, ts := range times {
		want := start.Add(time.Duration(i+1) * time.Minute)
		if !ts.Equal(want) {
			t.Errorf("tick %d at %v, want %v", i, ts, want)
		}
	}
}

func TestEveryStopFromWithinCallback(t *testing.T) {
	e := NewEngine(start, 1)
	count := 0
	var stop func()
	stop = e.EveryFixed(start, time.Second, func(time.Time) {
		count++
		if count == 3 {
			stop()
		}
	})
	e.RunUntil(start.Add(time.Hour))
	if count != 3 {
		t.Errorf("ran %d times after self-stop", count)
	}
}

func TestEveryJittered(t *testing.T) {
	e := NewEngine(start, 7)
	rng := e.RNG("jitter")
	var times []time.Time
	e.Every(start, func() time.Duration {
		return time.Second + time.Duration(rng.Intn(1000))*time.Millisecond
	}, func(now time.Time) {
		times = append(times, now)
	})
	e.RunUntil(start.Add(30 * time.Second))
	if len(times) < 20 || len(times) > 31 {
		t.Fatalf("jittered ticks = %d", len(times))
	}
	for i := 1; i < len(times); i++ {
		gap := times[i].Sub(times[i-1])
		if gap < time.Second || gap > 2*time.Second {
			t.Fatalf("gap %v out of jitter bounds", gap)
		}
	}
}

func TestRNGDeterminismAndIndependence(t *testing.T) {
	a1 := NewEngine(start, 5).RNG("tag-1")
	a2 := NewEngine(start, 5).RNG("tag-1")
	b := NewEngine(start, 5).RNG("tag-2")
	other := NewEngine(start, 6).RNG("tag-1")
	va1, va2, vb, vo := a1.Uint64(), a2.Uint64(), b.Uint64(), other.Uint64()
	if va1 != va2 {
		t.Error("same seed+name must produce identical streams")
	}
	if va1 == vb {
		t.Error("different names must produce different streams")
	}
	if va1 == vo {
		t.Error("different seeds must produce different streams")
	}
}

func TestStopAndResume(t *testing.T) {
	e := NewEngine(start, 1)
	count := 0
	e.EveryFixed(start.Add(time.Second), time.Second, func(time.Time) {
		count++
		if count == 2 {
			e.Stop()
		}
	})
	e.RunUntil(start.Add(time.Minute))
	if count != 2 {
		t.Fatalf("ran %d events before Stop", count)
	}
	e.RunUntil(start.Add(2 * time.Minute))
	if count < 10 {
		t.Errorf("resume ran only %d events", count)
	}
}

func TestScheduleNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewEngine(start, 1).Schedule(start, nil)
}

func TestEveryFixedBadPeriodPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewEngine(start, 1).EveryFixed(start, 0, func(time.Time) {})
}

func TestManyEventsDeterministic(t *testing.T) {
	run := func() []time.Duration {
		e := NewEngine(start, 99)
		rng := e.RNG("load")
		var fired []time.Duration
		for i := 0; i < 2000; i++ {
			d := time.Duration(rng.Intn(3_600_000)) * time.Millisecond
			e.Schedule(start.Add(d), func() { fired = append(fired, e.Now().Sub(start)) })
		}
		e.RunUntil(start.Add(time.Hour))
		return fired
	}
	a, b := run(), run()
	if len(a) != len(b) || len(a) != 2000 {
		t.Fatalf("fired %d/%d events", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("replay diverged")
		}
	}
	for i := 1; i < len(a); i++ {
		if a[i] < a[i-1] {
			t.Fatal("events fired out of order")
		}
	}
}

func BenchmarkScheduleAndRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := NewEngine(start, 1)
		rng := e.RNG("bench")
		for j := 0; j < 1000; j++ {
			e.Schedule(start.Add(time.Duration(rng.Intn(1000))*time.Second), func() {})
		}
		e.RunUntil(start.Add(2000 * time.Second))
	}
}

func BenchmarkEveryFixedTicks(b *testing.B) {
	e := NewEngine(start, 1)
	ticks := 0
	e.EveryFixed(start, time.Second, func(time.Time) { ticks++ })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.RunFor(time.Second)
	}
}
