package sim

import (
	"math/rand"
	"strconv"
)

// FNV-1a 64-bit parameters (mirrors hash/fnv, inlined so stream seeds can
// be derived incrementally on hot paths without a heap-allocated hasher).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// StreamSeed is a partially derived stream seed: the FNV-1a hash state
// after absorbing the engine seed and any prefix of a stream name. It is
// a value type, so hot paths can cache the state for a stable prefix
// (e.g. "encounter/<tagID>/") once and extend it with the per-tick suffix
// without formatting, hashing the prefix again, or allocating.
//
// The derivation contract is frozen: for any name, the seed produced by
// Engine.StreamSeed().String(name).Seed() is identical to the seed
// Engine.RNG(name) uses, which in turn matches the historical
// fmt.Fprintf(fnv.New64a(), "%d/%s", engineSeed, name) construction.
// Draw sequences keyed by (engine seed, name) are therefore stable
// across releases.
type StreamSeed uint64

// String absorbs s into the hash state and returns the extended state.
func (h StreamSeed) String(s string) StreamSeed {
	x := uint64(h)
	for i := 0; i < len(s); i++ {
		x = (x ^ uint64(s[i])) * fnvPrime64
	}
	return StreamSeed(x)
}

// Bytes absorbs b into the hash state and returns the extended state.
func (h StreamSeed) Bytes(b []byte) StreamSeed {
	x := uint64(h)
	for _, c := range b {
		x = (x ^ uint64(c)) * fnvPrime64
	}
	return StreamSeed(x)
}

// Seed finalizes the state into the int64 a rand source is seeded with.
func (h StreamSeed) Seed() int64 { return int64(h) }

// StreamSeed returns the hash state of the engine-seed prefix ("<seed>/"),
// the root every named stream derives from. Extending it with a stream
// name yields the same seed RNG uses for that name.
func (e *Engine) StreamSeed() StreamSeed {
	return e.streamBase
}

// streamBase computes the engine's root hash state without fmt: the
// decimal engine seed followed by '/'.
func streamBase(seed int64) StreamSeed {
	var buf [21]byte // len("-9223372036854775808/") == 21
	b := strconv.AppendInt(buf[:0], seed, 10)
	b = append(b, '/')
	return StreamSeed(fnvOffset64).Bytes(b)
}

// Stream is a reusable deterministic random stream: one rand.Rand whose
// source is reseeded in place, so a hot loop that needs a fresh stream
// per (entity, tick) pays no allocation after the first use. Draws after
// Reseed(s) are identical to rand.New(rand.NewSource(s)).
//
// A Stream is not safe for concurrent use; give each goroutine its own.
type Stream struct {
	src rand.Source
	rng *rand.Rand
}

// NewStream returns an unseeded stream; call Reseed before drawing.
func NewStream() *Stream {
	src := rand.NewSource(0)
	return &Stream{src: src, rng: rand.New(src)}
}

// Reseed re-initializes the stream to the given seed and returns the
// stream's rand.Rand, positioned exactly as a freshly constructed
// rand.New(rand.NewSource(seed)).
func (s *Stream) Reseed(seed int64) *rand.Rand {
	s.src.Seed(seed)
	return s.rng
}
