// Package sim provides the discrete-event simulation engine every
// experiment runs on: a virtual clock, an event heap, cancellable timers,
// periodic processes, and deterministic per-entity random number streams.
//
// Determinism is a hard requirement — the paper's experiments must be
// reproducible from a seed — so the engine is strictly single-goroutine:
// events fire in (time, scheduling-order) sequence, and every entity draws
// from its own named RNG stream so adding an entity never perturbs the
// draws of another.
package sim

import (
	"container/heap"
	"math/rand"
	"time"
)

// Engine is a single-threaded discrete-event scheduler.
type Engine struct {
	now        time.Time
	queue      eventQueue
	seq        uint64
	seed       int64
	streamBase StreamSeed // hash state of "<seed>/", root of every named stream
	stopped    bool
	events     uint64 // total events executed, for diagnostics
}

// NewEngine creates an engine with the virtual clock set to start.
func NewEngine(start time.Time, seed int64) *Engine {
	return &Engine{now: start, seed: seed, streamBase: streamBase(seed)}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Time { return e.now }

// Seed returns the root seed.
func (e *Engine) Seed() int64 { return e.seed }

// EventsExecuted returns the number of events run so far.
func (e *Engine) EventsExecuted() uint64 { return e.events }

// RNG derives a deterministic random stream for a named entity. Streams
// with the same (engine seed, name) are identical; distinct names are
// statistically independent. The seed derivation is the frozen FNV-1a
// construction documented on StreamSeed; hot paths that cannot afford
// this call's allocations derive the same sequences via StreamSeed and
// a reusable Stream.
func (e *Engine) RNG(name string) *rand.Rand {
	return rand.New(rand.NewSource(e.streamBase.String(name).Seed()))
}

// Timer is a handle to a scheduled event.
type Timer struct {
	at        time.Time
	seq       uint64
	fn        func()
	cancelled bool
	index     int // heap index, -1 once popped
}

// At returns the time the timer fires.
func (t *Timer) At() time.Time { return t.at }

// Cancel prevents the timer from firing. Cancelling an already-fired or
// already-cancelled timer is a no-op.
func (t *Timer) Cancel() { t.cancelled = true }

// Schedule runs fn at the given virtual time. Times not after the current
// instant run "now" (on the next Step), preserving causal order.
func (e *Engine) Schedule(at time.Time, fn func()) *Timer {
	if fn == nil {
		panic("sim: Schedule with nil function")
	}
	if at.Before(e.now) {
		at = e.now
	}
	t := &Timer{at: at, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, t)
	return t
}

// After runs fn after a virtual delay.
func (e *Engine) After(d time.Duration, fn func()) *Timer {
	return e.Schedule(e.now.Add(d), fn)
}

// Every schedules a periodic process: fn runs at start, then repeatedly
// after interval() — letting callers jitter each period. A nil interval
// function means a fixed period and is expressed via EveryFixed. The
// returned Stop function halts the process.
func (e *Engine) Every(start time.Time, interval func() time.Duration, fn func(now time.Time)) (stop func()) {
	if interval == nil {
		panic("sim: Every with nil interval function")
	}
	stopped := false
	var tick func()
	var timer *Timer
	tick = func() {
		if stopped {
			return
		}
		fn(e.now)
		if stopped { // fn may call stop
			return
		}
		d := interval()
		if d <= 0 {
			d = time.Nanosecond
		}
		timer = e.After(d, tick)
	}
	timer = e.Schedule(start, tick)
	return func() {
		stopped = true
		if timer != nil {
			timer.Cancel()
		}
	}
}

// EveryFixed is Every with a constant period.
func (e *Engine) EveryFixed(start time.Time, period time.Duration, fn func(now time.Time)) (stop func()) {
	if period <= 0 {
		panic("sim: EveryFixed with non-positive period")
	}
	return e.Every(start, func() time.Duration { return period }, fn)
}

// Step executes the next pending event, advancing the clock to it. It
// returns false when the queue is empty or the engine was stopped.
func (e *Engine) Step() bool {
	for {
		if e.stopped || e.queue.Len() == 0 {
			return false
		}
		t := heap.Pop(&e.queue).(*Timer)
		if t.cancelled {
			continue
		}
		e.now = t.at
		e.events++
		t.fn()
		return true
	}
}

// RunUntil executes events until the queue is exhausted or the next event
// is after the deadline. The clock ends at the deadline if it was reached,
// otherwise at the last event executed.
func (e *Engine) RunUntil(deadline time.Time) {
	for {
		if e.stopped || e.queue.Len() == 0 {
			break
		}
		next := e.queue[0].at
		if next.After(deadline) {
			break
		}
		e.Step()
	}
	if e.now.Before(deadline) {
		e.now = deadline
	}
	e.stopped = false
}

// RunFor runs the simulation for a virtual duration from the current time.
func (e *Engine) RunFor(d time.Duration) { e.RunUntil(e.now.Add(d)) }

// Stop halts the current Run; pending events survive and a later Run
// resumes them.
func (e *Engine) Stop() { e.stopped = true }

// Pending returns the number of queued (uncancelled at pop time) events.
func (e *Engine) Pending() int { return e.queue.Len() }

// eventQueue is a min-heap ordered by (time, sequence number): ties in
// time fire in scheduling order, which makes the engine deterministic.
type eventQueue []*Timer

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if !q[i].at.Equal(q[j].at) {
		return q[i].at.Before(q[j].at)
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	t := x.(*Timer)
	t.index = len(*q)
	*q = append(*q, t)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	t.index = -1
	*q = old[:n-1]
	return t
}
