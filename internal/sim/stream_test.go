package sim

import (
	"fmt"
	"hash/fnv"
	"testing"
	"time"
)

// legacySeed is the historical stream-seed construction RNG used before
// the allocation-free derivation: fmt over an fnv hasher. The StreamSeed
// contract freezes this mapping, so the tests reproduce it verbatim.
func legacySeed(engineSeed int64, name string) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d/%s", engineSeed, name)
	return int64(h.Sum64())
}

func TestStreamSeedMatchesLegacyDerivation(t *testing.T) {
	names := []string{
		"", "x", "country/AE",
		"encounter/airtag-1/2022-03-07T09:00:30Z",
		"encounter/smarttag-1/2022-03-07T09:00:30.123456789Z",
		"vantage/DE", "crawl/apple/FR", "unicode/日本語",
	}
	for _, seed := range []int64{0, 1, -1, 42, -9223372036854775808, 9223372036854775807} {
		e := NewEngine(time.Unix(0, 0), seed)
		for _, name := range names {
			want := legacySeed(seed, name)
			if got := e.StreamSeed().String(name).Seed(); got != want {
				t.Errorf("seed %d name %q: StreamSeed = %d, want legacy %d", seed, name, got, want)
			}
			if got := e.StreamSeed().Bytes([]byte(name)).Seed(); got != want {
				t.Errorf("seed %d name %q: StreamSeed.Bytes = %d, want legacy %d", seed, name, got, want)
			}
		}
	}
}

// TestStreamSeedIncremental: splitting a name across String/Bytes calls
// hashes the same as one shot — the property the encounter plane relies
// on to cache per-tag prefixes and append per-tick suffixes.
func TestStreamSeedIncremental(t *testing.T) {
	e := NewEngine(time.Unix(0, 0), 7)
	oneShot := e.StreamSeed().String("encounter/airtag-1/2022-03-07T09:00:30Z")
	split := e.StreamSeed().String("encounter/").String("airtag-1").String("/").
		Bytes([]byte("2022-03-07T09:00:30Z"))
	if oneShot != split {
		t.Fatalf("incremental hashing diverged: %d vs %d", oneShot, split)
	}
}

// TestStreamReseedMatchesRNG: a reseeded Stream draws the exact sequence
// of a freshly built engine stream — across reseeds, in any order.
func TestStreamReseedMatchesRNG(t *testing.T) {
	e := NewEngine(time.Unix(0, 0), 99)
	s := NewStream()
	names := []string{"a", "b", "a", "c/deeper", "a"}
	for _, name := range names {
		fresh := e.RNG(name)
		reused := s.Reseed(e.StreamSeed().String(name).Seed())
		for i := 0; i < 20; i++ {
			if f, r := fresh.Float64(), reused.Float64(); f != r {
				t.Fatalf("stream %q draw %d: %v vs %v", name, i, f, r)
			}
		}
		// Exercise the other draw kinds the simulation uses.
		fresh, reused = e.RNG(name), s.Reseed(e.StreamSeed().String(name).Seed())
		if f, r := fresh.NormFloat64(), reused.NormFloat64(); f != r {
			t.Fatalf("stream %q NormFloat64: %v vs %v", name, f, r)
		}
		if f, r := fresh.Int63n(1<<40), reused.Int63n(1<<40); f != r {
			t.Fatalf("stream %q Int63n: %v vs %v", name, f, r)
		}
	}
}

// TestStreamZeroAlloc: deriving a seed and reseeding must not allocate —
// the whole point of the API.
func TestStreamZeroAlloc(t *testing.T) {
	e := NewEngine(time.Unix(0, 0), 5)
	s := NewStream()
	prefix := e.StreamSeed().String("encounter/airtag-1/")
	suffix := []byte("2022-03-07T09:00:30Z")
	var sink float64
	allocs := testing.AllocsPerRun(100, func() {
		rng := s.Reseed(prefix.Bytes(suffix).Seed())
		sink += rng.Float64()
	})
	if allocs != 0 {
		t.Errorf("Reseed+draw allocates %.1f times per run, want 0", allocs)
	}
	_ = sink
}

// TestStreamIndependence: distinct names produce distinct sequences (the
// anti-collision property named streams exist for).
func TestStreamIndependence(t *testing.T) {
	e := NewEngine(time.Unix(0, 0), 1)
	a := e.RNG("stream-a")
	b := e.RNG("stream-b")
	same := 0
	for i := 0; i < 32; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("streams a and b agreed on %d/32 draws", same)
	}
}

func BenchmarkRNGNamed(b *testing.B) {
	e := NewEngine(time.Unix(0, 0), 1)
	suffix := []byte("2022-03-07T09:00:30Z")
	b.Run("legacy-alloc", func(b *testing.B) {
		b.ReportAllocs()
		var sink float64
		for i := 0; i < b.N; i++ {
			sink += e.RNG("encounter/airtag-1/" + string(suffix)).Float64()
		}
		_ = sink
	})
	b.Run("stream-reuse", func(b *testing.B) {
		b.ReportAllocs()
		s := NewStream()
		prefix := e.StreamSeed().String("encounter/airtag-1/")
		var sink float64
		for i := 0; i < b.N; i++ {
			sink += s.Reseed(prefix.Bytes(suffix).Seed()).Float64()
		}
		_ = sink
	})
}
