package colfmt

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

func samplePayload() []byte {
	var p []byte
	p = AppendU32(p, 7)
	p = AppendU64(p, 1<<40)
	p = AppendI64(p, -12345)
	p = AppendF64(p, 54.37)
	p = AppendStr(p, "tag-00")
	p = append(p, 0xAB)
	return p
}

func decodeSample(t *testing.T, p []byte) {
	t.Helper()
	d := NewDec(p)
	if got := d.U32(); got != 7 {
		t.Errorf("U32 = %d", got)
	}
	if got := d.U64(); got != 1<<40 {
		t.Errorf("U64 = %d", got)
	}
	if got := d.I64(); got != -12345 {
		t.Errorf("I64 = %d", got)
	}
	if got := d.F64(); got != 54.37 {
		t.Errorf("F64 = %v", got)
	}
	if got := d.Str(); got != "tag-00" {
		t.Errorf("Str = %q", got)
	}
	if got := d.U8(); got != 0xAB {
		t.Errorf("U8 = %#x", got)
	}
	if err := d.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
}

func TestSkipMatchesDecode(t *testing.T) {
	// Skipping the u32+u64+i64+f64 prefix and the string cell lands the
	// cursor exactly where decoding them would, and Close still sees an
	// exactly-consumed payload.
	p := samplePayload()
	d := NewDec(p)
	d.Skip(4 + 8 + 8 + 8)
	d.SkipStr()
	if got := d.U8(); got != 0xAB {
		t.Errorf("U8 after skips = %#x", got)
	}
	if err := d.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
}

func TestSkipBoundsChecked(t *testing.T) {
	d := NewDec(samplePayload())
	d.Skip(len(samplePayload()) + 1)
	if d.Err() == nil {
		t.Error("Skip past end did not poison the decoder")
	}
	d = NewDec(samplePayload())
	d.Skip(-1)
	if d.Err() == nil {
		t.Error("negative Skip did not poison the decoder")
	}
	// A string cell whose length runs past the payload must fail the
	// skip the same way Str fails the read.
	short := AppendU32(nil, 100)
	d = NewDec(append(short, "abc"...))
	d.SkipStr()
	if d.Err() == nil {
		t.Error("SkipStr past end did not poison the decoder")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, samplePayload()); err != nil {
		t.Fatal(err)
	}
	if int64(buf.Len()) != FrameSize(len(samplePayload())) {
		t.Errorf("frame size = %d, want %d", buf.Len(), FrameSize(len(samplePayload())))
	}
	p, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	decodeSample(t, p)
	if _, err := ReadFrame(&buf); err != io.EOF {
		t.Errorf("end of stream = %v, want io.EOF", err)
	}
}

func TestFrameCRCRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrameCRC(&buf, samplePayload()); err != nil {
		t.Fatal(err)
	}
	if int64(buf.Len()) != FrameCRCSize(len(samplePayload())) {
		t.Errorf("frame size = %d, want %d", buf.Len(), FrameCRCSize(len(samplePayload())))
	}
	raw := append([]byte(nil), buf.Bytes()...)
	p, err := ReadFrameCRC(&buf)
	if err != nil {
		t.Fatal(err)
	}
	decodeSample(t, p)

	// Every single-byte flip in the frame must fail the read: a flipped
	// length is implausible or truncates, anything else fails the CRC.
	for off := range raw {
		bad := append([]byte(nil), raw...)
		bad[off] ^= 0x10
		if _, err := ReadFrameCRC(bytes.NewReader(bad)); err == nil {
			t.Fatalf("bit flip at byte %d went undetected", off)
		}
	}
	// A torn tail (any strict prefix) must fail too, except length 0
	// which is a clean EOF.
	for n := 1; n < len(raw); n++ {
		if _, err := ReadFrameCRC(bytes.NewReader(raw[:n])); err == nil || err == io.EOF {
			t.Fatalf("torn frame of %d/%d bytes read as %v", n, len(raw), err)
		}
	}
}

func TestReadFrameCRCAt(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString("HDRMAGIC")
	if err := WriteFrameCRC(&buf, []byte("first")); err != nil {
		t.Fatal(err)
	}
	second := FrameCRCSize(len("first")) + int64(MagicLen)
	if err := WriteFrameCRC(&buf, samplePayload()); err != nil {
		t.Fatal(err)
	}
	r := bytes.NewReader(buf.Bytes())
	p, err := ReadFrameCRCAt(r, second)
	if err != nil {
		t.Fatal(err)
	}
	decodeSample(t, p)
	if p, err := ReadFrameCRCAt(r, int64(MagicLen)); err != nil || string(p) != "first" {
		t.Errorf("first frame = %q, %v", p, err)
	}
	// Corrupt the second frame's payload: only that frame fails.
	raw := append([]byte(nil), buf.Bytes()...)
	raw[second+10] ^= 0xFF
	r = bytes.NewReader(raw)
	if _, err := ReadFrameCRCAt(r, second); err == nil {
		t.Error("corrupt frame read cleanly")
	}
	if _, err := ReadFrameCRCAt(r, int64(MagicLen)); err != nil {
		t.Errorf("sibling frame infected by corruption: %v", err)
	}
	// Past the end: an error, not garbage.
	if _, err := ReadFrameCRCAt(r, int64(len(raw))); err == nil {
		t.Error("read past the file end succeeded")
	}
}

func TestIndexMarkSentinel(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(AppendU32(nil, IndexMark))
	if _, err := ReadFrame(bytes.NewReader(buf.Bytes())); !errors.Is(err, ErrIndexMark) {
		t.Errorf("ReadFrame at sentinel = %v", err)
	}
	if _, err := ReadFrameCRC(bytes.NewReader(buf.Bytes())); !errors.Is(err, ErrIndexMark) {
		t.Errorf("ReadFrameCRC at sentinel = %v", err)
	}
	pad := append(buf.Bytes(), 0, 0, 0, 0)
	if _, err := ReadFrameCRCAt(bytes.NewReader(pad), 0); !errors.Is(err, ErrIndexMark) {
		t.Errorf("ReadFrameCRCAt at sentinel = %v", err)
	}
}

func TestImplausibleLengthRejected(t *testing.T) {
	huge := AppendU32(nil, MaxFrameBytes+1)
	huge = append(huge, make([]byte, 16)...)
	if _, err := ReadFrame(bytes.NewReader(huge)); err == nil || !strings.Contains(err.Error(), "implausible") {
		t.Errorf("implausible length = %v", err)
	}
	if _, err := ReadFrameCRCAt(bytes.NewReader(huge), 0); err == nil || !strings.Contains(err.Error(), "implausible") {
		t.Errorf("implausible length (pread) = %v", err)
	}
	if err := WriteFrame(io.Discard, make([]byte, MaxFrameBytes+1)); err == nil {
		t.Error("WriteFrame accepted an over-cap payload")
	}
	if err := WriteFrameCRC(io.Discard, make([]byte, MaxFrameBytes+1)); err == nil {
		t.Error("WriteFrameCRC accepted an over-cap payload")
	}
}

func TestTrailerRoundTrip(t *testing.T) {
	const magic = "TESTTRL\n"
	var buf bytes.Buffer
	buf.WriteString("HDRMAGIC")
	buf.WriteString("....data....")
	idx := int64(buf.Len())
	buf.WriteString("..index..")
	if err := WriteTrailer(&buf, idx, magic); err != nil {
		t.Fatal(err)
	}
	r := bytes.NewReader(buf.Bytes())
	got, err := ReadTrailer(r, int64(buf.Len()), magic)
	if err != nil {
		t.Fatal(err)
	}
	if got != idx {
		t.Errorf("index offset = %d, want %d", got, idx)
	}
	if _, err := ReadTrailer(r, int64(buf.Len()), "WRONGMG\n"); err == nil {
		t.Error("wrong trailer magic accepted")
	}
	if _, err := ReadTrailer(r, int64(MagicLen+TrailerLen)-1, magic); err == nil {
		t.Error("too-short file accepted")
	}
	if err := WriteTrailer(io.Discard, 0, "short"); err == nil {
		t.Error("short trailer magic accepted")
	}
	// An index offset outside the data region is implausible.
	var bad bytes.Buffer
	bad.WriteString("HDRMAGIC")
	WriteTrailer(&bad, int64(bad.Len()+TrailerLen+5), magic)
	if _, err := ReadTrailer(bytes.NewReader(bad.Bytes()), int64(bad.Len()), magic); err == nil {
		t.Error("out-of-range index offset accepted")
	}
}

func TestDecUnderrunAndTrailing(t *testing.T) {
	d := NewDec(AppendU32(nil, 9))
	d.U64() // 4 bytes short
	if d.Err() == nil {
		t.Error("underrun not detected")
	}
	if d.U32() != 0 || d.Str() != "" || d.U8() != 0 {
		t.Error("poisoned decoder must return zero values")
	}
	if err := d.Close(); err == nil {
		t.Error("Close after underrun = nil")
	}

	d = NewDec(AppendU32(nil, 9))
	_ = d.U8()
	if err := d.Close(); err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Errorf("trailing bytes = %v", err)
	}

	// A string cell whose length outruns the payload fails cleanly.
	d = NewDec(AppendU32(nil, 1000))
	if d.Str(); d.Err() == nil {
		t.Error("oversized string cell not detected")
	}
}

func TestStrSize(t *testing.T) {
	for _, s := range []string{"", "x", "tag-000123"} {
		if got := len(AppendStr(nil, s)); got != StrSize(s) {
			t.Errorf("StrSize(%q) = %d, encoded %d", s, StrSize(s), got)
		}
	}
}
