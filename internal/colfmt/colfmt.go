// Package colfmt is the shared length-prefixed columnar framing every
// on-disk format in this repo speaks: the pipeline's report and
// ground-truth logs (TAGRPT1/TAGGTC1), and the storage engine's WAL and
// immutable segments (TAGWAL1/TAGSEG1). One codec, four formats — the
// framing mechanics (little-endian scalar appends, bounds-checked
// decoding, length-prefixed frames with an optional CRC32-C, the index
// sentinel, and the fixed-size seekable trailer) live here so a new
// format is a payload layout, not a re-derivation of the file plumbing.
//
// Two frame flavors share the wire shape:
//
//	frame    := u32 payloadBytes | payload                -- WriteFrame
//	crcFrame := u32 payloadBytes | u32 crc32c | payload   -- WriteFrameCRC
//
// The CRC flavor is what the storage engine uses: a WAL tail torn
// mid-frame or a bit-flipped segment frame fails the checksum instead of
// decoding into garbage. The pipeline logs predate the CRC and keep the
// bare flavor for byte-compatibility.
//
// Seekable formats end with an index block and a trailer:
//
//	indexBlock := u32 0xFFFFFFFF | frame-or-crcFrame
//	trailer    := u64 indexOffset | magic (8 bytes)
//
// 0xFFFFFFFF can never be a data frame's length (it exceeds
// MaxFrameBytes), so streaming readers stop at the sentinel while
// seekable readers jump straight to the index via the trailer.
package colfmt

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// MaxFrameBytes bounds a frame any reader will accept, so a corrupt
// length prefix cannot drive an allocation by gigabytes.
const MaxFrameBytes = 64 << 20

// IndexMark is the sentinel a seekable format writes in place of a data
// frame's length prefix to mark the index block. It exceeds
// MaxFrameBytes, so it is unambiguous.
const IndexMark = 0xFFFFFFFF

// MagicLen is the fixed length of every file and trailer magic.
const MagicLen = 8

// TrailerLen is the fixed size of the seekable trailer: a u64 index
// offset plus the trailer magic.
const TrailerLen = 8 + MagicLen

// castagnoli is the CRC32-C table (the polynomial with hardware support
// on both amd64 and arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checksum returns the CRC32-C of the payload.
func Checksum(payload []byte) uint32 { return crc32.Checksum(payload, castagnoli) }

// AppendU32 appends v little-endian.
func AppendU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }

// AppendU64 appends v little-endian.
func AppendU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }

// AppendI64 appends v as its two's-complement u64.
func AppendI64(b []byte, v int64) []byte { return AppendU64(b, uint64(v)) }

// AppendF64 appends v as its IEEE-754 bit pattern.
func AppendF64(b []byte, v float64) []byte { return AppendU64(b, math.Float64bits(v)) }

// AppendStr appends a string column cell: u32 length, then the bytes.
func AppendStr(b []byte, s string) []byte { return append(AppendU32(b, uint32(len(s))), s...) }

// StrSize returns the encoded size of a string cell.
func StrSize(s string) int { return 4 + len(s) }

// WriteFrame writes a bare length-prefixed frame. Payloads past
// MaxFrameBytes are refused — the package's own readers would reject
// them, and a u32 prefix could silently truncate past 4 GiB.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrameBytes {
		return fmt.Errorf("colfmt: %d-byte frame exceeds the %d-byte cap", len(payload), MaxFrameBytes)
	}
	var prefix [4]byte
	binary.LittleEndian.PutUint32(prefix[:], uint32(len(payload)))
	if _, err := w.Write(prefix[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// WriteFrameCRC writes a checksummed frame: length, CRC32-C, payload.
func WriteFrameCRC(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrameBytes {
		return fmt.Errorf("colfmt: %d-byte frame exceeds the %d-byte cap", len(payload), MaxFrameBytes)
	}
	var prefix [8]byte
	binary.LittleEndian.PutUint32(prefix[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(prefix[4:], Checksum(payload))
	if _, err := w.Write(prefix[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// FrameSize returns the on-disk size of a bare frame with the given
// payload length.
func FrameSize(payloadLen int) int64 { return int64(4 + payloadLen) }

// FrameCRCSize returns the on-disk size of a checksummed frame.
func FrameCRCSize(payloadLen int) int64 { return int64(8 + payloadLen) }

// ErrIndexMark is returned by the frame readers when the next length
// prefix is the index sentinel — the clean end of a seekable format's
// data section.
var ErrIndexMark = fmt.Errorf("colfmt: index sentinel")

// ReadFrame reads one bare frame's payload. It returns io.EOF exactly
// when the stream ends cleanly before the length prefix, ErrIndexMark at
// the index sentinel, and a descriptive error for anything implausible
// or truncated.
func ReadFrame(r io.Reader) ([]byte, error) {
	payloadLen, err := readPrefix(r)
	if err != nil {
		return nil, err
	}
	payload := make([]byte, payloadLen)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("colfmt: truncated frame: %w", err)
	}
	return payload, nil
}

// ReadFrameCRC reads one checksummed frame's payload, verifying the
// CRC32-C. Torn and bit-flipped frames return errors instead of bytes.
func ReadFrameCRC(r io.Reader) ([]byte, error) {
	payloadLen, err := readPrefix(r)
	if err != nil {
		return nil, err
	}
	var crcBuf [4]byte
	if _, err := io.ReadFull(r, crcBuf[:]); err != nil {
		return nil, fmt.Errorf("colfmt: truncated frame checksum: %w", err)
	}
	payload := make([]byte, payloadLen)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("colfmt: truncated frame: %w", err)
	}
	if got, want := Checksum(payload), binary.LittleEndian.Uint32(crcBuf[:]); got != want {
		return nil, fmt.Errorf("colfmt: frame checksum mismatch (got %08x, want %08x)", got, want)
	}
	return payload, nil
}

// ReadFrameCRCAt reads the checksummed frame at offset off through a
// positionless reader — the storage engine's pread path, where many
// goroutines cursor one immutable segment concurrently.
func ReadFrameCRCAt(r io.ReaderAt, off int64) ([]byte, error) {
	var head [8]byte
	if _, err := r.ReadAt(head[:], off); err != nil {
		return nil, fmt.Errorf("colfmt: frame header at %d: %w", off, err)
	}
	payloadLen := binary.LittleEndian.Uint32(head[:4])
	if payloadLen == IndexMark {
		return nil, ErrIndexMark
	}
	if payloadLen > MaxFrameBytes {
		return nil, fmt.Errorf("colfmt: implausible frame length %d at offset %d", payloadLen, off)
	}
	payload := make([]byte, payloadLen)
	if _, err := r.ReadAt(payload, off+8); err != nil {
		return nil, fmt.Errorf("colfmt: truncated frame at %d: %w", off, err)
	}
	if got, want := Checksum(payload), binary.LittleEndian.Uint32(head[4:]); got != want {
		return nil, fmt.Errorf("colfmt: frame checksum mismatch at offset %d (got %08x, want %08x)", off, got, want)
	}
	return payload, nil
}

// readPrefix reads and validates a frame length prefix.
func readPrefix(r io.Reader) (int, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		if err == io.EOF {
			return 0, io.EOF
		}
		return 0, fmt.Errorf("colfmt: frame length: %w", err)
	}
	payloadLen := binary.LittleEndian.Uint32(lenBuf[:])
	if payloadLen == IndexMark {
		return 0, ErrIndexMark
	}
	if payloadLen > MaxFrameBytes {
		return 0, fmt.Errorf("colfmt: implausible frame length %d", payloadLen)
	}
	return int(payloadLen), nil
}

// WriteTrailer writes the fixed-size seekable trailer.
func WriteTrailer(w io.Writer, indexOffset int64, magic string) error {
	if len(magic) != MagicLen {
		return fmt.Errorf("colfmt: trailer magic must be %d bytes, got %q", MagicLen, magic)
	}
	var buf [TrailerLen]byte
	binary.LittleEndian.PutUint64(buf[:8], uint64(indexOffset))
	copy(buf[8:], magic)
	_, err := w.Write(buf[:])
	return err
}

// ReadTrailer reads the trailer of a size-byte file through r and
// returns the index offset, validating the trailer magic and that the
// offset lands inside the file past its header magic.
func ReadTrailer(r io.ReaderAt, size int64, magic string) (indexOffset int64, err error) {
	if size < int64(MagicLen+TrailerLen) {
		return 0, fmt.Errorf("colfmt: %d-byte file too short for a trailer", size)
	}
	var buf [TrailerLen]byte
	if _, err := r.ReadAt(buf[:], size-TrailerLen); err != nil {
		return 0, fmt.Errorf("colfmt: trailer: %w", err)
	}
	if string(buf[8:]) != magic {
		return 0, fmt.Errorf("colfmt: bad trailer magic %q (truncated file?)", buf[8:])
	}
	indexOffset = int64(binary.LittleEndian.Uint64(buf[:8]))
	if indexOffset < int64(MagicLen) || indexOffset >= size-TrailerLen {
		return 0, fmt.Errorf("colfmt: implausible index offset %d", indexOffset)
	}
	return indexOffset, nil
}

// Dec is a bounds-checked decoder over one frame payload. Every scalar
// read validates the remaining length; the first failure sticks, so a
// decode loop can read unconditionally and check Err once (or per cell
// when a short read must abort a loop early).
type Dec struct {
	buf []byte
	off int
	err error
}

// NewDec wraps a payload.
func NewDec(buf []byte) *Dec { return &Dec{buf: buf} }

// Err returns the first decode failure, or nil.
func (d *Dec) Err() error { return d.err }

// Off returns the current decode offset (for error context).
func (d *Dec) Off() int { return d.off }

// fail records the first error and poisons subsequent reads.
func (d *Dec) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("colfmt: frame underrun at byte %d", d.off)
	}
}

// U32 reads a little-endian u32 (0 after a failure).
func (d *Dec) U32() uint32 {
	if d.err != nil || d.off+4 > len(d.buf) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v
}

// U64 reads a little-endian u64.
func (d *Dec) U64() uint64 {
	if d.err != nil || d.off+8 > len(d.buf) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

// I64 reads a two's-complement i64.
func (d *Dec) I64() int64 { return int64(d.U64()) }

// F64 reads an IEEE-754 float64.
func (d *Dec) F64() float64 { return math.Float64frombits(d.U64()) }

// U8 reads one byte.
func (d *Dec) U8() uint8 {
	if d.err != nil || d.off >= len(d.buf) {
		d.fail()
		return 0
	}
	v := d.buf[d.off]
	d.off++
	return v
}

// Skip advances past n bytes without decoding them — the column-skip
// primitive for readers that want a row range out of a frame.
func (d *Dec) Skip(n int) {
	if d.err != nil || n < 0 || d.off+n > len(d.buf) {
		d.fail()
		return
	}
	d.off += n
}

// SkipStr advances past one string cell without allocating it.
func (d *Dec) SkipStr() {
	n := d.U32()
	d.Skip(int(n))
}

// Str reads a string cell (length-prefixed bytes).
func (d *Dec) Str() string {
	n := d.U32()
	if d.err != nil || d.off+int(n) > len(d.buf) {
		d.fail()
		return ""
	}
	s := string(d.buf[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

// Close verifies the payload was consumed exactly: a trailing-bytes
// error means the writer and reader disagree about the layout.
func (d *Dec) Close() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.buf) {
		return fmt.Errorf("colfmt: %d trailing bytes in frame", len(d.buf)-d.off)
	}
	return nil
}
