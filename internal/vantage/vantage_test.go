package vantage

import (
	"math"
	"testing"
	"time"

	"tagsim/internal/geo"
	"tagsim/internal/mobility"
	"tagsim/internal/sim"
)

var (
	t0     = time.Date(2022, 3, 7, 9, 0, 0, 0, time.UTC)
	origin = geo.LatLon{Lat: 24.4539, Lon: 54.3773}
)

func walkModel() mobility.Model {
	dest := geo.Destination(origin, 90, 2000)
	return mobility.NewItinerary(t0, mobility.Move{Along: geo.Path{origin, dest}, SpeedKmh: 4})
}

func TestSamplingAndFlush(t *testing.T) {
	e := sim.NewEngine(t0, 1)
	cfg := DefaultConfig("vp1")
	cfg.OnlineProb = 1
	vp := New(cfg, walkModel(), e.RNG("vp"))
	vp.Attach(e, t0)
	e.RunFor(16 * time.Minute)

	recs := vp.Records()
	if len(recs) == 0 {
		t.Fatal("no ground truth uploaded")
	}
	// Walking at 4 km/h, samples every 5 s move ~5.5 m: nearly every
	// sample should be recorded. 15 min => ~180 samples.
	if len(recs) < 120 {
		t.Errorf("only %d fixes recorded", len(recs))
	}
	for i, r := range recs {
		if r.VantageID != "vp1" {
			t.Fatal("vantage ID missing")
		}
		if r.UploadedAt.Before(r.T) {
			t.Fatal("uploaded before sampled")
		}
		if r.UploadedAt.Sub(r.T) > 6*time.Minute {
			t.Errorf("fix %d waited %v to upload with perfect connectivity", i, r.UploadedAt.Sub(r.T))
		}
		if i > 0 && r.T.Before(recs[i-1].T) {
			t.Fatal("records out of order")
		}
	}
}

func TestGroundTruthTracksTruth(t *testing.T) {
	e := sim.NewEngine(t0, 2)
	cfg := DefaultConfig("vp1")
	cfg.OnlineProb = 1
	cfg.GPSSigmaM = 4
	m := walkModel()
	vp := New(cfg, m, e.RNG("vp"))
	vp.Attach(e, t0)
	e.RunFor(10 * time.Minute)
	var worst float64
	for _, r := range vp.Records() {
		d := geo.Distance(r.Pos, m.Pos(r.T))
		if d > worst {
			worst = d
		}
	}
	// 4 m sigma: errors beyond ~20 m would be a bug, not noise.
	if worst > 25 {
		t.Errorf("worst GPS error %.1f m", worst)
	}
}

func TestStationarySuppression(t *testing.T) {
	e := sim.NewEngine(t0, 3)
	cfg := DefaultConfig("vp1")
	cfg.OnlineProb = 1
	cfg.GPSSigmaM = 0 // no noise: position never changes
	vp := New(cfg, mobility.Stationary(origin), e.RNG("vp"))
	vp.Attach(e, t0)
	e.RunFor(30 * time.Minute)
	// Only the first fix is a variation; the rest are suppressed.
	if got := len(vp.Records()); got != 1 {
		t.Errorf("stationary zero-noise vantage recorded %d fixes, want 1", got)
	}
}

func TestSpeedEstimates(t *testing.T) {
	e := sim.NewEngine(t0, 4)
	cfg := DefaultConfig("vp1")
	cfg.OnlineProb = 1
	cfg.GPSSigmaM = 0
	dest := geo.Destination(origin, 90, 5000)
	m := mobility.NewItinerary(t0, mobility.Move{Along: geo.Path{origin, dest}, SpeedKmh: 10})
	vp := New(cfg, m, e.RNG("vp"))
	vp.Attach(e, t0)
	e.RunFor(10 * time.Minute)
	recs := vp.Records()
	if len(recs) < 50 {
		t.Fatalf("too few records: %d", len(recs))
	}
	// Skip the first fix (no predecessor => speed 0).
	var sum float64
	for _, r := range recs[1:] {
		sum += r.SpeedKmh
	}
	mean := sum / float64(len(recs)-1)
	if math.Abs(mean-10) > 1 {
		t.Errorf("mean speed estimate %.2f km/h, want ~10", mean)
	}
}

func TestOfflineBuffering(t *testing.T) {
	e := sim.NewEngine(t0, 5)
	cfg := DefaultConfig("vp1")
	cfg.OnlineProb = 0 // never online
	vp := New(cfg, walkModel(), e.RNG("vp"))
	vp.Attach(e, t0)
	e.RunFor(20 * time.Minute)
	if len(vp.Records()) != 0 {
		t.Error("records uploaded while offline")
	}
	if vp.PendingBuffered() < 100 {
		t.Errorf("buffer holds %d fixes, expected the whole walk", vp.PendingBuffered())
	}
	_, flushes, offline := vp.Stats()
	if flushes == 0 || offline != flushes {
		t.Errorf("flushes=%d offline=%d", flushes, offline)
	}
}

func TestOfflineThenRecover(t *testing.T) {
	e := sim.NewEngine(t0, 6)
	cfg := DefaultConfig("vp1")
	cfg.OnlineProb = 0
	vp := New(cfg, walkModel(), e.RNG("vp"))
	vp.Attach(e, t0)
	e.RunFor(12 * time.Minute)
	buffered := vp.PendingBuffered()
	if buffered == 0 {
		t.Fatal("nothing buffered")
	}
	// Connectivity returns: the next flush delivers everything buffered
	// so far; only samples taken after that flush may remain pending.
	vp.cfg.OnlineProb = 1
	e.RunFor(6 * time.Minute)
	recs := vp.Records()
	if len(recs) < buffered {
		t.Errorf("only %d of %d buffered fixes delivered", len(recs), buffered)
	}
	if vp.PendingBuffered() >= buffered {
		t.Errorf("buffer still holds %d fixes after recovery", vp.PendingBuffered())
	}
	// All retained fixes keep their original sample times.
	for _, r := range recs {
		if r.T.After(r.UploadedAt) {
			t.Fatal("sample time after upload time")
		}
	}
}

func TestStopSampling(t *testing.T) {
	e := sim.NewEngine(t0, 7)
	cfg := DefaultConfig("vp1")
	cfg.OnlineProb = 1
	vp := New(cfg, walkModel(), e.RNG("vp"))
	stop := vp.Attach(e, t0)
	e.RunFor(5 * time.Minute)
	stop()
	e.RunFor(time.Minute) // let any scheduled flush lapse
	n := len(vp.Records()) + vp.PendingBuffered()
	e.RunFor(10 * time.Minute)
	if got := len(vp.Records()) + vp.PendingBuffered(); got != n {
		t.Error("vantage kept sampling after stop")
	}
}

func TestConfigDefaults(t *testing.T) {
	vp := New(Config{ID: "x"}, mobility.Stationary(origin), sim.NewEngine(t0, 1).RNG("r"))
	if vp.cfg.SampleEvery != 5*time.Second || vp.cfg.FlushEvery != 5*time.Minute {
		t.Errorf("defaults not applied: %+v", vp.cfg)
	}
}

func BenchmarkSample(b *testing.B) {
	e := sim.NewEngine(t0, 1)
	vp := New(DefaultConfig("vp"), walkModel(), e.RNG("vp"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vp.Sample(t0.Add(time.Duration(i) * 5 * time.Second))
	}
}
