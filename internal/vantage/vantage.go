// Package vantage models the paper's vantage point: a Xiaomi Redmi Go
// (neither Apple nor Samsung, so it reports no one's tags) carrying both
// tags on a 3D-printed cover, running a custom app that samples GPS every
// five seconds, records only position changes, buffers for five minutes,
// and POSTs the buffer to a collection server whenever a data connection
// exists.
package vantage

import (
	"math"
	"math/rand"
	"sync/atomic"
	"time"

	"tagsim/internal/geo"
	"tagsim/internal/mobility"
	"tagsim/internal/sim"
	"tagsim/internal/trace"
)

// Config parameterizes the vantage-point app.
type Config struct {
	ID string
	// SampleEvery is the GPS sampling period (paper: 5 s).
	SampleEvery time.Duration
	// FlushEvery is the buffer upload period (paper: 5 min).
	FlushEvery time.Duration
	// GPSSigmaM is the 1-sigma GPS error of the phone.
	GPSSigmaM float64
	// MinMoveM suppresses redundant samples: a fix is recorded only when
	// it moved at least this far from the last recorded fix.
	MinMoveM float64
	// OnlineProb is the probability a flush finds connectivity; failed
	// flushes keep buffering (the paper's offline retention).
	OnlineProb float64
}

// DefaultConfig returns the paper's app settings.
func DefaultConfig(id string) Config {
	return Config{
		ID:          id,
		SampleEvery: 5 * time.Second,
		FlushEvery:  5 * time.Minute,
		GPSSigmaM:   4,
		MinMoveM:    3,
		OnlineProb:  0.9,
	}
}

// VantagePoint is one deployed ground-truth collector.
type VantagePoint struct {
	cfg      Config
	mobility mobility.Model
	rng      *rand.Rand

	buffer  []trace.GroundTruth
	records []trace.GroundTruth
	lastFix geo.LatLon
	lastAt  time.Time
	hasFix  bool
	// Upload diagnostics are atomics so Stats can be read (by a live
	// serve loop or metrics logger) while the engine drives Flush.
	uploaded atomic.Int64
	flushes  atomic.Int64
	offline  atomic.Int64

	// Tap, when set, observes each successfully uploaded fix batch (in
	// fix-time order) — the streaming campaign pipeline's hook into the
	// ground-truth stream. The slice is reused between flushes; taps
	// must copy what they keep.
	Tap func([]trace.GroundTruth)
	// Discard stops the vantage point from retaining uploaded fixes in
	// memory (Records returns nil). Set it when a Tap consumer owns the
	// ground truth.
	Discard bool
}

// New creates a vantage point following the given mobility model.
func New(cfg Config, m mobility.Model, rng *rand.Rand) *VantagePoint {
	if cfg.SampleEvery <= 0 {
		cfg.SampleEvery = 5 * time.Second
	}
	if cfg.FlushEvery <= 0 {
		cfg.FlushEvery = 5 * time.Minute
	}
	return &VantagePoint{cfg: cfg, mobility: m, rng: rng}
}

// Attach schedules sampling and flushing on the engine from start until
// stopped via the returned function.
func (v *VantagePoint) Attach(e *sim.Engine, start time.Time) (stop func()) {
	stopSample := e.EveryFixed(start, v.cfg.SampleEvery, v.Sample)
	stopFlush := e.EveryFixed(start.Add(v.cfg.FlushEvery), v.cfg.FlushEvery, v.Flush)
	return func() {
		stopSample()
		stopFlush()
	}
}

// Pos returns the true position at time t (the tags ride along).
func (v *VantagePoint) Pos(t time.Time) geo.LatLon { return v.mobility.Pos(t) }

// Sample takes one GPS fix at the given virtual time.
func (v *VantagePoint) Sample(now time.Time) {
	truth := v.mobility.Pos(now)
	fix := truth
	if v.cfg.GPSSigmaM > 0 {
		dx := v.rng.NormFloat64() * v.cfg.GPSSigmaM
		dy := v.rng.NormFloat64() * v.cfg.GPSSigmaM
		fix = geo.Destination(truth, math.Atan2(dx, dy)*180/math.Pi, math.Hypot(dx, dy))
	}
	if v.hasFix && geo.Distance(fix, v.lastFix) < v.cfg.MinMoveM {
		return // only variations are recorded
	}
	speed := 0.0
	if v.hasFix {
		dt := now.Sub(v.lastAt).Seconds()
		if dt > 0 {
			speed = geo.MsToKmh(geo.Distance(fix, v.lastFix) / dt)
		}
	}
	v.buffer = append(v.buffer, trace.GroundTruth{
		T:         now,
		Pos:       fix,
		VantageID: v.cfg.ID,
		SpeedKmh:  speed,
	})
	v.lastFix, v.lastAt, v.hasFix = fix, now, true
}

// Flush attempts to upload the buffer at the given virtual time.
func (v *VantagePoint) Flush(now time.Time) {
	v.flushes.Add(1)
	if len(v.buffer) == 0 {
		return
	}
	if v.cfg.OnlineProb < 1 && v.rng.Float64() >= v.cfg.OnlineProb {
		v.offline.Add(1)
		return // no connection: keep buffering
	}
	for i := range v.buffer {
		v.buffer[i].UploadedAt = now
	}
	if v.Tap != nil {
		v.Tap(v.buffer)
	}
	if !v.Discard {
		v.records = append(v.records, v.buffer...)
	}
	v.uploaded.Add(int64(len(v.buffer)))
	v.buffer = v.buffer[:0]
}

// Records returns the ground truth received by the collection server so
// far (time-sorted by construction), or nil when Discard routed it to
// the Tap instead.
func (v *VantagePoint) Records() []trace.GroundTruth { return v.records }

// PendingBuffered returns how many fixes are still waiting for
// connectivity.
func (v *VantagePoint) PendingBuffered() int { return len(v.buffer) }

// Stats returns upload diagnostics: total fixes uploaded, flush attempts,
// and flushes skipped offline. Safe to call concurrently with a running
// engine — each load is atomic.
func (v *VantagePoint) Stats() (uploaded, flushes, offline int) {
	return int(v.uploaded.Load()), int(v.flushes.Load()), int(v.offline.Load())
}
