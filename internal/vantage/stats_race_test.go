package vantage

import (
	"sync"
	"testing"
	"time"

	"tagsim/internal/sim"
)

// TestStatsConcurrentWithEngine is the raced regression for the
// satellite fix: VantagePoint.Stats must be safe to read while the
// engine drives Sample/Flush (a -live serve loop or a metrics logger
// polling upload diagnostics mid-run). Before the counters became
// atomics this was a data race the detector flagged. Run under -race
// in CI.
func TestStatsConcurrentWithEngine(t *testing.T) {
	e := sim.NewEngine(t0, 1)
	cfg := DefaultConfig("vp-race")
	cfg.OnlineProb = 0.5 // exercise the offline counter too
	vp := New(cfg, walkModel(), e.RNG("vp-race"))
	vp.Attach(e, t0)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		var lastUp, lastFl, lastOff int
		for {
			select {
			case <-stop:
				return
			default:
			}
			up, fl, off := vp.Stats()
			if up < lastUp || fl < lastFl || off < lastOff {
				t.Errorf("counter moved backward: uploaded %d->%d flushes %d->%d offline %d->%d",
					lastUp, up, lastFl, fl, lastOff, off)
				return
			}
			lastUp, lastFl, lastOff = up, fl, off
		}
	}()
	e.RunFor(2 * time.Hour)
	close(stop)
	wg.Wait()

	up, fl, _ := vp.Stats()
	if up == 0 || fl == 0 {
		t.Fatalf("no activity recorded: uploaded=%d flushes=%d", up, fl)
	}
}
