// Package store is the serving-side report store behind the vendor
// clouds: a sharded map of per-tag state that stays correct under
// GOMAXPROCS concurrent writers while preserving, shard count for shard
// count, the exact accept/reject semantics the single-goroutine
// simulation depends on — and whose read path takes no locks at all.
//
// Layout: tags are hashed (FNV-1a) onto a power-of-two number of
// shards; each shard serializes its writers with its own mutex, so
// writers to different tags contend only when they collide on a shard.
// Per-tag state carries the rate-cap clock (the paper's Figure 4
// plateau is enforced here), the last-known location, and a bounded
// history ring. The accept/reject counters are atomics bumped while the
// shard lock is held, which makes Snapshot — which takes every shard
// lock in index order — a fully consistent point-in-time read: counters
// and histories always agree inside one snapshot.
//
// Read path: every write publishes the tag's state as an immutable
// epoch view (tagView) behind an atomic pointer, and each shard keeps a
// copy-on-write read map from tag ID to its state cell, so LastSeen /
// Known / History / RecentHistory never take the shard mutex. New tags
// land in a writer-owned dirty map first and are promoted wholesale
// into a fresh read map after enough reader misses — the sync.Map
// amortization, specialized to a keyspace that never deletes — so in
// steady state (the Zipf-hot query mix, where the tag universe is
// settled) readers touch two atomic loads and nothing else, and read
// throughput scales with cores instead of flattening on the shard
// locks. A tag's views are published in write order, so a reader can
// never observe last-seen time move backward. Each shard also carries
// an epoch counter bumped on every state change; the query plane's
// hot-tag cache validates entries against it. SetLockedReads is the
// escape hatch back to the historical mutex-guarded reads
// (equivalence-tested byte-identical, raced in CI).
//
// Determinism: acceptance of a report depends only on that tag's prior
// state, never on shard count or on other tags, so any single-writer
// ingest order produces byte-identical state at every shard count.
package store

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"tagsim/internal/geo"
	otrace "tagsim/internal/obs/trace"
	"tagsim/internal/trace"
)

// DefaultShards is the shard count New uses when given n <= 0: enough
// to spread an 8-16 client load without bloating the tiny per-world
// stores the simulation creates.
const DefaultShards = 8

// lockedReads disables the epoch-view read path, routing LastSeen /
// Known / History / RecentHistory back through the shard mutexes. It is
// the testing/benchmark escape hatch mirroring pipeline.SetStreaming.
var lockedReads atomic.Bool

// SetLockedReads toggles the historical mutex-guarded read path
// (default off: reads are lock-free). It returns the previous setting.
func SetLockedReads(enabled bool) (was bool) { return lockedReads.Swap(enabled) }

// LockedReads reports whether reads currently take the shard locks.
func LockedReads() bool { return lockedReads.Load() }

// Store is a sharded concurrent report store for one vendor cloud.
//
// The three policy fields mirror the historical cloud.Service knobs and
// must be set before the store is shared across goroutines; after that
// they are read-only.
type Store struct {
	// MinUpdateInterval is the per-tag accepted-report spacing (the
	// ingestion rate cap). Zero still rejects non-advancing timestamps.
	MinUpdateInterval time.Duration
	// KeepHistory retains accepted reports per tag (the crawlers rebuild
	// history themselves, but experiments read it for ground-truth joins).
	KeepHistory bool
	// HistoryLimit bounds the retained history per tag to the most
	// recent N accepted reports. 0 keeps everything — the historical
	// behavior, which experiments that join full histories rely on.
	HistoryLimit int
	// Retention generalizes HistoryLimit into the storage engine's
	// policy (keep-N and keep-window compose; see Retention). A zero
	// value defers to HistoryLimit.
	Retention Retention

	shards   []shard
	mask     uint64
	accepted atomic.Uint64
	rejected atomic.Uint64
	// tier is the persistence layer (WAL, segments, compaction) behind
	// stores built with Open; nil for in-memory stores, and every tier
	// branch below compiles down to one nil check.
	tier *tier
}

// readView is a shard's atomically published tag map. The map itself is
// immutable once published; only the per-tag state cells it points to
// evolve (through their own atomic views). amended means the shard's
// dirty map holds tags this map does not, so a reader that misses here
// must fall back to the lock before concluding the tag is unknown.
type readView struct {
	tags    map[string]*tagState
	amended bool
}

// shard is one lock domain of the tag space. Writers (Ingest, Restore,
// Register) serialize on mu; readers go through read and only fall back
// to mu for tags newer than the last promotion. The trailing padding
// sizes the struct to a 64-byte cache line, keeping neighboring shards'
// hot fields from false-sharing under contention.
type shard struct {
	mu sync.Mutex
	// read is the lock-free view of the shard's tag set.
	read atomic.Pointer[readView]
	// dirty, when non-nil, is a superset of read.tags including tags
	// added since the last promotion. Guarded by mu; promoted wholesale
	// (becoming the new read map) after misses reader fallbacks.
	dirty  map[string]*tagState
	misses int
	// epoch counts this shard's state changes (accepted ingests,
	// restores, registrations). The hot-tag cache above the store keys
	// its entries on it: any bump invalidates every cached answer for
	// tags on this shard.
	epoch atomic.Uint64
	// accepted/rejected mirror the store totals per shard, feeding the
	// observability plane's per-shard series (hot-shard skew is invisible
	// in the totals). Bumped under mu like the totals.
	accepted atomic.Uint64
	rejected atomic.Uint64
	// flushDirty, in tiered stores, is the set of tags whose state
	// changed since the last flush — the flush's work list. Guarded by
	// mu; nil when clean.
	flushDirty map[string]struct{}
	_          [8]byte
}

// tagState is one tag's state cell. The mutable fields are owned by the
// shard's writers (guarded by its mutex); view is the immutable
// epoch-view readers load instead.
type tagState struct {
	lastPos geo.LatLon
	lastAt  time.Time
	hasLast bool
	hist    []trace.Report
	histAt  int // ring write index once len(hist) == HistoryLimit
	// persisted counts the tag's history rows flushed to segments; the
	// ring holds only rows newer than that. Always 0 in-memory.
	persisted uint64
	view      atomic.Pointer[tagView]
}

// tagView is the immutable per-tag state record the lock-free read path
// serves from. Writers build a fresh one after every mutation and
// publish it with an atomic pointer swap; the hist backing array is
// never written in place at an index a published view covers (appends
// land past every published length, ring overwrites copy first), so
// readers may slice it freely.
type tagView struct {
	lastPos geo.LatLon
	lastAt  time.Time
	hasLast bool
	hist    []trace.Report
	histAt  int
	// persisted is the tag's on-disk row count as of this view. Readers
	// fetch disk rows by persisted-sequence range [persisted-n,
	// persisted), which is what keeps a flush racing a lock-free read
	// harmless: a stale view's rows are still in its ring, and any
	// newer disk copies sit above its persisted bound, outside the
	// requested range.
	persisted uint64
}

// publish snapshots the mutable state into a fresh immutable view. Must
// be called with the shard lock held, after every mutation.
func (st *tagState) publish() {
	st.view.Store(&tagView{
		lastPos: st.lastPos, lastAt: st.lastAt, hasLast: st.hasLast,
		hist: st.hist[:len(st.hist):len(st.hist)], histAt: st.histAt,
		persisted: st.persisted,
	})
}

func (st *tagState) appendHistory(r trace.Report, limit int) {
	if limit <= 0 || len(st.hist) < limit {
		st.hist = append(st.hist, r)
		return
	}
	// The ring is full: copy before overwriting, because published views
	// share the current backing array and their readers hold no lock.
	h := make([]trace.Report, limit)
	copy(h, st.hist)
	h[st.histAt] = r
	st.hist = h
	st.histAt = (st.histAt + 1) % limit
}

// historyCopy returns the retained reports oldest-first.
func (st *tagState) historyCopy() []trace.Report {
	return ringCopy(st.hist, st.histAt, -1)
}

// ringCopy copies the newest limit reports out of a history ring,
// oldest-first (limit < 0 or >= len: everything). A nil return means no
// history at all; limit 0 against a non-empty ring is an empty non-nil
// slice, so callers can keep the two apart.
func ringCopy(hist []trace.Report, histAt, limit int) []trace.Report {
	if len(hist) == 0 {
		return nil
	}
	if limit < 0 || limit > len(hist) {
		limit = len(hist)
	}
	out := make([]trace.Report, 0, limit)
	// Oldest-first order is hist[histAt:] then hist[:histAt]; the newest
	// limit entries start at offset len-limit of that sequence.
	start := histAt + len(hist) - limit
	if start >= len(hist) {
		return append(out, hist[start-len(hist):histAt]...)
	}
	out = append(out, hist[start:]...)
	return append(out, hist[:histAt]...)
}

// New creates a store with the given shard count, rounded up to a power
// of two; n <= 0 means DefaultShards. Policy fields start at their zero
// values (no rate cap beyond monotonicity, no history).
func New(nShards int) *Store {
	if nShards <= 0 {
		nShards = DefaultShards
	}
	n := 1
	for n < nShards {
		n <<= 1
	}
	s := &Store{shards: make([]shard, n), mask: uint64(n - 1)}
	for i := range s.shards {
		s.shards[i].read.Store(&readView{tags: map[string]*tagState{}})
	}
	return s
}

// NumShards returns the (power-of-two) shard count.
func (s *Store) NumShards() int { return len(s.shards) }

// TagHash is the FNV-1a hash the store shards tags by. It is exported
// so layered read-side structures (the query plane's hot-tag cache) can
// hash a tag once and address both their own slots and every store's
// shard epoch (TagEpochAt) with the same value.
func TagHash(tagID string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(tagID); i++ {
		h ^= uint64(tagID[i])
		h *= 1099511628211
	}
	return h
}

// shardFor hashes a tag ID onto its shard.
func (s *Store) shardFor(tagID string) *shard {
	return &s.shards[TagHash(tagID)&s.mask]
}

// stateLocked returns the tag's state cell, creating it if needed. The
// shard lock must be held. Creation goes through the dirty map so the
// published read map stays immutable.
func (sh *shard) stateLocked(tagID string) (st *tagState, created bool) {
	rv := sh.read.Load()
	if st, ok := rv.tags[tagID]; ok {
		return st, false
	}
	if sh.dirty == nil {
		sh.dirty = make(map[string]*tagState, len(rv.tags)+1)
		for k, v := range rv.tags {
			sh.dirty[k] = v
		}
		sh.read.Store(&readView{tags: rv.tags, amended: true})
	}
	if st, ok := sh.dirty[tagID]; ok {
		return st, false
	}
	st = &tagState{}
	st.view.Store(&tagView{})
	sh.dirty[tagID] = st
	return st, true
}

// getLocked returns the tag's state cell or nil. The shard lock must be
// held.
func (sh *shard) getLocked(tagID string) *tagState {
	if st, ok := sh.read.Load().tags[tagID]; ok {
		return st
	}
	return sh.dirty[tagID]
}

// allLocked returns the shard's complete tag map (the dirty superset
// when one exists). The shard lock must be held; callers must not
// mutate the result.
func (sh *shard) allLocked() map[string]*tagState {
	if sh.dirty != nil {
		return sh.dirty
	}
	return sh.read.Load().tags
}

// lookup is the lock-free tag resolution: a hit in the read map (or a
// miss with no amendments pending) answers without the mutex; otherwise
// the reader falls back to the lock and counts a miss toward the next
// wholesale promotion of the dirty map.
func (sh *shard) lookup(tagID string) *tagState {
	rv := sh.read.Load()
	st, ok := rv.tags[tagID]
	if ok || !rv.amended {
		return st
	}
	sh.mu.Lock()
	rv = sh.read.Load()
	if st, ok = rv.tags[tagID]; !ok && rv.amended {
		st = sh.dirty[tagID]
		sh.misses++
		if sh.misses >= len(sh.dirty) {
			sh.read.Store(&readView{tags: sh.dirty})
			sh.dirty = nil
			sh.misses = 0
		}
	}
	sh.mu.Unlock()
	return st
}

// Register creates state for a tag (idempotent). Tags must be
// registered before they can be crawled; Ingest auto-registers.
func (s *Store) Register(tagID string) {
	sh := s.shardFor(tagID)
	sh.mu.Lock()
	if _, created := sh.stateLocked(tagID); created {
		sh.epoch.Add(1)
		if s.tier != nil {
			s.tier.logRegister(sh, tagID)
		}
	}
	sh.mu.Unlock()
}

// seenAt is the timestamp rate capping and display use: the report's
// observation time (HeardAt), falling back to the acceptance time T.
func seenAt(r trace.Report) time.Time {
	if r.HeardAt.IsZero() {
		return r.T
	}
	return r.HeardAt
}

// Ingest applies the per-tag rate cap and, if the report is accepted,
// updates the tag's last location and history. It returns whether the
// report was accepted. Reports observed earlier than the tag's current
// state are rejected (out-of-order uploads never regress the last-seen
// time). Safe for concurrent use; writers to the same tag serialize on
// the tag's shard.
func (s *Store) Ingest(r trace.Report) bool {
	at := seenAt(r)
	sh := s.shardFor(r.TagID)
	sh.mu.Lock()
	st, created := sh.stateLocked(r.TagID)
	if st.hasLast && (!at.After(st.lastAt) || at.Sub(st.lastAt) < s.MinUpdateInterval) {
		s.rejected.Add(1)
		sh.rejected.Add(1)
		if created {
			sh.epoch.Add(1)
		}
		if s.tier != nil {
			s.tier.logReject(r.TagID)
		}
		sh.mu.Unlock()
		return false
	}
	st.lastPos = r.Pos
	st.lastAt = at
	st.hasLast = true
	if s.KeepHistory {
		st.appendHistory(r, s.keepLast())
	}
	st.publish()
	sh.epoch.Add(1)
	s.accepted.Add(1)
	sh.accepted.Add(1)
	if s.tier != nil {
		s.tier.logApply(sh, r, s.KeepHistory)
	}
	sh.mu.Unlock()
	if s.tier != nil {
		s.tier.maybeFlush(s)
	}
	return true
}

// Restore loads already-accepted reports — a cloud history or a trace
// dump — without re-applying the rate cap, counting each as accepted.
// The last-known location only ever advances, so restoring several
// time-disjoint dumps in any order leaves the freshest fix on top.
// Per-tag history lands in the order given; feed time-sorted input
// when order matters.
func (s *Store) Restore(reports []trace.Report) {
	for _, r := range reports {
		at := seenAt(r)
		sh := s.shardFor(r.TagID)
		sh.mu.Lock()
		st, _ := sh.stateLocked(r.TagID)
		if !st.hasLast || at.After(st.lastAt) {
			st.lastPos = r.Pos
			st.lastAt = at
			st.hasLast = true
		}
		if s.KeepHistory {
			st.appendHistory(r, s.keepLast())
		}
		st.publish()
		sh.epoch.Add(1)
		s.accepted.Add(1)
		sh.accepted.Add(1)
		if s.tier != nil {
			s.tier.logApply(sh, r, s.KeepHistory)
		}
		sh.mu.Unlock()
		if s.tier != nil {
			s.tier.maybeFlush(s)
		}
	}
}

// Known reports whether the tag is registered (explicitly or by a past
// ingest) — the distinction the query API uses between "no location
// found" for a paired tag and a 404 for a tag that does not exist.
func (s *Store) Known(tagID string) bool {
	sh := s.shardFor(tagID)
	if lockedReads.Load() {
		sh.mu.Lock()
		ok := sh.getLocked(tagID) != nil
		sh.mu.Unlock()
		return ok
	}
	return sh.lookup(tagID) != nil
}

// LastSeen returns the tag's last reported location and when it was
// observed. ok is false when the tag is unknown or has no reports yet.
// The lock-free path serves the tag's latest published epoch view, so
// two sequential reads can never see the last-seen time move backward.
func (s *Store) LastSeen(tagID string) (pos geo.LatLon, at time.Time, ok bool) {
	sh := s.shardFor(tagID)
	if lockedReads.Load() {
		sh.mu.Lock()
		if st := sh.getLocked(tagID); st != nil && st.hasLast {
			pos, at, ok = st.lastPos, st.lastAt, true
		}
		sh.mu.Unlock()
		return pos, at, ok
	}
	if st := sh.lookup(tagID); st != nil {
		if v := st.view.Load(); v.hasLast {
			return v.lastPos, v.lastAt, true
		}
	}
	return pos, at, false
}

// TagEpoch returns the current epoch of the tag's shard: a counter
// bumped on every state change (accepted ingest, restore, or
// registration) landing there. Caches key their entries on it — equal
// epochs guarantee nothing about the tag changed in between. Epochs are
// per shard, so an unrelated colliding tag's write also invalidates
// (conservative, never stale).
func (s *Store) TagEpoch(tagID string) uint64 {
	return s.shardFor(tagID).epoch.Load()
}

// TagEpochAt is TagEpoch for a tag hash precomputed with TagHash — the
// one-hash-per-probe path of the hot-tag cache.
func (s *Store) TagEpochAt(h uint64) uint64 {
	return s.shards[h&s.mask].epoch.Load()
}

// History returns a copy of the retained accepted reports for a tag,
// oldest first (nil for an unknown or history-less tag).
func (s *Store) History(tagID string) []trace.Report {
	return s.RecentHistory(tagID, -1)
}

// RecentHistory returns a copy of the newest limit retained reports for
// a tag, oldest-first (limit < 0: everything, i.e. History). A capped
// query copies only those limit entries out of the ring, and in a
// tiered store touches only the segment frames holding the remainder.
// nil means no history at all; limit 0 against a tag with history is an
// empty non-nil slice.
func (s *Store) RecentHistory(tagID string, limit int) []trace.Report {
	return s.RecentHistoryTraced(tagID, limit, nil)
}

// RecentHistoryTraced is RecentHistory recording its memtable merge
// and any segment preads as spans on tr (nil tr traces nothing) — the
// entry point the traced serve/cache read path threads through.
func (s *Store) RecentHistoryTraced(tagID string, limit int, tr *otrace.Trace) []trace.Report {
	sh := s.shardFor(tagID)
	if lockedReads.Load() {
		var out []trace.Report
		sh.mu.Lock()
		if st := sh.getLocked(tagID); st != nil {
			out = s.visibleHistory(tagID, st.persisted, st.hist, st.histAt, st.lastAt, limit, tr)
		}
		sh.mu.Unlock()
		return out
	}
	if st := sh.lookup(tagID); st != nil {
		v := st.view.Load()
		return s.visibleHistory(tagID, v.persisted, v.hist, v.histAt, v.lastAt, limit, tr)
	}
	return nil
}

// visibleHistory assembles the newest-limit reports the Retention
// policy leaves visible for one tag, oldest-first: ring rows as far as
// they reach, persisted (segment) rows for the remainder. It is the
// single read path shared by the lock-free views, the locked escape
// hatch, and Snapshot — in-memory stores (persisted 0) reduce to the
// historical ringCopy.
func (s *Store) visibleHistory(tagID string, persisted uint64, hist []trace.Report, histAt int, lastAt time.Time, limit int, tr *otrace.Trace) []trace.Report {
	total := int(persisted) + len(hist)
	if total == 0 {
		return nil
	}
	if k := s.keepLast(); k > 0 && total > k {
		total = k
	}
	n := total
	if limit >= 0 && limit < n {
		n = limit
	}
	var out []trace.Report
	switch need := n - len(hist); {
	case n == 0:
		out = make([]trace.Report, 0)
	case need <= 0:
		// Ring-only: the memtable merge is an untimed event span — this
		// is the cached fill's hot path, too cheap to bill clock reads.
		tr.Event(otrace.PlaneStore, "store.memtable", int64(n), 0)
		out = ringCopy(hist, histAt, n)
	default:
		// The merge needs disk: a timed span, with the segment pread and
		// frame-decode spans nesting under it.
		sp := tr.Start(otrace.PlaneStore, "store.memtable", int64(len(hist)), int64(need))
		out = make([]trace.Report, 0, n)
		out = s.tier.readDisk(tagID, persisted, need, out, tr)
		out = append(out, ringCopy(hist, histAt, -1)...)
		tr.Finish(sp)
	}
	if w := s.Retention.KeepWindow; w > 0 {
		out = trimWindow(out, lastAt, w)
	}
	return out
}

// TagIDs returns the registered tags in sorted order.
func (s *Store) TagIDs() []string {
	out := make([]string, 0, s.NumTags())
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for id := range sh.allLocked() {
			out = append(out, id)
		}
		sh.mu.Unlock()
	}
	sort.Strings(out)
	return out
}

// NumTags returns the number of registered tags.
func (s *Store) NumTags() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += len(sh.allLocked())
		sh.mu.Unlock()
	}
	return n
}

// Stats returns the accept/reject counters. The two loads are
// individually atomic but not mutually consistent under concurrent
// ingest; use Snapshot for a consistent pair.
func (s *Store) Stats() (accepted, rejected uint64) {
	return s.accepted.Load(), s.rejected.Load()
}

// ShardStats is one shard's slice of the store counters — the unit the
// observability plane exports so hot-shard skew (a Zipf head hashing
// onto one shard) shows up in monitoring instead of averaging away.
type ShardStats struct {
	Accepted uint64
	Rejected uint64
	Epoch    uint64
	Tags     int
}

// ShardStats returns shard i's counters. The atomics load lock-free;
// the tag count briefly takes the shard lock (scrape path, not hot
// path). Panics if i is out of range, like a slice index.
func (s *Store) ShardStats(i int) ShardStats {
	sh := &s.shards[i]
	sh.mu.Lock()
	tags := len(sh.allLocked())
	sh.mu.Unlock()
	return ShardStats{
		Accepted: sh.accepted.Load(),
		Rejected: sh.rejected.Load(),
		Epoch:    sh.epoch.Load(),
		Tags:     tags,
	}
}

// TagSnapshot is one tag's state inside a Snapshot.
type TagSnapshot struct {
	ID      string
	Pos     geo.LatLon
	At      time.Time
	HasLast bool
	History []trace.Report
}

// Snapshot is a consistent point-in-time view of the whole store:
// counters and per-tag state captured under all shard locks, tags in
// sorted order — deterministic for deterministic ingest sequences.
type Snapshot struct {
	Accepted, Rejected uint64
	Tags               []TagSnapshot
}

// Snapshot captures the store. It locks every shard (in index order, so
// concurrent snapshots cannot deadlock), meaning no ingest is mid-flight
// while the copy is taken: inside one snapshot, Accepted always equals
// the reports reflected in the tag states.
func (s *Store) Snapshot() Snapshot {
	for i := range s.shards {
		s.shards[i].mu.Lock()
	}
	snap := Snapshot{Accepted: s.accepted.Load(), Rejected: s.rejected.Load()}
	for i := range s.shards {
		for id, st := range s.shards[i].allLocked() {
			snap.Tags = append(snap.Tags, TagSnapshot{
				ID: id, Pos: st.lastPos, At: st.lastAt, HasLast: st.hasLast,
				History: s.visibleHistory(id, st.persisted, st.hist, st.histAt, st.lastAt, -1, nil),
			})
		}
	}
	for i := range s.shards {
		s.shards[i].mu.Unlock()
	}
	sort.Slice(snap.Tags, func(i, j int) bool { return snap.Tags[i].ID < snap.Tags[j].ID })
	return snap
}
