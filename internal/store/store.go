// Package store is the serving-side report store behind the vendor
// clouds: a sharded, lock-per-shard map of per-tag state that stays
// correct under GOMAXPROCS concurrent writers while preserving, shard
// count for shard count, the exact accept/reject semantics the
// single-goroutine simulation depends on.
//
// Layout: tags are hashed (FNV-1a) onto a power-of-two number of
// shards; each shard guards its slice of the tag space with its own
// mutex, so writers to different tags contend only when they collide
// on a shard. Per-tag state carries the rate-cap clock (the paper's
// Figure 4 plateau is enforced here), the last-known location, and a
// bounded history ring. The accept/reject counters are atomics bumped
// while the shard lock is held, which makes Snapshot — which takes
// every shard lock in index order — a fully consistent point-in-time
// read: counters and histories always agree inside one snapshot.
//
// Determinism: acceptance of a report depends only on that tag's prior
// state, never on shard count or on other tags, so any single-writer
// ingest order produces byte-identical state at every shard count.
package store

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"tagsim/internal/geo"
	"tagsim/internal/trace"
)

// DefaultShards is the shard count New uses when given n <= 0: enough
// to spread an 8-16 client load without bloating the tiny per-world
// stores the simulation creates.
const DefaultShards = 8

// Store is a sharded concurrent report store for one vendor cloud.
//
// The three policy fields mirror the historical cloud.Service knobs and
// must be set before the store is shared across goroutines; after that
// they are read-only.
type Store struct {
	// MinUpdateInterval is the per-tag accepted-report spacing (the
	// ingestion rate cap). Zero still rejects non-advancing timestamps.
	MinUpdateInterval time.Duration
	// KeepHistory retains accepted reports per tag (the crawlers rebuild
	// history themselves, but experiments read it for ground-truth joins).
	KeepHistory bool
	// HistoryLimit bounds the retained history per tag to the most
	// recent N accepted reports. 0 keeps everything — the historical
	// behavior, which experiments that join full histories rely on.
	HistoryLimit int

	shards   []shard
	mask     uint64
	accepted atomic.Uint64
	rejected atomic.Uint64
}

// shard is one lock domain of the tag space. The trailing padding sizes
// the struct to a 64-byte cache line, keeping neighboring shards'
// mutexes from false-sharing under write contention.
type shard struct {
	mu   sync.Mutex
	tags map[string]*tagState
	_    [48]byte
}

// tagState is the per-tag serving state: rate-cap clock, last-known
// location, and the history ring (plain append slice while unbounded;
// circular once HistoryLimit is reached).
type tagState struct {
	lastPos geo.LatLon
	lastAt  time.Time
	hasLast bool
	hist    []trace.Report
	histAt  int // ring write index once len(hist) == HistoryLimit
}

func (st *tagState) appendHistory(r trace.Report, limit int) {
	if limit <= 0 || len(st.hist) < limit {
		st.hist = append(st.hist, r)
		return
	}
	st.hist[st.histAt] = r
	st.histAt = (st.histAt + 1) % limit
}

// historyCopy returns the retained reports oldest-first.
func (st *tagState) historyCopy() []trace.Report {
	if len(st.hist) == 0 {
		return nil
	}
	out := make([]trace.Report, 0, len(st.hist))
	out = append(out, st.hist[st.histAt:]...)
	out = append(out, st.hist[:st.histAt]...)
	return out
}

// New creates a store with the given shard count, rounded up to a power
// of two; n <= 0 means DefaultShards. Policy fields start at their zero
// values (no rate cap beyond monotonicity, no history).
func New(nShards int) *Store {
	if nShards <= 0 {
		nShards = DefaultShards
	}
	n := 1
	for n < nShards {
		n <<= 1
	}
	s := &Store{shards: make([]shard, n), mask: uint64(n - 1)}
	for i := range s.shards {
		s.shards[i].tags = make(map[string]*tagState)
	}
	return s
}

// NumShards returns the (power-of-two) shard count.
func (s *Store) NumShards() int { return len(s.shards) }

// shardFor hashes a tag ID (FNV-1a) onto its shard.
func (s *Store) shardFor(tagID string) *shard {
	h := uint64(14695981039346656037)
	for i := 0; i < len(tagID); i++ {
		h ^= uint64(tagID[i])
		h *= 1099511628211
	}
	return &s.shards[h&s.mask]
}

// Register creates state for a tag (idempotent). Tags must be
// registered before they can be crawled; Ingest auto-registers.
func (s *Store) Register(tagID string) {
	sh := s.shardFor(tagID)
	sh.mu.Lock()
	if _, ok := sh.tags[tagID]; !ok {
		sh.tags[tagID] = &tagState{}
	}
	sh.mu.Unlock()
}

// seenAt is the timestamp rate capping and display use: the report's
// observation time (HeardAt), falling back to the acceptance time T.
func seenAt(r trace.Report) time.Time {
	if r.HeardAt.IsZero() {
		return r.T
	}
	return r.HeardAt
}

// Ingest applies the per-tag rate cap and, if the report is accepted,
// updates the tag's last location and history. It returns whether the
// report was accepted. Reports observed earlier than the tag's current
// state are rejected (out-of-order uploads never regress the last-seen
// time). Safe for concurrent use; writers to the same tag serialize on
// the tag's shard.
func (s *Store) Ingest(r trace.Report) bool {
	at := seenAt(r)
	sh := s.shardFor(r.TagID)
	sh.mu.Lock()
	st, ok := sh.tags[r.TagID]
	if !ok {
		st = &tagState{}
		sh.tags[r.TagID] = st
	}
	if st.hasLast && (!at.After(st.lastAt) || at.Sub(st.lastAt) < s.MinUpdateInterval) {
		s.rejected.Add(1)
		sh.mu.Unlock()
		return false
	}
	st.lastPos = r.Pos
	st.lastAt = at
	st.hasLast = true
	if s.KeepHistory {
		st.appendHistory(r, s.HistoryLimit)
	}
	s.accepted.Add(1)
	sh.mu.Unlock()
	return true
}

// Restore loads already-accepted reports — a cloud history or a trace
// dump — without re-applying the rate cap, counting each as accepted.
// The last-known location only ever advances, so restoring several
// time-disjoint dumps in any order leaves the freshest fix on top.
// Per-tag history lands in the order given; feed time-sorted input
// when order matters.
func (s *Store) Restore(reports []trace.Report) {
	for _, r := range reports {
		at := seenAt(r)
		sh := s.shardFor(r.TagID)
		sh.mu.Lock()
		st, ok := sh.tags[r.TagID]
		if !ok {
			st = &tagState{}
			sh.tags[r.TagID] = st
		}
		if !st.hasLast || at.After(st.lastAt) {
			st.lastPos = r.Pos
			st.lastAt = at
			st.hasLast = true
		}
		if s.KeepHistory {
			st.appendHistory(r, s.HistoryLimit)
		}
		s.accepted.Add(1)
		sh.mu.Unlock()
	}
}

// Known reports whether the tag is registered (explicitly or by a past
// ingest) — the distinction the query API uses between "no location
// found" for a paired tag and a 404 for a tag that does not exist.
func (s *Store) Known(tagID string) bool {
	sh := s.shardFor(tagID)
	sh.mu.Lock()
	_, ok := sh.tags[tagID]
	sh.mu.Unlock()
	return ok
}

// LastSeen returns the tag's last reported location and when it was
// observed. ok is false when the tag is unknown or has no reports yet.
func (s *Store) LastSeen(tagID string) (pos geo.LatLon, at time.Time, ok bool) {
	sh := s.shardFor(tagID)
	sh.mu.Lock()
	st, found := sh.tags[tagID]
	if found && st.hasLast {
		pos, at, ok = st.lastPos, st.lastAt, true
	}
	sh.mu.Unlock()
	return pos, at, ok
}

// History returns a copy of the retained accepted reports for a tag,
// oldest first (nil for an unknown or history-less tag).
func (s *Store) History(tagID string) []trace.Report {
	sh := s.shardFor(tagID)
	sh.mu.Lock()
	var out []trace.Report
	if st, ok := sh.tags[tagID]; ok {
		out = st.historyCopy()
	}
	sh.mu.Unlock()
	return out
}

// TagIDs returns the registered tags in sorted order.
func (s *Store) TagIDs() []string {
	out := make([]string, 0, s.NumTags())
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for id := range sh.tags {
			out = append(out, id)
		}
		sh.mu.Unlock()
	}
	sort.Strings(out)
	return out
}

// NumTags returns the number of registered tags.
func (s *Store) NumTags() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += len(sh.tags)
		sh.mu.Unlock()
	}
	return n
}

// Stats returns the accept/reject counters. The two loads are
// individually atomic but not mutually consistent under concurrent
// ingest; use Snapshot for a consistent pair.
func (s *Store) Stats() (accepted, rejected uint64) {
	return s.accepted.Load(), s.rejected.Load()
}

// TagSnapshot is one tag's state inside a Snapshot.
type TagSnapshot struct {
	ID      string
	Pos     geo.LatLon
	At      time.Time
	HasLast bool
	History []trace.Report
}

// Snapshot is a consistent point-in-time view of the whole store:
// counters and per-tag state captured under all shard locks, tags in
// sorted order — deterministic for deterministic ingest sequences.
type Snapshot struct {
	Accepted, Rejected uint64
	Tags               []TagSnapshot
}

// Snapshot captures the store. It locks every shard (in index order, so
// concurrent snapshots cannot deadlock), meaning no ingest is mid-flight
// while the copy is taken: inside one snapshot, Accepted always equals
// the reports reflected in the tag states.
func (s *Store) Snapshot() Snapshot {
	for i := range s.shards {
		s.shards[i].mu.Lock()
	}
	snap := Snapshot{Accepted: s.accepted.Load(), Rejected: s.rejected.Load()}
	for i := range s.shards {
		for id, st := range s.shards[i].tags {
			snap.Tags = append(snap.Tags, TagSnapshot{
				ID: id, Pos: st.lastPos, At: st.lastAt, HasLast: st.hasLast,
				History: st.historyCopy(),
			})
		}
	}
	for i := range s.shards {
		s.shards[i].mu.Unlock()
	}
	sort.Slice(snap.Tags, func(i, j int) bool { return snap.Tags[i].ID < snap.Tags[j].ID })
	return snap
}
