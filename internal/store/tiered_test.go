package store

import (
	"fmt"
	"os"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tagsim/internal/geo"
	"tagsim/internal/trace"
)

// tieredCfg is the cloud-like tiered policy with thresholds shrunk so a
// few thousand reports exercise many flushes. Compaction stays off by
// default so segment layout is deterministic; tests that want it turn
// it back on.
func tieredCfg(dir string) Tiering {
	return Tiering{
		Dir:               dir,
		MemtableBytes:     16 << 10,
		WALSyncBytes:      4 << 10,
		MinUpdateInterval: 192 * time.Second,
		KeepHistory:       true,
		DisableCompaction: true,
	}
}

func openTiered(t *testing.T, shards int, cfg Tiering) *Store {
	t.Helper()
	s, err := Open(shards, cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if !s.Tiered() {
		t.Fatal("Open returned an in-memory store for a tiered config")
	}
	return s
}

// closeStore closes a store that is expected to have no persistence
// errors.
func closeStore(t *testing.T, s *Store) {
	t.Helper()
	if err := s.TierErr(); err != nil {
		t.Fatalf("tier error: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestTieredEquivalence: the tiered store answers every read exactly
// like the in-memory store for the same ingest sequence — across shard
// counts, both read paths, with the data split across many segments.
func TestTieredEquivalence(t *testing.T) {
	reports := stream(7, 3000)
	mem := newCloudlike(4)
	for _, r := range reports {
		mem.Ingest(r)
	}
	want := mem.Snapshot()
	tags := append(mem.TagIDs(), "never-seen")

	for _, shards := range []int{1, 4, 16} {
		s := openTiered(t, shards, tieredCfg(t.TempDir()))
		for _, r := range reports {
			s.Ingest(r)
		}
		st := s.TierStats()
		if st.Flushes == 0 || st.Segments == 0 {
			t.Fatalf("shards=%d: thresholds never tripped (flushes=%d segments=%d) — test is not exercising disk",
				shards, st.Flushes, st.Segments)
		}
		lockModes(t, func(t *testing.T, locked bool) {
			memViews := readAll(mem, tags)
			tierViews := readAll(s, tags)
			if !reflect.DeepEqual(tierViews, memViews) {
				t.Errorf("shards=%d locked=%v: tiered reads diverge from in-memory", shards, locked)
				for k, v := range memViews {
					if !reflect.DeepEqual(v, tierViews[k]) {
						t.Errorf("  %s: mem=%v tiered=%v", k, v, tierViews[k])
					}
				}
			}
		})
		if got := s.Snapshot(); !reflect.DeepEqual(got, want) {
			t.Errorf("shards=%d: tiered snapshot diverged from in-memory reference", shards)
		}
		closeStore(t, s)
	}
}

// TestTieredEquivalenceMixed runs the mixed ingest/restore/register
// sequence with a keep-last retention bound: the tiered store's
// read-time cap over (segments + ring) must equal the in-memory ring.
func TestTieredEquivalenceMixed(t *testing.T) {
	for _, shards := range []int{1, 4} {
		mem := New(shards)
		mem.MinUpdateInterval = 2 * time.Minute
		mem.KeepHistory = true
		mem.HistoryLimit = 5
		fillStore(mem, 40)

		cfg := tieredCfg(t.TempDir())
		cfg.MemtableBytes = 2 << 10
		cfg.MinUpdateInterval = 2 * time.Minute
		cfg.Retention = Retention{KeepLast: 5}
		s := openTiered(t, shards, cfg)
		fillStore(s, 40)

		tags := append(mem.TagIDs(), "never-seen")
		lockModes(t, func(t *testing.T, locked bool) {
			if !reflect.DeepEqual(readAll(s, tags), readAll(mem, tags)) {
				t.Errorf("shards=%d locked=%v: tiered keep-last reads diverge from HistoryLimit ring", shards, locked)
			}
		})
		if got, want := s.Snapshot(), mem.Snapshot(); !reflect.DeepEqual(got, want) {
			t.Errorf("shards=%d: snapshots diverge", shards)
		}
		closeStore(t, s)
	}
}

// TestTieredRetentionWindowEquivalence: a keep-window policy trims the
// same rows whether the history lives in a ring or on disk.
func TestTieredRetentionWindowEquivalence(t *testing.T) {
	ret := Retention{KeepWindow: 45 * time.Minute}
	reports := stream(5, 1200)

	mem := newCloudlike(4)
	mem.Retention = ret
	for _, r := range reports {
		mem.Ingest(r)
	}

	cfg := tieredCfg(t.TempDir())
	cfg.MemtableBytes = 4 << 10
	cfg.Retention = ret
	s := openTiered(t, 4, cfg)
	for _, r := range reports {
		s.Ingest(r)
	}

	tags := append(mem.TagIDs(), "never-seen")
	lockModes(t, func(t *testing.T, locked bool) {
		if !reflect.DeepEqual(readAll(s, tags), readAll(mem, tags)) {
			t.Errorf("locked=%v: keep-window reads diverge between tiered and in-memory", locked)
		}
	})
	if got, want := s.Snapshot(), mem.Snapshot(); !reflect.DeepEqual(got, want) {
		t.Error("keep-window snapshots diverge")
	}
	closeStore(t, s)
}

// TestSetTieredEscapeHatch: with the global toggle off, Open ignores
// its directory and hands back the historical in-memory engine.
func TestSetTieredEscapeHatch(t *testing.T) {
	was := SetTiered(false)
	defer SetTiered(was)
	dir := t.TempDir()
	s, err := Open(4, tieredCfg(dir))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if s.Tiered() {
		t.Fatal("SetTiered(false): Open must return an in-memory store")
	}
	if st := s.TierStats(); st.Enabled {
		t.Error("in-memory store reports Enabled tier stats")
	}
	if !s.Ingest(report(t0, "tag", pos)) || len(s.History("tag")) != 1 {
		t.Error("escape-hatch store must still ingest and serve")
	}
	if err := s.Flush(); err != nil {
		t.Errorf("Flush on in-memory store: %v", err)
	}
	if err := s.Sync(); err != nil {
		t.Errorf("Sync on in-memory store: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("Close on in-memory store: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Errorf("escape-hatch store touched its directory: %v", entries)
	}
}

// TestTieredCompactionPreservesReads: merging segments changes the file
// layout and nothing else.
func TestTieredCompactionPreservesReads(t *testing.T) {
	s := openTiered(t, 4, tieredCfg(t.TempDir()))
	reports := stream(7, 2400)
	for i, r := range reports {
		s.Ingest(r)
		if (i+1)%300 == 0 {
			if err := s.Flush(); err != nil {
				t.Fatalf("Flush: %v", err)
			}
		}
	}
	tags := append(s.TagIDs(), "never-seen")
	before := readAll(s, tags)
	st := s.TierStats()
	if st.Segments < 4 {
		t.Fatalf("only %d segments before compaction — nothing to merge", st.Segments)
	}
	if err := s.CompactNow(); err != nil {
		t.Fatalf("CompactNow: %v", err)
	}
	st2 := s.TierStats()
	if st2.Compactions == 0 || st2.Segments >= st.Segments {
		t.Errorf("compaction did not run: %d -> %d segments, %d compactions",
			st.Segments, st2.Segments, st2.Compactions)
	}
	if after := readAll(s, tags); !reflect.DeepEqual(after, before) {
		t.Error("reads changed across compaction")
	}
	closeStore(t, s)
}

// TestCompactionDropsRowsBeyondRetention: compaction physically removes
// rows the keep-last policy already hides — the reclaim that keeps the
// disk footprint proportional to the retention bound, not the ingest
// total.
func TestCompactionDropsRowsBeyondRetention(t *testing.T) {
	cfg := tieredCfg(t.TempDir())
	cfg.Retention = Retention{KeepLast: 3}
	cfg.CompactFanin = 8 // one merge covers all eight flushed segments
	s := openTiered(t, 1, cfg)
	var want []trace.Report
	for i := 0; i < 80; i++ {
		r := report(t0.Add(time.Duration(i)*5*time.Minute), "tag", geo.Destination(pos, float64(i%360), float64(i)))
		if !s.Ingest(r) {
			t.Fatalf("report %d rejected", i)
		}
		want = append(want, r)
		if (i+1)%10 == 0 {
			if err := s.Flush(); err != nil {
				t.Fatalf("Flush: %v", err)
			}
		}
	}
	if err := s.CompactNow(); err != nil {
		t.Fatalf("CompactNow: %v", err)
	}
	if h := s.History("tag"); !reflect.DeepEqual(h, want[77:]) {
		t.Errorf("post-compaction history = %d rows, want the newest 3", len(h))
	}
	var diskRows uint64
	for _, seg := range s.tier.list.Load().segs {
		diskRows += seg.rows
	}
	if diskRows != 3 {
		t.Errorf("segments hold %d rows after compaction, want exactly the 3 retained", diskRows)
	}
	closeStore(t, s)
}

// TestTieredLastSeenOnlyStore: with KeepHistory off the memtable byte
// count never moves, so the WAL threshold alone must bound the log; the
// last-seen state still persists through flush and restart.
func TestTieredLastSeenOnlyStore(t *testing.T) {
	dir := t.TempDir()
	cfg := tieredCfg(dir)
	cfg.KeepHistory = false
	cfg.MemtableBytes = 1 << 10 // WAL forces a flush every 4 KiB of log
	s := openTiered(t, 4, cfg)
	reports := stream(5, 2000)
	for _, r := range reports {
		s.Ingest(r)
	}
	st := s.TierStats()
	if st.Flushes == 0 {
		t.Fatal("WAL growth never forced a flush in a history-less store")
	}
	if h := s.History("tag-00"); h != nil {
		t.Errorf("KeepHistory=false store served history: %d rows", len(h))
	}
	want := s.Snapshot()
	closeStore(t, s)

	s2 := openTiered(t, 4, cfg)
	if got := s2.Snapshot(); !reflect.DeepEqual(got, want) {
		t.Error("last-seen-only state did not survive restart")
	}
	closeStore(t, s2)
}

// TestTieredReadsRacedUnderFlushAndCompaction races lock-free readers
// and a flush/compaction storm against live ingest: last-seen never
// moves backward, history never shrinks, and after everything drains
// the store is byte-identical to an in-memory run of the same per-tag
// sequences. Run under -race in CI.
func TestTieredReadsRacedUnderFlushAndCompaction(t *testing.T) {
	for _, shards := range []int{1, 4} {
		cfg := Tiering{
			Dir:               t.TempDir(),
			MemtableBytes:     4 << 10,
			WALSyncBytes:      2 << 10,
			MinUpdateInterval: time.Minute,
			KeepHistory:       true,
			Retention:         Retention{KeepLast: 8},
			CompactFanin:      2,
		}
		s := openTiered(t, shards, cfg)
		mem := New(shards)
		mem.MinUpdateInterval = cfg.MinUpdateInterval
		mem.KeepHistory = true
		mem.Retention = cfg.Retention

		tags := make([]string, 16)
		for i := range tags {
			tags[i] = fmt.Sprintf("raced-%02d", i)
		}

		var stop atomic.Bool
		var wg sync.WaitGroup
		const writers, steps = 4, 300
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				// Each writer owns tags w, w+writers, ...: a tag's reports
				// stay on one goroutine in order, and land identically in
				// both stores.
				for step := 0; step < steps; step++ {
					for ti := w; ti < len(tags); ti += writers {
						r := report(base.Add(time.Duration(step*90+ti)*time.Second),
							tags[ti], geo.Destination(pos, float64(ti), float64(step)))
						s.Ingest(r)
						mem.Ingest(r)
					}
				}
			}(w)
		}
		var rg sync.WaitGroup
		rg.Add(1)
		go func() { // flush/compaction storm
			defer rg.Done()
			for !stop.Load() {
				s.Flush()
				s.CompactNow()
				time.Sleep(time.Millisecond)
			}
		}()
		errs := make(chan string, 8)
		for r := 0; r < 2; r++ { // lock-free readers
			rg.Add(1)
			go func(r int) {
				defer rg.Done()
				lastAt := map[string]time.Time{}
				histLen := map[string]int{}
				for !stop.Load() {
					for _, id := range tags {
						if _, at, ok := s.LastSeen(id); ok {
							if at.Before(lastAt[id]) {
								errs <- fmt.Sprintf("last-seen of %s went backward: %v -> %v", id, lastAt[id], at)
								return
							}
							lastAt[id] = at
						}
						h := s.RecentHistory(id, -1)
						if len(h) > cfg.Retention.KeepLast {
							errs <- fmt.Sprintf("history of %s overflows keep-last: %d rows", id, len(h))
							return
						}
						if len(h) < histLen[id] {
							errs <- fmt.Sprintf("history of %s shrank: %d -> %d", id, histLen[id], len(h))
							return
						}
						histLen[id] = len(h)
						for i := 1; i < len(h); i++ {
							if !seenAt(h[i]).After(seenAt(h[i-1])) {
								errs <- fmt.Sprintf("history of %s out of order or duplicated at %d", id, i)
								return
							}
						}
					}
				}
			}(r)
		}

		wg.Wait()
		stop.Store(true)
		rg.Wait()
		close(errs)
		for e := range errs {
			t.Errorf("shards=%d: %s", shards, e)
		}
		if err := s.TierErr(); err != nil {
			t.Fatalf("shards=%d: tier error after the race: %v", shards, err)
		}

		// Quiesced: equal to the in-memory run, on both read paths.
		if got, want := s.Snapshot(), mem.Snapshot(); !reflect.DeepEqual(got, want) {
			t.Errorf("shards=%d: tiered snapshot diverged from in-memory after the race", shards)
		}
		lockModes(t, func(t *testing.T, locked bool) {
			if !reflect.DeepEqual(readAll(s, tags), readAll(mem, tags)) {
				t.Errorf("shards=%d locked=%v: reads diverge after the race", shards, locked)
			}
		})
		closeStore(t, s)
	}
}
