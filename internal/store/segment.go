package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"tagsim/internal/colfmt"
	"tagsim/internal/geo"
	otrace "tagsim/internal/obs/trace"
	"tagsim/internal/trace"
)

// An immutable columnar segment is one flushed (or compacted) slab of
// per-tag history plus the last-seen state of every tag it covers. The
// layout is the truth log's seekable pattern with the storage engine's
// CRC framing:
//
//	file  := magic dataFrame* indexBlock trailer
//	magic := "TAGSEG1\n" (8 bytes)
//	dataFrame := u32 payloadBytes | u32 crc32c | payload
//	payload :=
//	    u32 count
//	    i64 t[count]        -- Report.T, unix nanos
//	    i64 heardAt[count]  -- Report.HeardAt, unix nanos
//	    u64 lat[count]      -- math.Float64bits
//	    u64 lon[count]
//	    u64 rssi[count]
//	    u8  vendor[count]
//	    strcol reporterID
//	indexBlock := u32 0xFFFFFFFF | crcFrame of index payload
//	index payload :=
//	    u32 frameCount
//	    (u64 offset | u64 rowStart | u32 count)*frameCount
//	    u32 tagCount
//	    (str tag | u64 startSeq | u64 rowStart | u32 rowCount |
//	     i64 lastAt | f64 lat | f64 lon | u8 hasLast)*tagCount
//	trailer := u64 indexOffset | "TAGSEGX\n"
//
// Rows are grouped by tag (tags in sorted order, each tag's rows
// oldest-first), so a tag's history is one contiguous global row range
// — which is why data frames carry no tagID column: the per-tag index
// entry names the range and the reader re-attaches the ID. startSeq is
// the tag's persisted-sequence number of the run's first row, so
// recovery can compute how many rows of a tag's history live on disk
// (startSeq+rowCount of its newest segment) without reading any data
// frame. The entry also carries the tag's last-seen state as of the
// flush — tags with no retained history (KeepHistory off, or
// registration-only) appear with rowCount 0, which is what lets a warm
// restart rebuild the full tag universe from index blocks alone.
const (
	segMagic        = "TAGSEG1\n"
	segTrailerMagic = "TAGSEGX\n"
)

// segRowsPerFrame is the target data-frame row count — the truth log's
// default frame granularity, which keeps a partial-history read to a
// handful of frame decodes.
const segRowsPerFrame = 4096

// segFrame is one data frame's index entry.
type segFrame struct {
	offset   int64  // of the frame's length prefix
	rowStart uint64 // global row index of the frame's first row
	count    uint32
}

// segTagEntry is one tag's index entry.
type segTagEntry struct {
	tag      string
	startSeq uint64 // persisted-sequence number of the run's first row
	rowStart uint64 // global row index of the run's first row
	rowCount uint32
	lastAt   int64 // unix nanos of the tag's last-seen instant at flush
	lastPos  geo.LatLon
	hasLast  bool
}

// segmentWriter builds a segment at path+".tmp", renaming it into place
// on finish so a crash mid-write never leaves a live half-segment.
type segmentWriter struct {
	path    string
	f       *os.File
	w       *bufio.Writer
	payload []byte
	batch   []trace.Report
	frames  []segFrame
	entries []segTagEntry
	off     int64
	rows    uint64 // global row counter
}

// createSegment starts writing a segment destined for path.
func createSegment(path string) (*segmentWriter, error) {
	f, err := os.OpenFile(path+".tmp", os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	w := &segmentWriter{path: path, f: f, w: bufio.NewWriter(f)}
	if _, err := w.w.WriteString(segMagic); err != nil {
		f.Close()
		os.Remove(path + ".tmp")
		return nil, err
	}
	w.off = int64(len(segMagic))
	return w, nil
}

// addTag appends one tag's run: its retained reports oldest-first plus
// its last-seen state. Tags must arrive in strictly increasing order —
// the writer's callers (flush over a sorted tag list, compaction over a
// sorted merge) guarantee it, and the check turns a caller bug into an
// error instead of an unsearchable index.
func (w *segmentWriter) addTag(tag string, startSeq uint64, reports []trace.Report, lastPos geo.LatLon, lastAt time.Time, hasLast bool) error {
	if n := len(w.entries); n > 0 && tag <= w.entries[n-1].tag {
		return fmt.Errorf("store: segment tags out of order (%q after %q)", tag, w.entries[n-1].tag)
	}
	w.entries = append(w.entries, segTagEntry{
		tag: tag, startSeq: startSeq,
		rowStart: w.rows + uint64(len(w.batch)), rowCount: uint32(len(reports)),
		lastAt: encTime(lastAt), lastPos: lastPos, hasLast: hasLast,
	})
	for _, r := range reports {
		w.batch = append(w.batch, r)
		if len(w.batch) >= segRowsPerFrame {
			if err := w.writeFrame(); err != nil {
				return err
			}
		}
	}
	return nil
}

func (w *segmentWriter) writeFrame() error {
	rs := w.batch
	p := w.payload[:0]
	p = colfmt.AppendU32(p, uint32(len(rs)))
	for _, r := range rs {
		p = colfmt.AppendI64(p, encTime(r.T))
	}
	for _, r := range rs {
		p = colfmt.AppendI64(p, encTime(r.HeardAt))
	}
	for _, r := range rs {
		p = colfmt.AppendF64(p, r.Pos.Lat)
	}
	for _, r := range rs {
		p = colfmt.AppendF64(p, r.Pos.Lon)
	}
	for _, r := range rs {
		p = colfmt.AppendF64(p, r.RSSI)
	}
	for _, r := range rs {
		p = append(p, byte(r.Vendor))
	}
	for _, r := range rs {
		p = colfmt.AppendStr(p, r.ReporterID)
	}
	w.payload = p
	if err := colfmt.WriteFrameCRC(w.w, p); err != nil {
		return err
	}
	w.frames = append(w.frames, segFrame{offset: w.off, rowStart: w.rows, count: uint32(len(rs))})
	w.off += colfmt.FrameCRCSize(len(p))
	w.rows += uint64(len(rs))
	w.batch = w.batch[:0]
	return nil
}

// finish writes the index block and trailer, fsyncs, and renames the
// temp file into place. The rename is the commit point.
func (w *segmentWriter) finish() (err error) {
	defer func() {
		if err != nil {
			w.f.Close()
			os.Remove(w.path + ".tmp")
		}
	}()
	if len(w.batch) > 0 {
		if err := w.writeFrame(); err != nil {
			return err
		}
	}
	indexOffset := w.off
	p := w.payload[:0]
	p = colfmt.AppendU32(p, uint32(len(w.frames)))
	for _, fr := range w.frames {
		p = colfmt.AppendU64(p, uint64(fr.offset))
		p = colfmt.AppendU64(p, fr.rowStart)
		p = colfmt.AppendU32(p, fr.count)
	}
	p = colfmt.AppendU32(p, uint32(len(w.entries)))
	for _, e := range w.entries {
		p = colfmt.AppendStr(p, e.tag)
		p = colfmt.AppendU64(p, e.startSeq)
		p = colfmt.AppendU64(p, e.rowStart)
		p = colfmt.AppendU32(p, e.rowCount)
		p = colfmt.AppendI64(p, e.lastAt)
		p = colfmt.AppendF64(p, e.lastPos.Lat)
		p = colfmt.AppendF64(p, e.lastPos.Lon)
		hasLast := byte(0)
		if e.hasLast {
			hasLast = 1
		}
		p = append(p, hasLast)
	}
	var mark [4]byte
	binary.LittleEndian.PutUint32(mark[:], colfmt.IndexMark)
	if _, err := w.w.Write(mark[:]); err != nil {
		return err
	}
	if err := colfmt.WriteFrameCRC(w.w, p); err != nil {
		return err
	}
	if err := colfmt.WriteTrailer(w.w, indexOffset, segTrailerMagic); err != nil {
		return err
	}
	if err := w.w.Flush(); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	if err := w.f.Close(); err != nil {
		return err
	}
	if err := os.Rename(w.path+".tmp", w.path); err != nil {
		return err
	}
	return syncDir(filepath.Dir(w.path))
}

// abort discards a partially written segment.
func (w *segmentWriter) abort() {
	w.f.Close()
	os.Remove(w.path + ".tmp")
}

// syncDir fsyncs a directory so a just-renamed file survives a crash.
// Filesystems that refuse directory fsync (some CI overlays) are not an
// error — the rename itself was still atomic.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	d.Sync()
	return d.Close()
}

// segment is an open immutable segment: the loaded index plus a pread
// handle. Safe for concurrent use — the metadata never changes and
// ReadAt is positionless.
type segment struct {
	name    string // filename within the store directory
	f       *os.File
	size    int64
	rows    uint64
	frames  []segFrame
	entries []segTagEntry // sorted by tag
}

// openSegment loads and validates a segment's index. Any checksum or
// shape failure is returned (the tier quarantines on it); the data
// frames are verified lazily, on read.
func openSegment(path string) (*segment, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	s, err := loadSegment(f, filepath.Base(path))
	if err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

func loadSegment(f *os.File, name string) (*segment, error) {
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := fi.Size()
	magic := make([]byte, len(segMagic))
	if _, err := f.ReadAt(magic, 0); err != nil {
		return nil, fmt.Errorf("store: segment header: %w", err)
	}
	if string(magic) != segMagic {
		return nil, fmt.Errorf("store: bad segment magic %q", magic)
	}
	indexOffset, err := colfmt.ReadTrailer(f, size, segTrailerMagic)
	if err != nil {
		return nil, fmt.Errorf("store: segment: %w", err)
	}
	var mark [4]byte
	if _, err := f.ReadAt(mark[:], indexOffset); err != nil {
		return nil, fmt.Errorf("store: segment index: %w", err)
	}
	if binary.LittleEndian.Uint32(mark[:]) != colfmt.IndexMark {
		return nil, fmt.Errorf("store: segment index sentinel missing at offset %d", indexOffset)
	}
	payload, err := colfmt.ReadFrameCRCAt(f, indexOffset+4)
	if err != nil {
		return nil, fmt.Errorf("store: segment index: %w", err)
	}
	d := colfmt.NewDec(payload)
	s := &segment{name: name, f: f, size: size}
	frameCount := d.U32()
	if d.Err() != nil || int(frameCount) > len(payload) {
		return nil, fmt.Errorf("store: implausible segment frame count %d", frameCount)
	}
	s.frames = make([]segFrame, frameCount)
	for i := range s.frames {
		fr := &s.frames[i]
		fr.offset = int64(d.U64())
		fr.rowStart = d.U64()
		fr.count = d.U32()
		if d.Err() == nil && (fr.offset < int64(len(segMagic)) || fr.offset >= indexOffset ||
			fr.rowStart != s.rows || fr.count == 0) {
			return nil, fmt.Errorf("store: segment frame %d index entry is malformed", i)
		}
		s.rows += uint64(fr.count)
	}
	tagCount := d.U32()
	if d.Err() != nil || int(tagCount) > len(payload) {
		return nil, fmt.Errorf("store: implausible segment tag count %d", tagCount)
	}
	s.entries = make([]segTagEntry, tagCount)
	for i := range s.entries {
		e := &s.entries[i]
		e.tag = d.Str()
		e.startSeq = d.U64()
		e.rowStart = d.U64()
		e.rowCount = d.U32()
		e.lastAt = d.I64()
		e.lastPos.Lat = d.F64()
		e.lastPos.Lon = d.F64()
		e.hasLast = d.U8() != 0
		if d.Err() == nil {
			if i > 0 && e.tag <= s.entries[i-1].tag {
				return nil, fmt.Errorf("store: segment tag index out of order at %q", e.tag)
			}
			if e.rowStart+uint64(e.rowCount) > s.rows {
				return nil, fmt.Errorf("store: segment tag %q row range exceeds %d rows", e.tag, s.rows)
			}
		}
	}
	if err := d.Close(); err != nil {
		return nil, fmt.Errorf("store: segment index: %w", err)
	}
	return s, nil
}

// lookup returns the tag's index entry, or nil.
func (s *segment) lookup(tag string) *segTagEntry {
	i := sort.Search(len(s.entries), func(i int) bool { return s.entries[i].tag >= tag })
	if i < len(s.entries) && s.entries[i].tag == tag {
		return &s.entries[i]
	}
	return nil
}

// readTagRange returns the entry's rows with persisted-sequence numbers
// in [a, b), oldest-first, with TagID attached. Only the data frames
// overlapping the requested row range are read and CRC-verified. A
// non-nil tr gets a pread and a decode span per frame touched (a cold
// read is ~100 µs+, so the four clock reads per frame are in the
// noise).
func (s *segment) readTagRange(e *segTagEntry, a, b uint64, tr *otrace.Trace) ([]trace.Report, error) {
	end := e.startSeq + uint64(e.rowCount)
	if a < e.startSeq || b > end || a > b {
		return nil, fmt.Errorf("store: segment %s tag %q: range [%d,%d) outside run [%d,%d)", s.name, e.tag, a, b, e.startSeq, end)
	}
	if a == b {
		return nil, nil
	}
	n := int(b - a)
	lo := e.rowStart + (a - e.startSeq) // first wanted global row
	hi := e.rowStart + (b - e.startSeq) // one past the last
	// First frame whose row range reaches lo.
	fi := sort.Search(len(s.frames), func(i int) bool {
		return s.frames[i].rowStart+uint64(s.frames[i].count) > lo
	})
	out := make([]trace.Report, 0, n)
	for ; fi < len(s.frames) && s.frames[fi].rowStart < hi; fi++ {
		fr := s.frames[fi]
		pread := tr.Start(otrace.PlaneStore, "store.pread", 0, int64(fi))
		payload, err := colfmt.ReadFrameCRCAt(s.f, fr.offset)
		tr.SetAttrs(pread, int64(len(payload)), int64(fi))
		tr.Finish(pread)
		if err != nil {
			return nil, fmt.Errorf("store: segment %s frame %d: %w", s.name, fi, err)
		}
		a, b := uint64(0), uint64(fr.count)
		if lo > fr.rowStart {
			a = lo - fr.rowStart
		}
		if hi < fr.rowStart+uint64(fr.count) {
			b = hi - fr.rowStart
		}
		decode := tr.Start(otrace.PlaneStore, "store.decode", int64(b-a), int64(fr.count))
		out, err = decodeSegFrameRange(payload, out, fr.count, a, b)
		tr.Finish(decode)
		if err != nil {
			return nil, fmt.Errorf("store: segment %s frame %d: %w", s.name, fi, err)
		}
	}
	if len(out) != n {
		return nil, fmt.Errorf("store: segment %s tag %q: frames yielded %d of %d rows", s.name, e.tag, len(out), n)
	}
	for i := range out {
		out[i].TagID = e.tag
	}
	return out, nil
}

// decodeSegFrameRange appends rows [a, b) of one data frame payload to
// dst, decoding only the wanted window of each column: rows outside it
// cost one offset bump on the fixed-width columns and one length read
// on the string column — no Report struct and no ReporterID allocation.
// That keeps a partial-history read from billing for the whole
// segRowsPerFrame frame it lands in. want is the index's row count for
// the frame; a header disagreeing with it is corruption. TagID is left
// empty — the caller attaches it.
func decodeSegFrameRange(payload []byte, dst []trace.Report, want uint32, a, b uint64) ([]trace.Report, error) {
	d := colfmt.NewDec(payload)
	count := d.U32()
	fixed := int(count) * (8 + 8 + 8 + 8 + 8 + 1)
	if d.Err() != nil || fixed < 0 || d.Off()+fixed > len(payload) {
		return nil, fmt.Errorf("store: segment frame count %d exceeds payload", count)
	}
	if count != want {
		return nil, fmt.Errorf("store: segment frame holds %d rows, index says %d", count, want)
	}
	if a > b || b > uint64(count) {
		return nil, fmt.Errorf("store: segment frame row range [%d,%d) outside %d rows", a, b, count)
	}
	pre, post := int(a), int(count)-int(b)
	at := len(dst)
	out := dst
	for i := 0; i < int(b-a); i++ {
		out = append(out, trace.Report{})
	}
	rows := out[at:]
	d.Skip(pre * 8)
	for i := range rows {
		rows[i].T = decTime(d.I64())
	}
	d.Skip(post*8 + pre*8)
	for i := range rows {
		rows[i].HeardAt = decTime(d.I64())
	}
	d.Skip(post*8 + pre*8)
	for i := range rows {
		rows[i].Pos.Lat = d.F64()
	}
	d.Skip(post*8 + pre*8)
	for i := range rows {
		rows[i].Pos.Lon = d.F64()
	}
	d.Skip(post*8 + pre*8)
	for i := range rows {
		rows[i].RSSI = d.F64()
	}
	d.Skip(post*8 + pre)
	for i := range rows {
		rows[i].Vendor = trace.Vendor(d.U8())
	}
	d.Skip(post)
	for i := 0; i < pre; i++ {
		d.SkipStr()
	}
	for i := range rows {
		rows[i].ReporterID = d.Str()
		if d.Err() != nil {
			return nil, fmt.Errorf("store: segment frame: %w", d.Err())
		}
	}
	for i := 0; i < post; i++ {
		d.SkipStr()
	}
	if err := d.Close(); err != nil {
		return nil, fmt.Errorf("store: segment frame: %w", err)
	}
	return out, nil
}

// close releases the file handle.
func (s *segment) close() error { return s.f.Close() }
