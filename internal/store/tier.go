package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tagsim/internal/geo"
	"tagsim/internal/obs"
	otrace "tagsim/internal/obs/trace"
	"tagsim/internal/runner"
	"tagsim/internal/trace"
)

// The tiered persistent store stacks three layers under the unchanged
// Store API:
//
//	WAL (durability)  →  memtable (the existing sharded store)  →
//	immutable columnar segments (history at rest)
//
// Every write appends to the WAL, then mutates the memtable exactly as
// the in-memory store would. When the memtable's retained history (or
// the WAL) crosses its byte threshold, a flush drains every dirty tag's
// ring into one immutable segment, rotates the WAL, and commits the new
// shape in the manifest — so a restart opens the manifest, rebuilds the
// tag universe from segment indexes alone (no data frames), and replays
// only the WAL tail. Background size-tiered compaction merges adjacent
// segments and physically drops rows the Retention policy makes
// invisible. Resident memory per tag is its state cell plus whatever
// landed since the last flush; full history lives on disk.
//
// Read merging is the subtle part, and it is coordinated by one number:
// tagView.persisted, the count of the tag's history rows on disk. A
// reader serving the newest n rows takes the ring first and fetches the
// remainder — persisted-sequence range [persisted-need, persisted) —
// from the segment list, newest segment first. Flush publishes the new
// segment list BEFORE bumping persisted and truncating rings, so a
// racing lock-free reader sees either the old view (ring still holds
// the rows; extra disk copies are above its persisted bound and
// filtered out by the seq range) or the new view (rows now below the
// bound and on disk) — never a gap, with no read-side locks or retries.
var tieredEnabled atomic.Bool

func init() { tieredEnabled.Store(true) }

// SetTiered toggles the tiered persistence layer (default on). When
// off, Open ignores its directory and returns a plain in-memory store —
// the escape hatch back to the historical engine, mirroring
// SetLockedReads. It returns the previous setting. Stores already open
// keep their mode.
func SetTiered(enabled bool) (was bool) { return tieredEnabled.Swap(enabled) }

// TieredEnabled reports whether Open builds tiered stores.
func TieredEnabled() bool { return tieredEnabled.Load() }

// Tiering configures a tiered store. The policy fields mirror the Store
// fields of the same names; they live here too because Open must know
// them before WAL replay, not after.
type Tiering struct {
	// Dir is the store directory (manifest, WAL, segments). Empty means
	// in-memory only — Open degenerates to New.
	Dir string
	// MemtableBytes is the flush threshold on retained in-memory history
	// (default 8 MiB). The WAL also forces a flush at 4x this, so a
	// history-less store's log stays bounded too.
	MemtableBytes int64
	// WALSyncBytes is the fsync batch size (default 1 MiB): the WAL is
	// fsynced every time this many bytes accumulate, trading a bounded
	// crash-loss window for not paying an fsync per report.
	WALSyncBytes int64
	// Retention is the per-tag history visibility and compaction policy.
	Retention Retention
	// MinUpdateInterval and KeepHistory are Store's policy knobs.
	MinUpdateInterval time.Duration
	KeepHistory       bool
	// CompactFanin is how many adjacent segments one compaction merges
	// (default 4, min 2).
	CompactFanin int
	// CompactWorkers sizes the runner.Pool decoding tag runs during
	// compaction (default min(4, GOMAXPROCS)).
	CompactWorkers int
	// DisableCompaction keeps segments as flushed (tests, forensics).
	DisableCompaction bool
}

// manifestName is the store directory's root file: the manifest is the
// single source of truth for which WAL and segments are live, and it
// only ever changes by atomic rename.
const manifestName = "MANIFEST.json"

// tierManifest is the on-disk manifest. Accepted/Rejected (and the
// per-shard splits) are the counter totals as of the WAL's creation —
// the replay base the WAL tail's records add onto.
type tierManifest struct {
	Gen           uint64   `json:"gen"`
	WAL           string   `json:"wal"`
	NShards       int      `json:"nshards"`
	Accepted      uint64   `json:"accepted"`
	Rejected      uint64   `json:"rejected"`
	ShardAccepted []uint64 `json:"shard_accepted,omitempty"`
	ShardRejected []uint64 `json:"shard_rejected,omitempty"`
	Segments      []string `json:"segments"`
}

// segmentList is the atomically swapped set of live segments, oldest
// first. The slice is immutable once published.
type segmentList struct {
	segs []*segment
}

// tier is the persistence state hanging off a tiered Store.
type tier struct {
	cfg           Tiering
	dir           string
	walFlushBytes uint64

	// list is the live segment set (lock-free loads). listMu guards
	// swaps, the manifest, and the obsolete set. Lock order: shard locks
	// may be held when listMu is taken, never the reverse.
	list   atomic.Pointer[segmentList]
	listMu sync.Mutex
	man    tierManifest
	// obsolete holds replaced/quarantined segments whose files are gone
	// or renamed but whose handles racing readers may still hold; they
	// close with the store.
	obsolete []*segment

	wal      atomic.Pointer[walWriter]
	walName  string // guarded by flushMu
	walBytes atomic.Uint64
	memBytes atomic.Uint64

	// flushMu single-flights flushes; compactMu single-flights
	// compaction passes (background loop vs CompactNow).
	flushMu   sync.Mutex
	compactMu sync.Mutex

	// walRecords/walFsyncs accumulate the totals of retired WALs so the
	// exported counters stay monotonic across rotations (the active
	// writer's own counts reset with each rotation).
	walRecords atomic.Uint64
	walFsyncs  atomic.Uint64

	flushes        atomic.Uint64
	compactions    atomic.Uint64
	compactedBytes atomic.Uint64
	quarantined    atomic.Uint64
	readErrs       atomic.Uint64

	pool      *runner.Pool
	compactCh chan struct{}
	done      chan struct{}
	wg        sync.WaitGroup
	closed    atomic.Bool

	errMu    sync.Mutex
	firstErr error
}

// setErr records the first persistence failure. The store keeps serving
// from memory after one (degraded durability beats refusing reads); the
// error surfaces through TierErr and the stats plane.
func (t *tier) setErr(err error) {
	if err == nil {
		return
	}
	t.errMu.Lock()
	if t.firstErr == nil {
		t.firstErr = err
	}
	t.errMu.Unlock()
}

// TierErr returns the tier's first persistence failure, if any (nil for
// in-memory stores).
func (s *Store) TierErr() error {
	if s.tier == nil {
		return nil
	}
	s.tier.errMu.Lock()
	defer s.tier.errMu.Unlock()
	return s.tier.firstErr
}

// Tiered reports whether this store persists to disk.
func (s *Store) Tiered() bool { return s.tier != nil }

// TierStats is the storage tier's counter snapshot for the stats plane.
type TierStats struct {
	Enabled        bool   `json:"enabled"`
	Dir            string `json:"dir,omitempty"`
	Segments       int    `json:"segments"`
	SegmentBytes   int64  `json:"segment_bytes"`
	MemtableBytes  uint64 `json:"memtable_bytes"`
	WALBytes       uint64 `json:"wal_bytes"`
	WALRecords     uint64 `json:"wal_records"`
	WALFsyncs      uint64 `json:"wal_fsyncs"`
	Flushes        uint64 `json:"flushes"`
	Compactions    uint64 `json:"compactions"`
	CompactedBytes uint64 `json:"compacted_bytes"`
	Quarantined    uint64 `json:"quarantined"`
	ReadErrors     uint64 `json:"read_errors"`
	Err            string `json:"err,omitempty"`
}

// TierStats snapshots the storage tier (zero-valued, Enabled false, for
// in-memory stores).
func (s *Store) TierStats() TierStats {
	t := s.tier
	if t == nil {
		return TierStats{}
	}
	st := TierStats{
		Enabled:        true,
		Dir:            t.dir,
		MemtableBytes:  t.memBytes.Load(),
		Flushes:        t.flushes.Load(),
		Compactions:    t.compactions.Load(),
		CompactedBytes: t.compactedBytes.Load(),
		Quarantined:    t.quarantined.Load(),
		ReadErrors:     t.readErrs.Load(),
	}
	for _, seg := range t.list.Load().segs {
		st.Segments++
		st.SegmentBytes += seg.size
	}
	if w := t.wal.Load(); w != nil {
		bytes, records, fsyncs := w.stats()
		st.WALBytes = bytes
		st.WALRecords = t.walRecords.Load() + records
		st.WALFsyncs = t.walFsyncs.Load() + fsyncs
	}
	if err := s.TierErr(); err != nil {
		st.Err = err.Error()
	}
	return st
}

// Open creates or recovers a tiered store in cfg.Dir with the given
// shard count. With no directory — or with SetTiered(false) in effect —
// it returns a plain in-memory store carrying the same policy, which is
// what makes the tiered engine a drop-in layer rather than a fork.
func Open(nShards int, cfg Tiering) (*Store, error) {
	if cfg.MemtableBytes <= 0 {
		cfg.MemtableBytes = 8 << 20
	}
	if cfg.WALSyncBytes <= 0 {
		cfg.WALSyncBytes = 1 << 20
	}
	if cfg.CompactFanin < 2 {
		cfg.CompactFanin = 4
	}
	if cfg.CompactWorkers <= 0 {
		cfg.CompactWorkers = min(4, runtime.GOMAXPROCS(0))
	}
	s := New(nShards)
	s.MinUpdateInterval = cfg.MinUpdateInterval
	s.KeepHistory = cfg.KeepHistory
	s.Retention = cfg.Retention
	if cfg.Dir == "" || !TieredEnabled() {
		return s, nil
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	t := &tier{
		cfg: cfg, dir: cfg.Dir,
		walFlushBytes: 4 * uint64(cfg.MemtableBytes),
		compactCh:     make(chan struct{}, 1),
		done:          make(chan struct{}),
	}
	t.list.Store(&segmentList{})
	if err := t.recover(s); err != nil {
		return nil, err
	}
	s.tier = t
	t.pool = runner.NewPool(cfg.CompactWorkers)
	if !cfg.DisableCompaction {
		t.wg.Add(1)
		go t.compactLoop(s)
		t.kickCompactor()
	}
	return s, nil
}

func segFileName(gen uint64) string { return fmt.Sprintf("seg-%08d.seg", gen) }
func walFileName(gen uint64) string { return fmt.Sprintf("wal-%08d.wal", gen) }

// recover loads the manifest (or initializes a fresh directory),
// rebuilds the tag universe from segment indexes, and replays the WAL
// tail into the memtable.
func (t *tier) recover(s *Store) error {
	mpath := filepath.Join(t.dir, manifestName)
	data, err := os.ReadFile(mpath)
	if errors.Is(err, fs.ErrNotExist) {
		// Fresh directory: gen 1, empty WAL, no segments.
		t.man = tierManifest{Gen: 1, WAL: walFileName(1), NShards: len(s.shards)}
		w, err := createWAL(filepath.Join(t.dir, t.man.WAL), uint64(t.cfg.WALSyncBytes))
		if err != nil {
			return err
		}
		t.wal.Store(w)
		t.walName = t.man.WAL
		t.walBytes.Store(uint64(len(walMagic)))
		return t.writeManifest()
	}
	if err != nil {
		return err
	}
	if err := json.Unmarshal(data, &t.man); err != nil {
		return fmt.Errorf("store: manifest %s: %w", mpath, err)
	}
	// Open the manifest's segments, quarantining any that fail their
	// checksum or shape validation: a corrupt segment is renamed aside
	// and counted, never served.
	var segs []*segment
	names := t.man.Segments[:0:0]
	for _, name := range t.man.Segments {
		path := filepath.Join(t.dir, name)
		seg, err := openSegment(path)
		if err != nil {
			os.Rename(path, path+".quarantine")
			t.quarantined.Add(1)
			t.setErr(fmt.Errorf("store: quarantined segment %s: %w", name, err))
			continue
		}
		segs = append(segs, seg)
		names = append(names, name)
	}
	t.man.Segments = names
	t.list.Store(&segmentList{segs: segs})
	t.sweepOrphans()
	// Rebuild the tag universe from segment indexes, oldest to newest so
	// later entries override: persisted row counts, last-seen state, and
	// registration — no data frame is read.
	for _, seg := range segs {
		for i := range seg.entries {
			e := &seg.entries[i]
			sh := s.shardFor(e.tag)
			st, _ := sh.stateLocked(e.tag)
			if end := e.startSeq + uint64(e.rowCount); end > st.persisted {
				st.persisted = end
			}
			if e.hasLast {
				at := decTime(e.lastAt)
				if !st.hasLast || at.After(st.lastAt) {
					st.lastPos, st.lastAt, st.hasLast = e.lastPos, at, true
				}
			}
			st.publish()
			sh.epoch.Add(1)
		}
	}
	// Counters resume from the manifest's replay base.
	s.accepted.Store(t.man.Accepted)
	s.rejected.Store(t.man.Rejected)
	if t.man.NShards == len(s.shards) &&
		len(t.man.ShardAccepted) == len(s.shards) && len(t.man.ShardRejected) == len(s.shards) {
		for i := range s.shards {
			s.shards[i].accepted.Store(t.man.ShardAccepted[i])
			s.shards[i].rejected.Store(t.man.ShardRejected[i])
		}
	}
	// Replay the WAL tail: every record was already accepted (or
	// rejected) once, so replay applies unconditionally — identical
	// prior state makes the original decisions self-consistent.
	walPath := filepath.Join(t.dir, t.man.WAL)
	records, lastGood, err := walReplay(walPath)
	if err != nil {
		return err
	}
	for _, rec := range records {
		sh := s.shardFor(rec.tagID)
		switch rec.kind {
		case walApply:
			r := rec.report
			at := seenAt(r)
			st, _ := sh.stateLocked(rec.tagID)
			if !st.hasLast || at.After(st.lastAt) {
				st.lastPos, st.lastAt, st.hasLast = r.Pos, at, true
			}
			if s.KeepHistory {
				st.appendHistory(r, s.keepLast())
				t.memBytes.Add(reportBytes(r))
			}
			st.publish()
			sh.epoch.Add(1)
			s.accepted.Add(1)
			sh.accepted.Add(1)
			sh.markDirtyLocked(rec.tagID)
		case walRegister:
			if _, created := sh.stateLocked(rec.tagID); created {
				sh.epoch.Add(1)
			}
			sh.markDirtyLocked(rec.tagID)
		case walReject:
			s.rejected.Add(1)
			sh.rejected.Add(1)
		}
	}
	w, err := openWALAppend(walPath, lastGood, uint64(t.cfg.WALSyncBytes))
	if err != nil {
		return err
	}
	t.wal.Store(w)
	t.walName = t.man.WAL
	t.walBytes.Store(uint64(lastGood))
	return nil
}

// sweepOrphans removes store files the manifest does not reference:
// temp files and the orphans a crash between a rename and the manifest
// commit leaves behind (their contents are still covered by the WAL the
// manifest does reference). Quarantined files are kept for forensics.
func (t *tier) sweepOrphans() {
	live := map[string]bool{manifestName: true, t.man.WAL: true}
	for _, name := range t.man.Segments {
		live[name] = true
	}
	entries, err := os.ReadDir(t.dir)
	if err != nil {
		return
	}
	for _, de := range entries {
		name := de.Name()
		if live[name] || strings.HasSuffix(name, ".quarantine") {
			continue
		}
		if strings.HasSuffix(name, ".tmp") ||
			(strings.HasPrefix(name, "seg-") && strings.HasSuffix(name, ".seg")) ||
			(strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".wal")) {
			os.Remove(filepath.Join(t.dir, name))
		}
	}
}

// writeManifest atomically replaces the manifest (temp + rename + dir
// sync). Callers hold listMu or have exclusive access (recovery).
func (t *tier) writeManifest() error {
	data, err := json.MarshalIndent(&t.man, "", "  ")
	if err != nil {
		return err
	}
	tmp := filepath.Join(t.dir, manifestName+".tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(append(data, '\n')); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(t.dir, manifestName)); err != nil {
		return err
	}
	return syncDir(t.dir)
}

// reportBytes approximates a report's resident cost in a history ring —
// the struct plus its string payloads — for the flush threshold.
func reportBytes(r trace.Report) uint64 {
	return uint64(96 + len(r.TagID) + len(r.ReporterID))
}

// markDirtyLocked records that a tag's state changed since the last
// flush. The shard lock must be held.
func (sh *shard) markDirtyLocked(tagID string) {
	if sh.flushDirty == nil {
		sh.flushDirty = make(map[string]struct{})
	}
	sh.flushDirty[tagID] = struct{}{}
}

// logApply write-ahead-logs an accepted (or restored) report and does
// the memtable-side accounting. The shard lock must be held, which is
// what keeps a tag's WAL record order equal to its apply order.
func (t *tier) logApply(sh *shard, r trace.Report, retained bool) {
	total, err := t.wal.Load().append(walRecord{kind: walApply, report: r})
	t.walBytes.Store(total)
	t.setErr(err)
	sh.markDirtyLocked(r.TagID)
	if retained {
		t.memBytes.Add(reportBytes(r))
	}
}

// logRegister write-ahead-logs a registration. Shard lock held.
func (t *tier) logRegister(sh *shard, tagID string) {
	total, err := t.wal.Load().append(walRecord{kind: walRegister, tagID: tagID})
	t.walBytes.Store(total)
	t.setErr(err)
	sh.markDirtyLocked(tagID)
}

// logReject write-ahead-logs a rejected report (counters replay from
// these; no state changes). Shard lock held.
func (t *tier) logReject(tagID string) {
	total, err := t.wal.Load().append(walRecord{kind: walReject, tagID: tagID})
	t.walBytes.Store(total)
	t.setErr(err)
}

// maybeFlush flushes when the memtable or WAL crosses its threshold.
// Non-blocking: if a flush is already running, the thresholds are its
// problem. Callers must not hold any shard lock.
func (t *tier) maybeFlush(s *Store) {
	if t.memBytes.Load() < uint64(t.cfg.MemtableBytes) && t.walBytes.Load() < t.walFlushBytes {
		return
	}
	if !t.flushMu.TryLock() {
		return
	}
	defer t.flushMu.Unlock()
	if t.memBytes.Load() < uint64(t.cfg.MemtableBytes) && t.walBytes.Load() < t.walFlushBytes {
		return
	}
	t.setErr(t.flush(s))
}

// Flush forces a flush of the memtable to a new segment and rotates the
// WAL (no-op for in-memory stores). Graceful shutdown calls it so a
// restart replays nothing.
func (s *Store) Flush() error {
	t := s.tier
	if t == nil {
		return nil
	}
	t.flushMu.Lock()
	defer t.flushMu.Unlock()
	err := t.flush(s)
	t.setErr(err)
	return err
}

// flushTag is one dirty tag's state captured for the segment writer.
type flushTag struct {
	id   string
	st   *tagState
	rows []trace.Report
}

// flush drains every dirty tag's ring into one immutable segment,
// publishes it, truncates the rings, rotates the WAL, and commits the
// manifest. It runs under every shard lock: writers pause for the
// drain, but lock-free readers never block — the publish order (segment
// list first, then per-tag persisted bumps) keeps them consistent
// throughout, as described at the top of this file. Caller holds
// flushMu. The wrapper times the whole flush into its histogram and a
// self-rooted tier trace (flushes are background work with no request
// to hang spans off).
func (t *tier) flush(s *Store) error {
	var t0 time.Time
	if obs.Enabled() {
		t0 = time.Now()
	}
	tr := otrace.Begin(otrace.PlaneTier, "tier.flush")
	err := t.flushTraced(s, tr)
	obs.Since(obsFlushHist, t0)
	tr.End(flushThreshold)
	return err
}

func (t *tier) flushTraced(s *Store, tr *otrace.Trace) error {
	drain := tr.Start(otrace.PlaneTier, "flush.drain", 0, 0)
	for i := range s.shards {
		s.shards[i].mu.Lock()
	}
	defer func() {
		for i := range s.shards {
			s.shards[i].mu.Unlock()
		}
	}()
	var tags []flushTag
	for i := range s.shards {
		sh := &s.shards[i]
		for id := range sh.flushDirty {
			st := sh.getLocked(id)
			tags = append(tags, flushTag{id: id, st: st, rows: st.historyCopy()})
		}
	}
	if len(tags) == 0 && t.walBytes.Load() < t.walFlushBytes {
		tr.Finish(drain)
		return nil
	}
	sort.Slice(tags, func(i, j int) bool { return tags[i].id < tags[j].id })
	tr.SetAttrs(drain, int64(len(tags)), int64(t.memBytes.Load()))
	tr.Finish(drain)

	t.listMu.Lock()
	defer t.listMu.Unlock()
	t.man.Gen++
	gen := t.man.Gen

	var seg *segment
	if len(tags) > 0 {
		rows := 0
		for _, ft := range tags {
			rows += len(ft.rows)
		}
		write := tr.Start(otrace.PlaneTier, "flush.segment", int64(len(tags)), int64(rows))
		name := segFileName(gen)
		path := filepath.Join(t.dir, name)
		w, err := createSegment(path)
		if err != nil {
			return err
		}
		for _, ft := range tags {
			st := ft.st
			if err := w.addTag(ft.id, st.persisted, ft.rows, st.lastPos, st.lastAt, st.hasLast); err != nil {
				w.abort()
				return err
			}
		}
		if err := w.finish(); err != nil {
			return err
		}
		if seg, err = openSegment(path); err != nil {
			os.Remove(path)
			return fmt.Errorf("store: flushed segment failed validation: %w", err)
		}
		// Publish the segment list first …
		old := t.list.Load().segs
		segs := make([]*segment, 0, len(old)+1)
		segs = append(segs, old...)
		segs = append(segs, seg)
		t.list.Store(&segmentList{segs: segs})
		t.man.Segments = append(t.man.Segments, name)
		// … then move the rows below each tag's persisted bound and
		// truncate the rings.
		for _, ft := range tags {
			st := ft.st
			st.persisted += uint64(len(ft.rows))
			st.hist, st.histAt = nil, 0
			st.publish()
		}
		tr.Finish(write)
	}
	for i := range s.shards {
		s.shards[i].flushDirty = nil
	}
	t.memBytes.Store(0)

	// Rotate the WAL: records up to here are covered by the segments.
	rotate := tr.Start(otrace.PlaneTier, "flush.rotate", 0, 0)
	oldWAL, oldWALName := t.wal.Load(), t.walName
	newName := walFileName(gen)
	w, err := createWAL(filepath.Join(t.dir, newName), uint64(t.cfg.WALSyncBytes))
	if err != nil {
		return err
	}
	t.wal.Store(w)
	t.walName = newName
	t.walBytes.Store(uint64(len(walMagic)))
	oldWAL.close()
	_, records, fsyncs := oldWAL.stats()
	t.walRecords.Add(records)
	t.walFsyncs.Add(fsyncs)

	// Commit. Counters read under every shard lock are a consistent
	// replay base. The old WAL is deleted only after the manifest that
	// stops referencing it is durable.
	t.man.WAL = newName
	t.man.Accepted = s.accepted.Load()
	t.man.Rejected = s.rejected.Load()
	t.man.NShards = len(s.shards)
	t.man.ShardAccepted = t.man.ShardAccepted[:0]
	t.man.ShardRejected = t.man.ShardRejected[:0]
	for i := range s.shards {
		t.man.ShardAccepted = append(t.man.ShardAccepted, s.shards[i].accepted.Load())
		t.man.ShardRejected = append(t.man.ShardRejected, s.shards[i].rejected.Load())
	}
	if err := t.writeManifest(); err != nil {
		return err
	}
	os.Remove(filepath.Join(t.dir, oldWALName))
	tr.Finish(rotate)
	t.flushes.Add(1)
	obsFlushes.Inc()
	t.kickCompactor()
	return nil
}

// Sync forces the WAL's buffered records to disk — the group-commit
// barrier (no-op for in-memory stores).
func (s *Store) Sync() error {
	if s.tier == nil {
		return nil
	}
	return s.tier.wal.Load().sync()
}

// Close flushes, stops the compactor, and releases every file handle.
// The manifest it leaves behind restarts warm with an empty WAL tail.
// Safe to call once; reads after Close may serve stale or fail.
func (s *Store) Close() error {
	t := s.tier
	if t == nil {
		return nil
	}
	if t.closed.Swap(true) {
		return nil
	}
	close(t.done)
	t.wg.Wait()
	err := s.Flush()
	if w := t.wal.Load(); w != nil {
		if cerr := w.close(); err == nil {
			err = cerr
		}
	}
	t.pool.Close()
	t.listMu.Lock()
	for _, seg := range t.list.Load().segs {
		seg.close()
	}
	for _, seg := range t.obsolete {
		seg.close()
	}
	t.obsolete = nil
	t.listMu.Unlock()
	return err
}

// readDisk appends the tag's persisted rows with sequence numbers in
// [hi-need, hi) to out, oldest-first, scanning the segment list newest
// first. A segment that fails its CRC is quarantined and its rows
// omitted (counted in ReadErrors) — corrupt bytes are never served.
func (t *tier) readDisk(tagID string, hi uint64, need int, out []trace.Report, tr *otrace.Trace) []trace.Report {
	if t == nil || need <= 0 || hi == 0 {
		return out
	}
	lo := uint64(0)
	if uint64(need) < hi {
		lo = hi - uint64(need)
	}
	segs := t.list.Load().segs
	var chunks [][]trace.Report
	for i := len(segs) - 1; i >= 0 && hi > lo; i-- {
		seg := segs[i]
		e := seg.lookup(tagID)
		if e == nil {
			continue
		}
		s0, s1 := e.startSeq, e.startSeq+uint64(e.rowCount)
		if s0 >= hi || s1 <= lo {
			continue
		}
		a, b := max(s0, lo), min(s1, hi)
		rows, err := seg.readTagRange(e, a, b, tr)
		if err != nil {
			tr.Event(otrace.PlaneTier, "tier.quarantine", int64(i), 0)
			t.readErrs.Add(1)
			t.setErr(err)
			t.quarantine(seg)
			continue
		}
		if len(rows) > 0 {
			chunks = append(chunks, rows)
		}
		hi = a
	}
	for i := len(chunks) - 1; i >= 0; i-- {
		out = append(out, chunks[i]...)
	}
	return out
}

// quarantine removes a segment from the live list and renames its file
// aside. Racing readers holding the old list keep their (open, renamed)
// handle; the store serves the surviving rows.
func (t *tier) quarantine(bad *segment) {
	// Every quarantine is an incident: the self-rooted trace captures
	// unconditionally (quarantineThreshold is a zero floor, no p99).
	qtr := otrace.Begin(otrace.PlaneTier, "tier.quarantine")
	defer qtr.End(quarantineThreshold)
	t.listMu.Lock()
	defer t.listMu.Unlock()
	cur := t.list.Load().segs
	idx := -1
	for i, seg := range cur {
		if seg == bad {
			idx = i
			break
		}
	}
	if idx < 0 {
		return // already quarantined or compacted away
	}
	segs := make([]*segment, 0, len(cur)-1)
	segs = append(segs, cur[:idx]...)
	segs = append(segs, cur[idx+1:]...)
	t.list.Store(&segmentList{segs: segs})
	names := make([]string, 0, len(segs))
	for _, seg := range segs {
		names = append(names, seg.name)
	}
	t.man.Segments = names
	path := filepath.Join(t.dir, bad.name)
	os.Rename(path, path+".quarantine")
	t.obsolete = append(t.obsolete, bad)
	t.quarantined.Add(1)
	obsQuarantines.Inc()
	qtr.SetAttrs(0, int64(bad.size), int64(bad.rows))
	t.setErr(t.writeManifest())
}

// kickCompactor nudges the background loop (non-blocking).
func (t *tier) kickCompactor() {
	select {
	case t.compactCh <- struct{}{}:
	default:
	}
}

// compactLoop is the background compactor goroutine.
func (t *tier) compactLoop(s *Store) {
	defer t.wg.Done()
	for {
		select {
		case <-t.done:
			return
		case <-t.compactCh:
			t.compactPass(s)
		}
	}
}

// CompactNow runs compaction to quiescence synchronously (no-op for
// in-memory stores) — the deterministic entry point tests and the
// bench harness use instead of waiting on the background loop.
func (s *Store) CompactNow() error {
	if s.tier == nil {
		return nil
	}
	s.tier.compactPass(s)
	return s.TierErr()
}

// compactPass merges segment runs until no eligible run remains.
func (t *tier) compactPass(s *Store) {
	t.compactMu.Lock()
	defer t.compactMu.Unlock()
	for {
		run := t.pickRun()
		if run == nil {
			return
		}
		if err := t.compact(s, run); err != nil {
			t.setErr(err)
			return
		}
	}
}

// pickRun chooses the next adjacent run to merge: the cheapest
// CompactFanin-window whose sizes stay within an 8x spread (the
// size-tiered criterion — young small segments merge with their peers,
// not with one settled giant), or the oldest window once the list has
// doubled past the fan-in regardless of spread.
func (t *tier) pickRun() []*segment {
	segs := t.list.Load().segs
	fanin := t.cfg.CompactFanin
	if len(segs) < fanin {
		return nil
	}
	best, bestBytes := -1, int64(0)
	for i := 0; i+fanin <= len(segs); i++ {
		var total, mn, mx int64
		for j := i; j < i+fanin; j++ {
			sz := segs[j].size
			total += sz
			if j == i || sz < mn {
				mn = sz
			}
			if sz > mx {
				mx = sz
			}
		}
		if mx <= 8*mn && (best < 0 || total < bestBytes) {
			best, bestBytes = i, total
		}
	}
	if best < 0 {
		if len(segs) < 2*fanin {
			return nil
		}
		best = 0
	}
	run := make([]*segment, fanin)
	copy(run, segs[best:best+fanin])
	return run
}

// mergedTag is one tag's compacted run: surviving rows (oldest-first),
// the persisted-sequence number of the first survivor, and the last-seen
// state carried forward from the run's newest entry.
type mergedTag struct {
	tag      string
	startSeq uint64
	rows     []trace.Report
	lastAt   time.Time
	lastPos  geo.LatLon
	hasLast  bool
}

// compact merges one adjacent run into a single segment, dropping rows
// the Retention policy has already made invisible. Reader safety of the
// drop: a reader's visibility floor is computed from its (current,
// newer-or-equal) memtable state, so it is always at or above the floor
// used here — a dropped row is one no read could have returned.
func (t *tier) compact(s *Store, run []*segment) error {
	var t0 time.Time
	if obs.Enabled() {
		t0 = time.Now()
	}
	var runBytes int64
	for _, seg := range run {
		runBytes += seg.size
	}
	tr := otrace.Begin(otrace.PlaneTier, "tier.compact")
	tr.SetAttrs(0, int64(len(run)), runBytes)
	err := t.compactTraced(s, run, tr)
	obs.Since(obsCompactHist, t0)
	tr.End(compactThreshold)
	return err
}

func (t *tier) compactTraced(s *Store, run []*segment, tr *otrace.Trace) error {
	full := t.list.Load().segs
	// Union of the run's tags, sorted (entry lists are sorted, so a
	// merge would do; the simple collect+sort is not the hot path).
	var tags []string
	seen := make(map[string]struct{})
	for _, seg := range run {
		for i := range seg.entries {
			if _, ok := seen[seg.entries[i].tag]; !ok {
				seen[seg.entries[i].tag] = struct{}{}
				tags = append(tags, seg.entries[i].tag)
			}
		}
	}
	sort.Strings(tags)

	t.listMu.Lock()
	t.man.Gen++
	gen := t.man.Gen
	t.listMu.Unlock()
	name := segFileName(gen)
	path := filepath.Join(t.dir, name)
	w, err := createSegment(path)
	if err != nil {
		return err
	}
	keep := s.keepLast()
	window := s.Retention.KeepWindow

	// Decode and trim tag runs in parallel (bounded chunks), append to
	// the writer sequentially — the writer is single-stream by design.
	// The pool workers get no trace handle (a Trace is single-goroutine);
	// the merge span bounds the whole parallel phase instead.
	merge := tr.Start(otrace.PlaneTier, "compact.merge", int64(len(tags)), 0)
	const chunk = 512
	for base := 0; base < len(tags); base += chunk {
		n := min(chunk, len(tags)-base)
		slots := make([]mergedTag, n)
		errs := make([]error, n)
		t.pool.Run(n, func(_, j int) {
			slots[j], errs[j] = mergeTagRun(run, full, tags[base+j], keep, window)
		})
		for j := 0; j < n; j++ {
			if errs[j] != nil {
				w.abort()
				return errs[j]
			}
			m := &slots[j]
			if err := w.addTag(m.tag, m.startSeq, m.rows, m.lastPos, m.lastAt, m.hasLast); err != nil {
				w.abort()
				return err
			}
		}
	}
	if err := w.finish(); err != nil {
		return err
	}
	seg, err := openSegment(path)
	if err != nil {
		os.Remove(path)
		return fmt.Errorf("store: compacted segment failed validation: %w", err)
	}
	tr.SetAttrs(merge, int64(len(tags)), seg.size)
	tr.Finish(merge)

	// Swap the run for the merged segment at the same list position.
	swap := tr.Start(otrace.PlaneTier, "compact.swap", 0, 0)
	defer tr.Finish(swap)
	t.listMu.Lock()
	defer t.listMu.Unlock()
	cur := t.list.Load().segs
	idx := -1
	for i := range cur {
		if cur[i] == run[0] {
			idx = i
			break
		}
	}
	ok := idx >= 0 && idx+len(run) <= len(cur)
	for i := 0; ok && i < len(run); i++ {
		ok = cur[idx+i] == run[i]
	}
	if !ok {
		// The run changed under us (a quarantine); drop this output and
		// let the next pass re-pick.
		seg.close()
		os.Remove(path)
		return nil
	}
	segs := make([]*segment, 0, len(cur)-len(run)+1)
	segs = append(segs, cur[:idx]...)
	segs = append(segs, seg)
	segs = append(segs, cur[idx+len(run):]...)
	t.list.Store(&segmentList{segs: segs})
	names := make([]string, 0, len(segs))
	for _, sg := range segs {
		names = append(names, sg.name)
	}
	t.man.Segments = names
	if err := t.writeManifest(); err != nil {
		return err
	}
	var reclaimed int64
	for _, old := range run {
		reclaimed += old.size
		os.Remove(filepath.Join(t.dir, old.name))
		t.obsolete = append(t.obsolete, old)
	}
	t.compactions.Add(1)
	obsCompactions.Inc()
	t.compactedBytes.Add(uint64(reclaimed))
	return nil
}

// mergeTagRun concatenates one tag's rows across the run (oldest
// first), then drops the prefix below the retention floor. The floor's
// ceilings — the tag's highest persisted sequence and newest last-seen
// instant — come from the full segment list, so a run that holds only
// a tag's old middle rows is trimmed against the tag's true horizon,
// not its own.
func mergeTagRun(run, full []*segment, tag string, keep int, window time.Duration) (mergedTag, error) {
	m := mergedTag{tag: tag}
	type tagChunk struct {
		start uint64
		rows  []trace.Report
	}
	var chunks []tagChunk
	var endRun uint64
	for _, seg := range run {
		e := seg.lookup(tag)
		if e == nil {
			continue
		}
		rows, err := seg.readTagRange(e, e.startSeq, e.startSeq+uint64(e.rowCount), nil)
		if err != nil {
			return m, err
		}
		chunks = append(chunks, tagChunk{start: e.startSeq, rows: rows})
		endRun = e.startSeq + uint64(e.rowCount)
		// Run members are ordered oldest to newest, so the last entry
		// seen carries the freshest flushed last-seen state.
		m.startSeq = endRun
		m.lastPos, m.hasLast = e.lastPos, e.hasLast
		m.lastAt = decTime(e.lastAt)
	}
	// Ceilings across the whole live list (the memtable may be newer
	// still; using the flushed horizon only makes the trim more
	// conservative, never less safe).
	endFull, lastFull := endRun, m.lastAt
	for _, seg := range full {
		e := seg.lookup(tag)
		if e == nil {
			continue
		}
		if end := e.startSeq + uint64(e.rowCount); end > endFull {
			endFull = end
		}
		if e.hasLast {
			if at := decTime(e.lastAt); at.After(lastFull) {
				lastFull = at
			}
		}
	}
	var floor uint64
	if keep > 0 && endFull > uint64(keep) {
		floor = endFull - uint64(keep)
	}
	var rows []trace.Report
	startSeq := endRun
	for _, c := range chunks {
		skip := uint64(0)
		if floor > c.start {
			skip = min(floor-c.start, uint64(len(c.rows)))
		}
		part := c.rows[skip:]
		if len(part) == 0 {
			continue
		}
		if rows == nil {
			startSeq = c.start + skip
		} else if c.start+skip != startSeq+uint64(len(rows)) {
			return m, fmt.Errorf("store: tag %q rows not contiguous across compaction run (seq %d after %d)",
				tag, c.start+skip, startSeq+uint64(len(rows)))
		}
		rows = append(rows, part...)
	}
	if window > 0 && len(rows) > 0 && !lastFull.IsZero() {
		trimmed := trimWindow(rows, lastFull, window)
		startSeq += uint64(len(rows) - len(trimmed))
		rows = trimmed
	}
	m.rows = rows
	if len(rows) > 0 {
		m.startSeq = startSeq
	}
	return m, nil
}
