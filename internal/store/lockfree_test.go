package store

import (
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tagsim/internal/geo"
	"tagsim/internal/trace"
)

// lockModes runs f once per read path, restoring the global toggle.
func lockModes(t *testing.T, f func(t *testing.T, locked bool)) {
	t.Helper()
	for _, locked := range []bool{false, true} {
		was := SetLockedReads(locked)
		f(t, locked)
		SetLockedReads(was)
	}
}

// fillStore ingests a deterministic mixed sequence: rate-capped ingests
// (some rejected), a restore batch, and a bare registration.
func fillStore(s *Store, tags int) {
	for i := 0; i < tags; i++ {
		id := fmt.Sprintf("tag-%03d", i)
		for k := 0; k < 8; k++ {
			at := base.Add(time.Duration(k*i%7) * time.Minute) // some non-advancing -> rejected
			s.Ingest(trace.Report{T: at, HeardAt: at, TagID: id, Vendor: trace.VendorApple,
				Pos: geo.LatLon{Lat: float64(i), Lon: float64(k)}})
		}
	}
	var batch []trace.Report
	for i := 0; i < tags; i += 3 {
		at := base.Add(2 * time.Hour)
		batch = append(batch, trace.Report{T: at, HeardAt: at,
			TagID: fmt.Sprintf("tag-%03d", i), Vendor: trace.VendorApple,
			Pos: geo.LatLon{Lat: -1, Lon: -1}})
	}
	s.Restore(batch)
	s.Register("registered-but-quiet")
}

var base = time.Date(2022, 3, 7, 9, 0, 0, 0, time.UTC)

// readAll captures every read-path answer for every tag: the
// equivalence surface the locked and lock-free paths must agree on.
func readAll(s *Store, tags []string) map[string]any {
	out := map[string]any{}
	for _, id := range tags {
		pos, at, ok := s.LastSeen(id)
		out["last/"+id] = fmt.Sprint(pos, at, ok)
		out["known/"+id] = s.Known(id)
		out["hist/"+id] = s.History(id)
		for _, limit := range []int{0, 1, 3, 1000} {
			out[fmt.Sprintf("recent%d/%s", limit, id)] = s.RecentHistory(id, limit)
		}
	}
	return out
}

// TestLockedReadEquivalence: the lock-free read path answers every
// query identically to the historical locked path, across shard counts,
// after a mixed ingest/restore/register sequence.
func TestLockedReadEquivalence(t *testing.T) {
	for _, shards := range []int{1, 4, 16} {
		s := New(shards)
		s.MinUpdateInterval = 2 * time.Minute
		s.KeepHistory = true
		s.HistoryLimit = 5
		fillStore(s, 40)
		tags := append(s.TagIDs(), "never-seen")

		var views []map[string]any
		lockModes(t, func(t *testing.T, locked bool) {
			views = append(views, readAll(s, tags))
		})
		if !reflect.DeepEqual(views[0], views[1]) {
			t.Errorf("shards=%d: lock-free and locked reads disagree", shards)
			for k, v := range views[0] {
				if !reflect.DeepEqual(v, views[1][k]) {
					t.Errorf("  %s: lockfree=%v locked=%v", k, v, views[1][k])
				}
			}
		}
	}
}

// TestRecentHistoryLimits pins the pushdown semantics against the full
// History copy, through the ring-wrap boundary.
func TestRecentHistoryLimits(t *testing.T) {
	lockModes(t, func(t *testing.T, locked bool) {
		s := New(4)
		s.KeepHistory = true
		s.HistoryLimit = 5
		id := "ring-tag"
		if got := s.RecentHistory(id, 3); got != nil {
			t.Errorf("locked=%v: unknown tag history = %v, want nil", locked, got)
		}
		for k := 0; k < 9; k++ { // wraps the 5-ring almost twice
			at := base.Add(time.Duration(k) * time.Minute)
			s.Ingest(trace.Report{T: at, TagID: id, Vendor: trace.VendorApple,
				Pos: geo.LatLon{Lat: float64(k)}})
			full := s.History(id)
			for _, limit := range []int{0, 1, 2, 5, 7, -1} {
				got := s.RecentHistory(id, limit)
				want := full
				if limit >= 0 && limit < len(full) {
					want = full[len(full)-limit:]
				}
				if len(got) != len(want) {
					t.Fatalf("locked=%v k=%d limit=%d: %d reports, want %d", locked, k, limit, len(got), len(want))
				}
				for i := range got {
					if !got[i].T.Equal(want[i].T) || got[i].Pos != want[i].Pos {
						t.Fatalf("locked=%v k=%d limit=%d: report %d = %+v, want %+v", locked, k, limit, i, got[i], want[i])
					}
				}
			}
			// limit 0 with history present: empty but non-nil, so the
			// query layer can keep "no reports retained" apart from
			// "tag has no history at all".
			if got := s.RecentHistory(id, 0); got == nil {
				t.Fatalf("locked=%v: limit 0 with history = nil, want empty", locked)
			}
		}
	})
}

// TestTagEpochBumps: every observable state change moves the shard
// epoch; a rejected ingest of an existing tag does not.
func TestTagEpochBumps(t *testing.T) {
	s := New(1)
	s.MinUpdateInterval = 2 * time.Minute
	s.KeepHistory = true
	id := "epoch-tag"

	e0 := s.TagEpoch(id)
	at := base
	s.Ingest(trace.Report{T: at, TagID: id, Vendor: trace.VendorApple})
	e1 := s.TagEpoch(id)
	if e1 <= e0 {
		t.Error("accepted ingest must bump the epoch")
	}
	// Within the rate cap: rejected, no state change, no bump.
	s.Ingest(trace.Report{T: at.Add(time.Second), TagID: id, Vendor: trace.VendorApple})
	if e := s.TagEpoch(id); e != e1 {
		t.Errorf("rejected ingest moved the epoch %d -> %d", e1, e)
	}
	s.Restore([]trace.Report{{T: at.Add(time.Hour), TagID: id, Vendor: trace.VendorApple}})
	e2 := s.TagEpoch(id)
	if e2 <= e1 {
		t.Error("restore must bump the epoch")
	}
	s.Register("new-neighbor") // lands on the same (only) shard
	if e := s.TagEpoch(id); e <= e2 {
		t.Error("registration must bump the shard epoch")
	}
	s.Register("new-neighbor") // idempotent: no state change
	e3 := s.TagEpoch(id)
	s.Register("new-neighbor")
	if e := s.TagEpoch(id); e != e3 {
		t.Error("re-registration is a no-op and must not bump the epoch")
	}
}

// TestLockFreeReadsRaced races lock-free readers against live Ingest,
// Restore, and Snapshot: last-seen must never move backward, history
// must only grow (within the ring bound), and after the writers drain,
// locked and lock-free reads must agree exactly. Run under -race in CI.
func TestLockFreeReadsRaced(t *testing.T) {
	for _, shards := range []int{1, 4, 16} {
		s := New(shards)
		s.MinUpdateInterval = time.Minute
		s.KeepHistory = true
		s.HistoryLimit = 8
		tags := make([]string, 16)
		for i := range tags {
			tags[i] = fmt.Sprintf("raced-%02d", i)
		}

		var stop atomic.Bool
		var wg sync.WaitGroup
		for w := 0; w < 2; w++ { // ingest writers
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for step := 0; step < 400; step++ {
					at := base.Add(time.Duration(step*90+w) * time.Second)
					s.Ingest(trace.Report{T: at, TagID: tags[(step+w)%len(tags)],
						Vendor: trace.VendorApple, Pos: geo.LatLon{Lat: float64(step)}})
				}
			}(w)
		}
		wg.Add(1)
		go func() { // restore writer
			defer wg.Done()
			for step := 0; step < 50; step++ {
				at := base.Add(time.Duration(step) * time.Hour)
				s.Restore([]trace.Report{{T: at, TagID: tags[step%len(tags)],
					Vendor: trace.VendorApple, Pos: geo.LatLon{Lon: float64(step)}}})
			}
		}()
		var rg sync.WaitGroup
		rg.Add(1)
		go func() { // concurrent snapshots keep the locks busy
			defer rg.Done()
			for !stop.Load() {
				snap := s.Snapshot()
				var n uint64
				for _, tag := range snap.Tags {
					n += uint64(len(tag.History))
				}
				if n > snap.Accepted {
					t.Error("snapshot retains more history than it accepted")
					return
				}
			}
		}()

		errs := make(chan string, 8)
		for r := 0; r < 4; r++ { // lock-free readers
			rg.Add(1)
			go func(r int) {
				defer rg.Done()
				lastAt := map[string]time.Time{}
				histLen := map[string]int{}
				for !stop.Load() {
					id := tags[r%len(tags)]
					if _, at, ok := s.LastSeen(id); ok {
						if at.Before(lastAt[id]) {
							errs <- fmt.Sprintf("last-seen of %s went backward: %v -> %v", id, lastAt[id], at)
							return
						}
						lastAt[id] = at
					}
					if n := len(s.RecentHistory(id, -1)); n < histLen[id] && histLen[id] < s.HistoryLimit {
						errs <- fmt.Sprintf("history of %s shrank below the ring bound: %d -> %d", id, histLen[id], n)
						return
					} else {
						histLen[id] = n
					}
				}
			}(r)
		}

		wg.Wait()
		stop.Store(true)
		rg.Wait()
		close(errs)
		for e := range errs {
			t.Errorf("shards=%d: %s", shards, e)
		}

		// Quiesced: the two read paths must agree exactly.
		var views []map[string]any
		lockModes(t, func(t *testing.T, locked bool) {
			views = append(views, readAll(s, tags))
		})
		if !reflect.DeepEqual(views[0], views[1]) {
			t.Errorf("shards=%d: read paths disagree after the race", shards)
		}
	}
}
