package store

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"tagsim/internal/geo"
)

// walFiles / segFiles list the directory's live store files.
func globStore(t *testing.T, dir, pattern string) []string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, pattern))
	if err != nil {
		t.Fatal(err)
	}
	return matches
}

// flipByte XORs one byte of a file in place — the single-bit-flip
// corruption model the CRC framing must catch.
func flipByte(t *testing.T, path string, off int64) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	b := make([]byte, 1)
	if _, err := f.ReadAt(b, off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xFF
	if _, err := f.WriteAt(b, off); err != nil {
		t.Fatal(err)
	}
}

// TestTieredWarmRestart: a graceful Close leaves a manifest a reopen —
// even at a different shard count — rebuilds into byte-identical state,
// and ingest continues as if the process never exited.
func TestTieredWarmRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := tieredCfg(dir)
	s := openTiered(t, 4, cfg)
	reports := stream(7, 1500)
	for _, r := range reports {
		s.Ingest(r)
	}
	want := s.Snapshot()
	tags := append(s.TagIDs(), "never-seen")
	wantReads := readAll(s, tags)
	closeStore(t, s)

	s2 := openTiered(t, 16, cfg)
	if got := s2.Snapshot(); !reflect.DeepEqual(got, want) {
		t.Fatal("snapshot diverged across a graceful restart")
	}
	if got := readAll(s2, tags); !reflect.DeepEqual(got, wantReads) {
		t.Error("reads diverged across a graceful restart")
	}

	// Keep ingesting the same deterministic stream; an in-memory store
	// fed the full sequence is the reference.
	mem := newCloudlike(1)
	for _, r := range reports {
		mem.Ingest(r)
	}
	for _, r := range stream(7, 2000)[1500:] {
		s2.Ingest(r)
		mem.Ingest(r)
	}
	if got, wantCont := s2.Snapshot(), mem.Snapshot(); !reflect.DeepEqual(got, wantCont) {
		t.Error("post-restart ingest diverged from the uninterrupted reference")
	}
	closeStore(t, s2)
}

// TestCrashRestartReplaysWAL: a reopen without Close — the crash path —
// recovers everything the WAL had fsynced.
func TestCrashRestartReplaysWAL(t *testing.T) {
	dir := t.TempDir()
	cfg := tieredCfg(dir)
	cfg.MemtableBytes = 1 << 20 // everything stays in the WAL tail
	s := openTiered(t, 4, cfg)
	for _, r := range stream(5, 400) {
		s.Ingest(r)
	}
	if err := s.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	want := s.Snapshot()
	// Crash: s is abandoned with its files still open, never Closed.
	s2 := openTiered(t, 4, cfg)
	if got := s2.Snapshot(); !reflect.DeepEqual(got, want) {
		t.Error("WAL replay did not restore the pre-crash state")
	}
	closeStore(t, s2)
}

// TestTornWALTailReplaysWholeRecords: truncating the WAL mid-record — a
// torn write — loses exactly the torn record, and the reopened log
// accepts appends from the truncation point.
func TestTornWALTailReplaysWholeRecords(t *testing.T) {
	dir := t.TempDir()
	cfg := tieredCfg(dir)
	cfg.MemtableBytes = 1 << 20
	s := openTiered(t, 1, cfg)
	const k = 12
	var want []geo.LatLon
	for i := 0; i < k; i++ {
		p := geo.Destination(pos, float64(i*17%360), float64(i+1))
		if !s.Ingest(report(t0.Add(time.Duration(i)*5*time.Minute), "tag", p)) {
			t.Fatalf("report %d rejected", i)
		}
		want = append(want, p)
	}
	if err := s.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	wals := globStore(t, dir, "wal-*.wal")
	if len(wals) != 1 {
		t.Fatalf("want one WAL, got %v", wals)
	}
	fi, err := os.Stat(wals[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(wals[0], fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	s2 := openTiered(t, 1, cfg)
	h := s2.History("tag")
	if len(h) != k-1 {
		t.Fatalf("torn tail: replayed %d reports, want %d", len(h), k-1)
	}
	for i, r := range h {
		if r.Pos != want[i] {
			t.Fatalf("replayed report %d = %v, want %v", i, r.Pos, want[i])
		}
	}
	if acc, _ := s2.Stats(); acc != k-1 {
		t.Errorf("accepted counter = %d, want %d", acc, k-1)
	}
	// The truncated log must keep appending cleanly.
	p := geo.Destination(pos, 200, 99)
	if !s2.Ingest(report(t0.Add(time.Duration(k)*5*time.Minute), "tag", p)) {
		t.Fatal("post-truncation ingest rejected")
	}
	if err := s2.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	s3 := openTiered(t, 1, cfg)
	if h := s3.History("tag"); len(h) != k || h[k-1].Pos != p {
		t.Errorf("log after truncation+append replayed %d reports", len(h))
	}
	closeStore(t, s3)
}

// TestCorruptWALMidFileKeepsCleanPrefix: a bit flip in the middle of
// the WAL fails that record's CRC; replay keeps the records before it
// and never serves garbage after it.
func TestCorruptWALMidFileKeepsCleanPrefix(t *testing.T) {
	dir := t.TempDir()
	cfg := tieredCfg(dir)
	cfg.MemtableBytes = 1 << 20
	s := openTiered(t, 1, cfg)
	const k = 12
	var want []geo.LatLon
	for i := 0; i < k; i++ {
		p := geo.Destination(pos, float64(i*13%360), float64(i+1))
		s.Ingest(report(t0.Add(time.Duration(i)*5*time.Minute), "tag", p))
		want = append(want, p)
	}
	if err := s.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	wals := globStore(t, dir, "wal-*.wal")
	fi, err := os.Stat(wals[0])
	if err != nil {
		t.Fatal(err)
	}
	flipByte(t, wals[0], fi.Size()/2)

	s2 := openTiered(t, 1, cfg)
	h := s2.History("tag")
	if len(h) == 0 || len(h) >= k {
		t.Fatalf("mid-file corruption: replayed %d reports, want a proper non-empty prefix of %d", len(h), k)
	}
	for i, r := range h {
		if r.Pos != want[i] {
			t.Fatalf("replayed report %d = %v, want %v", i, r.Pos, want[i])
		}
	}
	if acc, _ := s2.Stats(); acc != uint64(len(h)) {
		t.Errorf("accepted counter = %d, want %d", acc, len(h))
	}
}

// TestCorruptSegmentQuarantinedAtOpen: a segment that fails validation
// on startup is renamed aside and counted, never served — and the store
// still opens.
func TestCorruptSegmentQuarantinedAtOpen(t *testing.T) {
	dir := t.TempDir()
	cfg := tieredCfg(dir)
	cfg.MemtableBytes = 1 << 20 // only the explicit Flush writes a segment
	s := openTiered(t, 2, cfg)
	for _, r := range stream(4, 300) {
		s.Ingest(r)
	}
	if err := s.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	accepted, rejected := s.Stats()
	closeStore(t, s)

	segs := globStore(t, dir, "seg-*.seg")
	if len(segs) != 1 {
		t.Fatalf("segments after one flush = %v, want one", segs)
	}
	fi, err := os.Stat(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	flipByte(t, segs[0], fi.Size()-20) // lands in the index/trailer region

	s2 := openTiered(t, 2, cfg)
	st := s2.TierStats()
	if st.Quarantined != 1 {
		t.Errorf("Quarantined = %d, want 1", st.Quarantined)
	}
	if err := s2.TierErr(); err == nil || !strings.Contains(err.Error(), "quarantined segment") {
		t.Errorf("TierErr = %v, want a quarantined-segment error", err)
	}
	if q := globStore(t, dir, "*.quarantine"); len(q) != 1 {
		t.Errorf("quarantine files = %v, want one", q)
	}
	// The corrupt segment held this store's whole universe (the WAL was
	// freshly rotated), so nothing is served — but nothing fabricated
	// either, and the counters still carry the manifest's replay base.
	if live := globStore(t, dir, "seg-*.seg"); len(live) != 0 {
		t.Errorf("corrupt segment still live: %v", live)
	}
	if n := s2.NumTags(); n != 0 {
		t.Errorf("store rebuilt %d tags from a corrupt segment", n)
	}
	if acc, rej := s2.Stats(); acc != accepted || rej != rejected {
		t.Errorf("counters = %d/%d, want %d/%d", acc, rej, accepted, rejected)
	}
	if err := s2.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
}

// TestCorruptSegmentQuarantinedAtRead: a data-frame bit flip detected
// mid-read quarantines the segment on the live store; the rows still in
// the memtable keep serving and the corrupt bytes never escape.
func TestCorruptSegmentQuarantinedAtRead(t *testing.T) {
	dir := t.TempDir()
	cfg := tieredCfg(dir)
	cfg.MemtableBytes = 1 << 20 // only the explicit Flush writes a segment
	s := openTiered(t, 1, cfg)
	for i := 0; i < 40; i++ {
		if !s.Ingest(report(t0.Add(time.Duration(i)*5*time.Minute), "tag",
			geo.Destination(pos, float64(i%360), float64(i+1)))) {
			t.Fatalf("report %d rejected", i)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	var ring []geo.LatLon
	for i := 40; i < 45; i++ {
		p := geo.Destination(pos, float64(i%360), float64(i+1))
		if !s.Ingest(report(t0.Add(time.Duration(i)*5*time.Minute), "tag", p)) {
			t.Fatalf("report %d rejected", i)
		}
		ring = append(ring, p)
	}

	segs := globStore(t, dir, "seg-*.seg")
	if len(segs) != 1 {
		t.Fatalf("segments = %v, want one", segs)
	}
	flipByte(t, segs[0], 30) // inside the first data frame's payload

	h := s.History("tag")
	if len(h) != len(ring) {
		t.Fatalf("history after corruption = %d rows, want the %d memtable rows", len(h), len(ring))
	}
	for i, r := range h {
		if r.Pos != ring[i] {
			t.Fatalf("served row %d = %v, want ring row %v", i, r.Pos, ring[i])
		}
	}
	st := s.TierStats()
	if st.ReadErrors == 0 || st.Quarantined != 1 || st.Segments != 0 {
		t.Errorf("stats after corrupt read = readErrs %d, quarantined %d, segments %d",
			st.ReadErrors, st.Quarantined, st.Segments)
	}
	if q := globStore(t, dir, "*.quarantine"); len(q) != 1 {
		t.Errorf("quarantine files = %v, want one", q)
	}
	if err := s.TierErr(); err == nil {
		t.Error("TierErr must surface the corrupt segment")
	}
	// Reads keep working (and stay stable) after the quarantine.
	if h2 := s.History("tag"); !reflect.DeepEqual(h2, h) {
		t.Error("second read after quarantine diverged")
	}
	if _, at, ok := s.LastSeen("tag"); !ok || !at.Equal(t0.Add(44*5*time.Minute)) {
		t.Error("last-seen lost after quarantine")
	}
	if err := s.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
}
