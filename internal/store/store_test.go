package store

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"tagsim/internal/geo"
	"tagsim/internal/trace"
)

var (
	t0  = time.Date(2022, 3, 7, 9, 0, 0, 0, time.UTC)
	pos = geo.LatLon{Lat: 24.45, Lon: 54.37}
)

func report(at time.Time, tagID string, p geo.LatLon) trace.Report {
	return trace.Report{T: at, HeardAt: at, TagID: tagID, Pos: p, ReporterID: "dev-1"}
}

// newCloudlike mirrors the cloud.Service policy: 192 s cap, history on.
func newCloudlike(shards int) *Store {
	s := New(shards)
	s.MinUpdateInterval = 192 * time.Second
	s.KeepHistory = true
	return s
}

// stream is a deterministic multi-tag ingest sequence with in-cap,
// out-of-cap, and out-of-order reports mixed in.
func stream(tags, n int) []trace.Report {
	var out []trace.Report
	for i := 0; i < n; i++ {
		tag := fmt.Sprintf("tag-%02d", i%tags)
		at := t0.Add(time.Duration(i*37) * time.Second)
		if i%11 == 0 {
			at = at.Add(-5 * time.Minute) // out of order
		}
		out = append(out, report(at, tag, geo.Destination(pos, float64(i%360), float64(i))))
	}
	return out
}

func TestNewRoundsShardsToPowerOfTwo(t *testing.T) {
	for _, c := range []struct{ in, want int }{
		{0, DefaultShards}, {-3, DefaultShards}, {1, 1}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {16, 16}, {17, 32},
	} {
		if got := New(c.in).NumShards(); got != c.want {
			t.Errorf("New(%d).NumShards() = %d, want %d", c.in, got, c.want)
		}
	}
}

// TestShardCountInvariance: the same ingest sequence leaves byte-identical
// state at every shard count — the property the cloud refactor rests on.
func TestShardCountInvariance(t *testing.T) {
	reports := stream(7, 500)
	ref := newCloudlike(1)
	for _, r := range reports {
		ref.Ingest(r)
	}
	want := ref.Snapshot()
	for _, shards := range []int{2, 4, 16, 64} {
		s := newCloudlike(shards)
		for _, r := range reports {
			s.Ingest(r)
		}
		if got := s.Snapshot(); !reflect.DeepEqual(got, want) {
			t.Errorf("shards=%d: snapshot diverged from single-shard reference", shards)
		}
	}
}

func TestRateCapAndOutOfOrder(t *testing.T) {
	s := newCloudlike(4)
	if !s.Ingest(report(t0, "tag", pos)) {
		t.Fatal("first report must be accepted")
	}
	p2 := geo.Destination(pos, 90, 100)
	if s.Ingest(report(t0.Add(time.Minute), "tag", p2)) {
		t.Error("report inside the rate cap must be rejected")
	}
	if s.Ingest(report(t0.Add(-time.Hour), "tag", p2)) {
		t.Error("stale report must not regress last-seen")
	}
	got, at, _ := s.LastSeen("tag")
	if got != pos || !at.Equal(t0) {
		t.Error("rejected reports must not change state")
	}
	if !s.Ingest(report(t0.Add(s.MinUpdateInterval+time.Second), "tag", p2)) {
		t.Error("report after the cap must be accepted")
	}
	if acc, rej := s.Stats(); acc != 2 || rej != 2 {
		t.Errorf("stats = %d/%d, want 2/2", acc, rej)
	}
}

func TestHistoryLimitRing(t *testing.T) {
	s := newCloudlike(2)
	s.HistoryLimit = 3
	var want []trace.Report
	for i := 0; i < 10; i++ {
		r := report(t0.Add(time.Duration(i)*4*time.Minute), "tag", geo.Destination(pos, float64(i), float64(i*10)))
		if !s.Ingest(r) {
			t.Fatalf("report %d rejected", i)
		}
		want = append(want, r)
	}
	h := s.History("tag")
	if len(h) != 3 {
		t.Fatalf("history holds %d reports, want 3", len(h))
	}
	if !reflect.DeepEqual(h, want[7:]) {
		t.Error("ring must retain the newest 3 reports oldest-first")
	}
	// Last-seen still tracks the newest accepted report.
	if _, at, _ := s.LastSeen("tag"); !at.Equal(want[9].HeardAt) {
		t.Error("LastSeen diverged from the newest report")
	}
	// Unbounded remains the default.
	u := newCloudlike(2)
	for i := 0; i < 10; i++ {
		u.Ingest(report(t0.Add(time.Duration(i)*4*time.Minute), "tag", pos))
	}
	if len(u.History("tag")) != 10 {
		t.Error("HistoryLimit=0 must keep every accepted report")
	}
}

func TestRegisterTagIDsAndNumTags(t *testing.T) {
	s := New(8)
	s.Register("b")
	s.Register("a")
	s.Register("a") // idempotent
	if ids := s.TagIDs(); len(ids) != 2 || ids[0] != "a" || ids[1] != "b" {
		t.Errorf("TagIDs = %v", ids)
	}
	if s.NumTags() != 2 {
		t.Errorf("NumTags = %d", s.NumTags())
	}
	if _, _, ok := s.LastSeen("a"); ok {
		t.Error("registered but unreported tag must have no location")
	}
	if s.History("nope") != nil {
		t.Error("unknown tag history must be nil")
	}
}

func TestRestoreBypassesCap(t *testing.T) {
	s := newCloudlike(4)
	s.Restore([]trace.Report{
		report(t0, "tag", pos),
		report(t0.Add(time.Second), "tag", geo.Destination(pos, 90, 50)), // far inside the cap
	})
	if len(s.History("tag")) != 2 {
		t.Error("Restore must keep every already-accepted report")
	}
	if _, at, _ := s.LastSeen("tag"); !at.Equal(t0.Add(time.Second)) {
		t.Error("Restore must advance last-seen to the freshest report")
	}
	if acc, _ := s.Stats(); acc != 2 {
		t.Errorf("restored reports count as accepted, got %d", acc)
	}
	// Restoring an older dump afterwards must not regress last-seen.
	s.Restore([]trace.Report{report(t0.Add(-time.Hour), "tag", pos)})
	if _, at, _ := s.LastSeen("tag"); !at.Equal(t0.Add(time.Second)) {
		t.Error("older restored dump regressed last-seen")
	}
}

// TestConcurrentIngestMatchesSequential fans one deterministic stream
// across writers partitioned by tag, under -race in CI: per-tag report
// order is preserved (each tag's reports stay on one writer), so the
// final snapshot must equal the sequential run's exactly.
func TestConcurrentIngestMatchesSequential(t *testing.T) {
	const tags, n, writers = 16, 2000, 8
	reports := stream(tags, n)

	seq := newCloudlike(1)
	for _, r := range reports {
		seq.Ingest(r)
	}
	want := seq.Snapshot()

	conc := newCloudlike(16)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Partition by tag (report i is for tag i%tags), so each tag's
			// subsequence stays on one goroutine in original order.
			for i, r := range reports {
				if (i%tags)%writers == w {
					conc.Ingest(r)
				}
			}
		}(w)
	}
	wg.Wait()
	if got := conc.Snapshot(); !reflect.DeepEqual(got, want) {
		t.Error("concurrent ingest (partitioned by tag) diverged from sequential state")
	}
}

// TestSnapshotConsistency: snapshots taken while writers run must be
// internally consistent — the accepted counter equals the reports
// reflected in the captured histories (all streams here are accepted).
func TestSnapshotConsistency(t *testing.T) {
	s := New(4)
	s.KeepHistory = true
	const writers, perWriter = 4, 300
	var wg sync.WaitGroup
	stopSnaps := make(chan struct{})
	var snaps []Snapshot
	wg.Add(1)
	go func() { // snapshotter racing the writers
		defer wg.Done()
		for {
			select {
			case <-stopSnaps:
				return
			default:
				snaps = append(snaps, s.Snapshot())
			}
		}
	}()
	var writerWg sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWg.Add(1)
		go func(w int) {
			defer writerWg.Done()
			tag := fmt.Sprintf("tag-%d", w)
			for i := 0; i < perWriter; i++ {
				s.Ingest(report(t0.Add(time.Duration(i)*time.Hour), tag, pos))
			}
		}(w)
	}
	writerWg.Wait()
	close(stopSnaps)
	wg.Wait()
	snaps = append(snaps, s.Snapshot())
	for _, snap := range snaps {
		total := uint64(0)
		for _, ts := range snap.Tags {
			total += uint64(len(ts.History))
		}
		if snap.Accepted != total {
			t.Fatalf("inconsistent snapshot: accepted=%d but histories hold %d", snap.Accepted, total)
		}
	}
	final := snaps[len(snaps)-1]
	if final.Accepted != writers*perWriter {
		t.Errorf("final accepted = %d, want %d", final.Accepted, writers*perWriter)
	}
}

func TestSnapshotSortedAndConsistentPair(t *testing.T) {
	s := newCloudlike(8)
	for _, id := range []string{"zz", "aa", "mm"} {
		s.Ingest(report(t0, id, pos))
	}
	snap := s.Snapshot()
	if len(snap.Tags) != 3 || snap.Tags[0].ID != "aa" || snap.Tags[2].ID != "zz" {
		t.Errorf("snapshot tags unsorted: %v", []string{snap.Tags[0].ID, snap.Tags[1].ID, snap.Tags[2].ID})
	}
	if snap.Accepted != 3 || snap.Rejected != 0 {
		t.Errorf("snapshot counters = %d/%d", snap.Accepted, snap.Rejected)
	}
}
