package store

import (
	"testing"
	"time"

	"tagsim/internal/trace"
)

// TestShardStatsSumToTotals pins the per-shard counter decomposition:
// summing Accepted/Rejected/Tags across shards must reproduce the
// store-wide Stats and NumTags, and every shard that holds tags must
// have a non-zero epoch (each accept bumps its shard's epoch).
func TestShardStatsSumToTotals(t *testing.T) {
	s := newCloudlike(8)
	for _, r := range stream(16, 400) {
		s.Ingest(r)
		r.T = r.T.Add(time.Second) // within the rate cap: rejected
		s.Ingest(r)
	}
	// Restore counts as accepted too.
	s.Restore([]trace.Report{report(t0.Add(time.Hour), "restored-tag", pos)})

	var accepted, rejected uint64
	var tags int
	for i := 0; i < s.NumShards(); i++ {
		st := s.ShardStats(i)
		accepted += st.Accepted
		rejected += st.Rejected
		tags += st.Tags
		if st.Tags > 0 && st.Epoch == 0 {
			t.Errorf("shard %d holds %d tags but epoch is 0", i, st.Tags)
		}
	}
	wantAcc, wantRej := s.Stats()
	if accepted != wantAcc || rejected != wantRej {
		t.Fatalf("shard sums accepted=%d rejected=%d, store totals %d/%d",
			accepted, rejected, wantAcc, wantRej)
	}
	if wantAcc == 0 || wantRej == 0 {
		t.Fatalf("stream exercised only one outcome: accepted=%d rejected=%d", wantAcc, wantRej)
	}
	if tags != s.NumTags() {
		t.Fatalf("shard tag sum %d, NumTags %d", tags, s.NumTags())
	}
}
