package store

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"tagsim/internal/trace"
)

// Retention generalizes HistoryLimit into the storage engine's per-tag
// history policy. The two knobs compose (a report is retained only if it
// passes both):
//
//   - KeepLast bounds each tag's history to the newest N accepted
//     reports — HistoryLimit's semantics, enforced by the memtable ring
//     in the in-memory store and at read/compaction time in the tiered
//     one.
//   - KeepWindow drops reports observed more than the window before the
//     tag's newest report. The clock is per tag (its own last-seen
//     instant), never the wall clock, so retention is deterministic for
//     deterministic ingest and a dormant tag's trail does not silently
//     evaporate while nothing changes.
//
// Zero values mean "keep everything" on that axis. The policy is
// advisory visibility for reads everywhere; the tiered store's
// compaction additionally uses it to drop segment rows no read can ever
// return again.
type Retention struct {
	// KeepLast retains the newest N accepted reports per tag (0: all).
	KeepLast int
	// KeepWindow retains reports observed within this window of the
	// tag's newest report (0: all).
	KeepWindow time.Duration
}

// IsZero reports whether the policy keeps everything.
func (r Retention) IsZero() bool { return r.KeepLast == 0 && r.KeepWindow == 0 }

// String renders the policy in ParseRetention's syntax.
func (r Retention) String() string {
	switch {
	case r.IsZero():
		return "all"
	case r.KeepWindow == 0:
		return fmt.Sprintf("keep=%d", r.KeepLast)
	case r.KeepLast == 0:
		return fmt.Sprintf("window=%s", r.KeepWindow)
	default:
		return fmt.Sprintf("keep=%d,window=%s", r.KeepLast, r.KeepWindow)
	}
}

// ParseRetention parses a retention policy flag: a comma-separated list
// of "keep=N" (newest N reports) and "window=DUR" (e.g. "window=72h")
// clauses. "" and "all" keep everything.
func ParseRetention(s string) (Retention, error) {
	var r Retention
	s = strings.TrimSpace(s)
	if s == "" || s == "all" {
		return r, nil
	}
	for _, clause := range strings.Split(s, ",") {
		key, val, found := strings.Cut(strings.TrimSpace(clause), "=")
		if !found {
			return Retention{}, fmt.Errorf("store: retention clause %q is not key=value (want keep=N or window=DUR)", clause)
		}
		switch key {
		case "keep":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return Retention{}, fmt.Errorf("store: bad retention keep count %q", val)
			}
			r.KeepLast = n
		case "window":
			d, err := time.ParseDuration(val)
			if err != nil || d < 0 {
				return Retention{}, fmt.Errorf("store: bad retention window %q", val)
			}
			r.KeepWindow = d
		default:
			return Retention{}, fmt.Errorf("store: unknown retention clause %q (want keep=N or window=DUR)", key)
		}
	}
	return r, nil
}

// keepLast resolves the effective newest-N bound: Retention.KeepLast
// when set, else the historical HistoryLimit field.
func (s *Store) keepLast() int {
	if s.Retention.KeepLast > 0 {
		return s.Retention.KeepLast
	}
	return s.HistoryLimit
}

// trimWindow drops the leading (oldest) reports observed more than the
// window before lastAt, in place. Reports are in acceptance order, which
// ingest keeps time-sorted per tag, so the survivors are a suffix.
func trimWindow(reports []trace.Report, lastAt time.Time, window time.Duration) []trace.Report {
	if window <= 0 || len(reports) == 0 {
		return reports
	}
	cutoff := lastAt.Add(-window)
	// Walk from the newest end so a long retained suffix costs only its
	// own length; stop at the first report past the cutoff.
	keepFrom := len(reports)
	for keepFrom > 0 && !seenAt(reports[keepFrom-1]).Before(cutoff) {
		keepFrom--
	}
	if keepFrom == 0 {
		return reports
	}
	return reports[keepFrom:]
}
