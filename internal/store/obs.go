package store

import (
	"tagsim/internal/obs"
	otrace "tagsim/internal/obs/trace"
)

// Process-wide storage-tier series in the obs.Default registry, so
// headless runs see tier activity too: cmd/tagsim's -metrics-every
// compact snapshots render only Default, while tagserve's /metrics
// panes additionally carry the per-vendor splits its per-server
// registry bridges from TierStats. These are aggregates across every
// tiered store in the process; they only move when a tier is actually
// in play (in-memory stores never construct a walWriter or flush), so
// an in-memory campaign logs them as honest zeros.
var (
	obsWALRecords   = obs.GetCounter("store_wal_records")
	obsWALBytes     = obs.GetCounter("store_wal_bytes")
	obsWALFsyncs    = obs.GetCounter("store_wal_fsyncs")
	obsFlushes      = obs.GetCounter("store_flushes")
	obsCompactions  = obs.GetCounter("store_compactions")
	obsQuarantines  = obs.GetCounter("store_quarantines")
	obsWALFsyncHist = obs.GetHistogram("store_wal_fsync_seconds")
	obsFlushHist    = obs.GetHistogram("store_flush_seconds")
	obsCompactHist  = obs.GetHistogram("store_compaction_seconds")
)

// Capture thresholds for the tier's self-rooted background traces.
// Each is driven by the live p99 of the matching histogram with a zero
// floor — these ops are rare and ms-scale, so "slower than your own
// p99" is exactly the set worth keeping. Quarantines capture
// unconditionally: every one is an incident.
var (
	walFsyncThreshold   = otrace.NewThreshold(otrace.PlaneTier, obsWALFsyncHist, 0)
	flushThreshold      = otrace.NewThreshold(otrace.PlaneTier, obsFlushHist, 0)
	compactThreshold    = otrace.NewThreshold(otrace.PlaneTier, obsCompactHist, 0)
	quarantineThreshold = otrace.NewThreshold(otrace.PlaneTier, nil, 0)
)
