package store

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"os"
	"sync"
	"time"

	"tagsim/internal/colfmt"
	"tagsim/internal/geo"
	"tagsim/internal/obs"
	otrace "tagsim/internal/obs/trace"
	"tagsim/internal/trace"
)

// encTime/decTime are the on-disk instant codec for the WAL and
// segments. The zero time.Time must survive the round trip exactly —
// seenAt falls back to Report.T when HeardAt.IsZero(), and a zero time
// pushed through UnixNano decodes as a non-zero year-1754 instant,
// which would silently flip that fallback after a restart — so zero
// gets a sentinel no real instant uses.
const zeroTimeNanos = math.MinInt64

func encTime(t time.Time) int64 {
	if t.IsZero() {
		return zeroTimeNanos
	}
	return t.UnixNano()
}

func decTime(v int64) time.Time {
	if v == zeroTimeNanos {
		return time.Time{}
	}
	return time.Unix(0, v).UTC()
}

// The write-ahead log is the tiered store's durability frontier: every
// state change (accepted report, restore, registration — and rejects,
// so the counters replay exactly) appends one CRC-framed record before
// the memtable mutation becomes visible, and a restart replays the
// active WAL on top of the segment manifest to recover everything the
// last flush had not yet made immutable.
//
// Layout (colfmt framing, little-endian):
//
//	file   := magic record*
//	magic  := "TAGWAL1\n" (8 bytes)
//	record := u32 payloadBytes | u32 crc32c | payload
//	payload := u8 kind | body
//	  kind 1 (apply):    i64 t | i64 heardAt | f64 lat | f64 lon |
//	                     f64 rssi | u8 vendor | str tagID | str reporterID
//	  kind 2 (register): str tagID
//	  kind 3 (reject):   str tagID
//
// One record per frame keeps the torn-tail contract exact: a crash can
// only lose whole trailing records, and replay stops at the first frame
// that is short or fails its checksum (walReplay reports the byte offset
// of the last whole record so the tail can be truncated before the log
// is appended to again).
//
// Durability is fsync-batched: appends buffer through bufio and the file
// is fsynced every SyncBytes of log (and on Sync/rotation/Close), so a
// crash between fsyncs loses at most that batch — the classic group-
// commit trade the flush threshold knobs expose.
const walMagic = "TAGWAL1\n"

// WAL record kinds.
const (
	walApply    = 1 // an accepted ingest or a restored report
	walRegister = 2 // an explicit registration
	walReject   = 3 // a rate-capped or non-advancing report (counters only)
)

// walRecord is one decoded WAL record.
type walRecord struct {
	kind   uint8
	tagID  string
	report trace.Report // valid for walApply
}

// walWriter appends records to the active WAL file. Appends take the
// writer's own mutex (callers already hold their tag's shard lock, so
// per-tag record order matches apply order).
type walWriter struct {
	mu        sync.Mutex
	f         *os.File
	w         *bufio.Writer
	payload   []byte // reused record-encode buffer
	bytes     uint64 // logical bytes written (magic + frames)
	unsynced  uint64 // bytes since the last fsync
	syncBytes uint64 // fsync batch size
	records   uint64
	fsyncs    uint64
	err       error // first write failure, sticky
}

// createWAL creates a fresh WAL file at path.
func createWAL(path string, syncBytes uint64) (*walWriter, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	w := &walWriter{f: f, w: bufio.NewWriter(f), syncBytes: syncBytes}
	if _, err := w.w.WriteString(walMagic); err != nil {
		f.Close()
		return nil, err
	}
	w.bytes = uint64(len(walMagic))
	// The header goes to disk before anyone can reference this WAL: a
	// manifest must never point at a file a crash can leave empty.
	if err := w.syncLocked(); err != nil {
		f.Close()
		return nil, err
	}
	return w, nil
}

// openWALAppend reopens an existing WAL for appending after replay,
// truncating the torn tail (anything past lastGood) first.
func openWALAppend(path string, lastGood int64, syncBytes uint64) (*walWriter, error) {
	if err := os.Truncate(path, lastGood); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &walWriter{f: f, w: bufio.NewWriter(f), syncBytes: syncBytes, bytes: uint64(lastGood)}, nil
}

// append encodes and writes one record, fsyncing when the batch fills.
// It returns the WAL's running logical byte total, which the tier
// mirrors into an atomic for its flush-threshold checks.
func (w *walWriter) append(rec walRecord) (totalBytes uint64, err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.bytes, w.err
	}
	p := w.payload[:0]
	p = append(p, rec.kind)
	switch rec.kind {
	case walApply:
		r := rec.report
		p = colfmt.AppendI64(p, encTime(r.T))
		p = colfmt.AppendI64(p, encTime(r.HeardAt))
		p = colfmt.AppendF64(p, r.Pos.Lat)
		p = colfmt.AppendF64(p, r.Pos.Lon)
		p = colfmt.AppendF64(p, r.RSSI)
		p = append(p, byte(r.Vendor))
		p = colfmt.AppendStr(p, r.TagID)
		p = colfmt.AppendStr(p, r.ReporterID)
	case walRegister, walReject:
		p = colfmt.AppendStr(p, rec.tagID)
	default:
		return w.bytes, fmt.Errorf("store: unknown WAL record kind %d", rec.kind)
	}
	w.payload = p
	if err := colfmt.WriteFrameCRC(w.w, p); err != nil {
		w.err = err
		return w.bytes, err
	}
	n := uint64(colfmt.FrameCRCSize(len(p)))
	w.bytes += n
	w.unsynced += n
	w.records++
	obsWALRecords.Inc()
	obsWALBytes.Add(n)
	if w.unsynced >= w.syncBytes {
		return w.bytes, w.syncBatchLocked()
	}
	return w.bytes, nil
}

// syncBatchLocked is the group-commit point: the fsync that lands when
// an append fills the batch. It is the observable WAL edge — the
// latency histogram and a self-rooted tier trace (batch bytes and
// record total as attrs) record it; individual appends are too hot to
// bill clock reads to and are covered by the record/byte counters.
func (w *walWriter) syncBatchLocked() error {
	batch, records := w.unsynced, w.records
	var t0 time.Time
	if obs.Enabled() {
		t0 = time.Now()
	}
	tr := otrace.Begin(otrace.PlaneTier, "wal.fsync_batch")
	tr.SetAttrs(0, int64(batch), int64(records))
	err := w.syncLocked()
	obs.Since(obsWALFsyncHist, t0)
	tr.End(walFsyncThreshold)
	return err
}

// sync flushes buffered records and fsyncs the file — the group-commit
// barrier Store.Sync exposes.
func (w *walWriter) sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.syncLocked()
}

func (w *walWriter) syncLocked() error {
	if w.err != nil {
		return w.err
	}
	if err := w.w.Flush(); err != nil {
		w.err = err
		return err
	}
	if err := w.f.Sync(); err != nil {
		w.err = err
		return err
	}
	w.fsyncs++
	w.unsynced = 0
	obsWALFsyncs.Inc()
	return nil
}

// close syncs and closes the file.
func (w *walWriter) close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	err := w.syncLocked()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// stats returns the writer's counters.
func (w *walWriter) stats() (bytes, records, fsyncs uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.bytes, w.records, w.fsyncs
}

// walReplay reads records from a WAL file up to the last whole,
// checksum-valid record. A torn or bit-flipped tail ends the replay
// cleanly (the records before it are returned); only a bad header is an
// error. lastGood is the file offset just past the last whole record —
// the truncation point before the log is appended to again.
func walReplay(path string) (records []walRecord, lastGood int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	magic := make([]byte, len(walMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, 0, fmt.Errorf("store: WAL header: %w", err)
	}
	if string(magic) != walMagic {
		return nil, 0, fmt.Errorf("store: bad WAL magic %q", magic)
	}
	lastGood = int64(len(walMagic))
	for {
		payload, err := colfmt.ReadFrameCRC(br)
		if err != nil {
			// io.EOF is the clean end; anything else is a torn or
			// corrupt tail — replay keeps everything before it.
			return records, lastGood, nil
		}
		rec, err := decodeWALRecord(payload)
		if err != nil {
			return records, lastGood, nil
		}
		records = append(records, rec)
		lastGood += colfmt.FrameCRCSize(len(payload))
	}
}

func decodeWALRecord(payload []byte) (walRecord, error) {
	d := colfmt.NewDec(payload)
	rec := walRecord{kind: d.U8()}
	switch rec.kind {
	case walApply:
		r := trace.Report{}
		r.T = decTime(d.I64())
		r.HeardAt = decTime(d.I64())
		r.Pos = geo.LatLon{Lat: d.F64(), Lon: d.F64()}
		r.RSSI = d.F64()
		r.Vendor = trace.Vendor(d.U8())
		r.TagID = d.Str()
		r.ReporterID = d.Str()
		rec.report = r
		rec.tagID = r.TagID
	case walRegister, walReject:
		rec.tagID = d.Str()
	default:
		return rec, fmt.Errorf("store: unknown WAL record kind %d", rec.kind)
	}
	if err := d.Close(); err != nil {
		return rec, err
	}
	return rec, nil
}
