package geo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Reference coordinates used across tests.
var (
	nyuAD  = LatLon{Lat: 24.5246, Lon: 54.4349} // NYU Abu Dhabi campus
	milan  = LatLon{Lat: 45.4642, Lon: 9.1900}
	newark = LatLon{Lat: 40.7357, Lon: -74.1724}
)

func TestDistanceKnownPairs(t *testing.T) {
	tests := []struct {
		name  string
		a, b  LatLon
		wantM float64
		tolM  float64
	}{
		{"zero", nyuAD, nyuAD, 0, 0.001},
		{"one degree lat at equator", LatLon{0, 0}, LatLon{1, 0}, 111195, 50},
		{"one degree lon at equator", LatLon{0, 0}, LatLon{0, 1}, 111195, 50},
		{"abu dhabi to milan", nyuAD, milan, 4651e3, 10e3},
		{"short hop 100m", nyuAD, Destination(nyuAD, 90, 100), 100, 0.01},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := Distance(tt.a, tt.b)
			if math.Abs(got-tt.wantM) > tt.tolM {
				t.Errorf("Distance(%v, %v) = %.1f m, want %.1f ± %.1f", tt.a, tt.b, got, tt.wantM, tt.tolM)
			}
		})
	}
}

func TestDistanceSymmetry(t *testing.T) {
	f := func(lat1, lon1, lat2, lon2 float64) bool {
		a := LatLon{Lat: math.Mod(lat1, 90), Lon: math.Mod(lon1, 180)}
		b := LatLon{Lat: math.Mod(lat2, 90), Lon: math.Mod(lon2, 180)}
		d1, d2 := Distance(a, b), Distance(b, a)
		return math.Abs(d1-d2) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistanceTriangleInequality(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		a := LatLon{Lat: rng.Float64()*160 - 80, Lon: rng.Float64()*360 - 180}
		b := LatLon{Lat: rng.Float64()*160 - 80, Lon: rng.Float64()*360 - 180}
		c := LatLon{Lat: rng.Float64()*160 - 80, Lon: rng.Float64()*360 - 180}
		if Distance(a, c) > Distance(a, b)+Distance(b, c)+1e-6 {
			t.Fatalf("triangle inequality violated for %v %v %v", a, b, c)
		}
	}
}

func TestDestinationRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 500; i++ {
		start := LatLon{Lat: rng.Float64()*120 - 60, Lon: rng.Float64()*360 - 180}
		bearing := rng.Float64() * 360
		dist := rng.Float64() * 100e3
		end := Destination(start, bearing, dist)
		got := Distance(start, end)
		if math.Abs(got-dist) > 1.0 {
			t.Fatalf("Destination(%v, %.1f°, %.1fm): round-trip distance %.3f", start, bearing, dist, got)
		}
	}
}

func TestBearingCardinal(t *testing.T) {
	p := LatLon{Lat: 10, Lon: 10}
	cases := []struct {
		name string
		q    LatLon
		want float64
	}{
		{"north", LatLon{11, 10}, 0},
		{"east", LatLon{10, 11}, 90},
		{"south", LatLon{9, 10}, 180},
		{"west", LatLon{10, 9}, 270},
	}
	for _, c := range cases {
		got := Bearing(p, c.q)
		diff := math.Abs(got - c.want)
		if diff > 180 {
			diff = 360 - diff
		}
		if diff > 0.5 {
			t.Errorf("%s: Bearing = %.2f, want %.2f", c.name, got, c.want)
		}
	}
}

func TestMidpoint(t *testing.T) {
	m := Midpoint(nyuAD, milan)
	d1, d2 := Distance(nyuAD, m), Distance(milan, m)
	if math.Abs(d1-d2) > 1.0 {
		t.Errorf("midpoint not equidistant: %.2f vs %.2f", d1, d2)
	}
}

func TestLerpEndpoints(t *testing.T) {
	if d := Distance(Lerp(nyuAD, milan, 0), nyuAD); d > 0.01 {
		t.Errorf("Lerp(0) off by %.3f m", d)
	}
	if d := Distance(Lerp(nyuAD, milan, 1), milan); d > 1 {
		t.Errorf("Lerp(1) off by %.3f m", d)
	}
	mid := Lerp(nyuAD, milan, 0.5)
	if d := Distance(mid, Midpoint(nyuAD, milan)); d > 10 {
		t.Errorf("Lerp(0.5) vs Midpoint off by %.3f m", d)
	}
}

func TestENURoundTrip(t *testing.T) {
	e := NewENU(nyuAD)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 300; i++ {
		p := Destination(nyuAD, rng.Float64()*360, rng.Float64()*20e3)
		x, y := e.Forward(p)
		back := e.Reverse(x, y)
		if d := Distance(p, back); d > 0.5 {
			t.Fatalf("ENU round trip error %.3f m for %v", d, p)
		}
	}
}

func TestENUDistanceAgreement(t *testing.T) {
	// Planar distance in the tangent frame should agree with haversine for
	// city-scale separations.
	e := NewENU(nyuAD)
	p := Destination(nyuAD, 40, 5000)
	x, y := e.Forward(p)
	planar := math.Hypot(x, y)
	if math.Abs(planar-5000) > 10 {
		t.Errorf("planar distance %.1f, want ~5000", planar)
	}
}

func TestBBox(t *testing.T) {
	b := NewBBox(nyuAD, milan, newark)
	for _, p := range []LatLon{nyuAD, milan, newark} {
		if !b.Contains(p) {
			t.Errorf("box should contain %v", p)
		}
	}
	if b.Contains(LatLon{-50, 0}) {
		t.Error("box should not contain antarctic point")
	}
	buf := b.Buffer(1000)
	if !buf.Contains(Destination(milan, 0, 900)) {
		t.Error("buffered box should contain point 900m north of milan")
	}
	center := NewBBox(LatLon{10, 10}, LatLon{12, 14}).Center()
	if center.Lat != 11 || center.Lon != 12 {
		t.Errorf("center = %v, want (11, 12)", center)
	}
}

func TestBBoxEmpty(t *testing.T) {
	b := NewBBox()
	if b != (BBox{}) {
		t.Errorf("empty NewBBox = %+v, want zero", b)
	}
}

func TestPathLengthAndAt(t *testing.T) {
	p := Path{
		nyuAD,
		Destination(nyuAD, 90, 1000),
		Destination(Destination(nyuAD, 90, 1000), 0, 500),
	}
	if l := p.Length(); math.Abs(l-1500) > 1 {
		t.Fatalf("Length = %.2f, want 1500", l)
	}
	// Walk along and verify monotone distance from start of each segment.
	at750 := p.At(750)
	if d := Distance(p[0], at750); math.Abs(d-750) > 1 {
		t.Errorf("At(750) is %.1f m from start, want 750", d)
	}
	// Clamping.
	if d := Distance(p.At(-5), p[0]); d > 0.01 {
		t.Error("At(-5) should clamp to start")
	}
	if d := Distance(p.At(1e9), p[2]); d > 0.01 {
		t.Error("At(huge) should clamp to end")
	}
}

func TestPathEdgeCases(t *testing.T) {
	if got := (Path{}).At(10); !got.IsZero() {
		t.Errorf("empty path At = %v, want zero", got)
	}
	single := Path{milan}
	if got := single.At(10); got != milan {
		t.Errorf("single path At = %v, want milan", got)
	}
	if l := single.Length(); l != 0 {
		t.Errorf("single path Length = %f, want 0", l)
	}
	// Degenerate repeated waypoints must not divide by zero.
	dup := Path{milan, milan, milan}
	if got := dup.At(0.5); got != milan {
		t.Errorf("dup path At = %v, want milan", got)
	}
}

func TestPathResample(t *testing.T) {
	p := Path{nyuAD, Destination(nyuAD, 90, 1000)}
	rs := p.Resample(100)
	if len(rs) < 10 || len(rs) > 12 {
		t.Fatalf("Resample produced %d points", len(rs))
	}
	if d := Distance(rs[len(rs)-1], p[1]); d > 0.01 {
		t.Error("resample must keep the final endpoint")
	}
	for i := 1; i < len(rs)-1; i++ {
		if d := Distance(rs[i-1], rs[i]); math.Abs(d-100) > 1 {
			t.Fatalf("step %d has length %.2f, want 100", i, d)
		}
	}
}

func TestNormalizeLon(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 0}, {180, 180}, {-180, 180}, {190, -170}, {-190, 170}, {540, 180}, {361, 1},
	}
	for _, c := range cases {
		if got := NormalizeLon(c.in); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("NormalizeLon(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestValid(t *testing.T) {
	valid := []LatLon{{0, 0}, {90, 180}, {-90, -180}, nyuAD}
	for _, p := range valid {
		if !p.Valid() {
			t.Errorf("%v should be valid", p)
		}
	}
	invalid := []LatLon{{91, 0}, {0, 181}, {math.NaN(), 0}, {0, math.Inf(1)}}
	for _, p := range invalid {
		if p.Valid() {
			t.Errorf("%v should be invalid", p)
		}
	}
}

func TestSpeedConversions(t *testing.T) {
	if got := KmhToMs(36); math.Abs(got-10) > 1e-12 {
		t.Errorf("KmhToMs(36) = %v", got)
	}
	if got := MsToKmh(10); math.Abs(got-36) > 1e-12 {
		t.Errorf("MsToKmh(10) = %v", got)
	}
	f := func(v float64) bool {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
		return math.Abs(MsToKmh(KmhToMs(v))-v) < math.Abs(v)*1e-12+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkDistance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Distance(nyuAD, milan)
	}
}

func BenchmarkDestination(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Destination(nyuAD, 123, 4567)
	}
}

func BenchmarkENUForward(b *testing.B) {
	e := NewENU(nyuAD)
	p := Destination(nyuAD, 45, 3000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Forward(p)
	}
}
