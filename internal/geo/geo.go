// Package geo provides the WGS-84 geodesic primitives used throughout the
// simulator: positions, distances, bearings, destination points, local
// tangent-plane (ENU) projections, and polyline paths.
//
// The simulator deals with distances of at most a few hundred kilometers, so
// a spherical earth model (haversine and rhumb-free direct geodesics) is
// accurate to well under the GPS noise floor the experiments care about.
package geo

import (
	"fmt"
	"math"
)

// EarthRadiusMeters is the mean earth radius used by the spherical model.
const EarthRadiusMeters = 6371008.8

// LatLon is a WGS-84 position in decimal degrees.
//
// The zero value is the "null island" position (0, 0), which the simulator
// treats as a valid coordinate; use IsZero to test for it explicitly.
type LatLon struct {
	Lat float64 // degrees, positive north, in [-90, 90]
	Lon float64 // degrees, positive east, in (-180, 180]
}

// IsZero reports whether p is the zero position (0, 0).
func (p LatLon) IsZero() bool { return p.Lat == 0 && p.Lon == 0 }

// Valid reports whether the coordinates are finite and within WGS-84 bounds.
func (p LatLon) Valid() bool {
	if math.IsNaN(p.Lat) || math.IsNaN(p.Lon) || math.IsInf(p.Lat, 0) || math.IsInf(p.Lon, 0) {
		return false
	}
	return p.Lat >= -90 && p.Lat <= 90 && p.Lon >= -180 && p.Lon <= 180
}

// String formats the position with ~0.1 m precision (6 decimal places).
func (p LatLon) String() string {
	return fmt.Sprintf("(%.6f, %.6f)", p.Lat, p.Lon)
}

// Radians returns the position in radians.
func (p LatLon) Radians() (lat, lon float64) {
	return p.Lat * math.Pi / 180, p.Lon * math.Pi / 180
}

// FromRadians builds a LatLon from radians, normalizing the longitude into
// (-180, 180].
func FromRadians(lat, lon float64) LatLon {
	return LatLon{
		Lat: lat * 180 / math.Pi,
		Lon: NormalizeLon(lon * 180 / math.Pi),
	}
}

// NormalizeLon wraps a longitude in degrees into (-180, 180].
func NormalizeLon(lon float64) float64 {
	for lon > 180 {
		lon -= 360
	}
	for lon <= -180 {
		lon += 360
	}
	return lon
}

// Distance returns the great-circle distance between p and q in meters.
func Distance(p, q LatLon) float64 {
	lat1, lon1 := p.Radians()
	lat2, lon2 := q.Radians()
	dLat := lat2 - lat1
	dLon := lon2 - lon1
	sinLat := math.Sin(dLat / 2)
	sinLon := math.Sin(dLon / 2)
	a := sinLat*sinLat + math.Cos(lat1)*math.Cos(lat2)*sinLon*sinLon
	if a < 0 {
		a = 0
	}
	if a > 1 {
		a = 1
	}
	return 2 * EarthRadiusMeters * math.Asin(math.Sqrt(a))
}

// Bearing returns the initial great-circle bearing from p to q in degrees
// clockwise from north, in [0, 360).
func Bearing(p, q LatLon) float64 {
	lat1, lon1 := p.Radians()
	lat2, lon2 := q.Radians()
	dLon := lon2 - lon1
	y := math.Sin(dLon) * math.Cos(lat2)
	x := math.Cos(lat1)*math.Sin(lat2) - math.Sin(lat1)*math.Cos(lat2)*math.Cos(dLon)
	deg := math.Atan2(y, x) * 180 / math.Pi
	if deg < 0 {
		deg += 360
	}
	return deg
}

// Destination returns the point reached by traveling distanceM meters from p
// along the given initial bearing (degrees clockwise from north).
func Destination(p LatLon, bearingDeg, distanceM float64) LatLon {
	lat1, lon1 := p.Radians()
	brg := bearingDeg * math.Pi / 180
	ad := distanceM / EarthRadiusMeters // angular distance
	sinLat2 := math.Sin(lat1)*math.Cos(ad) + math.Cos(lat1)*math.Sin(ad)*math.Cos(brg)
	lat2 := math.Asin(clamp(sinLat2, -1, 1))
	y := math.Sin(brg) * math.Sin(ad) * math.Cos(lat1)
	x := math.Cos(ad) - math.Sin(lat1)*math.Sin(lat2)
	lon2 := lon1 + math.Atan2(y, x)
	return FromRadians(lat2, lon2)
}

// Midpoint returns the great-circle midpoint between p and q.
func Midpoint(p, q LatLon) LatLon {
	lat1, lon1 := p.Radians()
	lat2, lon2 := q.Radians()
	dLon := lon2 - lon1
	bx := math.Cos(lat2) * math.Cos(dLon)
	by := math.Cos(lat2) * math.Sin(dLon)
	lat := math.Atan2(math.Sin(lat1)+math.Sin(lat2),
		math.Sqrt((math.Cos(lat1)+bx)*(math.Cos(lat1)+bx)+by*by))
	lon := lon1 + math.Atan2(by, math.Cos(lat1)+bx)
	return FromRadians(lat, lon)
}

// Lerp interpolates along the great circle from p to q; t=0 yields p, t=1
// yields q. t outside [0,1] extrapolates.
func Lerp(p, q LatLon, t float64) LatLon {
	d := Distance(p, q)
	if d == 0 {
		return p
	}
	return Destination(p, Bearing(p, q), d*t)
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// ENU is a local east-north-up tangent plane anchored at an origin. It maps
// nearby WGS-84 positions to planar meters, which the radio and hexgrid
// packages use for geometry that must be exactly Euclidean.
type ENU struct {
	origin   LatLon
	cosLat   float64
	originLa float64 // origin latitude in radians
	originLo float64 // origin longitude in radians
}

// NewENU anchors a local tangent plane at origin.
func NewENU(origin LatLon) *ENU {
	lat, lon := origin.Radians()
	return &ENU{origin: origin, cosLat: math.Cos(lat), originLa: lat, originLo: lon}
}

// Origin returns the anchor position.
func (e *ENU) Origin() LatLon { return e.origin }

// Forward projects a position to local (east, north) meters.
func (e *ENU) Forward(p LatLon) (x, y float64) {
	lat, lon := p.Radians()
	x = (lon - e.originLo) * e.cosLat * EarthRadiusMeters
	y = (lat - e.originLa) * EarthRadiusMeters
	return x, y
}

// Reverse maps local (east, north) meters back to a WGS-84 position.
func (e *ENU) Reverse(x, y float64) LatLon {
	lat := e.originLa + y/EarthRadiusMeters
	lon := e.originLo + x/(e.cosLat*EarthRadiusMeters)
	return FromRadians(lat, lon)
}

// BBox is a latitude/longitude bounding box. It does not handle antimeridian
// crossings; the simulated worlds are city-scale and never cross it.
type BBox struct {
	MinLat, MinLon, MaxLat, MaxLon float64
}

// NewBBox returns the minimal box containing all points. An empty input
// yields the zero box.
func NewBBox(points ...LatLon) BBox {
	if len(points) == 0 {
		return BBox{}
	}
	b := BBox{
		MinLat: points[0].Lat, MaxLat: points[0].Lat,
		MinLon: points[0].Lon, MaxLon: points[0].Lon,
	}
	for _, p := range points[1:] {
		b = b.Extend(p)
	}
	return b
}

// Extend returns the box grown to contain p.
func (b BBox) Extend(p LatLon) BBox {
	if p.Lat < b.MinLat {
		b.MinLat = p.Lat
	}
	if p.Lat > b.MaxLat {
		b.MaxLat = p.Lat
	}
	if p.Lon < b.MinLon {
		b.MinLon = p.Lon
	}
	if p.Lon > b.MaxLon {
		b.MaxLon = p.Lon
	}
	return b
}

// Contains reports whether p lies inside the box (inclusive).
func (b BBox) Contains(p LatLon) bool {
	return p.Lat >= b.MinLat && p.Lat <= b.MaxLat && p.Lon >= b.MinLon && p.Lon <= b.MaxLon
}

// Center returns the box center.
func (b BBox) Center() LatLon {
	return LatLon{Lat: (b.MinLat + b.MaxLat) / 2, Lon: NormalizeLon((b.MinLon + b.MaxLon) / 2)}
}

// Buffer returns the box expanded by meters on every side.
func (b BBox) Buffer(meters float64) BBox {
	dLat := meters / EarthRadiusMeters * 180 / math.Pi
	cos := math.Cos((b.MinLat + b.MaxLat) / 2 * math.Pi / 180)
	if cos < 0.01 {
		cos = 0.01
	}
	dLon := dLat / cos
	return BBox{
		MinLat: b.MinLat - dLat, MaxLat: b.MaxLat + dLat,
		MinLon: b.MinLon - dLon, MaxLon: b.MaxLon + dLon,
	}
}

// Path is an ordered sequence of waypoints traversed with great-circle
// segments.
type Path []LatLon

// Length returns the total path length in meters.
func (p Path) Length() float64 {
	var total float64
	for i := 1; i < len(p); i++ {
		total += Distance(p[i-1], p[i])
	}
	return total
}

// At returns the position at the given distance (meters) from the start,
// clamping to the endpoints. An empty path returns the zero position; a
// single-point path returns that point.
func (p Path) At(distanceM float64) LatLon {
	if len(p) == 0 {
		return LatLon{}
	}
	if len(p) == 1 || distanceM <= 0 {
		return p[0]
	}
	remaining := distanceM
	for i := 1; i < len(p); i++ {
		seg := Distance(p[i-1], p[i])
		if remaining <= seg {
			if seg == 0 {
				return p[i]
			}
			return Lerp(p[i-1], p[i], remaining/seg)
		}
		remaining -= seg
	}
	return p[len(p)-1]
}

// Resample returns the path sampled every stepM meters, always including
// both endpoints.
func (p Path) Resample(stepM float64) Path {
	if len(p) < 2 || stepM <= 0 {
		return append(Path(nil), p...)
	}
	total := p.Length()
	var out Path
	for d := 0.0; d < total; d += stepM {
		out = append(out, p.At(d))
	}
	out = append(out, p[len(p)-1])
	return out
}

// Speed conversion helpers. The paper classifies mobility by km/h.

// KmhToMs converts km/h to m/s.
func KmhToMs(kmh float64) float64 { return kmh / 3.6 }

// MsToKmh converts m/s to km/h.
func MsToKmh(ms float64) float64 { return ms * 3.6 }
