package mobility

import (
	"math/rand"
	"time"

	"tagsim/internal/geo"
)

// RoutineConfig describes one phone-carrying resident whose daily movement
// the crowd simulation reproduces: overnight at home, weekday commutes,
// lunch walks, errands, and more outdoor time on weekends (the behavioral
// asymmetry behind the paper's Figure 5f).
type RoutineConfig struct {
	Home geo.LatLon
	// Work is the weekday destination; the zero value means no commute.
	Work geo.LatLon
	// Venues are outing destinations (cafes, shops, gyms). When empty,
	// outings go to random points within WanderRadiusM of home.
	Venues []geo.LatLon
	// WanderRadiusM bounds improvised outing destinations (default 800).
	WanderRadiusM float64
	// OutingProbWeekday / OutingProbWeekend are the per-day probabilities
	// of an evening outing (defaults 0.3 / 0.75).
	OutingProbWeekday float64
	OutingProbWeekend float64
}

func (c *RoutineConfig) defaults() {
	if c.WanderRadiusM == 0 {
		c.WanderRadiusM = 800
	}
	if c.OutingProbWeekday == 0 {
		c.OutingProbWeekday = 0.3
	}
	if c.OutingProbWeekend == 0 {
		c.OutingProbWeekend = 0.75
	}
}

// DailyRoutine generates an itinerary for the resident covering whole days
// starting at midnight of startDay (which is truncated to midnight UTC).
func DailyRoutine(rng *rand.Rand, cfg RoutineConfig, startDay time.Time, days int) *Itinerary {
	cfg.defaults()
	day0 := startDay.UTC().Truncate(24 * time.Hour)
	var segments []Segment
	cur := cfg.Home
	// clock tracks the next unscheduled instant as an offset from day0.
	clock := time.Duration(0)

	stayUntil := func(until time.Duration) {
		if until > clock {
			segments = append(segments, Stay{At: cur, For: until - clock})
			clock = until
		}
	}
	travelTo := func(dest geo.LatLon) {
		if dest == cur {
			return
		}
		mv := travelLeg(rng, cur, dest)
		segments = append(segments, mv)
		clock += mv.Duration()
		cur = dest
	}
	pickVenue := func() geo.LatLon {
		if len(cfg.Venues) > 0 {
			return cfg.Venues[rng.Intn(len(cfg.Venues))]
		}
		return geo.Destination(cfg.Home, rng.Float64()*360, 100+rng.Float64()*cfg.WanderRadiusM)
	}

	for d := 0; d < days; d++ {
		dayStart := time.Duration(d) * 24 * time.Hour
		date := day0.Add(dayStart)
		weekend := isWeekend(date)

		if !weekend && !cfg.Work.IsZero() {
			// Leave home between 7:30 and 9:00.
			leave := dayStart + 7*time.Hour + 30*time.Minute + randDur(rng, 90*time.Minute)
			stayUntil(leave)
			travelTo(cfg.Work)
			// Lunch walk half the time, 12:00-13:30.
			if rng.Float64() < 0.5 {
				lunch := dayStart + 12*time.Hour + randDur(rng, time.Hour)
				if lunch > clock {
					stayUntil(lunch)
					spot := geo.Destination(cfg.Work, rng.Float64()*360, 100+rng.Float64()*400)
					travelTo(spot)
					stayUntil(clock + 20*time.Minute + randDur(rng, 20*time.Minute))
					travelTo(cfg.Work)
				}
			}
			// Head home between 17:00 and 18:30.
			leaveWork := dayStart + 17*time.Hour + randDur(rng, 90*time.Minute)
			stayUntil(leaveWork)
			travelTo(cfg.Home)
		} else if weekend {
			// Weekend midday outing with high probability and long
			// stays: more people outdoors, more reporting encounters.
			if rng.Float64() < 0.9 {
				out := dayStart + 10*time.Hour + randDur(rng, 2*time.Hour)
				stayUntil(out)
				travelTo(pickVenue())
				stayUntil(clock + 90*time.Minute + randDur(rng, 150*time.Minute))
				travelTo(cfg.Home)
			}
		} else {
			// Weekday, no job: errands and cafe visits at midday keep
			// the venues populated during working hours too, though far
			// less than on weekends.
			if rng.Float64() < 0.35 {
				out := dayStart + 10*time.Hour + randDur(rng, 4*time.Hour)
				stayUntil(out)
				travelTo(pickVenue())
				stayUntil(clock + time.Hour + randDur(rng, time.Hour))
				travelTo(cfg.Home)
			}
		}

		// Evening outing.
		outingProb := cfg.OutingProbWeekday
		if weekend {
			outingProb = cfg.OutingProbWeekend
		}
		if rng.Float64() < outingProb {
			out := dayStart + 19*time.Hour + randDur(rng, 2*time.Hour)
			if out > clock {
				stayUntil(out)
				travelTo(pickVenue())
				stayUntil(clock + 45*time.Minute + randDur(rng, 90*time.Minute))
				travelTo(cfg.Home)
			}
		}

		// Home (or wherever we ended up) until midnight.
		stayUntil(dayStart + 24*time.Hour)
	}
	return NewItinerary(day0, segments...)
}

// travelLeg picks a travel mode by distance: short hops are walked, medium
// ones occasionally jogged, long ones ride transit.
func travelLeg(rng *rand.Rand, from, to geo.LatLon) Move {
	d := geo.Distance(from, to)
	var speed float64
	switch {
	case d < 600:
		speed = 3.5 + rng.Float64()*2 // walk, 3.5-5.5 km/h
	case d < 2000:
		if rng.Float64() < 0.15 {
			speed = 7 + rng.Float64()*4 // jog, 7-11 km/h
		} else {
			speed = 4 + rng.Float64()*1.5
		}
	default:
		speed = 18 + rng.Float64()*22 // transit, 18-40 km/h
	}
	return Move{Along: geo.Path{from, to}, SpeedKmh: speed}
}

func randDur(rng *rand.Rand, max time.Duration) time.Duration {
	if max <= 0 {
		return 0
	}
	return time.Duration(rng.Int63n(int64(max)))
}

func isWeekend(t time.Time) bool {
	switch t.Weekday() {
	case time.Saturday, time.Sunday:
		return true
	default:
		return false
	}
}
