package mobility

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"tagsim/internal/geo"
)

var (
	origin = geo.LatLon{Lat: 24.4539, Lon: 54.3773}
	start  = time.Date(2022, 3, 7, 0, 0, 0, 0, time.UTC) // a Monday
)

func TestClassifySpeed(t *testing.T) {
	cases := []struct {
		kmh  float64
		want SpeedClass
	}{
		{0, ClassStationary}, {0.4, ClassStationary},
		{0.5, ClassPedestrian}, {3, ClassPedestrian}, {5.9, ClassPedestrian},
		{6, ClassJogging}, {11.9, ClassJogging},
		{12, ClassTransit}, {300, ClassTransit},
	}
	for _, c := range cases {
		if got := ClassifySpeed(c.kmh); got != c.want {
			t.Errorf("ClassifySpeed(%v) = %v, want %v", c.kmh, got, c.want)
		}
	}
}

func TestSpeedClassString(t *testing.T) {
	if ClassPedestrian.String() != "Pedestrian" || ClassTransit.String() != "Transit" {
		t.Error("class names wrong")
	}
	if SpeedClass(9).String() != "SpeedClass(9)" {
		t.Error("unknown class name wrong")
	}
}

func TestStationary(t *testing.T) {
	s := Stationary(origin)
	if s.Pos(start) != origin || s.Pos(start.Add(100*time.Hour)) != origin {
		t.Error("stationary model moved")
	}
}

func TestMoveTiming(t *testing.T) {
	dest := geo.Destination(origin, 90, 1000)
	m := Move{Along: geo.Path{origin, dest}, SpeedKmh: 3.6} // 1 m/s
	if d := m.Duration(); math.Abs(d.Seconds()-1000) > 1 {
		t.Fatalf("Duration = %v, want ~1000s", d)
	}
	mid := m.PosAt(500 * time.Second)
	if d := geo.Distance(origin, mid); math.Abs(d-500) > 2 {
		t.Errorf("PosAt(500s) is %.1f m along, want 500", d)
	}
	if geo.Distance(m.End(), dest) > 0.01 {
		t.Error("End() mismatch")
	}
	// Zero-speed move is degenerate.
	if (Move{Along: geo.Path{origin, dest}}).Duration() != 0 {
		t.Error("zero-speed move must have zero duration")
	}
	if !(Move{}).End().IsZero() || !(Move{}).PosAt(0).IsZero() {
		t.Error("empty move should return zero positions")
	}
}

func TestItineraryPos(t *testing.T) {
	a := origin
	b := geo.Destination(a, 90, 360) // 6 min at 3.6 km/h
	it := NewItinerary(start,
		Stay{At: a, For: 10 * time.Minute},
		Move{Along: geo.Path{a, b}, SpeedKmh: 3.6},
		Stay{At: b, For: 10 * time.Minute},
	)
	// Before start.
	if it.Pos(start.Add(-time.Hour)) != a {
		t.Error("pre-start position should be the first point")
	}
	// During the stay.
	if it.Pos(start.Add(5*time.Minute)) != a {
		t.Error("position during stay should be a")
	}
	// Midway through the move: 3 min in = 180 m.
	mid := it.Pos(start.Add(13 * time.Minute))
	if d := geo.Distance(a, mid); math.Abs(d-180) > 2 {
		t.Errorf("mid-move position %.1f m along, want 180", d)
	}
	// After the end.
	if d := geo.Distance(it.Pos(start.Add(time.Hour)), b); d > 0.01 {
		t.Error("post-end position should be b")
	}
	wantEnd := start.Add(10*time.Minute + 6*time.Minute + 10*time.Minute)
	if got := it.End(); got.Sub(wantEnd) > time.Second || wantEnd.Sub(got) > time.Second {
		t.Errorf("End = %v, want %v", got, wantEnd)
	}
}

func TestItinerarySkipsDegenerateSegments(t *testing.T) {
	it := NewItinerary(start,
		Stay{At: origin, For: 0},
		Move{Along: geo.Path{origin}, SpeedKmh: 5},
		Stay{At: origin, For: time.Minute},
	)
	if len(it.segments) != 1 {
		t.Errorf("kept %d segments, want 1", len(it.segments))
	}
}

func TestEmptyItinerary(t *testing.T) {
	it := NewItinerary(start)
	if !it.Pos(start).IsZero() {
		t.Error("empty itinerary should report zero position")
	}
	if !it.End().Equal(start) {
		t.Error("empty itinerary ends at start")
	}
}

func TestItineraryDistances(t *testing.T) {
	b := geo.Destination(origin, 0, 1000)
	c := geo.Destination(b, 0, 2000)
	it := NewItinerary(start,
		Move{Along: geo.Path{origin, b}, SpeedKmh: 5}, // walk 1 km
		Move{Along: geo.Path{b, c}, SpeedKmh: 30},     // transit 2 km
		Stay{At: c, For: time.Hour},
	)
	if d := it.TotalDistanceM(); math.Abs(d-3000) > 5 {
		t.Errorf("TotalDistanceM = %.1f", d)
	}
	byClass := it.DistanceByClass()
	if math.Abs(byClass[ClassPedestrian]-1000) > 5 {
		t.Errorf("pedestrian distance = %.1f", byClass[ClassPedestrian])
	}
	if math.Abs(byClass[ClassTransit]-2000) > 5 {
		t.Errorf("transit distance = %.1f", byClass[ClassTransit])
	}
}

func TestSpeedKmhAt(t *testing.T) {
	b := geo.Destination(origin, 90, 10000)
	it := NewItinerary(start, Move{Along: geo.Path{origin, b}, SpeedKmh: 20})
	got := SpeedKmhAt(it, start.Add(10*time.Minute), 10*time.Second)
	if math.Abs(got-20) > 0.5 {
		t.Errorf("speed = %.2f, want 20", got)
	}
	// Stationary phase.
	if v := SpeedKmhAt(it, it.End().Add(time.Hour), 10*time.Second); v > 0.01 {
		t.Errorf("post-end speed = %v", v)
	}
	// Default window.
	if v := SpeedKmhAt(it, start.Add(10*time.Minute), 0); math.Abs(v-20) > 0.5 {
		t.Errorf("default-window speed = %v", v)
	}
}

func TestItineraryMonotoneContinuous(t *testing.T) {
	// Positions along an itinerary should never jump more than the top
	// speed allows.
	rng := rand.New(rand.NewSource(3))
	box := geo.NewBBox(origin).Buffer(3000)
	it := RandomWaypoint(rng, box, 2, 30, 0, 10*time.Minute, start, 6*time.Hour)
	prev := it.Pos(start)
	for dt := time.Duration(0); dt < 6*time.Hour; dt += 10 * time.Second {
		cur := it.Pos(start.Add(dt))
		jump := geo.Distance(prev, cur)
		// 30 km/h for 10 s is ~83 m.
		if jump > 90 {
			t.Fatalf("position jumped %.1f m in 10 s at %v", jump, dt)
		}
		prev = cur
	}
}

func TestRandomWaypointStaysInBoxish(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	box := geo.NewBBox(origin).Buffer(2000)
	it := RandomWaypoint(rng, box, 3, 6, time.Minute, 5*time.Minute, start, 4*time.Hour)
	loose := box.Buffer(100)
	for dt := time.Duration(0); dt < 4*time.Hour; dt += time.Minute {
		p := it.Pos(start.Add(dt))
		if !loose.Contains(p) {
			t.Fatalf("wanderer escaped the box at %v: %v", dt, p)
		}
	}
	if it.End().Before(start.Add(4 * time.Hour)) {
		t.Error("itinerary should cover the horizon")
	}
}

func TestRandomWaypointPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for bad speed range")
		}
	}()
	RandomWaypoint(rand.New(rand.NewSource(1)), geo.BBox{}, 0, 0, 0, 0, start, time.Hour)
}

func TestDailyRoutineCommutes(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	work := geo.Destination(origin, 45, 5000)
	cfg := RoutineConfig{Home: origin, Work: work}
	it := DailyRoutine(rng, cfg, start, 5) // Mon-Fri
	// At 3am every day: home.
	for d := 0; d < 5; d++ {
		p := it.Pos(start.Add(time.Duration(d)*24*time.Hour + 3*time.Hour))
		if geo.Distance(p, origin) > 1 {
			t.Errorf("day %d 03:00: not at home (%.0f m away)", d, geo.Distance(p, origin))
		}
	}
	// At 11am on weekdays: at (or very near) work.
	atWork := 0
	for d := 0; d < 5; d++ {
		p := it.Pos(start.Add(time.Duration(d)*24*time.Hour + 11*time.Hour))
		if geo.Distance(p, work) < 600 {
			atWork++
		}
	}
	if atWork < 4 {
		t.Errorf("only %d/5 weekdays at work at 11:00", atWork)
	}
}

func TestDailyRoutineWeekendOutdoor(t *testing.T) {
	// Across many residents, weekend midday should see more people away
	// from home than weekday midday overnight hours.
	awayAt := func(dayOffset int, hour int) int {
		away := 0
		for i := 0; i < 60; i++ {
			rng := rand.New(rand.NewSource(int64(1000 + i)))
			home := geo.Destination(origin, float64(i*7), float64(200+i*31))
			cfg := RoutineConfig{Home: home} // no work: weekday midday is home
			it := DailyRoutine(rng, cfg, start, 7)
			p := it.Pos(start.Add(time.Duration(dayOffset)*24*time.Hour + time.Duration(hour)*time.Hour))
			if geo.Distance(p, home) > 50 {
				away++
			}
		}
		return away
	}
	weekday := awayAt(1, 12) // Tuesday noon
	weekend := awayAt(5, 12) // Saturday noon
	if weekend <= weekday {
		t.Errorf("weekend away=%d should exceed weekday away=%d", weekend, weekday)
	}
}

func TestDailyRoutineNightAtHome(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	cfg := RoutineConfig{Home: origin, Work: geo.Destination(origin, 10, 3000)}
	it := DailyRoutine(rng, cfg, start, 7)
	for d := 0; d < 7; d++ {
		p := it.Pos(start.Add(time.Duration(d)*24*time.Hour + 4*time.Hour))
		if geo.Distance(p, origin) > 1 {
			t.Fatalf("day %d 04:00 not at home", d)
		}
	}
}

func TestDailyRoutineDeterministic(t *testing.T) {
	mk := func() *Itinerary {
		rng := rand.New(rand.NewSource(5))
		return DailyRoutine(rng, RoutineConfig{Home: origin, Work: geo.Destination(origin, 45, 4000)}, start, 3)
	}
	a, b := mk(), mk()
	for dt := time.Duration(0); dt < 72*time.Hour; dt += 17 * time.Minute {
		if a.Pos(start.Add(dt)) != b.Pos(start.Add(dt)) {
			t.Fatal("routine not deterministic")
		}
	}
}

func TestTravelLegModes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	short := travelLeg(rng, origin, geo.Destination(origin, 0, 300))
	if ClassifySpeed(short.SpeedKmh) != ClassPedestrian {
		t.Errorf("300 m leg speed %.1f should be pedestrian", short.SpeedKmh)
	}
	long := travelLeg(rng, origin, geo.Destination(origin, 0, 5000))
	if ClassifySpeed(long.SpeedKmh) != ClassTransit {
		t.Errorf("5 km leg speed %.1f should be transit", long.SpeedKmh)
	}
}

func BenchmarkItineraryPos(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	box := geo.NewBBox(origin).Buffer(5000)
	it := RandomWaypoint(rng, box, 3, 30, 0, 5*time.Minute, start, 24*time.Hour)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it.Pos(start.Add(time.Duration(i%86400) * time.Second))
	}
}

func BenchmarkDailyRoutineGen(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(int64(i)))
		DailyRoutine(rng, RoutineConfig{Home: origin, Work: geo.Destination(origin, 45, 4000)}, start, 30)
	}
}
