// Package mobility models how tags, vantage points, and reporting devices
// move: stationary posts, waypoint routes at a mode-specific speed, random
// waypoint wanderers, and the daily home/work/venue routines that drive
// crowd encounters.
//
// Models are pure functions of virtual time (Pos(t)), which keeps the
// simulation deterministic and lets any subsystem — the radio plane, the
// GPS sampler, the analysis — query a position at any instant without
// coupling to the event loop.
package mobility

import (
	"fmt"
	"math/rand"
	"time"

	"tagsim/internal/geo"
)

// Model yields an entity's true position at any virtual time.
type Model interface {
	Pos(t time.Time) geo.LatLon
}

// SpeedClass is the paper's mobility classification (Figure 5d).
type SpeedClass uint8

// Speed classes, thresholded exactly as in the paper: pedestrian below
// 6 km/h, jogging 6-12 km/h, transit at or above 12 km/h. Speeds below
// 0.5 km/h count as stationary.
const (
	ClassStationary SpeedClass = iota
	ClassPedestrian
	ClassJogging
	ClassTransit
)

var speedClassNames = [...]string{"Stationary", "Pedestrian", "Jogging", "Transit"}

// String names the class as in Figure 5d.
func (c SpeedClass) String() string {
	if int(c) < len(speedClassNames) {
		return speedClassNames[c]
	}
	return fmt.Sprintf("SpeedClass(%d)", uint8(c))
}

// Speed-class thresholds in km/h.
const (
	StationaryMaxKmh = 0.5
	PedestrianMaxKmh = 6.0
	JoggingMaxKmh    = 12.0
)

// ClassifySpeed buckets an average speed into the paper's classes.
func ClassifySpeed(kmh float64) SpeedClass {
	switch {
	case kmh < StationaryMaxKmh:
		return ClassStationary
	case kmh < PedestrianMaxKmh:
		return ClassPedestrian
	case kmh < JoggingMaxKmh:
		return ClassJogging
	default:
		return ClassTransit
	}
}

// Stationary is a model that never moves.
type Stationary geo.LatLon

// Pos implements Model.
func (s Stationary) Pos(time.Time) geo.LatLon { return geo.LatLon(s) }

// Segment is one piece of an itinerary.
type Segment interface {
	// Duration is how long the segment takes.
	Duration() time.Duration
	// PosAt returns the position elapsed into the segment; elapsed is
	// clamped to [0, Duration].
	PosAt(elapsed time.Duration) geo.LatLon
	// End returns the final position.
	End() geo.LatLon
}

// Stay holds a position for a duration.
type Stay struct {
	At  geo.LatLon
	For time.Duration
}

// Duration implements Segment.
func (s Stay) Duration() time.Duration { return s.For }

// PosAt implements Segment.
func (s Stay) PosAt(time.Duration) geo.LatLon { return s.At }

// End implements Segment.
func (s Stay) End() geo.LatLon { return s.At }

// Move traverses a path at constant speed.
type Move struct {
	Along    geo.Path
	SpeedKmh float64
}

// Duration implements Segment.
func (m Move) Duration() time.Duration {
	if m.SpeedKmh <= 0 {
		return 0
	}
	sec := m.Along.Length() / geo.KmhToMs(m.SpeedKmh)
	return time.Duration(sec * float64(time.Second))
}

// PosAt implements Segment.
func (m Move) PosAt(elapsed time.Duration) geo.LatLon {
	if len(m.Along) == 0 {
		return geo.LatLon{}
	}
	d := geo.KmhToMs(m.SpeedKmh) * elapsed.Seconds()
	return m.Along.At(d)
}

// End implements Segment.
func (m Move) End() geo.LatLon {
	if len(m.Along) == 0 {
		return geo.LatLon{}
	}
	return m.Along[len(m.Along)-1]
}

// Itinerary is a timed sequence of segments starting at a fixed instant.
// Before the start it reports the first position; after the last segment it
// reports the final position.
type Itinerary struct {
	Start    time.Time
	segments []Segment
	offsets  []time.Duration // cumulative start offset of each segment
	total    time.Duration
}

// NewItinerary builds an itinerary from segments. Zero-duration segments
// are allowed (instant teleports are not: a Move with zero speed
// contributes nothing and is skipped).
func NewItinerary(start time.Time, segments ...Segment) *Itinerary {
	it := &Itinerary{Start: start}
	for _, s := range segments {
		d := s.Duration()
		if d <= 0 {
			continue
		}
		it.offsets = append(it.offsets, it.total)
		it.segments = append(it.segments, s)
		it.total += d
	}
	return it
}

// End returns when the itinerary finishes.
func (it *Itinerary) End() time.Time { return it.Start.Add(it.total) }

// TotalDistanceM returns the ground distance covered by Move segments.
func (it *Itinerary) TotalDistanceM() float64 {
	var total float64
	for _, s := range it.segments {
		if m, ok := s.(Move); ok {
			total += m.Along.Length()
		}
	}
	return total
}

// DistanceByClass returns the ground distance covered per speed class,
// in meters — the decomposition behind Table 1's Walk/Jog/Transit columns.
func (it *Itinerary) DistanceByClass() map[SpeedClass]float64 {
	out := make(map[SpeedClass]float64)
	for _, s := range it.segments {
		if m, ok := s.(Move); ok {
			out[ClassifySpeed(m.SpeedKmh)] += m.Along.Length()
		}
	}
	return out
}

// Waypoints returns every segment endpoint the itinerary touches. Because
// segments are great-circle legs at city scale, the maximum distance from
// any fixed point to the itinerary is attained (to within meters) at one of
// these waypoints — which is how the device fleet computes exact roam
// bounds for its spatial index.
func (it *Itinerary) Waypoints() []geo.LatLon {
	var out []geo.LatLon
	for _, s := range it.segments {
		switch seg := s.(type) {
		case Stay:
			out = append(out, seg.At)
		case Move:
			out = append(out, seg.Along...)
		default:
			out = append(out, seg.PosAt(0), seg.End())
		}
	}
	return out
}

// Pos implements Model.
func (it *Itinerary) Pos(t time.Time) geo.LatLon {
	if len(it.segments) == 0 {
		return geo.LatLon{}
	}
	if !t.After(it.Start) {
		return it.segments[0].PosAt(0)
	}
	elapsed := t.Sub(it.Start)
	if elapsed >= it.total {
		return it.segments[len(it.segments)-1].End()
	}
	// Binary search for the active segment.
	lo, hi := 0, len(it.segments)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if it.offsets[mid] <= elapsed {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return it.segments[lo].PosAt(elapsed - it.offsets[lo])
}

// SpeedKmhAt estimates a model's speed at time t by symmetric finite
// difference over a window (the vantage-point app estimates speed the same
// way, from consecutive GPS fixes).
func SpeedKmhAt(m Model, t time.Time, window time.Duration) float64 {
	if window <= 0 {
		window = 5 * time.Second
	}
	half := window / 2
	a := m.Pos(t.Add(-half))
	b := m.Pos(t.Add(half))
	return geo.MsToKmh(geo.Distance(a, b) / window.Seconds())
}

// RandomWaypoint generates a random-waypoint itinerary inside a bounding
// box: pick a point, move there at a random speed from [minKmh, maxKmh],
// pause for [minPause, maxPause], repeat until the horizon is covered.
func RandomWaypoint(rng *rand.Rand, box geo.BBox, minKmh, maxKmh float64, minPause, maxPause time.Duration, start time.Time, horizon time.Duration) *Itinerary {
	if minKmh <= 0 || maxKmh < minKmh {
		panic("mobility: invalid RandomWaypoint speed range")
	}
	randPoint := func() geo.LatLon {
		return geo.LatLon{
			Lat: box.MinLat + rng.Float64()*(box.MaxLat-box.MinLat),
			Lon: box.MinLon + rng.Float64()*(box.MaxLon-box.MinLon),
		}
	}
	cur := randPoint()
	var segments []Segment
	var elapsed time.Duration
	for elapsed < horizon {
		next := randPoint()
		speed := minKmh + rng.Float64()*(maxKmh-minKmh)
		mv := Move{Along: geo.Path{cur, next}, SpeedKmh: speed}
		segments = append(segments, mv)
		elapsed += mv.Duration()
		cur = next
		pause := minPause
		if maxPause > minPause {
			pause += time.Duration(rng.Int63n(int64(maxPause - minPause)))
		}
		if pause > 0 {
			segments = append(segments, Stay{At: cur, For: pause})
			elapsed += pause
		}
	}
	return NewItinerary(start, segments...)
}
