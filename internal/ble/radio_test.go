package ble

import (
	"math"
	"math/rand"
	"testing"

	"tagsim/internal/stats"
)

func TestDualSlopeMonotone(t *testing.T) {
	for _, m := range []DualSlope{AirTagPathLoss, SmartTagPathLoss} {
		prev := math.Inf(1)
		for d := 1.0; d <= 200; d += 0.5 {
			v := m.MeanRSSI(d)
			if v > prev+1e-9 {
				t.Fatalf("%+v: RSSI increased at %.1f m", m, d)
			}
			prev = v
		}
	}
}

func TestDualSlopeClampBelowOneMeter(t *testing.T) {
	m := AirTagPathLoss
	if m.MeanRSSI(0) != m.MeanRSSI(1) || m.MeanRSSI(0.2) != m.MeanRSSI(1) {
		t.Error("distances under 1 m must clamp")
	}
}

func TestDualSlopeContinuousAtBreak(t *testing.T) {
	m := SmartTagPathLoss
	before := m.MeanRSSI(m.BreakM - 1e-9)
	after := m.MeanRSSI(m.BreakM + 1e-9)
	if math.Abs(before-after) > 0.01 {
		t.Errorf("discontinuity at breakpoint: %.3f vs %.3f", before, after)
	}
}

// TestFigure2Calibration pins the radio model to the paper's Figure 2:
// SmartTag beacons arrive ~10 dB hotter at 0 and 10 m, and both tags are
// comparable (within a few dB) at 20 m.
func TestFigure2Calibration(t *testing.T) {
	air, smart := AirTagPathLoss, SmartTagPathLoss
	gap0 := smart.MeanRSSI(0) - air.MeanRSSI(0)
	gap10 := smart.MeanRSSI(10) - air.MeanRSSI(10)
	gap20 := smart.MeanRSSI(20) - air.MeanRSSI(20)
	if gap0 < 7 || gap0 > 13 {
		t.Errorf("0 m gap = %.1f dB, want ~10", gap0)
	}
	if gap10 < 7 || gap10 > 14 {
		t.Errorf("10 m gap = %.1f dB, want ~10", gap10)
	}
	if math.Abs(gap20) > 4 {
		t.Errorf("20 m gap = %.1f dB, want ~0", gap20)
	}
	// Absolute levels stay within the figure's -40..-100 dBm axis over
	// the measured 0-50 m span.
	for _, d := range []float64{0, 10, 20, 50} {
		for _, m := range []DualSlope{air, smart} {
			v := m.MeanRSSI(d)
			if v > -40 || v < -100 {
				t.Errorf("%+v at %.0f m: %.1f dBm outside the figure's axis", m, d, v)
			}
		}
	}
}

func TestChannelSampleSpread(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c := DefaultChannel(AirTagPathLoss)
	shadow := c.NewLink(rng)
	samples := make([]float64, 2000)
	for i := range samples {
		samples[i] = c.SampleRSSI(10, shadow, rng)
	}
	mean := stats.Mean(samples)
	want := AirTagPathLoss.MeanRSSI(10) + shadow
	if math.Abs(mean-want) > 0.5 {
		t.Errorf("sample mean %.2f, want %.2f", mean, want)
	}
	sd := stats.StdDev(samples)
	if math.Abs(sd-c.FadeSigma) > 0.5 {
		t.Errorf("sample std %.2f, want ~%.2f", sd, c.FadeSigma)
	}
}

func TestDecodeProbMonotoneDecreasing(t *testing.T) {
	c := DefaultChannel(SmartTagPathLoss)
	prev := 1.1
	for d := 1.0; d < 300; d += 2 {
		p := c.DecodeProb(d, DefaultReceiver)
		if p > prev+1e-12 {
			t.Fatalf("decode probability increased at %.0f m", d)
		}
		if p < 0 || p > 1 {
			t.Fatalf("decode probability %.3f out of range", p)
		}
		prev = p
	}
}

func TestDecodeProbNearAndFar(t *testing.T) {
	for _, m := range []DualSlope{AirTagPathLoss, SmartTagPathLoss} {
		c := DefaultChannel(m)
		if p := c.DecodeProb(1, DefaultReceiver); p < 0.999 {
			t.Errorf("%+v: decode prob at 1 m = %.3f", m, p)
		}
		if p := c.DecodeProb(500, DefaultReceiver); p > 0.05 {
			t.Errorf("%+v: decode prob at 500 m = %.3f", m, p)
		}
	}
}

func TestDecodeProbZeroSigma(t *testing.T) {
	c := Channel{Model: AirTagPathLoss}
	if c.DecodeProb(1, DefaultReceiver) != 1 {
		t.Error("deterministic channel near the tag should decode")
	}
	if c.DecodeProb(999, DefaultReceiver) != 0 {
		t.Error("deterministic channel far away should not decode")
	}
}

func TestMaxRange(t *testing.T) {
	// The paper quotes a BLE range of "up to 100 meters": the AirTag
	// model should reach roughly that, the SmartTag's steep second slope
	// caps it lower.
	air := Channel{Model: AirTagPathLoss}
	smart := Channel{Model: SmartTagPathLoss}
	ar := air.MaxRange(DefaultReceiver)
	sr := smart.MaxRange(DefaultReceiver)
	if ar < 80 || ar > 150 {
		t.Errorf("AirTag range %.0f m, want ~100", ar)
	}
	if sr < 25 || sr > 80 {
		t.Errorf("SmartTag range %.0f m, want 25-80", sr)
	}
	// Degenerate receivers.
	if r := air.MaxRange(Receiver{SensitivityDBm: -200}); r != 1000 {
		t.Errorf("infinitely sensitive receiver range = %.0f", r)
	}
	if r := air.MaxRange(Receiver{SensitivityDBm: 0}); r != 0 {
		t.Errorf("deaf receiver range = %.0f", r)
	}
}

func TestDecodesThreshold(t *testing.T) {
	r := Receiver{SensitivityDBm: -95}
	if !r.Decodes(-95) || !r.Decodes(-60) {
		t.Error("at/above sensitivity must decode")
	}
	if r.Decodes(-95.01) {
		t.Error("below sensitivity must not decode")
	}
}

func BenchmarkSampleRSSI(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	c := DefaultChannel(SmartTagPathLoss)
	shadow := c.NewLink(rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.SampleRSSI(12.5, shadow, rng)
	}
}

func BenchmarkDecodeProb(b *testing.B) {
	c := DefaultChannel(AirTagPathLoss)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.DecodeProb(42, DefaultReceiver)
	}
}
