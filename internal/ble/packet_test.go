package ble

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func testAirTagBytes(t testing.TB) []byte {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	frame := FindMy{Status: FindMyStatusMaintained | FindMyBatteryFull, KeyBits: 0x01, Hint: 0x00}
	for i := range frame.PublicKey {
		frame.PublicKey[i] = byte(i)
	}
	raw, err := BuildAirTagAdv(RandomStatic(rng), frame)
	if err != nil {
		t.Fatalf("BuildAirTagAdv: %v", err)
	}
	return raw
}

func testSmartTagBytes(t testing.TB, name string) []byte {
	t.Helper()
	rng := rand.New(rand.NewSource(2))
	frame := SmartTag{Version: 1, Aging: 0x010203, Flags: SmartTagFlagUWB}
	for i := range frame.PrivacyID {
		frame.PrivacyID[i] = byte(0xA0 + i)
	}
	raw, err := BuildSmartTagAdv(RandomStatic(rng), frame, name)
	if err != nil {
		t.Fatalf("BuildSmartTagAdv: %v", err)
	}
	return raw
}

func TestAirTagRoundTrip(t *testing.T) {
	raw := testAirTagBytes(t)
	p := NewPacket(raw, LayerTypeAdvPDU, Default)
	if e := p.ErrorLayer(); e != nil {
		t.Fatalf("decode error: %v", e)
	}
	adv, ok := p.Layer(LayerTypeAdvPDU).(*AdvPDU)
	if !ok {
		t.Fatal("missing AdvPDU layer")
	}
	if adv.Type != AdvNonconnInd || !adv.TxAdd {
		t.Errorf("adv header = %v TxAdd=%v", adv.Type, adv.TxAdd)
	}
	if !adv.Address.IsRandomStatic() {
		t.Error("AirTag address must be random static")
	}
	fm, ok := p.Layer(LayerTypeFindMy).(*FindMy)
	if !ok {
		t.Fatal("missing FindMy layer")
	}
	if !fm.Maintained() {
		t.Error("maintained flag lost")
	}
	if fm.BatteryState() != FindMyBatteryFull {
		t.Errorf("battery = 0x%02X", fm.BatteryState())
	}
	for i, b := range fm.PublicKey {
		if b != byte(i) {
			t.Fatalf("public key byte %d = 0x%02X", i, b)
		}
	}
}

func TestAirTagPrefixSignature(t *testing.T) {
	raw := testAirTagBytes(t)
	// The paper: AirTag beacons share the first 4 bytes of their header,
	// "1EFF004C12". Our advertising data starts right after the 2-byte
	// PDU header and 6-byte address.
	advData := raw[8:]
	if !IsAirTagPrefix(advData) {
		t.Fatalf("advertising data prefix = % X, want 1E FF 00 4C 12 signature", advData[:5])
	}
	if IsAirTagPrefix(testSmartTagBytes(t, "x")[8:]) {
		t.Error("SmartTag adv must not match the AirTag prefix")
	}
	if IsAirTagPrefix(nil) {
		t.Error("empty data must not match")
	}
}

func TestSmartTagRoundTrip(t *testing.T) {
	raw := testSmartTagBytes(t, "rohail's tag")
	p := NewPacket(raw, LayerTypeAdvPDU, Default)
	if e := p.ErrorLayer(); e != nil {
		t.Fatalf("decode error: %v", e)
	}
	st, ok := p.Layer(LayerTypeSmartTag).(*SmartTag)
	if !ok {
		t.Fatal("missing SmartTag layer")
	}
	if st.Aging != 0x010203 {
		t.Errorf("aging = 0x%06X", st.Aging)
	}
	if !st.UWB() {
		t.Error("UWB flag lost")
	}
	ads, ok := p.Layer(LayerTypeADStructures).(*ADStructures)
	if !ok {
		t.Fatal("missing ADStructures layer")
	}
	name, ok := ads.LocalName()
	if !ok || name != "rohail's tag" {
		t.Errorf("local name = %q, %v", name, ok)
	}
}

func TestSmartTagWithoutName(t *testing.T) {
	raw := testSmartTagBytes(t, "")
	p := NewPacket(raw, LayerTypeAdvPDU, Default)
	ads := p.Layer(LayerTypeADStructures).(*ADStructures)
	if _, ok := ads.LocalName(); ok {
		t.Error("nameless SmartTag adv should have no local name")
	}
	if p.Layer(LayerTypeSmartTag) == nil {
		t.Error("service payload should still decode")
	}
}

func TestLazyDecoding(t *testing.T) {
	raw := testAirTagBytes(t)
	p := NewPacket(raw, LayerTypeAdvPDU, Lazy)
	if len(p.layers) != 0 {
		t.Fatal("lazy packet decoded eagerly")
	}
	if p.Layer(LayerTypeAdvPDU) == nil {
		t.Fatal("lazy Layer(AdvPDU) failed")
	}
	if got := len(p.layers); got != 1 {
		t.Fatalf("lazy decode went too far: %d layers", got)
	}
	if p.Layer(LayerTypeFindMy) == nil {
		t.Fatal("lazy Layer(FindMy) failed")
	}
	if got := len(p.Layers()); got != 3 {
		t.Fatalf("full decode has %d layers, want 3", got)
	}
}

func TestNoCopySemantics(t *testing.T) {
	raw := testAirTagBytes(t)
	p := NewPacket(raw, LayerTypeAdvPDU, NoCopy)
	if &p.Data()[0] != &raw[0] {
		t.Error("NoCopy should retain the caller's slice")
	}
	p2 := NewPacket(raw, LayerTypeAdvPDU, Default)
	if &p2.Data()[0] == &raw[0] {
		t.Error("Default should copy the input")
	}
}

func TestErrorLayerOnTruncation(t *testing.T) {
	raw := testAirTagBytes(t)
	// Chop the FindMy frame: AdvPDU still decodes if we fix its length
	// byte, but the payload is short.
	trunc := append([]byte(nil), raw[:len(raw)-10]...)
	trunc[1] = byte(len(trunc) - 2)
	p := NewPacket(trunc, LayerTypeAdvPDU, Default)
	if p.ErrorLayer() == nil {
		t.Fatal("expected an error layer")
	}
	if p.Layer(LayerTypeAdvPDU) == nil {
		t.Error("layers before the failure should survive")
	}
	if p.Layer(LayerTypeFindMy) != nil {
		t.Error("failed layer should not appear")
	}
}

func TestErrorLayerTinyPackets(t *testing.T) {
	for _, data := range [][]byte{nil, {0x42}, {0x42, 0x06, 1, 2, 3, 4}} {
		p := NewPacket(data, LayerTypeAdvPDU, Default)
		if p.ErrorLayer() == nil {
			t.Errorf("packet % X should fail to decode", data)
		}
		if p.ErrorLayer().Error() == "" {
			t.Error("error layer must carry a message")
		}
	}
}

func TestDecodingParser(t *testing.T) {
	var adv AdvPDU
	var ads ADStructures
	var fm FindMy
	var st SmartTag
	parser := NewDecodingParser(LayerTypeAdvPDU, &adv, &ads, &fm, &st)
	decoded := []LayerType{}

	if err := parser.DecodeLayers(testAirTagBytes(t), &decoded); err != nil {
		t.Fatalf("air tag: %v", err)
	}
	want := []LayerType{LayerTypeAdvPDU, LayerTypeADStructures, LayerTypeFindMy}
	if len(decoded) != len(want) {
		t.Fatalf("decoded %v", decoded)
	}
	for i := range want {
		if decoded[i] != want[i] {
			t.Fatalf("decoded %v, want %v", decoded, want)
		}
	}

	if err := parser.DecodeLayers(testSmartTagBytes(t, "tag"), &decoded); err != nil {
		t.Fatalf("smart tag: %v", err)
	}
	if decoded[len(decoded)-1] != LayerTypeSmartTag {
		t.Fatalf("decoded %v, want SmartTag last", decoded)
	}
	if st.Aging != 0x010203 {
		t.Error("parser did not fill the SmartTag value")
	}
}

func TestDecodingParserUnsupported(t *testing.T) {
	var adv AdvPDU
	var ads ADStructures
	parser := NewDecodingParser(LayerTypeAdvPDU, &adv, &ads)
	decoded := []LayerType{}
	err := parser.DecodeLayers(testAirTagBytes(t), &decoded)
	if err == nil {
		t.Fatal("expected ErrUnsupportedLayer")
	}
	if len(decoded) != 2 {
		t.Errorf("prefix layers = %v", decoded)
	}
}

func TestDecodingParserReuseNoAlloc(t *testing.T) {
	var adv AdvPDU
	var ads ADStructures
	var fm FindMy
	parser := NewDecodingParser(LayerTypeAdvPDU, &adv, &ads, &fm)
	raw := testAirTagBytes(t)
	decoded := make([]LayerType, 0, 4)
	allocs := testing.AllocsPerRun(200, func() {
		if err := parser.DecodeLayers(raw, &decoded); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 1 {
		t.Errorf("DecodeLayers allocates %.1f times per run", allocs)
	}
}

func TestSerializeBufferPrependAppend(t *testing.T) {
	b := NewSerializeBuffer()
	copy(b.PrependBytes(3), []byte{4, 5, 6})
	copy(b.PrependBytes(3), []byte{1, 2, 3})
	copy(b.AppendBytes(2), []byte{7, 8})
	want := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	if !bytes.Equal(b.Bytes(), want) {
		t.Fatalf("got % X, want % X", b.Bytes(), want)
	}
	b.Clear()
	if len(b.Bytes()) != 0 {
		t.Error("Clear should empty the buffer")
	}
	// Large prepend beyond initial capacity.
	big := b.PrependBytes(500)
	if len(big) != 500 || len(b.Bytes()) != 500 {
		t.Error("large prepend failed")
	}
}

func TestAdvAddressString(t *testing.T) {
	a := AdvAddress{0xC0, 0x01, 0x02, 0x03, 0x04, 0x05}
	if got := a.String(); got != "C0:01:02:03:04:05" {
		t.Errorf("String = %q", got)
	}
}

func TestRandomStaticProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	seen := map[AdvAddress]bool{}
	for i := 0; i < 1000; i++ {
		a := RandomStatic(rng)
		if !a.IsRandomStatic() {
			t.Fatalf("address %v lacks the random-static prefix", a)
		}
		seen[a] = true
	}
	if len(seen) < 999 {
		t.Errorf("only %d distinct addresses in 1000 draws", len(seen))
	}
}

func TestAdvPDUHeaderBits(t *testing.T) {
	f := func(typ uint8, chsel, tx, rx bool) bool {
		pdu := &AdvPDU{Type: AdvPDUType(typ & 0x0F), ChSel: chsel, TxAdd: tx, RxAdd: rx, Address: AdvAddress{1, 2, 3, 4, 5, 6}}
		buf := NewSerializeBuffer()
		copy(buf.AppendBytes(3), []byte{2, 0x01, 0x06}) // minimal flags AD
		if err := pdu.SerializeTo(buf); err != nil {
			return false
		}
		var back AdvPDU
		if err := back.DecodeFromBytes(buf.Bytes()); err != nil {
			return false
		}
		return back.Type == pdu.Type && back.ChSel == chsel && back.TxAdd == tx &&
			back.RxAdd == rx && back.Address == pdu.Address
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestADStructuresZeroLengthPadding(t *testing.T) {
	var ads ADStructures
	// One flags structure followed by zero padding.
	if err := ads.DecodeFromBytes([]byte{2, ADTypeFlags, 0x06, 0, 0, 0}); err != nil {
		t.Fatalf("padding should be tolerated: %v", err)
	}
	if len(ads.Structures) != 1 {
		t.Errorf("got %d structures", len(ads.Structures))
	}
	// Overrun must fail.
	if err := ads.DecodeFromBytes([]byte{9, ADTypeFlags, 0x06}); err == nil {
		t.Error("overrunning structure should fail")
	}
}

func TestLayerTypeString(t *testing.T) {
	if LayerTypeFindMy.String() != "FindMy" {
		t.Error("known layer name wrong")
	}
	if LayerType(77).String() != "LayerType(77)" {
		t.Error("unknown layer name wrong")
	}
}

func TestSmartTagAgingOverflow(t *testing.T) {
	s := SmartTag{Aging: 1 << 24}
	if err := s.SerializeTo(NewSerializeBuffer()); err == nil {
		t.Error("24-bit overflow must be rejected")
	}
}

func BenchmarkNewPacketAirTag(b *testing.B) {
	raw := testAirTagBytes(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := NewPacket(raw, LayerTypeAdvPDU, Default)
		if p.ErrorLayer() != nil {
			b.Fatal("decode failed")
		}
	}
}

func BenchmarkDecodingParserAirTag(b *testing.B) {
	raw := testAirTagBytes(b)
	var adv AdvPDU
	var ads ADStructures
	var fm FindMy
	parser := NewDecodingParser(LayerTypeAdvPDU, &adv, &ads, &fm)
	decoded := make([]LayerType, 0, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := parser.DecodeLayers(raw, &decoded); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildAirTagAdv(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	addr := RandomStatic(rng)
	frame := FindMy{Status: 0x04}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildAirTagAdv(addr, frame); err != nil {
			b.Fatal(err)
		}
	}
}
