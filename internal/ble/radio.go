package ble

import (
	"math"
	"math/rand"
)

// PathLoss models mean received signal strength as a function of distance.
type PathLoss interface {
	// MeanRSSI returns the mean RSSI in dBm at distance d meters.
	MeanRSSI(d float64) float64
}

// DualSlope is a dual-slope log-distance path-loss model: RSSI1m at one
// meter, exponent N1 out to BreakM, then exponent N2 beyond. A BreakM of
// +Inf (or N2 == N1) degenerates to the classic single-slope model.
//
// Distances below one meter clamp to one meter; the paper's "0 m"
// measurement point is physical contact with the phone, which in practice
// is a ~1 m radio path.
type DualSlope struct {
	RSSI1m float64 // mean RSSI at 1 m, dBm
	N1     float64 // path-loss exponent before the breakpoint
	BreakM float64 // breakpoint distance, meters
	N2     float64 // path-loss exponent beyond the breakpoint
}

// MeanRSSI implements PathLoss.
func (m DualSlope) MeanRSSI(d float64) float64 {
	if d < 1 {
		d = 1
	}
	if math.IsInf(m.BreakM, 1) || d <= m.BreakM {
		return m.RSSI1m - 10*m.N1*math.Log10(d)
	}
	atBreak := m.RSSI1m - 10*m.N1*math.Log10(m.BreakM)
	return atBreak - 10*m.N2*math.Log10(d/m.BreakM)
}

// Calibrated per-tag propagation models. The parameters are fitted to the
// paper's Figure 2: SmartTag beacons arrive ~10 dB hotter at 0 and 10 m,
// while both tags are received near -80 dBm at 20 m. The SmartTag's steep
// second slope reflects its power-controlled, antenna-limited radio.
var (
	// AirTagPathLoss is the AirTag channel: free-space-like falloff that
	// keeps beacons decodable (faintly) out to ~100 m, the BLE range the
	// paper quotes.
	AirTagPathLoss = DualSlope{RSSI1m: -54, N1: 2.0, BreakM: math.Inf(1), N2: 2.0}
	// SmartTagPathLoss is the SmartTag channel: ~10 dB hotter up close,
	// with a breakpoint at 10 m beyond which it converges to the AirTag.
	SmartTagPathLoss = DualSlope{RSSI1m: -44, N1: 1.9, BreakM: 10, N2: 5.0}
)

// Channel adds stochastic variation around a mean path-loss model:
// log-normal shadowing (per link, slowly varying) and per-beacon fast
// fading.
type Channel struct {
	Model       PathLoss
	ShadowSigma float64 // dB, per-link log-normal shadowing
	FadeSigma   float64 // dB, per-beacon fading
}

// DefaultChannel wraps a path-loss model with the shadowing/fading spreads
// observed in the Figure 2 boxplots (roughly +-8 dB whiskers).
func DefaultChannel(m PathLoss) Channel {
	return Channel{Model: m, ShadowSigma: 3, FadeSigma: 4}
}

// NewLink draws the per-link shadowing term for a tag/receiver pair; keep
// it for the life of the link and pass it to SampleRSSI.
func (c Channel) NewLink(rng *rand.Rand) float64 {
	return rng.NormFloat64() * c.ShadowSigma
}

// SampleRSSI draws one beacon's RSSI at distance d given the link's
// shadowing term.
func (c Channel) SampleRSSI(d, shadowDB float64, rng *rand.Rand) float64 {
	return c.Model.MeanRSSI(d) + shadowDB + rng.NormFloat64()*c.FadeSigma
}

// Receiver models a scanning radio's decode threshold.
type Receiver struct {
	// SensitivityDBm is the weakest decodable beacon. Typical phone BLE
	// sensitivity is about -95 dBm.
	SensitivityDBm float64
}

// DefaultReceiver is a typical smartphone BLE receiver.
var DefaultReceiver = Receiver{SensitivityDBm: -95}

// Decodes reports whether a beacon with the sampled RSSI is decodable.
func (r Receiver) Decodes(rssi float64) bool { return rssi >= r.SensitivityDBm }

// DecodeProb returns the analytic probability that a single beacon at
// distance d decodes, marginalizing over shadowing and fading.
func (c Channel) DecodeProb(d float64, r Receiver) float64 {
	sigma := math.Hypot(c.ShadowSigma, c.FadeSigma)
	mean := c.Model.MeanRSSI(d)
	if sigma == 0 {
		if mean >= r.SensitivityDBm {
			return 1
		}
		return 0
	}
	// P(mean + N(0, sigma) >= sens) = Phi((mean - sens) / sigma).
	z := (mean - r.SensitivityDBm) / sigma
	return 0.5 * (1 + math.Erf(z/math.Sqrt2))
}

// MaxRange returns the distance at which the mean RSSI crosses the
// receiver sensitivity — the nominal beacon range. It searches by
// bisection over (1 m, 1000 m].
func (c Channel) MaxRange(r Receiver) float64 {
	if c.Model.MeanRSSI(1000) >= r.SensitivityDBm {
		return 1000
	}
	if c.Model.MeanRSSI(1) < r.SensitivityDBm {
		return 0
	}
	lo, hi := 1.0, 1000.0
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if c.Model.MeanRSSI(mid) >= r.SensitivityDBm {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}
