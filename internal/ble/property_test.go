package ble

import (
	"bytes"
	"testing"
	"testing/quick"
)

// TestFindMySerializeDecodeProperty: any FindMy frame survives a
// serialize/decode round trip bit-for-bit.
func TestFindMySerializeDecodeProperty(t *testing.T) {
	f := func(status byte, key [FindMyKeyLen]byte, bits, hint byte) bool {
		frame := FindMy{Status: status, PublicKey: key, KeyBits: bits, Hint: hint}
		buf := NewSerializeBuffer()
		if err := frame.SerializeTo(buf); err != nil {
			return false
		}
		var back FindMy
		if err := back.DecodeFromBytes(buf.Bytes()); err != nil {
			return false
		}
		return back.Status == status && back.PublicKey == key &&
			back.KeyBits == bits && back.Hint == hint
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestSmartTagSerializeDecodeProperty: same for SmartTag frames (aging is
// masked to its 24-bit wire width).
func TestSmartTagSerializeDecodeProperty(t *testing.T) {
	f := func(version byte, id [SmartTagIDLen]byte, aging uint32, flags byte) bool {
		frame := SmartTag{Version: version, PrivacyID: id, Aging: aging & 0xFFFFFF, Flags: flags}
		buf := NewSerializeBuffer()
		if err := frame.SerializeTo(buf); err != nil {
			return false
		}
		var back SmartTag
		if err := back.DecodeFromBytes(buf.Bytes()); err != nil {
			return false
		}
		return back.Version == version && back.PrivacyID == id &&
			back.Aging == frame.Aging && back.Flags == flags
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestFullAdvRoundTripProperty: a complete AirTag advertisement built from
// arbitrary identity material decodes to the same identity.
func TestFullAdvRoundTripProperty(t *testing.T) {
	f := func(addrRaw [6]byte, key [FindMyKeyLen]byte) bool {
		var addr AdvAddress
		copy(addr[:], addrRaw[:])
		addr[0] |= 0xC0
		raw, err := BuildAirTagAdv(addr, FindMy{PublicKey: key})
		if err != nil {
			return false
		}
		p := NewPacket(raw, LayerTypeAdvPDU, Default)
		if p.ErrorLayer() != nil {
			return false
		}
		adv, ok := p.Layer(LayerTypeAdvPDU).(*AdvPDU)
		if !ok || adv.Address != addr {
			return false
		}
		fm, ok := p.Layer(LayerTypeFindMy).(*FindMy)
		return ok && fm.PublicKey == key
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestDecoderNeverPanics: arbitrary bytes must decode to either layers or
// an error layer, never a panic.
func TestDecoderNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		p := NewPacket(data, LayerTypeAdvPDU, Default)
		_ = p.Layers()
		_ = p.ErrorLayer()
		lz := NewPacket(data, LayerTypeAdvPDU, Lazy)
		_ = lz.Layer(LayerTypeSmartTag)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestADStructuresSerializeDecodeProperty: TLV sets survive round trips.
func TestADStructuresSerializeDecodeProperty(t *testing.T) {
	f := func(t1, t2 byte, d1, d2 []byte) bool {
		if len(d1) > 200 {
			d1 = d1[:200]
		}
		if len(d2) > 50 {
			d2 = d2[:50]
		}
		ads := &ADStructures{Structures: []ADStructure{
			{Type: t1, Data: d1},
			{Type: t2, Data: d2},
		}}
		buf := NewSerializeBuffer()
		if err := ads.SerializeTo(buf); err != nil {
			return false
		}
		var back ADStructures
		if err := back.DecodeFromBytes(buf.Bytes()); err != nil {
			return false
		}
		if len(back.Structures) != 2 {
			return false
		}
		return back.Structures[0].Type == t1 && bytes.Equal(back.Structures[0].Data, d1) &&
			back.Structures[1].Type == t2 && bytes.Equal(back.Structures[1].Data, d2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
