package ble

import (
	"encoding/binary"
	"fmt"
	"math/rand"
)

// AdvAddress is a BLE advertiser address. It is comparable, so it can be
// used directly as a map key (the gopacket Endpoint idiom) when grouping
// beacons by advertiser — which is exactly what third-party scanners do,
// and what MAC randomization defeats.
type AdvAddress [6]byte

// String formats the address in the usual colon-separated form.
func (a AdvAddress) String() string {
	return fmt.Sprintf("%02X:%02X:%02X:%02X:%02X:%02X", a[0], a[1], a[2], a[3], a[4], a[5])
}

// IsRandomStatic reports whether the two most significant bits are 11,
// marking a BLE random static address (what both tags use).
func (a AdvAddress) IsRandomStatic() bool { return a[0]&0xC0 == 0xC0 }

// RandomStatic draws a fresh random static address.
func RandomStatic(rng *rand.Rand) AdvAddress {
	var a AdvAddress
	for i := range a {
		a[i] = byte(rng.Intn(256))
	}
	a[0] |= 0xC0
	return a
}

// AdvPDUType is the 4-bit advertising PDU type.
type AdvPDUType uint8

// Advertising PDU types from the BLE link-layer specification.
const (
	AdvInd        AdvPDUType = 0x0 // connectable scannable undirected
	AdvDirectInd  AdvPDUType = 0x1
	AdvNonconnInd AdvPDUType = 0x2 // what location tags emit
	ScanReq       AdvPDUType = 0x3
	ScanRsp       AdvPDUType = 0x4
	ConnectInd    AdvPDUType = 0x5
	AdvScanInd    AdvPDUType = 0x6
)

var advPDUTypeNames = map[AdvPDUType]string{
	AdvInd: "ADV_IND", AdvDirectInd: "ADV_DIRECT_IND", AdvNonconnInd: "ADV_NONCONN_IND",
	ScanReq: "SCAN_REQ", ScanRsp: "SCAN_RSP", ConnectInd: "CONNECT_IND", AdvScanInd: "ADV_SCAN_IND",
}

// String names the PDU type.
func (t AdvPDUType) String() string {
	if n, ok := advPDUTypeNames[t]; ok {
		return n
	}
	return fmt.Sprintf("AdvPDUType(0x%X)", uint8(t))
}

// AdvPDU is the BLE link-layer advertising PDU: a 2-byte header, the
// advertiser address, and the advertising data payload.
type AdvPDU struct {
	Type     AdvPDUType
	ChSel    bool // channel-selection-algorithm-2 bit
	TxAdd    bool // advertiser address is random (set by both tags)
	RxAdd    bool
	Address  AdvAddress
	contents []byte
	payload  []byte
}

// LayerType implements Layer.
func (p *AdvPDU) LayerType() LayerType { return LayerTypeAdvPDU }

// LayerContents implements Layer.
func (p *AdvPDU) LayerContents() []byte { return p.contents }

// LayerPayload implements Layer.
func (p *AdvPDU) LayerPayload() []byte { return p.payload }

// NextLayerType implements DecodingLayer: advertising data decodes as AD
// structures.
func (p *AdvPDU) NextLayerType() LayerType { return LayerTypeADStructures }

// DecodeFromBytes implements DecodingLayer.
func (p *AdvPDU) DecodeFromBytes(data []byte) error {
	if len(data) < 8 {
		return fmt.Errorf("ble: adv PDU too short: %d bytes", len(data))
	}
	hdr := data[0]
	p.Type = AdvPDUType(hdr & 0x0F)
	p.ChSel = hdr&0x20 != 0
	p.TxAdd = hdr&0x40 != 0
	p.RxAdd = hdr&0x80 != 0
	plen := int(data[1])
	if plen < 6 {
		return fmt.Errorf("ble: adv PDU payload length %d < address size", plen)
	}
	if len(data) < 2+plen {
		return fmt.Errorf("ble: adv PDU truncated: have %d, header says %d", len(data)-2, plen)
	}
	// Addresses are little-endian on the wire.
	for i := 0; i < 6; i++ {
		p.Address[i] = data[2+5-i]
	}
	p.contents = data[:8]
	p.payload = data[8 : 2+plen]
	return nil
}

// SerializeTo implements SerializableLayer.
func (p *AdvPDU) SerializeTo(b *SerializeBuffer) error {
	payload := b.Bytes()
	plen := 6 + len(payload)
	if plen > 255 {
		return fmt.Errorf("ble: adv payload %d exceeds 255 bytes", plen)
	}
	hdr := b.PrependBytes(8)
	var h byte = byte(p.Type) & 0x0F
	if p.ChSel {
		h |= 0x20
	}
	if p.TxAdd {
		h |= 0x40
	}
	if p.RxAdd {
		h |= 0x80
	}
	hdr[0] = h
	hdr[1] = byte(plen)
	for i := 0; i < 6; i++ {
		hdr[2+i] = p.Address[5-i]
	}
	return nil
}

// AD-structure types used by the tags.
const (
	ADTypeFlags            = 0x01
	ADTypeCompleteName     = 0x09
	ADTypeTxPower          = 0x0A
	ADTypeServiceData16    = 0x16
	ADTypeManufacturerData = 0xFF
)

// Vendor identifiers appearing inside the payloads.
const (
	// AppleCompanyID is Apple's Bluetooth SIG company identifier.
	AppleCompanyID = 0x004C
	// AppleOfflineFindingType is the Apple manufacturer-data subtype for
	// offline finding; together with the AD length/type bytes it forms the
	// "1EFF004C12" prefix the paper uses to spot AirTag beacons.
	AppleOfflineFindingType = 0x12
	// SamsungFindUUID is the 16-bit service UUID SmartTags advertise
	// under.
	SamsungFindUUID = 0xFD5A
)

// ADStructure is a single advertising-data TLV.
type ADStructure struct {
	Type byte
	Data []byte
}

// ADStructures is the advertising-data payload: a sequence of TLVs.
type ADStructures struct {
	Structures []ADStructure
	contents   []byte
	payload    []byte
	next       LayerType
}

// LayerType implements Layer.
func (a *ADStructures) LayerType() LayerType { return LayerTypeADStructures }

// LayerContents implements Layer.
func (a *ADStructures) LayerContents() []byte { return a.contents }

// LayerPayload returns the inner bytes of the vendor payload TLV, if one
// was recognized.
func (a *ADStructures) LayerPayload() []byte { return a.payload }

// NextLayerType implements DecodingLayer.
func (a *ADStructures) NextLayerType() LayerType { return a.next }

// DecodeFromBytes implements DecodingLayer.
func (a *ADStructures) DecodeFromBytes(data []byte) error {
	a.Structures = a.Structures[:0]
	a.contents = data
	a.payload = nil
	a.next = LayerTypeZero
	for off := 0; off < len(data); {
		l := int(data[off])
		if l == 0 {
			// Zero-length structure terminates the payload (padding).
			break
		}
		if off+1+l > len(data) {
			return fmt.Errorf("ble: AD structure at %d overruns payload", off)
		}
		s := ADStructure{Type: data[off+1], Data: data[off+2 : off+1+l]}
		a.Structures = append(a.Structures, s)
		off += 1 + l
	}
	// Recognize a vendor payload to continue decoding into.
	for _, s := range a.Structures {
		switch {
		case s.Type == ADTypeManufacturerData && len(s.Data) >= 3 &&
			binary.LittleEndian.Uint16(s.Data) == AppleCompanyID &&
			s.Data[2] == AppleOfflineFindingType:
			a.payload = s.Data
			a.next = LayerTypeFindMy
			return nil
		case s.Type == ADTypeServiceData16 && len(s.Data) >= 2 &&
			binary.LittleEndian.Uint16(s.Data) == SamsungFindUUID:
			a.payload = s.Data
			a.next = LayerTypeSmartTag
			return nil
		}
	}
	return nil
}

// SerializeTo implements SerializableLayer.
func (a *ADStructures) SerializeTo(b *SerializeBuffer) error {
	total := 0
	for _, s := range a.Structures {
		if len(s.Data)+1 > 255 {
			return fmt.Errorf("ble: AD structure type 0x%02X too long", s.Type)
		}
		total += 2 + len(s.Data)
	}
	buf := b.PrependBytes(total)
	off := 0
	for _, s := range a.Structures {
		buf[off] = byte(len(s.Data) + 1)
		buf[off+1] = s.Type
		copy(buf[off+2:], s.Data)
		off += 2 + len(s.Data)
	}
	return nil
}

// Lookup returns the first structure of the given AD type.
func (a *ADStructures) Lookup(adType byte) (ADStructure, bool) {
	for _, s := range a.Structures {
		if s.Type == adType {
			return s, true
		}
	}
	return ADStructure{}, false
}

// LocalName returns the complete local name TLV, if present (SmartTag scan
// responses carry the tag's user-visible name, which the paper exploits to
// identify its own tags).
func (a *ADStructures) LocalName() (string, bool) {
	s, ok := a.Lookup(ADTypeCompleteName)
	if !ok {
		return "", false
	}
	return string(s.Data), true
}

// FindMyKeyLen is the number of public-key bytes carried in each Apple
// offline-finding advertisement.
const FindMyKeyLen = 22

// FindMy is Apple's offline-finding manufacturer payload, the frame that
// makes an AirTag discoverable by the FindMy network. Field semantics
// follow the public reverse engineering of the protocol: a status byte
// (battery + maintained flag), 22 bytes of the rolling public key, the two
// key bits that do not fit in the randomized address, and a hint byte.
type FindMy struct {
	Status    byte
	PublicKey [FindMyKeyLen]byte
	KeyBits   byte // bits 6-7 of the full key's first byte
	Hint      byte
	contents  []byte
}

// FindMy status-byte flags.
const (
	// FindMyStatusMaintained is set while the tag has seen its owner
	// recently; separated tags clear it.
	FindMyStatusMaintained = 0x04
	// FindMyBatteryFull/Medium/Low/Critical occupy bits 6-7.
	FindMyBatteryFull     = 0x00
	FindMyBatteryMedium   = 0x40
	FindMyBatteryLow      = 0x80
	FindMyBatteryCritical = 0xC0
)

// LayerType implements Layer.
func (f *FindMy) LayerType() LayerType { return LayerTypeFindMy }

// LayerContents implements Layer.
func (f *FindMy) LayerContents() []byte { return f.contents }

// LayerPayload implements Layer.
func (f *FindMy) LayerPayload() []byte { return nil }

// NextLayerType implements DecodingLayer.
func (f *FindMy) NextLayerType() LayerType { return LayerTypeZero }

// DecodeFromBytes implements DecodingLayer. The input is the manufacturer
// data content: company ID, subtype, length, then the frame.
func (f *FindMy) DecodeFromBytes(data []byte) error {
	const frameLen = 25 // status + key + keybits + hint
	if len(data) < 4+frameLen {
		return fmt.Errorf("ble: FindMy payload too short: %d bytes", len(data))
	}
	if binary.LittleEndian.Uint16(data) != AppleCompanyID {
		return fmt.Errorf("ble: FindMy company ID 0x%04X", binary.LittleEndian.Uint16(data))
	}
	if data[2] != AppleOfflineFindingType {
		return fmt.Errorf("ble: FindMy subtype 0x%02X", data[2])
	}
	if int(data[3]) != frameLen {
		return fmt.Errorf("ble: FindMy frame length %d, want %d", data[3], frameLen)
	}
	f.Status = data[4]
	copy(f.PublicKey[:], data[5:5+FindMyKeyLen])
	f.KeyBits = data[5+FindMyKeyLen]
	f.Hint = data[6+FindMyKeyLen]
	f.contents = data[:4+frameLen]
	return nil
}

// SerializeTo implements SerializableLayer.
func (f *FindMy) SerializeTo(b *SerializeBuffer) error {
	buf := b.PrependBytes(4 + 25)
	binary.LittleEndian.PutUint16(buf, AppleCompanyID)
	buf[2] = AppleOfflineFindingType
	buf[3] = 25
	buf[4] = f.Status
	copy(buf[5:], f.PublicKey[:])
	buf[5+FindMyKeyLen] = f.KeyBits
	buf[6+FindMyKeyLen] = f.Hint
	return nil
}

// BatteryState extracts the battery bits from the status byte.
func (f *FindMy) BatteryState() byte { return f.Status & 0xC0 }

// Maintained reports whether the owner has seen the tag recently.
func (f *FindMy) Maintained() bool { return f.Status&FindMyStatusMaintained != 0 }

// SmartTagIDLen is the length of the rolling privacy identifier in a
// SmartTag advertisement.
const SmartTagIDLen = 8

// SmartTag is Samsung's tag service payload advertised under the Samsung
// Find 16-bit service UUID: a version byte, a rolling privacy ID, a 24-bit
// aging counter, and a flags byte (UWB capability, battery state).
type SmartTag struct {
	Version   byte
	PrivacyID [SmartTagIDLen]byte
	Aging     uint32 // 24-bit counter, increments every rotation period
	Flags     byte
	contents  []byte
}

// SmartTag flag bits.
const (
	// SmartTagFlagUWB marks a SmartTag+ with Ultra Wideband.
	SmartTagFlagUWB = 0x01
	// SmartTagFlagLowBattery is set below ~20% charge.
	SmartTagFlagLowBattery = 0x02
)

// LayerType implements Layer.
func (s *SmartTag) LayerType() LayerType { return LayerTypeSmartTag }

// LayerContents implements Layer.
func (s *SmartTag) LayerContents() []byte { return s.contents }

// LayerPayload implements Layer.
func (s *SmartTag) LayerPayload() []byte { return nil }

// NextLayerType implements DecodingLayer.
func (s *SmartTag) NextLayerType() LayerType { return LayerTypeZero }

// DecodeFromBytes implements DecodingLayer. The input is the service-data
// content: 16-bit UUID then the frame.
func (s *SmartTag) DecodeFromBytes(data []byte) error {
	const frameLen = 1 + SmartTagIDLen + 3 + 1
	if len(data) < 2+frameLen {
		return fmt.Errorf("ble: SmartTag payload too short: %d bytes", len(data))
	}
	if binary.LittleEndian.Uint16(data) != SamsungFindUUID {
		return fmt.Errorf("ble: SmartTag service UUID 0x%04X", binary.LittleEndian.Uint16(data))
	}
	s.Version = data[2]
	copy(s.PrivacyID[:], data[3:3+SmartTagIDLen])
	off := 3 + SmartTagIDLen
	s.Aging = uint32(data[off]) | uint32(data[off+1])<<8 | uint32(data[off+2])<<16
	s.Flags = data[off+3]
	s.contents = data[:2+frameLen]
	return nil
}

// SerializeTo implements SerializableLayer.
func (s *SmartTag) SerializeTo(b *SerializeBuffer) error {
	if s.Aging > 0xFFFFFF {
		return fmt.Errorf("ble: SmartTag aging counter %d exceeds 24 bits", s.Aging)
	}
	buf := b.PrependBytes(2 + 1 + SmartTagIDLen + 3 + 1)
	binary.LittleEndian.PutUint16(buf, SamsungFindUUID)
	buf[2] = s.Version
	copy(buf[3:], s.PrivacyID[:])
	off := 3 + SmartTagIDLen
	buf[off] = byte(s.Aging)
	buf[off+1] = byte(s.Aging >> 8)
	buf[off+2] = byte(s.Aging >> 16)
	buf[off+3] = s.Flags
	return nil
}

// UWB reports whether the tag advertises Ultra Wideband support.
func (s *SmartTag) UWB() bool { return s.Flags&SmartTagFlagUWB != 0 }

// BuildAirTagAdv assembles a complete AirTag advertising PDU: an
// ADV_NONCONN_IND from a random static address carrying the offline-finding
// manufacturer payload. The first five bytes of the advertising data are
// the "1E FF 4C 00 12" signature the paper keys on.
func BuildAirTagAdv(addr AdvAddress, frame FindMy) ([]byte, error) {
	inner := NewSerializeBuffer()
	if err := frame.SerializeTo(inner); err != nil {
		return nil, err
	}
	ads := &ADStructures{Structures: []ADStructure{
		{Type: ADTypeManufacturerData, Data: inner.Bytes()},
	}}
	pdu := &AdvPDU{Type: AdvNonconnInd, TxAdd: true, Address: addr}
	buf := NewSerializeBuffer()
	if err := SerializeLayers(buf, pdu, ads); err != nil {
		return nil, err
	}
	return append([]byte(nil), buf.Bytes()...), nil
}

// BuildSmartTagAdv assembles a complete SmartTag advertising PDU carrying
// the Samsung Find service data and, when name is non-empty, the tag's
// local name (which the paper used to spot its own SmartTags).
func BuildSmartTagAdv(addr AdvAddress, frame SmartTag, name string) ([]byte, error) {
	inner := NewSerializeBuffer()
	if err := frame.SerializeTo(inner); err != nil {
		return nil, err
	}
	structures := []ADStructure{
		{Type: ADTypeFlags, Data: []byte{0x06}},
		{Type: ADTypeServiceData16, Data: inner.Bytes()},
	}
	if name != "" {
		structures = append(structures, ADStructure{Type: ADTypeCompleteName, Data: []byte(name)})
	}
	ads := &ADStructures{Structures: structures}
	pdu := &AdvPDU{Type: AdvNonconnInd, TxAdd: true, Address: addr}
	buf := NewSerializeBuffer()
	if err := SerializeLayers(buf, pdu, ads); err != nil {
		return nil, err
	}
	return append([]byte(nil), buf.Bytes()...), nil
}

// IsAirTagPrefix reports whether raw advertising data begins with the
// 5-byte AirTag signature the paper describes ("1EFF004C12"), without a
// full decode — what a third-party scanner app checks.
func IsAirTagPrefix(advData []byte) bool {
	return len(advData) >= 5 &&
		advData[0] == 0x1E && advData[1] == 0xFF &&
		advData[2] == 0x4C && advData[3] == 0x00 && advData[4] == 0x12
}
