// Package ble implements the Bluetooth Low Energy advertising plane the
// location tags live on: link-layer advertising PDUs, the AD-structure TLVs
// they carry, the Apple FindMy and Samsung SmartTag manufacturer payloads,
// advertiser address randomization, and a calibrated radio propagation
// model.
//
// The decoding API follows the gopacket idiom: raw bytes are decoded into a
// stack of Layers, either eagerly or on demand, and decode errors surface
// as an ErrorLayer rather than failing the whole packet. A
// DecodingParser mirrors gopacket's DecodingLayerParser for allocation-free
// decoding of known layer stacks, and layers can be serialized back to
// bytes through a SerializeBuffer.
package ble

import (
	"errors"
	"fmt"
)

// LayerType identifies a protocol layer within a decoded packet.
type LayerType int

// Layer types understood by this package.
const (
	// LayerTypeZero is the invalid zero layer type.
	LayerTypeZero LayerType = iota
	// LayerTypeAdvPDU is the BLE link-layer advertising PDU.
	LayerTypeAdvPDU
	// LayerTypeADStructures is the advertising-data TLV sequence.
	LayerTypeADStructures
	// LayerTypeFindMy is Apple's offline-finding manufacturer payload.
	LayerTypeFindMy
	// LayerTypeSmartTag is Samsung's SmartTag service payload.
	LayerTypeSmartTag
	// LayerTypeError holds a decoding failure.
	LayerTypeError
)

var layerTypeNames = map[LayerType]string{
	LayerTypeZero:         "Zero",
	LayerTypeAdvPDU:       "AdvPDU",
	LayerTypeADStructures: "ADStructures",
	LayerTypeFindMy:       "FindMy",
	LayerTypeSmartTag:     "SmartTag",
	LayerTypeError:        "DecodeError",
}

// String returns the layer type name.
func (t LayerType) String() string {
	if n, ok := layerTypeNames[t]; ok {
		return n
	}
	return fmt.Sprintf("LayerType(%d)", int(t))
}

// Layer is one decoded protocol layer, in the gopacket sense.
type Layer interface {
	// LayerType identifies the layer.
	LayerType() LayerType
	// LayerContents returns the bytes that make up this layer's header.
	LayerContents() []byte
	// LayerPayload returns the bytes this layer carries for the next one.
	LayerPayload() []byte
}

// DecodingLayer is a Layer that can decode itself from bytes and name its
// successor, enabling allocation-free parsing via DecodingParser.
type DecodingLayer interface {
	Layer
	// DecodeFromBytes parses data into the receiver, replacing its state.
	DecodeFromBytes(data []byte) error
	// NextLayerType returns the type of the layer carried in the payload,
	// or LayerTypeZero when this is the last layer.
	NextLayerType() LayerType
}

// SerializableLayer is a Layer that can write itself back to bytes.
type SerializableLayer interface {
	Layer
	// SerializeTo prepends this layer's wire form onto the buffer.
	SerializeTo(b *SerializeBuffer) error
}

// ErrorLayer records a decode failure; the successfully decoded layers
// before the failure remain available on the packet.
type ErrorLayer struct {
	Err  error
	Data []byte // the bytes that failed to decode
}

// LayerType implements Layer.
func (e *ErrorLayer) LayerType() LayerType { return LayerTypeError }

// LayerContents implements Layer.
func (e *ErrorLayer) LayerContents() []byte { return e.Data }

// LayerPayload implements Layer.
func (e *ErrorLayer) LayerPayload() []byte { return nil }

// Error implements the error interface.
func (e *ErrorLayer) Error() string { return e.Err.Error() }

// DecodeOptions mirrors gopacket's decode flags.
type DecodeOptions struct {
	// Lazy defers decoding each layer until it is requested. Lazy packets
	// are not safe for concurrent use.
	Lazy bool
	// NoCopy stores the caller's slice directly instead of copying it.
	// The caller must not mutate the bytes afterwards.
	NoCopy bool
}

// Predefined option sets, as in gopacket.
var (
	// Default decodes eagerly from a private copy of the data.
	Default = DecodeOptions{}
	// Lazy defers decoding until layers are requested.
	Lazy = DecodeOptions{Lazy: true}
	// NoCopy decodes eagerly without copying the input.
	NoCopy = DecodeOptions{NoCopy: true}
)

// Packet is a decoded BLE frame: an ordered stack of layers.
type Packet struct {
	data    []byte
	layers  []Layer
	errLay  *ErrorLayer
	pending LayerType // next layer to decode when lazy
	rest    []byte    // undecoded payload when lazy
	lazy    bool
}

// NewPacket decodes data starting at the given first layer type.
// Decode errors do not fail the call; they are exposed via ErrorLayer.
func NewPacket(data []byte, first LayerType, opts DecodeOptions) *Packet {
	if !opts.NoCopy {
		data = append([]byte(nil), data...)
	}
	p := &Packet{data: data, pending: first, rest: data, lazy: opts.Lazy}
	if !opts.Lazy {
		p.decodeAll()
	}
	return p
}

// decodeOne advances the decode by a single layer, returning false when
// there is nothing further to decode.
func (p *Packet) decodeOne() bool {
	if p.pending == LayerTypeZero || p.errLay != nil {
		return false
	}
	layer, err := decodeLayer(p.pending, p.rest)
	if err != nil {
		p.errLay = &ErrorLayer{Err: err, Data: p.rest}
		p.pending = LayerTypeZero
		return false
	}
	p.layers = append(p.layers, layer)
	p.rest = layer.LayerPayload()
	if dl, ok := layer.(DecodingLayer); ok && len(p.rest) > 0 {
		p.pending = dl.NextLayerType()
	} else {
		p.pending = LayerTypeZero
	}
	return p.pending != LayerTypeZero
}

func (p *Packet) decodeAll() {
	for p.decodeOne() {
	}
}

// Layers returns all decoded layers, decoding everything first if lazy.
func (p *Packet) Layers() []Layer {
	if p.lazy {
		p.decodeAll()
	}
	return p.layers
}

// Layer returns the first layer of the given type, or nil. Under Lazy it
// decodes only as far as needed.
func (p *Packet) Layer(t LayerType) Layer {
	for _, l := range p.layers {
		if l.LayerType() == t {
			return l
		}
	}
	if !p.lazy {
		return nil
	}
	for p.decodeOne() {
		last := p.layers[len(p.layers)-1]
		if last.LayerType() == t {
			return last
		}
	}
	// decodeOne returning false may still have appended a final layer.
	if n := len(p.layers); n > 0 && p.layers[n-1].LayerType() == t {
		return p.layers[n-1]
	}
	return nil
}

// ErrorLayer returns the decode failure, if any (forcing a full decode
// under Lazy).
func (p *Packet) ErrorLayer() *ErrorLayer {
	if p.lazy {
		p.decodeAll()
	}
	return p.errLay
}

// Data returns the raw bytes the packet was built from.
func (p *Packet) Data() []byte { return p.data }

// decodeLayer constructs and decodes a fresh layer of the given type.
func decodeLayer(t LayerType, data []byte) (Layer, error) {
	var dl DecodingLayer
	switch t {
	case LayerTypeAdvPDU:
		dl = &AdvPDU{}
	case LayerTypeADStructures:
		dl = &ADStructures{}
	case LayerTypeFindMy:
		dl = &FindMy{}
	case LayerTypeSmartTag:
		dl = &SmartTag{}
	default:
		return nil, fmt.Errorf("ble: no decoder for %v", t)
	}
	if err := dl.DecodeFromBytes(data); err != nil {
		return nil, err
	}
	return dl, nil
}

// DecodingParser is the allocation-free analogue of
// gopacket.DecodingLayerParser: it decodes a known stack of layers into
// caller-owned values.
type DecodingParser struct {
	first  LayerType
	layers map[LayerType]DecodingLayer
}

// NewDecodingParser builds a parser that starts at first and dispatches
// into the provided layer values.
func NewDecodingParser(first LayerType, layers ...DecodingLayer) *DecodingParser {
	m := make(map[LayerType]DecodingLayer, len(layers))
	for _, l := range layers {
		m[l.LayerType()] = l
	}
	return &DecodingParser{first: first, layers: m}
}

// ErrUnsupportedLayer is returned by DecodeLayers when it reaches a layer
// type it has no registered value for. Decoded prefix layers remain valid.
var ErrUnsupportedLayer = errors.New("ble: no decoding layer registered for type")

// DecodeLayers decodes data into the registered layer values, appending the
// decoded types to *decoded (which is reset first).
func (p *DecodingParser) DecodeLayers(data []byte, decoded *[]LayerType) error {
	*decoded = (*decoded)[:0]
	t := p.first
	for t != LayerTypeZero {
		dl, ok := p.layers[t]
		if !ok {
			return fmt.Errorf("%w: %v", ErrUnsupportedLayer, t)
		}
		if err := dl.DecodeFromBytes(data); err != nil {
			return err
		}
		*decoded = append(*decoded, t)
		data = dl.LayerPayload()
		if len(data) == 0 {
			return nil
		}
		t = dl.NextLayerType()
	}
	return nil
}

// SerializeBuffer accumulates wire bytes; layers prepend onto it so a
// packet serializes outside-in, exactly like gopacket.
type SerializeBuffer struct {
	buf   []byte
	start int
}

// NewSerializeBuffer returns an empty buffer.
func NewSerializeBuffer() *SerializeBuffer {
	const initial = 64
	return &SerializeBuffer{buf: make([]byte, initial), start: initial}
}

// Bytes returns the serialized bytes accumulated so far.
func (b *SerializeBuffer) Bytes() []byte { return b.buf[b.start:] }

// PrependBytes makes room for n bytes before the current content and
// returns the slice to fill in.
func (b *SerializeBuffer) PrependBytes(n int) []byte {
	if n < 0 {
		panic("ble: PrependBytes with negative length")
	}
	if b.start < n {
		grow := n - b.start + len(b.buf)
		nb := make([]byte, len(b.buf)+grow)
		copy(nb[grow:], b.buf)
		b.start += grow
		b.buf = nb
	}
	b.start -= n
	return b.buf[b.start : b.start+n]
}

// AppendBytes adds room for n bytes after the current content and returns
// the slice to fill in.
func (b *SerializeBuffer) AppendBytes(n int) []byte {
	if n < 0 {
		panic("ble: AppendBytes with negative length")
	}
	old := len(b.buf)
	b.buf = append(b.buf, make([]byte, n)...)
	return b.buf[old : old+n]
}

// Clear resets the buffer for reuse.
func (b *SerializeBuffer) Clear() {
	b.start = len(b.buf)
}

// SerializeLayers clears the buffer and serializes the layers onto it in
// order (the first layer ends up outermost).
func SerializeLayers(b *SerializeBuffer, layers ...SerializableLayer) error {
	b.Clear()
	for i := len(layers) - 1; i >= 0; i-- {
		if err := layers[i].SerializeTo(b); err != nil {
			return err
		}
	}
	return nil
}
