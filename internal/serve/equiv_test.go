package serve

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tagsim/internal/cloud"
	"tagsim/internal/geo"
	"tagsim/internal/store"
	"tagsim/internal/trace"
)

// equivRequests is the endpoint sweep the read-path modes must agree
// on, byte for byte: every endpoint, known/quiet/unknown tags, all
// vendor scopes, history limits through the interesting edges, and the
// error responses.
var equivRequests = []string{
	"/v1/lastknown?tag=airtag-1&now=2022-03-07T12:00:00Z",
	"/v1/lastknown?tag=airtag-1&vendor=Apple&now=2022-03-07T12:00:00Z",
	"/v1/lastknown?tag=airtag-1&vendor=Samsung&now=2022-03-07T12:00:00Z",
	"/v1/lastknown?tag=smarttag-1&vendor=Combined&now=2022-03-07T12:00:00Z",
	"/v1/lastknown?tag=airtag-quiet&now=2022-03-07T12:00:00Z",
	"/v1/lastknown?tag=ghost&now=2022-03-07T12:00:00Z",
	"/v1/lastknown?tag=airtag-1&vendor=Nokia",
	"/v1/lastknown?now=2022-03-07T12:00:00Z",
	"/v1/lastknown?tag=airtag-1&now=yesterday",
	"/v1/history?tag=airtag-1",
	"/v1/history?tag=airtag-1&limit=0",
	"/v1/history?tag=airtag-1&limit=1",
	"/v1/history?tag=airtag-1&limit=3",
	"/v1/history?tag=airtag-1&limit=999",
	"/v1/history?tag=airtag-1&vendor=Apple&limit=2",
	"/v1/history?tag=airtag-quiet&limit=0",
	"/v1/history?tag=airtag-1&limit=-4",
	"/v1/history?tag=ghost",
	"/v1/track?tag=airtag-1&now=2022-03-07T12:00:00Z",
	"/v1/track?tag=smarttag-1&now=2022-03-07T12:00:00Z",
	"/v1/track?tag=airtag-quiet&now=2022-03-07T12:00:00Z",
	"/v1/track?tag=ghost",
	"/v1/stats",
}

// cacheCountersRe blanks /v1/stats' cache-effectiveness object before
// mode comparison: hit/miss/fill counts describe the read path itself,
// so they are the one part of a response that legitimately depends on
// which mode served it (and on how many queries ran before).
var cacheCountersRe = regexp.MustCompile(`"cache":\{[^}]*\}`)

func normalizeEquivBody(target, body string) string {
	if strings.HasPrefix(target, "/v1/stats") {
		return cacheCountersRe.ReplaceAllString(body, `"cache":{}`)
	}
	return body
}

// readModes are the three read-path configurations the escape hatches
// select between; responses must not depend on the choice.
var readModes = []struct {
	name   string
	locked bool
	cached bool
}{
	{"locked", true, false},
	{"lockfree", false, false},
	{"lockfree+cache", false, true},
}

func setReadMode(locked, cached bool) (func(), error) {
	wasLocked := store.SetLockedReads(locked)
	wasCached := cloud.SetHotCache(cached)
	return func() {
		store.SetLockedReads(wasLocked)
		cloud.SetHotCache(wasCached)
	}, nil
}

func equivServices(shards int) map[trace.Vendor]*cloud.Service {
	t0 := time.Date(2022, 3, 7, 9, 0, 0, 0, time.UTC)
	pos := geo.LatLon{Lat: 24.45, Lon: 54.37}
	apple := cloud.NewServiceSharded(trace.VendorApple, shards)
	samsung := cloud.NewServiceSharded(trace.VendorSamsung, shards)
	for k := 0; k < 4; k++ {
		at := t0.Add(time.Duration(k) * 4 * time.Minute)
		apple.Ingest(trace.Report{T: at, HeardAt: at, TagID: "airtag-1", Vendor: trace.VendorApple,
			Pos: geo.Destination(pos, float64(k*20), float64(k*50))})
	}
	at := t0.Add(20 * time.Minute) // samsung holds the freshest fix
	samsung.Ingest(trace.Report{T: at, HeardAt: at, TagID: "airtag-1", Vendor: trace.VendorSamsung,
		Pos: geo.Destination(pos, 90, 500)})
	samsung.Ingest(trace.Report{T: t0, HeardAt: t0, TagID: "smarttag-1", Vendor: trace.VendorSamsung, Pos: pos})
	apple.Register("airtag-quiet")
	return map[trace.Vendor]*cloud.Service{trace.VendorApple: apple, trace.VendorSamsung: samsung}
}

// TestReadPathEquivalence is the escape-hatch acceptance property: the
// locked, lock-free, and lock-free+cached read paths produce
// byte-identical responses (status, body, content type) for every
// /v1/* request, at several shard counts, with live ingest racing the
// reads in between the comparison rounds. Run under -race in CI.
func TestReadPathEquivalence(t *testing.T) {
	for _, shards := range []int{1, 4, 16} {
		services := equivServices(shards)
		srv := NewServer(services)
		apple := services[trace.VendorApple]

		// Round 0: compare on the quiet fixture. Then race live ingest
		// against reads in every mode, quiesce, and compare again on the
		// mutated state (round 1).
		for round := 0; round < 2; round++ {
			if round == 1 {
				var stop atomic.Bool
				var wg sync.WaitGroup
				wg.Add(1)
				go func() {
					defer wg.Done()
					t1 := time.Date(2022, 3, 8, 9, 0, 0, 0, time.UTC)
					for step := 0; step < 200; step++ {
						at := t1.Add(time.Duration(step*240) * time.Second)
						apple.Ingest(trace.Report{T: at, HeardAt: at, TagID: "airtag-1",
							Vendor: trace.VendorApple, Pos: geo.LatLon{Lat: float64(step), Lon: 1}})
					}
				}()
				var rg sync.WaitGroup
				for m := range readModes {
					rg.Add(1)
					go func(m int) {
						defer rg.Done()
						// Reads racing the writer exercise the mode's hot
						// path; responses are time-dependent here, so only
						// liveness (a valid status) is asserted.
						for !stop.Load() {
							for _, target := range equivRequests {
								rec := httptest.NewRecorder()
								srv.ServeHTTP(rec, httptest.NewRequest("GET", target, nil))
								if rec.Code == 0 {
									return
								}
							}
						}
					}(m)
				}
				wg.Wait()
				stop.Store(true)
				rg.Wait()
			}

			got := map[string][]string{}
			for _, mode := range readModes {
				restore, _ := setReadMode(mode.locked, mode.cached)
				for _, target := range equivRequests {
					rec := httptest.NewRecorder()
					srv.ServeHTTP(rec, httptest.NewRequest("GET", target, nil))
					key := fmt.Sprintf("%d %s %s", rec.Code, rec.Header().Get("Content-Type"),
						normalizeEquivBody(target, rec.Body.String()))
					got[target] = append(got[target], key)
				}
				restore()
			}
			for _, target := range equivRequests {
				for m := 1; m < len(readModes); m++ {
					if got[target][m] != got[target][0] {
						t.Errorf("shards=%d round=%d %s: %s diverges from %s:\n  %q\n  %q",
							shards, round, target, readModes[m].name, readModes[0].name,
							got[target][m], got[target][0])
					}
				}
			}
		}
	}
}

// TestPreparsedQueryParams pins the single-scan parser against the
// url.Values behavior the handlers used to rely on: escaped keys and
// values, first-occurrence-wins, skipped malformed pairs, and missing
// values.
func TestPreparsedQueryParams(t *testing.T) {
	cases := []struct {
		raw  string
		want queryParams
	}{
		{"tag=airtag-1", queryParams{tag: "airtag-1"}},
		{"tag=a%20b&vendor=Apple", queryParams{tag: "a b", vendor: "Apple"}},
		{"tag=a+b", queryParams{tag: "a b"}},
		{"t%61g=x", queryParams{tag: "x"}},
		{"tag=first&tag=second", queryParams{tag: "first"}},
		{"limit=3&now=2022-03-07T12:00:00Z&tag=x&vendor=Samsung",
			queryParams{tag: "x", vendor: "Samsung", now: "2022-03-07T12:00:00Z", limit: "3"}},
		{"tag", queryParams{tag: ""}},
		{"tag=", queryParams{tag: ""}},
		{"tag=%zz&vendor=Apple", queryParams{vendor: "Apple"}}, // bad escape: pair skipped
		{"&&tag=x&", queryParams{tag: "x"}},
		{"other=1&tag=x", queryParams{tag: "x"}},
	}
	for _, c := range cases {
		if got := parseQuery(c.raw); got != c.want {
			t.Errorf("parseQuery(%q) = %+v, want %+v", c.raw, got, c.want)
		}
	}
}

// TestPooledResponsesAreIsolated: pooled encode buffers must never leak
// one response's bytes into another — hammer mixed-size responses
// concurrently and verify every body parses as the right shape.
func TestPooledResponsesAreIsolated(t *testing.T) {
	srv := NewServer(equivServices(4))
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				target := equivRequests[(i+w)%len(equivRequests)]
				rec := httptest.NewRecorder()
				srv.ServeHTTP(rec, httptest.NewRequest("GET", target, nil))
				if cl := rec.Header().Get("Content-Length"); cl != fmt.Sprint(rec.Body.Len()) {
					t.Errorf("%s: Content-Length %s != body %d", target, cl, rec.Body.Len())
					return
				}
				if rec.Code == http.StatusOK && rec.Body.Len() == 0 {
					t.Errorf("%s: empty 200 body", target)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}
