// The query API's slice of the observability plane: per-endpoint
// request counters and service-latency histograms, collect-on-scrape
// bridges over the store/cache counters the serving path already keeps,
// and the two exposition endpoints (/metrics Prometheus text,
// /debug/vars JSON) that render this server's registry together with
// the process-wide obs.Default one — one pane of glass per process.
package serve

import (
	"net/http"
	"strconv"
	"sync"
	"time"

	"tagsim/internal/cloud"
	"tagsim/internal/obs"
	otrace "tagsim/internal/obs/trace"
)

// endpointMetrics is one endpoint's instrumentation, resolved once at
// registration so the request path never touches the registry.
type endpointMetrics struct {
	latency *obs.Histogram
	codes   [6]*obs.Counter // indexed by status/100 ("2xx" is codes[2])
}

// statusRecorder captures the handler's status code and, when the
// request carries a trace, decides the X-Tag-Trace header at the
// moment the response headers flush. Pooled; only the methods the
// handlers use are forwarded.
type statusRecorder struct {
	http.ResponseWriter
	status int
	tr     *otrace.Trace
	th     *otrace.Threshold
	t0     time.Time
}

// WriteHeader is the last instant a header can be added, so the
// captured-trace advertisement is decided here with the elapsed time
// measured so far. A request whose slowness comes after the headers
// flush (streaming a huge history body) is still captured to the ring
// at FinishRoot time — it just isn't advertised on this response.
func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	if r.tr != nil && r.th.Exceeded(time.Since(r.t0)) {
		r.ResponseWriter.Header().Set("X-Tag-Trace", otrace.FormatID(r.tr.EnsureID()))
	}
	r.ResponseWriter.WriteHeader(code)
}

var recorderPool = sync.Pool{New: func() any { return new(statusRecorder) }}

// handle registers an instrumented endpoint: a serve_latency_seconds
// histogram and serve_requests_total counters by status class, both
// labeled by endpoint, plus a per-request root span propagated to the
// handler through the request context. With metrics and tracing both
// disabled the wrapper is two atomic flag loads — no clock reads, no
// recorder. When either is on, one time.Now feeds both: the root span
// borrows the latency measurement's timestamps, so tracing adds no
// clock reads of its own on this path.
func (s *Server) handle(pattern, endpoint string, h http.HandlerFunc) {
	m := &endpointMetrics{
		latency: s.reg.Histogram("serve_latency_seconds", obs.L("endpoint", endpoint)),
	}
	for c := 2; c <= 5; c++ {
		m.codes[c] = s.reg.Counter("serve_requests_total",
			obs.L("endpoint", endpoint), obs.L("code", strconv.Itoa(c)+"xx"))
	}
	// The capture bar for this endpoint: its own live p99 (from the
	// same histogram the latency wrapper feeds), floored at the default
	// so a cold histogram doesn't capture bulk traffic.
	th := otrace.NewThreshold(otrace.PlaneServe, m.latency, -1)
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		mt, tt := obs.Enabled(), otrace.Enabled()
		if !mt && !tt {
			h(w, r)
			return
		}
		rec := recorderPool.Get().(*statusRecorder)
		rec.ResponseWriter, rec.status = w, http.StatusOK
		t0 := time.Now()
		if tt {
			rec.tr, rec.th, rec.t0 = otrace.Get(), th, t0
			rec.tr.Root(otrace.PlaneServe, endpoint, t0)
			r = r.WithContext(otrace.NewContext(r.Context(), rec.tr))
		}
		h(rec, r)
		elapsed := time.Since(t0)
		// Capture is decided before this request's own sample feeds the
		// histogram: a new-max request must clear the p99 of the workload
		// so far, not a bar its own bucket just dragged up.
		if rec.tr != nil {
			rec.tr.FinishRoot(elapsed, th)
			otrace.Put(rec.tr)
			rec.tr, rec.th = nil, nil
		}
		if mt {
			m.latency.Observe(elapsed)
			if c := rec.status / 100; c >= 2 && c <= 5 {
				m.codes[c].Inc()
			}
		}
		rec.ResponseWriter = nil
		recorderPool.Put(rec)
	})
}

// registerCollectors bridges the counters the serving path already
// keeps — per-vendor and per-shard store counters, hot-cache
// effectiveness — into the server's registry as collect-on-scrape
// series. Nothing here adds work to the hot path; every value is read
// only when /metrics or /debug/vars renders.
func (s *Server) registerCollectors() {
	r := s.reg
	r.Help("store_accepted_total", "reports accepted by the vendor store")
	r.Help("store_rejected_total", "reports rejected by the rate cap or monotonicity")
	r.Help("serve_latency_seconds", "service latency by endpoint")
	r.Help("serve_requests_total", "requests by endpoint and status class")
	r.Help("cache_hits_total", "hot-tag cache probes answered by a valid entry")
	r.Help("store_wal_bytes", "active WAL size (resets on rotation)")
	r.Help("store_wal_fsyncs_total", "WAL fsync batches")
	r.Help("store_flushes_total", "memtable flushes to immutable segments")
	r.Help("store_compactions_total", "segment-run merges")
	r.Help("store_segments", "live immutable segments")
	r.Help("store_segment_bytes", "bytes across live segments")
	r.Help("store_segments_quarantined_total", "segments failing checksum validation, renamed aside")
	for _, svc := range s.svcs {
		svc := svc
		vendor := obs.L("vendor", svc.Vendor().String())
		r.CounterFunc("store_accepted_total", func() uint64 { a, _ := svc.Stats(); return a }, vendor)
		r.CounterFunc("store_rejected_total", func() uint64 { _, j := svc.Stats(); return j }, vendor)
		r.GaugeFunc("store_tags", func() float64 { return float64(svc.NumTags()) }, vendor)
		for i := 0; i < svc.NumShards(); i++ {
			i := i
			shard := obs.L("shard", strconv.Itoa(i))
			r.CounterFunc("store_shard_accepted_total",
				func() uint64 { return svc.ShardStats(i).Accepted }, vendor, shard)
			r.CounterFunc("store_shard_rejected_total",
				func() uint64 { return svc.ShardStats(i).Rejected }, vendor, shard)
			r.CounterFunc("store_shard_epoch",
				func() uint64 { return svc.ShardStats(i).Epoch }, vendor, shard)
			r.GaugeFunc("store_shard_tags",
				func() float64 { return float64(svc.ShardStats(i).Tags) }, vendor, shard)
		}
		if svc.Tiered() {
			// The storage tier underneath this vendor: every series is a
			// collect-on-scrape read of the tier's atomics — the ingest
			// and flush paths never see the registry.
			r.GaugeFunc("store_wal_bytes", func() float64 { return float64(svc.TierStats().WALBytes) }, vendor)
			r.CounterFunc("store_wal_records_total", func() uint64 { return svc.TierStats().WALRecords }, vendor)
			r.CounterFunc("store_wal_fsyncs_total", func() uint64 { return svc.TierStats().WALFsyncs }, vendor)
			r.CounterFunc("store_flushes_total", func() uint64 { return svc.TierStats().Flushes }, vendor)
			r.CounterFunc("store_compactions_total", func() uint64 { return svc.TierStats().Compactions }, vendor)
			r.CounterFunc("store_compacted_bytes_total", func() uint64 { return svc.TierStats().CompactedBytes }, vendor)
			r.CounterFunc("store_segments_quarantined_total", func() uint64 { return svc.TierStats().Quarantined }, vendor)
			r.CounterFunc("store_read_errors_total", func() uint64 { return svc.TierStats().ReadErrors }, vendor)
			r.GaugeFunc("store_segments", func() float64 { return float64(svc.TierStats().Segments) }, vendor)
			r.GaugeFunc("store_segment_bytes", func() float64 { return float64(svc.TierStats().SegmentBytes) }, vendor)
			r.GaugeFunc("store_memtable_bytes", func() float64 { return float64(svc.TierStats().MemtableBytes) }, vendor)
		}
	}
	r.CounterFunc("cache_hits_total", func() uint64 { return s.cache.Stats().Hits })
	r.CounterFunc("cache_misses_total", func() uint64 { return s.cache.Stats().Misses })
	r.CounterFunc("cache_fills_total", func() uint64 { return s.cache.Stats().Fills })
	r.CounterFunc("cache_invalidations_total", func() uint64 { return s.cache.Stats().Invalidations })
}

// Metrics returns the server's registry, so the embedding command can
// add its own collectors (cmd/tagserve registers the live pipeline's
// consumer lag there) and render them on the same pane.
func (s *Server) Metrics() *obs.Registry { return s.reg }

// CacheStats exposes the hot-tag cache counters (also on /v1/stats).
func (s *Server) CacheStats() cloud.CacheStats { return s.cache.Stats() }

// handleMetrics renders the server registry plus the process-wide
// default one in the Prometheus text exposition format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	obs.WritePrometheus(w, s.reg, obs.Default)
}

// handleVars renders the same snapshot as one flat JSON object, in the
// spirit of expvar's /debug/vars.
func (s *Server) handleVars(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	obs.WriteJSON(w, s.reg, obs.Default)
}
