package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"regexp"
	"testing"
	"time"

	"tagsim/internal/cloud"
	"tagsim/internal/geo"
	otrace "tagsim/internal/obs/trace"
	"tagsim/internal/store"
	"tagsim/internal/trace"
)

var traceIDPattern = regexp.MustCompile(`^[0-9a-f]{16}$`)

// TestXTagTraceHeader pins the capture advertisement contract on the
// /v1/* endpoints: a request whose trace clears the serve plane's
// capture bar answers with an X-Tag-Trace header naming the capture on
// /debug/traces, and a request under the bar answers without one.
func TestXTagTraceHeader(t *testing.T) {
	_, ts := fixture()
	defer ts.Close()

	prev := otrace.SetPlaneOverride(otrace.PlaneServe, 0) // capture everything
	defer otrace.SetPlaneOverride(otrace.PlaneServe, prev)

	resp, err := http.Get(ts.URL + "/v1/lastknown?tag=airtag-1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	id := resp.Header.Get("X-Tag-Trace")
	if !traceIDPattern.MatchString(id) {
		t.Fatalf("X-Tag-Trace = %q, want a 16-hex-digit capture ID", id)
	}
	var captured *otrace.Captured
	for _, c := range otrace.DefaultRing.Snapshot(0) {
		if otrace.FormatID(c.ID) == id {
			captured = c
		}
	}
	if captured == nil {
		t.Fatalf("advertised capture %s not present on /debug/traces ring", id)
	}
	if root := captured.Root(); root.Op != "lastknown" || root.Plane != otrace.PlaneServe {
		t.Errorf("capture %s roots at %s.%s, want serve.lastknown", id, root.Plane, root.Op)
	}

	// Under an unreachable bar, the same request stays unadvertised.
	otrace.SetPlaneOverride(otrace.PlaneServe, time.Hour)
	resp, err = http.Get(ts.URL + "/v1/lastknown?tag=airtag-1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Tag-Trace"); got != "" {
		t.Errorf("X-Tag-Trace = %q on a sub-threshold request, want absent", got)
	}
}

// TestDebugTracesEndpoint drives the /debug/traces surface: JSON shape,
// newest-first ordering, and the plane/op/min/limit filters.
func TestDebugTracesEndpoint(t *testing.T) {
	_, ts := fixture()
	defer ts.Close()

	prev := otrace.SetPlaneOverride(otrace.PlaneServe, 0)
	defer otrace.SetPlaneOverride(otrace.PlaneServe, prev)
	for _, path := range []string{
		"/v1/lastknown?tag=airtag-1",
		"/v1/track?tag=airtag-1",
		"/v1/history?tag=airtag-1&limit=5",
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}

	var out TracesResponse
	if code := getJSON(t, ts.URL+"/debug/traces", &out); code != http.StatusOK {
		t.Fatalf("GET /debug/traces: status %d", code)
	}
	if len(out.Traces) < 3 {
		t.Fatalf("got %d traces, want at least the 3 just captured", len(out.Traces))
	}
	for i := 1; i < len(out.Traces); i++ {
		if out.Traces[i-1].ID <= out.Traces[i].ID {
			t.Errorf("traces not newest-first: %s then %s", out.Traces[i-1].ID, out.Traces[i].ID)
		}
	}

	var filtered TracesResponse
	getJSON(t, ts.URL+"/debug/traces?plane=serve&op=track", &filtered)
	if len(filtered.Traces) == 0 {
		t.Fatal("op=track filter returned nothing")
	}
	for _, tr := range filtered.Traces {
		if tr.Op != "track" || tr.Plane != "serve" {
			t.Errorf("filter leaked %s.%s", tr.Plane, tr.Op)
		}
	}

	var none TracesResponse
	getJSON(t, ts.URL+"/debug/traces?min=1h", &none)
	if len(none.Traces) != 0 {
		t.Errorf("min=1h kept %d traces, want 0", len(none.Traces))
	}

	var capped TracesResponse
	getJSON(t, ts.URL+"/debug/traces?limit=2", &capped)
	if len(capped.Traces) != 2 {
		t.Errorf("limit=2 returned %d traces", len(capped.Traces))
	}

	resp, err := http.Get(ts.URL + "/debug/traces?min=bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad min parameter: status %d, want 400", resp.StatusCode)
	}
}

// TestColdHistoryTraceAnatomy is the tentpole's acceptance scenario: a
// cold history read against a tiered store — cache miss, memtable
// short, segments pread and decoded — captures a trace whose span tree
// shows the full serve → cache → store path with correct nesting and
// sane durations.
func TestColdHistoryTraceAnatomy(t *testing.T) {
	svc, err := cloud.NewServicePersistent(trace.VendorApple, 4, store.Tiering{
		Dir:               t.TempDir(),
		MemtableBytes:     16 << 10,
		WALSyncBytes:      4 << 10,
		MinUpdateInterval: time.Second,
		DisableCompaction: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	// A deep history for one tag (reports spaced past the rate cap),
	// flushed so the rows live in immutable segments, not the ring —
	// the next read has no choice but to go to disk.
	at := time.Date(2022, 3, 7, 9, 0, 0, 0, time.UTC)
	for i := 0; i < 200; i++ {
		if !svc.Ingest(report(at, trace.VendorApple, "airtag-cold", geo.Destination(pos, 90, float64(i)))) {
			t.Fatalf("report %d rejected", i)
		}
		at = at.Add(2 * time.Second)
	}
	if err := svc.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}

	ts := httptest.NewServer(NewServer(map[trace.Vendor]*cloud.Service{trace.VendorApple: svc}))
	defer ts.Close()
	prev := otrace.SetPlaneOverride(otrace.PlaneServe, 0)
	defer otrace.SetPlaneOverride(otrace.PlaneServe, prev)

	resp, err := http.Get(ts.URL + "/v1/history?tag=airtag-cold")
	if err != nil {
		t.Fatal(err)
	}
	var hist HistoryResponse
	if err := json.NewDecoder(resp.Body).Decode(&hist); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(hist.Reports) != 200 {
		t.Fatalf("history returned %d reports, want 200", len(hist.Reports))
	}
	id := resp.Header.Get("X-Tag-Trace")
	if id == "" {
		t.Fatal("cold history read not advertised via X-Tag-Trace")
	}
	var c *otrace.Captured
	for _, cc := range otrace.DefaultRing.Snapshot(0) {
		if otrace.FormatID(cc.ID) == id {
			c = cc
		}
	}
	if c == nil {
		t.Fatalf("capture %s not on the ring", id)
	}

	// The anatomy: root serve.history → cache.miss event →
	// cache.fill.history → store.memtable → store.pread + store.decode.
	index := map[string]int{}
	for i, s := range c.Spans {
		if _, dup := index[s.Op]; !dup {
			index[s.Op] = i
		}
	}
	root := c.Root()
	if root.Op != "history" || root.Plane != otrace.PlaneServe || root.Parent != -1 {
		t.Fatalf("root = %s.%s parent %d, want serve.history parent -1", root.Plane, root.Op, root.Parent)
	}
	for _, op := range []string{"cache.miss", "cache.fill.history", "store.memtable", "store.pread", "store.decode"} {
		if _, ok := index[op]; !ok {
			t.Fatalf("captured trace missing %s span:\n%s", op, c.Flame())
		}
	}
	fill, mem := index["cache.fill.history"], index["store.memtable"]
	pread, dec := index["store.pread"], index["store.decode"]
	if p := c.Spans[index["cache.miss"]].Parent; p != 0 {
		t.Errorf("cache.miss parented at %d, want root", p)
	}
	if p := c.Spans[fill].Parent; p != 0 {
		t.Errorf("cache.fill.history parented at %d, want root", p)
	}
	if p := c.Spans[mem].Parent; int(p) != fill {
		t.Errorf("store.memtable parented at %d, want cache.fill.history (%d)", p, fill)
	}
	if p := c.Spans[pread].Parent; int(p) != mem {
		t.Errorf("store.pread parented at %d, want store.memtable (%d)", p, mem)
	}
	if p := c.Spans[dec].Parent; int(p) != mem {
		t.Errorf("store.decode parented at %d, want store.memtable (%d)", p, mem)
	}
	// Durations: every timed span closed, nested within its parent's
	// window, and the root covers them all.
	for i, s := range c.Spans {
		if s.Start < 0 {
			continue // untimed event
		}
		if s.End < s.Start {
			t.Errorf("span %d (%s) has End %d < Start %d", i, s.Op, s.End, s.Start)
		}
		if p := s.Parent; p > 0 && c.Spans[p].Start >= 0 {
			if s.Start < c.Spans[p].Start || s.End > c.Spans[p].End {
				t.Errorf("span %s [%d,%d] escapes parent %s [%d,%d]",
					s.Op, s.Start, s.End, c.Spans[p].Op, c.Spans[p].Start, c.Spans[p].End)
			}
		}
		if s.End > root.End {
			t.Errorf("span %s ends at %d, past the root's %d", s.Op, s.End, root.End)
		}
	}
	if c.Duration() <= 0 {
		t.Errorf("captured duration = %v, want > 0", c.Duration())
	}
	// The memtable span recorded how much the merge needed from disk.
	if a2 := c.Spans[mem].A2; a2 <= 0 {
		t.Errorf("store.memtable disk need (A2) = %d, want > 0 after a full flush", a2)
	}
}
