// The trace surface of the query API: GET /debug/traces serves the
// process-wide slow-op capture ring as JSON, newest-first — the pane
// an operator opens when the latency histograms say "the p99 moved"
// and the question becomes "on what, exactly". Each entry is one
// captured request or background op with its full span tree; the ring
// is lock-free and bounded, so this endpoint is always safe to curl on
// a live server.
package serve

import (
	"net/http"
	"strconv"
	"time"

	otrace "tagsim/internal/obs/trace"
)

// TracesResponse is the /debug/traces envelope.
type TracesResponse struct {
	Captures uint64                `json:"captures"` // total ever captured (ring may have evicted older ones)
	Traces   []otrace.CapturedJSON `json:"traces"`   // newest first
}

// handleTraces renders the capture ring. Query parameters:
//
//	plane=<serve|cache|store|tier|pipeline>  keep traces whose root is on this plane
//	op=<name>      keep traces whose root op equals this (e.g. history, tier.compact)
//	min=<duration> keep traces at least this slow (Go duration syntax, e.g. 2ms)
//	limit=<n>      return at most n traces (default: the whole ring)
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	limit := 0
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeErr(w, http.StatusBadRequest, "bad limit parameter %q", v)
			return
		}
		limit = n
	}
	var min time.Duration
	if v := q.Get("min"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "bad min parameter: %v", err)
			return
		}
		min = d
	}
	plane, op := q.Get("plane"), q.Get("op")

	// Snapshot the whole ring, filter, then cap: a limit must return
	// the newest n matching traces, not the matches among the newest n.
	caps := otrace.DefaultRing.Snapshot(0)
	resp := TracesResponse{Captures: otrace.DefaultRing.Captures(), Traces: []otrace.CapturedJSON{}}
	for _, c := range caps {
		root := c.Root()
		if root == nil {
			continue
		}
		if plane != "" && root.Plane.String() != plane {
			continue
		}
		if op != "" && root.Op != op {
			continue
		}
		if min > 0 && c.Duration() < min {
			continue
		}
		resp.Traces = append(resp.Traces, c.JSON())
		if limit > 0 && len(resp.Traces) >= limit {
			break
		}
	}
	writeJSON(w, http.StatusOK, resp)
}
