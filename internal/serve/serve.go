// Package serve exposes the vendor query surface the paper's crawlers
// reverse-engineered as an HTTP API over the sharded report stores:
// the per-tag last-known location ("last seen X minutes ago", the view
// FindMy/SmartThings render), the accepted-report history, a cross-
// vendor track reconstruction (the emulated unified ecosystem), and
// ingestion counters. A POST ingest endpoint closes the loop so the
// load harness can drive the write path through HTTP too.
//
// The handler is a plain http.Handler built by NewServer, so it runs
// equally under net/http/httptest (in-process load tests, cmd/tagserve's
// self-drive mode) and a real listener.
package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"time"

	"tagsim/internal/cloud"
	"tagsim/internal/geo"
	"tagsim/internal/trace"
)

// Server routes the vendor query API over a set of per-vendor services.
type Server struct {
	mux      *http.ServeMux
	services map[trace.Vendor]*cloud.Service
	combined cloud.Combined
	vendors  []trace.Vendor // sorted, for stable /v1/stats output
}

// NewServer builds the query service over per-vendor backends. The
// services may keep ingesting (e.g. from a live load generator or a
// running simulation flushing through Restore) while the server reads —
// the store's shard locks make every endpoint safe.
func NewServer(services map[trace.Vendor]*cloud.Service) *Server {
	s := &Server{mux: http.NewServeMux(), services: services}
	for v, svc := range services {
		s.vendors = append(s.vendors, v)
		s.combined = append(s.combined, svc)
	}
	sort.Slice(s.vendors, func(i, j int) bool { return s.vendors[i] < s.vendors[j] })
	sort.Slice(s.combined, func(i, j int) bool { return s.combined[i].Vendor() < s.combined[j].Vendor() })
	s.mux.HandleFunc("GET /v1/lastknown", s.handleLastKnown)
	s.mux.HandleFunc("GET /v1/history", s.handleHistory)
	s.mux.HandleFunc("GET /v1/track", s.handleTrack)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("POST /v1/report", s.handleReport)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// LastKnownResponse is what the companion app shows for one tag: the
// last reported position and the quantized "last seen X minutes ago"
// label the crawlers OCR.
type LastKnownResponse struct {
	TagID  string     `json:"tag_id"`
	Vendor string     `json:"vendor"`
	Found  bool       `json:"found"`
	Pos    geo.LatLon `json:"pos,omitzero"`
	SeenAt time.Time  `json:"seen_at,omitzero"`
	// AgeMinutes is floored to whole minutes relative to the query's
	// ?now= (or the server clock), exactly like the app label; 0 means
	// the "Now" state Table 1 counts.
	AgeMinutes int `json:"age_minutes"`
}

// HistoryResponse lists a tag's retained accepted reports oldest-first.
type HistoryResponse struct {
	TagID   string         `json:"tag_id"`
	Vendor  string         `json:"vendor"`
	Reports []trace.Report `json:"reports"`
}

// TrackPoint is one fix of a cross-vendor track.
type TrackPoint struct {
	T      time.Time  `json:"t"`
	Pos    geo.LatLon `json:"pos"`
	Vendor string     `json:"vendor"`
}

// TrackResponse is the stalker's-eye view the paper builds by merging
// both ecosystems: the freshest last-known fix plus the merged,
// time-sorted report track.
type TrackResponse struct {
	TagID string            `json:"tag_id"`
	Last  LastKnownResponse `json:"last"`
	Track []TrackPoint      `json:"track"`
}

// VendorStats is one vendor's ingestion counters.
type VendorStats struct {
	Vendor   string `json:"vendor"`
	Tags     int    `json:"tags"`
	Accepted uint64 `json:"accepted"`
	Rejected uint64 `json:"rejected"`
}

// StatsResponse aggregates every vendor's counters.
type StatsResponse struct {
	Vendors []VendorStats `json:"vendors"`
}

// IngestResponse answers POST /v1/report.
type IngestResponse struct {
	Accepted bool `json:"accepted"`
}

// errorResponse is the JSON error envelope.
type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// tagParam extracts the mandatory ?tag= parameter.
func tagParam(w http.ResponseWriter, r *http.Request) (string, bool) {
	tag := r.URL.Query().Get("tag")
	if tag == "" {
		writeErr(w, http.StatusBadRequest, "missing tag parameter")
		return "", false
	}
	return tag, true
}

// serviceFor resolves the ?vendor= parameter: a nil service with ok
// means the combined (freshest-wins) ecosystem, requested as "Combined"
// or by omitting the parameter. Bad and unbacked vendors are answered
// here.
func (s *Server) serviceFor(w http.ResponseWriter, r *http.Request) (svc *cloud.Service, label string, ok bool) {
	name := r.URL.Query().Get("vendor")
	if name == "" || name == trace.VendorCombined.String() {
		return nil, trace.VendorCombined.String(), true
	}
	v, err := trace.ParseVendor(name)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "unknown vendor %q", name)
		return nil, "", false
	}
	svc, found := s.services[v]
	if !found {
		writeErr(w, http.StatusNotFound, "no %s service", v)
		return nil, "", false
	}
	return svc, v.String(), true
}

// viewFor is serviceFor collapsed to the last-seen View interface.
func (s *Server) viewFor(w http.ResponseWriter, r *http.Request) (cloud.View, string, bool) {
	svc, label, ok := s.serviceFor(w, r)
	if !ok {
		return nil, "", false
	}
	if svc == nil {
		return s.combined, label, true
	}
	return svc, label, true
}

// knownTag answers whether any backing service knows the tag; unknown
// tags 404 on every tag-scoped endpoint (a paired-but-unreported tag
// still answers 200 with the app's "no location found").
func (s *Server) knownTag(w http.ResponseWriter, tagID string) bool {
	for _, svc := range s.services {
		if svc.Known(tagID) {
			return true
		}
	}
	writeErr(w, http.StatusNotFound, "unknown tag %q", tagID)
	return false
}

// nowParam returns the reference instant for age labels: ?now=RFC3339
// when given (deterministic queries against simulated pasts), else the
// server clock.
func nowParam(w http.ResponseWriter, r *http.Request) (time.Time, bool) {
	if raw := r.URL.Query().Get("now"); raw != "" {
		t, err := time.Parse(time.RFC3339, raw)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "bad now parameter: %v", err)
			return time.Time{}, false
		}
		return t, true
	}
	return time.Now(), true
}

func lastKnown(view cloud.View, vendorName, tagID string, now time.Time) LastKnownResponse {
	resp := LastKnownResponse{TagID: tagID, Vendor: vendorName}
	pos, at, ok := view.LastSeen(tagID)
	if !ok {
		return resp // the app's "no location found"
	}
	age := int(now.Sub(at) / time.Minute) // the app floors to whole minutes
	if age < 0 {
		age = 0
	}
	resp.Found, resp.Pos, resp.SeenAt, resp.AgeMinutes = true, pos, at, age
	return resp
}

func (s *Server) handleLastKnown(w http.ResponseWriter, r *http.Request) {
	tag, ok := tagParam(w, r)
	if !ok {
		return
	}
	view, vendorName, ok := s.viewFor(w, r)
	if !ok {
		return
	}
	now, ok := nowParam(w, r)
	if !ok {
		return
	}
	if !s.knownTag(w, tag) {
		return
	}
	writeJSON(w, http.StatusOK, lastKnown(view, vendorName, tag, now))
}

func (s *Server) handleHistory(w http.ResponseWriter, r *http.Request) {
	tag, ok := tagParam(w, r)
	if !ok {
		return
	}
	svc, label, ok := s.serviceFor(w, r)
	if !ok {
		return
	}
	limit := -1 // no limit
	if raw := r.URL.Query().Get("limit"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 0 {
			writeErr(w, http.StatusBadRequest, "bad limit parameter %q", raw)
			return
		}
		limit = n
	}
	if !s.knownTag(w, tag) {
		return
	}
	var reports []trace.Report
	if svc == nil {
		reports = s.combined.MergedHistory(tag)
	} else {
		reports = svc.History(tag)
	}
	if limit >= 0 && limit < len(reports) { // keep the newest n
		reports = reports[len(reports)-limit:]
	}
	writeJSON(w, http.StatusOK, HistoryResponse{TagID: tag, Vendor: label, Reports: reports})
}

func (s *Server) handleTrack(w http.ResponseWriter, r *http.Request) {
	tag, ok := tagParam(w, r)
	if !ok {
		return
	}
	now, ok := nowParam(w, r)
	if !ok {
		return
	}
	if !s.knownTag(w, tag) {
		return
	}
	merged := s.combined.MergedHistory(tag)
	track := make([]TrackPoint, 0, len(merged))
	for _, rep := range merged {
		track = append(track, TrackPoint{T: rep.T, Pos: rep.Pos, Vendor: rep.Vendor.String()})
	}
	writeJSON(w, http.StatusOK, TrackResponse{
		TagID: tag,
		Last:  lastKnown(s.combined, trace.VendorCombined.String(), tag, now),
		Track: track,
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	resp := StatsResponse{Vendors: make([]VendorStats, 0, len(s.vendors))}
	for _, v := range s.vendors {
		svc := s.services[v]
		acc, rej := svc.Stats()
		resp.Vendors = append(resp.Vendors, VendorStats{
			Vendor: v.String(), Tags: svc.NumTags(), Accepted: acc, Rejected: rej,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	// The vendor field is decoded through a pointer so an absent key is
	// a 400, not a silent fall-through to the zero vendor (Apple).
	var raw struct {
		trace.Report
		Vendor *trace.Vendor `json:"vendor"`
	}
	if err := json.NewDecoder(r.Body).Decode(&raw); err != nil {
		writeErr(w, http.StatusBadRequest, "bad report body: %v", err)
		return
	}
	if raw.TagID == "" {
		writeErr(w, http.StatusBadRequest, "report missing tag_id")
		return
	}
	if raw.Vendor == nil {
		writeErr(w, http.StatusBadRequest, "report missing vendor")
		return
	}
	rep := raw.Report
	rep.Vendor = *raw.Vendor
	svc, ok := s.services[rep.Vendor]
	if !ok {
		writeErr(w, http.StatusNotFound, "no %s service", rep.Vendor)
		return
	}
	writeJSON(w, http.StatusOK, IngestResponse{Accepted: svc.Ingest(rep)})
}
