// Package serve exposes the vendor query surface the paper's crawlers
// reverse-engineered as an HTTP API over the sharded report stores:
// the per-tag last-known location ("last seen X minutes ago", the view
// FindMy/SmartThings render), the accepted-report history, a cross-
// vendor track reconstruction (the emulated unified ecosystem), and
// ingestion counters. A POST ingest endpoint closes the loop so the
// load harness can drive the write path through HTTP too.
//
// The handler is a plain http.Handler built by NewServer, so it runs
// equally under net/http/httptest (in-process load tests, cmd/tagserve's
// self-drive mode) and a real listener.
//
// The read handlers are built for the Zipf-hot query mix the load
// harness models: the store reads underneath are lock-free (epoch
// views, see internal/store), /v1/lastknown and /v1/track are answered
// from the bounded hot-tag cache whenever the backing shards' epochs
// haven't moved (see cloud.HotCache; cloud.SetHotCache is the escape
// hatch), query parameters are parsed in one pass over the raw query
// string instead of materializing a url.Values map per request, JSON
// responses encode into pooled buffers, and capped history queries copy
// only the newest N reports out of the rings.
package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"tagsim/internal/cloud"
	"tagsim/internal/geo"
	"tagsim/internal/obs"
	otrace "tagsim/internal/obs/trace"
	"tagsim/internal/store"
	"tagsim/internal/trace"
)

// Server routes the vendor query API over a set of per-vendor services.
type Server struct {
	mux      *http.ServeMux
	services map[trace.Vendor]*cloud.Service
	svcs     []*cloud.Service // sorted by vendor, the deterministic probe order
	combined cloud.Combined
	vendors  []trace.Vendor // sorted, for stable /v1/stats output
	cache    *cloud.HotCache
	// reg is this server's metric registry: per-endpoint latency
	// histograms and request counters plus collect-on-scrape bridges
	// over the store and cache counters. Per-instance (not obs.Default)
	// so the many short-lived stores a campaign builds never pile up
	// stale series in the process registry.
	reg *obs.Registry
}

// NewServer builds the query service over per-vendor backends. The
// services may keep ingesting (e.g. from a live load generator or a
// running simulation flushing through Restore) while the server reads —
// reads are lock-free against the stores' epoch views, and the hot-tag
// cache revalidates against the shard epochs on every hit.
func NewServer(services map[trace.Vendor]*cloud.Service) *Server {
	s := &Server{mux: http.NewServeMux(), services: services}
	for v, svc := range services {
		s.vendors = append(s.vendors, v)
		s.svcs = append(s.svcs, svc)
	}
	sort.Slice(s.vendors, func(i, j int) bool { return s.vendors[i] < s.vendors[j] })
	sort.Slice(s.svcs, func(i, j int) bool { return s.svcs[i].Vendor() < s.svcs[j].Vendor() })
	s.combined = cloud.Combined(s.svcs)
	s.cache = cloud.NewHotCache(services, 0)
	s.reg = obs.NewRegistry()
	s.handle("GET /v1/lastknown", "lastknown", s.handleLastKnown)
	s.handle("GET /v1/history", "history", s.handleHistory)
	s.handle("GET /v1/track", "track", s.handleTrack)
	s.handle("GET /v1/stats", "stats", s.handleStats)
	s.handle("POST /v1/report", "report", s.handleReport)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /debug/vars", s.handleVars)
	s.mux.HandleFunc("GET /debug/traces", s.handleTraces)
	s.registerCollectors()
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// LastKnownResponse is what the companion app shows for one tag: the
// last reported position and the quantized "last seen X minutes ago"
// label the crawlers OCR.
type LastKnownResponse struct {
	TagID  string     `json:"tag_id"`
	Vendor string     `json:"vendor"`
	Found  bool       `json:"found"`
	Pos    geo.LatLon `json:"pos,omitzero"`
	SeenAt time.Time  `json:"seen_at,omitzero"`
	// AgeMinutes is floored to whole minutes relative to the query's
	// ?now= (or the server clock), exactly like the app label; 0 means
	// the "Now" state Table 1 counts.
	AgeMinutes int `json:"age_minutes"`
}

// HistoryResponse lists a tag's retained accepted reports oldest-first.
type HistoryResponse struct {
	TagID   string         `json:"tag_id"`
	Vendor  string         `json:"vendor"`
	Reports []trace.Report `json:"reports"`
}

// TrackPoint is one fix of a cross-vendor track.
type TrackPoint struct {
	T      time.Time  `json:"t"`
	Pos    geo.LatLon `json:"pos"`
	Vendor string     `json:"vendor"`
}

// TrackResponse is the stalker's-eye view the paper builds by merging
// both ecosystems: the freshest last-known fix plus the merged,
// time-sorted report track.
type TrackResponse struct {
	TagID string            `json:"tag_id"`
	Last  LastKnownResponse `json:"last"`
	Track []TrackPoint      `json:"track"`
}

// VendorStats is one vendor's ingestion counters.
type VendorStats struct {
	Vendor   string `json:"vendor"`
	Tags     int    `json:"tags"`
	Accepted uint64 `json:"accepted"`
	Rejected uint64 `json:"rejected"`
}

// VendorStorage is one vendor store's storage-tier snapshot: WAL and
// segment sizes, flush/compaction activity, quarantine counters.
type VendorStorage struct {
	Vendor string `json:"vendor"`
	store.TierStats
}

// StatsResponse aggregates every vendor's counters plus the hot-tag
// cache's effectiveness counters — the runtime decomposition of the
// cached read path (how much of the query mass the cache absorbs, and
// whether misses come from writes or collisions) — and, for persistent
// stores, the storage tier underneath each vendor.
type StatsResponse struct {
	Vendors []VendorStats    `json:"vendors"`
	Cache   cloud.CacheStats `json:"cache"`
	Storage []VendorStorage  `json:"storage,omitempty"`
}

// IngestResponse answers POST /v1/report.
type IngestResponse struct {
	Accepted bool `json:"accepted"`
}

// errorResponse is the JSON error envelope.
type errorResponse struct {
	Error string `json:"error"`
}

// bufPool recycles the response-encode buffers; any buffer that grew
// past maxPooledBuf (an unbounded-history response) is dropped rather
// than pinned in the pool.
var bufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

const maxPooledBuf = 1 << 18

func writeJSON(w http.ResponseWriter, status int, v any) {
	buf := bufPool.Get().(*bytes.Buffer)
	buf.Reset()
	_ = json.NewEncoder(buf).Encode(v)
	h := w.Header()
	h.Set("Content-Type", "application/json")
	h.Set("Content-Length", strconv.Itoa(buf.Len()))
	w.WriteHeader(status)
	_, _ = w.Write(buf.Bytes())
	if buf.Cap() <= maxPooledBuf {
		bufPool.Put(buf)
	}
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// queryParams are the four parameters the read endpoints accept,
// gathered in one pass over the raw query string. Absent keys stay "",
// matching url.Values.Get.
type queryParams struct {
	tag, vendor, now, limit string
}

// parseQuery scans RawQuery once without building a url.Values map.
// Pairs that fail to unescape are skipped, exactly like url.ParseQuery
// (which collects the error the handlers never looked at); repeated
// keys keep the first value, like url.Values.Get.
func parseQuery(raw string) (p queryParams) {
	var seen [4]bool
	for len(raw) > 0 {
		pair := raw
		if i := strings.IndexByte(raw, '&'); i >= 0 {
			pair, raw = raw[:i], raw[i+1:]
		} else {
			raw = ""
		}
		key, val := pair, ""
		if i := strings.IndexByte(pair, '='); i >= 0 {
			key, val = pair[:i], pair[i+1:]
		}
		if strings.IndexByte(key, '%') >= 0 || strings.IndexByte(key, '+') >= 0 {
			u, err := url.QueryUnescape(key)
			if err != nil {
				continue
			}
			key = u
		}
		var dst *string
		var idx int
		switch key {
		case "tag":
			dst, idx = &p.tag, 0
		case "vendor":
			dst, idx = &p.vendor, 1
		case "now":
			dst, idx = &p.now, 2
		case "limit":
			dst, idx = &p.limit, 3
		default:
			continue
		}
		if seen[idx] {
			continue
		}
		if strings.IndexByte(val, '%') >= 0 || strings.IndexByte(val, '+') >= 0 {
			u, err := url.QueryUnescape(val)
			if err != nil {
				continue
			}
			val = u
		}
		*dst, seen[idx] = val, true
	}
	return p
}

// tagParam validates the mandatory tag parameter.
func tagParam(w http.ResponseWriter, p queryParams) (string, bool) {
	if p.tag == "" {
		writeErr(w, http.StatusBadRequest, "missing tag parameter")
		return "", false
	}
	return p.tag, true
}

// serviceFor resolves the vendor parameter: a nil service with ok means
// the combined (freshest-wins) ecosystem, requested as "Combined" or by
// omitting the parameter. Bad and unbacked vendors are answered here.
func (s *Server) serviceFor(w http.ResponseWriter, p queryParams) (svc *cloud.Service, label string, ok bool) {
	if p.vendor == "" || p.vendor == trace.VendorCombined.String() {
		return nil, trace.VendorCombined.String(), true
	}
	v, err := trace.ParseVendor(p.vendor)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "unknown vendor %q", p.vendor)
		return nil, "", false
	}
	svc, found := s.services[v]
	if !found {
		writeErr(w, http.StatusNotFound, "no %s service", v)
		return nil, "", false
	}
	return svc, v.String(), true
}

// knownTag answers whether any backing service knows the tag, probing
// in sorted vendor order and stopping at the first hit (through the
// hot-tag cache, so a hot tag's existence check costs an epoch
// revalidation); unknown tags 404 on every tag-scoped endpoint (a
// paired-but-unreported tag still answers 200 with the app's "no
// location found").
func (s *Server) knownTag(w http.ResponseWriter, tagID string) bool {
	if s.cache.Known(tagID) {
		return true
	}
	writeErr(w, http.StatusNotFound, "unknown tag %q", tagID)
	return false
}

// nowParam returns the reference instant for age labels: ?now=RFC3339
// when given (deterministic queries against simulated pasts), else the
// server clock.
func nowParam(w http.ResponseWriter, p queryParams) (time.Time, bool) {
	if p.now != "" {
		t, err := time.Parse(time.RFC3339, p.now)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "bad now parameter: %v", err)
			return time.Time{}, false
		}
		return t, true
	}
	return time.Now(), true
}

// lastKnownAt shapes a (pos, at, found) answer into the app's response.
func lastKnownAt(vendorName, tagID string, pos geo.LatLon, at time.Time, found bool, now time.Time) LastKnownResponse {
	resp := LastKnownResponse{TagID: tagID, Vendor: vendorName}
	if !found {
		return resp // the app's "no location found"
	}
	age := int(now.Sub(at) / time.Minute) // the app floors to whole minutes
	if age < 0 {
		age = 0
	}
	resp.Found, resp.Pos, resp.SeenAt, resp.AgeMinutes = true, pos, at, age
	return resp
}

func lastKnown(view cloud.View, vendorName, tagID string, now time.Time) LastKnownResponse {
	pos, at, ok := view.LastSeen(tagID)
	return lastKnownAt(vendorName, tagID, pos, at, ok, now)
}

func (s *Server) handleLastKnown(w http.ResponseWriter, r *http.Request) {
	p := parseQuery(r.URL.RawQuery)
	tag, ok := tagParam(w, p)
	if !ok {
		return
	}
	svc, vendorName, ok := s.serviceFor(w, p)
	if !ok {
		return
	}
	now, ok := nowParam(w, p)
	if !ok {
		return
	}
	if svc == nil { // combined view: one cache probe answers known + fix
		pos, at, found, known := s.cache.LastSeenTraced(tag, otrace.FromContext(r.Context()))
		if !known {
			writeErr(w, http.StatusNotFound, "unknown tag %q", tag)
			return
		}
		writeJSON(w, http.StatusOK, lastKnownAt(vendorName, tag, pos, at, found, now))
		return
	}
	if !s.knownTag(w, tag) {
		return
	}
	writeJSON(w, http.StatusOK, lastKnown(svc, vendorName, tag, now))
}

func (s *Server) handleHistory(w http.ResponseWriter, r *http.Request) {
	p := parseQuery(r.URL.RawQuery)
	tag, ok := tagParam(w, p)
	if !ok {
		return
	}
	svc, label, ok := s.serviceFor(w, p)
	if !ok {
		return
	}
	limit := -1 // no limit
	if p.limit != "" {
		n, err := strconv.Atoi(p.limit)
		if err != nil || n < 0 {
			writeErr(w, http.StatusBadRequest, "bad limit parameter %q", p.limit)
			return
		}
		limit = n
	}
	// The limit rides down into the stores: a capped query copies only
	// the newest N reports out of each ring instead of materializing the
	// whole history and slicing it. The combined view is served through
	// the hot-tag cache — the history pane asks for the same window
	// every time, so a hot tag's window is one fill per epoch.
	tr := otrace.FromContext(r.Context())
	var reports []trace.Report
	if svc == nil {
		var known bool
		if reports, known = s.cache.HistoryTailTraced(tag, limit, tr); !known {
			writeErr(w, http.StatusNotFound, "unknown tag %q", tag)
			return
		}
	} else {
		if !s.knownTag(w, tag) {
			return
		}
		reports = svc.RecentHistoryTraced(tag, limit, tr)
	}
	writeJSON(w, http.StatusOK, HistoryResponse{TagID: tag, Vendor: label, Reports: reports})
}

func (s *Server) handleTrack(w http.ResponseWriter, r *http.Request) {
	p := parseQuery(r.URL.RawQuery)
	tag, ok := tagParam(w, p)
	if !ok {
		return
	}
	now, ok := nowParam(w, p)
	if !ok {
		return
	}
	tr := otrace.FromContext(r.Context())
	merged, known := s.cache.TrackTraced(tag, tr)
	if !known {
		writeErr(w, http.StatusNotFound, "unknown tag %q", tag)
		return
	}
	track := make([]TrackPoint, 0, len(merged))
	for _, rep := range merged {
		track = append(track, TrackPoint{T: rep.T, Pos: rep.Pos, Vendor: rep.Vendor.String()})
	}
	pos, at, found, _ := s.cache.LastSeenTraced(tag, tr)
	writeJSON(w, http.StatusOK, TrackResponse{
		TagID: tag,
		Last:  lastKnownAt(trace.VendorCombined.String(), tag, pos, at, found, now),
		Track: track,
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	resp := StatsResponse{Vendors: make([]VendorStats, 0, len(s.vendors))}
	for _, v := range s.vendors {
		svc := s.services[v]
		acc, rej := svc.Stats()
		resp.Vendors = append(resp.Vendors, VendorStats{
			Vendor: v.String(), Tags: svc.NumTags(), Accepted: acc, Rejected: rej,
		})
	}
	resp.Cache = s.cache.Stats()
	for _, svc := range s.svcs {
		if svc.Tiered() {
			resp.Storage = append(resp.Storage, VendorStorage{
				Vendor: svc.Vendor().String(), TierStats: svc.TierStats(),
			})
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	// The vendor field is decoded through a pointer so an absent key is
	// a 400, not a silent fall-through to the zero vendor (Apple).
	var raw struct {
		trace.Report
		Vendor *trace.Vendor `json:"vendor"`
	}
	if err := json.NewDecoder(r.Body).Decode(&raw); err != nil {
		writeErr(w, http.StatusBadRequest, "bad report body: %v", err)
		return
	}
	if raw.TagID == "" {
		writeErr(w, http.StatusBadRequest, "report missing tag_id")
		return
	}
	if raw.Vendor == nil {
		writeErr(w, http.StatusBadRequest, "report missing vendor")
		return
	}
	rep := raw.Report
	rep.Vendor = *raw.Vendor
	svc, ok := s.services[rep.Vendor]
	if !ok {
		writeErr(w, http.StatusNotFound, "no %s service", rep.Vendor)
		return
	}
	tr := otrace.FromContext(r.Context())
	sp := tr.Start(otrace.PlaneStore, "store.ingest", 0, 0)
	accepted := svc.Ingest(rep)
	if accepted {
		tr.SetAttrs(sp, 1, 0)
	}
	tr.Finish(sp)
	writeJSON(w, http.StatusOK, IngestResponse{Accepted: accepted})
}
