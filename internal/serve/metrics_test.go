package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"tagsim/internal/cloud"
	"tagsim/internal/obs"
)

// TestMetricsEndpoint drives a few requests through the server and then
// scrapes /metrics: the Prometheus text must carry per-endpoint request
// counters and latency histograms, the store collectors, and the cache
// counters — the live-acceptance criterion as a unit test.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := fixture()
	defer ts.Close()
	was := cloud.SetHotCache(true)
	defer cloud.SetHotCache(was)

	for i := 0; i < 3; i++ {
		resp, err := http.Get(ts.URL + "/v1/lastknown?tag=airtag-1")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	resp, err := http.Get(ts.URL + "/v1/lastknown") // missing tag: 400
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		`serve_requests_total{code="2xx",endpoint="lastknown"} 3`,
		`serve_requests_total{code="4xx",endpoint="lastknown"} 1`,
		`serve_latency_seconds_count{endpoint="lastknown"} 4`,
		`serve_latency_seconds_bucket{endpoint="lastknown",le="+Inf"} 4`,
		`store_accepted_total{vendor="Apple"} 2`,
		`store_tags{vendor="Apple"} 2`,
		`cache_hits_total`,
		`cache_misses_total`,
		`# TYPE serve_latency_seconds histogram`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestDebugVarsEndpoint: /debug/vars must be one JSON object merging
// the per-server registry with the process-wide obs.Default series.
func TestDebugVarsEndpoint(t *testing.T) {
	_, ts := fixture()
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/lastknown?tag=airtag-1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	resp, err = http.Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("content type %q", ct)
	}
	var vars map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatalf("/debug/vars is not a JSON object: %v", err)
	}
	for _, key := range []string{
		`serve_requests_total{code="2xx",endpoint="lastknown"}`,
		"store_accepted_total{vendor=\"Apple\"}",
	} {
		if _, ok := vars[key]; !ok {
			t.Errorf("/debug/vars missing %q", key)
		}
	}
}

// TestStatsCarriesCacheCounters: the /v1/stats satellite — the cache
// block must be present and move with cached traffic.
func TestStatsCarriesCacheCounters(t *testing.T) {
	_, ts := fixture()
	defer ts.Close()
	was := cloud.SetHotCache(true)
	defer cloud.SetHotCache(was)

	for i := 0; i < 4; i++ {
		resp, err := http.Get(ts.URL + "/v1/lastknown?tag=airtag-1")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	var stats StatsResponse
	if code := getJSON(t, ts.URL+"/v1/stats", &stats); code != http.StatusOK {
		t.Fatalf("GET /v1/stats: %d", code)
	}
	if stats.Cache.Hits == 0 || stats.Cache.Misses == 0 || stats.Cache.Fills == 0 {
		t.Fatalf("cache counters did not move: %+v", stats.Cache)
	}
}

// TestMetricsDisabledRequestsStillServe: with obs disabled, the
// instrumented handlers fall through to the raw path and the serve
// counters freeze, but responses are unchanged.
func TestMetricsDisabledRequestsStillServe(t *testing.T) {
	defer obs.SetEnabled(obs.SetEnabled(false))
	_, ts := fixture()
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/lastknown?tag=airtag-1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("disabled path broke serving: %d", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if strings.Contains(string(body), `serve_latency_seconds_count{endpoint="lastknown"} 1`) {
		t.Fatal("disabled path still recorded a latency sample")
	}
}
