package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"tagsim/internal/cloud"
	"tagsim/internal/geo"
	"tagsim/internal/trace"
)

var (
	t0  = time.Date(2022, 3, 7, 9, 0, 0, 0, time.UTC)
	pos = geo.LatLon{Lat: 24.45, Lon: 54.37}
)

func report(at time.Time, v trace.Vendor, tagID string, p geo.LatLon) trace.Report {
	return trace.Report{T: at, HeardAt: at, TagID: tagID, Vendor: v, Pos: p, ReporterID: "dev-1"}
}

// fixture: apple has two spaced reports for airtag-1, samsung one fresher
// report for the same tag plus its own smarttag-1.
func fixture() (map[trace.Vendor]*cloud.Service, *httptest.Server) {
	apple := cloud.NewService(trace.VendorApple)
	samsung := cloud.NewService(trace.VendorSamsung)
	apple.Ingest(report(t0, trace.VendorApple, "airtag-1", pos))
	apple.Ingest(report(t0.Add(10*time.Minute), trace.VendorApple, "airtag-1", geo.Destination(pos, 90, 300)))
	samsung.Ingest(report(t0.Add(20*time.Minute), trace.VendorSamsung, "airtag-1", geo.Destination(pos, 180, 500)))
	samsung.Ingest(report(t0, trace.VendorSamsung, "smarttag-1", pos))
	apple.Register("airtag-quiet") // paired, never reported
	services := map[trace.Vendor]*cloud.Service{
		trace.VendorApple:   apple,
		trace.VendorSamsung: samsung,
	}
	return services, httptest.NewServer(NewServer(services))
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
	return resp.StatusCode
}

func TestLastKnownPerVendorAndCombined(t *testing.T) {
	_, ts := fixture()
	defer ts.Close()

	var lk LastKnownResponse
	now := t0.Add(25 * time.Minute).Format(time.RFC3339)
	if code := getJSON(t, ts.URL+"/v1/lastknown?vendor=Apple&tag=airtag-1&now="+now, &lk); code != 200 {
		t.Fatalf("status %d", code)
	}
	if !lk.Found || lk.Vendor != "Apple" || !lk.SeenAt.Equal(t0.Add(10*time.Minute)) || lk.AgeMinutes != 15 {
		t.Errorf("apple lastknown = %+v", lk)
	}
	// Combined view picks the freshest fix across vendors (samsung's).
	if getJSON(t, ts.URL+"/v1/lastknown?vendor=Combined&tag=airtag-1&now="+now, &lk); !lk.SeenAt.Equal(t0.Add(20 * time.Minute)) {
		t.Errorf("combined lastknown seen_at = %v, want samsung's fresher fix", lk.SeenAt)
	}
	if lk.AgeMinutes != 5 {
		t.Errorf("combined age = %d, want 5", lk.AgeMinutes)
	}
	// Registered but report-less tag: 200 with the app's "no location
	// found" (the companion app's own answer for a silent paired tag).
	if code := getJSON(t, ts.URL+"/v1/lastknown?vendor=Apple&tag=airtag-quiet", &lk); code != 200 || lk.Found {
		t.Errorf("report-less tag: code %d found %v", code, lk.Found)
	}
}

func TestHistoryEndpoint(t *testing.T) {
	_, ts := fixture()
	defer ts.Close()

	var h HistoryResponse
	if code := getJSON(t, ts.URL+"/v1/history?vendor=Apple&tag=airtag-1", &h); code != 200 {
		t.Fatalf("status %d", code)
	}
	if len(h.Reports) != 2 || !h.Reports[0].T.Before(h.Reports[1].T) {
		t.Errorf("apple history = %d reports", len(h.Reports))
	}
	// Combined merges and time-sorts across vendors.
	if getJSON(t, ts.URL+"/v1/history?tag=airtag-1", &h); len(h.Reports) != 3 {
		t.Errorf("combined history = %d reports, want 3", len(h.Reports))
	}
	for i := 1; i < len(h.Reports); i++ {
		if h.Reports[i].T.Before(h.Reports[i-1].T) {
			t.Error("combined history not time-sorted")
		}
	}
	// limit keeps the newest n.
	if getJSON(t, ts.URL+"/v1/history?tag=airtag-1&limit=1", &h); len(h.Reports) != 1 || !h.Reports[0].T.Equal(t0.Add(20*time.Minute)) {
		t.Errorf("limited history = %+v", h.Reports)
	}
}

func TestTrackEndpoint(t *testing.T) {
	_, ts := fixture()
	defer ts.Close()

	var tr TrackResponse
	now := t0.Add(30 * time.Minute).Format(time.RFC3339)
	if code := getJSON(t, ts.URL+"/v1/track?tag=airtag-1&now="+now, &tr); code != 200 {
		t.Fatalf("status %d", code)
	}
	if len(tr.Track) != 3 {
		t.Fatalf("track has %d points, want 3", len(tr.Track))
	}
	if tr.Track[0].Vendor != "Apple" || tr.Track[2].Vendor != "Samsung" {
		t.Errorf("track vendor order = %s..%s", tr.Track[0].Vendor, tr.Track[2].Vendor)
	}
	if !tr.Last.Found || tr.Last.AgeMinutes != 10 {
		t.Errorf("track last = %+v", tr.Last)
	}
}

func TestStatsEndpoint(t *testing.T) {
	_, ts := fixture()
	defer ts.Close()

	var st StatsResponse
	if code := getJSON(t, ts.URL+"/v1/stats", &st); code != 200 {
		t.Fatalf("status %d", code)
	}
	if len(st.Vendors) != 2 || st.Vendors[0].Vendor != "Apple" || st.Vendors[1].Vendor != "Samsung" {
		t.Fatalf("stats vendors = %+v", st.Vendors)
	}
	if st.Vendors[0].Accepted != 2 || st.Vendors[0].Tags != 2 { // airtag-1 + the paired-but-quiet tag
		t.Errorf("apple stats = %+v", st.Vendors[0])
	}
	if st.Vendors[1].Accepted != 2 || st.Vendors[1].Tags != 2 {
		t.Errorf("samsung stats = %+v", st.Vendors[1])
	}
}

func TestReportIngestEndpoint(t *testing.T) {
	services, ts := fixture()
	defer ts.Close()

	post := func(rep trace.Report) (int, IngestResponse) {
		body, _ := json.Marshal(rep)
		resp, err := http.Post(ts.URL+"/v1/report", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var ir IngestResponse
		_ = json.NewDecoder(resp.Body).Decode(&ir)
		return resp.StatusCode, ir
	}
	// A fresh report past the cap is accepted and visible immediately.
	code, ir := post(report(t0.Add(time.Hour), trace.VendorApple, "airtag-1", geo.Destination(pos, 45, 800)))
	if code != 200 || !ir.Accepted {
		t.Fatalf("fresh report: code %d accepted %v", code, ir.Accepted)
	}
	if _, at, _ := services[trace.VendorApple].LastSeen("airtag-1"); !at.Equal(t0.Add(time.Hour)) {
		t.Error("ingested report not visible in the store")
	}
	// Inside the rate cap: rejected but 200 (the cloud answered).
	if code, ir = post(report(t0.Add(time.Hour+time.Minute), trace.VendorApple, "airtag-1", pos)); code != 200 || ir.Accepted {
		t.Errorf("capped report: code %d accepted %v", code, ir.Accepted)
	}
	// No service for the vendor.
	if code, _ = post(report(t0, trace.VendorOther, "x", pos)); code != http.StatusNotFound {
		t.Errorf("vendorless report: code %d, want 404", code)
	}
	// A report with no vendor key must be rejected, not routed to the
	// zero vendor (Apple).
	appleAcc, _ := services[trace.VendorApple].Stats()
	resp, err := http.Post(ts.URL+"/v1/report", "application/json",
		strings.NewReader(`{"tag_id":"airtag-1","t":"2022-03-07T12:00:00Z"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("vendor-free report: code %d, want 400", resp.StatusCode)
	}
	if acc, _ := services[trace.VendorApple].Stats(); acc != appleAcc {
		t.Error("vendor-free report leaked into the Apple store")
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := fixture()
	defer ts.Close()
	for _, url := range []string{
		"/v1/lastknown",                               // missing tag
		"/v1/lastknown?tag=x&vendor=Nope",             // unknown vendor
		"/v1/lastknown?tag=x&vendor=Apple&now=gibber", // bad now
		"/v1/history?tag=x&limit=-1",                  // bad limit
		"/v1/history?tag=x&limit=two",                 // bad limit
		"/v1/history?tag=x&limit=5abc",                // bad limit (trailing garbage)
		"/v1/track",                                   // missing tag
	} {
		var e struct {
			Error string `json:"error"`
		}
		if code := getJSON(t, ts.URL+url, &e); code != http.StatusBadRequest || e.Error == "" {
			t.Errorf("%s: code %d error %q, want 400 with message", url, code, e.Error)
		}
	}
	// Vendor without a backing service is 404.
	var e struct{ Error string }
	if code := getJSON(t, ts.URL+"/v1/lastknown?tag=x&vendor=Other", &e); code != http.StatusNotFound {
		t.Errorf("missing service: code %d, want 404", code)
	}
}

// TestUnknownTagIs404: a tag no backing service has ever heard of is a
// 404 on every tag-scoped endpoint, with a JSON error envelope — while
// malformed parameters stay 400 even when the tag is also unknown
// (request validity is judged before existence).
func TestUnknownTagIs404(t *testing.T) {
	_, ts := fixture()
	defer ts.Close()
	for _, url := range []string{
		"/v1/lastknown?tag=ghost",
		"/v1/lastknown?tag=ghost&vendor=Apple",
		"/v1/history?tag=ghost",
		"/v1/history?tag=ghost&vendor=Samsung&limit=5",
		"/v1/track?tag=ghost",
	} {
		var e struct {
			Error string `json:"error"`
		}
		if code := getJSON(t, ts.URL+url, &e); code != http.StatusNotFound || e.Error == "" {
			t.Errorf("%s: code %d error %q, want 404 with message", url, code, e.Error)
		}
	}
	// Malformed parameters outrank the unknown tag.
	for _, url := range []string{
		"/v1/lastknown?tag=ghost&vendor=Nope",
		"/v1/lastknown?tag=ghost&now=gibber",
		"/v1/history?tag=ghost&limit=-1",
	} {
		var e struct {
			Error string `json:"error"`
		}
		if code := getJSON(t, ts.URL+url, &e); code != http.StatusBadRequest {
			t.Errorf("%s: code %d, want 400", url, code)
		}
	}
}

// TestMalformedReportBodies pins the POST /v1/report 400 paths: bodies
// that do not parse, or parse but miss required fields, must never
// touch a store.
func TestMalformedReportBodies(t *testing.T) {
	services, ts := fixture()
	defer ts.Close()
	before := func() (a, s uint64) {
		a, _ = services[trace.VendorApple].Stats()
		s, _ = services[trace.VendorSamsung].Stats()
		return a, s
	}
	appleAcc, samsungAcc := before()
	for _, body := range []string{
		"",                                      // empty
		"{",                                     // truncated JSON
		"not json at all",                       // garbage
		`[]`,                                    // wrong JSON shape
		`{"vendor":"Apple"}`,                    // missing tag_id
		`{"tag_id":"airtag-1"}`,                 // missing vendor
		`{"tag_id":"airtag-1","vendor":"Nope"}`, // unparseable vendor name
	} {
		resp, err := http.Post(ts.URL+"/v1/report", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var e struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&e)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest || e.Error == "" {
			t.Errorf("body %q: code %d error %q, want 400 with message", body, resp.StatusCode, e.Error)
		}
	}
	if a, s := before(); a != appleAcc || s != samsungAcc {
		t.Error("malformed report bodies leaked into a store")
	}
}

// TestMethodNotAllowed: the method-scoped mux patterns must answer 405
// for the wrong verb on every route.
func TestMethodNotAllowed(t *testing.T) {
	_, ts := fixture()
	defer ts.Close()
	post := func(url string) int {
		resp, err := http.Post(ts.URL+url, "application/json", strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	for _, url := range []string{"/v1/lastknown?tag=airtag-1", "/v1/history?tag=airtag-1", "/v1/track?tag=airtag-1", "/v1/stats"} {
		if code := post(url); code != http.StatusMethodNotAllowed {
			t.Errorf("POST %s: code %d, want 405", url, code)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/report")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/report: code %d, want 405", resp.StatusCode)
	}
}

// TestConcurrentQueriesDuringIngest hammers every endpoint while a
// writer keeps ingesting — the serving path must stay race-free (run
// under -race in CI) and every response well-formed.
func TestConcurrentQueriesDuringIngest(t *testing.T) {
	services, ts := fixture()
	defer ts.Close()
	// Bound the history the tight-loop writer grows, or the track/history
	// copies the readers take become quadratically slow.
	services[trace.VendorApple].HistoryLimit = 128
	services[trace.VendorSamsung].HistoryLimit = 128

	done := make(chan struct{})
	var writerWg sync.WaitGroup
	writerWg.Add(1)
	go func() { // writer: keeps the apple store churning
		defer writerWg.Done()
		svc := services[trace.VendorApple]
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
				svc.Ingest(report(t0.Add(time.Duration(i)*4*time.Minute), trace.VendorApple, "airtag-1", pos))
			}
		}
	}()
	paths := []string{
		"/v1/lastknown?vendor=Apple&tag=airtag-1",
		"/v1/history?tag=airtag-1",
		"/v1/track?tag=airtag-1",
		"/v1/stats",
	}
	var readerWg sync.WaitGroup
	for w := 0; w < 4; w++ {
		readerWg.Add(1)
		go func(w int) {
			defer readerWg.Done()
			for i := 0; i < 50; i++ {
				url := ts.URL + paths[(w+i)%len(paths)]
				resp, err := http.Get(url)
				if err != nil {
					t.Errorf("query failed: %v", err)
					return
				}
				if resp.StatusCode != 200 {
					t.Errorf("%s: status %d", fmt.Sprintf("reader %d", w), resp.StatusCode)
				}
				resp.Body.Close()
			}
		}(w)
	}
	readerWg.Wait()
	close(done)
	writerWg.Wait()
}
