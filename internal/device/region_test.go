package device

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"tagsim/internal/geo"
	"tagsim/internal/mobility"
	"tagsim/internal/trace"
)

// bandFleet builds a fleet whose grid has many rows: almost entirely
// stationary homes (tiny roam bound -> small cells) spread over a wide
// disk, plus a sprinkle of long-haul commuters for the overflow list.
// randomFleet is unsuitable here — its 20% roaming tail drags the
// 99th-percentile roam cap (and so the cell size) up to tens of km,
// collapsing the grid to a single row.
func bandFleet(rng *rand.Rand, n int, spreadM float64) *Fleet {
	devices := make([]*Device, n)
	for i := range devices {
		home := geo.Destination(origin, rng.Float64()*360, spreadM*rng.Float64())
		var m mobility.Model
		if i%200 == 0 {
			far := geo.Destination(home, rng.Float64()*360, 20000+rng.Float64()*20000)
			m = mobility.NewItinerary(t0,
				mobility.Move{Along: geo.Path{home, far}, SpeedKmh: 60},
				mobility.Stay{At: far, For: 4 * time.Hour})
		} else {
			m = mobility.Stationary(home)
		}
		d := New(fmt.Sprintf("band-%04d", i), trace.VendorApple, home, m)
		d.OptedIn = true
		devices[i] = d
	}
	return NewFleet(origin, devices)
}

// TestRegionsPartition checks the band layout: every queried position maps
// to exactly one band in [0, Count()), Count never exceeds the request or
// the grid's rows, and region counts that do not divide the rows evenly
// still cover every row.
func TestRegionsPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := bandFleet(rng, 500, 8000)
	rows := f.GridStats().Rows
	if rows < 2 {
		t.Fatalf("fleet grid has %d rows; want a multi-row grid for this test", rows)
	}
	for _, n := range []int{1, 2, 3, 7, rows - 1, rows, rows + 5} {
		r := f.Regions(n)
		if r.Count() < 1 {
			t.Fatalf("Regions(%d).Count() = %d", n, r.Count())
		}
		if r.Count() > n && n >= 1 {
			t.Errorf("Regions(%d) produced %d bands, more than requested", n, r.Count())
		}
		if r.Count() > rows {
			t.Errorf("Regions(%d) produced %d bands for a %d-row grid", n, r.Count(), rows)
		}
		seen := make(map[int]bool)
		for i := 0; i < 500; i++ {
			pos := geo.Destination(origin, rng.Float64()*360, rng.Float64()*12000)
			band := r.Of(pos)
			if band < 0 || band >= r.Count() {
				t.Fatalf("Regions(%d).Of = %d, outside [0,%d)", n, band, r.Count())
			}
			seen[band] = true
		}
		// Walking south-to-north in half-cell steps hits every row, so
		// every band (a contiguous row range) must be seen, and the band
		// sequence must be non-decreasing.
		cell := f.GridStats().CellM
		last := 0
		for d := -10000.0; d <= 10000; d += cell / 2 {
			bearing := 0.0 // north of origin
			if d < 0 {
				bearing = 180 // south
			}
			band := r.Of(geo.Destination(origin, bearing, math.Abs(d)))
			if band < last {
				t.Fatalf("Regions(%d): band decreased from %d to %d moving north", n, last, band)
			}
			last = band
			seen[band] = true
		}
		if len(seen) != r.Count() {
			t.Errorf("Regions(%d): meridian walk hit %d of %d bands", n, len(seen), r.Count())
		}
	}
}

// TestRegionsDegenerate checks gridless and single-band cases collapse to
// one region.
func TestRegionsDegenerate(t *testing.T) {
	f := NewFleet(origin, nil) // no devices -> no grid
	r := f.Regions(8)
	if r.Count() != 1 || r.Of(origin) != 0 {
		t.Fatalf("gridless fleet: Count=%d Of=%d", r.Count(), r.Of(origin))
	}
	rng := rand.New(rand.NewSource(8))
	f2 := randomFleet(rng, 200, 5000)
	if got := f2.Regions(1).Count(); got != 1 {
		t.Fatalf("Regions(1).Count() = %d", got)
	}
	if got := f2.Regions(0).Count(); got != 1 {
		t.Fatalf("Regions(0).Count() = %d", got)
	}
}

// TestSearcherMatchesNear checks the index-returning query stream agrees
// with Fleet.Near, and that independent Searchers can query concurrently
// (exercised under -race in CI).
func TestSearcherMatchesNear(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	f := randomFleet(rng, 800, 6000)
	devs := f.Devices()
	queries := make([]geo.LatLon, 64)
	for i := range queries {
		queries[i] = geo.Destination(origin, rng.Float64()*360, rng.Float64()*9000)
	}
	want := make([][]string, len(queries))
	for i, q := range queries {
		for _, d := range f.Near(q, t0, 500, nil) {
			want[i] = append(want[i], d.ID)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := f.Searcher()
			var idx []int32
			for i, q := range queries {
				idx = s.NearIndices(q, t0, 500, idx[:0])
				if len(idx) != len(want[i]) {
					t.Errorf("query %d: %d indices, want %d", i, len(idx), len(want[i]))
					continue
				}
				for j, di := range idx {
					if devs[di].ID != want[i][j] {
						t.Errorf("query %d result %d: %s, want %s", i, j, devs[di].ID, want[i][j])
					}
				}
			}
		}()
	}
	wg.Wait()
}

// TestNearIndicesMatchesNear pins the fleet-level index query to Near on
// uneven radii, including the overflow-only path.
func TestNearIndicesMatchesNear(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	f := randomFleet(rng, 300, 4000)
	devs := f.Devices()
	for _, radius := range []float64{37, 250, 1999} {
		for i := 0; i < 32; i++ {
			q := geo.Destination(origin, rng.Float64()*360, rng.Float64()*6000)
			byDev := f.Near(q, t0, radius, nil)
			idx := f.NearIndices(q, t0, radius, nil)
			if len(byDev) != len(idx) {
				t.Fatalf("radius %v query %d: Near %d, NearIndices %d", radius, i, len(byDev), len(idx))
			}
			for j := range idx {
				if devs[idx[j]] != byDev[j] {
					t.Fatalf("radius %v query %d result %d: index %d is %s, Near gave %s",
						radius, i, j, idx[j], devs[idx[j]].ID, byDev[j].ID)
				}
			}
		}
	}
}

// TestReportDecisionMatchesShouldReport drives the two entry points with
// identical RNG streams and random decision sequences, checking the map-
// backed wrapper and the caller-owned-state form never diverge.
func TestReportDecisionMatchesShouldReport(t *testing.T) {
	a := newSamsung("a")
	b := newSamsung("b")
	rngA := rand.New(rand.NewSource(55))
	rngB := rand.New(rand.NewSource(55))
	var next int64
	now := t0
	for i := 0; i < 500; i++ {
		delayA, okA := a.ShouldReport("tag-x", now, rngA)
		var delayB int64
		newNext, dB, okB := b.ReportDecision(now, next, rngB)
		next = newNext
		delayB = int64(dB)
		if okA != okB || int64(delayA) != delayB {
			t.Fatalf("step %d: ShouldReport (%v,%v) vs ReportDecision (%v,%v)", i, delayA, okA, dB, okB)
		}
		now = now.Add(time.Duration(1+i%7) * time.Minute)
	}
}
