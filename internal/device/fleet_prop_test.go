package device

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"tagsim/internal/geo"
	"tagsim/internal/mobility"
	"tagsim/internal/trace"
)

// randomFleet builds a fleet with every roam-bound shape the simulator
// produces: stationary homes (small bound), itineraries from short
// wanders to long-haul rides (the roaming tail that lands in overflow),
// unknown mobility models (infinite bound), and devices with bounded
// active windows.
func randomFleet(rng *rand.Rand, n int, spreadM float64) *Fleet {
	devices := make([]*Device, n)
	for i := range devices {
		home := geo.Destination(origin, rng.Float64()*360, rng.Float64()*spreadM)
		var m mobility.Model
		switch rng.Intn(10) {
		case 0: // unknown model: infinite roam bound
			m = weirdModel{}
		case 1, 2: // long-haul itinerary: outsized roam, overflow candidate
			far := geo.Destination(home, rng.Float64()*360, 5000+rng.Float64()*40000)
			m = mobility.NewItinerary(t0,
				mobility.Move{Along: geo.Path{home, far}, SpeedKmh: 40 + rng.Float64()*40},
				mobility.Stay{At: far, For: 4 * time.Hour},
			)
		case 3, 4, 5: // local wander
			var segs []mobility.Segment
			cur := home
			for k := 0; k < 3; k++ {
				next := geo.Destination(home, rng.Float64()*360, rng.Float64()*400)
				segs = append(segs,
					mobility.Move{Along: geo.Path{cur, next}, SpeedKmh: 3 + rng.Float64()*3},
					mobility.Stay{At: next, For: time.Duration(1+rng.Intn(60)) * time.Minute})
				cur = next
			}
			m = mobility.NewItinerary(t0, segs...)
		default:
			m = mobility.Stationary(home)
		}
		d := New(fmt.Sprintf("dev-%04d", i), trace.VendorApple, home, m)
		if rng.Intn(5) == 0 { // bounded active window
			d.ActiveFrom = t0.Add(time.Duration(rng.Intn(120)) * time.Minute)
			d.ActiveTo = d.ActiveFrom.Add(time.Duration(1+rng.Intn(180)) * time.Minute)
		}
		devices[i] = d
	}
	return NewFleet(origin, devices)
}

// TestNearGridMatchesBrute is the index's correctness property: for
// randomized fleets, query points, radii, and times, the grid-indexed
// Near returns exactly the brute-force scan's candidates in exactly its
// order — including inactive devices and infinite roam bounds. Order
// matters: the encounter plane draws from one RNG stream per scan, so a
// reordered candidate set would silently change simulation output.
func TestNearGridMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(400)
		spread := []float64{300, 3000, 30000}[rng.Intn(3)]
		f := randomFleet(rng, n, spread)
		if st := f.GridStats(); trial == 0 && st.Cells == 0 {
			t.Fatal("grid was not built for the first randomized fleet")
		}
		for q := 0; q < 25; q++ {
			pos := geo.Destination(origin, rng.Float64()*360, rng.Float64()*spread*1.5)
			radius := []float64{1, 50, 120, 1000, 20000}[rng.Intn(5)]
			at := t0.Add(time.Duration(rng.Intn(6*60)) * time.Minute)
			got := f.Near(pos, at, radius, nil)
			want := f.NearBrute(pos, at, radius, nil)
			if len(got) != len(want) {
				t.Fatalf("trial %d query %d (n=%d spread=%.0f r=%.0f): grid %d candidates, brute %d",
					trial, q, n, spread, radius, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("trial %d query %d: candidate %d is %s, brute has %s (order or set diverged)",
						trial, q, i, got[i].ID, want[i].ID)
				}
			}
		}
	}
}

// TestNearGridOverflowOnly: a fleet whose every member has an unbounded
// or outsized roam must still answer correctly (grid may be empty).
func TestNearGridOverflowOnly(t *testing.T) {
	devices := []*Device{}
	for i := 0; i < 8; i++ {
		d := New(fmt.Sprintf("inf-%d", i), trace.VendorApple, origin, weirdModel{})
		devices = append(devices, d)
	}
	f := NewFleet(origin, devices)
	far := geo.Destination(origin, 45, 1e6)
	if got := f.Near(far, t0, 10, nil); len(got) != 8 {
		t.Errorf("unbounded devices must always be candidates, got %d/8", len(got))
	}
}

// TestSetGridIndexing: disabling the grid forces the linear path and
// restores cleanly.
func TestSetGridIndexing(t *testing.T) {
	was := SetGridIndexing(false)
	defer SetGridIndexing(was)
	f := NewFleet(origin, []*Device{newApple("a")})
	if st := f.GridStats(); st.Cells != 0 {
		t.Errorf("grid built despite SetGridIndexing(false): %+v", st)
	}
	if got := f.Near(origin, t0, 100, nil); len(got) != 1 {
		t.Error("linear fallback lost the device")
	}
	SetGridIndexing(true)
	f2 := NewFleet(origin, []*Device{newApple("a"), newApple("b")})
	if st := f2.GridStats(); st.Cells == 0 {
		t.Errorf("grid absent after re-enabling: %+v", st)
	}
}

// TestNearAllocationFree: after the first query warms the buffers, Near
// must not allocate — it runs thousands of times per simulated day.
func TestNearAllocationFree(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	f := randomFleet(rng, 500, 5000)
	buf := make([]*Device, 0, 600)
	pos := geo.Destination(origin, 10, 800)
	buf = f.Near(pos, t0, 120, buf[:0]) // warm scratch + dst
	allocs := testing.AllocsPerRun(50, func() {
		buf = f.Near(pos, t0, 120, buf[:0])
	})
	if allocs != 0 {
		t.Errorf("Near allocates %.1f times per query, want 0", allocs)
	}
}
