// Package device models the location-reporting devices the tags piggyback
// on: iPhones/iPads for AirTags and Samsung Galaxy phones for SmartTags.
//
// Each device scans with a realistic duty cycle, approximates a heard
// tag's position with its own (noisy) GPS fix, and decides whether to
// upload a report according to its vendor's strategy — Samsung's
// aggressive immediate reporting versus Apple's conservative throttled
// reporting, the asymmetry behind the paper's Figure 4.
package device

import (
	"math"
	"math/rand"
	"time"

	"tagsim/internal/geo"
	"tagsim/internal/mobility"
	"tagsim/internal/trace"
)

// Strategy is a vendor's reporting policy.
type Strategy struct {
	// ScanInterval / ScanWindow define the BLE scan duty cycle: the radio
	// listens for ScanWindow out of every ScanInterval.
	ScanInterval time.Duration
	ScanWindow   time.Duration
	// ReportProb is the probability a heard tag is reported at all this
	// encounter (Apple suppresses a large share; Samsung reports nearly
	// always).
	ReportProb float64
	// Cooldown is the per-(device, tag) minimum time between reports.
	Cooldown time.Duration
	// UploadDelayMin/Max bound the time between hearing a beacon and the
	// report reaching the cloud (GPS fix + network + batching).
	UploadDelayMin time.Duration
	UploadDelayMax time.Duration
}

// AppleStrategy is the conservative policy: heavy suppression, long
// per-tag cooldowns, and batched uploads. Per device it contributes
// ~0.45 reports/hour, so Apple's aggregate update rate only converges to
// the cloud cap when on the order of a hundred devices are present
// (Figure 4's conservative curve).
func AppleStrategy() Strategy {
	return Strategy{
		ScanInterval:   10 * time.Second,
		ScanWindow:     1 * time.Second,
		ReportProb:     0.4,
		Cooldown:       100 * time.Minute,
		UploadDelayMin: 5 * time.Second,
		UploadDelayMax: 45 * time.Second,
	}
}

// SamsungStrategy is the aggressive policy: report almost every heard tag
// with a short cooldown and quick uploads, ~3.9 reports/hour per device,
// so the aggregate rate saturates the cloud cap with a handful of devices
// (Figure 4's aggressive curve).
func SamsungStrategy() Strategy {
	return Strategy{
		ScanInterval:   10 * time.Second,
		ScanWindow:     1 * time.Second,
		ReportProb:     0.9,
		Cooldown:       15 * time.Minute,
		UploadDelayMin: 5 * time.Second,
		UploadDelayMax: 30 * time.Second,
	}
}

// StrategyFor returns the default policy for a vendor (VendorOther devices
// never report, expressed as a zero ReportProb).
func StrategyFor(v trace.Vendor) Strategy {
	switch v {
	case trace.VendorApple:
		return AppleStrategy()
	case trace.VendorSamsung:
		return SamsungStrategy()
	default:
		return Strategy{ScanInterval: 10 * time.Second, ScanWindow: time.Second}
	}
}

// DutyCycle returns the fraction of time the scanner listens.
func (s Strategy) DutyCycle() float64 {
	if s.ScanInterval <= 0 {
		return 0
	}
	d := s.ScanWindow.Seconds() / s.ScanInterval.Seconds()
	return math.Min(d, 1)
}

// Device is one location-reporting phone.
type Device struct {
	ID     string
	Vendor trace.Vendor
	// OptedIn gates reporting: Apple enables finding by default, Samsung
	// users must opt in (the paper's explanation for the sparse Samsung
	// fleet).
	OptedIn bool
	// Home anchors the device's routine; used by the fleet index.
	Home     geo.LatLon
	Mobility mobility.Model
	Strategy Strategy
	// GPSSigmaM is the 1-sigma horizontal GPS error applied to reported
	// positions.
	GPSSigmaM float64
	// OnlineProb is the probability the device has connectivity when an
	// upload is due; offline reports are dropped (phones retry for their
	// own owner, not for crowd reports).
	OnlineProb float64
	// ActiveFrom/ActiveTo bound when the device exists in the world
	// (e.g. a cafeteria visit). Zero values mean always active.
	ActiveFrom time.Time
	ActiveTo   time.Time

	// nextEligible holds, per tag, when this device may next consider
	// reporting it. Jittered scheduling keeps a crowd's attempts spread
	// out in steady state instead of synchronizing into bursts.
	nextEligible map[string]time.Time
}

// New constructs a device with sane defaults filled in.
func New(id string, vendor trace.Vendor, home geo.LatLon, m mobility.Model) *Device {
	return &Device{
		ID:           id,
		Vendor:       vendor,
		OptedIn:      vendor == trace.VendorApple, // Samsung requires opt-in
		Home:         home,
		Mobility:     m,
		Strategy:     StrategyFor(vendor),
		GPSSigmaM:    8,
		OnlineProb:   0.95,
		nextEligible: make(map[string]time.Time),
	}
}

// Pos returns the device's true position at time t.
func (d *Device) Pos(t time.Time) geo.LatLon { return d.Mobility.Pos(t) }

// Active reports whether the device exists in the world at time t.
func (d *Device) Active(t time.Time) bool {
	if !d.ActiveFrom.IsZero() && t.Before(d.ActiveFrom) {
		return false
	}
	if !d.ActiveTo.IsZero() && !t.Before(d.ActiveTo) {
		return false
	}
	return true
}

// GPSFix returns the device's position as its GPS would report it:
// the truth plus Rayleigh-distributed horizontal error.
func (d *Device) GPSFix(t time.Time, rng *rand.Rand) geo.LatLon {
	if d.GPSSigmaM <= 0 {
		return d.Pos(t)
	}
	// Two independent normal components = Rayleigh radial error.
	dx := rng.NormFloat64() * d.GPSSigmaM
	dy := rng.NormFloat64() * d.GPSSigmaM
	p := d.Pos(t)
	bearing := math.Atan2(dx, dy) * 180 / math.Pi
	return geo.Destination(p, bearing, math.Hypot(dx, dy))
}

// Reports reports whether this device relays tags of the given vendor.
// Combined mode emulates the paper's unified ecosystem in which each
// vendor's devices report the other's tags too.
func (d *Device) Reports(tagVendor trace.Vendor, combined bool) bool {
	if !d.OptedIn {
		return false
	}
	switch d.Vendor {
	case trace.VendorApple, trace.VendorSamsung:
		return combined || d.Vendor == tagVendor
	default:
		return false
	}
}

// HearProb returns the probability this device decodes at least one beacon
// from a tag over an observation window, combining the tag's advertising
// rate, the scan duty cycle, and the radio channel at distance dM.
//
// beaconsInWindow is the tag's expected beacon count over the window and
// decodeProb the per-beacon decode probability at this distance.
func (s Strategy) HearProb(beaconsInWindow, decodeProb float64) float64 {
	k := beaconsInWindow * s.DutyCycle()
	if k <= 0 || decodeProb <= 0 {
		return 0
	}
	return 1 - math.Pow(1-decodeProb, k)
}

// ShouldReport applies the vendor policy to a heard tag, mutating the
// per-tag eligibility state when it decides. The returned delay is how
// long until the report reaches the cloud.
//
// The throttle is jittered: a reporting device becomes eligible again
// after 0.75-1.25x its cooldown, and a suppressed device retries after a
// uniform fraction of half the cooldown. The jitter keeps a stationary
// crowd's attempts spread out in steady state — without it, every device
// that heard the tag's first beacon would re-synchronize one cooldown
// later, alternating report bursts with silence (which the Figure 3/4
// update-rate plateaus rule out).
func (d *Device) ShouldReport(tagID string, now time.Time, rng *rand.Rand) (delay time.Duration, ok bool) {
	var next int64
	if t, seen := d.nextEligible[tagID]; seen {
		next = t.UnixNano()
	}
	newNext, delay, ok := d.ReportDecision(now, next, rng)
	if newNext != next {
		d.nextEligible[tagID] = time.Unix(0, newNext).UTC()
	}
	return delay, ok
}

// ReportDecision is ShouldReport over caller-owned eligibility state:
// next is this (device, tag) pair's next-eligible instant in unix nanos
// (0 = never considered), and the returned newNext replaces it. The
// region-sharded scan tick uses this form — each worker owns its tags'
// eligibility slots outright, so concurrent tags never race on a shared
// device map — while ShouldReport remains the map-backed wrapper.
//
// The draw sequence and every stored instant are identical between the
// two entry points (ShouldReport delegates here), which is what keeps
// the sharded scan byte-identical to the historical serial path.
func (d *Device) ReportDecision(now time.Time, next int64, rng *rand.Rand) (newNext int64, delay time.Duration, ok bool) {
	s := d.Strategy
	nowNs := now.UnixNano()
	if next != 0 && nowNs < next {
		return next, 0, false
	}
	if rng.Float64() >= s.ReportProb {
		return nowNs + int64(time.Duration(rng.Float64()*0.5*float64(s.Cooldown))), 0, false
	}
	if rng.Float64() >= d.OnlineProb {
		// Offline: retry within a few minutes.
		return nowNs + int64(time.Duration(1+rng.Intn(4))*time.Minute), 0, false
	}
	newNext = nowNs + int64(time.Duration((0.75+0.5*rng.Float64())*float64(s.Cooldown)))
	spread := s.UploadDelayMax - s.UploadDelayMin
	delay = s.UploadDelayMin
	if spread > 0 {
		delay += time.Duration(rng.Int63n(int64(spread)))
	}
	return newNext, delay, true
}

// ResetCooldowns clears the per-tag reporting state (used when reusing
// fleets across experiment repetitions).
func (d *Device) ResetCooldowns() {
	for k := range d.nextEligible {
		delete(d.nextEligible, k)
	}
}
