package device

import (
	"math"
	"time"

	"tagsim/internal/geo"
	"tagsim/internal/mobility"
	"tagsim/internal/trace"
)

// Fleet is a spatially indexed collection of devices. The encounter plane
// asks it, thousands of times per simulated day, "which devices could
// possibly be within radio range of this tag right now?" — so the index
// must answer without evaluating every device's mobility model.
//
// Each device gets a precomputed roam bound: the farthest its itinerary
// ever strays from its home anchor. A device whose home is farther from
// the query point than roam+radius can be rejected with one planar
// distance check; only survivors pay for a Pos(t) evaluation.
type Fleet struct {
	devices []*Device
	enu     *geo.ENU
	// planar home coordinates and roam bounds, parallel to devices.
	xs, ys []float64
	roamM  []float64
}

// NewFleet indexes devices around an origin (typically the city center).
func NewFleet(origin geo.LatLon, devices []*Device) *Fleet {
	f := &Fleet{
		devices: devices,
		enu:     geo.NewENU(origin),
		xs:      make([]float64, len(devices)),
		ys:      make([]float64, len(devices)),
		roamM:   make([]float64, len(devices)),
	}
	for i, d := range devices {
		f.xs[i], f.ys[i] = f.enu.Forward(d.Home)
		f.roamM[i] = roamBound(d)
	}
	return f
}

// roamBound computes how far the device's mobility can take it from home.
func roamBound(d *Device) float64 {
	const margin = 50 // meters of slack for path interpolation
	switch m := d.Mobility.(type) {
	case mobility.Stationary:
		return geo.Distance(d.Home, geo.LatLon(m)) + margin
	case *mobility.Itinerary:
		max := 0.0
		for _, wp := range m.Waypoints() {
			if dist := geo.Distance(d.Home, wp); dist > max {
				max = dist
			}
		}
		return max + margin
	default:
		// Unknown model: assume it can be anywhere; the index degrades to
		// a full scan for this device.
		return math.Inf(1)
	}
}

// Len returns the number of devices.
func (f *Fleet) Len() int { return len(f.devices) }

// Devices returns the underlying slice (shared, not a copy).
func (f *Fleet) Devices() []*Device { return f.devices }

// CountByVendor tallies devices per vendor.
func (f *Fleet) CountByVendor() map[trace.Vendor]int {
	out := make(map[trace.Vendor]int)
	for _, d := range f.devices {
		out[d.Vendor]++
	}
	return out
}

// Near appends to dst the devices that are active at time t and could be
// within radiusM of pos (callers still verify true distance via Pos). It
// returns the extended slice, enabling allocation-free reuse.
func (f *Fleet) Near(pos geo.LatLon, t time.Time, radiusM float64, dst []*Device) []*Device {
	qx, qy := f.enu.Forward(pos)
	for i := range f.devices {
		d := f.devices[i]
		if !d.Active(t) {
			continue
		}
		reach := f.roamM[i] + radiusM
		if math.IsInf(reach, 1) {
			dst = append(dst, d)
			continue
		}
		dx := f.xs[i] - qx
		dy := f.ys[i] - qy
		if dx*dx+dy*dy <= reach*reach {
			dst = append(dst, d)
		}
	}
	return dst
}

// ResetCooldowns clears reporting state on every device.
func (f *Fleet) ResetCooldowns() {
	for _, d := range f.devices {
		d.ResetCooldowns()
	}
}
