package device

import (
	"math"
	"slices"
	"sort"
	"sync/atomic"
	"time"

	"tagsim/internal/geo"
	"tagsim/internal/mobility"
	"tagsim/internal/trace"
)

// Fleet is a spatially indexed collection of devices. The encounter plane
// asks it, thousands of times per simulated day, "which devices could
// possibly be within radio range of this tag right now?" — so the index
// must answer without evaluating every device's mobility model.
//
// Each device gets a precomputed roam bound: the farthest its itinerary
// ever strays from its home anchor. On top of that, home anchors are
// bucketed into a uniform grid on the local ENU plane, sized from the
// fleet's roam-bound distribution: a query only visits the cells that
// intersect the circle of radius roamCap+radius around the query point.
// Devices whose roam exceeds the cap (long-haul itineraries, unknown
// mobility models with an unbounded roam) live in a small overflow list
// that every query scans linearly.
//
// Candidates are produced in ascending device-index order — exactly the
// order the historical linear scan produced — so every downstream RNG
// draw sequence, and therefore the whole simulation output, is
// byte-identical to the unindexed implementation (property-tested in
// fleet_prop_test.go and end-to-end in scenario.TestWildGridEquivalence).
type Fleet struct {
	devices []*Device
	enu     *geo.ENU
	// planar home coordinates and roam bounds, parallel to devices.
	xs, ys []float64
	roamM  []float64

	// Uniform grid over home anchors (nil cellStart = no grid; queries
	// fall back to the linear roam-bound scan).
	cellSizeM  float64
	minX, minY float64
	nx, ny     int
	cellStart  []int32 // CSR offsets: cell c owns cellIdx[cellStart[c]:cellStart[c+1]]
	cellIdx    []int32 // device indices bucketed by cell, ascending within each cell
	overflow   []int32 // ascending device indices with roam > roamCap
	roamCap    float64 // max roam bound among grid-indexed devices

	// scratch collects gathered cell buckets per query and idx the
	// resulting candidate indices; reusing them makes Near
	// allocation-free but not safe for concurrent queries on one Fleet
	// (concurrent readers use Searcher, which owns its own scratch).
	scratch []int32
	idx     []int32
}

// gridDisabled turns off grid construction process-wide; every query then
// takes the brute-force path. It exists so equivalence tests and recorded
// benchmarks can exercise the historical linear scan through unmodified
// simulation code, including worlds built on concurrent workers.
var gridDisabled atomic.Bool

// SetGridIndexing toggles the spatial grid for fleets built afterwards
// (testing/benchmark escape hatch; the default is enabled). It returns
// the previous setting so tests can restore it.
func SetGridIndexing(enabled bool) (was bool) {
	return !gridDisabled.Swap(!enabled)
}

// Grid sizing bounds. The cell edge tracks the roam-bound distribution
// but never drops below minCellM (degenerate all-stationary fleets would
// otherwise build enormous grids), and the grid never exceeds
// maxGridSide cells per axis (sparse outliers grow the cells instead).
const (
	minCellM    = 64
	maxGridSide = 512
)

// NewFleet indexes devices around an origin (typically the city center).
func NewFleet(origin geo.LatLon, devices []*Device) *Fleet {
	f := &Fleet{
		devices: devices,
		enu:     geo.NewENU(origin),
		xs:      make([]float64, len(devices)),
		ys:      make([]float64, len(devices)),
		roamM:   make([]float64, len(devices)),
	}
	for i, d := range devices {
		f.xs[i], f.ys[i] = f.enu.Forward(d.Home)
		f.roamM[i] = roamBound(d)
	}
	if !gridDisabled.Load() {
		f.buildGrid()
	}
	return f
}

// buildGrid derives the roam cap and cell size from the roam-bound
// distribution and buckets the grid-eligible homes.
func (f *Fleet) buildGrid() {
	finite := make([]float64, 0, len(f.roamM))
	for _, r := range f.roamM {
		if !math.IsInf(r, 1) {
			finite = append(finite, r)
		}
	}
	if len(finite) == 0 {
		return // nothing indexable; overflow-only queries degrade to linear
	}
	// roamCap at the 99th percentile: the overflow list — scanned
	// linearly on every query — stays at ~1% of the fleet, while the
	// roaming tail (long-haul co-travelers, unbounded models) cannot
	// inflate every indexed cell's reach. The index picks the largest
	// roam *below* the tail, so a sharply bimodal distribution (many
	// stationary homes, few cross-city commuters) caps at the local
	// mode rather than the first commuter.
	sort.Float64s(finite)
	f.roamCap = math.Max(finite[(len(finite)-1)*99/100], minCellM)

	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	indexed := 0
	for i, r := range f.roamM {
		if r > f.roamCap {
			f.overflow = append(f.overflow, int32(i)) // ascending by construction
			continue
		}
		indexed++
		minX, minY = math.Min(minX, f.xs[i]), math.Min(minY, f.ys[i])
		maxX, maxY = math.Max(maxX, f.xs[i]), math.Max(maxY, f.ys[i])
	}
	if indexed == 0 {
		return
	}
	f.cellSizeM = math.Max(f.roamCap, minCellM)
	f.cellSizeM = math.Max(f.cellSizeM, (maxX-minX)/maxGridSide)
	f.cellSizeM = math.Max(f.cellSizeM, (maxY-minY)/maxGridSide)
	f.minX, f.minY = minX, minY
	f.nx = int((maxX-minX)/f.cellSizeM) + 1
	f.ny = int((maxY-minY)/f.cellSizeM) + 1

	// Counting sort into CSR cells; iterating devices in index order keeps
	// every cell's bucket ascending, which the query merge relies on.
	counts := make([]int32, f.nx*f.ny+1)
	for i, r := range f.roamM {
		if r > f.roamCap {
			continue
		}
		counts[f.cellOf(f.xs[i], f.ys[i])+1]++
	}
	for c := 1; c < len(counts); c++ {
		counts[c] += counts[c-1]
	}
	f.cellStart = counts
	f.cellIdx = make([]int32, indexed)
	fill := make([]int32, f.nx*f.ny)
	for i, r := range f.roamM {
		if r > f.roamCap {
			continue
		}
		c := f.cellOf(f.xs[i], f.ys[i])
		f.cellIdx[f.cellStart[c]+fill[c]] = int32(i)
		fill[c]++
	}
}

// cellOf maps planar coordinates to a cell index, clamped into the grid.
func (f *Fleet) cellOf(x, y float64) int {
	cx := int((x - f.minX) / f.cellSizeM)
	cy := int((y - f.minY) / f.cellSizeM)
	cx = clampInt(cx, 0, f.nx-1)
	cy = clampInt(cy, 0, f.ny-1)
	return cy*f.nx + cx
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// roamBound computes how far the device's mobility can take it from home.
func roamBound(d *Device) float64 {
	const margin = 50 // meters of slack for path interpolation
	switch m := d.Mobility.(type) {
	case mobility.Stationary:
		return geo.Distance(d.Home, geo.LatLon(m)) + margin
	case *mobility.Itinerary:
		max := 0.0
		for _, wp := range m.Waypoints() {
			if dist := geo.Distance(d.Home, wp); dist > max {
				max = dist
			}
		}
		return max + margin
	default:
		// Unknown model: assume it can be anywhere; the device joins the
		// overflow list and is checked on every query.
		return math.Inf(1)
	}
}

// Len returns the number of devices.
func (f *Fleet) Len() int { return len(f.devices) }

// Devices returns the underlying slice (shared, not a copy).
func (f *Fleet) Devices() []*Device { return f.devices }

// CountByVendor tallies devices per vendor.
func (f *Fleet) CountByVendor() map[trace.Vendor]int {
	out := make(map[trace.Vendor]int)
	for _, d := range f.devices {
		out[d.Vendor]++
	}
	return out
}

// Near appends to dst the devices that are active at time t and could be
// within radiusM of pos (callers still verify true distance via Pos). It
// returns the extended slice, enabling allocation-free reuse. Candidates
// appear in ascending device-index order, identical to NearBrute.
//
// Near reuses per-fleet scratch space and is not safe for concurrent
// queries on the same Fleet (the simulation is single-goroutine per
// world; concurrent readers of one fleet use Searcher instead).
func (f *Fleet) Near(pos geo.LatLon, t time.Time, radiusM float64, dst []*Device) []*Device {
	f.idx = f.nearIdx(&f.scratch, pos, t, radiusM, f.idx[:0])
	for _, i := range f.idx {
		dst = append(dst, f.devices[i])
	}
	return dst
}

// NearIndices is Near returning device indices instead of pointers —
// the form region-sharded scan workers consume, because an index keys
// per-(tag, device) state without a map of pointers. Same ordering and
// concurrency contract as Near.
func (f *Fleet) NearIndices(pos geo.LatLon, t time.Time, radiusM float64, dst []int32) []int32 {
	return f.nearIdx(&f.scratch, pos, t, radiusM, dst)
}

// NearBrute is the reference linear roam-bound scan over every device —
// the pre-index implementation, kept as the equivalence oracle for
// property tests and as the recorded benchmark baseline.
func (f *Fleet) NearBrute(pos geo.LatLon, t time.Time, radiusM float64, dst []*Device) []*Device {
	qx, qy := f.enu.Forward(pos)
	f.idx = f.nearLinear(qx, qy, t, radiusM, f.idx[:0])
	for _, i := range f.idx {
		dst = append(dst, f.devices[i])
	}
	return dst
}

// Searcher owns the scratch space of one query stream, so several
// goroutines can query one Fleet concurrently — each worker of the
// region-sharded scan tick holds its own. The underlying fleet data is
// immutable after construction; the only shared mutable state in a
// query is scratch, which the Searcher privatizes.
type Searcher struct {
	f     *Fleet
	cells []int32
}

// Searcher returns a new independent query stream over the fleet.
func (f *Fleet) Searcher() *Searcher { return &Searcher{f: f} }

// NearIndices is Fleet.NearIndices on this searcher's private scratch.
func (s *Searcher) NearIndices(pos geo.LatLon, t time.Time, radiusM float64, dst []int32) []int32 {
	return s.f.nearIdx(&s.cells, pos, t, radiusM, dst)
}

// nearIdx is the query core shared by every entry point: it appends the
// ascending candidate indices to dst, using *cells for the grid-bucket
// gather (caller-owned, so concurrent query streams never collide).
func (f *Fleet) nearIdx(cells *[]int32, pos geo.LatLon, t time.Time, radiusM float64, dst []int32) []int32 {
	qx, qy := f.enu.Forward(pos)
	if f.cellStart == nil {
		return f.nearLinear(qx, qy, t, radiusM, dst)
	}
	reach := f.roamCap + radiusM
	cx0 := int(math.Floor((qx - reach - f.minX) / f.cellSizeM))
	cx1 := int(math.Floor((qx + reach - f.minX) / f.cellSizeM))
	cy0 := int(math.Floor((qy - reach - f.minY) / f.cellSizeM))
	cy1 := int(math.Floor((qy + reach - f.minY) / f.cellSizeM))
	if cx1 < 0 || cy1 < 0 || cx0 >= f.nx || cy0 >= f.ny {
		// Query circle misses the whole grid; only roaming outliers can
		// possibly reach it.
		return f.mergeCheck(nil, f.overflow, qx, qy, t, radiusM, dst)
	}
	cx0, cx1 = clampInt(cx0, 0, f.nx-1), clampInt(cx1, 0, f.nx-1)
	cy0, cy1 = clampInt(cy0, 0, f.ny-1), clampInt(cy1, 0, f.ny-1)
	if 2*(cx1-cx0+1)*(cy1-cy0+1) >= f.nx*f.ny {
		// The query covers most of the grid (small worlds, huge radii):
		// gathering plus sorting would cost more than the plain scan.
		return f.nearLinear(qx, qy, t, radiusM, dst)
	}
	gathered := (*cells)[:0]
	for cy := cy0; cy <= cy1; cy++ {
		row := cy * f.nx
		gathered = append(gathered, f.cellIdx[f.cellStart[row+cx0]:f.cellStart[row+cx1+1]]...)
	}
	*cells = gathered
	// Rows are gathered in ascending-cell order but indices interleave
	// across rows; restore global device order before the checks so the
	// downstream RNG draw order matches the linear scan exactly.
	slices.Sort(gathered)
	return f.mergeCheck(gathered, f.overflow, qx, qy, t, radiusM, dst)
}

func (f *Fleet) nearLinear(qx, qy float64, t time.Time, radiusM float64, dst []int32) []int32 {
	for i := range f.devices {
		dst = f.checkCandidate(int32(i), qx, qy, t, radiusM, dst)
	}
	return dst
}

// mergeCheck walks two ascending index lists in merged order, applying
// the roam-bound test to each — the grid path's equivalent of the linear
// scan's single pass. Either list may be nil.
func (f *Fleet) mergeCheck(a, b []int32, qx, qy float64, t time.Time, radiusM float64, dst []int32) []int32 {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] < b[j] {
			dst = f.checkCandidate(a[i], qx, qy, t, radiusM, dst)
			i++
		} else {
			dst = f.checkCandidate(b[j], qx, qy, t, radiusM, dst)
			j++
		}
	}
	for ; i < len(a); i++ {
		dst = f.checkCandidate(a[i], qx, qy, t, radiusM, dst)
	}
	for ; j < len(b); j++ {
		dst = f.checkCandidate(b[j], qx, qy, t, radiusM, dst)
	}
	return dst
}

// checkCandidate applies the per-device admission test shared by every
// query path: home within roam+radius of the query, and active at t.
// The planar distance test runs first because it is three float ops
// against Active's four time comparisons; the admission condition is a
// commutative conjunction, so the candidate set is order-independent.
func (f *Fleet) checkCandidate(i int32, qx, qy float64, t time.Time, radiusM float64, dst []int32) []int32 {
	reach := f.roamM[i] + radiusM
	if !math.IsInf(reach, 1) {
		dx := f.xs[i] - qx
		dy := f.ys[i] - qy
		if dx*dx+dy*dy > reach*reach {
			return dst
		}
	}
	if f.devices[i].Active(t) {
		dst = append(dst, i)
	}
	return dst
}

// GridStats describes the built spatial index (diagnostics and tests).
type GridStats struct {
	Indexed  int     // devices bucketed into grid cells
	Overflow int     // devices on the linear overflow list
	Cells    int     // total grid cells (nx*ny)
	Rows     int     // grid rows (ny) — the maximum usable scan-region count
	CellM    float64 // cell edge length in meters
	RoamCapM float64 // roam bound cap for grid-indexed devices
}

// GridStats reports how the fleet was indexed; a zero value means the
// grid is absent and every query takes the linear path.
func (f *Fleet) GridStats() GridStats {
	if f.cellStart == nil {
		return GridStats{}
	}
	return GridStats{
		Indexed:  len(f.cellIdx),
		Overflow: len(f.overflow),
		Cells:    f.nx * f.ny,
		Rows:     f.ny,
		CellM:    f.cellSizeM,
		RoamCapM: f.roamCap,
	}
}

// ResetCooldowns clears reporting state on every device.
func (f *Fleet) ResetCooldowns() {
	for _, d := range f.devices {
		d.ResetCooldowns()
	}
}
