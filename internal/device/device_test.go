package device

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"tagsim/internal/geo"
	"tagsim/internal/mobility"
	"tagsim/internal/trace"
)

var (
	origin = geo.LatLon{Lat: 24.4539, Lon: 54.3773}
	t0     = time.Date(2022, 3, 7, 9, 0, 0, 0, time.UTC)
)

func newApple(id string) *Device {
	return New(id, trace.VendorApple, origin, mobility.Stationary(origin))
}

func newSamsung(id string) *Device {
	d := New(id, trace.VendorSamsung, origin, mobility.Stationary(origin))
	d.OptedIn = true
	return d
}

func TestOptInDefaults(t *testing.T) {
	if !newApple("a").OptedIn {
		t.Error("Apple devices report by default")
	}
	if New("s", trace.VendorSamsung, origin, mobility.Stationary(origin)).OptedIn {
		t.Error("Samsung devices require opt-in")
	}
}

func TestReportsMatrix(t *testing.T) {
	apple := newApple("a")
	samsung := newSamsung("s")
	other := New("o", trace.VendorOther, origin, mobility.Stationary(origin))
	other.OptedIn = true

	cases := []struct {
		dev      *Device
		tag      trace.Vendor
		combined bool
		want     bool
	}{
		{apple, trace.VendorApple, false, true},
		{apple, trace.VendorSamsung, false, false},
		{apple, trace.VendorSamsung, true, true},
		{samsung, trace.VendorSamsung, false, true},
		{samsung, trace.VendorApple, false, false},
		{samsung, trace.VendorApple, true, true},
		{other, trace.VendorApple, false, false},
		{other, trace.VendorApple, true, false},
	}
	for _, c := range cases {
		if got := c.dev.Reports(c.tag, c.combined); got != c.want {
			t.Errorf("%s reports %v (combined=%v) = %v, want %v", c.dev.ID, c.tag, c.combined, got, c.want)
		}
	}
	// Opted-out device never reports.
	apple.OptedIn = false
	if apple.Reports(trace.VendorApple, true) {
		t.Error("opted-out device must not report")
	}
}

func TestStrategyDutyCycle(t *testing.T) {
	s := AppleStrategy()
	if dc := s.DutyCycle(); math.Abs(dc-0.1) > 1e-9 {
		t.Errorf("duty cycle = %v, want 0.1", dc)
	}
	if (Strategy{}).DutyCycle() != 0 {
		t.Error("zero strategy duty cycle should be 0")
	}
	full := Strategy{ScanInterval: time.Second, ScanWindow: 2 * time.Second}
	if full.DutyCycle() != 1 {
		t.Error("duty cycle must clamp at 1")
	}
}

func TestHearProb(t *testing.T) {
	s := SamsungStrategy()
	if p := s.HearProb(40, 0.9); p < 0.97 {
		t.Errorf("hear prob with 40 beacons at 0.9 decode = %v", p)
	}
	if p := s.HearProb(0, 0.9); p != 0 {
		t.Error("no beacons, no hearing")
	}
	if p := s.HearProb(40, 0); p != 0 {
		t.Error("zero decode prob, no hearing")
	}
	// Monotone in both arguments.
	if s.HearProb(10, 0.5) >= s.HearProb(20, 0.5) {
		t.Error("hear prob must grow with beacon count")
	}
	if s.HearProb(10, 0.2) >= s.HearProb(10, 0.6) {
		t.Error("hear prob must grow with decode prob")
	}
}

func TestShouldReportCooldown(t *testing.T) {
	d := newSamsung("s")
	d.Strategy.ReportProb = 1
	d.OnlineProb = 1
	rng := rand.New(rand.NewSource(1))

	delay, ok := d.ShouldReport("tag", t0, rng)
	if !ok {
		t.Fatal("first report should pass")
	}
	if delay < d.Strategy.UploadDelayMin || delay > d.Strategy.UploadDelayMax {
		t.Errorf("delay %v outside bounds", delay)
	}
	// Within 75% of the cooldown (the minimum jittered spacing): rejected.
	if _, ok := d.ShouldReport("tag", t0.Add(d.Strategy.Cooldown/2), rng); ok {
		t.Error("report within cooldown should be suppressed")
	}
	// After 125% of the cooldown (the maximum jittered spacing): accepted.
	if _, ok := d.ShouldReport("tag", t0.Add(d.Strategy.Cooldown*5/4+time.Second), rng); !ok {
		t.Error("report after the full jittered cooldown should pass")
	}
	// Cooldowns are per tag.
	if _, ok := d.ShouldReport("other-tag", t0.Add(time.Minute), rng); !ok {
		t.Error("different tag should not share the cooldown")
	}
}

func TestShouldReportSuppression(t *testing.T) {
	d := newApple("a")
	d.Strategy.ReportProb = 0.5
	d.OnlineProb = 1
	d.Strategy.Cooldown = 0
	rng := rand.New(rand.NewSource(7))
	accepted := 0
	const n = 5000
	for i := 0; i < n; i++ {
		d.ResetCooldowns()
		if _, ok := d.ShouldReport("tag", t0.Add(time.Duration(i)*time.Hour), rng); ok {
			accepted++
		}
	}
	rate := float64(accepted) / n
	if rate < 0.44 || rate > 0.56 {
		t.Errorf("acceptance rate %v, want ~0.5", rate)
	}
}

func TestShouldReportOffline(t *testing.T) {
	d := newSamsung("s")
	d.Strategy.ReportProb = 1
	d.OnlineProb = 0
	rng := rand.New(rand.NewSource(3))
	if _, ok := d.ShouldReport("tag", t0, rng); ok {
		t.Error("offline device must not deliver reports")
	}
}

func TestGPSFixErrorDistribution(t *testing.T) {
	d := newApple("a")
	d.GPSSigmaM = 10
	rng := rand.New(rand.NewSource(5))
	var sum float64
	const n = 3000
	for i := 0; i < n; i++ {
		fix := d.GPSFix(t0, rng)
		sum += geo.Distance(fix, origin)
	}
	mean := sum / n
	// Rayleigh mean = sigma * sqrt(pi/2) ~ 12.5 m.
	want := 10 * math.Sqrt(math.Pi/2)
	if math.Abs(mean-want) > 1.5 {
		t.Errorf("mean GPS error %.2f m, want ~%.2f", mean, want)
	}
	// Zero sigma: exact.
	d.GPSSigmaM = 0
	if d.GPSFix(t0, rng) != origin {
		t.Error("zero-sigma fix should be exact")
	}
}

func TestFleetNear(t *testing.T) {
	far := geo.Destination(origin, 90, 50000)
	devices := []*Device{
		newApple("near-stationary"),
		New("far-stationary", trace.VendorApple, far, mobility.Stationary(far)),
	}
	// A commuter whose itinerary swings within range of the query point.
	commuteEnd := geo.Destination(origin, 0, 3000)
	it := mobility.NewItinerary(t0,
		mobility.Move{Along: geo.Path{far, commuteEnd}, SpeedKmh: 30},
		mobility.Stay{At: commuteEnd, For: 8 * time.Hour},
	)
	commuter := New("commuter", trace.VendorApple, far, it)
	devices = append(devices, commuter)

	f := NewFleet(origin, devices)
	if f.Len() != 3 {
		t.Fatalf("fleet size %d", f.Len())
	}
	got := f.Near(origin, t0, 100, nil)
	names := map[string]bool{}
	for _, d := range got {
		names[d.ID] = true
	}
	if !names["near-stationary"] {
		t.Error("nearby stationary device missed")
	}
	if names["far-stationary"] {
		t.Error("far stationary device should be pruned")
	}
	if !names["commuter"] {
		t.Error("commuter with in-range waypoints must be a candidate")
	}
}

func TestFleetNearReuseBuffer(t *testing.T) {
	f := NewFleet(origin, []*Device{newApple("a"), newSamsung("s")})
	buf := make([]*Device, 0, 8)
	buf = f.Near(origin, t0, 100, buf)
	if len(buf) != 2 {
		t.Fatalf("got %d candidates", len(buf))
	}
	buf2 := f.Near(origin, t0, 100, buf[:0])
	if len(buf2) != 2 || cap(buf2) != cap(buf) {
		t.Error("buffer reuse failed")
	}
}

func TestFleetUnknownModelFullScan(t *testing.T) {
	// A device with an unrecognized mobility model must always be a
	// candidate (index degrades safely rather than losing encounters).
	d := newApple("weird")
	d.Mobility = weirdModel{}
	f := NewFleet(origin, []*Device{d})
	if got := f.Near(geo.Destination(origin, 0, 1e6), t0, 10, nil); len(got) != 1 {
		t.Error("unbounded device must survive pruning")
	}
}

type weirdModel struct{}

func (weirdModel) Pos(time.Time) geo.LatLon { return geo.LatLon{} }

func TestFleetCountByVendor(t *testing.T) {
	f := NewFleet(origin, []*Device{newApple("a1"), newApple("a2"), newSamsung("s1")})
	counts := f.CountByVendor()
	if counts[trace.VendorApple] != 2 || counts[trace.VendorSamsung] != 1 {
		t.Errorf("counts = %v", counts)
	}
}

func TestFleetResetCooldowns(t *testing.T) {
	d := newSamsung("s")
	d.Strategy.ReportProb = 1
	d.OnlineProb = 1
	rng := rand.New(rand.NewSource(2))
	if _, ok := d.ShouldReport("tag", t0, rng); !ok {
		t.Fatal("first report should pass")
	}
	f := NewFleet(origin, []*Device{d})
	f.ResetCooldowns()
	if _, ok := d.ShouldReport("tag", t0.Add(time.Second), rng); !ok {
		t.Error("cooldown should be cleared after reset")
	}
}

func BenchmarkFleetNear(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	devices := make([]*Device, 2000)
	for i := range devices {
		home := geo.Destination(origin, rng.Float64()*360, rng.Float64()*8000)
		devices[i] = New("d", trace.VendorApple, home, mobility.Stationary(home))
	}
	f := NewFleet(origin, devices)
	buf := make([]*Device, 0, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = f.Near(origin, t0, 100, buf[:0])
	}
}

func BenchmarkShouldReport(b *testing.B) {
	d := newSamsung("s")
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.ShouldReport("tag", t0.Add(time.Duration(i)*time.Hour), rng)
	}
}
