package device

import (
	"tagsim/internal/geo"
)

// Regions partitions the fleet's ENU grid into contiguous bands of grid
// rows — the unit of work the region-sharded scan tick distributes over
// pooled workers. A band is a pure spatial key: Of maps any position to
// the band its clamped grid row falls in, so tags standing in different
// bands query disjoint neighborhoods of the grid (plus the shared,
// read-only overflow list) and can be scanned concurrently.
//
// Regions carries no mutable state; values are safe to copy and use
// from any goroutine.
type Regions struct {
	f       *Fleet
	rowsPer int
	count   int
}

// Regions partitions the grid into at most n row bands. Fleets without
// a grid (or single-row grids), and n <= 1, collapse to one region —
// the caller's cue that sharding has nothing to shard.
func (f *Fleet) Regions(n int) Regions {
	if f.cellStart == nil || f.ny <= 1 || n <= 1 {
		return Regions{f: f, rowsPer: 1, count: 1}
	}
	if n > f.ny {
		n = f.ny
	}
	rowsPer := (f.ny + n - 1) / n
	return Regions{f: f, rowsPer: rowsPer, count: (f.ny + rowsPer - 1) / rowsPer}
}

// Count returns the number of bands (>= 1).
func (r Regions) Count() int {
	if r.count < 1 {
		return 1
	}
	return r.count
}

// Of maps a position to its band in [0, Count()). Positions outside the
// grid clamp to the nearest row, exactly as cell bucketing does.
func (r Regions) Of(pos geo.LatLon) int {
	if r.count <= 1 {
		return 0
	}
	f := r.f
	_, qy := f.enu.Forward(pos)
	cy := clampInt(int((qy-f.minY)/f.cellSizeM), 0, f.ny-1)
	return cy / r.rowsPer
}
