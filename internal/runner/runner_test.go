package runner

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkersNormalization(t *testing.T) {
	cases := []struct {
		workers, n, want int
	}{
		// n far above any plausible CPU count, so the clamp can't mask
		// the GOMAXPROCS default.
		{0, 1 << 20, runtime.GOMAXPROCS(0)},
		{-3, 1 << 20, runtime.GOMAXPROCS(0)},
		{4, 2, 2},  // clamped to batch size
		{1, 50, 1}, // explicit sequential
		{8, 8, 8},
		{3, 0, 1}, // degenerate batch still yields a valid count
	}
	for _, c := range cases {
		if got := Workers(c.workers, c.n); got != c.want {
			t.Errorf("Workers(%d, %d) = %d, want %d", c.workers, c.n, got, c.want)
		}
	}
}

func TestMapOrderPreserved(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8, 0} {
		got := Map(workers, 100, func(i int) int { return i * i })
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	if got := Map(4, 0, func(i int) int { return i }); got != nil {
		t.Errorf("Map with n=0 = %v, want nil", got)
	}
}

// TestMapDeterministicUnderJitter checks the core contract: results are
// identical for any worker count even when job completion order is
// scrambled by random sleeps.
func TestMapDeterministicUnderJitter(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	delays := make([]time.Duration, 64)
	for i := range delays {
		delays[i] = time.Duration(rng.Intn(300)) * time.Microsecond
	}
	job := func(i int) string {
		time.Sleep(delays[i])
		return fmt.Sprintf("world-%03d", i)
	}
	want := Map(1, len(delays), job)
	for _, workers := range []int{2, 4, 8} {
		got := Map(workers, len(delays), job)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: out[%d] = %q, want %q", workers, i, got[i], want[i])
			}
		}
	}
}

// TestMapBoundsConcurrency verifies the pool never runs more jobs at
// once than requested workers.
func TestMapBoundsConcurrency(t *testing.T) {
	const workers = 3
	var inFlight, peak atomic.Int64
	Map(workers, 50, func(i int) int {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		time.Sleep(200 * time.Microsecond)
		inFlight.Add(-1)
		return i
	})
	if p := peak.Load(); p > workers {
		t.Errorf("peak in-flight jobs = %d, want <= %d", p, workers)
	}
}

func TestMapActuallyParallel(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("single-CPU machine cannot demonstrate overlap")
	}
	var inFlight, peak atomic.Int64
	Map(4, 16, func(i int) int {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		time.Sleep(2 * time.Millisecond)
		inFlight.Add(-1)
		return i
	})
	if peak.Load() < 2 {
		t.Error("no two jobs ever overlapped despite 4 workers")
	}
}

func TestMapPanicPropagates(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: panic swallowed", workers)
				}
				if s := fmt.Sprint(r); !strings.Contains(s, "boom") {
					t.Errorf("workers=%d: panic value %q lost the cause", workers, s)
				}
			}()
			Map(workers, 8, func(i int) int {
				if i == 5 {
					panic("boom")
				}
				return i
			})
		}()
	}
}

// TestMapPanicKeepsType checks that the re-raised panic preserves the
// original value, so type-based recover logic behaves the same at every
// worker count.
func TestMapPanicKeepsType(t *testing.T) {
	sentinel := errors.New("typed panic")
	defer func() {
		if r := recover(); !errors.Is(r.(error), sentinel) {
			t.Fatalf("panic value = %#v, want the original error", r)
		}
	}()
	Map(4, 8, func(i int) int {
		if i == 2 {
			panic(sentinel)
		}
		return i
	})
}
